#!/usr/bin/env python3
"""Check that every intra-repo markdown link in docs/ and README.md resolves.

Scans `[text](target)` links, skips external schemes (http/https/mailto),
resolves relative targets against the linking file's directory, and requires
the target file to exist inside the repository. For `#anchor` fragments
pointing into a markdown file, the anchor must match a heading in that file
(GitHub slug rules: lowercase, punctuation stripped, spaces -> hyphens).

Run from anywhere: the repo root is derived from this script's location.
CI runs it in the `docs` job; locally: `python3 tools/check_docs_links.py`.
Exit status 0 = all links resolve, 1 = failures (each printed).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — target may not contain spaces or closing parens (none of
# our links do); images (![alt](src)) are matched the same way on purpose.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop non-word chars, spaces->hyphens."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)          # inline markup
    text = re.sub(r"[^\w\- ]", "", text)       # punctuation
    return text.replace(" ", "-")


def anchors_of(md_file: Path) -> set[str]:
    anchors = set()
    for line in md_file.read_text(encoding="utf-8").splitlines():
        if line.startswith("#"):
            anchors.add(slugify(line.lstrip("#")))
    return anchors


def check_file(md_file: Path) -> list[str]:
    failures = []
    text = md_file.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        path_part, _, fragment = target.partition("#")
        if not path_part:  # same-file anchor
            resolved = md_file
        else:
            resolved = (md_file.parent / path_part).resolve()
        rel = md_file.relative_to(REPO)
        if not resolved.exists():
            failures.append(f"{rel}: broken link -> {target}")
            continue
        if not resolved.is_relative_to(REPO):
            failures.append(f"{rel}: link escapes the repository -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                failures.append(f"{rel}: missing anchor -> {target}")
    return failures


def main() -> int:
    files = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]
    missing = [f for f in files if not f.exists()]
    if missing or not (REPO / "docs").is_dir():
        print(f"check_docs_links: docs tree incomplete: {missing}", file=sys.stderr)
        return 1
    failures = []
    checked = 0
    for f in files:
        failures.extend(check_file(f))
        checked += 1
    for failure in failures:
        print(f"check_docs_links: {failure}", file=sys.stderr)
    print(f"check_docs_links: {checked} files, {len(failures)} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
