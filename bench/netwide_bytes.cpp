// Error-per-byte of the two real control channels: Sample (per-packet
// samples, the paper's Section 4.3 baseline method) vs Summary (periodic
// compressed sketch summaries, the snapshot layer's channel).
//
// Both channels are byte-accounted against the same budget_model, so the
// question is purely "which message type converts control bytes into
// accuracy better" at each budget B. The harness routes by client hash,
// m = 10 vantages, and RMSE is measured fig9-style: on-arrival midpoint
// estimates of every probed packet's 5 source generalizations against an
// exact global window.
//
// Metrics per (method, B): rmse, bytes/packet actually used, and
// err_per_byte = rmse / bytes_used - the RMSE carried per control byte
// spent. Both methods saturate their budget, so at equal B the err_per_byte
// ordering is the rmse ordering; across budgets it is the efficiency curve.
//
// `--json` emits the machine-readable form summarize.py folds into the
// committed BENCH artifact (section "netwide_bytes"); the default is a
// human-readable table. Keep runtimes CI-smoke friendly.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "netwide/simulation.hpp"
#include "sketch/exact_hhh.hpp"
#include "trace/trace_generator.hpp"
#include "util/table.hpp"

namespace {

using namespace memento;
using namespace memento::netwide;

constexpr std::uint64_t kWindow = 100'000;
constexpr std::size_t kPackets = 300'000;
constexpr std::size_t kProbeStride = 101;

struct run_result {
  double rmse = 0.0;
  double bytes_per_packet = 0.0;
  double err_per_byte = 0.0;
  std::uint64_t reports = 0;
};

/// Steady-state bytes of the delta summary channel vs a cadence-matched
/// full-summary baseline, at equal recall. Both sides run the SAME
/// delta-channel machinery at the same fixed report cadence; the baseline
/// sets resync_every = 1 (every report a full summary), the delta side
/// resyncs every 16 with a 2-overflow-unit change bar. Recall is scored
/// against an exact oracle at the detection threshold, so the byte ratio is
/// an equal-recall comparison, not a cheaper-but-blind one.
struct delta_result {
  double full_bytes = 0.0;
  double delta_bytes = 0.0;
  double ratio = 0.0;
  double full_recall = 0.0;
  double delta_recall = 0.0;
  std::uint64_t full_reports = 0;
  std::uint64_t delta_reports = 0;
};

delta_result run_delta_vs_full() {
  constexpr std::uint64_t kDeltaWindow = 400'000;
  constexpr std::size_t kDeltaPackets = 1'200'000;
  constexpr double kTheta = 0.005;

  harness_config base;
  base.method = comm_method::summary_delta;
  base.num_points = 4;
  base.window = kDeltaWindow;
  base.counters = 1024;
  base.delta_summary.cadence_packets = 4'000;
  harness_config full_cfg = base;
  full_cfg.delta_summary.resync_every = 1;  // every report ships the full summary
  harness_config delta_cfg = base;
  delta_cfg.delta_summary.resync_every = 16;
  delta_cfg.delta_summary.change_bar_units = 2.0;

  netwide_harness<source_hierarchy> hfull(full_cfg), hdelta(delta_cfg);
  exact_hhh<source_hierarchy> exact(kDeltaWindow);
  // Steady heavy set (the delta channel's target regime): 64 stable elephants
  // carrying 60% of traffic over a churning random background.
  std::uint64_t z = 42;
  for (std::size_t i = 0; i < kDeltaPackets; ++i) {
    z = z * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint32_t src = (z >> 33) % 1000 < 600
                                  ? static_cast<std::uint32_t>((z >> 50) % 64) * 7919u
                                  : static_cast<std::uint32_t>(z >> 32);
    const packet p{src, 0};
    hfull.ingest(p);
    hdelta.ingest(p);
    exact.update(p);
  }

  const auto truth = exact.output(kTheta);
  const auto score = [&](const std::vector<hhh_entry<source_hierarchy::key_type>>& got) {
    if (truth.empty()) return 1.0;
    std::size_t hit = 0;
    for (const auto& t : truth) {
      for (const auto& g : got) {
        if (t.key == g.key) {
          ++hit;
          break;
        }
      }
    }
    return static_cast<double>(hit) / static_cast<double>(truth.size());
  };

  delta_result r;
  r.full_bytes = hfull.bytes_sent();
  r.delta_bytes = hdelta.bytes_sent();
  r.ratio = r.delta_bytes > 0.0 ? r.full_bytes / r.delta_bytes : 0.0;
  r.full_recall = score(hfull.output(kTheta));
  r.delta_recall = score(hdelta.output(kTheta));
  r.full_reports = hfull.reports_sent();
  r.delta_reports = hdelta.reports_sent();
  return r;
}

run_result run_method(comm_method method, double budget_bytes) {
  harness_config cfg;
  cfg.method = method;
  cfg.num_points = 10;
  cfg.window = kWindow;
  cfg.budget = budget_model{budget_bytes, 64.0, 4.0};
  cfg.counters = 4096;
  netwide_harness<source_hierarchy> harness(cfg);
  exact_hhh<source_hierarchy> exact(kWindow);

  auto trace_cfg = trace_config::preset(trace_kind::backbone, 42);
  trace_cfg.churn_stride = 5'000;  // flows arrive and die, as in fig9
  trace_generator gen(trace_cfg);
  double sq = 0.0;
  std::size_t probes = 0;
  for (std::size_t i = 0; i < kPackets; ++i) {
    const packet p = gen.next();
    harness.ingest(p);
    exact.update(p);
    if (i > 2 * kWindow && i % kProbeStride == 0) {
      for (std::size_t d = 0; d < source_hierarchy::hierarchy_size; ++d) {
        const auto key = source_hierarchy::key_at(p, d);
        const double err =
            harness.estimate_midpoint(key) - static_cast<double>(exact.query(key));
        sq += err * err;
        ++probes;
      }
    }
  }
  run_result r;
  r.rmse = std::sqrt(sq / static_cast<double>(probes));
  r.bytes_per_packet = harness.bytes_per_packet();
  r.err_per_byte = r.bytes_per_packet > 0.0 ? r.rmse / r.bytes_per_packet : 0.0;
  r.reports = harness.reports_sent();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const double budgets[] = {0.5, 1.0, 4.0};
  const comm_method methods[] = {comm_method::sample, comm_method::summary};

  if (!json) {
    std::puts("=== error-per-byte: sample vs summary channel ===");
    std::printf("m=10 vantages, W=%llu, O=64, E=4, S=16, %zu packets, backbone+churn\n",
                static_cast<unsigned long long>(kWindow), kPackets);
  }

  std::string rows;
  console_table table({"method", "B bytes/pkt", "rmse", "bytes/pkt used", "rmse/byte", "reports"});
  if (!json) table.print_header();
  for (const double budget : budgets) {
    for (const comm_method method : methods) {
      const auto r = run_method(method, budget);
      if (json) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"method\": \"%s\", \"budget_bytes_per_packet\": %g, "
                      "\"rmse\": %.2f, \"bytes_per_packet\": %.4f, "
                      "\"err_per_byte\": %.2f, \"reports\": %llu}",
                      method_name(method), budget, r.rmse, r.bytes_per_packet,
                      r.err_per_byte, static_cast<unsigned long long>(r.reports));
        if (!rows.empty()) rows += ",\n";
        rows += buf;
      } else {
        table.cell(method_name(method))
            .cell(budget, 2)
            .cell(r.rmse, 1)
            .cell(r.bytes_per_packet, 3)
            .cell(r.err_per_byte, 1)
            .cell(static_cast<long long>(r.reports));
        table.end_row();
      }
    }
  }

  const auto d = run_delta_vs_full();
  if (json) {
#ifdef NDEBUG
    const char* build = "release";
#else
    const char* build = "debug";
#endif
    std::printf(
        "{\n  \"memento_build_type\": \"%s\",\n  \"netwide_bytes\": [\n%s\n  ],\n"
        "  \"summary_delta\": {\"full_bytes\": %.0f, \"delta_bytes\": %.0f, "
        "\"bytes_ratio\": %.3f, \"full_recall\": %.4f, \"delta_recall\": %.4f, "
        "\"full_reports\": %llu, \"delta_reports\": %llu, "
        "\"cadence_packets\": 4000, \"resync_every\": 16, \"change_bar_units\": 2.0}\n}\n",
        build, rows.c_str(), d.full_bytes, d.delta_bytes, d.ratio, d.full_recall,
        d.delta_recall, static_cast<unsigned long long>(d.full_reports),
        static_cast<unsigned long long>(d.delta_reports));
  } else {
    std::puts("\n=== delta vs full summary channel (cadence-matched, equal recall) ===");
    std::printf("full:  %.0f bytes over %llu reports (resync_every=1)\n", d.full_bytes,
                static_cast<unsigned long long>(d.full_reports));
    std::printf("delta: %.0f bytes over %llu reports (resync_every=16, bar=2 units)\n",
                d.delta_bytes, static_cast<unsigned long long>(d.delta_reports));
    std::printf("bytes ratio: %.2fx fewer control bytes at recall %.3f vs %.3f\n", d.ratio,
                d.delta_recall, d.full_recall);
    std::puts("\nrmse/byte = rmse divided by control bytes actually spent per packet;");
    std::puts("lower is better. Both methods saturate the budget, so at equal B this");
    std::puts("is the accuracy ordering; across B it is the efficiency curve.");
  }
  return 0;
}
