// Error-per-byte of the two real control channels: Sample (per-packet
// samples, the paper's Section 4.3 baseline method) vs Summary (periodic
// compressed sketch summaries, the snapshot layer's channel).
//
// Both channels are byte-accounted against the same budget_model, so the
// question is purely "which message type converts control bytes into
// accuracy better" at each budget B. The harness routes by client hash,
// m = 10 vantages, and RMSE is measured fig9-style: on-arrival midpoint
// estimates of every probed packet's 5 source generalizations against an
// exact global window.
//
// Metrics per (method, B): rmse, bytes/packet actually used, and
// err_per_byte = rmse / bytes_used - the RMSE carried per control byte
// spent. Both methods saturate their budget, so at equal B the err_per_byte
// ordering is the rmse ordering; across budgets it is the efficiency curve.
//
// `--json` emits the machine-readable form summarize.py folds into the
// committed BENCH artifact (section "netwide_bytes"); the default is a
// human-readable table. Keep runtimes CI-smoke friendly.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "netwide/simulation.hpp"
#include "sketch/exact_hhh.hpp"
#include "trace/trace_generator.hpp"
#include "util/table.hpp"

namespace {

using namespace memento;
using namespace memento::netwide;

constexpr std::uint64_t kWindow = 100'000;
constexpr std::size_t kPackets = 300'000;
constexpr std::size_t kProbeStride = 101;

struct run_result {
  double rmse = 0.0;
  double bytes_per_packet = 0.0;
  double err_per_byte = 0.0;
  std::uint64_t reports = 0;
};

run_result run_method(comm_method method, double budget_bytes) {
  harness_config cfg;
  cfg.method = method;
  cfg.num_points = 10;
  cfg.window = kWindow;
  cfg.budget = budget_model{budget_bytes, 64.0, 4.0};
  cfg.counters = 4096;
  netwide_harness<source_hierarchy> harness(cfg);
  exact_hhh<source_hierarchy> exact(kWindow);

  auto trace_cfg = trace_config::preset(trace_kind::backbone, 42);
  trace_cfg.churn_stride = 5'000;  // flows arrive and die, as in fig9
  trace_generator gen(trace_cfg);
  double sq = 0.0;
  std::size_t probes = 0;
  for (std::size_t i = 0; i < kPackets; ++i) {
    const packet p = gen.next();
    harness.ingest(p);
    exact.update(p);
    if (i > 2 * kWindow && i % kProbeStride == 0) {
      for (std::size_t d = 0; d < source_hierarchy::hierarchy_size; ++d) {
        const auto key = source_hierarchy::key_at(p, d);
        const double err =
            harness.estimate_midpoint(key) - static_cast<double>(exact.query(key));
        sq += err * err;
        ++probes;
      }
    }
  }
  run_result r;
  r.rmse = std::sqrt(sq / static_cast<double>(probes));
  r.bytes_per_packet = harness.bytes_per_packet();
  r.err_per_byte = r.bytes_per_packet > 0.0 ? r.rmse / r.bytes_per_packet : 0.0;
  r.reports = harness.reports_sent();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const double budgets[] = {0.5, 1.0, 4.0};
  const comm_method methods[] = {comm_method::sample, comm_method::summary};

  if (!json) {
    std::puts("=== error-per-byte: sample vs summary channel ===");
    std::printf("m=10 vantages, W=%llu, O=64, E=4, S=16, %zu packets, backbone+churn\n",
                static_cast<unsigned long long>(kWindow), kPackets);
  }

  std::string rows;
  console_table table({"method", "B bytes/pkt", "rmse", "bytes/pkt used", "rmse/byte", "reports"});
  if (!json) table.print_header();
  for (const double budget : budgets) {
    for (const comm_method method : methods) {
      const auto r = run_method(method, budget);
      if (json) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"method\": \"%s\", \"budget_bytes_per_packet\": %g, "
                      "\"rmse\": %.2f, \"bytes_per_packet\": %.4f, "
                      "\"err_per_byte\": %.2f, \"reports\": %llu}",
                      method_name(method), budget, r.rmse, r.bytes_per_packet,
                      r.err_per_byte, static_cast<unsigned long long>(r.reports));
        if (!rows.empty()) rows += ",\n";
        rows += buf;
      } else {
        table.cell(method_name(method))
            .cell(budget, 2)
            .cell(r.rmse, 1)
            .cell(r.bytes_per_packet, 3)
            .cell(r.err_per_byte, 1)
            .cell(static_cast<long long>(r.reports));
        table.end_row();
      }
    }
  }

  if (json) {
    std::printf("{\n  \"netwide_bytes\": [\n%s\n  ]\n}\n", rows.c_str());
  } else {
    std::puts("\nrmse/byte = rmse divided by control bytes actually spent per packet;");
    std::puts("lower is better. Both methods saturate the budget, so at equal B this");
    std::puts("is the accuracy ordering; across B it is the efficiency curve.");
  }
  return 0;
}
