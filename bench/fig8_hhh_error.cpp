// Figure 8: on-arrival accuracy of the HHH algorithms - Interval (MST),
// Baseline (windowed MST) and H-Memento - against the exact sliding window,
// per trace surrogate and per prefix depth.
//
// Configuration mirrors Section 6.3.1 scaled to harness size: window
// algorithms at eps_a = 0.1% of W; the Interval instance at a smaller eps_a
// for comparable memory; the Interval algorithm resets every W packets.
//
// The `h-memento-batch` series replays the same stream through
// h_memento::update_batch in probe-stride bursts; its sketch state is
// byte-identical to the scalar series at every probe point, so its error
// row doubles as the "batching changed no error bar" differential in the
// committed artifact. The HHH recall column scores output(theta) against
// the exact window HHH set.
//
// Flags: `--window=N` / `--packets=N` shrink the run for CI smoke;
// `--json` emits the {"hhh_error": ...} document summarize.py folds into
// BENCH_fig5.json with --hhh-error.
//
// Expected shape (paper): Interval is the least accurate (staleness across
// resets); H-Memento is slightly less accurate than the Baseline due to
// sampling; both window algorithms are close at every prefix length.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/baseline_window_mst.hpp"
#include "core/h_memento.hpp"
#include "core/mst.hpp"
#include "sketch/exact_hhh.hpp"
#include "trace/trace_generator.hpp"
#include "util/table.hpp"

namespace {

using namespace memento;

// Window algorithms: eps_a = 0.1% -> 4/0.001 = 4000 counters worth of
// precision shared across the hierarchy; Interval: 2000 counters/instance.
constexpr std::size_t kWindowCounters = 4000;
constexpr std::size_t kIntervalCountersPerInstance = 2000;
constexpr double kTau = 5.0 / 128.0;  // effective per-prefix rate 1/128
constexpr std::size_t kProbeStride = 53;  // also the batch arm's burst length
constexpr double kTheta = 0.02;           // HHH recall threshold (fraction of W)

struct series {
  std::size_t probes = 0;
  std::size_t truth_size = 0;
  // RMSE per algorithm: h-memento, h-memento-batch, baseline, interval(MST).
  std::array<double, 4> rmse{};
  std::array<std::array<double, 4>, 5> rmse_by_depth{};
  double recall_hmem = 0.0;
  double recall_hmem_batch = 0.0;
};

series run_trace(trace_kind kind, std::uint64_t window, std::size_t packets) {
  std::vector<packet> trace;
  trace.reserve(packets);
  {
    trace_generator gen(kind, 42);
    for (std::size_t i = 0; i < packets; ++i) trace.push_back(gen.next());
  }
  h_memento<source_hierarchy> hmem(window, kWindowCounters, kTau, 1e-3, /*seed=*/3);
  h_memento<source_hierarchy> hmem_batch(window, kWindowCounters, kTau, 1e-3, /*seed=*/3);
  baseline_window_mst<source_hierarchy> baseline(window, kWindowCounters);
  mst<source_hierarchy> interval(kIntervalCountersPerInstance);
  exact_hhh<source_hierarchy> exact(hmem.window_size());

  series out;
  std::array<double, 4> sq{};
  std::array<std::array<double, 4>, 5> sq_d{};

  // Burst-synchronous replay: every algorithm advances through the same
  // kProbeStride-packet burst, then all four are probed at the same stream
  // position, with the batch arm ingesting the burst via update_batch.
  for (std::size_t i = 0; i + kProbeStride <= trace.size(); i += kProbeStride) {
    for (std::size_t j = i; j < i + kProbeStride; ++j) {
      const packet& p = trace[j];
      if (j % window == 0) interval.reset();
      hmem.update(p);
      baseline.update(p);
      interval.update(p);
      exact.update(p);
    }
    hmem_batch.update_batch(trace.data() + i, kProbeStride);
    if (i <= window) continue;
    const packet& p = trace[i + kProbeStride - 1];
    for (std::size_t d = 0; d < 5; ++d) {
      const auto key = source_hierarchy::key_at(p, d);
      const double truth = static_cast<double>(exact.query(key));
      const std::array<double, 4> err = {
          hmem.query(key) - truth, hmem_batch.query(key) - truth,
          baseline.query(key) - truth, interval.query(key) - truth};
      for (std::size_t a = 0; a < 4; ++a) {
        sq[a] += err[a] * err[a];
        sq_d[d][a] += err[a] * err[a];
      }
    }
    ++out.probes;
  }

  const double n = static_cast<double>(out.probes) * 5.0;
  const double nd = static_cast<double>(out.probes);
  for (std::size_t a = 0; a < 4; ++a) {
    out.rmse[a] = std::sqrt(sq[a] / n);
    for (std::size_t d = 0; d < 5; ++d) out.rmse_by_depth[d][a] = std::sqrt(sq_d[d][a] / nd);
  }

  // End-of-stream HHH recall against the exact window HHH set. The exact
  // set is never empty (the root prefix always crosses any theta <= 1).
  const auto exact_set = exact.output(kTheta);
  out.truth_size = exact_set.size();
  const auto recall_of = [&](const h_memento<source_hierarchy>& alg) {
    const auto found = alg.output(kTheta);
    std::size_t hit = 0;
    for (const auto& t : exact_set) {
      if (std::any_of(found.begin(), found.end(),
                      [&](const auto& e) { return e.key == t.key; })) {
        ++hit;
      }
    }
    return exact_set.empty() ? 1.0
                             : static_cast<double>(hit) / static_cast<double>(exact_set.size());
  };
  out.recall_hmem = recall_of(hmem);
  out.recall_hmem_batch = recall_of(hmem_batch);
  return out;
}

void print_table(trace_kind kind, const series& s) {
  std::printf("\n--- %s trace (probes=%zu) ---\n", trace_name(kind), s.probes);
  console_table table({"algorithm", "rmse", "/32", "/24", "/16", "/8", "/0"});
  table.print_header();
  const char* names[4] = {"h-memento", "h-memento-batch", "baseline", "interval(MST)"};
  for (int a = 0; a < 4; ++a) {
    table.cell(names[a]).cell(s.rmse[a], 1);
    for (std::size_t d = 0; d < 5; ++d) table.cell(s.rmse_by_depth[d][a], 1);
    table.end_row();
  }
  std::printf("HHH recall @ theta=%.3f (|exact set|=%zu): scalar %.3f, batch %.3f\n", kTheta,
              s.truth_size, s.recall_hmem, s.recall_hmem_batch);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::uint64_t window = 200'000;
  std::size_t packets = 800'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--window=", 0) == 0) {
      window = std::stoull(arg.substr(9));
    } else if (arg.rfind("--packets=", 0) == 0) {
      packets = std::stoull(arg.substr(10));
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--window=N] [--packets=N]\n", argv[0]);
      return 2;
    }
  }

  constexpr trace_kind kinds[3] = {trace_kind::backbone, trace_kind::datacenter,
                                   trace_kind::edge};
  std::array<series, 3> results;
  for (std::size_t i = 0; i < 3; ++i) results[i] = run_trace(kinds[i], window, packets);

  if (json) {
#ifdef NDEBUG
    const char* build = "release";
#else
    const char* build = "debug";
#endif
    std::printf(
        "{\n  \"memento_build_type\": \"%s\",\n  \"hhh_error\": {\n"
        "    \"window\": %llu, \"packets\": %zu, \"counters\": %zu,\n"
        "    \"tau\": %.6f, \"theta\": %.3f,\n    \"traces\": [\n",
        build, static_cast<unsigned long long>(window), packets, kWindowCounters, kTau, kTheta);
    for (std::size_t i = 0; i < 3; ++i) {
      const series& s = results[i];
      std::printf(
          "      {\"trace\": \"%s\", \"probes\": %zu, \"truth_size\": %zu,\n"
          "       \"rmse\": {\"h_memento\": %.3f, \"h_memento_batch\": %.3f, "
          "\"baseline\": %.3f, \"interval\": %.3f},\n"
          "       \"recall\": {\"h_memento\": %.4f, \"h_memento_batch\": %.4f}}%s\n",
          trace_name(kinds[i]), s.probes, s.truth_size, s.rmse[0], s.rmse[1], s.rmse[2],
          s.rmse[3], s.recall_hmem, s.recall_hmem_batch, i + 1 < 3 ? "," : "");
    }
    std::printf("    ]\n  }\n}\n");
    return 0;
  }

  std::printf("=== Figure 8: on-arrival HHH accuracy (W=%llu, N=%zu, H=5) ===\n",
              static_cast<unsigned long long>(window), packets);
  std::printf("window algs: %zu counters (eps_a=0.1%%), tau=%.4f; interval: %zu/instance\n",
              kWindowCounters, kTau, kIntervalCountersPerInstance);
  for (std::size_t i = 0; i < 3; ++i) print_table(kinds[i], results[i]);
  std::puts("\nExpected: interval worst everywhere; h-memento ~ baseline (slightly above);");
  std::puts("the batch row must match the scalar h-memento row digit for digit.");
  return 0;
}
