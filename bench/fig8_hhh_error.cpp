// Figure 8: on-arrival accuracy of the HHH algorithms - Interval (MST),
// Baseline (windowed MST) and H-Memento - against the exact sliding window,
// per trace surrogate and per prefix depth.
//
// Configuration mirrors Section 6.3.1 scaled to harness size: window
// algorithms at eps_a = 0.1% of W; the Interval instance at a smaller eps_a
// for comparable memory; the Interval algorithm resets every W packets.
//
// Expected shape (paper): Interval is the least accurate (staleness across
// resets); H-Memento is slightly less accurate than the Baseline due to
// sampling; both window algorithms are close at every prefix length.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/baseline_window_mst.hpp"
#include "core/h_memento.hpp"
#include "core/mst.hpp"
#include "sketch/exact_hhh.hpp"
#include "trace/trace_generator.hpp"
#include "util/table.hpp"

namespace {

using namespace memento;

constexpr std::uint64_t kWindow = 200'000;
constexpr std::size_t kPackets = 800'000;
constexpr std::size_t kProbeStride = 53;
// Window algorithms: eps_a = 0.1% -> 4/0.001 = 4000 counters worth of
// precision shared across the hierarchy; Interval: 2000 counters/instance.
constexpr std::size_t kWindowCounters = 4000;
constexpr std::size_t kIntervalCountersPerInstance = 2000;
constexpr double kTau = 5.0 / 128.0;  // effective per-prefix rate 1/128

struct series {
  double rmse_total = 0.0;
  std::array<double, 5> rmse_by_depth{};
};

series run_trace(trace_kind kind) {
  trace_generator gen(kind, 42);
  h_memento<source_hierarchy> hmem(kWindow, kWindowCounters, kTau, 1e-3, /*seed=*/3);
  baseline_window_mst<source_hierarchy> baseline(kWindow, kWindowCounters);
  mst<source_hierarchy> interval(kIntervalCountersPerInstance);
  exact_hhh<source_hierarchy> exact(hmem.window_size());

  std::array<double, 3> sq{};                   // hmem, baseline, interval
  std::array<std::array<double, 3>, 5> sq_d{};  // per depth
  std::size_t probes = 0;

  for (std::size_t i = 0; i < kPackets; ++i) {
    const packet p = gen.next();
    if (i % kWindow == 0) interval.reset();
    hmem.update(p);
    baseline.update(p);
    interval.update(p);
    exact.update(p);
    if (i > kWindow && i % kProbeStride == 0) {
      for (std::size_t d = 0; d < 5; ++d) {
        const auto key = source_hierarchy::key_at(p, d);
        const double truth = static_cast<double>(exact.query(key));
        const double e0 = hmem.query(key) - truth;
        const double e1 = baseline.query(key) - truth;
        const double e2 = interval.query(key) - truth;
        sq[0] += e0 * e0;
        sq[1] += e1 * e1;
        sq[2] += e2 * e2;
        sq_d[d][0] += e0 * e0;
        sq_d[d][1] += e1 * e1;
        sq_d[d][2] += e2 * e2;
      }
      ++probes;
    }
  }

  const double n = static_cast<double>(probes) * 5.0;
  const double nd = static_cast<double>(probes);
  std::printf("\n--- %s trace (probes=%zu) ---\n", trace_name(kind), probes);
  console_table table({"algorithm", "rmse", "/32", "/24", "/16", "/8", "/0"});
  table.print_header();
  const char* names[3] = {"h-memento", "baseline", "interval(MST)"};
  for (int a = 0; a < 3; ++a) {
    table.cell(names[a]).cell(std::sqrt(sq[a] / n), 1);
    for (std::size_t d = 0; d < 5; ++d) table.cell(std::sqrt(sq_d[d][a] / nd), 1);
    table.end_row();
  }
  return {};
}

}  // namespace

int main() {
  std::puts("=== Figure 8: on-arrival HHH accuracy (W=200k, N=800k, H=5) ===");
  std::printf("window algs: %zu counters (eps_a=0.1%%), tau=%.4f; interval: %zu/instance\n",
              kWindowCounters, kTau, kIntervalCountersPerInstance);
  for (trace_kind kind : {trace_kind::backbone, trace_kind::datacenter, trace_kind::edge}) {
    run_trace(kind);
  }
  std::puts("\nExpected: interval worst everywhere; h-memento ~ baseline (slightly above).");
  return 0;
}
