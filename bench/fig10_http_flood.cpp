// Figure 10: the HTTP-flood experiment. 50 random 8-bit subnets take over
// 70% of the traffic at a random point; ten load-balancer vantages report to
// the controller under a 1 byte/packet budget. We measure, for each
// communication method plus the OPT oracle (an exact global window):
//
//   (a) subnets detected over time (Fig. 10a, with an early zoom = Fig. 10b);
//   (c) flood requests missed (arriving before their subnet's detection),
//       as a count and as a percentage (Fig. 10c).
//
// Expected shape (paper): Batch is near OPT; Sample lags slightly;
// Aggregation detects late and misses ~37x more attack requests than Batch.
#include <array>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "netwide/simulation.hpp"
#include "sketch/exact_window.hpp"
#include "trace/flood_injector.hpp"
#include "trace/trace_generator.hpp"
#include "util/table.hpp"

namespace {

using namespace memento;
using namespace memento::netwide;

constexpr std::uint64_t kWindow = 500'000;
constexpr std::size_t kBasePackets = 1'200'000;
constexpr double kTheta = 0.01;  // each flooding /8 holds ~1.4% >> theta
constexpr std::size_t kDetectStride = 2'000;

struct approach_result {
  std::string name;
  std::vector<std::size_t> detected_series;  // per checkpoint
  std::uint64_t missed = 0;
  std::uint64_t attack_total = 0;
  double first_detect_packets = -1.0;  // packets after flood start (mean)
};

/// Runs one approach over the flood trace. `estimate` is the approach's
/// current /8-frequency oracle; `ingest` advances it.
template <typename IngestFn, typename EstimateFn>
approach_result run_approach(const std::string& name, const flood_trace& flood,
                             IngestFn&& ingest, EstimateFn&& estimate) {
  approach_result result;
  result.name = name;
  std::vector<bool> detected(flood.subnets.size(), false);
  std::vector<double> detect_at(flood.subnets.size(), -1.0);
  std::size_t num_detected = 0;

  const double bar = kTheta * static_cast<double>(kWindow);
  for (std::size_t i = 0; i < flood.packets.size(); ++i) {
    const auto& lp = flood.packets[i];
    ingest(lp.pkt);
    if (lp.is_attack) {
      ++result.attack_total;
      if (!detected[lp.attack_subnet]) ++result.missed;
    }
    if (i % kDetectStride == 0 && i >= flood.flood_start) {
      for (std::size_t s = 0; s < flood.subnets.size(); ++s) {
        if (detected[s]) continue;
        if (estimate(flood.subnets[s]) >= bar) {
          detected[s] = true;
          detect_at[s] = static_cast<double>(i - flood.flood_start);
          ++num_detected;
        }
      }
      result.detected_series.push_back(num_detected);
    }
  }
  double sum = 0.0;
  std::size_t n = 0;
  for (const double t : detect_at) {
    if (t >= 0) {
      sum += t;
      ++n;
    }
  }
  result.first_detect_packets = n > 0 ? sum / static_cast<double>(n) : -1.0;
  return result;
}

approach_result run_method(comm_method method, const flood_trace& flood) {
  harness_config cfg;
  cfg.method = method;
  cfg.num_points = 10;
  cfg.window = kWindow;
  cfg.budget = budget_model{1.0, 64.0, 4.0};
  cfg.counters = 4096;
  netwide_harness<source_hierarchy> harness(cfg);
  // Threshold detection uses the midpoint estimate: the one-sided upper
  // bound would fire systematically early (before OPT), which is a false
  // positive by the window-HH definition of Section 3.
  return run_approach(
      method_name(method), flood, [&](const packet& p) { harness.ingest(p); },
      [&](std::uint32_t subnet) {
        return harness.estimate_midpoint(prefix1d::make_key(subnet, 3));
      });
}

approach_result run_opt(const flood_trace& flood) {
  // OPT: an exact global sliding window over /8 prefixes, no delay, no
  // sampling ("knows exactly what traffic enters the load-balancers").
  exact_window<std::uint32_t> window(kWindow);
  return run_approach(
      "OPT", flood, [&](const packet& p) { window.add(p.src & 0xff000000u); },
      [&](std::uint32_t subnet) { return static_cast<double>(window.query(subnet)); });
}

}  // namespace

int main() {
  std::puts("=== Figure 10: HTTP flood detection (50 subnets, 70% share) ===");
  std::printf("W=%llu, theta=%.2f%%, B=1 byte/pkt, m=10, detection every %zu pkts\n",
              static_cast<unsigned long long>(kWindow), kTheta * 100.0, kDetectStride);

  auto base = make_trace(trace_kind::backbone, kBasePackets, 42);
  flood_config fc;
  fc.num_subnets = 50;
  fc.flood_probability = 0.7;
  fc.start_range = 1'000'000;
  const auto flood = inject_flood(base, fc);
  std::printf("flood starts at line %zu; composed trace = %zu packets\n\n",
              flood.flood_start, flood.packets.size());

  std::vector<approach_result> results;
  results.push_back(run_opt(flood));
  results.push_back(run_method(comm_method::batch, flood));
  results.push_back(run_method(comm_method::sample, flood));
  results.push_back(run_method(comm_method::aggregation, flood));

  std::puts("--- Fig 10a/b: subnets detected vs. packets since flood start ---");
  {
    console_table table({"pkts_since", "OPT", "batch", "sample", "aggregation"});
    table.print_header();
    const std::size_t points = results[0].detected_series.size();
    // Log-spaced checkpoints: dense early (the Fig. 10b zoom), then regular
    // steps through the detection ramp.
    std::vector<std::size_t> rows;
    for (std::size_t idx = 1; idx < points; idx = idx < 64 ? idx * 2 : idx + points / 24) {
      rows.push_back(idx);
    }
    if (rows.empty() || rows.back() != points - 1) rows.push_back(points - 1);
    for (const auto idx : rows) {
      table.cell(static_cast<long long>(idx * kDetectStride));
      for (const auto& r : results) {
        table.cell(static_cast<int>(idx < r.detected_series.size()
                                        ? r.detected_series[idx]
                                        : r.detected_series.back()));
      }
      table.end_row();
    }
  }

  std::puts("\n--- Fig 10c: missed flood requests (before detection) ---");
  {
    console_table table({"approach", "missed", "missed_pct", "mean_detect"}, 16);
    table.print_header();
    const double batch_missed =
        static_cast<double>(results[1].missed > 0 ? results[1].missed : 1);
    const double opt_missed = static_cast<double>(results[0].missed);
    for (const auto& r : results) {
      table.cell(r.name)
          .cell(static_cast<long long>(r.missed))
          .cell(100.0 * static_cast<double>(r.missed) /
                    static_cast<double>(r.attack_total),
                3)
          .cell(r.first_detect_packets, 0);
      table.end_row();
      if (r.name == "aggregation") {
        const double batch_excess =
            std::max(1.0, static_cast<double>(results[1].missed) - opt_missed);
        const double agg_excess = static_cast<double>(r.missed) - opt_missed;
        std::printf("  -> aggregation misses %.1fx more than batch overall;\n"
                    "     method-induced misses (excess over OPT): batch %+.0f, "
                    "aggregation %+.0f (%.0fx)\n"
                    "     (paper: up to 37x; our aggregation idealization is stronger "
                    "than the paper's, see EXPERIMENTS.md)\n",
                    static_cast<double>(r.missed) / batch_missed,
                    static_cast<double>(results[1].missed) - opt_missed, agg_excess,
                    agg_excess / batch_excess);
      }
    }
    std::puts("  mean_detect: packets from flood start to detection, averaged over subnets.");
  }
  return 0;
}
