// Figure 5 b/d/f: Memento's empirical accuracy (on-arrival RMSE against the
// exact sliding window) as a function of tau, for 64/512/4096 counters, on
// the three trace surrogates.
//
// Expected shape (paper): the error is almost identical to WCSS (tau = 1)
// across the sweep, with degradation only at the smallest tau - earliest on
// the skewed datacenter trace with many counters, where the algorithm error
// floor is low enough for sampling noise to dominate.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/memento.hpp"
#include "sketch/exact_window.hpp"
#include "trace/trace_generator.hpp"
#include "util/table.hpp"

namespace {

using namespace memento;

constexpr std::uint64_t kWindow = 250'000;
constexpr std::size_t kPackets = 1'000'000;
constexpr std::size_t kProbeStride = 29;

double on_arrival_rmse(const std::vector<std::uint64_t>& ids, std::size_t counters,
                       double tau) {
  memento_sketch<std::uint64_t> sketch(kWindow, counters, tau, /*seed=*/7);
  exact_window<std::uint64_t> exact(sketch.window_size());
  double sq_sum = 0.0;
  std::size_t probes = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    sketch.update(ids[i]);
    exact.add(ids[i]);
    if (i > kWindow && i % kProbeStride == 0) {
      const double err = sketch.query(ids[i]) - static_cast<double>(exact.query(ids[i]));
      sq_sum += err * err;
      ++probes;
    }
  }
  return std::sqrt(sq_sum / static_cast<double>(probes));
}

}  // namespace

int main() {
  std::puts("=== Figure 5 b/d/f: on-arrival RMSE vs. tau (W=250k, N=1M) ===");
  std::puts("Rows: tau. Columns: counter budgets. tau=1/1 is WCSS.");

  for (trace_kind kind : {trace_kind::edge, trace_kind::datacenter, trace_kind::backbone}) {
    trace_generator gen(kind, 42);
    std::vector<std::uint64_t> ids;
    ids.reserve(kPackets);
    for (std::size_t i = 0; i < kPackets; ++i) ids.push_back(flow_id(gen.next()));

    std::printf("\n--- %s trace ---\n", trace_name(kind));
    console_table table({"tau", "64 ctrs", "512 ctrs", "4096 ctrs"});
    table.print_header();
    for (int inv_tau : {1, 4, 16, 64, 256, 1024}) {
      const double tau = 1.0 / inv_tau;
      table.cell("1/" + std::to_string(inv_tau));
      for (std::size_t counters : {64u, 512u, 4096u}) {
        table.cell(on_arrival_rmse(ids, counters, tau), 1);
      }
      table.end_row();
    }
  }
  std::puts("\nExpected: flat columns until small tau; more counters = lower floor.");
  return 0;
}
