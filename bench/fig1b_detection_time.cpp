// Figure 1b: expected detection time of a new heavy hitter, in windows, as a
// function of the ratio between its normalized frequency and the threshold.
//
// Prints the closed-form model and a packet-level Monte-Carlo simulation side
// by side for the three methods (Window, Improved Interval, Interval).
// Expected shape (paper): Window is always fastest; at ratio 2 it needs half
// a window while the interval methods need 0.6-1.0; near the threshold the
// gap vs. Interval approaches 40%.
#include <cstdio>

#include "core/detection_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace memento;
  std::puts("=== Figure 1b: detection time vs. frequency/threshold ratio ===");
  std::puts("model = closed form, sim = packet-level Monte-Carlo (W=4000, 400 trials)");
  std::puts("");

  console_table table({"ratio", "window", "improved", "interval", "win(sim)", "imp(sim)",
                       "int(sim)", "gain_vs_int"});
  table.print_header();

  for (double ratio : {1.05, 1.1, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25, 2.5, 2.75, 3.0}) {
    const auto model = detection::expected_delays(ratio);
    const auto sim = detection::simulate_delays(ratio, 0.02, 4000, 400, /*seed=*/1);
    table.cell(ratio, 2)
        .cell(model.window, 3)
        .cell(model.improved_interval, 3)
        .cell(model.interval, 3)
        .cell(sim.window, 3)
        .cell(sim.improved_interval, 3)
        .cell(sim.interval, 3)
        .cell(100.0 * (1.0 - model.window / model.interval), 1);
    table.end_row();
  }
  std::puts("\ngain_vs_int: % faster detection of Window vs. the Interval method.");
  return 0;
}
