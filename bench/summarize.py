#!/usr/bin/env python3
"""Reduce Google Benchmark JSON into the committed perf-trajectory artifact.

Usage:
    ./build/bench/fig5_hh_speed --benchmark_format=json > fig5.raw.json
    ./build/bench/netwide_bytes --json > netwide.raw.json
    python3 bench/summarize.py fig5.raw.json --netwide netwide.raw.json -o BENCH_fig5.json

The input may also be an ALREADY-REDUCED artifact (a previous summarize.py
output): its entries/pairs/scaling sections are carried through unchanged,
which lets `--netwide` refresh the control-channel section without
re-measuring the throughput benches.

`--netwide` folds the netwide_bytes bench's error-per-byte rows (sample vs
summary control channels) into a `netwide_bytes` section of the artifact,
plus its delta-vs-full summary-channel comparison as `summary_delta`.
`--snapshot` folds a snapshot_speed --json report into the `snapshot`
section (save/restore MB/s, compression ratio, bounded-memory evidence).
`--hhh` folds an HHH raw Google Benchmark JSON (fig6_hhh_speed or
fig7_vs_rhhh) into the `hhh_speed` section - the same entries/pairs/scaling
reduction as the main input, so the batched-over-scalar HHH speedup and the
prefix-sharded scaling curve ride the artifact next to the flat numbers.
Folds MERGE by figure prefix (`family.split('/', 1)[0]`): folding a fig7
run replaces prior fig7 rows but leaves the fig6 rows standing, so the two
figures accumulate in one section across runs. `--hhh-error`
folds a fig8_hhh_error --json report into the `hhh_error` section (RMSE per
algorithm with the batch-differential row, HHH recall vs the exact set).
`--rebalance` folds a `fig5/hh_speed_rebalanced` measurement (raw Google
Benchmark JSON) into the `rebalance` section without touching the other
sections; the same section is also produced directly when the main input
contains `_rebalanced` rows. `--appliance` folds a memento_appliance --json
soak report into the `appliance` section the same way. `--controller` folds
a memento_appliance --controller --json report into the `controller`
section (automatic rebalances, time-to-recover after the skew shift, drop
accounting under block backpressure).

The reducer keeps one record per benchmark config (name, label, Mpps) and,
whenever a family has both a scalar and a `_batch` variant with the same
args (e.g. `fig5/hh_speed/0/512/1` and `fig5/hh_speed_batch/0/512/1`), emits
a pair entry with the batch-over-scalar speedup. `_sharded` rows (args
`kind/counters/inv_tau/shards`) are additionally folded into a `scaling`
section: one record per (kind, counters, inv_tau) with the per-N Mpps, the
speedup of each N over the N=1 sharded row, and the speedup of each N over
the single-instance `_batch` baseline at the same args - the multicore
scaling curve. The output is stable-sorted and pretty-printed so diffs
across PRs read as a throughput trajectory.
"""

from __future__ import annotations

import argparse
import json
import sys


def split_name(name: str) -> tuple[str, str]:
    """'fig5/hh_speed_batch/0/512/1/min_time:0.1' -> ('fig5/hh_speed_batch', '0/512/1').

    Google Benchmark appends modifier tokens ('min_time:0.1', 'real_time',
    'process_time', 'threads:4') after the args; drop them so scalar, batch
    and sharded rows key on comparable arg strings.
    """
    modifiers = {"real_time", "process_time"}
    parts = [
        p
        for p in name.split("/")
        if p not in modifiers and not p.startswith("min_time:") and not p.startswith("threads:")
    ]
    family = "/".join(parts[:2]) if len(parts) >= 2 else parts[0]
    args = "/".join(parts[2:])
    return family, args


def reduce_rebalance(raw: dict) -> list:
    """`fig5/hh_speed_rebalanced` rows -> the artifact's `rebalance` section.

    Each bench row scores one Zipf-alpha elephant mix twice - static hashing
    vs the coverage_rebalancer's weighted table - and reports the comparison
    as custom counters (load ratio, window-coverage spread, recall vs an
    exact oracle, migration latency). Carry those counters through verbatim,
    one record per config, so the artifact reads as the skew-recovery
    trajectory PR over PR.
    """
    keep_prefixes = ("static_", "rebalanced_", "rebalance_ms")
    rows = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        family, args = split_name(b["name"])
        if not family.endswith("_rebalanced"):
            continue
        row = {
            "config": f"{family}/{args}",
            "label": b.get("label", ""),
            "mpps": round(b["Mpps"], 3) if b.get("Mpps") is not None else None,
        }
        for key, value in sorted(b.items()):
            if key.startswith(keep_prefixes) and isinstance(value, (int, float)):
                row[key] = round(value, 3)
        rows.append(row)
    rows.sort(key=lambda r: r["config"])
    return rows


def reduce_benchmarks(raw: dict) -> dict:
    entries = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        family, args = split_name(b["name"])
        mpps = b.get("Mpps")
        if mpps is None:  # fall back to items/s when the counter is absent
            items = b.get("items_per_second")
            mpps = items / 1e6 if items else None
        entry = {
            "family": family,
            "args": args,
            "label": b.get("label", ""),
            "mpps": round(mpps, 3) if mpps is not None else None,
        }
        # Probe-behavior introspection counters (flat_hash stats surfaced by
        # the bench): carried so SIMD-vs-scalar probing is observable in the
        # committed trajectory, not inferred from Mpps alone.
        for key, value in sorted(b.items()):
            if key.startswith(("index_", "overflow_")) and isinstance(value, (int, float)):
                entry[key] = round(value, 4)
        entries.append(entry)
    entries.sort(key=lambda e: (e["family"], e["args"]))

    by_key = {(e["family"], e["args"]): e for e in entries}
    pairs = []
    for e in entries:
        if e["family"].endswith("_batch"):
            continue
        batch = by_key.get((e["family"] + "_batch", e["args"]))
        if not batch or e["mpps"] is None or batch["mpps"] is None or e["mpps"] == 0:
            continue
        pairs.append(
            {
                "config": f"{e['family']}/{e['args']}",
                "label": e["label"],
                "scalar_mpps": e["mpps"],
                "batch_mpps": batch["mpps"],
                "batch_speedup": round(batch["mpps"] / e["mpps"], 3),
            }
        )

    # Multicore scaling: group `_sharded` rows by base config - the shard
    # count N is always the LAST arg (fig5: kind/counters/inv_tau/N, fig6:
    # counters/inv_tau/N); report per-N throughput, speedup vs the N=1
    # sharded row and vs the single-instance batch baseline, same base args.
    sharded = {}
    for e in entries:
        if not e["family"].endswith("_sharded") or e["mpps"] is None:
            continue
        parts = e["args"].split("/")
        if len(parts) < 2:
            continue
        base = "/".join(parts[:-1])
        sharded.setdefault((e["family"], base), {})[int(parts[-1])] = e
    scaling = []
    for (family, base), by_n in sorted(sharded.items()):
        one = by_n.get(1)
        batch = by_key.get((family.replace("_sharded", "_batch"), base))
        points = []
        for n in sorted(by_n):
            e = by_n[n]
            point = {"shards": n, "mpps": e["mpps"]}
            if one and one["mpps"]:
                point["speedup_vs_1shard"] = round(e["mpps"] / one["mpps"], 3)
            if batch and batch["mpps"]:
                point["speedup_vs_batch_baseline"] = round(e["mpps"] / batch["mpps"], 3)
            points.append(point)
        scaling.append(
            {
                "config": f"{family}/{base}",
                # One label for the whole N-sweep: drop the per-row shard count.
                "label": by_n[min(by_n)]["label"].rsplit("/shards=", 1)[0],
                "points": points,
            }
        )

    context = raw.get("context", {})
    summary = {
        "generated_by": "bench/summarize.py",
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": context.get("library_build_type"),
            # Self-reported by the bench binary (AddCustomContext): the
            # authoritative codegen provenance (bench targets always pin
            # -O3 -DNDEBUG, so library_build_type describing the distro's
            # libbenchmark says nothing about OUR code) and the SIMD kernel
            # tier the run dispatched to.
            "memento_build_type": context.get("memento_build_type"),
            "simd_dispatch": context.get("memento_simd_dispatch"),
        },
        "entries": entries,
        "pairs": pairs,
        "scaling": scaling,
    }
    rebalance = reduce_rebalance(raw)
    if rebalance:
        summary["rebalance"] = rebalance
    return summary


def merge_hhh(existing: dict, incoming: dict) -> dict:
    """Merge an --hhh fold into the standing hhh_speed section by figure.

    Rows are owned per figure prefix (the `figN` before the first slash):
    the incoming run replaces every row of the figures it measured and
    leaves the other figures' rows untouched, so fig6 and fig7 folds
    accumulate in one section instead of clobbering each other.
    """
    figures = {e["family"].split("/", 1)[0] for e in incoming["entries"]}

    def survives(row: dict, key: str) -> bool:
        return row[key].split("/", 1)[0] not in figures

    merged = {
        "entries": [e for e in existing.get("entries", []) if survives(e, "family")]
        + incoming["entries"],
        "pairs": [p for p in existing.get("pairs", []) if survives(p, "config")]
        + incoming["pairs"],
        "scaling": [s for s in existing.get("scaling", []) if survives(s, "config")]
        + incoming["scaling"],
    }
    merged["entries"].sort(key=lambda e: (e["family"], e["args"]))
    merged["pairs"].sort(key=lambda p: p["config"])
    merged["scaling"].sort(key=lambda s: s["config"])
    return merged


def check_provenance(summary: dict, allow_debug: bool) -> bool:
    """Refuse debug-codegen inputs; warn loudly when provenance is murky.

    The committed artifact is a perf trajectory - a debug-built bench binary
    would poison every later diff against it. `memento_build_type` is the
    bench binary's own NDEBUG/-O report (authoritative); `library_build_type`
    only describes how the distro compiled libbenchmark, so a debug value
    there is a warning, not an error. The two can legitimately disagree
    (release-built benches against a distro debug libbenchmark); what may
    NOT disagree is memento_build_type across the folded inputs - that is a
    real mismatch and check_fold_provenance fails closed on it.
    """
    host = summary.get("host", {})
    build = host.get("memento_build_type")
    if build == "debug":
        if not allow_debug:
            sys.stderr.write(
                "summarize.py: REFUSING debug-built bench input "
                "(host.memento_build_type == 'debug'). Re-run the bench from a "
                "-O3 -DNDEBUG build, or pass --allow-debug to override.\n"
            )
            return False
        sys.stderr.write(
            "summarize.py: WARNING: summarizing a DEBUG bench run "
            "(--allow-debug); do not commit this artifact.\n"
        )
    elif build is None:
        sys.stderr.write(
            "summarize.py: WARNING: input carries no memento_build_type "
            "context (old bench binary?); codegen provenance is unverified.\n"
        )
    if host.get("library_build_type") == "debug":
        sys.stderr.write(
            "summarize.py: WARNING: libbenchmark itself is a debug build "
            "(library_build_type == 'debug'); timing overhead inside the "
            "benchmark harness may be inflated.\n"
        )
    return True


def check_fold_provenance(summary: dict, section: str, doc: dict, allow_debug: bool) -> bool:
    """Reconcile a folded input's self-reported build type with the artifact.

    Every folded section records the build type of the binary that produced
    it (`build_types` in the artifact, keyed by section), so a reader can
    tell exactly which codegen produced each number. A GENUINE mismatch -
    one input's memento_build_type differing from another's - fails closed:
    mixing debug and release numbers in one artifact would silently corrupt
    the trajectory. Inputs without a self-report (older binaries) warn, like
    the main input does.
    """
    build = doc.get("memento_build_type")
    recorded = summary.setdefault("build_types", {})
    if build is None:
        sys.stderr.write(
            f"summarize.py: WARNING: --{section} input carries no "
            "memento_build_type; provenance for that section is unverified.\n"
        )
        return True
    if build == "debug" and not allow_debug:
        sys.stderr.write(
            f"summarize.py: REFUSING debug-built --{section} input "
            "(memento_build_type == 'debug'); pass --allow-debug to override.\n"
        )
        return False
    main_build = summary.get("host", {}).get("memento_build_type")
    if main_build is not None and build != main_build:
        sys.stderr.write(
            f"summarize.py: REFUSING --{section} input: its memento_build_type "
            f"({build!r}) does not match the artifact's ({main_build!r}); "
            "re-run both benches from the same build.\n"
        )
        return False
    recorded[section] = build
    return True


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "input",
        help="Google Benchmark --benchmark_format=json output, or a prior summarize.py artifact",
    )
    ap.add_argument("-o", "--output", default=None, help="write here instead of stdout")
    ap.add_argument(
        "--allow-debug",
        action="store_true",
        help="summarize a debug-built bench run anyway (never commit the result)",
    )
    ap.add_argument(
        "--netwide",
        default=None,
        help="netwide_bytes --json output to fold in as the `netwide_bytes` section",
    )
    ap.add_argument(
        "--rebalance",
        default=None,
        help="fig5 raw JSON with hh_speed_rebalanced rows to fold in as the `rebalance` section",
    )
    ap.add_argument(
        "--appliance",
        default=None,
        help="memento_appliance --json output to fold in as the `appliance` section",
    )
    ap.add_argument(
        "--snapshot",
        default=None,
        help="snapshot_speed --json output to fold in as the `snapshot` section",
    )
    ap.add_argument(
        "--hhh",
        default=None,
        help="fig6_hhh_speed raw Google Benchmark JSON to fold in as the `hhh_speed` section",
    )
    ap.add_argument(
        "--controller",
        default=None,
        help="memento_appliance --controller --json output to fold in as the `controller` section",
    )
    ap.add_argument(
        "--hhh-error",
        default=None,
        help="fig8_hhh_error --json output to fold in as the `hhh_error` section",
    )
    args = ap.parse_args()

    with open(args.input, encoding="utf-8") as f:
        raw = json.load(f)
    if raw.get("generated_by") == "bench/summarize.py":
        summary = raw  # already reduced: carry the perf sections through
    else:
        summary = reduce_benchmarks(raw)
    if not check_provenance(summary, args.allow_debug):
        return 1
    if args.netwide:
        with open(args.netwide, encoding="utf-8") as f:
            doc = json.load(f)
        if not check_fold_provenance(summary, "netwide", doc, args.allow_debug):
            return 1
        summary["netwide_bytes"] = doc["netwide_bytes"]
        if "summary_delta" in doc:
            summary["summary_delta"] = doc["summary_delta"]
    if args.rebalance:
        with open(args.rebalance, encoding="utf-8") as f:
            rows = reduce_rebalance(json.load(f))
        if not rows:
            sys.stderr.write("summarize.py: --rebalance input has no _rebalanced rows\n")
            return 1
        summary["rebalance"] = rows
    if args.appliance:
        with open(args.appliance, encoding="utf-8") as f:
            doc = json.load(f)
        if "appliance" not in doc:
            sys.stderr.write("summarize.py: --appliance input has no appliance section\n")
            return 1
        if not check_fold_provenance(summary, "appliance", doc, args.allow_debug):
            return 1
        summary["appliance"] = doc["appliance"]
    if args.snapshot:
        with open(args.snapshot, encoding="utf-8") as f:
            doc = json.load(f)
        if "snapshot" not in doc:
            sys.stderr.write("summarize.py: --snapshot input has no snapshot section\n")
            return 1
        if not check_fold_provenance(summary, "snapshot", doc, args.allow_debug):
            return 1
        summary["snapshot"] = doc["snapshot"]
    if args.hhh:
        with open(args.hhh, encoding="utf-8") as f:
            raw_hhh = json.load(f)
        reduced = reduce_benchmarks(raw_hhh)
        if not reduced["entries"]:
            sys.stderr.write("summarize.py: --hhh input has no benchmark rows\n")
            return 1
        doc = {"memento_build_type": reduced["host"].get("memento_build_type")}
        if not check_fold_provenance(summary, "hhh_speed", doc, args.allow_debug):
            return 1
        summary["hhh_speed"] = merge_hhh(
            summary.get("hhh_speed") or {},
            {
                "entries": reduced["entries"],
                "pairs": reduced["pairs"],
                "scaling": reduced["scaling"],
            },
        )
    if args.controller:
        with open(args.controller, encoding="utf-8") as f:
            doc = json.load(f)
        if "controller" not in doc:
            sys.stderr.write("summarize.py: --controller input has no controller section\n")
            return 1
        if not check_fold_provenance(summary, "controller", doc, args.allow_debug):
            return 1
        summary["controller"] = doc["controller"]
    if args.hhh_error:
        with open(args.hhh_error, encoding="utf-8") as f:
            doc = json.load(f)
        if "hhh_error" not in doc:
            sys.stderr.write("summarize.py: --hhh-error input has no hhh_error section\n")
            return 1
        if not check_fold_provenance(summary, "hhh_error", doc, args.allow_debug):
            return 1
        summary["hhh_error"] = doc["hhh_error"]
    text = json.dumps(summary, indent=2) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
