// Ablation: the design choices inside Memento that DESIGN.md calls out.
//
//   1. Sketch vs. exact window - what the queue-of-queues + Space-Saving
//      machinery buys over just keeping the window exactly: memory drops
//      from O(W) to O(k) while update speed stays comparable; this is why
//      a 5M-packet window is feasible at all.
//   2. Counter budget - Memento's update cost is (almost) independent of k,
//      the property Fig. 5 relies on ("almost indifferent to changes in the
//      number of counters").
//   3. Naive uniform sampling vs. Memento's window updates - the Section 4.1
//      "natural approach": sub-sample packets into a WCSS with a tau-scaled
//      window. Accuracy collapses because the effective reference window
//      fluctuates (binomial), while Memento's stays pinned at W.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/memento.hpp"
#include "sketch/exact_window.hpp"
#include "trace/trace_generator.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace memento;

constexpr std::uint64_t kWindow = 500'000;
constexpr std::size_t kPackets = 2'000'000;

std::vector<std::uint64_t> ids_of(trace_kind kind) {
  trace_generator gen(kind, 42);
  std::vector<std::uint64_t> ids;
  ids.reserve(kPackets);
  for (std::size_t i = 0; i < kPackets; ++i) ids.push_back(flow_id(gen.next()));
  return ids;
}

void sketch_vs_exact(const std::vector<std::uint64_t>& ids) {
  std::puts("--- ablation 1: Memento sketch vs. exact window (W=500k) ---");
  console_table table({"structure", "Mpps", "approx_MB"});
  table.print_header();

  {
    memento_sketch<std::uint64_t> m(kWindow, 512, 1.0);
    stopwatch sw;
    for (const auto id : ids) m.update(id);
    const double mb = (512.0 * 48 + m.overflow_entries() * 32.0) / 1e6;
    table.cell("memento(k=512)").cell(mops(ids.size(), sw.seconds()), 1).cell(mb, 2);
    table.end_row();
  }
  {
    // Same stream through the batched ingest path (burst = 256): identical
    // final state, the speed delta is pure update-path mechanics.
    memento_sketch<std::uint64_t> m(kWindow, 512, 1.0);
    stopwatch sw;
    constexpr std::size_t kBurst = 256;
    for (std::size_t i = 0; i < ids.size(); i += kBurst) {
      m.update_batch(ids.data() + i, std::min(kBurst, ids.size() - i));
    }
    const double mb = (512.0 * 48 + m.overflow_entries() * 32.0) / 1e6;
    table.cell("memento(k=512,batch)").cell(mops(ids.size(), sw.seconds()), 1).cell(mb, 2);
    table.end_row();
  }
  {
    exact_window<std::uint64_t> w(kWindow);
    stopwatch sw;
    for (const auto id : ids) w.add(id);
    const double mb = (static_cast<double>(kWindow) * 8 + w.distinct() * 48.0) / 1e6;
    table.cell("exact_window").cell(mops(ids.size(), sw.seconds()), 1).cell(mb, 2);
    table.end_row();
  }
}

void counter_independence(const std::vector<std::uint64_t>& ids) {
  std::puts("\n--- ablation 2: update speed vs. counter budget (tau=1) ---");
  console_table table({"counters", "Mpps", "Mpps_batch"});
  table.print_header();
  for (std::size_t k : {64u, 256u, 1024u, 4096u, 16384u}) {
    double scalar_mpps = 0.0;
    {
      memento_sketch<std::uint64_t> m(kWindow, k, 1.0);
      stopwatch sw;
      for (const auto id : ids) m.update(id);
      scalar_mpps = mops(ids.size(), sw.seconds());
    }
    double batch_mpps = 0.0;
    {
      memento_sketch<std::uint64_t> m(kWindow, k, 1.0);
      stopwatch sw;
      constexpr std::size_t kBurst = 256;
      for (std::size_t i = 0; i < ids.size(); i += kBurst) {
        m.update_batch(ids.data() + i, std::min(kBurst, ids.size() - i));
      }
      batch_mpps = mops(ids.size(), sw.seconds());
    }
    table.cell(static_cast<long long>(k)).cell(scalar_mpps, 1).cell(batch_mpps, 1);
    table.end_row();
  }
}

void naive_sampling(const std::vector<std::uint64_t>& ids) {
  // The "natural approach" of Section 4.1: sub-sample into a WCSS whose
  // window is W*tau sampled packets, rescale by 1/tau. Its reference window
  // fluctuates by +-Theta(sqrt(W(1-tau)/tau)) raw packets, which adds error
  // proportional to a flow's traffic share - so the probe is a planted flow
  // holding 50% of the traffic, where the effect is near its worst case
  // (Memento's window update machinery pins the window at exactly W).
  std::puts("\n--- ablation 3: Memento vs. naive uniform sampling (Section 4.1) ---");
  std::puts("probe: planted flow at 50% share; k=4096; RMSE in packets");
  console_table table({"tau", "memento_rmse", "naive_rmse", "naive/memento"});
  table.print_header();

  constexpr std::uint64_t kHot = 0xDEADBEEFull;
  xoshiro256 mix(123);

  for (int inv_tau : {16, 64, 256}) {
    const double tau = 1.0 / inv_tau;

    memento_sketch<std::uint64_t> m(kWindow, 4096, tau, /*seed=*/3);
    const auto naive_window = static_cast<std::uint64_t>(
        std::max<double>(1.0, static_cast<double>(kWindow) * tau));
    memento_sketch<std::uint64_t> naive(naive_window, 4096, 1.0, /*seed=*/4);
    random_table_sampler naive_sampler(tau, 1u << 16, 99);
    exact_window<std::uint64_t> exact(m.window_size());

    double sq_m = 0.0;
    double sq_n = 0.0;
    std::size_t probes = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const std::uint64_t id = mix.uniform01() < 0.5 ? kHot : ids[i];
      m.update(id);
      if (naive_sampler.sample()) naive.update(id);
      exact.add(id);
      if (i > kWindow && i % 61 == 0) {
        const double truth = static_cast<double>(exact.query(kHot));
        const double em = m.query(kHot) - truth;
        const double en = naive.query(kHot) / tau - truth;
        sq_m += em * em;
        sq_n += en * en;
        ++probes;
      }
    }
    const double rm = std::sqrt(sq_m / static_cast<double>(probes));
    const double rn = std::sqrt(sq_n / static_cast<double>(probes));
    table.cell("1/" + std::to_string(inv_tau)).cell(rm, 1).cell(rn, 1).cell(rn / rm, 2);
    table.end_row();
  }
}

}  // namespace

int main() {
  std::puts("=== Ablations: Memento design choices ===");
  const auto ids = ids_of(trace_kind::backbone);
  sketch_vs_exact(ids);
  counter_independence(ids);
  naive_sampling(ids);
  return 0;
}
