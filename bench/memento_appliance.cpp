// memento_appliance: the run-to-completion pipeline as a deployable-shaped
// binary. Materializes a trace (generated preset, text, or pcap - the file
// reader sniffs), RSS-steers it into per-core slices with the pipeline's own
// partitioner, then runs every core's ingest -> parse -> update -> detect ->
// mitigate chain for a wall-clock duration and reports what an operator
// would ask of an appliance: per-core and aggregate Mpps, per-burst service
// latency percentiles (p50/p99/p99.9), drop accounting, active mitigation
// rules, and how many times the trace looped (the soak's honesty number).
//
// Two drive modes (src/pipeline/pipeline.hpp):
//   * pull (default, the soak configuration): each core pulls bursts
//     straight from its pre-steered packet_ring - no producer on the
//     measured path, so the numbers are the per-core stage chain itself;
//   * push: a producer thread feeds the per-core RX rings under an explicit
//     backpressure policy (block = lossless, drop = tail-drop + count),
//     which is the configuration the CI soak-smoke asserts on: block must
//     finish with zero drops.
//
// A third drive mode exercises the autonomic control plane:
//   * --controller: push mode with the producer steering every burst by the
//     LIVE table (pipe.process) and a cooperative controller_service ticking
//     between bursts. Mid-run the producer shifts the traffic adversarially
//     - half of every burst becomes eight elephant flows that all hash to
//     core 0 - and the controller must notice, rebalance on its own, and
//     clear the alarm; the report records the automatic decisions and the
//     wall-clock time-to-recover after the shift. `--json` then writes a
//     {"controller": ...} document summarize.py folds with --controller,
//     and the CI bench-smoke asserts >= 1 automatic rebalance with zero
//     drops under block backpressure.
//
// `--json PATH` writes the {"appliance": ...} document summarize.py folds
// into BENCH_fig5.json with --appliance. Bench preset: --duration 60.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "control/checkpoint.hpp"
#include "control/clock.hpp"
#include "control/controller.hpp"
#include "control/hosts.hpp"
#include "control/service.hpp"
#include "pipeline/pipeline.hpp"
#include "trace/trace_generator.hpp"
#include "trace/trace_io.hpp"
#include "util/table.hpp"

namespace {

using namespace memento;

struct options {
  std::size_t cores = 4;
  double duration_s = 60.0;
  std::string trace = "backbone";  ///< preset name or file path
  std::size_t packets = 4'000'000;
  std::uint64_t window = 1u << 20;
  std::size_t counters = 4096;
  std::uint64_t seed = 1;
  std::string mode = "pull";
  backpressure_policy policy = backpressure_policy::block;
  std::size_t burst = 256;
  std::size_t ring = 1u << 14;
  std::uint64_t detect_stride = 1u << 16;  ///< per-core packets between sweeps
  bool enforce = false;
  bool controller = false;  ///< autonomic control-plane soak (implies push)
  double shift_s = 0.0;     ///< skew-shift time; 0 = duration / 3
  std::string json_path;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--cores N] [--duration SECONDS] [--trace backbone|datacenter|edge|FILE]\n"
      "          [--packets N] [--window W] [--counters C] [--seed S]\n"
      "          [--mode pull|push] [--policy block|drop] [--burst N] [--ring N]\n"
      "          [--detect-stride N (0 = detection off)] [--enforce] [--json PATH]\n"
      "          [--controller] [--shift SECONDS (skew-shift time; 0 = duration/3)]\n",
      argv0);
  std::exit(2);
}

options parse(int argc, char** argv) {
  options opt;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--cores")) {
      opt.cores = std::strtoull(need(i), nullptr, 10);
    } else if (!std::strcmp(a, "--duration")) {
      opt.duration_s = std::strtod(need(i), nullptr);
    } else if (!std::strcmp(a, "--trace")) {
      opt.trace = need(i);
    } else if (!std::strcmp(a, "--packets")) {
      opt.packets = std::strtoull(need(i), nullptr, 10);
    } else if (!std::strcmp(a, "--window")) {
      opt.window = std::strtoull(need(i), nullptr, 10);
    } else if (!std::strcmp(a, "--counters")) {
      opt.counters = std::strtoull(need(i), nullptr, 10);
    } else if (!std::strcmp(a, "--seed")) {
      opt.seed = std::strtoull(need(i), nullptr, 10);
    } else if (!std::strcmp(a, "--mode")) {
      opt.mode = need(i);
    } else if (!std::strcmp(a, "--policy")) {
      const std::string p = need(i);
      if (p == "block") {
        opt.policy = backpressure_policy::block;
      } else if (p == "drop") {
        opt.policy = backpressure_policy::drop;
      } else {
        usage(argv[0]);
      }
    } else if (!std::strcmp(a, "--burst")) {
      opt.burst = std::strtoull(need(i), nullptr, 10);
    } else if (!std::strcmp(a, "--ring")) {
      opt.ring = std::strtoull(need(i), nullptr, 10);
    } else if (!std::strcmp(a, "--detect-stride")) {
      opt.detect_stride = std::strtoull(need(i), nullptr, 10);
    } else if (!std::strcmp(a, "--enforce")) {
      opt.enforce = true;
    } else if (!std::strcmp(a, "--controller")) {
      opt.controller = true;
    } else if (!std::strcmp(a, "--shift")) {
      opt.shift_s = std::strtod(need(i), nullptr);
    } else if (!std::strcmp(a, "--json")) {
      opt.json_path = need(i);
    } else {
      usage(argv[0]);
    }
  }
  if (opt.cores == 0 || opt.burst == 0 || opt.duration_s <= 0.0 || opt.mode.empty()) {
    usage(argv[0]);
  }
  if (opt.mode != "pull" && opt.mode != "push") usage(argv[0]);
  return opt;
}

std::vector<packet> load_trace(const options& opt) {
  if (opt.trace == "backbone" || opt.trace == "datacenter" || opt.trace == "edge") {
    const trace_kind kind = opt.trace == "backbone"     ? trace_kind::backbone
                            : opt.trace == "datacenter" ? trace_kind::datacenter
                                                        : trace_kind::edge;
    return make_trace(kind, opt.packets, opt.seed);
  }
  auto result = read_trace_file(opt.trace);
  if (!result.ok()) {
    std::fprintf(stderr, "memento_appliance: %s\n", result.error.c_str());
    std::exit(1);
  }
  if (result.packets.empty()) {
    std::fprintf(stderr, "memento_appliance: %s holds no usable packets\n", opt.trace.c_str());
    std::exit(1);
  }
  return std::move(result.packets);
}

/// Push mode: one producer (this thread) round-robins pre-steered bursts
/// into the RX rings until the deadline, then drains. Returns wall seconds.
double run_push(pipeline<>& pipe, std::vector<packet_ring>& sources, const options& opt) {
  pipe.start();
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(opt.duration_s));
  while (std::chrono::steady_clock::now() < deadline) {
    for (std::size_t c = 0; c < sources.size(); ++c) {
      const auto burst = sources[c].next_burst(opt.burst);
      if (!burst.empty()) pipe.offer(c, burst);
    }
  }
  pipe.drain();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  pipe.stop();
  return elapsed;
}

/// Eight flows that all hash to core 0 in DISTINCT partitioner buckets: the
/// adversarial skew unit. Each is a separately movable unit for the planner,
/// and together they pile half the post-shift traffic onto one core.
std::vector<packet> pick_elephants(const pipeline<>& pipe, std::size_t n) {
  std::vector<packet> es;
  std::vector<std::size_t> buckets;
  const auto& part = pipe.frontend().partitioner();
  for (std::uint32_t src = 0xE1E00000u; es.size() < n; ++src) {
    const packet p{src, 0x0A0A0A0Au};
    if (pipe.core_of(p) != 0) continue;
    const std::size_t b = part.bucket_of(flow_id(p));
    if (std::find(buckets.begin(), buckets.end(), b) != buckets.end()) continue;
    es.push_back(p);
    buckets.push_back(b);
  }
  return es;
}

struct controller_outcome {
  double elapsed_s = 0.0;
  double shift_s = 0.0;    ///< realized skew-shift time since start
  double recover_s = -1.0; ///< shift -> alarm_cleared; -1 = never recovered
  std::uint64_t start_ns = 0;
  std::uint64_t laps = 0;
  controller_config config;
  std::vector<control_record> decisions;
};

/// The autonomic soak: producer steers every burst by the live table
/// (process() picks up migrated bucket tables immediately), the cooperative
/// controller_service ticks between bursts, and at `shift` the traffic turns
/// adversarial. All recovery is the controller's own doing - this loop never
/// calls rebalance().
controller_outcome run_controller(pipeline<>& pipe, const std::vector<packet>& trace,
                                  const options& opt) {
  checkpoint_store store;
  pipeline_host<> host(pipe, store);
  controller_outcome out;
  out.config.sample_interval_ns = 100'000'000;
  out.config.min_segment_packets = 4096;
  out.config.load_ratio_high = 1.5;
  out.config.load_ratio_clear = 1.1;
  out.config.sustain_ticks = 2;
  out.config.rebalance_cooldown_ns = 1'000'000'000;
  out.config.checkpoint_interval_ns = 2'000'000'000;
  steady_clock_face clk;
  controller_service<pipeline_host<>> service(host, out.config, clk);  // cooperative: no start()

  const auto elephants = pick_elephants(pipe, 8);
  const double shift_after = opt.shift_s > 0.0 ? opt.shift_s : opt.duration_s / 3.0;

  pipe.start();
  out.start_ns = clk.now_ns();
  const std::uint64_t deadline_ns =
      out.start_ns + static_cast<std::uint64_t>(opt.duration_s * 1e9);
  const std::uint64_t shift_ns = out.start_ns + static_cast<std::uint64_t>(shift_after * 1e9);
  std::vector<packet> burst;
  burst.reserve(opt.burst);
  std::size_t pos = 0, e = 0;
  bool shifted = false;
  std::uint64_t shifted_at = 0;
  for (std::uint64_t now = clk.now_ns(); now < deadline_ns; now = clk.now_ns()) {
    if (!shifted && now >= shift_ns) {
      shifted = true;
      shifted_at = now;
    }
    burst.clear();
    for (std::size_t i = 0; i < opt.burst; ++i) {
      if (shifted && (i & 1u) == 0) {
        burst.push_back(elephants[e++ % elephants.size()]);
      } else {
        burst.push_back(trace[pos]);
        if (++pos == trace.size()) {
          pos = 0;
          ++out.laps;
        }
      }
    }
    pipe.process(burst.data(), burst.size());
    if (service.due()) service.tick();
  }
  pipe.drain();
  out.elapsed_s = static_cast<double>(clk.now_ns() - out.start_ns) / 1e9;
  pipe.stop();

  out.shift_s = shifted ? static_cast<double>(shifted_at - out.start_ns) / 1e9 : -1.0;
  out.decisions = service.events();
  out.decisions.erase(std::remove_if(out.decisions.begin(), out.decisions.end(),
                                     [](const control_record& r) {
                                       return r.kind == control_event::sample;
                                     }),
                      out.decisions.end());
  for (const auto& r : out.decisions) {
    if (shifted && r.kind == control_event::alarm_cleared && r.at_ns > shifted_at) {
      out.recover_s = static_cast<double>(r.at_ns - shifted_at) / 1e9;
      break;
    }
  }
  return out;
}

void emit_controller_json(const pipeline<>& pipe, const controller_outcome& out,
                          const options& opt) {
  FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "memento_appliance: cannot write %s\n", opt.json_path.c_str());
    std::exit(1);
  }
  const auto count = [&](control_event kind) {
    std::size_t n = 0;
    for (const auto& r : out.decisions) n += r.kind == kind ? 1 : 0;
    return n;
  };
  const auto total = pipe.report();
#ifdef NDEBUG
  const char* build = "release";
#else
  const char* build = "debug";
#endif
  std::fprintf(f, "{\n  \"memento_build_type\": \"%s\",\n  \"controller\": {\n", build);
  std::fprintf(f,
               "    \"config\": {\"cores\": %zu, \"policy\": \"%s\", \"trace\": \"%s\", "
               "\"window\": %llu, \"counters\": %zu, \"burst\": %zu, \"duration_s\": %g, "
               "\"sample_interval_ms\": %g, \"load_ratio_high\": %g, \"load_ratio_clear\": %g, "
               "\"sustain_ticks\": %u, \"rebalance_cooldown_s\": %g, "
               "\"checkpoint_interval_s\": %g},\n",
               opt.cores, backpressure_policy_name(opt.policy), opt.trace.c_str(),
               static_cast<unsigned long long>(opt.window), opt.counters, opt.burst,
               opt.duration_s, static_cast<double>(out.config.sample_interval_ns) / 1e6,
               out.config.load_ratio_high, out.config.load_ratio_clear,
               out.config.sustain_ticks,
               static_cast<double>(out.config.rebalance_cooldown_ns) / 1e9,
               static_cast<double>(out.config.checkpoint_interval_ns) / 1e9);
  std::fprintf(f,
               "    \"elapsed_s\": %.3f,\n    \"skew_shift_s\": %.3f,\n"
               "    \"recover_s\": %.3f,\n",
               out.elapsed_s, out.shift_s, out.recover_s);
  std::fprintf(f,
               "    \"total\": {\"packets\": %llu, \"mpps\": %.3f, \"drops\": %llu, "
               "\"trace_laps\": %llu},\n",
               static_cast<unsigned long long>(total.ingested),
               static_cast<double>(total.ingested) / out.elapsed_s / 1e6,
               static_cast<unsigned long long>(total.drops),
               static_cast<unsigned long long>(out.laps));
  std::fprintf(f,
               "    \"decisions\": {\"alarms_raised\": %zu, \"alarms_cleared\": %zu, "
               "\"rebalances\": %zu, \"rebalance_noops\": %zu, \"rebalances_suppressed\": %zu, "
               "\"checkpoints\": %zu, \"checkpoint_failures\": %zu},\n",
               count(control_event::alarm_raised), count(control_event::alarm_cleared),
               count(control_event::rebalance_applied), count(control_event::rebalance_noop),
               count(control_event::rebalance_suppressed),
               count(control_event::checkpoint_taken), count(control_event::checkpoint_failed));
  std::fprintf(f, "    \"events\": [\n");
  for (std::size_t i = 0; i < out.decisions.size(); ++i) {
    const auto& r = out.decisions[i];
    std::fprintf(f,
                 "      {\"t_ms\": %.1f, \"kind\": \"%s\", \"load_ratio\": %.4f, "
                 "\"coverage_spread\": %.4f, \"shards\": %zu, \"detail\": %llu}%s\n",
                 static_cast<double>(r.at_ns - out.start_ns) / 1e6, control_event_name(r.kind),
                 r.load_ratio, r.coverage_spread, r.shards,
                 static_cast<unsigned long long>(r.detail),
                 i + 1 < out.decisions.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
}

void emit_json(const pipeline<>& pipe, const std::vector<packet_ring>& sources,
               const options& opt, double elapsed) {
  FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "memento_appliance: cannot write %s\n", opt.json_path.c_str());
    std::exit(1);
  }
  std::uint64_t laps = 0;
  for (const auto& s : sources) laps += s.laps();
  const auto total = pipe.report();
  std::fprintf(f, "{\n  \"appliance\": {\n");
  std::fprintf(f,
               "    \"config\": {\"cores\": %zu, \"mode\": \"%s\", \"policy\": \"%s\", "
               "\"trace\": \"%s\", \"packets\": %zu, \"window\": %llu, \"counters\": %zu, "
               "\"detect_stride\": %llu, \"enforce\": %s, \"burst\": %zu, "
               "\"duration_s\": %g},\n",
               opt.cores, opt.mode.c_str(), backpressure_policy_name(opt.policy),
               opt.trace.c_str(), opt.packets, static_cast<unsigned long long>(opt.window),
               opt.counters, static_cast<unsigned long long>(opt.detect_stride),
               opt.enforce ? "true" : "false", opt.burst, opt.duration_s);
  std::fprintf(f, "    \"elapsed_s\": %.3f,\n", elapsed);
  std::fprintf(f,
               "    \"total\": {\"packets\": %llu, \"mpps\": %.3f, \"drops\": %llu, "
               "\"mitigated\": %llu, \"active_rules\": %zu, \"trace_laps\": %llu, "
               "\"p50_ns\": %llu, \"p99_ns\": %llu, \"p999_ns\": %llu, \"mean_ns\": %.1f},\n",
               static_cast<unsigned long long>(total.ingested),
               static_cast<double>(total.ingested) / elapsed / 1e6,
               static_cast<unsigned long long>(total.drops),
               static_cast<unsigned long long>(total.mitigated), total.active_rules,
               static_cast<unsigned long long>(laps),
               static_cast<unsigned long long>(total.latency.p50()),
               static_cast<unsigned long long>(total.latency.p99()),
               static_cast<unsigned long long>(total.latency.p999()), total.latency.mean());
  std::fprintf(f, "    \"cores\": [\n");
  for (std::size_t c = 0; c < pipe.cores(); ++c) {
    const auto r = pipe.report(c);
    std::fprintf(f,
                 "      {\"core\": %zu, \"packets\": %llu, \"mpps\": %.3f, \"drops\": %llu, "
                 "\"occupancy_hwm\": %llu, \"mitigated\": %llu, \"detect_sweeps\": %llu, "
                 "\"p50_ns\": %llu, \"p99_ns\": %llu, \"p999_ns\": %llu}%s\n",
                 c, static_cast<unsigned long long>(r.ingested),
                 static_cast<double>(r.ingested) / elapsed / 1e6,
                 static_cast<unsigned long long>(r.rx.drops),
                 static_cast<unsigned long long>(r.rx.occupancy_hwm),
                 static_cast<unsigned long long>(r.mitigated),
                 static_cast<unsigned long long>(r.detect_sweeps),
                 static_cast<unsigned long long>(r.latency.p50()),
                 static_cast<unsigned long long>(r.latency.p99()),
                 static_cast<unsigned long long>(r.latency.p999()),
                 c + 1 < pipe.cores() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const options opt = parse(argc, argv);

  pipeline_config cfg;
  cfg.sharding.window_size = opt.window;
  cfg.sharding.counters = opt.counters;
  cfg.sharding.seed = opt.seed;
  cfg.sharding.shards = opt.cores;
  cfg.ring_capacity = opt.ring;
  cfg.policy = opt.policy;
  cfg.detect_stride = opt.detect_stride;
  cfg.enforce = opt.enforce;
  pipeline<> pipe(cfg);

  std::printf("memento_appliance: loading trace '%s' (%zu packets requested)...\n",
              opt.trace.c_str(), opt.packets);
  const std::vector<packet> trace = load_trace(opt);

  if (opt.controller) {
    std::printf("memento_appliance: %zu cores, controller soak, policy=%s, %.0fs "
                "(skew shift at %.1fs)...\n",
                opt.cores, backpressure_policy_name(opt.policy), opt.duration_s,
                opt.shift_s > 0.0 ? opt.shift_s : opt.duration_s / 3.0);
    const controller_outcome out = run_controller(pipe, trace, opt);
    const auto total = pipe.report();
    std::printf(
        "controller soak: %.3f Mpps over %.1fs (%llu packets, %llu dropped, %llu laps)\n",
        static_cast<double>(total.ingested) / out.elapsed_s / 1e6, out.elapsed_s,
        static_cast<unsigned long long>(total.ingested),
        static_cast<unsigned long long>(total.drops),
        static_cast<unsigned long long>(out.laps));
    std::size_t rebalances = 0;
    for (const auto& r : out.decisions) {
      rebalances += r.kind == control_event::rebalance_applied ? 1 : 0;
      std::printf("  t=%8.1fms %-22s ratio=%.3f spread=%.3f shards=%zu detail=%llu\n",
                  static_cast<double>(r.at_ns - out.start_ns) / 1e6,
                  control_event_name(r.kind), r.load_ratio, r.coverage_spread, r.shards,
                  static_cast<unsigned long long>(r.detail));
    }
    std::printf("skew shift at %.3fs; %zu automatic rebalance(s); time-to-recover %.3fs\n",
                out.shift_s, rebalances, out.recover_s);
    if (!opt.json_path.empty()) emit_controller_json(pipe, out, opt);
    return 0;
  }

  // RSS: steer once, up front, with the pipeline's own partitioner - core
  // c's slice is exactly shard c's keyspace, so replay is differentially
  // identical to frontend ingest of the same trace.
  auto per_core = rss_steer(std::span<const packet>(trace), opt.cores,
                            [&](const packet& p) { return pipe.core_of(p); });
  std::vector<packet_ring> sources;
  sources.reserve(opt.cores);
  for (auto& slice : per_core) sources.emplace_back(std::move(slice));

  std::printf("memento_appliance: %zu cores, mode=%s, policy=%s, soaking %.0fs...\n", opt.cores,
              opt.mode.c_str(), backpressure_policy_name(opt.policy), opt.duration_s);
  const double elapsed = opt.mode == "push"
                             ? run_push(pipe, sources, opt)
                             : pipe.run_pull(std::span<packet_ring>(sources), opt.duration_s,
                                             opt.burst);

  const auto total = pipe.report();
  std::uint64_t laps = 0;
  for (const auto& s : sources) laps += s.laps();

  console_table table({"core", "packets", "mpps", "drops", "occ hwm", "sweeps", "p50 ns",
                       "p99 ns", "p99.9 ns"});
  table.print_header();
  for (std::size_t c = 0; c < pipe.cores(); ++c) {
    const auto r = pipe.report(c);
    table.cell(static_cast<long long>(c))
        .cell(static_cast<long long>(r.ingested))
        .cell(static_cast<double>(r.ingested) / elapsed / 1e6, 3)
        .cell(static_cast<long long>(r.rx.drops))
        .cell(static_cast<long long>(r.rx.occupancy_hwm))
        .cell(static_cast<long long>(r.detect_sweeps))
        .cell(static_cast<long long>(r.latency.p50()))
        .cell(static_cast<long long>(r.latency.p99()))
        .cell(static_cast<long long>(r.latency.p999()));
    table.end_row();
  }
  std::printf(
      "total: %.3f Mpps over %.1fs (%llu packets, %llu dropped, %llu mitigated, "
      "%zu active rules, %llu trace laps)\n",
      static_cast<double>(total.ingested) / elapsed / 1e6, elapsed,
      static_cast<unsigned long long>(total.ingested),
      static_cast<unsigned long long>(total.drops),
      static_cast<unsigned long long>(total.mitigated), total.active_rules,
      static_cast<unsigned long long>(laps));
  std::printf("burst latency: p50 %llu ns, p99 %llu ns, p99.9 %llu ns, mean %.1f ns\n",
              static_cast<unsigned long long>(total.latency.p50()),
              static_cast<unsigned long long>(total.latency.p99()),
              static_cast<unsigned long long>(total.latency.p999()), total.latency.mean());

  if (!opt.json_path.empty()) emit_json(pipe, sources, opt, elapsed);
  return 0;
}
