// Figure 5 a/c/e: Memento update speed as a function of the sampling
// probability tau, for 64/512/4096 counters, on the three trace surrogates.
// WCSS is the tau = 1 row of each series.
//
// Expected shape (paper): throughput is governed by tau and nearly
// indifferent to the counter budget; Memento reaches up to ~14x WCSS.
//
// Each configuration runs twice: `fig5/hh_speed` feeds packets one scalar
// update() at a time, `fig5/hh_speed_batch` feeds NIC-burst-sized spans
// (kBurst packets) through update_batch(). Both process the identical
// stream and end in identical sketch state; the delta is pure hot-path
// mechanics (pre-drawn sampling, chunked hashing + prefetch, hoisted
// window bookkeeping). `fig5/hh_speed_sharded` adds the multicore axis:
// the same bursts through sharded_memento_pool at N = 1..8 shards, wall-
// clock timed (scaling requires >= N physical cores to show). bench/
// summarize.py reduces the JSON output of this binary into BENCH_fig5.json,
// the per-PR throughput trajectory artifact, including the scaling curve.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "core/memento.hpp"
#include "shard/shard_pool.hpp"
#include "trace/trace_generator.hpp"

namespace {

using namespace memento;

constexpr std::size_t kTracePackets = 2'000'000;
constexpr std::uint64_t kWindow = 1'000'000;

/// Pre-materialized flow-id traces (generated once per process).
const std::vector<std::uint64_t>& trace_ids(trace_kind kind) {
  static std::vector<std::uint64_t> cache[3];
  auto& slot = cache[static_cast<int>(kind)];
  if (slot.empty()) {
    trace_generator gen(kind, 42);
    slot.reserve(kTracePackets);
    for (std::size_t i = 0; i < kTracePackets; ++i) slot.push_back(flow_id(gen.next()));
  }
  return slot;
}

/// Packets per update_batch() call in the batch variant: a realistic NIC
/// receive burst, and large enough to fill the kernel's internal chunk.
constexpr std::size_t kBurst = 256;

void hh_speed(benchmark::State& state) {
  const auto kind = static_cast<trace_kind>(state.range(0));
  const auto counters = static_cast<std::size_t>(state.range(1));
  const double tau = 1.0 / static_cast<double>(state.range(2));

  const auto& ids = trace_ids(kind);
  memento_sketch<std::uint64_t> sketch(kWindow, counters, tau, /*seed=*/1);

  for (auto _ : state) {
    for (const auto id : ids) sketch.update(id);
    benchmark::DoNotOptimize(sketch.stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ids.size()));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(ids.size()) / 1e6,
      benchmark::Counter::kIsRate);
  state.SetLabel(std::string(trace_name(kind)) + "/k=" + std::to_string(counters) +
                 "/tau=1/" + std::to_string(state.range(2)));
}

void hh_speed_batch(benchmark::State& state) {
  const auto kind = static_cast<trace_kind>(state.range(0));
  const auto counters = static_cast<std::size_t>(state.range(1));
  const double tau = 1.0 / static_cast<double>(state.range(2));

  const auto& ids = trace_ids(kind);
  memento_sketch<std::uint64_t> sketch(kWindow, counters, tau, /*seed=*/1);

  for (auto _ : state) {
    for (std::size_t i = 0; i < ids.size(); i += kBurst) {
      sketch.update_batch(ids.data() + i, std::min(kBurst, ids.size() - i));
    }
    benchmark::DoNotOptimize(sketch.stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ids.size()));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(ids.size()) / 1e6,
      benchmark::Counter::kIsRate);
  state.SetLabel(std::string(trace_name(kind)) + "/k=" + std::to_string(counters) +
                 "/tau=1/" + std::to_string(state.range(2)) + "/burst=" + std::to_string(kBurst));
}

// Sharded variant: the same stream pushed through sharded_memento_pool with
// N worker threads (args: kind, counters, inv_tau, shards). Window and
// counter budgets are GLOBAL (divided across shards), so the N = 1 row is
// the single-instance batch pipeline plus partition/queue overhead and the
// N > 1 rows measure genuine multicore scaling. Each iteration ingests the
// full trace in NIC bursts and drains, so queue flush time is inside the
// measurement. bench/summarize.py turns these rows into the scaling curve
// recorded in BENCH_fig5.json (speedup vs N=1 and vs the batch baseline).
void hh_speed_sharded(benchmark::State& state) {
  const auto kind = static_cast<trace_kind>(state.range(0));
  const auto counters = static_cast<std::size_t>(state.range(1));
  const double tau = 1.0 / static_cast<double>(state.range(2));
  const auto shards = static_cast<std::size_t>(state.range(3));

  const auto& ids = trace_ids(kind);
  shard_config cfg;
  cfg.window_size = kWindow;
  cfg.counters = counters;
  cfg.tau = tau;
  cfg.seed = 1;
  cfg.shards = shards;
  sharded_memento_pool<std::uint64_t> pool(cfg);

  // Mpps is computed against WALL time accumulated by hand: the kIsRate
  // counter divides by the main thread's CPU time, which misstates a
  // pipeline whose work happens on N worker threads.
  double elapsed = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ids.size(); i += kBurst) {
      pool.ingest(ids.data() + i, std::min(kBurst, ids.size() - i));
    }
    pool.drain();
    elapsed += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    benchmark::DoNotOptimize(pool.frontend().stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ids.size()));
  state.counters["Mpps"] =
      static_cast<double>(state.iterations()) * static_cast<double>(ids.size()) / 1e6 / elapsed;
  state.SetLabel(std::string(trace_name(kind)) + "/k=" + std::to_string(counters) +
                 "/tau=1/" + std::to_string(state.range(2)) + "/burst=" + std::to_string(kBurst) +
                 "/shards=" + std::to_string(shards));
}

void register_all() {
  for (int kind = 0; kind < 3; ++kind) {
    for (std::int64_t counters : {64, 512, 4096}) {
      for (std::int64_t inv_tau : {1, 4, 16, 64, 256, 1024}) {
        benchmark::RegisterBenchmark("fig5/hh_speed", hh_speed)
            ->Args({kind, counters, inv_tau})
            ->MinTime(0.1)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark("fig5/hh_speed_batch", hh_speed_batch)
            ->Args({kind, counters, inv_tau})
            ->MinTime(0.1)
            ->Unit(benchmark::kMillisecond);
      }
    }
    // Core-scaling sweep at the paper's middle counter budget; thread
    // startup sits outside the measured loop, queue drain inside it.
    for (std::int64_t inv_tau : {1, 16, 256}) {
      for (std::int64_t shards : {1, 2, 4, 8}) {
        benchmark::RegisterBenchmark("fig5/hh_speed_sharded", hh_speed_sharded)
            ->Args({kind, 512, inv_tau, shards})
            ->MinTime(0.1)
            ->Unit(benchmark::kMillisecond)
            ->UseRealTime();  // wall clock, not per-thread CPU, for scaling
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
