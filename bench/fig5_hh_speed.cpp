// Figure 5 a/c/e: Memento update speed as a function of the sampling
// probability tau, for 64/512/4096 counters, on the three trace surrogates.
// WCSS is the tau = 1 row of each series.
//
// Expected shape (paper): throughput is governed by tau and nearly
// indifferent to the counter budget; Memento reaches up to ~14x WCSS.
//
// Each configuration runs twice: `fig5/hh_speed` feeds packets one scalar
// update() at a time, `fig5/hh_speed_batch` feeds NIC-burst-sized spans
// (kBurst packets) through update_batch(). Both process the identical
// stream and end in identical sketch state; the delta is pure hot-path
// mechanics (pre-drawn sampling, chunked hashing + prefetch, hoisted
// window bookkeeping). `fig5/hh_speed_sharded` adds the multicore axis:
// the same bursts through sharded_memento_pool at N = 1..8 shards, wall-
// clock timed (scaling requires >= N physical cores to show).
// `fig5/hh_speed_rebalanced` adds the skew axis: Zipf 0.6-1.2 elephant
// mixes scored static-hashing vs the coverage_rebalancer's weighted table
// (load ratio, window-coverage spread, recall vs an exact oracle). bench/
// summarize.py reduces the JSON output of this binary into BENCH_fig5.json,
// the per-PR throughput trajectory artifact, including the scaling curve
// and the `rebalance` section.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/memento.hpp"
#include "shard/rebalance.hpp"
#include "shard/shard_pool.hpp"
#include "sketch/exact_window.hpp"
#include "trace/trace_generator.hpp"
#include "util/simd.hpp"

namespace {

using namespace memento;

constexpr std::size_t kTracePackets = 2'000'000;
constexpr std::uint64_t kWindow = 1'000'000;

/// Pre-materialized flow-id traces (generated once per process).
const std::vector<std::uint64_t>& trace_ids(trace_kind kind) {
  static std::vector<std::uint64_t> cache[3];
  auto& slot = cache[static_cast<int>(kind)];
  if (slot.empty()) {
    trace_generator gen(kind, 42);
    slot.reserve(kTracePackets);
    for (std::size_t i = 0; i < kTracePackets; ++i) slot.push_back(flow_id(gen.next()));
  }
  return slot;
}

/// Packets per update_batch() call in the batch variant: a realistic NIC
/// receive burst, and large enough to fill the kernel's internal chunk.
constexpr std::size_t kBurst = 256;

/// Probe-behavior counters: how the Space-Saving counter index and the
/// overflow table actually probed during the run, so SIMD-vs-scalar probe
/// behavior is observable in the artifact rather than inferred from Mpps.
void attach_probe_stats(benchmark::State& state, const memento_sketch<std::uint64_t>& sketch) {
  const flat_hash_stats idx = sketch.counter_index_stats();
  state.counters["index_load"] = idx.load_factor;
  state.counters["index_max_probe"] = static_cast<double>(idx.max_probe);
  state.counters["index_mean_probe"] = idx.mean_probe;
  const flat_hash_stats ovf = sketch.overflow_table_stats();
  state.counters["overflow_load"] = ovf.load_factor;
  state.counters["overflow_max_probe"] = static_cast<double>(ovf.max_probe);
  state.counters["overflow_peak_per_block"] = static_cast<double>(sketch.block_overflow_peak());
}

void hh_speed(benchmark::State& state) {
  const auto kind = static_cast<trace_kind>(state.range(0));
  const auto counters = static_cast<std::size_t>(state.range(1));
  const double tau = 1.0 / static_cast<double>(state.range(2));

  const auto& ids = trace_ids(kind);
  memento_sketch<std::uint64_t> sketch(kWindow, counters, tau, /*seed=*/1);

  for (auto _ : state) {
    for (const auto id : ids) sketch.update(id);
    benchmark::DoNotOptimize(sketch.stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ids.size()));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(ids.size()) / 1e6,
      benchmark::Counter::kIsRate);
  attach_probe_stats(state, sketch);
  state.SetLabel(std::string(trace_name(kind)) + "/k=" + std::to_string(counters) +
                 "/tau=1/" + std::to_string(state.range(2)));
}

void hh_speed_batch(benchmark::State& state) {
  const auto kind = static_cast<trace_kind>(state.range(0));
  const auto counters = static_cast<std::size_t>(state.range(1));
  const double tau = 1.0 / static_cast<double>(state.range(2));

  const auto& ids = trace_ids(kind);
  memento_sketch<std::uint64_t> sketch(kWindow, counters, tau, /*seed=*/1);

  for (auto _ : state) {
    for (std::size_t i = 0; i < ids.size(); i += kBurst) {
      sketch.update_batch(ids.data() + i, std::min(kBurst, ids.size() - i));
    }
    benchmark::DoNotOptimize(sketch.stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ids.size()));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(ids.size()) / 1e6,
      benchmark::Counter::kIsRate);
  attach_probe_stats(state, sketch);
  state.SetLabel(std::string(trace_name(kind)) + "/k=" + std::to_string(counters) +
                 "/tau=1/" + std::to_string(state.range(2)) + "/burst=" + std::to_string(kBurst));
}

// Sharded variant: the same stream pushed through sharded_memento_pool with
// N worker threads (args: kind, counters, inv_tau, shards). Window and
// counter budgets are GLOBAL (divided across shards), so the N = 1 row is
// the single-instance batch pipeline plus partition/queue overhead and the
// N > 1 rows measure genuine multicore scaling. Each iteration ingests the
// full trace in NIC bursts and drains, so queue flush time is inside the
// measurement. bench/summarize.py turns these rows into the scaling curve
// recorded in BENCH_fig5.json (speedup vs N=1 and vs the batch baseline).
void hh_speed_sharded(benchmark::State& state) {
  const auto kind = static_cast<trace_kind>(state.range(0));
  const auto counters = static_cast<std::size_t>(state.range(1));
  const double tau = 1.0 / static_cast<double>(state.range(2));
  const auto shards = static_cast<std::size_t>(state.range(3));

  const auto& ids = trace_ids(kind);
  shard_config cfg;
  cfg.window_size = kWindow;
  cfg.counters = counters;
  cfg.tau = tau;
  cfg.seed = 1;
  cfg.shards = shards;
  sharded_memento_pool<std::uint64_t> pool(cfg);

  // Mpps is computed against WALL time accumulated by hand: the kIsRate
  // counter divides by the main thread's CPU time, which misstates a
  // pipeline whose work happens on N worker threads.
  double elapsed = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ids.size(); i += kBurst) {
      pool.ingest(ids.data() + i, std::min(kBurst, ids.size() - i));
    }
    pool.drain();
    elapsed += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    benchmark::DoNotOptimize(pool.frontend().stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ids.size()));
  state.counters["Mpps"] =
      static_cast<double>(state.iterations()) * static_cast<double>(ids.size()) / 1e6 / elapsed;
  state.SetLabel(std::string(trace_name(kind)) + "/k=" + std::to_string(counters) +
                 "/tau=1/" + std::to_string(state.range(2)) + "/burst=" + std::to_string(kBurst) +
                 "/shards=" + std::to_string(shards));
}

// Skew-aware rebalancing row (args: alpha_x10): a Zipf(alpha) background
// with three injected elephant flows (25% of traffic combined) that static
// hashing piles onto ONE of 4 shards. Each iteration builds the skewed
// deployment, forks a static-hashing control arm, rebalances the other arm
// (coverage_rebalancer through the snapshot reshard path - the measured
// rebalance_ms), then streams a second phase into both arms and scores
// them: realized max/min shard load ratio, window_coverage() spread, and
// heavy-hitter recall against an exact window oracle. Mpps is the
// rebalanced arm's phase-2 update throughput (the weighted table's routing
// cost rides in it). summarize.py folds these rows - with the static
// counters alongside - into BENCH_fig5.json's `rebalance` section: the
// recall/coverage-recovered-versus-static record.
void hh_speed_rebalanced(benchmark::State& state) {
  const double alpha = static_cast<double>(state.range(0)) / 10.0;
  constexpr std::uint64_t kRebalWindow = 250'000;
  constexpr std::size_t kShards = 4;
  constexpr double kTheta = 0.01;

  shard_config cfg;
  cfg.window_size = kRebalWindow;
  cfg.counters = 512;
  cfg.tau = 1.0;
  cfg.seed = 1;
  cfg.shards = kShards;

  // Three elephants, all hashed onto shard 0, each in its own bucket (a
  // separately movable unit). 25% of the stream combined: the overloaded
  // shard carries ~0.25 + 0.75/4 ~ 44% of the update load.
  const shard_partitioner<std::uint64_t> probe(kShards);
  std::vector<std::uint64_t> elephants;
  std::vector<std::size_t> taken;
  for (std::uint64_t x = 1u << 20; elephants.size() < 3; ++x) {
    if (probe(x) != 0) continue;
    const std::size_t b = probe.bucket_of(x);
    if (std::find(taken.begin(), taken.end(), b) != taken.end()) continue;
    elephants.push_back(x);
    taken.push_back(b);
  }
  const auto make_mix = [&](std::size_t n, std::uint64_t seed) {
    trace_generator gen(trace_config{1u << 14, alpha, seed, 0});
    std::vector<std::uint64_t> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(i % 4 == 0 ? elephants[(i / 4) % elephants.size()]
                               : flow_id(gen.next()));
    }
    return ids;
  };
  const auto phase_a = make_mix(600'000, 7);
  const auto phase_b = make_mix(400'000, 8);
  exact_window<std::uint64_t> oracle(kRebalWindow);
  for (const auto id : phase_b) oracle.add(id);
  std::vector<std::uint64_t> truth;
  oracle.for_each([&](const std::uint64_t& key, std::uint64_t count) {
    if (static_cast<double>(count) >= kTheta * static_cast<double>(kRebalWindow)) {
      truth.push_back(key);
    }
  });

  // Scoring shared with tests/rebalance_test.cpp: shard_load_ratio and
  // coverage_spread come from shard/rebalance.hpp, so the CI-asserted
  // artifact and the acceptance test measure the same thing (including the
  // starved-shard = +infinity convention, guarded below before JSON).
  const auto recall = [&](const sharded_memento<std::uint64_t>& f) {
    const auto found = f.heavy_hitters(kTheta);
    std::size_t hit = 0;
    for (const auto& key : truth) {
      if (std::any_of(found.begin(), found.end(),
                      [&](const auto& hh) { return hh.key == key; })) {
        ++hit;
      }
    }
    return truth.empty() ? 1.0
                         : static_cast<double>(hit) / static_cast<double>(truth.size());
  };
  const auto stream_base = [](const sharded_memento<std::uint64_t>& f) {
    std::vector<std::uint64_t> base;
    for (std::size_t s = 0; s < f.num_shards(); ++s) {
      base.push_back(f.shard(s).stream_length());
    }
    return base;
  };

  const coverage_rebalancer policy;
  double elapsed_static = 0.0, elapsed_rebalanced = 0.0, rebalance_seconds = 0.0;
  double r_static = 0.0, r_rebalanced = 0.0, s_static = 0.0, s_rebalanced = 0.0;
  double rec_static = 0.0, rec_rebalanced = 0.0;
  using clock = std::chrono::steady_clock;
  for (auto _ : state) {
    sharded_memento<std::uint64_t> front(cfg);
    for (std::size_t i = 0; i < phase_a.size(); i += kBurst) {
      front.update_batch(phase_a.data() + i, std::min(kBurst, phase_a.size() - i));
    }
    sharded_memento<std::uint64_t> static_front = front;

    const auto t0 = clock::now();
    const bool moved = front.rebalance(policy);
    rebalance_seconds += std::chrono::duration<double>(clock::now() - t0).count();
    if (!moved) {
      state.SkipWithError("rebalance did not trigger on the elephant mix");
      break;
    }

    const auto base_static = stream_base(static_front);
    const auto base_rebalanced = stream_base(front);
    const auto t1 = clock::now();
    for (std::size_t i = 0; i < phase_b.size(); i += kBurst) {
      static_front.update_batch(phase_b.data() + i, std::min(kBurst, phase_b.size() - i));
    }
    const auto t2 = clock::now();
    for (std::size_t i = 0; i < phase_b.size(); i += kBurst) {
      front.update_batch(phase_b.data() + i, std::min(kBurst, phase_b.size() - i));
    }
    const auto t3 = clock::now();
    elapsed_static += std::chrono::duration<double>(t2 - t1).count();
    elapsed_rebalanced += std::chrono::duration<double>(t3 - t2).count();

    r_static = shard_load_ratio(static_front, base_static);
    r_rebalanced = shard_load_ratio(front, base_rebalanced);
    s_static = coverage_spread(static_front);
    s_rebalanced = coverage_spread(front);
    rec_static = recall(static_front);
    rec_rebalanced = recall(front);
    // A starved shard scores +infinity, which must fail the run loudly -
    // not reach the JSON artifact (where it would break the parser) or be
    // mistaken for balance.
    if (!std::isfinite(r_static) || !std::isfinite(r_rebalanced)) {
      state.SkipWithError("a shard received no phase-2 packets");
      break;
    }
    benchmark::DoNotOptimize(front.candidate_count());
  }

  const double iters = static_cast<double>(state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(iters) *
                          static_cast<std::int64_t>(phase_b.size()));
  state.counters["Mpps"] = iters * static_cast<double>(phase_b.size()) / 1e6 /
                           (elapsed_rebalanced > 0.0 ? elapsed_rebalanced : 1.0);
  state.counters["static_mpps"] = iters * static_cast<double>(phase_b.size()) / 1e6 /
                                  (elapsed_static > 0.0 ? elapsed_static : 1.0);
  state.counters["rebalance_ms"] = 1e3 * rebalance_seconds / iters;
  state.counters["static_load_ratio"] = r_static;
  state.counters["rebalanced_load_ratio"] = r_rebalanced;
  state.counters["static_coverage_spread"] = s_static;
  state.counters["rebalanced_coverage_spread"] = s_rebalanced;
  state.counters["static_recall"] = rec_static;
  state.counters["rebalanced_recall"] = rec_rebalanced;
  state.SetLabel("elephant-zipf/alpha=" + std::to_string(state.range(0)) +
                 "e-1/k=512/shards=4/theta=0.01");
}

void register_all() {
  for (int kind = 0; kind < 3; ++kind) {
    for (std::int64_t counters : {64, 512, 4096}) {
      for (std::int64_t inv_tau : {1, 4, 16, 64, 256, 1024}) {
        benchmark::RegisterBenchmark("fig5/hh_speed", hh_speed)
            ->Args({kind, counters, inv_tau})
            ->MinTime(0.1)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark("fig5/hh_speed_batch", hh_speed_batch)
            ->Args({kind, counters, inv_tau})
            ->MinTime(0.1)
            ->Unit(benchmark::kMillisecond);
      }
    }
    // Core-scaling sweep at the paper's middle counter budget; thread
    // startup sits outside the measured loop, queue drain inside it.
    for (std::int64_t inv_tau : {1, 16, 256}) {
      for (std::int64_t shards : {1, 2, 4, 8}) {
        benchmark::RegisterBenchmark("fig5/hh_speed_sharded", hh_speed_sharded)
            ->Args({kind, 512, inv_tau, shards})
            ->MinTime(0.1)
            ->Unit(benchmark::kMillisecond)
            ->UseRealTime();  // wall clock, not per-thread CPU, for scaling
      }
    }
  }
  // Skew-aware rebalancing: Zipf 0.6-1.2 elephant mixes, static hashing vs
  // the rebalanced weighted table (recall/coverage/load-balance recovered).
  for (std::int64_t alpha_x10 : {6, 9, 12}) {
    benchmark::RegisterBenchmark("fig5/hh_speed_rebalanced", hh_speed_rebalanced)
        ->Args({alpha_x10})
        ->MinTime(0.1)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  // Provenance context for summarize.py. `memento_build_type` reflects THIS
  // binary's codegen (bench targets pin -O3 -DNDEBUG regardless of the
  // CMake build type), unlike gbench's `library_build_type`, which reports
  // how the distro built libbenchmark. `memento_simd_dispatch` records the
  // kernel tier the run actually used (cpuid + MEMENTO_ISA clamp).
#if defined(NDEBUG) && defined(__OPTIMIZE__)
  benchmark::AddCustomContext("memento_build_type", "release");
#else
  benchmark::AddCustomContext("memento_build_type", "debug");
#endif
  benchmark::AddCustomContext("memento_simd_dispatch",
                              memento::simd::tier_name(memento::simd::active()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
