// Figure 6: H-Memento update speed vs. the Baseline (MST over WCSS) on the
// backbone surrogate, in one dimension (H=5) and two (H=25), for counter
// budgets 64H / 512H / 4096H.
//
// Expected shape (paper): tau dominates; H-Memento reaches up to ~52x (1D)
// and ~273x (2D) over the Baseline, because the Baseline pays H Full updates
// per packet while H-Memento pays at most one.
//
// `fig6/h_memento_*_batch` replays the same stream through
// h_memento::update_batch in NIC-burst spans; state is identical to the
// scalar series, the delta is the batched ingest mechanics.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/baseline_window_mst.hpp"
#include "core/h_memento.hpp"
#include "shard/sharded_h_memento.hpp"
#include "trace/trace_generator.hpp"
#include "util/simd.hpp"

namespace {

using namespace memento;

constexpr std::size_t kTracePackets = 1'000'000;
constexpr std::uint64_t kWindow = 1'000'000;

const std::vector<packet>& bench_trace() {
  static const std::vector<packet> trace = make_trace(trace_kind::backbone, kTracePackets, 42);
  return trace;
}

template <typename H>
void hhh_memento_speed(benchmark::State& state) {
  const auto counters_per_h = static_cast<std::size_t>(state.range(0));
  const double tau = 1.0 / static_cast<double>(state.range(1));
  h_memento<H> alg(kWindow, counters_per_h * H::hierarchy_size, tau, 1e-3, /*seed=*/1);
  const auto& trace = bench_trace();
  for (auto _ : state) {
    for (const auto& p : trace) alg.update(p);
    benchmark::DoNotOptimize(alg.stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(trace.size()) / 1e6,
      benchmark::Counter::kIsRate);
}

template <typename H>
void hhh_memento_speed_batch(benchmark::State& state) {
  constexpr std::size_t kBurst = 256;
  const auto counters_per_h = static_cast<std::size_t>(state.range(0));
  const double tau = 1.0 / static_cast<double>(state.range(1));
  h_memento<H> alg(kWindow, counters_per_h * H::hierarchy_size, tau, 1e-3, /*seed=*/1);
  const auto& trace = bench_trace();
  for (auto _ : state) {
    for (std::size_t i = 0; i < trace.size(); i += kBurst) {
      alg.update_batch(trace.data() + i, std::min(kBurst, trace.size() - i));
    }
    benchmark::DoNotOptimize(alg.stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(trace.size()) / 1e6,
      benchmark::Counter::kIsRate);
}

/// Prefix-sharded frontend, single-threaded: the routing + per-shard batch
/// cost relative to one big instance (the shards split the same global
/// counter/window budget, so memory is held constant across the sweep).
template <typename H>
void hhh_memento_speed_sharded(benchmark::State& state) {
  constexpr std::size_t kBurst = 256;
  const auto counters_per_h = static_cast<std::size_t>(state.range(0));
  const double tau = 1.0 / static_cast<double>(state.range(1));
  const auto shards = static_cast<std::size_t>(state.range(2));
  const h_memento_config cfg{kWindow, counters_per_h * H::hierarchy_size, tau, 1e-3, /*seed=*/1};
  sharded_h_memento<H> alg(cfg, shards);
  const auto& trace = bench_trace();
  for (auto _ : state) {
    for (std::size_t i = 0; i < trace.size(); i += kBurst) {
      alg.update_batch(trace.data() + i, std::min(kBurst, trace.size() - i));
    }
    benchmark::DoNotOptimize(alg.stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(trace.size()) / 1e6,
      benchmark::Counter::kIsRate);
}

template <typename H>
void hhh_baseline_speed(benchmark::State& state) {
  const auto counters_per_h = static_cast<std::size_t>(state.range(0));
  baseline_window_mst<H> alg(kWindow, counters_per_h * H::hierarchy_size);
  const auto& trace = bench_trace();
  for (auto _ : state) {
    for (const auto& p : trace) alg.update(p);
    benchmark::DoNotOptimize(alg.stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(trace.size()) / 1e6,
      benchmark::Counter::kIsRate);
}

void register_all() {
  for (std::int64_t counters : {64, 512, 4096}) {
    for (std::int64_t inv_tau : {1, 8, 64, 512}) {
      benchmark::RegisterBenchmark("fig6/h_memento_1d", hhh_memento_speed<source_hierarchy>)
          ->Args({counters, inv_tau})
          ->MinTime(0.1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark("fig6/h_memento_2d", hhh_memento_speed<two_dim_hierarchy>)
          ->Args({counters, inv_tau})
          ->MinTime(0.1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark("fig6/h_memento_1d_batch",
                                   hhh_memento_speed_batch<source_hierarchy>)
          ->Args({counters, inv_tau})
          ->MinTime(0.1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark("fig6/h_memento_2d_batch",
                                   hhh_memento_speed_batch<two_dim_hierarchy>)
          ->Args({counters, inv_tau})
          ->MinTime(0.1)
          ->Unit(benchmark::kMillisecond);
    }
    for (std::int64_t inv_tau : {1, 64}) {
      for (std::int64_t shards : {2, 4, 8}) {
        benchmark::RegisterBenchmark("fig6/h_memento_1d_sharded",
                                     hhh_memento_speed_sharded<source_hierarchy>)
            ->Args({counters, inv_tau, shards})
            ->MinTime(0.1)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark("fig6/h_memento_2d_sharded",
                                     hhh_memento_speed_sharded<two_dim_hierarchy>)
            ->Args({counters, inv_tau, shards})
            ->MinTime(0.1)
            ->Unit(benchmark::kMillisecond);
      }
    }
    benchmark::RegisterBenchmark("fig6/baseline_1d", hhh_baseline_speed<source_hierarchy>)
        ->Args({counters})
        ->MinTime(0.1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig6/baseline_2d", hhh_baseline_speed<two_dim_hierarchy>)
        ->Args({counters})
        ->MinTime(0.1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  // Provenance context for summarize.py --hhh (same convention as fig5):
  // this binary's actual codegen and the kernel tier the run dispatched to.
#if defined(NDEBUG) && defined(__OPTIMIZE__)
  benchmark::AddCustomContext("memento_build_type", "release");
#else
  benchmark::AddCustomContext("memento_build_type", "debug");
#endif
  benchmark::AddCustomContext("memento_simd_dispatch",
                              memento::simd::tier_name(memento::simd::active()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
