// snapshot_speed: save/restore throughput and wire size of the two snapshot
// formats on a deployment-scale sharded frontend.
//
// The subject is an 8-shard sharded_memento with 2^17 Space-Saving counters
// per shard - 1,048,576 counters total - populated to steady state from a
// heavy-tailed stream. Four measurements:
//
//   * v1 (buffered writer/reader): monolithic save into one vector, restore
//     from it - the PR 3 format, kept for backward compatibility;
//   * v2 (streamed sink/source): chunked save through a 64 KB-chunk
//     wire::sink callback and restore through a chunk-feeding wire::source
//     read callback - the compressed CRC-protected format. The sink's
//     peak_buffered() is reported as the bounded-memory evidence: it stays
//     at chunk-size scale no matter how big the deployment, where the v1
//     path's working set is the whole image.
//
// Reported: MB/s each way for both formats, wire bytes, compression ratio
// (v1 / v2 - the CI bench-smoke asserts >= 2.5x), bytes per counter, and
// peak bytes buffered by the streaming sink. `--json` emits the
// {"snapshot": ...} document summarize.py folds into BENCH_fig5.json with
// --snapshot.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "shard/sharded_memento.hpp"
#include "snapshot/snapshot.hpp"
#include "util/table.hpp"

namespace {

using namespace memento;

constexpr std::size_t kShards = 8;
constexpr std::size_t kCountersPerShard = std::size_t{1} << 17;
constexpr std::size_t kCountersTotal = kShards * kCountersPerShard;  // 1,048,576
constexpr std::uint64_t kWindow = std::uint64_t{8} << 20;            // T = 8 per shard
constexpr std::size_t kPackets = 12'000'000;
constexpr std::size_t kBatch = 8192;
constexpr std::size_t kChunk = 64 * 1024;

[[nodiscard]] double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

[[nodiscard]] double mbps(std::size_t bytes, double secs) {
  return secs > 0.0 ? static_cast<double>(bytes) / secs / 1e6 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  sharded_memento<> sketch(shard_config{kWindow, kCountersTotal, 1.0, 7, kShards});
  // Heavy-tailed fill: 1/4 of traffic on 2^16 hot flows, the rest spread
  // over 2^24 - enough distinct keys to saturate every shard's counter and
  // overflow tables, which is what makes the image deployment-sized.
  {
    std::vector<std::uint64_t> batch(kBatch);
    std::uint64_t z = 0x9e3779b97f4a7c15ULL;
    for (std::size_t done = 0; done < kPackets; done += kBatch) {
      for (auto& key : batch) {
        z = z * 6364136223846793005ULL + 1442695040888963407ULL;
        key = (z >> 33) % 4 == 0 ? (z >> 40) & 0xFFFF : (z >> 24) & 0xFFFFFF;
      }
      sketch.update_batch(batch.data(), batch.size());
    }
  }

  // v1: monolithic buffered image.
  auto t0 = std::chrono::steady_clock::now();
  const auto v1 = snapshot::save(sketch);
  const double v1_save_s = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  auto back1 = snapshot::restore<sharded_memento<>>(v1);
  const double v1_restore_s = seconds_since(t0);
  if (!back1) {
    std::fprintf(stderr, "snapshot_speed: v1 restore failed\n");
    return 1;
  }

  // v2: chunked streaming save. The sink hands 64 KB chunks to the callback
  // as they fill; peak_buffered() is the whole memory story.
  std::vector<std::uint8_t> v2;
  t0 = std::chrono::steady_clock::now();
  wire::sink sink(
      [&](std::span<const std::uint8_t> chunk) {
        v2.insert(v2.end(), chunk.begin(), chunk.end());
        return true;
      },
      kChunk);
  if (!snapshot::stream_save(sketch, sink)) {
    std::fprintf(stderr, "snapshot_speed: streamed save failed\n");
    return 1;
  }
  const double v2_save_s = seconds_since(t0);
  const std::size_t peak = sink.peak_buffered();

  // v2 restore, fed chunk by chunk through the source's read callback -
  // the shape of a controller pulling a checkpoint off a socket.
  t0 = std::chrono::steady_clock::now();
  std::size_t cursor = 0;
  wire::source source(
      [&](std::uint8_t* dst, std::size_t want) {
        const std::size_t n = std::min(want, v2.size() - cursor);
        std::memcpy(dst, v2.data() + cursor, n);
        cursor += n;
        return n;
      },
      kChunk);
  auto back2 = snapshot::stream_restore<sharded_memento<>>(source);
  const double v2_restore_s = seconds_since(t0);
  if (!back2) {
    std::fprintf(stderr, "snapshot_speed: streamed restore failed\n");
    return 1;
  }
  // The two paths must agree exactly; a silent divergence would make every
  // number above meaningless.
  if (snapshot::save(*back1) != snapshot::save(*back2)) {
    std::fprintf(stderr, "snapshot_speed: v1/v2 restores disagree\n");
    return 1;
  }

  const double ratio = static_cast<double>(v1.size()) / static_cast<double>(v2.size());
  const double bytes_per_counter =
      static_cast<double>(v2.size()) / static_cast<double>(kCountersTotal);

  if (json) {
#ifdef NDEBUG
    const char* build = "release";
#else
    const char* build = "debug";
#endif
    std::printf(
        "{\n  \"memento_build_type\": \"%s\",\n  \"snapshot\": {\n"
        "    \"shards\": %zu, \"counters\": %zu, \"window\": %llu,\n"
        "    \"v1_bytes\": %zu, \"v2_bytes\": %zu, \"compression_ratio\": %.3f,\n"
        "    \"bytes_per_counter\": %.3f,\n"
        "    \"v1_save_mbps\": %.1f, \"v1_restore_mbps\": %.1f,\n"
        "    \"v2_save_mbps\": %.1f, \"v2_restore_mbps\": %.1f,\n"
        "    \"chunk_bytes\": %zu, \"peak_buffered_bytes\": %zu\n  }\n}\n",
        build, kShards, kCountersTotal, static_cast<unsigned long long>(kWindow), v1.size(),
        v2.size(), ratio, bytes_per_counter, mbps(v1.size(), v1_save_s),
        mbps(v1.size(), v1_restore_s), mbps(v2.size(), v2_save_s),
        mbps(v2.size(), v2_restore_s), kChunk, peak);
  } else {
    std::printf("=== snapshot speed: %zu shards x %zu counters (%zu total) ===\n", kShards,
                kCountersPerShard, kCountersTotal);
    console_table table({"format", "bytes", "save MB/s", "restore MB/s", "B/counter"});
    table.print_header();
    table.cell("v1 buffered")
        .cell(static_cast<long long>(v1.size()))
        .cell(mbps(v1.size(), v1_save_s), 1)
        .cell(mbps(v1.size(), v1_restore_s), 1)
        .cell(static_cast<double>(v1.size()) / static_cast<double>(kCountersTotal), 2);
    table.end_row();
    table.cell("v2 streamed")
        .cell(static_cast<long long>(v2.size()))
        .cell(mbps(v2.size(), v2_save_s), 1)
        .cell(mbps(v2.size(), v2_restore_s), 1)
        .cell(bytes_per_counter, 2);
    table.end_row();
    std::printf("\ncompression ratio (v1/v2): %.2fx\n", ratio);
    std::printf("streaming sink peak buffer: %zu bytes (chunk %zu) for a %zu-byte image\n",
                peak, kChunk, v2.size());
  }
  return 0;
}
