// Figure 9: network-wide accuracy of D-H-Memento under a 1 byte/packet
// control budget, for the three communication methods, per trace surrogate.
//
// Ten vantages route by client hash; the controller's estimate of every
// arriving packet's prefixes is compared against the exact global window.
//
// Expected shape (paper): Batch best, Sample clearly better than Aggregation
// (which sends full-information but rare, stale snapshots).
#include <cmath>
#include <cstdio>

#include "netwide/simulation.hpp"
#include "sketch/exact_hhh.hpp"
#include "trace/trace_generator.hpp"
#include "util/table.hpp"

namespace {

using namespace memento;
using namespace memento::netwide;

constexpr std::uint64_t kWindow = 200'000;
constexpr std::size_t kPackets = 800'000;
constexpr std::size_t kProbeStride = 101;

struct run_result {
  double rmse = 0.0;
  double bytes_per_packet = 0.0;
  std::uint64_t reports = 0;
  std::size_t batch = 0;
};

run_result run_method(trace_kind kind, comm_method method) {
  harness_config cfg;
  cfg.method = method;
  cfg.num_points = 10;
  cfg.window = kWindow;
  cfg.budget = budget_model{1.0, 64.0, 4.0};
  cfg.counters = 4096;
  netwide_harness<source_hierarchy> harness(cfg);
  exact_hhh<source_hierarchy> exact(kWindow);

  // Real captures churn (flows arrive and die); a stationary trace would
  // let stale Aggregation snapshots stay accurate for free. One cohort of
  // the flow population is re-identified every 5000 packets.
  auto trace_cfg = trace_config::preset(kind, 42);
  trace_cfg.churn_stride = 5'000;
  trace_generator gen(trace_cfg);
  double sq = 0.0;
  std::size_t probes = 0;
  for (std::size_t i = 0; i < kPackets; ++i) {
    const packet p = gen.next();
    harness.ingest(p);
    exact.update(p);
    if (i > 2 * kWindow && i % kProbeStride == 0) {
      for (std::size_t d = 0; d < 5; ++d) {
        const auto key = source_hierarchy::key_at(p, d);
        const double err = harness.estimate(key) - static_cast<double>(exact.query(key));
        sq += err * err;
        ++probes;
      }
    }
  }
  return {std::sqrt(sq / static_cast<double>(probes)), harness.bytes_per_packet(),
          harness.reports_sent(), harness.batch_size()};
}

}  // namespace

int main() {
  std::puts("=== Figure 9: network-wide on-arrival RMSE at B = 1 byte/packet ===");
  std::puts("m=10 vantages, W=200k, O=64, E=4, controller = D-H-Memento (H=5);");
  std::puts("traces carry flow churn (one cohort re-identified per 5k packets).");

  for (trace_kind kind : {trace_kind::backbone, trace_kind::datacenter, trace_kind::edge}) {
    std::printf("\n--- %s trace ---\n", trace_name(kind));
    console_table table({"method", "rmse", "bytes/pkt", "reports", "batch_b"});
    table.print_header();
    for (comm_method method :
         {comm_method::aggregation, comm_method::sample, comm_method::batch}) {
      const auto r = run_method(kind, method);
      table.cell(method_name(method))
          .cell(r.rmse, 1)
          .cell(r.bytes_per_packet, 3)
          .cell(static_cast<long long>(r.reports))
          .cell(static_cast<int>(r.batch));
      table.end_row();
    }
  }
  std::puts("\nExpected ordering: batch < sample < aggregation (lower RMSE is better).");
  return 0;
}
