// Ablation: the cost of *knowing* the heavy-hitter set.
//
// Section 8 of the paper: "while RHHH provides line-rate packet processing on
// streams and H-Memento provides it for sliding windows, neither allows
// sufficiently fast queries. Therefore, we believe that a mechanism that
// would allow constant-time updates for detection of changes in the
// hierarchical heavy hitters set would be a promising direction for future
// work." src/core/change_detector.hpp is this repository's answer; this
// bench quantifies the problem and the fix:
//
//   1. how expensive a full HHH output() pass is (why polling doesn't scale
//      with detection frequency);
//   2. the per-packet overhead of the incremental change detector (should be
//      a small constant on top of the raw sketch);
//   3. the detection lag of the change detector vs. a periodic poller at
//      different polling strides (the lag/cost trade-off it removes).
#include <cstdio>
#include <vector>

#include "core/change_detector.hpp"
#include "core/h_memento.hpp"
#include "trace/trace_generator.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace memento;

constexpr std::uint64_t kWindow = 200'000;
constexpr std::size_t kPackets = 1'000'000;

void output_cost() {
  std::puts("--- 1: cost of one full HHH output() pass ---");
  h_memento<source_hierarchy> monitor(kWindow, 4000, 1.0, 1e-3);
  trace_generator gen(trace_kind::backbone, 42);
  for (std::size_t i = 0; i < 2 * kWindow; ++i) monitor.update(gen.next());

  console_table table({"theta", "set_size", "ms/output"});
  table.print_header();
  for (double theta : {0.001, 0.01, 0.05}) {
    stopwatch sw;
    std::size_t size = 0;
    constexpr int reps = 20;
    for (int i = 0; i < reps; ++i) size = monitor.output(theta, 0.0).size();
    table.cell(theta, 3).cell(static_cast<long long>(size)).cell(sw.millis() / reps, 3);
    table.end_row();
  }
}

void update_overhead() {
  std::puts("\n--- 2: per-packet overhead of the incremental detector ---");
  trace_generator gen(trace_kind::backbone, 42);
  std::vector<std::uint64_t> ids;
  ids.reserve(kPackets);
  for (std::size_t i = 0; i < kPackets; ++i) ids.push_back(flow_id(gen.next()));

  console_table table({"pipeline", "Mpps"});
  table.print_header();
  {
    memento_sketch<std::uint64_t> raw(kWindow, 512, 1.0);
    stopwatch sw;
    for (const auto id : ids) raw.update(id);
    table.cell("sketch only").cell(mops(ids.size(), sw.seconds()), 1);
    table.end_row();
  }
  {
    hh_change_detector<> detector(memento_config{kWindow, 512, 1.0, 1},
                                  change_detector_config{0.01, 0.005});
    stopwatch sw;
    for (const auto id : ids) detector.update(id);
    (void)detector.poll_events();
    table.cell("sketch+detector").cell(mops(ids.size(), sw.seconds()), 1);
    table.end_row();
  }
}

void detection_lag() {
  std::puts("\n--- 3: detection lag, incremental events vs. periodic polling ---");
  std::puts("a 5%-share flow starts at packet 200k; lag = packets until noticed");

  auto run_stream = [](auto&& on_packet) {
    xoshiro256 rng(7);
    trace_generator gen(trace_kind::backbone, 9);
    for (std::size_t i = 0; i < 600'000; ++i) {
      const bool hot = i >= 200'000 && rng.uniform01() < 0.05;
      on_packet(i, hot ? 0xFEEDull : flow_id(gen.next()));
    }
  };

  console_table table({"mechanism", "lag_packets", "checks_run"});
  table.print_header();
  {
    hh_change_detector<> detector(memento_config{kWindow, 512, 1.0, 1},
                                  change_detector_config{0.03, 0.02});
    std::size_t detected_at = 0;
    run_stream([&](std::size_t i, std::uint64_t id) {
      detector.update(id);
      if (detected_at == 0 && detector.contains(0xFEED)) detected_at = i;
    });
    table.cell("change_detector")
        .cell(static_cast<long long>(detected_at - 200'000))
        .cell("per-packet");
    table.end_row();
  }
  for (std::size_t stride : {1'000u, 10'000u, 100'000u}) {
    memento_sketch<std::uint64_t> sketch(kWindow, 512, 1.0);
    std::size_t detected_at = 0;
    std::size_t checks = 0;
    run_stream([&](std::size_t i, std::uint64_t id) {
      sketch.update(id);
      if (detected_at == 0 && i % stride == 0 && i > 0) {
        ++checks;
        for (const auto& hh : sketch.heavy_hitters(0.03)) {
          if (hh.key == 0xFEED) {
            detected_at = i;
            break;
          }
        }
      }
    });
    table.cell("poll/" + std::to_string(stride))
        .cell(static_cast<long long>(detected_at > 0 ? detected_at - 200'000 : -1))
        .cell(static_cast<long long>(checks));
    table.end_row();
  }
  std::puts("expected: detector lag ~ polling at the finest stride, at O(1) cost");
}

}  // namespace

int main() {
  std::puts("=== Ablation: heavy-hitter set change detection (paper section 8) ===");
  output_cost();
  update_overhead();
  detection_lag();
  return 0;
}
