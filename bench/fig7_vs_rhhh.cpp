// Figure 7: throughput of H-Memento (window algorithm) vs. RHHH (the fastest
// interval algorithm) on the backbone surrogate, 1D and 2D, across matched
// sampling ratios (RHHH samples one prefix per V packets; H-Memento's
// per-prefix rate is tau/H, so V = H/tau aligns the two).
//
// Expected shape (paper): H-Memento is faster at moderate sampling ratios
// (random-table sampling beats the geometric-variable machinery) while RHHH
// overtakes at extreme ratios, where it skips packets entirely but
// H-Memento still performs a Window update per packet.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/h_memento.hpp"
#include "core/rhhh.hpp"
#include "trace/trace_generator.hpp"
#include "util/simd.hpp"

namespace {

using namespace memento;

constexpr std::size_t kTracePackets = 1'000'000;
constexpr std::uint64_t kWindow = 1'000'000;
constexpr std::size_t kCountersPerH = 512;

const std::vector<packet>& bench_trace() {
  static const std::vector<packet> trace = make_trace(trace_kind::backbone, kTracePackets, 42);
  return trace;
}

template <typename H>
void h_memento_speed(benchmark::State& state) {
  const double tau = static_cast<double>(H::hierarchy_size) / static_cast<double>(state.range(0));
  h_memento<H> alg(kWindow, kCountersPerH * H::hierarchy_size, std::min(1.0, tau), 1e-3, 1);
  const auto& trace = bench_trace();
  for (auto _ : state) {
    for (const auto& p : trace) alg.update(p);
    benchmark::DoNotOptimize(alg.stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(trace.size()) / 1e6,
      benchmark::Counter::kIsRate);
}

/// Same matched-sampling sweep through the batched ingest path: the fair
/// RHHH comparison for a NIC-burst deployment, where H-Memento amortizes
/// the level draw and key materialization across the burst.
template <typename H>
void h_memento_speed_batch(benchmark::State& state) {
  constexpr std::size_t kBurst = 256;
  const double tau = static_cast<double>(H::hierarchy_size) / static_cast<double>(state.range(0));
  h_memento<H> alg(kWindow, kCountersPerH * H::hierarchy_size, std::min(1.0, tau), 1e-3, 1);
  const auto& trace = bench_trace();
  for (auto _ : state) {
    for (std::size_t i = 0; i < trace.size(); i += kBurst) {
      alg.update_batch(trace.data() + i, std::min(kBurst, trace.size() - i));
    }
    benchmark::DoNotOptimize(alg.stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(trace.size()) / 1e6,
      benchmark::Counter::kIsRate);
}

template <typename H>
void rhhh_speed(benchmark::State& state) {
  const double v = static_cast<double>(state.range(0));
  rhhh<H> alg(kCountersPerH, std::max(v, static_cast<double>(H::hierarchy_size)), 1e-3, 1);
  const auto& trace = bench_trace();
  for (auto _ : state) {
    for (const auto& p : trace) alg.update(p);
    benchmark::DoNotOptimize(alg.stream_length());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(trace.size()) / 1e6,
      benchmark::Counter::kIsRate);
}

void register_all() {
  // V values: sampling ratios from "every packet updates some prefix"
  // (V = H) to aggressive skipping.
  for (std::int64_t v : {5, 10, 40, 160, 640, 2560}) {
    benchmark::RegisterBenchmark("fig7/h_memento_1d", h_memento_speed<source_hierarchy>)
        ->Arg(v)
        ->MinTime(0.1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig7/h_memento_1d_batch", h_memento_speed_batch<source_hierarchy>)
        ->Arg(v)
        ->MinTime(0.1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig7/rhhh_1d", rhhh_speed<source_hierarchy>)
        ->Arg(v)
        ->MinTime(0.1)
        ->Unit(benchmark::kMillisecond);
  }
  for (std::int64_t v : {25, 50, 200, 800, 3200, 12800}) {
    benchmark::RegisterBenchmark("fig7/h_memento_2d", h_memento_speed<two_dim_hierarchy>)
        ->Arg(v)
        ->MinTime(0.1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig7/h_memento_2d_batch",
                                 h_memento_speed_batch<two_dim_hierarchy>)
        ->Arg(v)
        ->MinTime(0.1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig7/rhhh_2d", rhhh_speed<two_dim_hierarchy>)
        ->Arg(v)
        ->MinTime(0.1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  // Provenance context for summarize.py (same convention as fig5/fig6).
#if defined(NDEBUG) && defined(__OPTIMIZE__)
  benchmark::AddCustomContext("memento_build_type", "release");
#else
  benchmark::AddCustomContext("memento_build_type", "debug");
#endif
  benchmark::AddCustomContext("memento_simd_dispatch",
                              memento::simd::tier_name(memento::simd::active()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
