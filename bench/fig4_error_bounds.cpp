// Figure 4 + the Section 5.2 numeric examples: guaranteed network-wide error
// (Theorem 5.5) of the three synchronization variants as the per-packet
// bandwidth budget B grows, decomposed into delay and sampling parts.
//
// Expected shape (paper): Sample has the smallest delay error but the worst
// total (it wastes budget on headers); 100-Batch has lower sampling error but
// a large delay part; the optimal Batch wins everywhere, and as B grows its
// optimal b approaches 100 and the gap narrows.
#include <cstdio>

#include "netwide/batch_optimizer.hpp"
#include "util/table.hpp"

int main() {
  using namespace memento;
  using namespace memento::netwide;

  error_model model;
  model.budget = budget_model{1.0, 64.0, 4.0};  // TCP overhead, srcip entries
  model.num_points = 10;
  model.hierarchy_size = 5.0;
  model.window = 1e6;
  model.delta = 1e-4;

  std::puts("=== Figure 4: guaranteed error vs. bandwidth budget (Theorem 5.5) ===");
  std::puts("O=64B, E=4B, m=10, H=5, W=1e6, delta=0.01%. Errors in packets;");
  std::puts("columns show delay+sampling decomposition (the figure's hatching).");
  std::puts("");

  console_table table({"B(bytes/pkt)", "sample", "s_delay", "batch100", "b100_delay",
                       "batch_opt", "opt_b", "opt_delay"});
  table.print_header();
  for (double budget : {0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 7.5, 10.0}) {
    model.budget.bytes_per_packet = budget;
    const auto sample = sample_error_bound(model);
    const auto batch100 = error_bound(model, 100);
    const auto best = optimal_batch(model);
    table.cell(budget, 2)
        .cell(sample.total(), 0)
        .cell(sample.delay, 0)
        .cell(batch100.total(), 0)
        .cell(batch100.delay, 0)
        .cell(best.error.total(), 0)
        .cell(static_cast<int>(best.batch_size))
        .cell(best.error.delay, 0);
    table.end_row();
  }

  std::puts("\n=== Section 5.2 numeric examples ===");
  model.budget.bytes_per_packet = 1.0;
  const auto ex1 = optimal_batch(model);
  std::printf("B=1, W=1e6 : b*=%zu, error=%.0f packets (%.2f%%)  [paper: b=44, 13K, 1.3%%]\n",
              ex1.batch_size, ex1.error.total(), 100.0 * ex1.error.total() / model.window);

  model.budget.bytes_per_packet = 5.0;
  const auto ex2 = optimal_batch(model);
  std::printf("B=5, W=1e6 : b*=%zu, error=%.0f packets (%.2f%%)  [paper: b=68, 5.3K, 0.53%%]\n",
              ex2.batch_size, ex2.error.total(), 100.0 * ex2.error.total() / model.window);

  model.budget.bytes_per_packet = 1.0;
  model.window = 1e7;
  const auto ex3 = optimal_batch(model);
  std::printf("B=1, W=1e7 : b*=%zu, error=%.0f packets (%.2f%%)  [paper: b=109, 0.15%%]\n",
              ex3.batch_size, ex3.error.total(), 100.0 * ex3.error.total() / model.window);

  model.window = 1e6;
  model.hierarchy_size = 25.0;
  model.budget.entry_bytes = 8.0;
  const auto ex4 = optimal_batch(model);
  std::printf("B=1, 2D    : b*=%zu, error=%.0f packets (%.2f%%)  [paper: larger error & b]\n",
              ex4.batch_size, ex4.error.total(), 100.0 * ex4.error.total() / model.window);
  return 0;
}
