// Ablation: the sampling-machinery explanation of Section 6.2.
//
// The paper attributes the Fig. 7 crossover to implementation detail: "in
// RHHH, sampling is implemented as a geometric random variable, which is
// inefficient for small sampling probabilities, whereas in H-Memento it is
// performed using a random number table". This bench isolates exactly that:
// raw decisions/second of the two schemes (plus std::bernoulli_distribution
// as a library reference point) across the tau sweep used in the paper.
//
// Expected shape: the table sampler's cost is flat in tau; the geometric
// sampler is slow at tau near 1 (one log per sampled event) and becomes the
// cheapest as tau -> 0 (skips amortize the draw away).
#include <benchmark/benchmark.h>

#include <random>

#include "util/random.hpp"

namespace {

using namespace memento;

void table_sampler(benchmark::State& state) {
  const double tau = 1.0 / static_cast<double>(state.range(0));
  random_table_sampler sampler(tau, 1u << 16, 1);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) hits += sampler.sample();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

void geometric_skip_sampler(benchmark::State& state) {
  const double tau = 1.0 / static_cast<double>(state.range(0));
  geometric_sampler sampler(tau, 1);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) hits += sampler.sample();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

void table_sampler_fill(benchmark::State& state) {
  // The batched-decision API used by update_batch: same draws as 1024
  // sample() calls, but the table scan is segmented and vectorizable.
  const double tau = 1.0 / static_cast<double>(state.range(0));
  random_table_sampler sampler(tau, 1u << 16, 1);
  bool decisions[1024];
  std::uint64_t hits = 0;
  for (auto _ : state) {
    sampler.fill(decisions, 1024);
    for (int i = 0; i < 1024; ++i) hits += decisions[i];
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

void std_bernoulli(benchmark::State& state) {
  const double tau = 1.0 / static_cast<double>(state.range(0));
  std::mt19937_64 rng(1);
  std::bernoulli_distribution dist(tau);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) hits += dist(rng);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}

void register_all() {
  for (std::int64_t inv_tau : {1, 4, 16, 64, 256, 1024, 4096}) {
    benchmark::RegisterBenchmark("ablation/table_sampler", table_sampler)->Arg(inv_tau);
    benchmark::RegisterBenchmark("ablation/table_sampler_fill", table_sampler_fill)
        ->Arg(inv_tau);
    benchmark::RegisterBenchmark("ablation/geometric_sampler", geometric_skip_sampler)
        ->Arg(inv_tau);
    benchmark::RegisterBenchmark("ablation/std_bernoulli", std_bernoulli)->Arg(inv_tau);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
