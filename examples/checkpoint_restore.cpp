// Checkpoint/restore + elastic reshard walkthrough: the snapshot layer in
// five acts.
//
//   1. run a sharded Memento frontend over live traffic;
//   2. CHECKPOINT it to a byte buffer (snapshot::save) - what you would
//      write to disk for failover or ship to a new owner for migration;
//   3. RESTORE it into a fresh instance and show both answer and continue
//      the stream identically;
//   4. RESHARD the checkpoint 4 -> 2 shards (snapshot_builder::reshard) and
//      show the heavy hitters survive the topology change;
//   5. STREAM the checkpoint through the chunked v2 wire (wire::sink /
//      wire::source): compressed, CRC-protected, and produced in bounded
//      memory - the sink never buffers more than about one chunk, no
//      matter how large the deployment.
//
// Exits non-zero if any invariant breaks, so the ctest smoke run doubles as
// a regression check.
//
//   build/examples/checkpoint_restore
#include <cmath>
#include <cstdio>

#include "shard/sharded_memento.hpp"
#include "snapshot/reshard.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/summary.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"

int main() {
  using namespace memento;

  // Act 1: a 4-shard frontend with planted elephants.
  shard_config cfg;
  cfg.window_size = 100'000;
  cfg.counters = 512;
  cfg.tau = 1.0;
  cfg.shards = 4;
  sharded_memento<std::uint64_t> front(cfg);

  trace_generator background(trace_kind::backbone, /*seed=*/1);
  xoshiro256 rng(2);
  auto next_flow = [&] {
    return rng.uniform01() < 0.3 ? 1000 + rng.bounded(3) : flow_id(background.next());
  };
  for (int i = 0; i < 300'000; ++i) front.update(next_flow());

  // Act 2: checkpoint.
  const auto checkpoint = snapshot::save(front);
  std::printf("checkpoint: %zu shards -> %zu bytes (%zu window candidates)\n",
              front.num_shards(), checkpoint.size(), front.candidate_count());

  // Act 3: restore and continue. The restored frontend must answer AND keep
  // processing bit-identically - same sampler state, same window phase.
  auto restored = snapshot::restore<sharded_memento<std::uint64_t>>(checkpoint);
  if (!restored) {
    std::puts("FAIL: checkpoint did not restore");
    return 1;
  }
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t flow = next_flow();
    front.update(flow);
    restored->update(flow);
  }
  const auto live = front.heavy_hitters(0.05);
  const auto cont = restored->heavy_hitters(0.05);
  if (live.size() != cont.size()) {
    std::puts("FAIL: restored frontend diverged");
    return 1;
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i].key != cont[i].key || live[i].estimate != cont[i].estimate) {
      std::puts("FAIL: restored frontend diverged");
      return 1;
    }
  }
  std::printf("restore:    continued %d packets bit-identically (%zu heavy hitters)\n",
              50'000, live.size());

  // Mergeable summaries: the query-only transportable form.
  const auto summary = window_summary<std::uint64_t>::from(front);
  const auto wire = snapshot::save(summary);
  std::printf("summary:    %zu candidates -> %zu bytes on the wire\n", summary.size(),
              wire.size());

  // Act 4: reshard the checkpoint onto a 2-shard deployment (scale-in).
  shard_config smaller = cfg;
  smaller.shards = 2;
  auto resharded = snapshot_builder::reshard<std::uint64_t>(
      std::span<const std::uint8_t>(checkpoint), smaller);
  if (!resharded) {
    std::puts("FAIL: reshard rejected a compatible geometry");
    return 1;
  }
  std::printf("reshard:    4 -> %zu shards; planted elephants after the move:\n",
              resharded->num_shards());
  std::printf("%12s %14s %14s\n", "flow", "before", "after");
  int carried = 0;
  for (const auto& hh : front.heavy_hitters(0.05)) {
    const double after = resharded->query(hh.key);
    std::printf("%12llu %14.0f %14.0f\n", static_cast<unsigned long long>(hh.key),
                hh.estimate, after);
    // Estimates move by at most one threshold unit across a reshard.
    const double unit =
        static_cast<double>(front.shard(0).overflow_threshold()) / front.shard(0).tau();
    if (std::abs(after - hh.estimate) <= unit + 1e-9) ++carried;
  }
  if (carried == 0) {
    std::puts("FAIL: reshard lost every heavy hitter");
    return 1;
  }

  // The resharded deployment keeps serving traffic.
  for (int i = 0; i < 50'000; ++i) resharded->update(next_flow());
  std::printf("\nresharded frontend kept running: %llu packets total, width <= %.0f\n",
              static_cast<unsigned long long>(resharded->stream_length()),
              resharded->estimate_width());

  // Act 5: the same checkpoint over the streamed v2 wire. The sink hands
  // 4 KB chunks to the callback as they fill - stand-in for a socket or an
  // O_APPEND file descriptor - and its peak_buffered() is the whole memory
  // story of the save.
  std::vector<std::uint8_t> streamed;
  wire::sink sink(
      [&](std::span<const std::uint8_t> chunk) {
        streamed.insert(streamed.end(), chunk.begin(), chunk.end());
        return true;
      },
      /*chunk_bytes=*/4096);
  if (!snapshot::stream_save(front, sink)) {
    std::puts("FAIL: streamed save failed");
    return 1;
  }
  std::printf("\nstreamed:   %zu bytes (%.2fx smaller than the v1 image), peak buffer %zu\n",
              streamed.size(),
              static_cast<double>(snapshot::save(front).size()) /
                  static_cast<double>(streamed.size()),
              sink.peak_buffered());

  // Restore it chunk by chunk - the controller side of the same socket -
  // and check it is the exact same frontend, byte for byte.
  std::size_t cursor = 0;
  wire::source source(
      [&](std::uint8_t* dst, std::size_t want) {
        const std::size_t n = std::min(want, streamed.size() - cursor);
        std::memcpy(dst, streamed.data() + cursor, n);
        cursor += n;
        return n;
      },
      /*chunk_bytes=*/4096);
  auto from_stream = snapshot::stream_restore<sharded_memento<std::uint64_t>>(source);
  if (!from_stream || snapshot::save(*from_stream) != snapshot::save(front)) {
    std::puts("FAIL: streamed restore diverged from the live frontend");
    return 1;
  }
  std::puts("streamed restore matches the live frontend byte for byte");
  return 0;
}
