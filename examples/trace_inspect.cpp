// Trace inspector: run the Memento toolbox over a trace file of your own.
//
// Reads a "src,dst"-per-line trace (see src/trace/trace_io.hpp), prints
// summary statistics, the top sliding-window heavy hitters, and the 1D HHH
// set. With no argument, generates-and-analyzes a built-in demo trace so the
// example is runnable out of the box.
//
//   build/examples/trace_inspect [trace.csv] [window] [theta]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/h_memento.hpp"
#include "core/memento.hpp"
#include "trace/trace_generator.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace memento;

  std::vector<packet> trace;
  if (argc > 1) {
    auto result = read_trace_file(argv[1]);
    if (result.packets.empty()) {
      std::fprintf(stderr, "error: no packets read from %s\n", argv[1]);
      return 1;
    }
    if (result.malformed_lines > 0) {
      std::fprintf(stderr, "warning: skipped %zu malformed lines\n",
                   result.malformed_lines);
    }
    trace = std::move(result.packets);
  } else {
    std::puts("no trace given - generating a 500k-packet backbone-style demo trace");
    trace = make_trace(trace_kind::backbone, 500'000, /*seed=*/1);
  }

  const std::uint64_t window =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10)
               : std::max<std::uint64_t>(1000, trace.size() / 4);
  const double theta = argc > 3 ? std::strtod(argv[3], nullptr) : 0.01;

  const auto stats = summarize(trace);
  std::puts("\n=== trace summary ===");
  std::printf("packets            : %zu\n", stats.packets);
  std::printf("distinct flows     : %zu\n", stats.distinct_flows);
  std::printf("distinct sources   : %zu\n", stats.distinct_sources);
  std::printf("largest flow       : %llu packets (%.2f%%)\n",
              static_cast<unsigned long long>(stats.top_flow_count),
              100.0 * static_cast<double>(stats.top_flow_count) /
                  static_cast<double>(stats.packets));
  std::printf("top-100 flow share : %.2f%%\n", 100.0 * stats.top_hundred_share);

  // Plain heavy hitters over the final window.
  memento_sketch<std::uint64_t> sketch(window, 4096, /*tau=*/1.0);
  for (const auto& p : trace) sketch.update(flow_id(p));
  std::printf("\n=== window heavy hitters (W=%llu, theta=%.2f%%) ===\n",
              static_cast<unsigned long long>(sketch.window_size()), 100.0 * theta);
  const auto heavy = sketch.heavy_hitters(theta);
  std::size_t shown = 0;
  for (const auto& hh : heavy) {
    const auto src = static_cast<std::uint32_t>(hh.key >> 32);
    const auto dst = static_cast<std::uint32_t>(hh.key);
    std::printf("  %-15s -> %-15s  ~%.0f packets\n", format_ipv4(src).c_str(),
                format_ipv4(dst).c_str(), hh.estimate);
    if (++shown == 15) {
      std::printf("  ... and %zu more\n", heavy.size() - shown);
      break;
    }
  }
  if (heavy.empty()) std::puts("  (none above the threshold)");

  // Hierarchical view of the sources.
  h_memento<source_hierarchy> monitor(window, 4000, /*tau=*/1.0);
  for (const auto& p : trace) monitor.update(p);
  std::printf("\n=== source HHH set (theta=%.2f%%) ===\n", 100.0 * theta);
  for (const auto& entry : monitor.output(theta, /*compensation=*/0.0)) {
    std::printf("  %-22s conditioned ~%.0f packets\n",
                source_hierarchy::to_string(entry.key).c_str(),
                entry.conditioned_frequency);
  }
  return 0;
}
