// Quickstart: sliding-window heavy hitters in ~30 lines.
//
// Feeds a synthetic backbone-style trace (with three planted elephants) into
// a Memento sketch and prints the flows above a 5% window threshold, next to
// their exact window counts.
//
//   build/examples/quickstart
#include <cstdio>

#include "core/memento.hpp"
#include "sketch/exact_window.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"

int main() {
  using namespace memento;

  constexpr std::uint64_t window = 100'000;  // W: the last 100k packets matter
  constexpr double theta = 0.05;             // heavy hitter = >5% of the window
  constexpr double tau = 1.0 / 16;           // full update 1-in-16 packets (speedup)

  // 512 counters keeps the one-sided error under 4/512 of the window.
  memento_sketch<std::uint64_t> sketch(window, /*counters=*/512, tau);
  exact_window<std::uint64_t> exact(sketch.window_size());  // ground truth, demo only

  // Replay traffic: mostly Zipf background, plus three planted heavy flows.
  trace_generator background(trace_kind::backbone, /*seed=*/1);
  xoshiro256 rng(2);
  for (int i = 0; i < 400'000; ++i) {
    std::uint64_t flow;
    if (rng.uniform01() < 0.3) {
      flow = 1000 + rng.bounded(3);  // flows 1000..1002 get ~10% each
    } else {
      flow = flow_id(background.next());
    }
    sketch.update(flow);
    exact.add(flow);
  }

  std::printf("window heavy hitters (theta = %.0f%% of W = %llu):\n\n", theta * 100,
              static_cast<unsigned long long>(sketch.window_size()));
  std::printf("%12s %14s %14s\n", "flow", "estimate", "exact");
  for (const auto& hh : sketch.heavy_hitters(theta)) {
    std::printf("%12llu %14.0f %14llu\n", static_cast<unsigned long long>(hh.key),
                hh.estimate, static_cast<unsigned long long>(exact.query(hh.key)));
  }
  std::printf("\nprocessed %llu packets; estimate width <= %.0f packets\n",
              static_cast<unsigned long long>(sketch.stream_length()),
              sketch.estimate_width());
  return 0;
}
