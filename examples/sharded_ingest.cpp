// Sharded ingest demo: scale Memento's update path across cores by
// hash-partitioning the flow keyspace.
//
//   1. build a 4-shard frontend (global window/counter budgets divide evenly);
//   2. ingest a skewed synthetic trace through the threaded pool in
//      NIC-burst-sized spans (each shard's worker drives the batch kernel);
//   3. drain() and query: point lookups route to the owning shard, set
//      queries merge the disjoint per-shard candidate sets;
//   4. print the per-shard load/phase picture an operator would monitor;
//   5. skew the mix with elephant flows that static hashing piles onto one
//      shard, then rebalance() behind the drain barrier and watch the
//      load/coverage picture recover (docs/ACCURACY.md has the model).
//
// Run: build/examples/sharded_ingest
#include <algorithm>
#include <cstdio>
#include <vector>

#include "shard/rebalance.hpp"
#include "shard/shard_pool.hpp"
#include "shard/sharded_memento.hpp"
#include "trace/trace_generator.hpp"

int main() {
  using namespace memento;

  shard_config cfg;
  cfg.window_size = 1 << 20;  // 1M-packet window, split across shards
  cfg.counters = 1024;        // total Space-Saving budget, split likewise
  cfg.tau = 1.0 / 16;         // sampled Full updates (Memento's speed lever)
  cfg.seed = 42;
  cfg.shards = 4;

  std::printf("sharded Memento: %zu shards, W=%llu total, k=%zu total, tau=1/16\n\n",
              cfg.shards, static_cast<unsigned long long>(cfg.window_size), cfg.counters);

  // Threaded mode: one worker per shard behind an SPSC ring; ingest() costs
  // the caller one hash per packet, the sketch work happens on the workers.
  sharded_memento_pool<std::uint64_t> pool(cfg);

  trace_generator gen(trace_kind::backbone, /*seed=*/7);
  constexpr std::size_t kPackets = 4'000'000;
  constexpr std::size_t kBurst = 256;
  std::vector<std::uint64_t> burst(kBurst);
  for (std::size_t sent = 0; sent < kPackets; sent += kBurst) {
    for (auto& id : burst) id = flow_id(gen.next());
    pool.ingest(burst.data(), burst.size());
  }
  pool.drain();  // barrier: all rings empty, shard state visible

  const auto& front = pool.frontend();
  std::printf("ingested %llu packets\n\n", static_cast<unsigned long long>(front.stream_length()));

  std::printf("top flows across all shards (merged from disjoint candidate sets):\n");
  for (const auto& hh : front.top(5)) {
    std::printf("  flow %016llx  ~%9.0f pkts in window  (shard %zu)\n",
                static_cast<unsigned long long>(hh.key), hh.estimate, front.shard_of(hh.key));
  }

  std::printf("\nper-shard load and window phase:\n");
  for (std::size_t s = 0; s < front.num_shards(); ++s) {
    const auto& shard = front.shard(s);
    std::printf("  shard %zu: %8llu pkts, phase %6llu/%llu, coverage %.0f global pkts\n", s,
                static_cast<unsigned long long>(shard.stream_length()),
                static_cast<unsigned long long>(shard.window_phase()),
                static_cast<unsigned long long>(shard.window_size()),
                front.window_coverage(s));
  }
  std::printf("stream skew (worst |n_s - n/N|): %.0f pkts\n", front.stream_skew());

  const auto hh = front.heavy_hitters(0.001);
  std::printf("\nheavy hitters at theta=0.1%%: %zu flows\n", hh.size());

  // --- skew the mix, then rebalance ---------------------------------------
  // Three elephant flows, all hashed onto one shard but each in its OWN
  // bucket (keys probed off the frontend's partitioner) - a bucket is the
  // rebalancer's migration unit, so distinct buckets are what lets it split
  // them. Together they now carry 25% of the traffic: the classic mix
  // static hashing cannot balance.
  std::vector<std::uint64_t> elephants;
  std::vector<std::size_t> buckets_taken;
  for (std::uint64_t x = 1u << 20; elephants.size() < 3; ++x) {
    if (front.shard_of(x) != 0) continue;
    const std::size_t b = front.partitioner().bucket_of(x);
    if (std::find(buckets_taken.begin(), buckets_taken.end(), b) != buckets_taken.end()) continue;
    elephants.push_back(x);
    buckets_taken.push_back(b);
  }
  for (std::size_t sent = 0; sent < kPackets; sent += kBurst) {
    for (std::size_t i = 0; i < kBurst; ++i) {
      burst[i] = i % 4 == 0 ? elephants[(sent + i) % elephants.size()] : flow_id(gen.next());
    }
    pool.ingest(burst.data(), burst.size());
  }
  pool.drain();
  std::printf("\nafter an elephant-heavy phase (3 flows = 25%% of traffic on shard 0):\n");
  for (std::size_t s = 0; s < front.num_shards(); ++s) {
    std::printf("  shard %zu: %8llu pkts, coverage %.0f global pkts\n", s,
                static_cast<unsigned long long>(front.shard(s).stream_length()),
                front.window_coverage(s));
  }

  // rebalance(): drain barrier + plan (coverage_rebalancer) + state
  // migration through the snapshot reshard path + table publish. The
  // workers pick the new routing up with the next burst.
  const bool moved = pool.rebalance(coverage_rebalancer{});
  std::printf("\nrebalance(): %s\n", moved ? "migrated hot buckets" : "no-op (balanced)");
  for (std::size_t sent = 0; sent < kPackets; sent += kBurst) {  // same skewed mix
    for (std::size_t i = 0; i < kBurst; ++i) {
      burst[i] = i % 4 == 0 ? elephants[(sent + i) % elephants.size()] : flow_id(gen.next());
    }
    pool.ingest(burst.data(), burst.size());
  }
  pool.drain();
  std::printf("same mix after rebalancing (weighted bucket table in effect):\n");
  for (std::size_t s = 0; s < front.num_shards(); ++s) {
    std::printf("  shard %zu: %8llu pkts, coverage %.0f global pkts (elephant owners:", s,
                static_cast<unsigned long long>(front.shard(s).stream_length()),
                front.window_coverage(s));
    for (const auto e : elephants) {
      if (front.shard_of(e) == s) std::printf(" %llx", static_cast<unsigned long long>(e));
    }
    std::printf(")\n");
  }
  return 0;
}
