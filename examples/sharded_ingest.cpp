// Sharded ingest demo: scale Memento's update path across cores by
// hash-partitioning the flow keyspace.
//
//   1. build a 4-shard frontend (global window/counter budgets divide evenly);
//   2. ingest a skewed synthetic trace through the threaded pool in
//      NIC-burst-sized spans (each shard's worker drives the batch kernel);
//   3. drain() and query: point lookups route to the owning shard, set
//      queries merge the disjoint per-shard candidate sets;
//   4. print the per-shard load/phase picture an operator would monitor.
//
// Run: build/examples/sharded_ingest
#include <cstdio>

#include "shard/shard_pool.hpp"
#include "shard/sharded_memento.hpp"
#include "trace/trace_generator.hpp"

int main() {
  using namespace memento;

  shard_config cfg;
  cfg.window_size = 1 << 20;  // 1M-packet window, split across shards
  cfg.counters = 1024;        // total Space-Saving budget, split likewise
  cfg.tau = 1.0 / 16;         // sampled Full updates (Memento's speed lever)
  cfg.seed = 42;
  cfg.shards = 4;

  std::printf("sharded Memento: %zu shards, W=%llu total, k=%zu total, tau=1/16\n\n",
              cfg.shards, static_cast<unsigned long long>(cfg.window_size), cfg.counters);

  // Threaded mode: one worker per shard behind an SPSC ring; ingest() costs
  // the caller one hash per packet, the sketch work happens on the workers.
  sharded_memento_pool<std::uint64_t> pool(cfg);

  trace_generator gen(trace_kind::backbone, /*seed=*/7);
  constexpr std::size_t kPackets = 4'000'000;
  constexpr std::size_t kBurst = 256;
  std::vector<std::uint64_t> burst(kBurst);
  for (std::size_t sent = 0; sent < kPackets; sent += kBurst) {
    for (auto& id : burst) id = flow_id(gen.next());
    pool.ingest(burst.data(), burst.size());
  }
  pool.drain();  // barrier: all rings empty, shard state visible

  const auto& front = pool.frontend();
  std::printf("ingested %llu packets\n\n", static_cast<unsigned long long>(front.stream_length()));

  std::printf("top flows across all shards (merged from disjoint candidate sets):\n");
  for (const auto& hh : front.top(5)) {
    std::printf("  flow %016llx  ~%9.0f pkts in window  (shard %zu)\n",
                static_cast<unsigned long long>(hh.key), hh.estimate, front.shard_of(hh.key));
  }

  std::printf("\nper-shard load and window phase:\n");
  for (std::size_t s = 0; s < front.num_shards(); ++s) {
    const auto& shard = front.shard(s);
    std::printf("  shard %zu: %8llu pkts, phase %6llu/%llu, coverage %.0f global pkts\n", s,
                static_cast<unsigned long long>(shard.stream_length()),
                static_cast<unsigned long long>(shard.window_phase()),
                static_cast<unsigned long long>(shard.window_size()),
                front.window_coverage(s));
  }
  std::printf("stream skew (worst |n_s - n/N|): %.0f pkts\n", front.stream_skew());

  const auto hh = front.heavy_hitters(0.001);
  std::printf("\nheavy hitters at theta=0.1%%: %zu flows\n", hh.size());
  return 0;
}
