// Hierarchical heavy-hitter monitor: the traffic-visibility use case from
// the paper's introduction. Streams a mixed workload - Zipf background plus
// two hot subnets of different widths - through H-Memento and periodically
// prints the HHH set (subnets over threshold), in both one and two
// dimensions.
//
//   build/examples/hhh_monitor
#include <cstdio>

#include "core/h_memento.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"

namespace {

using namespace memento;

packet synth_packet(xoshiro256& rng, trace_generator& background) {
  const double dice = rng.uniform01();
  if (dice < 0.15) {
    // Hot /24: clients from 203.0.113.0/24 hammering one service.
    return {0xCB007100u | static_cast<std::uint32_t>(rng.bounded(256)), 0x0A0A0A0Au};
  }
  if (dice < 0.30) {
    // Hot /8 spread: a botnet-ish spray from 77.0.0.0/8 to many targets.
    return {0x4D000000u | static_cast<std::uint32_t>(rng.bounded(1u << 24)),
            static_cast<std::uint32_t>(rng())};
  }
  return background.next();
}

void report_1d(const h_memento<source_hierarchy>& monitor, double theta) {
  std::printf("\n1D HHH set (theta = %.0f%%, N = %llu):\n", theta * 100,
              static_cast<unsigned long long>(monitor.stream_length()));
  for (const auto& entry : monitor.output(theta, /*compensation=*/0.0)) {
    std::printf("  %-22s conditioned=%9.0f  estimate=%9.0f\n",
                source_hierarchy::to_string(entry.key).c_str(), entry.conditioned_frequency,
                entry.upper_estimate);
  }
}

void report_2d(const h_memento<two_dim_hierarchy>& monitor, double theta) {
  std::printf("\n2D HHH set (theta = %.0f%%):\n", theta * 100);
  for (const auto& entry : monitor.output(theta, /*compensation=*/0.0)) {
    std::printf("  %-44s conditioned=%9.0f\n",
                two_dim_hierarchy::to_string(entry.key).c_str(),
                entry.conditioned_frequency);
  }
}

}  // namespace

int main() {
  constexpr std::uint64_t window = 200'000;
  constexpr double theta = 0.08;

  // 1D: source hierarchy (H=5); tau chosen so each prefix samples at 1/64.
  h_memento<source_hierarchy> monitor_1d(window, /*counters=*/4000, 5.0 / 64, 1e-3);
  // 2D: (src, dst) lattice (H=25) - wider hierarchy, more counters.
  h_memento<two_dim_hierarchy> monitor_2d(window, /*counters=*/10000, 25.0 / 64, 1e-3);

  xoshiro256 rng(7);
  trace_generator background(trace_kind::backbone, 3);

  std::puts("streaming 600k packets; snapshots every 200k...");
  for (int i = 1; i <= 600'000; ++i) {
    const packet p = synth_packet(rng, background);
    monitor_1d.update(p);
    monitor_2d.update(p);
    if (i % 200'000 == 0) {
      std::printf("\n===== snapshot at packet %d =====", i);
      report_1d(monitor_1d, theta);
    }
  }
  report_2d(monitor_2d, theta);

  std::puts("\nexpected: 203.0.113.0/24 and 77.0.0.0/8 in the 1D set; the 2D set");
  std::puts("pins the /24 to its single destination while the /8 spray aggregates.");
  return 0;
}
