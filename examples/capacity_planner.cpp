// Capacity planner: the Section 5.2 analysis as an operator-facing tool.
//
// Given a deployment (measurement points, window, hierarchy, per-packet
// control budget), prints the accuracy guarantee of each communication
// method and the Theorem 5.5 optimal batch size - the numbers an operator
// needs to size the control channel before rolling out network-wide
// monitoring.
//
//   build/examples/capacity_planner [m] [W] [B] [H]
//   e.g. build/examples/capacity_planner 10 1000000 1 5
#include <cstdio>
#include <cstdlib>

#include "netwide/batch_optimizer.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace memento;
  using namespace memento::netwide;

  error_model model;
  model.num_points = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  model.window = argc > 2 ? std::strtod(argv[2], nullptr) : 1e6;
  model.budget.bytes_per_packet = argc > 3 ? std::strtod(argv[3], nullptr) : 1.0;
  model.hierarchy_size = argc > 4 ? std::strtod(argv[4], nullptr) : 5.0;
  model.budget.entry_bytes = model.hierarchy_size > 5.0 ? 8.0 : 4.0;
  model.delta = 1e-4;

  std::puts("=== network-wide measurement capacity plan (Theorem 5.5) ===");
  std::printf("measurement points m = %zu, window W = %.0f packets,\n", model.num_points,
              model.window);
  std::printf("budget B = %.2f bytes/packet, hierarchy H = %.0f (E = %.0f bytes/sample),\n",
              model.budget.bytes_per_packet, model.hierarchy_size, model.budget.entry_bytes);
  std::printf("confidence delta = %.2e (Z = %.3f)\n\n", model.delta, model.z());

  const auto sample = sample_error_bound(model);
  const auto opt = optimal_batch(model);

  console_table table({"method", "batch_b", "tau", "err_packets", "err_pct", "delay_part"},
                      14);
  table.print_header();
  table.cell("sample")
      .cell(1)
      .cell(model.budget.max_tau(1), 4)
      .cell(sample.total(), 0)
      .cell(100.0 * sample.total() / model.window, 3)
      .cell(sample.delay, 0);
  table.end_row();
  for (std::size_t b : {16u, 64u, 256u}) {
    const auto e = error_bound(model, b);
    table.cell("batch")
        .cell(static_cast<long long>(b))
        .cell(model.budget.max_tau(b), 4)
        .cell(e.total(), 0)
        .cell(100.0 * e.total() / model.window, 3)
        .cell(e.delay, 0);
    table.end_row();
  }
  table.cell("batch(OPT)")
      .cell(static_cast<long long>(opt.batch_size))
      .cell(model.budget.max_tau(opt.batch_size), 4)
      .cell(opt.error.total(), 0)
      .cell(100.0 * opt.error.total() / model.window, 3)
      .cell(opt.error.delay, 0);
  table.end_row();

  std::printf("\nrecommendation: batch size b = %zu -> guaranteed error %.2f%% of the "
              "window.\n",
              opt.batch_size, 100.0 * opt.error.total() / model.window);
  std::puts("(errors are worst-case guarantees; measured error is typically far lower,");
  std::puts(" see bench/fig9_netwide_error)");
  return 0;
}
