// End-to-end DDoS mitigation: the paper's flagship application (Section 6.4
// and Figure 3). Ten load balancers front a backend pool; an HTTP flood from
// 30 random /8 subnets begins mid-run; the balancers report to a centralized
// controller over a 1 byte/packet budget (Batch method); the controller runs
// D-H-Memento over the global window and pushes deny rules for subnets whose
// window share exceeds the threshold.
//
//   build/examples/ddos_mitigation
#include <cstdio>

#include "lb/cluster.hpp"
#include "trace/flood_injector.hpp"
#include "trace/trace_generator.hpp"

int main() {
  using namespace memento;

  lb::cluster_config cfg;
  cfg.num_balancers = 10;
  cfg.backends_per_lb = 4;
  cfg.method = netwide::comm_method::batch;  // Theorem 5.5 optimal batch size
  cfg.window = 300'000;
  cfg.budget = netwide::budget_model{1.0, 64.0, 4.0};
  cfg.counters = 4096;
  cfg.theta = 0.015;        // block subnets above 1.5% of the window
  cfg.detect_stride = 1'000;
  lb::cluster cluster(cfg);

  std::puts("composing attack trace: 30 flooding /8 subnets, 70% of traffic...");
  auto base = make_trace(trace_kind::backbone, 500'000, /*seed=*/11);
  flood_config fc;
  fc.num_subnets = 30;
  fc.flood_probability = 0.7;
  fc.start_range = 250'000;
  const auto flood = inject_flood(base, fc);
  std::printf("flood starts at request %zu of %zu\n\n", flood.flood_start,
              flood.packets.size());

  std::uint64_t attack_total = 0;
  std::uint64_t attack_blocked = 0;
  std::uint64_t legit_blocked = 0;
  std::uint64_t legit_total = 0;
  std::size_t next_report = flood.flood_start;

  for (std::size_t i = 0; i < flood.packets.size(); ++i) {
    const auto& lp = flood.packets[i];
    const auto verdict = cluster.handle(lb::request_from_packet(lp.pkt));
    if (lp.is_attack) {
      ++attack_total;
      attack_blocked += verdict != lb::verdict::forwarded;
    } else {
      ++legit_total;
      legit_blocked += verdict != lb::verdict::forwarded;
    }
    if (i == next_report && i >= flood.flood_start) {
      std::printf("t=%8zu  blocked subnets: %2zu/30   attack stopped so far: %5.1f%%\n", i,
                  cluster.blocked().size(),
                  attack_total ? 100.0 * static_cast<double>(attack_blocked) /
                                     static_cast<double>(attack_total)
                               : 0.0);
      next_report += 150'000;
    }
  }

  const auto totals = cluster.total_stats();
  std::puts("\n=== final report ===");
  std::printf("requests handled : %llu (%llu denied at the ACLs)\n",
              static_cast<unsigned long long>(totals.received),
              static_cast<unsigned long long>(totals.denied));
  std::printf("blocked subnets  : %zu (30 true attackers)\n", cluster.blocked().size());
  std::printf("attack traffic   : %5.1f%% blocked (%llu of %llu requests)\n",
              100.0 * static_cast<double>(attack_blocked) / static_cast<double>(attack_total),
              static_cast<unsigned long long>(attack_blocked),
              static_cast<unsigned long long>(attack_total));
  std::printf("collateral damage: %.3f%% of legitimate requests blocked\n",
              100.0 * static_cast<double>(legit_blocked) / static_cast<double>(legit_total));
  std::puts("                   (inherent to /8-granular blocking: legitimate clients");
  std::puts("                    sharing an attacking subnet are denied with it)");
  std::printf("control overhead : %.3f bytes per ingress request (budget: %.1f)\n",
              cluster.harness().bytes_per_packet(), cfg.budget.bytes_per_packet);
  return 0;
}
