// Tests for the trace layer: Zipf sampling, the three surrogate traces, the
// flood injector (Section 6.4 construction), and trace statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "trace/flood_injector.hpp"
#include "trace/packet.hpp"
#include "trace/trace_generator.hpp"
#include "trace/trace_stats.hpp"
#include "trace/zipf.hpp"

namespace memento {
namespace {

TEST(Packet, FlowIdPacksBothAddresses) {
  const packet p{0x01020304u, 0xa0b0c0d0u};
  EXPECT_EQ(flow_id(p), 0x01020304a0b0c0d0ull);
  EXPECT_EQ(flow_id(packet{}), 0u);
}

TEST(Packet, FormatIpv4) {
  EXPECT_EQ(format_ipv4(0x01020304u), "1.2.3.4");
  EXPECT_EQ(format_ipv4(0u), "0.0.0.0");
  EXPECT_EQ(format_ipv4(0xffffffffu), "255.255.255.255");
}

TEST(Packet, HashSpreads) {
  std::unordered_set<std::size_t> hashes;
  std::hash<packet> h;
  for (std::uint32_t i = 0; i < 1000; ++i) hashes.insert(h(packet{i, i * 3}));
  EXPECT_GT(hashes.size(), 995u);  // near-perfect spread on distinct inputs
}

// --- zipf_sampler ------------------------------------------------------------

TEST(Zipf, PmfSumsToOne) {
  zipf_sampler z(1000, 1.0);
  double total = 0.0;
  for (std::size_t r = 0; r < z.num_ranks(); ++r) total += z.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankZeroIsMostFrequent) {
  zipf_sampler z(1000, 1.2);
  for (std::size_t r = 1; r < 20; ++r) EXPECT_GT(z.pmf(0), z.pmf(r));
}

TEST(Zipf, AlphaZeroIsUniform) {
  zipf_sampler z(100, 0.0);
  for (std::size_t r = 0; r < 100; ++r) EXPECT_NEAR(z.pmf(r), 0.01, 1e-9);
}

TEST(Zipf, HigherAlphaIsMoreSkewed) {
  zipf_sampler flat(1000, 0.8);
  zipf_sampler steep(1000, 1.4);
  EXPECT_GT(steep.pmf(0), flat.pmf(0));
  EXPECT_LT(steep.pmf(900), flat.pmf(900));
}

TEST(Zipf, EmpiricalTopRankFrequencyMatchesPmf) {
  zipf_sampler z(1 << 12, 1.0);
  xoshiro256 rng(17);
  constexpr int n = 300000;
  int rank0 = 0;
  for (int i = 0; i < n; ++i) rank0 += z.sample(rng) == 0;
  EXPECT_NEAR(static_cast<double>(rank0) / n, z.pmf(0), 0.01);
}

TEST(Zipf, SampleAlwaysInRange) {
  zipf_sampler z(37, 1.1);
  xoshiro256 rng(23);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(z.sample(rng), 37u);
}

TEST(Zipf, SingleRankDegenerates) {
  zipf_sampler z(1, 2.0);
  xoshiro256 rng(1);
  EXPECT_EQ(z.sample(rng), 0u);
  EXPECT_NEAR(z.pmf(0), 1.0, 1e-12);
  EXPECT_EQ(z.pmf(5), 0.0);
}

// --- trace generators ---------------------------------------------------------

TEST(TraceGenerator, DeterministicBySeed) {
  auto a = make_trace(trace_kind::backbone, 5000, 99);
  auto b = make_trace(trace_kind::backbone, 5000, 99);
  EXPECT_EQ(a, b);
}

TEST(TraceGenerator, SeedsChangeTrace) {
  auto a = make_trace(trace_kind::backbone, 5000, 1);
  auto b = make_trace(trace_kind::backbone, 5000, 2);
  EXPECT_NE(a, b);
}

TEST(TraceGenerator, PresetsHaveDocumentedSkewOrdering) {
  // Datacenter is the most skewed (alpha 1.4), edge the flattest (0.8):
  // the top-100 share must order accordingly (DESIGN.md substitution table).
  constexpr std::size_t n = 150000;
  const auto dc = summarize(make_trace(trace_kind::datacenter, n));
  const auto bb = summarize(make_trace(trace_kind::backbone, n));
  const auto eg = summarize(make_trace(trace_kind::edge, n));
  EXPECT_GT(dc.top_hundred_share, bb.top_hundred_share);
  EXPECT_GT(bb.top_hundred_share, eg.top_hundred_share);
  // Flow-count regimes: datacenter has far fewer distinct flows.
  EXPECT_LT(dc.distinct_flows, eg.distinct_flows);
  EXPECT_LT(dc.distinct_flows, bb.distinct_flows);
}

TEST(TraceGenerator, SameRankMapsToSameAddresses) {
  trace_generator g1(trace_kind::datacenter, 5);
  trace_generator g2(trace_kind::datacenter, 5);
  for (int i = 0; i < 1000; ++i) {
    const packet a = g1.next();
    const packet b = g2.next();
    ASSERT_EQ(a, b);
  }
}

TEST(TraceGenerator, SrcAndDstDiffer) {
  auto t = make_trace(trace_kind::backbone, 1000);
  int same = 0;
  for (const auto& p : t) same += p.src == p.dst;
  EXPECT_LT(same, 5);
}

TEST(TraceStats, CountsExactly) {
  std::vector<packet> t = {{1, 9}, {1, 9}, {1, 9}, {2, 9}, {3, 9}};
  const auto s = summarize(t);
  EXPECT_EQ(s.packets, 5u);
  EXPECT_EQ(s.distinct_flows, 3u);
  EXPECT_EQ(s.distinct_sources, 3u);
  EXPECT_EQ(s.top_flow_count, 3u);
  EXPECT_NEAR(s.top_hundred_share, 1.0, 1e-12);
}

TEST(TraceStats, EmptyTrace) {
  const auto s = summarize(std::span<const packet>{});
  EXPECT_EQ(s.packets, 0u);
  EXPECT_EQ(s.top_flow_count, 0u);
  EXPECT_EQ(s.top_hundred_share, 0.0);
}

// --- flood injector -----------------------------------------------------------

TEST(FloodInjector, PrefixOfTraceIsUnmodified) {
  auto base = make_trace(trace_kind::edge, 20000);
  flood_config cfg;
  cfg.start_range = 10000;
  const auto flood = inject_flood(base, cfg);
  ASSERT_GE(flood.packets.size(), flood.flood_start);
  for (std::size_t i = 0; i < flood.flood_start; ++i) {
    ASSERT_EQ(flood.packets[i].pkt, base[i]);
    ASSERT_FALSE(flood.packets[i].is_attack);
  }
}

TEST(FloodInjector, SelectsRequestedDistinctSubnets) {
  auto base = make_trace(trace_kind::edge, 5000);
  flood_config cfg;
  cfg.num_subnets = 50;
  const auto flood = inject_flood(base, cfg);
  EXPECT_EQ(flood.subnets.size(), 50u);
  std::unordered_set<std::uint32_t> distinct(flood.subnets.begin(), flood.subnets.end());
  EXPECT_EQ(distinct.size(), 50u);
  for (const auto s : flood.subnets) EXPECT_EQ(s & 0x00ffffffu, 0u) << "must be /8 prefixes";
}

TEST(FloodInjector, AttackShareNearConfiguredProbability) {
  auto base = make_trace(trace_kind::edge, 100000);
  flood_config cfg;
  cfg.start_range = 1;  // flood from (almost) the beginning
  cfg.flood_probability = 0.7;
  const auto flood = inject_flood(base, cfg);
  std::size_t attacks = 0;
  for (const auto& lp : flood.packets) attacks += lp.is_attack;
  const double share = static_cast<double>(attacks) / static_cast<double>(flood.packets.size());
  EXPECT_NEAR(share, 0.7, 0.01);
}

TEST(FloodInjector, AttackPacketsComeFromChosenSubnets) {
  auto base = make_trace(trace_kind::edge, 30000);
  const auto flood = inject_flood(base);
  for (const auto& lp : flood.packets) {
    if (!lp.is_attack) continue;
    ASSERT_LT(lp.attack_subnet, flood.subnets.size());
    ASSERT_EQ(lp.pkt.src & 0xff000000u, flood.subnets[lp.attack_subnet]);
  }
}

TEST(FloodInjector, AllOriginalPacketsSurviveInOrder) {
  auto base = make_trace(trace_kind::edge, 15000);
  const auto flood = inject_flood(base);
  std::vector<packet> originals;
  for (const auto& lp : flood.packets) {
    if (!lp.is_attack) originals.push_back(lp.pkt);
  }
  ASSERT_EQ(originals.size(), base.size());
  EXPECT_TRUE(std::equal(originals.begin(), originals.end(), base.begin()));
}

TEST(FloodInjector, DeterministicBySeed) {
  auto base = make_trace(trace_kind::edge, 10000);
  const auto a = inject_flood(base);
  const auto b = inject_flood(base);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  EXPECT_EQ(a.flood_start, b.flood_start);
  EXPECT_EQ(a.subnets, b.subnets);
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    ASSERT_EQ(a.packets[i].pkt, b.packets[i].pkt);
  }
}

TEST(FloodInjector, ZeroProbabilityMeansNoAttacks) {
  auto base = make_trace(trace_kind::edge, 5000);
  flood_config cfg;
  cfg.flood_probability = 0.0;
  const auto flood = inject_flood(base, cfg);
  EXPECT_EQ(flood.packets.size(), base.size());
  for (const auto& lp : flood.packets) EXPECT_FALSE(lp.is_attack);
}

}  // namespace
}  // namespace memento

namespace memento {
namespace {

TEST(TraceChurn, DisabledByDefaultKeepsTraceStationary) {
  trace_config cfg = trace_config::preset(trace_kind::datacenter);
  ASSERT_EQ(cfg.churn_stride, 0u);
  trace_generator a(cfg);
  trace_generator b(cfg);
  // Without churn, the flow population never rotates: both generators
  // produce identical packets forever.
  for (int i = 0; i < 20000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(TraceChurn, RotatesFlowPopulationOverTime) {
  trace_config cfg = trace_config::preset(trace_kind::datacenter, 3);
  cfg.churn_stride = 500;
  trace_generator gen(cfg);
  // Collect the source-address population of an early and a late slice.
  std::unordered_set<std::uint32_t> early;
  for (int i = 0; i < 20000; ++i) early.insert(gen.next().src);
  for (int i = 0; i < 400000; ++i) (void)gen.next();  // many cohort rotations
  std::unordered_set<std::uint32_t> late;
  for (int i = 0; i < 20000; ++i) late.insert(gen.next().src);
  std::size_t shared = 0;
  for (const auto s : late) shared += early.count(s);
  // Most of the population must have been re-identified.
  EXPECT_LT(static_cast<double>(shared) / static_cast<double>(late.size()), 0.5)
      << "churn did not rotate the flow population";
}

TEST(TraceChurn, DeterministicGivenSeed) {
  trace_config cfg = trace_config::preset(trace_kind::edge, 9);
  cfg.churn_stride = 777;
  trace_generator a(cfg);
  trace_generator b(cfg);
  for (int i = 0; i < 30000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(TraceChurn, PreservesSkewRegime) {
  trace_config cfg = trace_config::preset(trace_kind::datacenter, 5);
  cfg.churn_stride = 1000;
  trace_generator gen(cfg);
  const auto stats = summarize(gen.generate(100000));
  // Still strongly skewed: churn renames flows, it does not flatten sizes.
  EXPECT_GT(stats.top_hundred_share, 0.3);
}

}  // namespace
}  // namespace memento
