// Unit tests for the util layer: PRNG, samplers, and the normal quantile.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/normal.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"

namespace memento {
namespace {

TEST(Xoshiro, DeterministicGivenSeed) {
  xoshiro256 a(123);
  xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  xoshiro256 a(1);
  xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += a() == b();
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro, Uniform01InRange) {
  xoshiro256 rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro, Uniform01MeanNearHalf) {
  xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Xoshiro, BoundedStaysInBound) {
  xoshiro256 rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.bounded(bound), bound);
  }
}

TEST(Xoshiro, BoundedCoversAllValues) {
  xoshiro256 rng(5);
  bool seen[10] = {};
  for (int i = 0; i < 10000; ++i) seen[rng.bounded(10)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Splitmix, KnownNonZeroAndDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  const auto a = splitmix64_next(s1);
  const auto b = splitmix64_next(s2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(s1, s2);
}

// --- random_table_sampler --------------------------------------------------

class RandomTableRate : public ::testing::TestWithParam<double> {};

TEST_P(RandomTableRate, EmpiricalRateMatchesTau) {
  const double tau = GetParam();
  random_table_sampler sampler(tau, 1u << 16, 9);
  constexpr int n = 400000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += sampler.sample();
  const double rate = static_cast<double>(hits) / n;
  // 5-sigma binomial tolerance (the table recycles, so allow extra slack).
  const double sigma = std::sqrt(tau * (1.0 - tau) / n);
  EXPECT_NEAR(rate, tau, 5.0 * sigma + 0.002) << "tau=" << tau;
}

INSTANTIATE_TEST_SUITE_P(TauSweep, RandomTableRate,
                         ::testing::Values(1.0, 0.5, 0.25, 1.0 / 16, 1.0 / 64, 1.0 / 256,
                                           1.0 / 1024));

TEST(RandomTableSampler, TauOneAlwaysSamples) {
  random_table_sampler sampler(1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(sampler.sample());
}

TEST(RandomTableSampler, TauZeroNeverSamples) {
  random_table_sampler sampler(0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(sampler.sample());
}

TEST(RandomTableSampler, SetProbabilityRetargets) {
  random_table_sampler sampler(0.0, 1024, 2);
  sampler.set_probability(1.0);
  EXPECT_TRUE(sampler.sample());
  sampler.set_probability(0.0);
  EXPECT_FALSE(sampler.sample());
}

TEST(RandomTableSampler, TinyTableStillWorks) {
  random_table_sampler sampler(0.5, 1, 3);
  // Only one table entry: decisions are constant, but must not crash/UB.
  const bool first = sampler.sample();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(), first);
}

// --- geometric_sampler ------------------------------------------------------

class GeometricRate : public ::testing::TestWithParam<double> {};

TEST_P(GeometricRate, EmpiricalRateMatchesTau) {
  const double tau = GetParam();
  geometric_sampler sampler(tau, 13);
  constexpr int n = 400000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += sampler.sample();
  const double rate = static_cast<double>(hits) / n;
  const double sigma = std::sqrt(tau * (1.0 - tau) / n);
  EXPECT_NEAR(rate, tau, 5.0 * sigma + 0.002) << "tau=" << tau;
}

INSTANTIATE_TEST_SUITE_P(TauSweep, GeometricRate,
                         ::testing::Values(1.0, 0.5, 0.125, 1.0 / 64, 1.0 / 512));

TEST(GeometricSampler, EdgeProbabilities) {
  geometric_sampler always(1.0);
  geometric_sampler never(0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(always.sample());
    EXPECT_FALSE(never.sample());
  }
}

// --- normal distribution ----------------------------------------------------

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-10);
}

TEST(Normal, QuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-8);
  // The Section 5.2 example: Z_{1 - delta/2} for delta = 0.01%.
  EXPECT_NEAR(normal_quantile(0.99995), 3.8906, 5e-4);
}

TEST(Normal, QuantileCdfRoundTrip) {
  for (double p = 0.0005; p < 1.0; p += 0.0101) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(Normal, QuantileSymmetry) {
  for (double p : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9);
  }
}

TEST(Normal, PaperZBoundHolds) {
  // Section 5.1 states "Z_{1-delta/4} satisfies Z < 4 for any delta > 1e-6";
  // the exact quantile at delta = 1e-6 is 5.03, so the paper's "4" is an
  // engineering approximation. We pin the true values: finite and < 5.1 at
  // the stated extreme, monotone decreasing in delta, and genuinely < 4
  // for every delta >= 1e-3 (the range all experiments use).
  EXPECT_LT(z_value(1.0 - 1e-6 / 4.0), 5.1);
  double previous = z_value(1.0 - 1e-6 / 4.0);
  for (double delta : {1e-5, 1e-4, 1e-3, 1e-2}) {
    const double z = z_value(1.0 - delta / 4.0);
    EXPECT_LT(z, previous) << "delta=" << delta;
    previous = z;
  }
  for (double delta : {1e-3, 1e-2, 1e-1}) {
    EXPECT_LT(z_value(1.0 - delta / 4.0), 4.0) << "delta=" << delta;
  }
}

TEST(Normal, OutOfDomainReturnsInfinities) {
  EXPECT_EQ(normal_quantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_quantile(1.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_quantile(-0.1), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_quantile(1.1), std::numeric_limits<double>::infinity());
}

TEST(Stopwatch, MeasuresForwardTime) {
  stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.seconds(), 0.0);
  EXPECT_GE(sw.millis(), sw.seconds());
}

TEST(Stopwatch, MopsGuardsZeroTime) {
  EXPECT_EQ(mops(1000, 0.0), 0.0);
  EXPECT_NEAR(mops(2'000'000, 1.0), 2.0, 1e-12);
}

}  // namespace
}  // namespace memento
