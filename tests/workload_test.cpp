// Tests for the stateful HTTP workload generator (the Section 6.3 traffic
// tool, simulated) and the mitigation policy.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "lb/mitigation_policy.hpp"
#include "lb/workload.hpp"

namespace memento::lb {
namespace {

// --- workload generator -----------------------------------------------------

TEST(Workload, Validation) {
  workload_config bad_sessions;
  bad_sessions.concurrent_sessions = 0;
  EXPECT_THROW(workload_generator{bad_sessions}, std::invalid_argument);
  workload_config bad_requests;
  bad_requests.requests_per_session = 0.5;
  EXPECT_THROW(workload_generator{bad_requests}, std::invalid_argument);
}

TEST(Workload, MaintainsConcurrentSessions) {
  workload_config cfg;
  cfg.concurrent_sessions = 100;
  workload_generator gen(cfg);
  for (int i = 0; i < 10000; ++i) (void)gen.next();
  EXPECT_EQ(gen.live_sessions(), 100u) << "closed sessions must be replaced";
  EXPECT_EQ(gen.requests_issued(), 10000u);
  EXPECT_GT(gen.sessions_completed(), 0u);
}

TEST(Workload, SessionsIssueMultipleRequestsFromOneAddress) {
  workload_config cfg;
  cfg.concurrent_sessions = 50;
  cfg.requests_per_session = 10.0;
  workload_generator gen(cfg);
  std::unordered_map<std::uint32_t, int> per_client;
  for (int i = 0; i < 20000; ++i) ++per_client[gen.next().client()];
  // Mean requests per client ~ 10 (stateful sessions, not one-shot).
  double mean = 0.0;
  for (const auto& [client, count] : per_client) mean += count;
  mean /= static_cast<double>(per_client.size());
  EXPECT_GT(mean, 5.0);
  EXPECT_LT(mean, 20.0);
}

TEST(Workload, PostFractionRespected) {
  workload_config cfg;
  cfg.post_fraction = 0.3;
  workload_generator gen(cfg);
  int posts = 0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) posts += gen.next().method == http_method::post;
  EXPECT_NEAR(static_cast<double>(posts) / n, 0.3, 0.02);
}

TEST(Workload, AllRequestsTargetTheVirtualIp) {
  workload_config cfg;
  cfg.virtual_ip = 0x01020304u;
  workload_generator gen(cfg);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(gen.next().pkt.dst, 0x01020304u);
}

TEST(Workload, DeterministicBySeed) {
  workload_config cfg;
  cfg.seed = 77;
  workload_generator a(cfg);
  workload_generator b(cfg);
  for (int i = 0; i < 2000; ++i) {
    const auto ra = a.next();
    const auto rb = b.next();
    ASSERT_EQ(ra.pkt, rb.pkt);
    ASSERT_EQ(ra.method, rb.method);
    ASSERT_EQ(ra.path_hash, rb.path_hash);
  }
}

TEST(Workload, ClockAdvancesMonotonically) {
  workload_generator gen(workload_config{});
  double last = 0.0;
  for (int i = 0; i < 5000; ++i) {
    (void)gen.next();
    ASSERT_GE(gen.clock(), last);
    last = gen.clock();
  }
  EXPECT_GT(last, 0.0);
}

TEST(Workload, RequestsInterleaveAcrossClients) {
  // Consecutive requests should rarely come from the same client (sessions
  // are interleaved by think time, not played back to back).
  workload_config cfg;
  cfg.concurrent_sessions = 500;
  workload_generator gen(cfg);
  std::uint32_t prev = 0;
  int same = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto client = gen.next().client();
    same += client == prev;
    prev = client;
  }
  EXPECT_LT(same, 100);
}

// --- mitigation policy --------------------------------------------------------

mitigation_config policy_config() {
  mitigation_config c;
  c.block_theta = 0.05;
  c.limit_theta = 0.02;
  c.release_theta = 0.01;
  c.max_rules = 4;
  return c;
}

TEST(MitigationPolicy, Validation) {
  mitigation_config bad = policy_config();
  bad.release_theta = 0.03;  // not < limit_theta
  EXPECT_THROW(mitigation_policy{bad}, std::invalid_argument);
  bad = policy_config();
  bad.max_rules = 0;
  EXPECT_THROW(mitigation_policy{bad}, std::invalid_argument);
}

TEST(MitigationPolicy, GraduatedResponse) {
  mitigation_policy policy(policy_config());
  const auto key = prefix1d::make_key(0x0A000000u, 3);
  // 3% share: rate limited, not blocked.
  auto decisions = policy.evaluate({{key, 0.03}});
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].to, mitigation_level::rate_limited);
  EXPECT_EQ(policy.level_of(key), mitigation_level::rate_limited);
  // 8% share: escalated to blocked.
  decisions = policy.evaluate({{key, 0.08}});
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].from, mitigation_level::rate_limited);
  EXPECT_EQ(decisions[0].to, mitigation_level::blocked);
}

TEST(MitigationPolicy, RecoveryOnQuietSubnet) {
  mitigation_policy policy(policy_config());
  const auto key = prefix1d::make_key(0x0A000000u, 3);
  (void)policy.evaluate({{key, 0.10}});
  ASSERT_EQ(policy.level_of(key), mitigation_level::blocked);
  // Share collapses below release threshold: rule lifted entirely.
  const auto decisions = policy.evaluate({{key, 0.005}});
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].to, mitigation_level::none);
  EXPECT_EQ(policy.level_of(key), mitigation_level::none);
  EXPECT_EQ(policy.active_rules(), 0u);
}

TEST(MitigationPolicy, BlockedDowngradesToLimitBeforeRelease) {
  mitigation_policy policy(policy_config());
  const auto key = prefix1d::make_key(0x0A000000u, 3);
  (void)policy.evaluate({{key, 0.10}});
  // Share drops between release and limit: downgraded, not released.
  const auto decisions = policy.evaluate({{key, 0.015}});
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].to, mitigation_level::rate_limited);
  EXPECT_EQ(policy.level_of(key), mitigation_level::rate_limited);
}

TEST(MitigationPolicy, HysteresisHoldsBetweenReleaseAndLimit) {
  mitigation_policy policy(policy_config());
  const auto key = prefix1d::make_key(0x0A000000u, 3);
  (void)policy.evaluate({{key, 0.03}});
  ASSERT_EQ(policy.level_of(key), mitigation_level::rate_limited);
  // 1.5% is below limit_theta but above release_theta: keep the rule.
  const auto decisions = policy.evaluate({{key, 0.015}});
  EXPECT_TRUE(decisions.empty());
  EXPECT_EQ(policy.level_of(key), mitigation_level::rate_limited);
}

TEST(MitigationPolicy, AbsentSubnetTreatedAsZeroShare) {
  mitigation_policy policy(policy_config());
  const auto key = prefix1d::make_key(0x0A000000u, 3);
  (void)policy.evaluate({{key, 0.10}});
  const auto decisions = policy.evaluate({});  // subnet vanished entirely
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].to, mitigation_level::none);
}

TEST(MitigationPolicy, RuleTableCapacityPrefersHeaviest) {
  mitigation_policy policy(policy_config());  // max_rules = 4
  std::unordered_map<std::uint64_t, double> shares;
  for (std::uint32_t i = 0; i < 8; ++i) {
    shares[prefix1d::make_key(i << 24, 3)] = 0.02 + 0.01 * static_cast<double>(i);
  }
  (void)policy.evaluate(shares);
  EXPECT_EQ(policy.active_rules(), 4u);
  // The four heaviest (i = 4..7) must hold the slots.
  for (std::uint32_t i = 4; i < 8; ++i) {
    EXPECT_NE(policy.level_of(prefix1d::make_key(i << 24, 3)), mitigation_level::none);
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(policy.level_of(prefix1d::make_key(i << 24, 3)), mitigation_level::none);
  }
}

TEST(MitigationPolicy, ReleaseFreesCapacityForWaitingSubnets) {
  mitigation_policy policy(policy_config());
  std::unordered_map<std::uint64_t, double> shares;
  for (std::uint32_t i = 0; i < 4; ++i) {
    shares[prefix1d::make_key(i << 24, 3)] = 0.10;
  }
  (void)policy.evaluate(shares);
  ASSERT_EQ(policy.active_rules(), 4u);
  // All four quiet down; a new attacker appears.
  std::unordered_map<std::uint64_t, double> next_shares;
  next_shares[prefix1d::make_key(200u << 24, 3)] = 0.20;
  (void)policy.evaluate(next_shares);
  EXPECT_EQ(policy.level_of(prefix1d::make_key(200u << 24, 3)), mitigation_level::blocked);
  EXPECT_EQ(policy.active_rules(), 1u);
}

}  // namespace
}  // namespace memento::lb
