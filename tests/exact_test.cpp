// Tests for the exact oracles: sliding-window counter, interval counter and
// the exact HHH ground truth. These must be beyond doubt - every accuracy
// experiment measures against them.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "sketch/exact_hhh.hpp"
#include "sketch/exact_window.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"

namespace memento {
namespace {

TEST(ExactWindow, RejectsZeroWindow) {
  EXPECT_THROW(exact_window<int>(0), std::invalid_argument);
}

TEST(ExactWindow, CountsWithinWindowOnly) {
  exact_window<int> win(3);
  win.add(1);
  win.add(1);
  win.add(2);
  EXPECT_EQ(win.query(1), 2u);
  EXPECT_EQ(win.query(2), 1u);
  win.add(3);  // evicts the first 1
  EXPECT_EQ(win.query(1), 1u);
  win.add(3);  // evicts the second 1
  EXPECT_EQ(win.query(1), 0u);
  EXPECT_EQ(win.query(3), 2u);
}

TEST(ExactWindow, OccupancySaturatesAtW) {
  exact_window<int> win(5);
  for (int i = 0; i < 3; ++i) win.add(i);
  EXPECT_EQ(win.occupancy(), 3u);
  for (int i = 0; i < 100; ++i) win.add(i);
  EXPECT_EQ(win.occupancy(), 5u);
  EXPECT_EQ(win.stream_length(), 103u);
}

TEST(ExactWindow, DistinctTracksLiveKeys) {
  exact_window<int> win(4);
  win.add(1);
  win.add(2);
  win.add(1);
  EXPECT_EQ(win.distinct(), 2u);
  win.add(3);
  win.add(4);  // evicts the first 1; the second 1 remains
  EXPECT_EQ(win.distinct(), 4u);
  win.add(5);  // evicts 2
  EXPECT_EQ(win.query(2), 0u);
  EXPECT_EQ(win.distinct(), 4u);
}

TEST(ExactWindow, MatchesNaiveDequeReference) {
  // Differential test against an obviously-correct deque model.
  constexpr std::size_t w = 97;
  exact_window<std::uint64_t> win(w);
  std::deque<std::uint64_t> reference;
  xoshiro256 rng(3);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.bounded(50);
    win.add(key);
    reference.push_back(key);
    if (reference.size() > w) reference.pop_front();
    if (i % 500 == 0) {
      std::unordered_map<std::uint64_t, std::uint64_t> truth;
      for (const auto k : reference) ++truth[k];
      for (std::uint64_t k = 0; k < 50; ++k) {
        const auto it = truth.find(k);
        ASSERT_EQ(win.query(k), it == truth.end() ? 0u : it->second) << "at step " << i;
      }
    }
  }
}

TEST(ExactWindow, ForEachSumsToOccupancy) {
  exact_window<int> win(10);
  for (int i = 0; i < 25; ++i) win.add(i % 4);
  std::uint64_t total = 0;
  win.for_each([&](int, std::uint64_t c) { total += c; });
  EXPECT_EQ(total, 10u);
}

TEST(ExactInterval, CountsAndResets) {
  exact_interval<int> interval;
  for (int i = 0; i < 10; ++i) interval.add(i % 3);
  EXPECT_EQ(interval.query(0), 4u);
  EXPECT_EQ(interval.query(1), 3u);
  EXPECT_EQ(interval.stream_length(), 10u);
  interval.reset();
  EXPECT_EQ(interval.query(0), 0u);
  EXPECT_EQ(interval.stream_length(), 0u);
  EXPECT_EQ(interval.distinct(), 0u);
}

// --- exact HHH -----------------------------------------------------------------

TEST(ExactHhh, PrefixQueriesAggregateHosts) {
  exact_hhh<source_hierarchy> hhh(100);
  // 10 packets from 10.1.1.1, 5 from 10.1.1.2, 3 from 10.2.0.1.
  for (int i = 0; i < 10; ++i) hhh.update({0x0A010101u, 0});
  for (int i = 0; i < 5; ++i) hhh.update({0x0A010102u, 0});
  for (int i = 0; i < 3; ++i) hhh.update({0x0A020001u, 0});

  EXPECT_EQ(hhh.query(prefix1d::make_key(0x0A010101u, 0)), 10u);
  EXPECT_EQ(hhh.query(prefix1d::make_key(0x0A010100u, 1)), 15u);
  EXPECT_EQ(hhh.query(prefix1d::make_key(0x0A010000u, 2)), 15u);
  EXPECT_EQ(hhh.query(prefix1d::make_key(0x0A000000u, 3)), 18u);
  EXPECT_EQ(hhh.query(prefix1d::make_key(0, 4)), 18u);
}

TEST(ExactHhh, WindowSlidesPerPrefix) {
  exact_hhh<source_hierarchy> hhh(4);
  for (int i = 0; i < 4; ++i) hhh.update({0x0A010101u, 0});
  EXPECT_EQ(hhh.query(prefix1d::make_key(0x0A010101u, 0)), 4u);
  for (int i = 0; i < 4; ++i) hhh.update({0x0B010101u, 0});
  EXPECT_EQ(hhh.query(prefix1d::make_key(0x0A010101u, 0)), 0u);
  EXPECT_EQ(hhh.query(prefix1d::make_key(0x0B000000u, 3)), 4u);
}

TEST(ExactHhh, OutputMatchesHandComputedSet) {
  // Window 100; theta 0.3 -> bar 30. Hosts: A=40 (alone a HHH);
  // subnet 20.x: 3 hosts x 12 = 36 -> the /24 qualifies via aggregation;
  // root residue: 100 - 40 - 36 = 24 < 30 -> root excluded.
  exact_hhh<source_hierarchy> hhh(100);
  for (int i = 0; i < 40; ++i) hhh.update({0x0A010101u, 0});
  for (int h = 0; h < 3; ++h) {
    for (int i = 0; i < 12; ++i) {
      hhh.update({0x14010100u + static_cast<std::uint32_t>(h), 0});
    }
  }
  for (int i = 0; i < 24; ++i) {
    hhh.update({0xC0000000u + static_cast<std::uint32_t>(i) * 0x10101u, 0});
  }
  const auto result = hhh.output(0.3);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].key, prefix1d::make_key(0x0A010101u, 0));
  EXPECT_EQ(result[1].key, prefix1d::make_key(0x14010100u, 1));
}

TEST(ExactHhh, TwoDimensionalAggregation) {
  exact_hhh<two_dim_hierarchy> hhh(50);
  for (int i = 0; i < 30; ++i) hhh.update({0x0A010101u, 0x14020202u});
  for (int i = 0; i < 20; ++i) hhh.update({0x0A010102u, 0x14020203u});
  // (10.1.1.*, 20.2.2.*) aggregates both flows: 50.
  EXPECT_EQ(hhh.query(prefix2::make(0x0A010100u, 1, 0x14020200u, 1)), 50u);
  EXPECT_EQ(hhh.query(prefix2::make(0x0A010101u, 0, 0x14020200u, 1)), 30u);
  const auto result = hhh.output(0.5);  // bar 25
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result[0].key, two_dim_hierarchy::full_key({0x0A010101u, 0x14020202u}));
}

TEST(ExactHhh, StreamLengthCounts) {
  exact_hhh<source_hierarchy> hhh(10);
  for (int i = 0; i < 7; ++i) hhh.update({static_cast<std::uint32_t>(i), 0});
  EXPECT_EQ(hhh.stream_length(), 7u);
  EXPECT_EQ(hhh.window_size(), 10u);
}

}  // namespace
}  // namespace memento
