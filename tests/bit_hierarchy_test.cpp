// Tests for the bit-granularity hierarchy (H = 33) and its drop-in use in
// the generic algorithms - the genericity-in-H claim made concrete.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

#include "core/h_memento.hpp"
#include "core/mst.hpp"
#include "hierarchy/bit_hierarchy.hpp"
#include "sketch/exact_hhh.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"

namespace memento {
namespace {

constexpr std::uint32_t ip(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d) {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

TEST(BitHierarchy, MasksAtBitGranularity) {
  EXPECT_EQ(prefixbit::mask_for_depth(0), 0xffffffffu);
  EXPECT_EQ(prefixbit::mask_for_depth(1), 0xfffffffeu);
  EXPECT_EQ(prefixbit::mask_for_depth(8), 0xffffff00u);
  EXPECT_EQ(prefixbit::mask_for_depth(31), 0x80000000u);
  EXPECT_EQ(prefixbit::mask_for_depth(32), 0u);
}

TEST(BitHierarchy, ThirtyThreeDistinctGeneralizations) {
  const packet p{ip(181, 7, 20, 6), 0};
  std::unordered_set<std::uint64_t> keys;
  for (std::size_t i = 0; i < bit_source_hierarchy::hierarchy_size; ++i) {
    const auto key = bit_source_hierarchy::key_at(p, i);
    keys.insert(key);
    EXPECT_EQ(bit_source_hierarchy::depth(key), i);
    EXPECT_TRUE(
        bit_source_hierarchy::generalizes(key, bit_source_hierarchy::full_key(p)));
  }
  EXPECT_EQ(keys.size(), 33u);
}

TEST(BitHierarchy, GeneralizationChainIsTotal) {
  // Along one address, deeper keys generalize shallower ones, never the
  // other way.
  const packet p{ip(10, 20, 30, 40), 0};
  for (std::size_t shallow = 0; shallow < 33; ++shallow) {
    for (std::size_t deep = shallow + 1; deep < 33; ++deep) {
      const auto k_shallow = bit_source_hierarchy::key_at(p, shallow);
      const auto k_deep = bit_source_hierarchy::key_at(p, deep);
      EXPECT_TRUE(bit_source_hierarchy::generalizes(k_deep, k_shallow));
      EXPECT_FALSE(bit_source_hierarchy::generalizes(k_shallow, k_deep));
    }
  }
}

TEST(BitHierarchy, SiblingsSplitAtTheRightBit) {
  // 10.0.0.0 and 11.0.0.0 differ in bit 24 (the last bit of the first
  // octet): comparable only at depths >= 25.
  const auto a24 = prefixbit::make_key(ip(10, 0, 0, 0), 24);
  const auto b24 = prefixbit::make_key(ip(11, 0, 0, 0), 24);
  EXPECT_FALSE(prefixbit::generalizes(a24, b24));
  const auto a25 = prefixbit::make_key(ip(10, 0, 0, 0), 25);
  EXPECT_TRUE(prefixbit::generalizes(a25, prefixbit::make_key(ip(11, 0, 0, 0), 0)));
}

TEST(BitHierarchy, ToStringUsesBitLengths) {
  const packet p{ip(181, 7, 20, 6), 0};
  EXPECT_EQ(bit_source_hierarchy::to_string(bit_source_hierarchy::key_at(p, 0)),
            "181.7.20.6/32");
  EXPECT_EQ(bit_source_hierarchy::to_string(bit_source_hierarchy::key_at(p, 5)),
            "181.7.20.0/27");
  EXPECT_EQ(bit_source_hierarchy::to_string(bit_source_hierarchy::key_at(p, 32)),
            "0.0.0.0/0");
}

TEST(BitHierarchy, ExactHhhAggregatesAtEveryBitLevel) {
  exact_hhh<bit_source_hierarchy> oracle(100);
  for (int i = 0; i < 8; ++i) oracle.update({ip(10, 0, 0, 0) + (i % 2 ? 1u : 0u), 0});
  // /31 covers both hosts.
  EXPECT_EQ(oracle.query(prefixbit::make_key(ip(10, 0, 0, 0), 1)), 8u);
  EXPECT_EQ(oracle.query(prefixbit::make_key(ip(10, 0, 0, 0), 0)), 4u);
}

TEST(BitHierarchy, HMementoCoversBitLevelAggregate) {
  // Two hosts differing in the last bit, together 40% of traffic: the exact
  // HHH set contains their /31. The compensated output must COVER that mass
  // - via the /31 itself or via selected descendants/ancestors (Definition
  // 4.2's coverage is relative to the algorithm's own set: compensated
  // false positives at deeper levels may legitimately shield an ancestor).
  h_memento<bit_source_hierarchy> monitor(20000, 33 * 300, 1.0, 1e-2, /*seed=*/3);
  exact_hhh<bit_source_hierarchy> oracle(monitor.window_size());
  xoshiro256 rng(5);
  trace_generator background(trace_kind::backbone, 7);
  for (int i = 0; i < 60000; ++i) {
    packet p;
    if (rng.uniform01() < 0.4) {
      p = {ip(10, 1, 1, 2) + static_cast<std::uint32_t>(rng.bounded(2)), 1};
    } else {
      p = background.next();
    }
    monitor.update(p);
    oracle.update(p);
  }

  // The /31 aggregate is in the exact set and carries >= 35% of the window.
  const auto pair_key = prefixbit::make_key(ip(10, 1, 1, 2), 1);
  const auto exact_set = oracle.output(0.3);
  EXPECT_TRUE(std::any_of(exact_set.begin(), exact_set.end(),
                          [&](const auto& e) { return e.key == pair_key; }));
  EXPECT_GE(oracle.query(pair_key), 0.35 * static_cast<double>(monitor.window_size()));

  // Coverage: some member of the approximate set accounts for the hot pair
  // (an ancestor of the /31, the /31 itself, or both host leaves).
  const auto approx = monitor.output(0.3);
  const auto host_a = prefixbit::make_key(ip(10, 1, 1, 2), 0);
  const auto host_b = prefixbit::make_key(ip(10, 1, 1, 3), 0);
  bool pair_covered = false;
  bool a_covered = false;
  bool b_covered = false;
  for (const auto& e : approx) {
    pair_covered |= bit_source_hierarchy::generalizes(e.key, pair_key);
    a_covered |= e.key == host_a;
    b_covered |= e.key == host_b;
  }
  EXPECT_TRUE(pair_covered || (a_covered && b_covered))
      << "approximate set covers neither the /31 nor both hosts";

  // And the /31's own estimate is accurate regardless of set membership.
  const double est = monitor.query(pair_key);
  const double truth = static_cast<double>(oracle.query(pair_key));
  EXPECT_NEAR(est, truth, 5000.0);
}

TEST(BitHierarchy, MstRunsWithHThirtyThree) {
  mst<bit_source_hierarchy> alg(64);
  const packet p{ip(1, 2, 3, 4), 0};
  for (int i = 0; i < 10; ++i) alg.update(p);
  for (std::size_t d = 0; d < 33; ++d) {
    EXPECT_DOUBLE_EQ(alg.query(bit_source_hierarchy::key_at(p, d)), 10.0);
  }
}

}  // namespace
}  // namespace memento
