// Tests for the Section 3 / Fig. 1b detection-time model: closed forms,
// ordering properties, and agreement between model and simulation.
#include <gtest/gtest.h>

#include "core/detection_model.hpp"

namespace memento::detection {
namespace {

TEST(DetectionModel, RejectsRatioBelowOne) {
  EXPECT_THROW((void)expected_delays(0.5), std::invalid_argument);
  EXPECT_THROW((void)simulate_delays(0.9, 0.01, 1000, 10), std::invalid_argument);
  EXPECT_THROW((void)simulate_delays(2.0, 0.6, 1000, 10), std::invalid_argument);
}

TEST(DetectionModel, PaperAnchorsAtRatioTwo) {
  // "when the frequency is twice the threshold, it takes a window algorithm
  // half a window to detect the new heavy hitter whereas interval-based
  // algorithms require between 0.6-1.0 windows."
  const auto d = expected_delays(2.0);
  EXPECT_DOUBLE_EQ(d.window, 0.5);
  EXPECT_GE(d.improved_interval, 0.6);
  EXPECT_LE(d.interval, 1.0);
  EXPECT_DOUBLE_EQ(d.interval, 1.0);
  EXPECT_NEAR(d.improved_interval, 0.625, 1e-12);
}

TEST(DetectionModel, WindowIsAlwaysFastest) {
  for (double r = 1.0; r <= 5.0; r += 0.25) {
    const auto d = expected_delays(r);
    EXPECT_LE(d.window, d.improved_interval) << "r=" << r;
    EXPECT_LE(d.window, d.interval) << "r=" << r;
  }
}

TEST(DetectionModel, IntervalIsSlowest) {
  for (double r = 1.05; r <= 5.0; r += 0.5) {
    const auto d = expected_delays(r);
    EXPECT_LE(d.improved_interval, d.interval + 1e-12) << "r=" << r;
  }
}

TEST(DetectionModel, NearThresholdGapApproaches40Percent) {
  // "When the frequency is close to the detection threshold, we get up to
  // 40% faster detection time compared to the Interval method."
  const auto d = expected_delays(1.05);
  const double speedup = 1.0 - d.window / d.interval;
  EXPECT_GT(speedup, 0.30);
  EXPECT_LT(speedup, 0.45);
}

TEST(DetectionModel, LargeRatioStillOverFivePercentQuicker) {
  // "At the end of the tested range, sliding windows are still over 5%
  // quicker" (vs. the improved interval).
  const auto d = expected_delays(3.0);
  EXPECT_GT(1.0 - d.window / d.improved_interval, 0.05);
}

TEST(DetectionModel, DelaysShrinkWithRatio) {
  const auto slow = expected_delays(1.2);
  const auto fast = expected_delays(3.0);
  EXPECT_LT(fast.window, slow.window);
  EXPECT_LT(fast.improved_interval, slow.improved_interval);
  EXPECT_LT(fast.interval, slow.interval);
}

class DetectionSimulation : public ::testing::TestWithParam<double> {};

TEST_P(DetectionSimulation, SimulationTracksClosedForm) {
  const double ratio = GetParam();
  const auto model = expected_delays(ratio);
  const auto sim = simulate_delays(ratio, 0.02, 4000, 300, /*seed=*/101);
  // Monte-Carlo + binomial arrival noise: generous but shape-preserving
  // tolerances (absolute, in windows).
  EXPECT_NEAR(sim.window, model.window, 0.08) << "ratio=" << ratio;
  EXPECT_NEAR(sim.improved_interval, model.improved_interval, 0.10) << "ratio=" << ratio;
  EXPECT_NEAR(sim.interval, model.interval, 0.12) << "ratio=" << ratio;
}

INSTANTIATE_TEST_SUITE_P(RatioSweep, DetectionSimulation,
                         ::testing::Values(1.25, 1.5, 2.0, 3.0),
                         [](const auto& info) {
                           return "r" + std::to_string(static_cast<int>(info.param * 100));
                         });

TEST(DetectionSimulation, OrderingPreservedEmpirically) {
  const auto sim = simulate_delays(2.0, 0.02, 4000, 300, /*seed=*/7);
  EXPECT_LT(sim.window, sim.improved_interval);
  EXPECT_LT(sim.improved_interval, sim.interval);
}

}  // namespace
}  // namespace memento::detection
