// Tests for Memento (Algorithm 1) - the paper's core single-device HH
// algorithm - and its tau = 1 degeneration WCSS.
//
// The load-bearing properties:
//   * one-sided error: query never undercounts the true window frequency;
//   * bounded overcount at tau = 1: query - truth <= estimate_width = 4W/k
//     (the WCSS guarantee, epsilon_a * W for k = 4 / epsilon_a);
//   * window semantics: flows that left the window decay to the floor;
//   * heavy-hitter recall: every true window heavy hitter is reported;
//   * de-amortization: block queues provably drain (forced_drains == 0);
//   * sampling: estimates stay near the truth for tau well above the
//     Theorem 5.2 bound, across traces and counter budgets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <unordered_set>

#include "core/memento.hpp"
#include "core/wcss.hpp"
#include "sketch/exact_window.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"

namespace memento {
namespace {

TEST(MementoConfig, Validation) {
  EXPECT_THROW(memento_sketch<>(memento_config{0, 8, 1.0, 1}), std::invalid_argument);
  EXPECT_THROW(memento_sketch<>(memento_config{100, 0, 1.0, 1}), std::invalid_argument);
  EXPECT_THROW(memento_sketch<>(memento_config{100, 8, 0.0, 1}), std::invalid_argument);
  EXPECT_THROW(memento_sketch<>(memento_config{100, 8, 1.5, 1}), std::invalid_argument);
  EXPECT_NO_THROW(memento_sketch<>(memento_config{100, 8, 1.0, 1}));
}

TEST(MementoConfig, FromEpsilonMatchesPaperFormula) {
  // k = ceil(4 / epsilon): epsilon = 0.001 -> 4000 counters (Appendix A:
  // "WCSS requires 4,000 counters for epsilon_a = 0.001").
  const auto c = memento_config::from_epsilon(1'000'000, 0.001);
  EXPECT_EQ(c.counters, 4000u);
  EXPECT_EQ(memento_config::from_epsilon(100, 0.5).counters, 8u);
}

TEST(MementoConfig, WindowRoundsUpToBlockMultiple) {
  memento_sketch<> m(1000, 300, 1.0);
  EXPECT_GE(m.window_size(), 1000u);
  EXPECT_EQ(m.window_size() % m.counters(), 0u);
  EXPECT_EQ(m.window_size(), m.block_length() * m.counters());
}

TEST(MementoConfig, ThresholdScalesWithTau) {
  // tau = 1: threshold = block length (the printed Algorithm 1).
  memento_sketch<> full(1024, 16, 1.0);
  EXPECT_EQ(full.overflow_threshold(), full.block_length());
  // tau = 1/4: threshold in sampled units is a quarter of the block.
  memento_sketch<> sampled(1024, 16, 0.25);
  EXPECT_EQ(sampled.overflow_threshold(), sampled.block_length() / 4);
  // Tiny tau: threshold floors at 1.
  memento_sketch<> tiny(1024, 512, 1.0 / 1024);
  EXPECT_EQ(tiny.overflow_threshold(), 1u);
}

TEST(Wcss, AliasIsMementoAtTauOne) {
  auto w = make_wcss<std::uint64_t>(4096, 64);
  EXPECT_DOUBLE_EQ(w.tau(), 1.0);
  static_assert(std::is_same_v<wcss<std::uint64_t>, memento_sketch<std::uint64_t>>);
}

TEST(Wcss, SingleFlowSaturatesToWindow) {
  auto w = make_wcss<std::uint64_t>(1000, 10);
  for (int i = 0; i < 5000; ++i) w.update(7);
  const double est = w.query(7);
  EXPECT_GE(est, static_cast<double>(w.window_size()));
  EXPECT_LE(est, static_cast<double>(w.window_size()) + w.estimate_width());
}

TEST(Wcss, DepartedFlowDecaysToFloor) {
  auto w = make_wcss<std::uint64_t>(1000, 10);
  for (int i = 0; i < 2000; ++i) w.update(7);
  // Push the flow fully out of the window (plus the 2-block slack).
  for (std::uint64_t i = 0; i < w.window_size() + 3 * w.block_length(); ++i) w.update(i + 100);
  // All that may remain is estimate slack, never a real count.
  EXPECT_LE(w.query(7), w.estimate_width() + static_cast<double>(w.block_length()));
}

TEST(Wcss, StreamLengthAdvancesOncePerUpdate) {
  auto w = make_wcss<std::uint64_t>(100, 4);
  for (int i = 0; i < 250; ++i) w.update(i % 3);
  EXPECT_EQ(w.stream_length(), 250u);
}

TEST(Wcss, QueryLowerNeverExceedsUpper) {
  auto w = make_wcss<std::uint64_t>(1024, 16);
  xoshiro256 rng(4);
  for (int i = 0; i < 5000; ++i) w.update(rng.bounded(100));
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_LE(w.query_lower(k), w.query(k));
    EXPECT_GE(w.query_lower(k), 0.0);
  }
}

// --- one-sided error property (tau = 1, WCSS guarantee) -----------------------

struct wcss_param {
  std::size_t counters;
  trace_kind kind;
};

class WcssAccuracy : public ::testing::TestWithParam<wcss_param> {};

TEST_P(WcssAccuracy, OneSidedErrorWithinEpsilonW) {
  const auto param = GetParam();
  constexpr std::uint64_t window = 20000;
  auto w = make_wcss<std::uint64_t>(window, param.counters);
  exact_window<std::uint64_t> exact(w.window_size());

  auto trace = make_trace(param.kind, 120000, /*seed=*/7);
  std::size_t checks = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto key = flow_id(trace[i]);
    w.update(key);
    exact.add(key);
    if (i % 97 == 0 && i > window) {
      // On-arrival check of the arriving flow (the paper's error model).
      const double est = w.query(key);
      const double truth = static_cast<double>(exact.query(key));
      ASSERT_GE(est, truth) << "undercount at packet " << i;
      ASSERT_LE(est - truth, w.estimate_width() + 1.0) << "overcount beyond 4W/k at " << i;
      ++checks;
    }
  }
  EXPECT_GT(checks, 500u);
  EXPECT_EQ(w.forced_drains(), 0u) << "de-amortized drain invariant violated";
}

INSTANTIATE_TEST_SUITE_P(
    CountersAndTraces, WcssAccuracy,
    ::testing::Values(wcss_param{64, trace_kind::backbone}, wcss_param{64, trace_kind::datacenter},
                      wcss_param{512, trace_kind::backbone}, wcss_param{512, trace_kind::edge},
                      wcss_param{256, trace_kind::datacenter}),
    [](const auto& info) {
      return std::string(trace_name(info.param.kind)) + "_k" +
             std::to_string(info.param.counters);
    });

// --- sampled accuracy property -------------------------------------------------

struct memento_param {
  std::size_t counters;
  double tau;
  trace_kind kind;
};

class MementoSampledAccuracy : public ::testing::TestWithParam<memento_param> {};

TEST_P(MementoSampledAccuracy, ErrorWithinTheoreticalEnvelope) {
  const auto param = GetParam();
  constexpr std::uint64_t window = 50000;
  memento_sketch<std::uint64_t> m(window, param.counters, param.tau, /*seed=*/11);
  exact_window<std::uint64_t> exact(m.window_size());

  auto trace = make_trace(param.kind, 200000, /*seed=*/3);
  // Theorem 5.2 envelope: eps_a * W (algorithm) + eps_s * W (sampling) where
  // eps_s = sqrt(Z / (W tau)), Z approx 4 at high confidence. Checked per
  // query with a 2x engineering margin (the bound is probabilistic).
  const double eps_a_w = m.estimate_width();
  const double eps_s_w =
      std::sqrt(4.0 / (static_cast<double>(m.window_size()) * param.tau)) *
      static_cast<double>(m.window_size());
  const double envelope = eps_a_w + 2.0 * eps_s_w;

  std::size_t checks = 0;
  std::size_t violations = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto key = flow_id(trace[i]);
    m.update(key);
    exact.add(key);
    if (i % 101 == 0 && i > window) {
      const double err = std::abs(m.query(key) - static_cast<double>(exact.query(key)));
      violations += err > envelope;
      ++checks;
    }
  }
  EXPECT_GT(checks, 1000u);
  // Allow a small violation rate (delta): the guarantee is per-query
  // probabilistic, not worst-case.
  EXPECT_LE(static_cast<double>(violations) / static_cast<double>(checks), 0.02)
      << "violations=" << violations << "/" << checks;
  EXPECT_EQ(m.forced_drains(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    TauSweep, MementoSampledAccuracy,
    ::testing::Values(memento_param{512, 0.5, trace_kind::backbone},
                      memento_param{512, 0.25, trace_kind::backbone},
                      memento_param{512, 1.0 / 16, trace_kind::backbone},
                      memento_param{512, 1.0 / 64, trace_kind::datacenter},
                      memento_param{4096, 1.0 / 64, trace_kind::backbone},
                      memento_param{64, 1.0 / 16, trace_kind::edge}),
    [](const auto& info) {
      return std::string(trace_name(info.param.kind)) + "_k" +
             std::to_string(info.param.counters) + "_invtau" +
             std::to_string(static_cast<int>(1.0 / info.param.tau));
    });

// --- heavy hitter recall --------------------------------------------------------

TEST(MementoHeavyHitters, PerfectRecallAtTauOne) {
  constexpr std::uint64_t window = 10000;
  constexpr double theta = 0.05;
  auto m = make_wcss<std::uint64_t>(window, 256);
  exact_window<std::uint64_t> exact(m.window_size());
  xoshiro256 rng(9);
  // 5 planted heavy hitters at ~8% each + tail.
  for (int i = 0; i < 60000; ++i) {
    std::uint64_t key;
    if (rng.uniform01() < 0.4) {
      key = rng.bounded(5);
    } else {
      key = 100 + rng.bounded(20000);
    }
    m.update(key);
    exact.add(key);
  }
  std::unordered_set<std::uint64_t> reported;
  for (const auto& hh : m.heavy_hitters(theta)) reported.insert(hh.key);
  const auto bar = static_cast<std::uint64_t>(theta * static_cast<double>(m.window_size()));
  exact.for_each([&](std::uint64_t key, std::uint64_t count) {
    if (count >= bar) {
      EXPECT_TRUE(reported.count(key)) << "missed true heavy hitter " << key;
    }
  });
  // And no wild false positives: reported flows must at least reach the
  // threshold minus the estimate width.
  for (const auto& hh : m.heavy_hitters(theta)) {
    EXPECT_GE(static_cast<double>(exact.query(hh.key)),
              theta * static_cast<double>(m.window_size()) - m.estimate_width() - 1.0);
  }
}

TEST(MementoHeavyHitters, SortedByEstimateDescending) {
  auto m = make_wcss<std::uint64_t>(1000, 32);
  xoshiro256 rng(2);
  for (int i = 0; i < 5000; ++i) m.update(rng.bounded(8));
  const auto hits = m.heavy_hitters(0.01);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].estimate, hits[i].estimate);
  }
}

TEST(MementoHeavyHitters, RecallUnderSampling) {
  constexpr std::uint64_t window = 50000;
  memento_sketch<std::uint64_t> m(window, 512, 1.0 / 16, /*seed=*/21);
  exact_window<std::uint64_t> exact(m.window_size());
  xoshiro256 rng(31);
  for (int i = 0; i < 150000; ++i) {
    const std::uint64_t key = rng.uniform01() < 0.5 ? rng.bounded(4) : 50 + rng.bounded(30000);
    m.update(key);
    exact.add(key);
  }
  // The four planted flows hold ~12.5% each; at theta = 5% all must appear.
  std::unordered_set<std::uint64_t> reported;
  for (const auto& hh : m.heavy_hitters(0.05)) reported.insert(hh.key);
  for (std::uint64_t k = 0; k < 4; ++k) EXPECT_TRUE(reported.count(k)) << "flow " << k;
}

// --- window mechanics -----------------------------------------------------------

TEST(MementoWindow, MonitoredKeysContainRecentHeavies) {
  auto m = make_wcss<std::uint64_t>(1000, 16);
  for (int i = 0; i < 800; ++i) m.update(1);
  const auto keys = m.monitored_keys();
  EXPECT_TRUE(std::find(keys.begin(), keys.end(), 1u) != keys.end());
}

TEST(MementoWindow, OverflowEntriesBounded) {
  // |B| is bounded by the number of overflow events in k+1 blocks, which is
  // at most (k+1) * (block/threshold) entries; with tau = 1 that is k+1
  // blocks x k overflows... in practice far less. Sanity: it must not grow
  // with the stream.
  auto m = make_wcss<std::uint64_t>(4096, 64);
  xoshiro256 rng(13);
  std::size_t peak = 0;
  for (int i = 0; i < 100000; ++i) {
    m.update(rng.bounded(1000));
    peak = std::max(peak, m.overflow_entries());
  }
  EXPECT_LE(peak, 64u * 66u);
  EXPECT_EQ(m.forced_drains(), 0u);
}

TEST(MementoWindow, FrameFlushDoesNotLoseWindowCounts) {
  // A flow active across a frame boundary must keep a near-window estimate
  // right after the flush (the overflow table carries the history).
  auto m = make_wcss<std::uint64_t>(1000, 10);
  const auto frame = m.window_size();
  for (std::uint64_t i = 0; i < frame - 1; ++i) m.update(7);
  const double before = m.query(7);
  m.update(7);  // crosses the frame boundary (flush)
  m.update(7);
  const double after = m.query(7);
  EXPECT_GE(after, before * 0.8) << "estimate collapsed across frame flush";
}

TEST(MementoWindow, DeterministicAcrossIdenticalRuns) {
  memento_sketch<std::uint64_t> a(5000, 128, 0.25, /*seed=*/5);
  memento_sketch<std::uint64_t> b(5000, 128, 0.25, /*seed=*/5);
  xoshiro256 rng(8);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t key = rng.bounded(300);
    a.update(key);
    b.update(key);
  }
  for (std::uint64_t k = 0; k < 300; ++k) ASSERT_DOUBLE_EQ(a.query(k), b.query(k));
}

TEST(MementoWindow, ExplicitFullAndWindowUpdatesCompose) {
  // The D-Memento controller path: full_update for samples, window_update
  // for the rest, must behave like the probabilistic path in expectation.
  memento_sketch<std::uint64_t> m(2000, 64, 0.5, /*seed=*/77);
  xoshiro256 rng(19);
  std::uint64_t fulls = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.uniform01() < 0.5) {
      m.full_update(42);
      ++fulls;
    } else {
      m.window_update();
    }
  }
  EXPECT_EQ(m.stream_length(), 10000u);
  // Flow 42 occupied every sampled slot of the final window: estimate ~ W.
  const double est = m.query(42);
  EXPECT_NEAR(est, static_cast<double>(m.window_size()), 0.15 * static_cast<double>(m.window_size()));
}

}  // namespace
}  // namespace memento

namespace memento {
namespace {

TEST(MementoTopK, ReturnsLargestFlowsInOrder) {
  auto m = make_wcss<std::uint64_t>(10000, 256);
  xoshiro256 rng(41);
  // Planted flows with distinct rates: 0 > 1 > 2.
  for (int i = 0; i < 60000; ++i) {
    const double dice = rng.uniform01();
    std::uint64_t key;
    if (dice < 0.30) {
      key = 0;
    } else if (dice < 0.50) {
      key = 1;
    } else if (dice < 0.62) {
      key = 2;
    } else {
      key = 100 + rng.bounded(30000);
    }
    m.update(key);
  }
  const auto top = m.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 0u);
  EXPECT_EQ(top[1].key, 1u);
  EXPECT_EQ(top[2].key, 2u);
  EXPECT_GE(top[0].estimate, top[1].estimate);
  EXPECT_GE(top[1].estimate, top[2].estimate);
}

TEST(MementoTopK, KLargerThanCandidatesReturnsAll) {
  auto m = make_wcss<std::uint64_t>(1000, 16);
  for (int i = 0; i < 3000; ++i) m.update(i % 2);
  const auto top = m.top(100);
  EXPECT_LE(top.size(), 100u);
  EXPECT_GE(top.size(), 2u);
}

TEST(MementoTopK, EmptySketchYieldsEmpty) {
  auto m = make_wcss<std::uint64_t>(1000, 16);
  EXPECT_TRUE(m.top(5).empty());
}

}  // namespace
}  // namespace memento
