// Tests for H-Memento (Algorithm 2): estimate scaling, the accuracy and
// coverage properties of Definition 4.2, and both hierarchy dimensions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>

#include "core/h_memento.hpp"
#include "sketch/exact_hhh.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"

namespace memento {
namespace {

TEST(HMementoConfig, Validation) {
  EXPECT_THROW(h_memento<source_hierarchy>(1000, 100, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(h_memento<source_hierarchy>(1000, 100, 1.0, 1.0), std::invalid_argument);
  EXPECT_NO_THROW(h_memento<source_hierarchy>(1000, 100, 1.0, 0.01));
}

TEST(HMemento, SamplingRatioIsHOverTau) {
  h_memento<source_hierarchy> hm(1000, 100, 0.5);
  EXPECT_DOUBLE_EQ(hm.sampling_ratio(), 5.0 / 0.5);
  h_memento<two_dim_hierarchy> hm2(1000, 100, 0.25);
  EXPECT_DOUBLE_EQ(hm2.sampling_ratio(), 25.0 / 0.25);
}

TEST(HMemento, CompensationMatchesFormula) {
  h_memento<source_hierarchy> hm(10000, 100, 0.5, 0.01);
  const double v = 5.0 / 0.5;
  const double expected =
      2.0 * z_value(0.99) * std::sqrt(v * static_cast<double>(hm.window_size()));
  EXPECT_NEAR(hm.sampling_compensation(), expected, 1e-9);
}

TEST(HMemento, SingleSubnetEstimateApproachesWindow) {
  // All traffic from one host: every prefix of it carries the whole window.
  h_memento<source_hierarchy> hm(5000, 500, 1.0, 1e-3, /*seed=*/3);
  const packet p{0x0A010101u, 0x14141414u};
  for (int i = 0; i < 20000; ++i) hm.update(p);
  const double w = static_cast<double>(hm.window_size());
  for (std::size_t d = 0; d < 5; ++d) {
    const double est = hm.query(source_hierarchy::key_at(p, d));
    // Each prefix receives ~W/5 of the inserts; estimate rescales by H = 5.
    EXPECT_GT(est, 0.6 * w) << "depth " << d;
    EXPECT_LT(est, 1.8 * w) << "depth " << d;
  }
}

TEST(HMemento, QueryLowerNeverExceedsQuery) {
  h_memento<source_hierarchy> hm(2000, 200, 0.5, 1e-3);
  auto trace = make_trace(trace_kind::datacenter, 10000);
  for (const auto& p : trace) hm.update(p);
  for (const auto& p : trace) {
    for (std::size_t d = 0; d < 5; ++d) {
      const auto key = source_hierarchy::key_at(p, d);
      ASSERT_LE(hm.query_lower(key), hm.query(key));
    }
  }
}

// --- accuracy property (Definition 4.2, Accuracy) ------------------------------

struct accuracy_param {
  double tau;
  std::size_t counters;
  trace_kind kind;
};

class HMementoAccuracy : public ::testing::TestWithParam<accuracy_param> {};

TEST_P(HMementoAccuracy, PrefixEstimatesWithinEnvelope) {
  const auto param = GetParam();
  constexpr std::uint64_t window = 40000;
  h_memento<source_hierarchy> hm(window, param.counters, param.tau, 1e-3, /*seed=*/5);
  exact_hhh<source_hierarchy> exact(hm.window_size());

  auto trace = make_trace(param.kind, 150000, /*seed=*/11);
  // Envelope: algorithm width (scaled by H) + sampling term ~ 2 sqrt(V W)
  // (Theorem A.4 at ~2 sigma), with a 2x engineering margin; violations are
  // allowed at a small rate since the guarantee is probabilistic.
  const double v = hm.sampling_ratio();
  const double envelope = 5.0 * hm.inner().estimate_width() +
                          4.0 * std::sqrt(v * static_cast<double>(hm.window_size()));

  std::size_t checks = 0;
  std::size_t violations = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    hm.update(trace[i]);
    exact.update(trace[i]);
    if (i % 211 == 0 && i > window) {
      for (std::size_t d = 0; d < 5; ++d) {
        const auto key = source_hierarchy::key_at(trace[i], d);
        const double err =
            std::abs(hm.query(key) - static_cast<double>(exact.query(key)));
        violations += err > envelope;
        ++checks;
      }
    }
  }
  EXPECT_GT(checks, 1000u);
  EXPECT_LE(static_cast<double>(violations) / static_cast<double>(checks), 0.05)
      << violations << "/" << checks;
}

INSTANTIATE_TEST_SUITE_P(
    TauCountersTraces, HMementoAccuracy,
    ::testing::Values(accuracy_param{1.0, 1000, trace_kind::backbone},
                      accuracy_param{0.5, 1000, trace_kind::backbone},
                      accuracy_param{0.25, 2000, trace_kind::datacenter},
                      accuracy_param{0.125, 2000, trace_kind::edge}),
    [](const auto& info) {
      return std::string(trace_name(info.param.kind)) + "_k" +
             std::to_string(info.param.counters) + "_invtau" +
             std::to_string(static_cast<int>(1.0 / info.param.tau));
    });

// --- coverage property (Definition 4.2, Coverage) -------------------------------

struct coverage_param {
  double tau;
  double theta;
  trace_kind kind;
};

class HMementoCoverage : public ::testing::TestWithParam<coverage_param> {};

TEST_P(HMementoCoverage, ExactHhhPrefixesAreCovered) {
  // Coverage: any prefix OUTSIDE the returned set has conditioned frequency
  // below theta*W. We verify the practical contrapositive the paper tests:
  // every member of the exact HHH set appears in the compensated output.
  const auto param = GetParam();
  constexpr std::uint64_t window = 30000;
  h_memento<source_hierarchy> hm(window, 3000, param.tau, 1e-2, /*seed=*/7);
  exact_hhh<source_hierarchy> exact(hm.window_size());

  auto trace = make_trace(param.kind, 90000, /*seed=*/23);
  for (const auto& p : trace) {
    hm.update(p);
    exact.update(p);
  }

  const auto approx = hm.output(param.theta);  // full compensation
  std::unordered_set<std::uint64_t> approx_keys;
  for (const auto& e : approx) approx_keys.insert(e.key);

  for (const auto& truth : exact.output(param.theta)) {
    EXPECT_TRUE(approx_keys.count(truth.key))
        << "missed exact HHH " << source_hierarchy::to_string(truth.key);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TauThetaTraces, HMementoCoverage,
    ::testing::Values(coverage_param{1.0, 0.1, trace_kind::datacenter},
                      coverage_param{1.0, 0.05, trace_kind::backbone},
                      coverage_param{0.5, 0.1, trace_kind::datacenter},
                      coverage_param{0.25, 0.1, trace_kind::backbone},
                      coverage_param{0.25, 0.05, trace_kind::edge}),
    [](const auto& info) {
      return std::string(trace_name(info.param.kind)) + "_invtau" +
             std::to_string(static_cast<int>(1.0 / info.param.tau)) + "_theta" +
             std::to_string(static_cast<int>(info.param.theta * 100));
    });

TEST(HMementoOutput, ZeroCompensationShrinksTheSet) {
  h_memento<source_hierarchy> hm(20000, 2000, 0.5, 1e-3, /*seed=*/9);
  auto trace = make_trace(trace_kind::datacenter, 60000);
  for (const auto& p : trace) hm.update(p);
  const auto compensated = hm.output(0.05);
  const auto raw = hm.output(0.05, 0.0);
  EXPECT_LE(raw.size(), compensated.size());
}

TEST(HMementoOutput, EntriesCarryConditionedFrequencies) {
  h_memento<source_hierarchy> hm(10000, 1000, 1.0, 1e-3);
  const packet hot{0x0A010101u, 0};
  for (int i = 0; i < 30000; ++i) hm.update(hot);
  const auto out = hm.output(0.5, 0.0);
  ASSERT_FALSE(out.empty());
  for (const auto& e : out) {
    EXPECT_GT(e.conditioned_frequency, 0.0);
    EXPECT_GT(e.upper_estimate, 0.0);
  }
}

// --- two dimensions ---------------------------------------------------------------

TEST(HMemento2d, HotPairDetected) {
  h_memento<two_dim_hierarchy> hm(20000, 5000, 1.0, 1e-2, /*seed=*/13);
  exact_hhh<two_dim_hierarchy> exact(hm.window_size());
  xoshiro256 rng(15);
  const packet hot{0x0A010101u, 0x14020202u};
  auto background = make_trace(trace_kind::backbone, 1);
  trace_generator gen(trace_kind::backbone, 77);
  for (int i = 0; i < 60000; ++i) {
    const packet p = rng.uniform01() < 0.3 ? hot : gen.next();
    hm.update(p);
    exact.update(p);
  }
  const auto approx = hm.output(0.2);
  const auto truth = exact.output(0.2);
  ASSERT_FALSE(truth.empty());
  // The hot fully-specified pair must be in both sets.
  const auto hot_key = two_dim_hierarchy::full_key(hot);
  const auto in_set = [&](const auto& set) {
    return std::any_of(set.begin(), set.end(),
                       [&](const auto& e) { return e.key == hot_key; });
  };
  EXPECT_TRUE(in_set(truth));
  EXPECT_TRUE(in_set(approx));
}

TEST(HMemento2d, CoverageOnSyntheticTrace) {
  h_memento<two_dim_hierarchy> hm(20000, 6000, 1.0, 1e-2, /*seed=*/17);
  exact_hhh<two_dim_hierarchy> exact(hm.window_size());
  auto trace = make_trace(trace_kind::datacenter, 60000, /*seed=*/31);
  for (const auto& p : trace) {
    hm.update(p);
    exact.update(p);
  }
  std::unordered_set<prefix2d> approx_keys;
  for (const auto& e : hm.output(0.1)) approx_keys.insert(e.key);
  for (const auto& truth : exact.output(0.1)) {
    EXPECT_TRUE(approx_keys.count(truth.key))
        << "missed " << two_dim_hierarchy::to_string(truth.key);
  }
}

TEST(HMemento, DistributedUpdatePathMatchesSampling) {
  // full_update / window_update (the D-H-Memento path) must yield the same
  // estimate scale as probabilistic update at the same effective rate.
  constexpr std::uint64_t window = 10000;
  h_memento<source_hierarchy> sampled(window, 1000, 0.5, 1e-3, /*seed=*/41);
  h_memento<source_hierarchy> forced(window, 1000, 0.5, 1e-3, /*seed=*/42);
  xoshiro256 rng(43);
  const packet hot{0x0A010101u, 0};
  for (int i = 0; i < 40000; ++i) {
    sampled.update(hot);
    if (rng.uniform01() < 0.5) {
      forced.full_update(hot);
    } else {
      forced.window_update();
    }
  }
  const auto key = source_hierarchy::full_key(hot);
  EXPECT_NEAR(sampled.query(key), forced.query(key),
              0.25 * static_cast<double>(window) + 1.0);
}

}  // namespace
}  // namespace memento
