// Differential tests: the HHH solver against a direct transcription of the
// paper's definitions, on randomized small instances.
//
// The solver (hierarchy/hhh_solver.hpp) computes conditioned frequencies
// through G(q|P) maximality and - in 2D - pairwise glb inclusion-exclusion
// (Algorithms 3/4). The reference here computes them straight from
// Definition 4.1/4.2 set arithmetic: C_{q|P} = #{packets e : q generalizes e
// and no member of P generalizes e}. Agreement on random instances validates
// the clever path against the obvious one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hierarchy/hhh_solver.hpp"
#include "hierarchy/prefix1d.hpp"
#include "hierarchy/prefix2d.hpp"
#include "util/random.hpp"

namespace memento {
namespace {

/// Definitional HHH over exact packet lists: level-by-level admission with
/// C_{q|P} counted by brute-force set membership.
template <typename H>
std::vector<typename H::key_type> definitional_hhh(const std::vector<packet>& packets,
                                                   double threshold) {
  using key_type = typename H::key_type;
  // Candidates: every prefix of every packet, grouped by level.
  std::vector<std::vector<key_type>> by_level(H::num_levels);
  std::unordered_set<key_type> seen;
  for (const auto& p : packets) {
    for (std::size_t i = 0; i < H::hierarchy_size; ++i) {
      const auto key = H::key_at(p, i);
      if (seen.insert(key).second) by_level[H::depth(key)].push_back(key);
    }
  }
  std::vector<key_type> selected;
  for (auto& level : by_level) {
    std::sort(level.begin(), level.end(), [](const key_type& a, const key_type& b) {
      if constexpr (std::is_same_v<key_type, prefix2d>) {
        return std::tie(a.src, a.dst, a.src_depth, a.dst_depth) <
               std::tie(b.src, b.dst, b.src_depth, b.dst_depth);
      } else {
        return a < b;
      }
    });
    for (const auto& q : level) {
      std::size_t conditioned = 0;
      for (const auto& p : packets) {
        const auto full = H::full_key(p);
        if (!H::generalizes(q, full)) continue;
        const bool covered = std::any_of(selected.begin(), selected.end(),
                                         [&](const key_type& h) {
                                           return H::generalizes(h, full);
                                         });
        if (!covered) ++conditioned;
      }
      if (static_cast<double>(conditioned) >= threshold) selected.push_back(q);
    }
  }
  return selected;
}

/// Exact per-prefix counts for the solver's bound oracle.
template <typename H>
std::unordered_map<typename H::key_type, double> exact_counts(
    const std::vector<packet>& packets) {
  std::unordered_map<typename H::key_type, double> counts;
  for (const auto& p : packets) {
    for (std::size_t i = 0; i < H::hierarchy_size; ++i) counts[H::key_at(p, i)] += 1.0;
  }
  return counts;
}

/// Random small-universe packet mix: few /8s, few /16 branches, few hosts -
/// dense lattice overlap, the regime where the set arithmetic is subtle.
std::vector<packet> random_instance(xoshiro256& rng, std::size_t n) {
  std::vector<packet> packets;
  packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.bounded(3)) + 10;
    const std::uint32_t b = static_cast<std::uint32_t>(rng.bounded(3));
    const std::uint32_t c = static_cast<std::uint32_t>(rng.bounded(2));
    const std::uint32_t d = static_cast<std::uint32_t>(rng.bounded(4));
    const std::uint32_t s = (a << 24) | (b << 16) | (c << 8) | d;
    const std::uint32_t e = static_cast<std::uint32_t>(rng.bounded(2)) + 20;
    const std::uint32_t f = static_cast<std::uint32_t>(rng.bounded(2));
    const std::uint32_t dst = (e << 24) | (f << 16) | 1;
    packets.push_back({s, dst});
  }
  return packets;
}

class Differential1d : public ::testing::TestWithParam<int> {};

TEST_P(Differential1d, SolverMatchesDefinitionExactly) {
  xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const auto packets = random_instance(rng, 400);
  const double threshold = 40.0 + static_cast<double>(rng.bounded(40));

  const auto counts = exact_counts<source_hierarchy>(packets);
  std::vector<std::uint64_t> candidates;
  for (const auto& [key, count] : counts) {
    (void)count;
    candidates.push_back(key);
  }
  const auto solver = solve_hhh<source_hierarchy>(
      std::move(candidates),
      [&](const std::uint64_t& k) {
        const auto it = counts.find(k);
        const double f = it == counts.end() ? 0.0 : it->second;
        return freq_bounds{f, f};
      },
      threshold, 0.0);
  const auto reference = definitional_hhh<source_hierarchy>(packets, threshold);

  std::unordered_set<std::uint64_t> solver_keys;
  for (const auto& e : solver) solver_keys.insert(e.key);
  std::unordered_set<std::uint64_t> reference_keys(reference.begin(), reference.end());
  EXPECT_EQ(solver_keys, reference_keys) << "instance " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Differential1d, ::testing::Range(0, 12));

/// Definitional conditioned frequency of q with respect to an arbitrary set.
template <typename H>
std::size_t definitional_conditioned(const std::vector<packet>& packets,
                                     const typename H::key_type& q,
                                     const std::vector<typename H::key_type>& selected) {
  std::size_t conditioned = 0;
  for (const auto& p : packets) {
    const auto full = H::full_key(p);
    if (!H::generalizes(q, full)) continue;
    const bool covered =
        std::any_of(selected.begin(), selected.end(),
                    [&](const auto& h) { return H::generalizes(h, full); });
    if (!covered) ++conditioned;
  }
  return conditioned;
}

class Differential2d : public ::testing::TestWithParam<int> {};

TEST_P(Differential2d, CoverageHoldsAgainstTheDefinition) {
  // Definition 4.2 Coverage, checked literally: for every candidate q NOT in
  // the returned set P, the definitional conditioned frequency C_{q|P}
  // (computed by brute-force set membership w.r.t. the solver's own P) is
  // below the threshold. With exact bounds and zero compensation this must
  // hold deterministically, because Algorithm 4's pairwise
  // inclusion-exclusion never under-estimates the conditioned frequency of
  // a candidate at its admission time.
  xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const auto packets = random_instance(rng, 300);
  const double threshold = 50.0 + static_cast<double>(rng.bounded(40));

  const auto counts = exact_counts<two_dim_hierarchy>(packets);
  std::vector<prefix2d> candidates;
  for (const auto& [key, count] : counts) {
    (void)count;
    candidates.push_back(key);
  }
  const auto all_candidates = candidates;
  const auto solver = solve_hhh<two_dim_hierarchy>(
      std::move(candidates),
      [&](const prefix2d& k) {
        const auto it = counts.find(k);
        const double f = it == counts.end() ? 0.0 : it->second;
        return freq_bounds{f, f};
      },
      threshold, 0.0);

  std::vector<prefix2d> selected;
  std::unordered_set<prefix2d> solver_keys;
  for (const auto& e : solver) {
    selected.push_back(e.key);
    solver_keys.insert(e.key);
  }
  for (const auto& q : all_candidates) {
    if (solver_keys.count(q)) continue;
    const auto conditioned =
        definitional_conditioned<two_dim_hierarchy>(packets, q, selected);
    EXPECT_LT(static_cast<double>(conditioned), threshold)
        << "coverage violated for " << two_dim_hierarchy::to_string(q)
        << " on instance " << GetParam();
  }
  // Accuracy side: every admitted prefix's own exact count is positive and
  // the set stays far from "everything".
  EXPECT_LE(solver_keys.size(), all_candidates.size() / 4);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Differential2d, ::testing::Range(0, 10));

TEST(Differential1dCoverage, HoldsAgainstTheDefinitionToo) {
  // The same literal Definition 4.2 check in one dimension.
  xoshiro256 rng(424242);
  const auto packets = random_instance(rng, 500);
  const double threshold = 45.0;
  const auto counts = exact_counts<source_hierarchy>(packets);
  std::vector<std::uint64_t> candidates;
  for (const auto& [key, count] : counts) {
    (void)count;
    candidates.push_back(key);
  }
  const auto all_candidates = candidates;
  const auto solver = solve_hhh<source_hierarchy>(
      std::move(candidates),
      [&](const std::uint64_t& k) {
        const auto it = counts.find(k);
        const double f = it == counts.end() ? 0.0 : it->second;
        return freq_bounds{f, f};
      },
      threshold, 0.0);
  std::vector<std::uint64_t> selected;
  std::unordered_set<std::uint64_t> solver_keys;
  for (const auto& e : solver) {
    selected.push_back(e.key);
    solver_keys.insert(e.key);
  }
  for (const auto& q : all_candidates) {
    if (solver_keys.count(q)) continue;
    EXPECT_LT(static_cast<double>(
                  definitional_conditioned<source_hierarchy>(packets, q, selected)),
              threshold)
        << source_hierarchy::to_string(q);
  }
}

TEST(DifferentialFullyCoveredRoot, RootExcludedWhenChildrenCoverIt) {
  // All packets under two selected /8s: the root's conditioned frequency is
  // 0 in both implementations.
  std::vector<packet> packets;
  for (int i = 0; i < 60; ++i) packets.push_back({0x0A000001u + (i % 3) * 0x100u, 1});
  for (int i = 0; i < 60; ++i) packets.push_back({0x14000001u + (i % 3) * 0x100u, 1});
  const auto reference = definitional_hhh<source_hierarchy>(packets, 30.0);
  for (const auto& key : reference) {
    EXPECT_NE(key, prefix1d::make_key(0, 4)) << "root wrongly selected";
  }
}

}  // namespace
}  // namespace memento
