// Tests for the heavy-hitter change detector (the paper's future-work
// mechanism): event correctness, hysteresis, bounded exit lag, and the
// hierarchical variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/change_detector.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"

namespace memento {
namespace {

change_detector_config thresholds(double high, double low) {
  change_detector_config c;
  c.theta_high = high;
  c.theta_low = low;
  return c;
}

TEST(ChangeDetector, RejectsBadThresholds) {
  const memento_config sketch{10000, 128, 1.0, 1};
  EXPECT_THROW(hh_change_detector<>(sketch, thresholds(0.01, 0.02)), std::invalid_argument);
  EXPECT_THROW(hh_change_detector<>(sketch, thresholds(0.01, 0.0)), std::invalid_argument);
  EXPECT_THROW(hh_change_detector<>(sketch, thresholds(1.0, 0.5)), std::invalid_argument);
  EXPECT_NO_THROW(hh_change_detector<>(sketch, thresholds(0.02, 0.01)));
}

TEST(ChangeDetector, EmitsEnterWhenFlowCrossesThreshold) {
  hh_change_detector<> detector(memento_config{10000, 256, 1.0, 1}, thresholds(0.05, 0.03));
  xoshiro256 rng(3);
  // Background only: no events.
  for (int i = 0; i < 20000; ++i) detector.update(1000 + rng.bounded(50000));
  EXPECT_TRUE(detector.poll_events().empty());
  EXPECT_EQ(detector.set_size(), 0u);

  // A flow ramps to ~20% of traffic: one `entered` event for it.
  for (int i = 0; i < 20000; ++i) {
    detector.update(rng.uniform01() < 0.2 ? 7u : 1000 + rng.bounded(50000));
  }
  const auto events = detector.poll_events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().key, 7u);
  EXPECT_EQ(events.front().kind, change_kind::entered);
  EXPECT_TRUE(detector.contains(7));
  // No spurious entries for background flows.
  for (const auto& e : events) EXPECT_EQ(e.key, 7u);
}

TEST(ChangeDetector, EmitsLeaveWhenFlowFades) {
  hh_change_detector<> detector(memento_config{10000, 256, 1.0, 1}, thresholds(0.05, 0.03));
  xoshiro256 rng(5);
  for (int i = 0; i < 30000; ++i) {
    detector.update(rng.uniform01() < 0.2 ? 7u : 1000 + rng.bounded(50000));
  }
  ASSERT_TRUE(detector.contains(7));
  (void)detector.poll_events();

  // The flow stops; within ~W + |set| packets it must be evicted.
  for (int i = 0; i < 25000; ++i) detector.update(1000 + rng.bounded(50000));
  const auto events = detector.poll_events();
  ASSERT_FALSE(events.empty());
  const auto left = std::find_if(events.begin(), events.end(), [](const auto& e) {
    return e.key == 7u && e.kind == change_kind::left;
  });
  ASSERT_NE(left, events.end());
  EXPECT_FALSE(detector.contains(7));
  EXPECT_EQ(detector.set_size(), 0u);
}

TEST(ChangeDetector, HysteresisSuppressesFlapping) {
  // A flow hovering between the low and high water marks must not generate
  // enter/leave churn: with high=6%, low=2% and the flow pinned at ~4%,
  // once entered it stays.
  hh_change_detector<> detector(memento_config{20000, 512, 1.0, 1}, thresholds(0.06, 0.02));
  xoshiro256 rng(7);
  // Ramp the flow to ~8% so it enters.
  for (int i = 0; i < 30000; ++i) {
    detector.update(rng.uniform01() < 0.08 ? 7u : 1000 + rng.bounded(50000));
  }
  (void)detector.poll_events();
  ASSERT_TRUE(detector.contains(7));
  // Hover at 4% (between the marks) for several windows.
  std::size_t transitions = 0;
  for (int i = 0; i < 100000; ++i) {
    detector.update(rng.uniform01() < 0.04 ? 7u : 1000 + rng.bounded(50000));
  }
  for (const auto& e : detector.poll_events()) transitions += e.key == 7u;
  EXPECT_EQ(transitions, 0u) << "flow flapped despite hysteresis";
  EXPECT_TRUE(detector.contains(7));
}

TEST(ChangeDetector, EventTimestampsAreMonotone) {
  hh_change_detector<> detector(memento_config{5000, 128, 1.0, 1}, thresholds(0.05, 0.03));
  xoshiro256 rng(11);
  for (int phase = 0; phase < 4; ++phase) {
    const std::uint64_t hot = 100 + static_cast<std::uint64_t>(phase);
    for (int i = 0; i < 15000; ++i) {
      detector.update(rng.uniform01() < 0.3 ? hot : 1000 + rng.bounded(30000));
    }
  }
  std::uint64_t last = 0;
  for (const auto& e : detector.poll_events()) {
    EXPECT_GE(e.at_packet, last);
    last = e.at_packet;
    EXPECT_GT(e.estimate, 0.0);
  }
}

TEST(ChangeDetector, WorksUnderSampling) {
  hh_change_detector<> detector(memento_config{20000, 512, 1.0 / 16, 1},
                                thresholds(0.08, 0.04));
  xoshiro256 rng(13);
  for (int i = 0; i < 120000; ++i) {
    detector.update(rng.uniform01() < 0.25 ? 7u : 1000 + rng.bounded(50000));
  }
  EXPECT_TRUE(detector.contains(7)) << "sampled detector missed a 25% flow";
}

TEST(ChangeDetector, CurrentSetMatchesContains) {
  hh_change_detector<> detector(memento_config{10000, 256, 1.0, 1}, thresholds(0.05, 0.03));
  xoshiro256 rng(17);
  for (int i = 0; i < 40000; ++i) {
    const double dice = rng.uniform01();
    std::uint64_t key;
    if (dice < 0.15) {
      key = 1;
    } else if (dice < 0.30) {
      key = 2;
    } else {
      key = 1000 + rng.bounded(50000);
    }
    detector.update(key);
  }
  const auto set = detector.current_set();
  EXPECT_EQ(set.size(), detector.set_size());
  for (const auto& key : set) EXPECT_TRUE(detector.contains(key));
  EXPECT_TRUE(std::find(set.begin(), set.end(), 1u) != set.end());
  EXPECT_TRUE(std::find(set.begin(), set.end(), 2u) != set.end());
}

// --- hierarchical variant -------------------------------------------------------

TEST(HChangeDetector, DetectsEmergingSubnet) {
  h_memento_config cfg;
  cfg.window_size = 30000;
  cfg.counters = 2000;
  cfg.tau = 1.0;
  h_change_detector<source_hierarchy> detector(cfg, thresholds(0.10, 0.05));

  xoshiro256 rng(19);
  trace_generator background(trace_kind::backbone, 23);
  // Background only.
  for (int i = 0; i < 40000; ++i) detector.update(background.next());
  (void)detector.poll_events();

  // A /8 starts flooding at 30%.
  for (int i = 0; i < 60000; ++i) {
    if (rng.uniform01() < 0.3) {
      detector.update({0x2A000000u | static_cast<std::uint32_t>(rng.bounded(1u << 24)),
                       static_cast<std::uint32_t>(rng())});
    } else {
      detector.update(background.next());
    }
  }
  const auto subnet_key = prefix1d::make_key(0x2A000000u, 3);
  EXPECT_TRUE(detector.contains(subnet_key))
      << "flooding /8 not in the detector's set";
  bool entered = false;
  for (const auto& e : detector.poll_events()) {
    entered |= e.key == subnet_key && e.kind == change_kind::entered;
  }
  EXPECT_TRUE(entered);
}

TEST(HChangeDetector, SubnetLeavesAfterFloodStops) {
  h_memento_config cfg;
  cfg.window_size = 20000;
  cfg.counters = 2000;
  cfg.tau = 1.0;
  h_change_detector<source_hierarchy> detector(cfg, thresholds(0.10, 0.05));
  xoshiro256 rng(29);
  trace_generator background(trace_kind::backbone, 31);
  for (int i = 0; i < 50000; ++i) {
    if (rng.uniform01() < 0.3) {
      detector.update({0x2A000000u | static_cast<std::uint32_t>(rng.bounded(1u << 24)), 1});
    } else {
      detector.update(background.next());
    }
  }
  const auto subnet_key = prefix1d::make_key(0x2A000000u, 3);
  ASSERT_TRUE(detector.contains(subnet_key));
  for (int i = 0; i < 60000; ++i) detector.update(background.next());
  EXPECT_FALSE(detector.contains(subnet_key)) << "stale subnet never evicted";
}

}  // namespace
}  // namespace memento
