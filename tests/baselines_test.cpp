// Tests for the three baselines the paper compares against: MST (interval),
// the Baseline windowed MST, and RHHH (sampled interval).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>

#include "core/baseline_window_mst.hpp"
#include "core/mst.hpp"
#include "core/rhhh.hpp"
#include "sketch/exact_hhh.hpp"
#include "sketch/exact_window.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"

namespace memento {
namespace {

// --- MST ------------------------------------------------------------------------

TEST(Mst, EveryPrefixCounted) {
  mst<source_hierarchy> alg(64);
  const packet p{0x0A010101u, 0};
  for (int i = 0; i < 100; ++i) alg.update(p);
  for (std::size_t d = 0; d < 5; ++d) {
    EXPECT_DOUBLE_EQ(alg.query(source_hierarchy::key_at(p, d)), 100.0) << "depth " << d;
  }
  EXPECT_EQ(alg.stream_length(), 100u);
}

TEST(Mst, OneSidedAgainstExactInterval) {
  mst<source_hierarchy> alg(128);
  exact_interval<std::uint64_t> exact[5];
  auto trace = make_trace(trace_kind::datacenter, 50000);
  for (const auto& p : trace) {
    alg.update(p);
    for (std::size_t d = 0; d < 5; ++d) exact[d].add(source_hierarchy::key_at(p, d));
  }
  const double slack = 50000.0 / 128.0 + 1.0;
  for (std::size_t i = 0; i < trace.size(); i += 397) {
    for (std::size_t d = 0; d < 5; ++d) {
      const auto key = source_hierarchy::key_at(trace[i], d);
      const double truth = static_cast<double>(exact[d].query(key));
      ASSERT_GE(alg.query(key), truth);
      ASSERT_LE(alg.query(key) - truth, slack);
      ASSERT_LE(alg.query_lower(key), truth);
    }
  }
}

TEST(Mst, OutputCoversExactIntervalHhh) {
  mst<source_hierarchy> alg(1024);
  exact_hhh<source_hierarchy> exact(60000);  // window == stream: same counts
  auto trace = make_trace(trace_kind::datacenter, 60000);
  for (const auto& p : trace) {
    alg.update(p);
    exact.update(p);
  }
  std::unordered_set<std::uint64_t> approx_keys;
  for (const auto& e : alg.output(0.05)) approx_keys.insert(e.key);
  for (const auto& truth : exact.output(0.05)) {
    EXPECT_TRUE(approx_keys.count(truth.key))
        << "MST missed " << source_hierarchy::to_string(truth.key);
  }
}

TEST(Mst, ResetStartsFreshInterval) {
  mst<source_hierarchy> alg(64);
  const packet p{0x0A010101u, 0};
  for (int i = 0; i < 500; ++i) alg.update(p);
  alg.reset();
  EXPECT_EQ(alg.stream_length(), 0u);
  EXPECT_DOUBLE_EQ(alg.query(source_hierarchy::full_key(p)), 0.0);
  for (int i = 0; i < 3; ++i) alg.update(p);
  EXPECT_DOUBLE_EQ(alg.query(source_hierarchy::full_key(p)), 3.0);
}

TEST(Mst, TwoDimensionalLattice) {
  mst<two_dim_hierarchy> alg(64);
  const packet p{0x0A010101u, 0x14020202u};
  for (int i = 0; i < 50; ++i) alg.update(p);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_DOUBLE_EQ(alg.query(two_dim_hierarchy::key_at(p, i)), 50.0) << "pattern " << i;
  }
}

// --- Baseline (windowed MST) -------------------------------------------------------

TEST(BaselineWindowMst, SplitsCounterBudgetEvenly) {
  baseline_window_mst<source_hierarchy> alg(10000, 512 * 5);
  EXPECT_EQ(alg.counters_per_instance(), 512u);
  baseline_window_mst<two_dim_hierarchy> alg2(10000, 64 * 25);
  EXPECT_EQ(alg2.counters_per_instance(), 64u);
}

TEST(BaselineWindowMst, WindowSemanticsPerPrefix) {
  baseline_window_mst<source_hierarchy> alg(1000, 16 * 5);
  const packet hot{0x0A010101u, 0};
  for (int i = 0; i < 2000; ++i) alg.update(hot);
  const auto key = source_hierarchy::key_at(hot, 3);  // the /8
  const double while_active = alg.query(key);
  EXPECT_GE(while_active, 1000.0);
  // Flush the flow out of the window with unrelated traffic.
  trace_generator gen(trace_kind::backbone, 3);
  for (int i = 0; i < 2500; ++i) alg.update(gen.next());
  EXPECT_LT(alg.query(source_hierarchy::full_key(hot)), while_active / 2.0);
}

TEST(BaselineWindowMst, OutputCoversExactWindowHhh) {
  constexpr std::uint64_t window = 20000;
  baseline_window_mst<source_hierarchy> alg(window, 1000 * 5);
  exact_hhh<source_hierarchy> exact(alg.window_size());
  auto trace = make_trace(trace_kind::datacenter, 60000, /*seed=*/9);
  for (const auto& p : trace) {
    alg.update(p);
    exact.update(p);
  }
  std::unordered_set<std::uint64_t> approx_keys;
  for (const auto& e : alg.output(0.05)) approx_keys.insert(e.key);
  for (const auto& truth : exact.output(0.05)) {
    EXPECT_TRUE(approx_keys.count(truth.key))
        << "Baseline missed " << source_hierarchy::to_string(truth.key);
  }
}

TEST(BaselineWindowMst, StreamLengthCountsPackets) {
  baseline_window_mst<source_hierarchy> alg(500, 80);
  auto trace = make_trace(trace_kind::edge, 700);
  for (const auto& p : trace) alg.update(p);
  EXPECT_EQ(alg.stream_length(), 700u);
}

// --- RHHH ---------------------------------------------------------------------------

TEST(Rhhh, RejectsVBelowH) {
  EXPECT_THROW(rhhh<source_hierarchy>(64, 4.0), std::invalid_argument);
  EXPECT_THROW(rhhh<two_dim_hierarchy>(64, 24.0), std::invalid_argument);
  EXPECT_NO_THROW(rhhh<source_hierarchy>(64, 5.0));
}

TEST(Rhhh, RejectsBadDelta) {
  EXPECT_THROW(rhhh<source_hierarchy>(64, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(rhhh<source_hierarchy>(64, 10.0, 1.0), std::invalid_argument);
}

TEST(Rhhh, EstimateApproximatelyUnbiased) {
  // Single hot flow: V * sampled count should concentrate around the truth.
  rhhh<source_hierarchy> alg(256, 10.0, 1e-3, /*seed=*/3);
  const packet hot{0x0A010101u, 0};
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) alg.update(hot);
  const double est = alg.query(source_hierarchy::full_key(hot));
  // Std dev ~ sqrt(V * n) ~ 1414; allow 5 sigma.
  EXPECT_NEAR(est, static_cast<double>(n), 5.0 * std::sqrt(10.0 * n));
}

TEST(Rhhh, SamplingRateMatchesHOverV) {
  rhhh<source_hierarchy> alg(4096, 20.0, 1e-3, /*seed=*/5);
  auto trace = make_trace(trace_kind::backbone, 100000);
  for (const auto& p : trace) alg.update(p);
  EXPECT_EQ(alg.stream_length(), trace.size());
  // Total updates across instances ~ N * H / V = N / 4.
  // Estimate via the root instance count: every sampled packet of pattern 4
  // lands on the root key, in expectation N/V.
  const double root_est = alg.query(prefix1d::make_key(0, 4));
  EXPECT_NEAR(root_est, static_cast<double>(trace.size()),
              5.0 * std::sqrt(20.0 * static_cast<double>(trace.size())));
}

TEST(Rhhh, OutputCoversExactIntervalHhhWithCompensation) {
  constexpr std::size_t n = 100000;
  rhhh<source_hierarchy> alg(2048, 5.0, 1e-2, /*seed=*/7);
  exact_hhh<source_hierarchy> exact(n);
  auto trace = make_trace(trace_kind::datacenter, n, /*seed=*/13);
  for (const auto& p : trace) {
    alg.update(p);
    exact.update(p);
  }
  std::unordered_set<std::uint64_t> approx_keys;
  for (const auto& e : alg.output(0.1)) approx_keys.insert(e.key);
  for (const auto& truth : exact.output(0.1)) {
    EXPECT_TRUE(approx_keys.count(truth.key))
        << "RHHH missed " << source_hierarchy::to_string(truth.key);
  }
}

TEST(Rhhh, ResetClearsState) {
  rhhh<source_hierarchy> alg(64, 5.0);
  const packet p{0x0A010101u, 0};
  for (int i = 0; i < 1000; ++i) alg.update(p);
  alg.reset();
  EXPECT_EQ(alg.stream_length(), 0u);
  EXPECT_DOUBLE_EQ(alg.query(source_hierarchy::full_key(p)), 0.0);
}

TEST(Rhhh, TwoDimensionalSampling) {
  rhhh<two_dim_hierarchy> alg(512, 25.0, 1e-3, /*seed=*/11);
  const packet hot{0x0A010101u, 0x14020202u};
  constexpr int n = 250000;
  for (int i = 0; i < n; ++i) alg.update(hot);
  const double est = alg.query(two_dim_hierarchy::full_key(hot));
  EXPECT_NEAR(est, static_cast<double>(n), 5.0 * std::sqrt(25.0 * n));
}

}  // namespace
}  // namespace memento
