// Tests for the Space-Saving stream summary: exactness below capacity, the
// classic eviction semantics, and the two guarantees every algorithm in the
// repository builds on (no undercount; overcount <= N / capacity).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "sketch/space_saving.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"
#include "util/simd.hpp"
#include "util/wire.hpp"

namespace memento {
namespace {

TEST(SpaceSaving, RejectsZeroCapacity) {
  EXPECT_THROW(space_saving<std::uint64_t>(0), std::invalid_argument);
}

TEST(SpaceSaving, ExactBelowCapacity) {
  space_saving<std::uint64_t> ss(8);
  for (int round = 0; round < 5; ++round) {
    for (std::uint64_t k = 0; k < 4; ++k) ss.add(k);
  }
  for (std::uint64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(ss.query(k), 5u);
    EXPECT_EQ(ss.query_lower(k), 5u);
  }
  EXPECT_EQ(ss.query(99), 0u) << "not full: absent flows are exactly 0";
  EXPECT_EQ(ss.size(), 4u);
}

TEST(SpaceSaving, PaperEvictionExample) {
  // Section 2: minimal counter is x with value 4; y arrives without a
  // counter -> x's counter is reallocated to y with value 5.
  space_saving<char> ss(2);
  for (int i = 0; i < 4; ++i) ss.add('x');
  for (int i = 0; i < 9; ++i) ss.add('z');
  ss.add('y');
  EXPECT_EQ(ss.query('y'), 5u);
  EXPECT_FALSE(ss.contains('x'));
  // x's estimate falls back to the minimum counter (5), an upper bound on
  // its true count (4).
  EXPECT_EQ(ss.query('x'), 5u);
  EXPECT_GE(ss.query('x'), 4u);
}

TEST(SpaceSaving, MinCountTracksSmallestCounter) {
  space_saving<int> ss(3);
  EXPECT_EQ(ss.min_count(), 0u);
  ss.add(1);
  EXPECT_EQ(ss.min_count(), 1u);
  ss.add(1);
  ss.add(2);
  EXPECT_EQ(ss.min_count(), 1u);
  ss.add(2);
  ss.add(3);
  ss.add(3);
  EXPECT_EQ(ss.min_count(), 2u);
}

TEST(SpaceSaving, FlushResetsEverything) {
  space_saving<int> ss(4);
  for (int i = 0; i < 100; ++i) ss.add(i % 6);
  ss.flush();
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.stream_length(), 0u);
  EXPECT_EQ(ss.min_count(), 0u);
  EXPECT_EQ(ss.query(0), 0u);
  // Still usable after flush.
  ss.add(42);
  EXPECT_EQ(ss.query(42), 1u);
}

TEST(SpaceSaving, StreamLengthCountsAdds) {
  space_saving<int> ss(2);
  for (int i = 0; i < 57; ++i) ss.add(i % 9);
  EXPECT_EQ(ss.stream_length(), 57u);
}

TEST(SpaceSaving, EntriesSnapshotMatchesQueries) {
  space_saving<int> ss(8);
  for (int i = 0; i < 200; ++i) ss.add(i % 5);
  const auto entries = ss.entries();
  EXPECT_EQ(entries.size(), 5u);
  std::uint64_t total = 0;
  for (const auto& e : entries) {
    EXPECT_EQ(ss.query(e.key), e.count);
    total += e.count;
  }
  EXPECT_EQ(total, 200u) << "below capacity: counts are exact and sum to N";
}

TEST(SpaceSaving, SingleCounterDegenerate) {
  space_saving<int> ss(1);
  for (int i = 0; i < 10; ++i) ss.add(i);
  // One counter absorbed all 10 adds.
  EXPECT_EQ(ss.query(9), 10u);
  EXPECT_GE(ss.query(0), 1u);  // evicted, reported at the (only) counter value
}

TEST(SpaceSaving, AllDistinctAdversarialStream) {
  space_saving<std::uint64_t> ss(16);
  constexpr std::uint64_t n = 10000;
  for (std::uint64_t i = 0; i < n; ++i) ss.add(i);
  // Every counter's value is bounded by N/capacity + 1 in this round-robin
  // worst case; the structural invariant is min_count <= N / capacity.
  EXPECT_LE(ss.min_count(), n / 16 + 1);
  for (std::uint64_t i = n - 16; i < n; ++i) {
    EXPECT_GE(ss.query(i), 1u) << "recent items must not be undercounted";
  }
}

TEST(SpaceSaving, SingleFlowStream) {
  space_saving<int> ss(4);
  for (int i = 0; i < 100000; ++i) ss.add(7);
  EXPECT_EQ(ss.query(7), 100000u);
  EXPECT_EQ(ss.query_lower(7), 100000u);
  EXPECT_EQ(ss.size(), 1u);
}

// --- property tests against exact counts --------------------------------------

struct ss_property_param {
  std::size_t capacity;
  double alpha;
  std::size_t universe;
};

class SpaceSavingProperty : public ::testing::TestWithParam<ss_property_param> {};

TEST_P(SpaceSavingProperty, GuaranteesAgainstExactCounts) {
  const auto param = GetParam();
  space_saving<std::uint64_t> ss(param.capacity);
  std::unordered_map<std::uint64_t, std::uint64_t> exact;

  zipf_sampler zipf(param.universe, param.alpha);
  xoshiro256 rng(1234);
  constexpr std::uint64_t n = 60000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto key = static_cast<std::uint64_t>(zipf.sample(rng));
    ss.add(key);
    ++exact[key];
  }

  const std::uint64_t bound = n / param.capacity;
  EXPECT_LE(ss.min_count(), bound + 1);
  for (const auto& [key, truth] : exact) {
    const auto upper = ss.query(key);
    const auto lower = ss.query_lower(key);
    ASSERT_GE(upper, truth) << "undercount for key " << key;
    ASSERT_LE(upper - truth, bound + 1) << "overcount beyond N/m for key " << key;
    ASSERT_LE(lower, truth) << "lower bound above truth for key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacityAndSkewSweep, SpaceSavingProperty,
    ::testing::Values(ss_property_param{16, 1.2, 1u << 10},
                      ss_property_param{64, 1.0, 1u << 12},
                      ss_property_param{256, 0.8, 1u << 14},
                      ss_property_param{1024, 1.4, 1u << 10},
                      ss_property_param{64, 0.0, 1u << 8}),
    [](const auto& info) {
      return "cap" + std::to_string(info.param.capacity) + "_a" +
             std::to_string(static_cast<int>(info.param.alpha * 10)) + "_u" +
             std::to_string(info.param.universe);
    });

TEST(SpaceSaving, HeavyHittersSurviveEvictionChurn) {
  // A strong heavy hitter must be monitored at the end no matter how much
  // tail churn the structure suffers (the HH recall property Memento needs).
  space_saving<std::uint64_t> ss(32);
  xoshiro256 rng(5);
  constexpr std::uint64_t n = 100000;
  std::uint64_t hh_count = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (rng.uniform01() < 0.2) {
      ss.add(0xABCD);
      ++hh_count;
    } else {
      ss.add(1000 + rng.bounded(50000));  // churning tail
    }
  }
  EXPECT_TRUE(ss.contains(0xABCD));
  EXPECT_GE(ss.query(0xABCD), hh_count);
  EXPECT_LE(ss.query(0xABCD) - hh_count, n / 32 + 1);
}

TEST(SpaceSaving, AddBatchEqualsSequentialAdds) {
  // add_batch is the HammerSlide-shaped bulk entry point: hash-ahead +
  // prefetch must change nothing observable, down to the save() bytes.
  xoshiro256 rng(31);
  std::vector<std::uint64_t> ids(20000);
  for (auto& id : ids) id = rng.bounded(700);

  space_saving<std::uint64_t> one_by_one(64);
  for (const auto id : ids) one_by_one.add(id);
  space_saving<std::uint64_t> batched(64);
  batched.add_batch(ids.data(), ids.size());

  wire::writer wa, wb;
  one_by_one.save(wa);
  batched.save(wb);
  EXPECT_EQ(wa.data(), wb.data());
}

TEST(SpaceSaving, MinScanCrossChecksTheBucketList) {
  // min_scan recomputes the minimum from the flat count array (SIMD); it
  // must agree with the O(1) bucket-list answer at every step, on every
  // dispatch tier.
  for (const simd::tier t :
       {simd::tier::scalar, simd::tier::sse2, simd::tier::avx2}) {
    if (t > simd::detect()) continue;
    simd::scoped_tier guard(t);
    space_saving<std::uint64_t> ss(32);
    xoshiro256 rng(17);
    EXPECT_EQ(ss.min_scan(), 0u);
    for (int i = 0; i < 5000; ++i) {
      ss.add(rng.bounded(200));
      ASSERT_EQ(ss.min_scan(), ss.min_count()) << "step " << i;
    }
  }
}

TEST(SpaceSaving, ForEachAtLeastMatchesFilteredForEach) {
  for (const simd::tier t :
       {simd::tier::scalar, simd::tier::sse2, simd::tier::avx2}) {
    if (t > simd::detect()) continue;
    simd::scoped_tier guard(t);
    space_saving<std::uint64_t> ss(100);
    xoshiro256 rng(23);
    for (int i = 0; i < 30000; ++i) ss.add(rng.bounded(400));
    for (const std::uint64_t bar : {0ull, 1ull, 100ull, 1000ull, ~0ull}) {
      std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> expect, got;
      ss.for_each([&](std::uint64_t k, std::uint64_t c, std::uint64_t o) {
        if (c >= bar) expect.emplace_back(k, c, o);
      });
      ss.for_each_at_least(
          bar, [&](std::uint64_t k, std::uint64_t c, std::uint64_t o) { got.emplace_back(k, c, o); });
      EXPECT_EQ(got, expect) << "tier " << simd::tier_name(t) << " bar " << bar;
    }
  }
}

TEST(SpaceSaving, SaveRestoreRoundTripsTheFastPathStates) {
  // The singleton-bucket increment fast path renames buckets in place;
  // restore() revalidates full topology, so a round trip after heavy
  // fast-path traffic proves the structure stays sound.
  space_saving<std::uint64_t> ss(16);
  xoshiro256 rng(41);
  // Zipf-ish: elephants sit alone in their buckets (the fast path), tail
  // churns the eviction path.
  for (int i = 0; i < 20000; ++i) {
    ss.add(rng.bounded(8) == 0 ? rng.bounded(4) : rng.bounded(5000));
  }
  wire::writer w;
  ss.save(w);
  wire::reader r(w.data());
  auto back = space_saving<std::uint64_t>::restore(r);
  ASSERT_TRUE(back.has_value());
  wire::writer w2;
  back->save(w2);
  EXPECT_EQ(w2.data(), w.data());
  // And the restored instance continues identically.
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = rng.bounded(5000);
    ASSERT_EQ(ss.add(id), back->add(id));
  }
  EXPECT_EQ(ss.index_stats().size, back->index_stats().size);
}

TEST(SpaceSaving, IndexStatsReflectThePrereservedTable) {
  space_saving<std::uint64_t> ss(64);
  const flat_hash_stats empty = ss.index_stats();
  EXPECT_EQ(empty.size, 0u);
  EXPECT_GE(empty.capacity, 128u) << "constructor reserves 2x capacity";
  xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) ss.add(rng.bounded(300));
  const flat_hash_stats st = ss.index_stats();
  EXPECT_EQ(st.size, ss.size());
  EXPECT_LE(st.load_factor, 0.75 + 1e-9);
  EXPECT_LE(st.mean_probe, static_cast<double>(st.max_probe));
}

TEST(SpaceSaving, InterleavedFlushesKeepGuarantees) {
  space_saving<std::uint64_t> ss(64);
  xoshiro256 rng(7);
  for (int frame = 0; frame < 5; ++frame) {
    std::unordered_map<std::uint64_t, std::uint64_t> exact;
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t key = rng.bounded(500);
      ss.add(key);
      ++exact[key];
    }
    for (const auto& [key, truth] : exact) {
      ASSERT_GE(ss.query(key), truth);
      ASSERT_LE(ss.query(key) - truth, 20000 / 64 + 1);
    }
    ss.flush();
  }
}

}  // namespace
}  // namespace memento
