// Streamed-wire suite: section codecs (FoR / ascending-delta / zig-zag),
// chunked sink/source framing, streamed-vs-monolithic equivalence for every
// serializable type, v1 backward compatibility through the dispatching
// restore, and CRC/truncation hardening of the v2 format.
//
// The load-bearing invariants (ISSUE acceptance criteria):
//   * a streamed (v2) save restores to an object whose v1 re-save is
//     BYTE-IDENTICAL to the original's v1 save - for space_saving,
//     memento_sketch, h_memento, sharded_memento and window_summary, both
//     packed and unpacked;
//   * v1 images still restore through the same entry points (dispatch on
//     the section version), and v2 images restore through the buffered
//     snapshot::restore<T>() path;
//   * the sink's buffered working set stays at chunk scale regardless of
//     image size, and chunk size never changes the bytes produced;
//   * every truncation of a streamed image is rejected with nullopt and
//     every single-byte corruption is rejected (header checks + section
//     CRCs) - run under ASan in CI via the `snapshot` ctest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/h_memento.hpp"
#include "core/memento.hpp"
#include "hierarchy/prefix1d.hpp"
#include "shard/sharded_memento.hpp"
#include "sketch/space_saving.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/summary.hpp"
#include "trace/trace_generator.hpp"
#include "util/compress.hpp"
#include "util/wire.hpp"

namespace memento {
namespace {

using sketch = memento_sketch<std::uint64_t>;
using sharded = sharded_memento<std::uint64_t>;
using summary = window_summary<std::uint64_t>;
using bytes_t = std::vector<std::uint8_t>;

std::vector<std::uint64_t> skewed_ids(std::size_t n, double alpha, std::uint64_t seed,
                                      std::size_t universe = 1u << 12) {
  trace_generator gen(trace_config{universe, alpha, seed, 0});
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(flow_id(gen.next()));
  return ids;
}

std::vector<packet> trace_packets(std::size_t n, std::uint64_t seed) {
  trace_generator gen(trace_kind::backbone, seed);
  std::vector<packet> ps;
  ps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ps.push_back(gen.next());
  return ps;
}

// --- section codecs ---------------------------------------------------------

/// Round-trips `values` through put/get_u64_array at the given packing and
/// checks exact recovery.
void roundtrip_for(const std::vector<std::uint64_t>& values, bool packed) {
  bytes_t buf;
  wire::sink s(buf);
  std::size_t i = 0;
  wire::put_u64_array(s, values.size(), packed, [&] { return values[i++]; });
  ASSERT_TRUE(s.finish());
  wire::source src{std::span<const std::uint8_t>(buf)};
  std::vector<std::uint64_t> got;
  ASSERT_TRUE(wire::get_u64_array(src, values.size(), packed, [&](std::uint64_t v) {
    got.push_back(v);
    return true;
  }));
  EXPECT_TRUE(src.done());
  EXPECT_EQ(values, got);
}

TEST(StreamCodec, ForRoundTripsMixedMagnitudes) {
  std::vector<std::uint64_t> values;
  std::uint64_t z = 7;
  for (std::size_t i = 0; i < 2 * wire::kPackBlock + 321; ++i) {
    z = z * 6364136223846793005ULL + 1442695040888963407ULL;
    // Mix tiny, medium and full-width values so frames see every bit width.
    switch (i % 4) {
      case 0: values.push_back(z & 0xFF); break;
      case 1: values.push_back(z & 0xFFFFFF); break;
      case 2: values.push_back(z); break;
      default: values.push_back(i); break;
    }
  }
  values[0] = 0;
  values[1] = ~0ull;
  roundtrip_for(values, /*packed=*/true);
  roundtrip_for(values, /*packed=*/false);
}

TEST(StreamCodec, ForHandlesDegenerateShapes) {
  roundtrip_for({}, true);
  roundtrip_for({}, false);
  roundtrip_for({42}, true);
  roundtrip_for(std::vector<std::uint64_t>(wire::kPackBlock, 0x1234567890ULL), true);  // bits = 0
  roundtrip_for({0, ~0ull}, true);  // full 64-bit range in one frame
}

TEST(StreamCodec, AscendingRoundTripsWithGaps) {
  std::vector<std::uint64_t> values;
  std::uint64_t v = 0;
  std::uint64_t z = 11;
  for (std::size_t i = 0; i < wire::kPackBlock + 77; ++i) {
    values.push_back(v);
    z = z * 6364136223846793005ULL + 1442695040888963407ULL;
    v += 1 + (z & 0xFFFF) * ((z >> 60) == 0 ? 1u << 20 : 1u);  // occasional huge gaps
  }
  for (const bool packed : {true, false}) {
    bytes_t buf;
    wire::sink s(buf);
    std::size_t i = 0;
    wire::put_ascending_u64(s, values.size(), packed, [&] { return values[i++]; });
    ASSERT_TRUE(s.finish());
    wire::source src{std::span<const std::uint8_t>(buf)};
    std::vector<std::uint64_t> got;
    ASSERT_TRUE(wire::get_ascending_u64(src, values.size(), packed, [&](std::uint64_t x) {
      got.push_back(x);
      return true;
    }));
    EXPECT_EQ(values, got);
  }
}

TEST(StreamCodec, AscendingRejectsWraparound) {
  // first = 2^64 - 1, then any positive delta wraps past zero; the decoder
  // must reject rather than emit a non-ascending value.
  bytes_t buf;
  wire::sink s(buf);
  s.varint(~0ull);
  s.varint(4);  // delta-minus-one of the second element
  ASSERT_TRUE(s.finish());
  wire::source src{std::span<const std::uint8_t>(buf)};
  EXPECT_FALSE(
      wire::get_ascending_u64(src, 2, /*packed=*/false, [](std::uint64_t) { return true; }));
}

TEST(StreamCodec, ZigzagRoundTripsExtremes) {
  const std::vector<std::uint64_t> values = {0, 1, 2, ~0ull, ~0ull - 1, 1ull << 63,
                                             0x8000000000000001ULL, 5, 4, 3};
  bytes_t buf;
  wire::sink s(buf);
  std::size_t i = 0;
  wire::put_zigzag_u64(s, values.size(), [&] { return values[i++]; });
  ASSERT_TRUE(s.finish());
  wire::source src{std::span<const std::uint8_t>(buf)};
  std::vector<std::uint64_t> got;
  ASSERT_TRUE(wire::get_zigzag_u64(src, values.size(), [&](std::uint64_t v) {
    got.push_back(v);
    return true;
  }));
  EXPECT_EQ(values, got);
}

TEST(StreamCodec, PackedFrameRejectsAbsurdBitWidth) {
  // A frame header claiming 65-bit packed values is unconstructible by any
  // honest encoder; the decoder must fail before touching the payload.
  bytes_t buf;
  wire::sink s(buf);
  s.varint(0);  // frame base
  s.u8(65);     // bits per value: impossible
  ASSERT_TRUE(s.finish());
  wire::source src{std::span<const std::uint8_t>(buf)};
  EXPECT_FALSE(wire::get_u64_array(src, 1, /*packed=*/true, [](std::uint64_t) { return true; }));
}

TEST(StreamCodec, ConsumerVetoStopsDecoding) {
  bytes_t buf;
  wire::sink s(buf);
  std::size_t i = 0;
  wire::put_u64_array(s, 8, /*packed=*/true, [&] { return std::uint64_t{100} + i++; });
  ASSERT_TRUE(s.finish());
  wire::source src{std::span<const std::uint8_t>(buf)};
  std::size_t seen = 0;
  EXPECT_FALSE(
      wire::get_u64_array(src, 8, /*packed=*/true, [&](std::uint64_t) { return ++seen < 3; }));
  EXPECT_EQ(seen, 3u);
}

// --- chunked framing --------------------------------------------------------

TEST(StreamFraming, SinkBuffersAtChunkScaleAndChunkSizeIsInvisible) {
  sketch s(20'000, 64, 0.5, 3);
  const auto ids = skewed_ids(60'000, 1.0, 17);
  s.update_batch(ids.data(), ids.size());

  const bytes_t reference = snapshot::save_streamed(s);
  ASSERT_FALSE(reference.empty());

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{4096}}) {
    bytes_t out;
    std::size_t writes = 0;
    wire::sink sink(
        [&](std::span<const std::uint8_t> b) {
          out.insert(out.end(), b.begin(), b.end());
          ++writes;
          return true;
        },
        chunk);
    ASSERT_TRUE(snapshot::stream_save(s, sink));
    // Chunking must not change the bytes, only how they are handed over.
    EXPECT_EQ(out, reference) << "chunk " << chunk;
    // A flush hands over everything buffered (>= chunk when not final), so
    // an image bigger than one chunk must arrive across several writes.
    if (out.size() > chunk) {
      EXPECT_GT(writes, 1u) << "chunk " << chunk;
    }
    // The working set is one chunk plus the largest single append (a packed
    // frame), never proportional to the image.
    EXPECT_LE(sink.peak_buffered(), chunk + 16 * 1024) << "chunk " << chunk;
  }
}

TEST(StreamFraming, TinyChunkSourceRestoresIdentically) {
  sketch s(10'000, 32, 0.5, 5);
  const auto ids = skewed_ids(30'000, 1.0, 19);
  s.update_batch(ids.data(), ids.size());
  const bytes_t image = snapshot::save_streamed(s);

  // Feed the restore 1 byte per read callback: the slowest possible socket.
  std::size_t cursor = 0;
  wire::source src(
      [&](std::uint8_t* dst, std::size_t) {
        if (cursor >= image.size()) return std::size_t{0};
        *dst = image[cursor++];
        return std::size_t{1};
      },
      /*chunk_bytes=*/1);
  const auto back = snapshot::stream_restore<sketch>(src);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(snapshot::save(s), snapshot::save(*back));
}

TEST(StreamFraming, SinkWriteFailurePropagates) {
  sketch s(5'000, 16, 1.0, 7);
  const auto ids = skewed_ids(10'000, 1.0, 23);
  s.update_batch(ids.data(), ids.size());
  wire::sink sink([](std::span<const std::uint8_t>) { return false; }, 512);
  EXPECT_FALSE(snapshot::stream_save(s, sink));
  EXPECT_FALSE(sink.ok());
}

TEST(StreamFraming, SourceShortReadRejects) {
  sketch s(5'000, 16, 1.0, 7);
  const auto ids = skewed_ids(10'000, 1.0, 29);
  s.update_batch(ids.data(), ids.size());
  const bytes_t image = snapshot::save_streamed(s);
  const std::size_t stop = image.size() / 2;
  std::size_t cursor = 0;
  wire::source src(
      [&](std::uint8_t* dst, std::size_t want) {
        const std::size_t n = std::min(want, stop - std::min(cursor, stop));
        std::memcpy(dst, image.data() + cursor, n);
        cursor += n;
        return n;
      },
      4096);
  EXPECT_FALSE(snapshot::stream_restore<sketch>(src).has_value());
}

// --- streamed vs monolithic, per type ---------------------------------------

/// The cross-format contract: a v2 (streamed) image of `object`, packed or
/// not, restores - through BOTH the source path and the buffered dispatch
/// path - to an object whose v1 re-save is byte-identical to the original's
/// v1 save. And the v1 image itself still restores post-dispatch.
template <typename T>
void expect_stream_equivalence(const T& object, bool expect_smaller = true) {
  const bytes_t v1 = snapshot::save(object);
  for (const bool packed : {true, false}) {
    const bytes_t v2 = snapshot::save_streamed(object, packed);
    ASSERT_FALSE(v2.empty());
    // Fixed framing overhead (CRCs, frame headers) can exceed the packing
    // gain on near-empty objects; callers with trivial payloads opt out.
    if (packed && expect_smaller) {
      EXPECT_LT(v2.size(), v1.size()) << "packed v2 should be smaller";
    }

    wire::source src{std::span<const std::uint8_t>(v2)};
    const auto from_stream = snapshot::stream_restore<T>(src);
    ASSERT_TRUE(from_stream.has_value()) << "packed=" << packed;
    EXPECT_EQ(v1, snapshot::save(*from_stream)) << "packed=" << packed;

    const auto from_buffer = snapshot::restore<T>(v2);  // dispatch on section version
    ASSERT_TRUE(from_buffer.has_value()) << "packed=" << packed;
    EXPECT_EQ(v1, snapshot::save(*from_buffer)) << "packed=" << packed;
  }
  const auto from_v1 = snapshot::restore<T>(v1);
  ASSERT_TRUE(from_v1.has_value());
  EXPECT_EQ(v1, snapshot::save(*from_v1));
}

TEST(StreamEquivalence, SpaceSaving) {
  space_saving<std::uint64_t> s(96);
  const auto ids = skewed_ids(30'000, 1.0, 31);
  for (const auto id : ids) s.add(id);
  expect_stream_equivalence(s);
}

TEST(StreamEquivalence, SpaceSavingCold) {
  // Partially filled (free counters, short bucket list) and empty-adjacent
  // shapes take different wire paths than the saturated steady state.
  space_saving<std::uint64_t> s(64);
  for (std::uint64_t k = 0; k < 10; ++k) s.add(k);
  expect_stream_equivalence(s, /*expect_smaller=*/false);
  space_saving<std::uint64_t> fresh(8);
  expect_stream_equivalence(fresh, /*expect_smaller=*/false);
}

TEST(StreamEquivalence, Memento) {
  sketch s(8'000, 48, 0.5, 11);
  const auto ids = skewed_ids(40'000, 1.0, 37);
  s.update_batch(ids.data(), ids.size());
  expect_stream_equivalence(s);
}

TEST(StreamEquivalence, HMemento) {
  h_memento<source_hierarchy> s(6'000, 96, 0.5, 1e-3, 13);
  const auto ps = trace_packets(25'000, 41);
  s.update_batch(ps.data(), ps.size());
  expect_stream_equivalence(s);
}

TEST(StreamEquivalence, Sharded) {
  sharded s(shard_config{6'000, 48, 1.0, 4, 4});
  const auto ids = skewed_ids(25'000, 1.0, 43);
  s.update_batch(ids.data(), ids.size());
  expect_stream_equivalence(s);
}

TEST(StreamEquivalence, Summary) {
  // A sketch-derived summary has only a handful of candidates, so size
  // parity is all the framing overhead allows there; a controller-scale
  // summary (built through the delta channel's upsert) shows the packing.
  sketch s(8'000, 48, 1.0, 17);
  const auto ids = skewed_ids(30'000, 1.0, 47);
  s.update_batch(ids.data(), ids.size());
  expect_stream_equivalence(summary::from(s), /*expect_smaller=*/false);

  summary big;
  big.set_scalars(100'000, 500'000, 12.5, 3.0);
  std::uint64_t z = 77;
  for (std::size_t i = 0; i < 2'000; ++i) {
    z = z * 6364136223846793005ULL + 1442695040888963407ULL;
    big.upsert((z >> 30) & 0xFFFFF, static_cast<double>(1000 + (z & 0x3FF)));
  }
  expect_stream_equivalence(big);
}

// --- corruption hardening ---------------------------------------------------

/// Every prefix of a streamed image must restore to nullopt; every
/// single-byte corruption must be REJECTED outright - unlike v1 (where a
/// key-byte flip can decode to a different valid object), the v2 format
/// CRCs every section, so nothing corrupt survives. Both the source path
/// and the buffered dispatch path are exercised; ASan (ctest label
/// `snapshot`) turns any out-of-bounds touch into a hard failure.
template <typename T>
void fuzz_streamed(const bytes_t& valid) {
  ASSERT_FALSE(valid.empty());
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    wire::source src{std::span<const std::uint8_t>(valid.data(), cut)};
    EXPECT_FALSE(snapshot::stream_restore<T>(src).has_value())
        << "accepted truncation at " << cut << "/" << valid.size();
  }
  bytes_t mutated = valid;
  for (std::size_t i = 0; i < valid.size(); ++i) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80}, std::uint8_t{0xFF}}) {
      mutated[i] = valid[i] ^ flip;
      wire::source src{std::span<const std::uint8_t>(mutated)};
      EXPECT_FALSE(snapshot::stream_restore<T>(src).has_value())
          << "accepted corruption at byte " << i << " flip " << int(flip);
      EXPECT_FALSE(snapshot::restore<T>(mutated).has_value())
          << "buffered path accepted corruption at byte " << i << " flip " << int(flip);
    }
    mutated[i] = valid[i];
  }
  // Trailing garbage after an intact payload is rejected too.
  mutated.push_back(0x5A);
  wire::source src{std::span<const std::uint8_t>(mutated)};
  EXPECT_FALSE(snapshot::stream_restore<T>(src).has_value());
}

TEST(StreamFuzz, SpaceSavingRejectsAllCorruption) {
  space_saving<std::uint64_t> s(48);
  const auto ids = skewed_ids(20'000, 1.0, 51);
  for (const auto id : ids) s.add(id);
  fuzz_streamed<space_saving<std::uint64_t>>(snapshot::save_streamed(s));
}

TEST(StreamFuzz, MementoRejectsAllCorruption) {
  sketch s(5'000, 32, 0.5, 2);
  const auto ids = skewed_ids(20'000, 1.0, 53);
  s.update_batch(ids.data(), ids.size());
  fuzz_streamed<sketch>(snapshot::save_streamed(s));
}

TEST(StreamFuzz, HMementoRejectsAllCorruption) {
  h_memento<source_hierarchy> s(5'000, 64, 0.5, 1e-3, 3);
  const auto ps = trace_packets(12'000, 5);
  s.update_batch(ps.data(), ps.size());
  fuzz_streamed<h_memento<source_hierarchy>>(snapshot::save_streamed(s));
}

TEST(StreamFuzz, ShardedRejectsAllCorruption) {
  sharded s(shard_config{4'000, 32, 1.0, 3, 3});
  const auto ids = skewed_ids(12'000, 1.0, 57);
  s.update_batch(ids.data(), ids.size());
  fuzz_streamed<sharded>(snapshot::save_streamed(s));
}

TEST(StreamFuzz, SummaryRejectsAllCorruption) {
  sketch s(5'000, 32, 1.0, 2);
  const auto ids = skewed_ids(20'000, 1.0, 59);
  s.update_batch(ids.data(), ids.size());
  fuzz_streamed<summary>(snapshot::save_streamed(summary::from(s)));
}

TEST(StreamFuzz, UnpackedImagesAreCrcProtectedToo) {
  // The CRC is a property of the framing, not the codec: unpacked sections
  // must reject corruption just as hard.
  space_saving<std::uint64_t> s(32);
  const auto ids = skewed_ids(8'000, 1.0, 61);
  for (const auto id : ids) s.add(id);
  fuzz_streamed<space_saving<std::uint64_t>>(snapshot::save_streamed(s, /*packed=*/false));
}

TEST(StreamFuzz, RejectsUnknownCodecFlags) {
  // Codec negotiation is a byte inside the CRC'd section, so a flipped flag
  // alone dies on CRC; a future-flag payload must die on the flag check.
  // Hand-build a space_saving v2 section with an unknown flag bit and a
  // recomputed CRC; there is no public CRC hook, so instead assert the
  // known-mask contract on honest images: the flags byte of every streamed
  // save has no bits outside kCodecKnownMask (so any set unknown bit in a
  // payload is by definition dishonest, and the decoders reject it).
  space_saving<std::uint64_t> s(16);
  s.add(1);
  const bytes_t packed = snapshot::save_streamed(s, true);
  const bytes_t plain = snapshot::save_streamed(s, false);
  // magic(4) + tag(2) + version(2) + sentinel(4) = offset 12 is the flags byte.
  ASSERT_GT(packed.size(), 12u);
  EXPECT_EQ(packed[12] & ~wire::kCodecKnownMask, 0);
  EXPECT_EQ(plain[12] & ~wire::kCodecKnownMask, 0);
  EXPECT_NE(packed[12], plain[12]);
}

}  // namespace
}  // namespace memento
