// latency_histogram suite (src/util/latency_histogram.hpp).
//
// The contract under test: fixed memory, O(1) record, values below 16 are
// exact, everything else lands in a log bucket whose floor is within 1/16
// relative error of the true value, percentiles are monotone in p and
// clamped to [min, max], and merge() is bucket-exact (a merged histogram
// answers exactly like one that saw both streams).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/latency_histogram.hpp"

namespace memento {
namespace {

TEST(LatencyHistogram, EmptyIsInert) {
  latency_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p99(), 0u);
  EXPECT_EQ(h.p999(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  latency_histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  // Below 16 every value owns its own bucket: percentiles are exact order
  // statistics (rank = ceil(p * n)).
  EXPECT_EQ(h.percentile(0.5), 7u);
  EXPECT_EQ(h.percentile(1.0), 15u);
  EXPECT_EQ(h.percentile(0.0625), 0u);
}

TEST(LatencyHistogram, BucketFloorNeverAboveValueAndWithinSixteenth) {
  // The static bucket maps are the whole accuracy story: check them
  // directly across magnitudes.
  std::mt19937_64 rng(42);
  for (int i = 0; i < 20'000; ++i) {
    const int bits = static_cast<int>(rng() % 63) + 1;
    const std::uint64_t v = (rng() & ((std::uint64_t{1} << bits) - 1)) | 1u;
    const std::size_t b = latency_histogram::bucket_of(v);
    const std::uint64_t floor = latency_histogram::bucket_floor(b);
    ASSERT_LE(floor, v);
    // floor > v - v/16: the bucket width is 1/16 of the value's power of two.
    ASSERT_GT(floor + (v >> 4) + 1, v) << "v=" << v << " floor=" << floor;
  }
}

TEST(LatencyHistogram, PercentilesTrackASortedOracleWithinRelativeError) {
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(8.0, 1.5);  // latency-shaped tail
  latency_histogram h;
  std::vector<std::uint64_t> oracle;
  for (int i = 0; i < 50'000; ++i) {
    const auto v = static_cast<std::uint64_t>(dist(rng)) + 1;
    h.record(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());
  for (const double p : {0.5, 0.9, 0.99, 0.999}) {
    const std::size_t rank =
        std::max<std::size_t>(1, static_cast<std::size_t>(p * oracle.size())) - 1;
    const double exact = static_cast<double>(oracle[rank]);
    const double est = static_cast<double>(h.percentile(p));
    EXPECT_LE(est, exact * 1.0626) << "p=" << p;  // one bucket above at most
    EXPECT_GE(est, exact * (1.0 - 1.0 / 16.0) - 1.0) << "p=" << p;
  }
}

TEST(LatencyHistogram, PercentileIsMonotoneInP) {
  std::mt19937_64 rng(19);
  latency_histogram h;
  for (int i = 0; i < 10'000; ++i) h.record(rng() % 1'000'000);
  std::uint64_t prev = 0;
  for (double p = 0.01; p <= 1.0; p += 0.01) {
    const std::uint64_t v = h.percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(LatencyHistogram, MergeEqualsCombinedStream) {
  std::mt19937_64 rng(23);
  latency_histogram a, b, combined;
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t v = rng() % (i % 2 ? 1'000u : 100'000'000u);
    (i % 3 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (const double p : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.percentile(p), combined.percentile(p)) << "p=" << p;
  }
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  latency_histogram a, empty;
  for (std::uint64_t v : {5u, 500u, 50'000u}) a.record(v);
  const auto p99_before = a.p99();
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.p99(), p99_before);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_EQ(empty.min(), 5u);
  EXPECT_EQ(empty.max(), 50'000u);
}

TEST(LatencyHistogram, ClearResets) {
  latency_histogram h;
  h.record(123456);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  h.record(7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.p50(), 7u);
}

}  // namespace
}  // namespace memento
