// Tests for the network-wide layer: budget model, Theorem 5.5 optimizer,
// measurement points, controllers, and the three-method harness.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "netwide/aggregation.hpp"
#include "netwide/batch_optimizer.hpp"
#include "netwide/controller.hpp"
#include "netwide/measurement_point.hpp"
#include "netwide/simulation.hpp"
#include "netwide/summary_channel.hpp"
#include "sketch/exact_hhh.hpp"
#include "snapshot/summary.hpp"
#include "trace/trace_generator.hpp"

namespace memento::netwide {
namespace {

// --- budget model ------------------------------------------------------------

TEST(BudgetModel, ReportBytes) {
  budget_model b{1.0, 64.0, 4.0};
  EXPECT_DOUBLE_EQ(b.report_bytes(1), 68.0);
  EXPECT_DOUBLE_EQ(b.report_bytes(44), 64.0 + 176.0);
}

TEST(BudgetModel, MaxTauFormula) {
  // tau = B b / (O + E b): Section 5.2.
  budget_model b{1.0, 64.0, 4.0};
  EXPECT_NEAR(b.max_tau(1), 1.0 / 68.0, 1e-12);
  EXPECT_NEAR(b.max_tau(44), 44.0 / 240.0, 1e-12);
  EXPECT_THROW((void)b.max_tau(0), std::invalid_argument);
}

TEST(BudgetModel, MaxTauClampsAtOne) {
  budget_model generous{100.0, 64.0, 4.0};
  EXPECT_DOUBLE_EQ(generous.max_tau(1000), 1.0);
}

TEST(BudgetModel, PacketsPerReportIsBOverBudget) {
  budget_model b{2.0, 64.0, 4.0};
  EXPECT_DOUBLE_EQ(b.packets_per_report(10), (64.0 + 40.0) / 2.0);
}

// --- Theorem 5.5 --------------------------------------------------------------

error_model paper_example_model() {
  // Section 5.2: TCP (O=64), m=10, source hierarchy (E=4, H=5), delta=0.01%,
  // W=1e6, B=1.
  error_model m;
  m.budget = budget_model{1.0, 64.0, 4.0};
  m.num_points = 10;
  m.hierarchy_size = 5.0;
  m.window = 1e6;
  m.delta = 1e-4;
  return m;
}

TEST(BatchOptimizer, ErrorDecomposesPerTheorem55) {
  const auto m = paper_example_model();
  const auto e = error_bound(m, 44);
  EXPECT_NEAR(e.delay, 10.0 * 240.0 / 1.0, 1e-9);
  EXPECT_NEAR(e.sampling, std::sqrt(5.0 * 1e6 * m.z() * 240.0 / 44.0), 1e-6);
}

TEST(BatchOptimizer, PaperExampleErrorNear13K) {
  // "the optimal batch size is b = 44. The resulting error guarantee is 13K
  // packets (i.e., an error of 1.3%)." Our optimum lands in the same flat
  // valley; both its error and E(44) are ~12.7K.
  const auto m = paper_example_model();
  const auto opt = optimal_batch(m);
  EXPECT_NEAR(opt.error.total(), 13000.0, 700.0);
  EXPECT_NEAR(error_bound(m, 44).total(), 13000.0, 700.0);
  EXPECT_GE(opt.batch_size, 30u);
  EXPECT_LE(opt.batch_size, 50u);
}

TEST(BatchOptimizer, PaperExampleAtB5) {
  // "Increasing the bandwidth budget to B = 5 bytes decreases the absolute
  // error to 5.3K packets" - we measure ~5.0K at our optimum.
  auto m = paper_example_model();
  m.budget.bytes_per_packet = 5.0;
  const auto opt = optimal_batch(m);
  EXPECT_NEAR(opt.error.total(), 5300.0, 400.0);
  EXPECT_GT(opt.batch_size, 44u) << "larger budget -> larger optimal batch";
}

TEST(BatchOptimizer, LargerWindowLowersRelativeError) {
  // "increasing the window size to 1e7 ... reducing the error to 0.15%":
  // the relative error must drop by roughly sqrt(10); batch size grows.
  auto m = paper_example_model();
  const auto small = optimal_batch(m);
  m.window = 1e7;
  const auto large = optimal_batch(m);
  EXPECT_LT(large.error.total() / 1e7, small.error.total() / 1e6);
  EXPECT_GT(large.batch_size, small.batch_size);
}

TEST(BatchOptimizer, TwoDimensionalHierarchyRaisesErrorAndBatch) {
  // "2D source/destination hierarchies result in a slightly larger error and
  // a higher optimal batch size." The H effect in isolation (sampling term
  // scales with sqrt(H)) raises both the error and the optimal batch size.
  auto m = paper_example_model();
  const auto oned = optimal_batch(m);
  m.hierarchy_size = 25.0;
  const auto twod = optimal_batch(m);
  EXPECT_GT(twod.error.total(), oned.error.total());
  EXPECT_GT(twod.batch_size, oned.batch_size);
  // Doubling the entry size (8-byte src/dst pairs) raises the error further
  // while pushing the optimum back down (entries got pricier).
  m.budget.entry_bytes = 8.0;
  const auto twod_wide = optimal_batch(m);
  EXPECT_GT(twod_wide.error.total(), twod.error.total());
}

TEST(BatchOptimizer, SampleIsBatchWithBOne) {
  const auto m = paper_example_model();
  EXPECT_DOUBLE_EQ(sample_error_bound(m).total(), error_bound(m, 1).total());
}

TEST(BatchOptimizer, BatchBeatsSampleAtTightBudgets) {
  // Fig. 4's core message: under the same budget, the optimal batch's
  // guarantee beats the Sample method's.
  for (double budget : {0.5, 1.0, 2.0, 5.0}) {
    auto m = paper_example_model();
    m.budget.bytes_per_packet = budget;
    EXPECT_LT(optimal_batch(m).error.total(), sample_error_bound(m).total())
        << "B=" << budget;
  }
}

TEST(BatchOptimizer, ErrorIsUnimodalAroundOptimum) {
  const auto m = paper_example_model();
  const auto opt = optimal_batch(m);
  for (std::size_t b = std::max<std::size_t>(2, opt.batch_size / 4); b < opt.batch_size;
       b *= 2) {
    EXPECT_GE(error_bound(m, b).total(), opt.error.total());
  }
  for (std::size_t b = opt.batch_size * 2; b < opt.batch_size * 32; b *= 2) {
    EXPECT_GE(error_bound(m, b).total(), opt.error.total());
  }
  EXPECT_THROW((void)error_bound(m, 0), std::invalid_argument);
}

// --- measurement point ---------------------------------------------------------

TEST(MeasurementPoint, Validation) {
  EXPECT_THROW(measurement_point(0, 0.5, 0), std::invalid_argument);
  EXPECT_THROW(measurement_point(0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(measurement_point(0, 1.5, 4), std::invalid_argument);
}

TEST(MeasurementPoint, TauOneEmitsEveryBPackets) {
  measurement_point mp(3, 1.0, 4);
  int reports = 0;
  for (int i = 0; i < 40; ++i) {
    if (auto r = mp.observe(packet{static_cast<std::uint32_t>(i), 0})) {
      ++reports;
      EXPECT_EQ(r->origin, 3u);
      EXPECT_EQ(r->samples.size(), 4u);
      EXPECT_EQ(r->covered_packets, 4u);
    }
  }
  EXPECT_EQ(reports, 10);
  EXPECT_EQ(mp.reports_sent(), 10u);
  EXPECT_EQ(mp.observed_total(), 40u);
}

TEST(MeasurementPoint, CoveredPacketsAccountForUnsampled) {
  measurement_point mp(0, 0.25, 2, /*seed=*/5);
  std::uint64_t covered_sum = 0;
  std::uint64_t sampled_sum = 0;
  for (int i = 0; i < 100000; ++i) {
    if (auto r = mp.observe(packet{static_cast<std::uint32_t>(i), 0})) {
      covered_sum += r->covered_packets;
      sampled_sum += r->samples.size();
    }
  }
  if (auto r = mp.flush()) {
    covered_sum += r->covered_packets;
    sampled_sum += r->samples.size();
  }
  EXPECT_EQ(covered_sum, 100000u) << "every packet must be covered exactly once";
  EXPECT_NEAR(static_cast<double>(sampled_sum) / 100000.0, 0.25, 0.01);
}

TEST(MeasurementPoint, FlushEmitsPartialBatch) {
  measurement_point mp(0, 1.0, 10);
  for (int i = 0; i < 7; ++i) (void)mp.observe(packet{1, 1});
  auto r = mp.flush();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->samples.size(), 7u);
  EXPECT_EQ(r->covered_packets, 7u);
  EXPECT_FALSE(mp.flush().has_value()) << "second flush has nothing to say";
}

TEST(MeasurementPoint, ByteAccountingUsesReportSize) {
  budget_model budget{1.0, 64.0, 4.0};
  measurement_point mp(0, 1.0, 5);
  for (int i = 0; i < 50; ++i) (void)mp.observe(packet{2, 2});
  EXPECT_DOUBLE_EQ(mp.bytes_sent(budget), 10.0 * (64.0 + 20.0));
}

// --- controllers -----------------------------------------------------------------

TEST(DMementoController, MatchesSingleDeviceMemento) {
  // Feeding the controller reports must reproduce a local Memento fed the
  // identical full/window update sequence (the d-algorithms ARE the single
  // device algorithms behind a transport).
  constexpr std::uint64_t window = 4000;
  constexpr double tau = 0.5;
  d_memento_controller controller(window, 64, tau);
  memento_sketch<std::uint64_t> local(window, 64, tau, /*seed=*/1);

  measurement_point mp(0, tau, 8, /*seed=*/9);
  trace_generator gen(trace_kind::datacenter, 44);
  for (int i = 0; i < 20000; ++i) {
    const packet p = gen.next();
    if (auto r = mp.observe(p)) {
      controller.on_report(*r);
      for (const auto& s : r->samples) local.full_update(flow_id(s));
      const std::uint64_t unsampled = r->covered_packets - r->samples.size();
      for (std::uint64_t j = 0; j < unsampled; ++j) local.window_update();
    }
  }
  trace_generator replay(trace_kind::datacenter, 44);
  for (int i = 0; i < 1000; ++i) {
    const auto key = flow_id(replay.next());
    ASSERT_DOUBLE_EQ(controller.query(key), local.query(key));
  }
  EXPECT_GT(controller.reports_received(), 0u);
}

TEST(DHMementoController, TracksHotSubnetAcrossVantages) {
  constexpr std::uint64_t window = 20000;
  const double tau = 0.5;
  d_h_memento_controller<source_hierarchy> controller(window, 2000, tau);
  std::vector<measurement_point> points;
  for (std::uint32_t i = 0; i < 4; ++i) points.emplace_back(i, tau, 4, 100 + i);

  xoshiro256 rng(55);
  trace_generator gen(trace_kind::backbone, 66);
  std::uint64_t sent = 0;
  for (int i = 0; i < 60000; ++i) {
    packet p = rng.uniform01() < 0.3 ? packet{0x0A010101u, 7} : gen.next();
    // spread across vantages round-robin
    if (auto r = points[i % 4].observe(p)) {
      controller.on_report(*r);
      ++sent;
    }
  }
  EXPECT_GT(sent, 0u);
  const double est = controller.query(prefix1d::make_key(0x0A000000u, 3));
  EXPECT_NEAR(est, 0.3 * window, 0.15 * window);
}

// --- aggregation ------------------------------------------------------------------

TEST(Aggregation, SnapshotExpandsPrefixesExactly) {
  budget_model generous{1e9, 0.0, 0.0};  // effectively unconstrained
  aggregating_point<source_hierarchy> vantage(1, 1000, generous);
  std::optional<aggregation_report<source_hierarchy>> last;
  for (int i = 0; i < 10; ++i) {
    if (auto r = vantage.observe(packet{0x0A010101u, 0})) last = std::move(r);
  }
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->prefix_counts.at(prefix1d::make_key(0x0A010101u, 0)), 10u);
  EXPECT_EQ(last->prefix_counts.at(prefix1d::make_key(0x0A000000u, 3)), 10u);
}

TEST(Aggregation, BudgetGatesSnapshotCadence) {
  budget_model tight{1.0, 64.0, 4.0};
  aggregating_point<source_hierarchy> vantage(0, 10000, tight);
  trace_generator gen(trace_kind::backbone, 5);
  std::uint64_t reports = 0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (vantage.observe(gen.next())) ++reports;
  }
  EXPECT_GT(reports, 0u);
  EXPECT_LE(vantage.bytes_sent() / n, 1.05) << "budget exceeded";
  // Large windows with many distinct flows => big messages => few reports.
  EXPECT_LT(reports, 100u);
}

TEST(Aggregation, ControllerMergesVantagesLosslessly) {
  ideal_aggregation_controller<source_hierarchy> controller;
  aggregation_report<source_hierarchy> a;
  a.origin = 0;
  a.prefix_counts[prefix1d::make_key(0x0A000000u, 3)] = 30;
  aggregation_report<source_hierarchy> b;
  b.origin = 1;
  b.prefix_counts[prefix1d::make_key(0x0A000000u, 3)] = 12;
  controller.on_report(std::move(a));
  controller.on_report(std::move(b));
  EXPECT_DOUBLE_EQ(controller.query(prefix1d::make_key(0x0A000000u, 3)), 42.0);
  EXPECT_EQ(controller.vantages_heard(), 2u);
  // Re-reporting replaces, not accumulates.
  aggregation_report<source_hierarchy> a2;
  a2.origin = 0;
  a2.prefix_counts[prefix1d::make_key(0x0A000000u, 3)] = 5;
  controller.on_report(std::move(a2));
  EXPECT_DOUBLE_EQ(controller.query(prefix1d::make_key(0x0A000000u, 3)), 17.0);
}

// --- the full harness ---------------------------------------------------------------

class HarnessBudget : public ::testing::TestWithParam<comm_method> {};

TEST_P(HarnessBudget, StaysWithinBytePerPacketBudget) {
  harness_config cfg;
  cfg.method = GetParam();
  cfg.num_points = 10;
  cfg.window = 50000;
  cfg.budget = budget_model{1.0, 64.0, 4.0};
  cfg.counters = 512;
  netwide_harness<source_hierarchy> harness(cfg);
  auto trace = make_trace(trace_kind::backbone, 120000, /*seed=*/12);
  for (const auto& p : trace) harness.ingest(p);
  EXPECT_LE(harness.bytes_per_packet(), 1.05) << method_name(GetParam());
  EXPECT_GT(harness.reports_sent(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, HarnessBudget,
                         ::testing::Values(comm_method::sample, comm_method::batch,
                                           comm_method::aggregation, comm_method::summary),
                         [](const auto& info) { return method_name(info.param); });

// --- the summary channel ------------------------------------------------------------

TEST(BudgetModel, SummaryChannelAccounting) {
  budget_model b{1.0, 64.0, 4.0, 16.0};
  EXPECT_DOUBLE_EQ(b.summary_report_bytes(0), 64.0);
  EXPECT_DOUBLE_EQ(b.summary_report_bytes(100), 64.0 + 1600.0);
  EXPECT_DOUBLE_EQ(b.packets_per_summary(100), 1664.0);
  b.bytes_per_packet = 0.5;
  EXPECT_DOUBLE_EQ(b.packets_per_summary(100), 3328.0);
}

TEST(SummaryChannel, ReportCodecRoundTripsAndRejectsGarbage) {
  summary_point<source_hierarchy> point(7, 20000, 256, budget_model{4.0, 64.0, 4.0}, 3);
  trace_generator gen(trace_kind::backbone, 11);
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 200000 && payload.empty(); ++i) {
    if (auto p = point.observe(gen.next())) payload = std::move(*p);
  }
  ASSERT_FALSE(payload.empty()) << "vantage never accrued a summary";

  const auto report = decode_summary_report<std::uint64_t>(payload);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->origin, 7u);
  EXPECT_GT(report->covered_packets, 0u);
  EXPECT_FALSE(report->summary.empty());
  // The vantage's own estimates survive the wire exactly.
  report->summary.for_each([&](const std::uint64_t& key, double est) {
    ASSERT_DOUBLE_EQ(est, point.algorithm().query(key));
  });

  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(decode_summary_report<std::uint64_t>(
                     std::span<const std::uint8_t>(payload.data(), cut))
                     .has_value())
        << "accepted truncation at " << cut;
  }
  auto garbage = payload;
  garbage.push_back(0x00);
  EXPECT_FALSE(decode_summary_report<std::uint64_t>(garbage).has_value());
}

TEST(SummaryChannel, BudgetGatesSummaryCadence) {
  const budget_model budget{1.0, 64.0, 4.0};
  summary_point<source_hierarchy> point(0, 10000, 128, budget, 5);
  trace_generator gen(trace_kind::backbone, 13);
  for (int i = 0; i < 150000; ++i) (void)point.observe(gen.next());
  ASSERT_GT(point.reports_sent(), 0u);
  // Byte accounting charges actual encoded sizes and must respect B.
  EXPECT_LE(point.bytes_sent() / static_cast<double>(point.observed_total()),
            budget.bytes_per_packet * 1.05);
}

TEST(SummaryChannel, ControllerSumsVantagesOneSidedly) {
  summary_controller<source_hierarchy> controller;
  const std::uint64_t hot = prefix1d::make_key(0x0A000000u, 3);

  // Two vantages, each holding part of the /8's mass.
  for (std::uint32_t origin = 0; origin < 2; ++origin) {
    h_memento<source_hierarchy> local(10000, 256, 1.0, 1e-3, origin + 1);
    for (int i = 0; i < 20000; ++i) {
      local.update(packet{0x0A000000u | static_cast<std::uint32_t>(i % 999), 1});
    }
    controller.on_report(summary_report<std::uint64_t>{
        origin, 20000, window_summary<std::uint64_t>::from_hhh(local)});
  }
  EXPECT_EQ(controller.vantages_heard(), 2u);
  EXPECT_EQ(controller.reports_received(), 2u);
  // Entry-sum sees both vantages' estimates; the /8 carried all traffic.
  EXPECT_GT(controller.query_point(hot), 10000.0);
  // One-sided query dominates the entry sum (miss bounds only add).
  EXPECT_GE(controller.query(hot), controller.query_point(hot));
  const auto hhh = controller.output(0.5, 20000);
  EXPECT_FALSE(hhh.empty());
}

TEST(Harness, SummaryMethodTracksAHotSubnet) {
  harness_config cfg;
  cfg.method = comm_method::summary;
  cfg.num_points = 10;
  cfg.window = 30000;
  cfg.budget = budget_model{4.0, 64.0, 4.0};  // summaries are chunky; give headroom
  cfg.counters = 2000;
  netwide_harness<source_hierarchy> harness(cfg);

  xoshiro256 rng(21);
  trace_generator gen(trace_kind::backbone, 31);
  for (int i = 0; i < 100000; ++i) {
    packet p = rng.uniform01() < 0.4 ? packet{0x0A000000u | static_cast<std::uint32_t>(
                                                  rng.bounded(1 << 24)),
                                              9}
                                     : gen.next();
    harness.ingest(p);
  }
  ASSERT_GT(harness.reports_sent(), 0u);
  // The midpoint estimate (entry sums across vantages) tracks the subnet's
  // ~40% share; summaries are stale between reports, so the tolerance is
  // wider than the batch method's.
  const double est = harness.estimate_midpoint(prefix1d::make_key(0x0A000000u, 3));
  EXPECT_NEAR(est, 0.4 * static_cast<double>(cfg.window),
              0.35 * static_cast<double>(cfg.window));
  // One-sided estimate dominates the midpoint.
  EXPECT_GE(harness.estimate(prefix1d::make_key(0x0A000000u, 3)), est);
}

TEST(Harness, BatchDefaultsToTheorem55Optimum) {
  harness_config cfg;
  cfg.method = comm_method::batch;
  cfg.window = 1'000'000;
  cfg.budget = budget_model{1.0, 64.0, 4.0};
  netwide_harness<source_hierarchy> harness(cfg);
  error_model m = paper_example_model();
  m.delta = cfg.delta;
  EXPECT_EQ(harness.batch_size(), optimal_batch(m).batch_size);
}

TEST(Harness, SampleForcesBatchOfOne) {
  harness_config cfg;
  cfg.method = comm_method::sample;
  cfg.batch_size = 99;  // must be overridden
  netwide_harness<source_hierarchy> harness(cfg);
  EXPECT_EQ(harness.batch_size(), 1u);
}

TEST(Harness, EstimatesTrackAHotSubnet) {
  harness_config cfg;
  cfg.method = comm_method::batch;
  cfg.num_points = 10;
  cfg.window = 30000;
  cfg.budget = budget_model{1.0, 64.0, 4.0};
  cfg.counters = 2000;
  netwide_harness<source_hierarchy> harness(cfg);

  xoshiro256 rng(21);
  trace_generator gen(trace_kind::backbone, 31);
  for (int i = 0; i < 100000; ++i) {
    packet p = rng.uniform01() < 0.4 ? packet{0x0A000000u | static_cast<std::uint32_t>(
                                                  rng.bounded(1 << 24)),
                                              9}
                                     : gen.next();
    harness.ingest(p);
  }
  const double est = harness.estimate(prefix1d::make_key(0x0A000000u, 3));
  EXPECT_NEAR(est, 0.4 * static_cast<double>(cfg.window),
              0.3 * static_cast<double>(cfg.window));
}

TEST(Harness, RejectsZeroVantages) {
  harness_config cfg;
  cfg.num_points = 0;
  EXPECT_THROW(netwide_harness<source_hierarchy>{cfg}, std::invalid_argument);
}

// --- delta summary channel ---------------------------------------------------

TEST(DeltaChannel, ReportCodecRoundTripsFullAndDelta) {
  // Delta kind: changed + removed survive the wire exactly.
  delta_summary_report<std::uint64_t> report;
  report.origin = 9;
  report.covered_packets = 4'321;
  report.epoch = 17;
  report.kind = summary_kind::delta;
  report.window = 50'000;
  report.stream = 123'456;
  report.width = 31.25;
  report.miss_upper = 7.5;
  for (std::uint64_t k = 0; k < 300; ++k) report.changed.push_back({k * 37, 100.0 + k});
  for (std::uint64_t k = 0; k < 40; ++k) report.removed.push_back(k * 101 + 7);
  const auto payload = encode_delta_summary_report(report);
  ASSERT_FALSE(payload.empty());

  const auto got = decode_delta_summary_report<std::uint64_t>(payload);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->origin, report.origin);
  EXPECT_EQ(got->covered_packets, report.covered_packets);
  EXPECT_EQ(got->epoch, report.epoch);
  EXPECT_EQ(got->kind, summary_kind::delta);
  EXPECT_EQ(got->window, report.window);
  EXPECT_EQ(got->stream, report.stream);
  EXPECT_DOUBLE_EQ(got->width, report.width);
  EXPECT_DOUBLE_EQ(got->miss_upper, report.miss_upper);
  EXPECT_EQ(got->changed, report.changed);
  EXPECT_EQ(got->removed, report.removed);

  // Full kind: the embedded WS v2 section round-trips its entries.
  delta_summary_report<std::uint64_t> full;
  full.origin = 3;
  full.epoch = 1;
  full.kind = summary_kind::full;
  full.summary.set_scalars(50'000, 99'999, 10.0, 2.0);
  for (std::uint64_t k = 0; k < 100; ++k) full.summary.upsert(k * 13, 500.0 + k);
  const auto full_payload = encode_delta_summary_report(full);
  const auto full_got = decode_delta_summary_report<std::uint64_t>(full_payload);
  ASSERT_TRUE(full_got.has_value());
  EXPECT_EQ(full_got->kind, summary_kind::full);
  EXPECT_EQ(full_got->summary.size(), full.summary.size());
  full.summary.for_each([&](const std::uint64_t& key, double est) {
    ASSERT_DOUBLE_EQ(full_got->summary.query_entry(key), est);
  });

  // Hardening: every truncation and every single-byte corruption of the
  // delta payload is rejected (preamble checks + the WD section's CRC).
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(decode_delta_summary_report<std::uint64_t>(
                     std::span<const std::uint8_t>(payload.data(), cut))
                     .has_value())
        << "accepted truncation at " << cut;
  }
  auto mutated = payload;
  for (std::size_t i = 21; i < mutated.size(); ++i) {  // past the un-CRC'd preamble
    mutated[i] ^= 0x01;
    EXPECT_FALSE(decode_delta_summary_report<std::uint64_t>(mutated).has_value())
        << "accepted corruption at byte " << i;
    mutated[i] ^= 0x01;
  }
  // Unknown kind byte (offset 20: u32 origin + u64 covered + u64 epoch).
  mutated[20] = 2;
  EXPECT_FALSE(decode_delta_summary_report<std::uint64_t>(mutated).has_value());
}

TEST(DeltaChannel, ControllerEnforcesEpochSequencing) {
  delta_summary_controller<source_hierarchy> ctrl;
  const std::uint64_t k1 = 11, k2 = 22;

  auto make_full = [&](std::uint64_t epoch, std::uint64_t key, double est) {
    delta_summary_report<std::uint64_t> r;
    r.origin = 0;
    r.epoch = epoch;
    r.kind = summary_kind::full;
    r.summary.set_scalars(1'000, epoch * 1'000, 5.0, 1.0);
    r.summary.upsert(key, est);
    return r;
  };
  auto make_delta = [&](std::uint64_t epoch) {
    delta_summary_report<std::uint64_t> r;
    r.origin = 0;
    r.epoch = epoch;
    r.kind = summary_kind::delta;
    r.window = 1'000;
    r.stream = epoch * 1'000;
    r.width = 5.0;
    r.miss_upper = 1.0;
    return r;
  };

  // Baseline at epoch 1.
  EXPECT_TRUE(ctrl.on_report(make_full(1, k1, 100.0)));
  EXPECT_DOUBLE_EQ(ctrl.query_point(k1), 100.0);
  // Replay of epoch 1 is rejected, state unchanged.
  EXPECT_FALSE(ctrl.on_report(make_full(1, k1, 999.0)));
  EXPECT_DOUBLE_EQ(ctrl.query_point(k1), 100.0);
  // In-sequence delta applies: k1 removed, k2 upserted.
  auto d2 = make_delta(2);
  d2.changed.push_back({k2, 50.0});
  d2.removed.push_back(k1);
  EXPECT_TRUE(ctrl.on_report(d2));
  EXPECT_DOUBLE_EQ(ctrl.query_point(k1), 0.0);
  EXPECT_DOUBLE_EQ(ctrl.query_point(k2), 50.0);
  // An epoch gap desyncs the origin...
  EXPECT_FALSE(ctrl.on_report(make_delta(4)));
  // ...and even the "right next" epoch stays rejected until a full resync.
  EXPECT_FALSE(ctrl.on_report(make_delta(3)));
  EXPECT_DOUBLE_EQ(ctrl.query_point(k2), 50.0);  // baseline untouched by rejects
  EXPECT_EQ(ctrl.reports_rejected(), 3u);
  // A full report resynchronizes unconditionally.
  EXPECT_TRUE(ctrl.on_report(make_full(5, k1, 70.0)));
  EXPECT_DOUBLE_EQ(ctrl.query_point(k1), 70.0);
  EXPECT_DOUBLE_EQ(ctrl.query_point(k2), 0.0);  // full replaces, not patches
  auto d6 = make_delta(6);
  d6.changed.push_back({k2, 25.0});
  EXPECT_TRUE(ctrl.on_report(d6));
  EXPECT_DOUBLE_EQ(ctrl.query_point(k2), 25.0);
}

TEST(DeltaChannel, DeltaStreamTracksFullResyncBaselineAndRecoversFromLoss) {
  // Two identical vantages over the same stream; one ships a full summary
  // every report, the other deltas with periodic resync. Their controllers
  // must agree to within one change bar per entry. A dropped delta mid-run
  // desyncs the delta controller until the next full, after which agreement
  // returns - the recovery path the wire format exists for.
  const budget_model budget{4.0, 64.0, 4.0};
  delta_summary_config full_cfg;
  full_cfg.resync_every = 1;
  full_cfg.cadence_packets = 500;
  delta_summary_config delta_cfg;
  delta_cfg.resync_every = 4;
  delta_cfg.cadence_packets = 500;
  delta_cfg.change_bar_units = 1.0;
  delta_summary_point<source_hierarchy> pfull(0, 10'000, 256, budget, full_cfg, 5);
  delta_summary_point<source_hierarchy> pdelta(0, 10'000, 256, budget, delta_cfg, 5);
  delta_summary_controller<source_hierarchy> cfull, cdelta;

  std::uint64_t z = 99;
  std::uint64_t delta_payloads = 0;
  for (int i = 0; i < 30'000; ++i) {
    z = z * 6364136223846793005ULL + 1442695040888963407ULL;
    // 4 stable elephants on 60% of traffic, random background on the rest.
    const std::uint32_t src = (z >> 33) % 10 < 6
                                  ? static_cast<std::uint32_t>((z >> 50) % 4) * 7919u + 1
                                  : static_cast<std::uint32_t>(z >> 32);
    const packet p{src, 0};
    if (auto payload = pfull.observe(p)) {
      auto r = decode_delta_summary_report<std::uint64_t>(*payload);
      ASSERT_TRUE(r.has_value());
      cfull.on_report(std::move(*r));
    }
    if (auto payload = pdelta.observe(p)) {
      auto r = decode_delta_summary_report<std::uint64_t>(*payload);
      ASSERT_TRUE(r.has_value());
      // Drop the 6th report if it is a delta: simulated channel loss.
      if (++delta_payloads == 6 && r->kind == summary_kind::delta) continue;
      cdelta.on_report(std::move(*r));
    }
  }
  ASSERT_GT(pdelta.delta_reports(), 0u);
  ASSERT_GT(pdelta.full_reports(), 1u);
  EXPECT_GE(cdelta.reports_rejected(), 1u);  // the post-drop deltas until resync

  // Deltas must be the cheaper channel even at this small scale.
  EXPECT_LT(pdelta.bytes_sent(), pfull.bytes_sent());

  // Per-entry agreement: the elephants' source-level estimates differ by at
  // most the change bar (plus report-timing slack) between the two sides.
  const double bar = 1.0 *
                     static_cast<double>(pdelta.algorithm().inner().overflow_threshold()) *
                     static_cast<double>(source_hierarchy::hierarchy_size) /
                     pdelta.algorithm().tau();
  for (std::uint32_t e = 0; e < 4; ++e) {
    const packet probe{e * 7919u + 1, 0};
    for (std::size_t d = 0; d < source_hierarchy::hierarchy_size; ++d) {
      const auto key = source_hierarchy::key_at(probe, d);
      const double ref = cfull.query_point(key);
      EXPECT_NEAR(cdelta.query_point(key), ref, bar + 0.05 * ref)
          << "elephant " << e << " depth " << d;
    }
  }
}

}  // namespace
}  // namespace memento::netwide
