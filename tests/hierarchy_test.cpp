// Tests for the prefix lattices (1D / 2D), glb, G(q|P), and the shared HHH
// solver - the Algorithm 2/3/4 machinery, exercised on hand-computed cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "hierarchy/hhh_solver.hpp"
#include "hierarchy/prefix1d.hpp"
#include "hierarchy/prefix2d.hpp"

namespace memento {
namespace {

// Address helper: 181.7.20.6 style constants.
constexpr std::uint32_t ip(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d) {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

// --- 1D prefix arithmetic ----------------------------------------------------

TEST(Prefix1d, MasksPerDepth) {
  EXPECT_EQ(prefix1d::mask_for_depth(0), 0xffffffffu);
  EXPECT_EQ(prefix1d::mask_for_depth(1), 0xffffff00u);
  EXPECT_EQ(prefix1d::mask_for_depth(2), 0xffff0000u);
  EXPECT_EQ(prefix1d::mask_for_depth(3), 0xff000000u);
  EXPECT_EQ(prefix1d::mask_for_depth(4), 0u);
}

TEST(Prefix1d, KeyEncodesMaskedAddressAndDepth) {
  const auto key = prefix1d::make_key(ip(181, 7, 20, 6), 2);
  EXPECT_EQ(prefix1d::key_addr(key), ip(181, 7, 0, 0));
  EXPECT_EQ(prefix1d::key_depth(key), 2u);
}

TEST(Prefix1d, EqualPrefixesEncodeIdentically) {
  EXPECT_EQ(prefix1d::make_key(ip(181, 7, 20, 6), 2), prefix1d::make_key(ip(181, 7, 99, 1), 2));
}

TEST(Prefix1d, GeneralizesFollowsThePaperExample) {
  // "181.7.20.* and 181.7.* generalize the (fully specified) 181.7.20.6".
  const auto full = prefix1d::make_key(ip(181, 7, 20, 6), 0);
  const auto p24 = prefix1d::make_key(ip(181, 7, 20, 0), 1);
  const auto p16 = prefix1d::make_key(ip(181, 7, 0, 0), 2);
  EXPECT_TRUE(prefix1d::generalizes(p24, full));
  EXPECT_TRUE(prefix1d::generalizes(p16, full));
  EXPECT_TRUE(prefix1d::generalizes(p16, p24));
  EXPECT_FALSE(prefix1d::generalizes(p24, p16));
  EXPECT_FALSE(prefix1d::generalizes(full, p24));
  EXPECT_TRUE(prefix1d::generalizes(full, full));
  EXPECT_FALSE(prefix1d::strictly_generalizes(full, full));
}

TEST(Prefix1d, RootGeneralizesEverything) {
  const auto root = prefix1d::make_key(0, 4);
  for (std::uint32_t addr : {0u, ip(1, 2, 3, 4), 0xffffffffu}) {
    for (std::size_t d = 0; d < 5; ++d) {
      EXPECT_TRUE(prefix1d::generalizes(root, prefix1d::make_key(addr, d)));
    }
  }
}

TEST(Prefix1d, UnrelatedSubnetsDoNotGeneralize) {
  const auto a = prefix1d::make_key(ip(10, 0, 0, 0), 3);
  const auto b = prefix1d::make_key(ip(11, 5, 5, 5), 0);
  EXPECT_FALSE(prefix1d::generalizes(a, b));
}

TEST(Prefix1d, ParentIsOneLevelUp) {
  const auto full = prefix1d::make_key(ip(181, 7, 20, 6), 0);
  const auto parent = prefix1d::parent(full);
  EXPECT_EQ(prefix1d::key_depth(parent), 1u);
  EXPECT_EQ(prefix1d::key_addr(parent), ip(181, 7, 20, 0));
}

TEST(SourceHierarchy, KeyAtEnumeratesAllGeneralizations) {
  const packet p{ip(181, 7, 20, 6), 0};
  EXPECT_EQ(source_hierarchy::hierarchy_size, 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto key = source_hierarchy::key_at(p, i);
    EXPECT_EQ(source_hierarchy::depth(key), i);
    EXPECT_EQ(source_hierarchy::pattern_index(key), i);
    EXPECT_TRUE(source_hierarchy::generalizes(key, source_hierarchy::full_key(p)));
  }
}

TEST(SourceHierarchy, ToStringRendersCidr) {
  const packet p{ip(181, 7, 20, 6), 0};
  EXPECT_EQ(source_hierarchy::to_string(source_hierarchy::key_at(p, 0)), "181.7.20.6/32");
  EXPECT_EQ(source_hierarchy::to_string(source_hierarchy::key_at(p, 2)), "181.7.0.0/16");
  EXPECT_EQ(source_hierarchy::to_string(source_hierarchy::key_at(p, 4)), "0.0.0.0/0");
}

// --- 2D prefix arithmetic ----------------------------------------------------

TEST(Prefix2d, DepthIsSumOfDimensionDepths) {
  EXPECT_EQ(prefix2::depth(prefix2::make(1, 0, 2, 0)), 0u);
  EXPECT_EQ(prefix2::depth(prefix2::make(1, 2, 2, 3)), 5u);
  EXPECT_EQ(prefix2::depth(prefix2::make(1, 4, 2, 4)), 8u);
  EXPECT_EQ(two_dim_hierarchy::num_levels, 9u);
  EXPECT_EQ(two_dim_hierarchy::hierarchy_size, 25u);
}

TEST(Prefix2d, GeneralizesRequiresBothDimensions) {
  const auto full = prefix2::make(ip(181, 7, 20, 6), 0, ip(208, 67, 222, 222), 0);
  const auto src_gen = prefix2::make(ip(181, 7, 20, 0), 1, ip(208, 67, 222, 222), 0);
  const auto dst_gen = prefix2::make(ip(181, 7, 20, 6), 0, ip(208, 67, 222, 0), 1);
  const auto both = prefix2::make(ip(181, 7, 0, 0), 2, ip(208, 67, 0, 0), 2);
  EXPECT_TRUE(prefix2::generalizes(src_gen, full));
  EXPECT_TRUE(prefix2::generalizes(dst_gen, full));
  EXPECT_TRUE(prefix2::generalizes(both, full));
  EXPECT_FALSE(prefix2::generalizes(full, src_gen));
  // Incomparable pair: each generalizes a different dimension.
  EXPECT_FALSE(prefix2::generalizes(src_gen, dst_gen));
  EXPECT_FALSE(prefix2::generalizes(dst_gen, src_gen));
}

TEST(Prefix2d, PaperParentExample) {
  // (181.7.20.*, 208.67.222.222) and (181.7.20.6, 208.67.222.*) are both
  // parents of (181.7.20.6, 208.67.222.222).
  const auto child = prefix2::make(ip(181, 7, 20, 6), 0, ip(208, 67, 222, 222), 0);
  const auto parent_a = prefix2::make(ip(181, 7, 20, 0), 1, ip(208, 67, 222, 222), 0);
  const auto parent_b = prefix2::make(ip(181, 7, 20, 6), 0, ip(208, 67, 222, 0), 1);
  EXPECT_TRUE(prefix2::strictly_generalizes(parent_a, child));
  EXPECT_TRUE(prefix2::strictly_generalizes(parent_b, child));
  EXPECT_EQ(prefix2::depth(parent_a), 1u);
  EXPECT_EQ(prefix2::depth(parent_b), 1u);
}

TEST(Prefix2d, GlbOfComparablePairIsTheDeeperOne) {
  const auto shallow = prefix2::make(ip(10, 0, 0, 0), 3, ip(20, 0, 0, 0), 3);
  const auto deep = prefix2::make(ip(10, 1, 0, 0), 2, ip(20, 2, 0, 0), 2);
  const auto g = prefix2::glb(shallow, deep);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g, deep);
}

TEST(Prefix2d, GlbOfCrossPairMixesDimensions) {
  // h  = (10.1.*, 20.*)   h' = (10.*, 20.2.*)  ->  glb = (10.1.*, 20.2.*).
  const auto h = prefix2::make(ip(10, 1, 0, 0), 2, ip(20, 0, 0, 0), 3);
  const auto h2 = prefix2::make(ip(10, 0, 0, 0), 3, ip(20, 2, 0, 0), 2);
  const auto g = prefix2::glb(h, h2);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g, prefix2::make(ip(10, 1, 0, 0), 2, ip(20, 2, 0, 0), 2));
}

TEST(Prefix2d, GlbAbsentForDisjointSubnets) {
  const auto h = prefix2::make(ip(10, 1, 0, 0), 2, ip(20, 0, 0, 0), 3);
  const auto h2 = prefix2::make(ip(11, 2, 0, 0), 2, ip(20, 2, 0, 0), 2);
  EXPECT_FALSE(prefix2::glb(h, h2).has_value());
}

TEST(Prefix2d, GlbIsCommutative) {
  const auto h = prefix2::make(ip(10, 1, 0, 0), 2, ip(20, 0, 0, 0), 3);
  const auto h2 = prefix2::make(ip(10, 0, 0, 0), 3, ip(20, 2, 0, 0), 2);
  EXPECT_EQ(prefix2::glb(h, h2), prefix2::glb(h2, h));
}

TEST(TwoDimHierarchy, PatternIndexRoundTripsKeyAt) {
  const packet p{ip(1, 2, 3, 4), ip(5, 6, 7, 8)};
  for (std::size_t i = 0; i < 25; ++i) {
    const auto key = two_dim_hierarchy::key_at(p, i);
    EXPECT_EQ(two_dim_hierarchy::pattern_index(key), i);
    EXPECT_TRUE(two_dim_hierarchy::generalizes(key, two_dim_hierarchy::full_key(p)));
  }
}

// --- G(q|P) -------------------------------------------------------------------

TEST(ClosestDescendants, PaperExample) {
  // p = 142.14.*, P = {142.14.13.*, 142.14.13.14} -> G(p|P) = {142.14.13.*}.
  using H = source_hierarchy;
  const auto p = prefix1d::make_key(ip(142, 14, 0, 0), 2);
  const std::vector<std::uint64_t> selected = {
      prefix1d::make_key(ip(142, 14, 13, 0), 1),
      prefix1d::make_key(ip(142, 14, 13, 14), 0),
  };
  const auto g = closest_descendants<H>(p, selected);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0], selected[0]);
}

TEST(ClosestDescendants, KeepsIncomparableSiblings) {
  using H = source_hierarchy;
  const auto p = prefix1d::make_key(0, 4);  // root
  const std::vector<std::uint64_t> selected = {
      prefix1d::make_key(ip(10, 0, 0, 0), 3),
      prefix1d::make_key(ip(11, 0, 0, 0), 3),
  };
  EXPECT_EQ(closest_descendants<H>(p, selected).size(), 2u);
}

TEST(ClosestDescendants, IgnoresNonDescendants) {
  using H = source_hierarchy;
  const auto p = prefix1d::make_key(ip(10, 0, 0, 0), 3);
  const std::vector<std::uint64_t> selected = {
      prefix1d::make_key(ip(11, 1, 0, 0), 2),  // different /8
      prefix1d::make_key(0, 4),                // ancestor, not descendant
      p,                                       // itself: not strict
  };
  EXPECT_TRUE(closest_descendants<H>(p, selected).empty());
}

// --- solve_hhh on exact hand-computed inputs -----------------------------------

/// Bound oracle backed by a map (exact counts; missing = 0).
template <typename K>
std::function<freq_bounds(const K&)> exact_oracle(
    const std::unordered_map<K, double>& counts) {
  return [&counts](const K& k) {
    const auto it = counts.find(k);
    const double f = it == counts.end() ? 0.0 : it->second;
    return freq_bounds{f, f};
  };
}

TEST(SolveHhh1d, ConditionedFrequencySubtractsSelectedChildren) {
  using H = source_hierarchy;
  // Window of 100: host A = 40 packets, host B = 15, both in 10.1.1.0/24.
  // theta*W = 30: A qualifies alone; the /24 carries 60 total so its
  // conditioned frequency is 60 - 40 = 20 < 30 -> excluded; /16, /8 same;
  // root picks up 100 - 40 = 60 -> included.
  const auto hostA = prefix1d::make_key(ip(10, 1, 1, 1), 0);
  const auto hostB = prefix1d::make_key(ip(10, 1, 1, 2), 0);
  const auto net24 = prefix1d::make_key(ip(10, 1, 1, 0), 1);
  const auto net16 = prefix1d::make_key(ip(10, 1, 0, 0), 2);
  const auto net8 = prefix1d::make_key(ip(10, 0, 0, 0), 3);
  const auto root = prefix1d::make_key(0, 4);
  std::unordered_map<std::uint64_t, double> counts = {
      {hostA, 40}, {hostB, 15}, {net24, 60}, {net16, 60}, {net8, 60}, {root, 100},
  };
  const auto result = solve_hhh<H>({hostA, hostB, net24, net16, net8, root},
                                   exact_oracle(counts), 30.0, 0.0);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].key, hostA);
  EXPECT_EQ(result[1].key, root);
  EXPECT_DOUBLE_EQ(result[1].conditioned_frequency, 60.0);
}

TEST(SolveHhh1d, DeepSelectionShieldsAncestors) {
  using H = source_hierarchy;
  // One hot /24 with 80 of 100 packets spread over many hosts; every
  // ancestor's conditioned frequency collapses once the /24 is selected.
  const auto net24 = prefix1d::make_key(ip(10, 1, 1, 0), 1);
  const auto net16 = prefix1d::make_key(ip(10, 1, 0, 0), 2);
  const auto net8 = prefix1d::make_key(ip(10, 0, 0, 0), 3);
  const auto root = prefix1d::make_key(0, 4);
  std::unordered_map<std::uint64_t, double> counts = {
      {net24, 80}, {net16, 80}, {net8, 80}, {root, 100}};
  const auto result =
      solve_hhh<H>({net24, net16, net8, root}, exact_oracle(counts), 30.0, 0.0);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].key, net24);
}

TEST(SolveHhh1d, CompensationAdmitsBorderlinePrefixes) {
  using H = source_hierarchy;
  const auto host = prefix1d::make_key(ip(1, 2, 3, 4), 0);
  std::unordered_map<std::uint64_t, double> counts = {{host, 25}};
  EXPECT_TRUE(solve_hhh<H>({host}, exact_oracle(counts), 30.0, 0.0).empty());
  EXPECT_EQ(solve_hhh<H>({host}, exact_oracle(counts), 30.0, 10.0).size(), 1u);
}

TEST(SolveHhh1d, DuplicateCandidatesCountOnce) {
  using H = source_hierarchy;
  const auto host = prefix1d::make_key(ip(1, 2, 3, 4), 0);
  std::unordered_map<std::uint64_t, double> counts = {{host, 50}};
  const auto result = solve_hhh<H>({host, host, host}, exact_oracle(counts), 30.0, 0.0);
  EXPECT_EQ(result.size(), 1u);
}

TEST(SolveHhh2d, InclusionExclusionAddsBackGlb) {
  using H = two_dim_hierarchy;
  // Flows: (s1,d1)=40. Selected level-1 prefixes (s1,*d)=45 and (*s,d1)=45
  // both contain the 40. Their common parent q=(*s,*d) at level 2 has 100
  // packets; conditioned = 100 - 45 - 45 + glb(=(s1,d1) count 40) = 50.
  const std::uint32_t s1 = ip(10, 1, 1, 1);
  const std::uint32_t d1 = ip(20, 1, 1, 1);
  const auto full = prefix2::make(s1, 0, d1, 0);
  const auto src_side = prefix2::make(s1, 0, d1, 1);  // (s1, d1/24)
  const auto dst_side = prefix2::make(s1, 1, d1, 0);  // (s1/24, d1)
  const auto q = prefix2::make(s1, 1, d1, 1);         // (s1/24, d1/24)
  std::unordered_map<prefix2d, double> counts = {
      {full, 40}, {src_side, 45}, {dst_side, 45}, {q, 100}};
  // Threshold 42: `full` (40) misses; both level-1 prefixes (45) selected;
  // q's conditioned = 100 - 45 - 45 + 40 = 50 >= 42 -> selected.
  const auto result = solve_hhh<H>({full, src_side, dst_side, q}, exact_oracle(counts),
                                   42.0, 0.0);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[2].key, q);
  EXPECT_DOUBLE_EQ(result[2].conditioned_frequency, 50.0);
}

TEST(SolveHhh2d, InclusionExclusionExcludesCoveredParent) {
  using H = two_dim_hierarchy;
  // full=(s,d)=40 misses the bar (55); both level-1 sides carry 60 and are
  // selected; q's conditioned frequency is 100 - 60 - 60 + 40 = 20 < 55 ->
  // correctly excluded. Without the subtraction a pessimist would see 100
  // (false positive); without the glb add-back, -20 (nonsense).
  const std::uint32_t s1 = ip(10, 1, 1, 1);
  const std::uint32_t d1 = ip(20, 1, 1, 1);
  const auto full = prefix2::make(s1, 0, d1, 0);
  const auto src_side = prefix2::make(s1, 0, d1, 1);
  const auto dst_side = prefix2::make(s1, 1, d1, 0);
  const auto q = prefix2::make(s1, 1, d1, 1);
  std::unordered_map<prefix2d, double> counts = {
      {full, 40}, {src_side, 60}, {dst_side, 60}, {q, 100}};
  const auto result = solve_hhh<H>({full, src_side, dst_side, q}, exact_oracle(counts),
                                   55.0, 0.0);
  ASSERT_EQ(result.size(), 2u);  // only the two level-1 prefixes
  EXPECT_TRUE(result[0].key == src_side || result[0].key == dst_side);
  EXPECT_TRUE(result[1].key == src_side || result[1].key == dst_side);
}

TEST(SolveHhh2d, GlbCoveredByThirdSelectedIsSkipped) {
  using H = two_dim_hierarchy;
  // G(q|P) = {a, b, c} where glb(a, b) generalizes c: the add-back must be
  // skipped or c's mass is double counted (Algorithm 4 line 6 guard).
  const std::uint32_t s = ip(10, 1, 1, 1);
  const std::uint32_t d = ip(20, 1, 1, 1);
  const auto a = prefix2::make(s, 0, d, 2);  // (s, d/16)
  const auto b = prefix2::make(s, 2, d, 0);  // (s/16, d)
  const auto c = prefix2::make(s, 1, d, 1);  // (s/24, d/24) - glb(a,b)=(s,d)? no:
  // glb(a,b) = (s, d) fully specified; c=(s/24,d/24) is NOT generalized by
  // (s,d). Build instead: glb(a,b)=(s,d); use c=(s,d) itself as a selected
  // descendant via a deeper level - then the guard triggers.
  const auto full = prefix2::make(s, 0, d, 0);
  const auto q = prefix2::make(s, 2, d, 2);  // (s/16, d/16), level 4
  (void)c;
  std::unordered_map<prefix2d, double> counts = {
      {full, 50}, {a, 60}, {b, 60}, {q, 120}};
  // Levels: full(0) selected (50 >= 40); a,b at level 2: conditioned =
  // 60 - 50 = 10 < 40 -> NOT selected. So G(q|P)={full}; q conditioned =
  // 120 - 50 = 70 >= 40 -> selected.
  const auto result =
      solve_hhh<H>({full, a, b, q}, exact_oracle(counts), 40.0, 0.0);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].key, full);
  EXPECT_EQ(result[1].key, q);
  EXPECT_DOUBLE_EQ(result[1].conditioned_frequency, 70.0);
}

TEST(SolveHhh, EmptyCandidatesYieldEmptySet) {
  using H = source_hierarchy;
  std::unordered_map<std::uint64_t, double> counts;
  EXPECT_TRUE(solve_hhh<H>({}, exact_oracle(counts), 1.0, 0.0).empty());
}

}  // namespace
}  // namespace memento
