// Cross-module integration tests: miniature versions of the paper's
// experiments wired end-to-end, asserting the *shape* results the figures
// report (who wins, in which direction) at test-sized scales.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "core/baseline_window_mst.hpp"
#include "core/h_memento.hpp"
#include "core/memento.hpp"
#include "core/mst.hpp"
#include "lb/cluster.hpp"
#include "netwide/simulation.hpp"
#include "sketch/exact_hhh.hpp"
#include "sketch/exact_window.hpp"
#include "trace/flood_injector.hpp"
#include "trace/trace_generator.hpp"

namespace memento {
namespace {

// Mini Fig. 5: sampling must not meaningfully hurt accuracy in the regime
// the paper identifies (tau >= 2^-10 effective rate).
TEST(Integration, SamplingPreservesAccuracyMiniFig5) {
  constexpr std::uint64_t window = 40000;
  auto trace = make_trace(trace_kind::backbone, 160000, /*seed=*/2);

  auto rmse_for_tau = [&](double tau) {
    memento_sketch<std::uint64_t> m(window, 512, tau, /*seed=*/7);
    exact_window<std::uint64_t> exact(m.window_size());
    double sq_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto key = flow_id(trace[i]);
      m.update(key);
      exact.add(key);
      if (i % 37 == 0 && i > window) {
        const double err = m.query(key) - static_cast<double>(exact.query(key));
        sq_sum += err * err;
        ++n;
      }
    }
    return std::sqrt(sq_sum / static_cast<double>(n));
  };

  const double rmse_full = rmse_for_tau(1.0);
  const double rmse_16 = rmse_for_tau(1.0 / 16);
  // tau = 1/16 on a 40k window is comfortably above the accuracy cliff:
  // error should grow by less than ~4x of the full-update error.
  EXPECT_LT(rmse_16, 4.0 * rmse_full + 50.0)
      << "full=" << rmse_full << " tau16=" << rmse_16;
}

// Mini Fig. 8: window algorithms beat the Interval method on freshness
// (error against the true *window* counts, measured mid-interval).
TEST(Integration, WindowBeatsIntervalOnWindowErrorMiniFig8) {
  constexpr std::uint64_t window = 20000;
  // A regime shift makes interval staleness visible: the hot subnet changes
  // halfway through the second interval.
  std::vector<packet> trace;
  xoshiro256 rng(4);
  trace_generator bg(trace_kind::backbone, 5);
  for (int i = 0; i < 90000; ++i) {
    const bool second_regime = i > 50000;
    if (rng.uniform01() < 0.3) {
      const std::uint32_t subnet = second_regime ? 0x14000000u : 0x0A000000u;
      trace.push_back({subnet | static_cast<std::uint32_t>(rng.bounded(1 << 24)), 1});
    } else {
      trace.push_back(bg.next());
    }
  }

  h_memento<source_hierarchy> window_alg(window, 2000, 1.0, 1e-3);
  mst<source_hierarchy> interval_alg(400);
  exact_hhh<source_hierarchy> exact(window);

  const auto hot_new = prefix1d::make_key(0x14000000u, 3);
  double err_window = 0.0;
  double err_interval = 0.0;
  std::size_t checks = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i % window == 0) interval_alg.reset();  // the Interval method's reset
    window_alg.update(trace[i]);
    interval_alg.update(trace[i]);
    exact.update(trace[i]);
    if (i > 55000 && i % 101 == 0) {
      const double truth = static_cast<double>(exact.query(hot_new));
      err_window += std::abs(window_alg.query(hot_new) - truth);
      err_interval += std::abs(interval_alg.query(hot_new) - truth);
      ++checks;
    }
  }
  ASSERT_GT(checks, 100u);
  EXPECT_LT(err_window / static_cast<double>(checks),
            err_interval / static_cast<double>(checks))
      << "window algorithm must track the regime change more accurately";
}

// Mini Fig. 9: at the same byte budget, Batch beats Aggregation on
// network-wide estimate error.
TEST(Integration, BatchBeatsAggregationMiniFig9) {
  constexpr std::uint64_t window = 30000;
  auto trace = make_trace(trace_kind::backbone, 150000, /*seed=*/8);
  exact_hhh<source_hierarchy> exact(window);

  auto run_method = [&](netwide::comm_method method) {
    netwide::harness_config cfg;
    cfg.method = method;
    cfg.num_points = 10;
    cfg.window = window;
    cfg.budget = netwide::budget_model{1.0, 64.0, 4.0};
    cfg.counters = 2048;
    netwide::netwide_harness<source_hierarchy> harness(cfg);

    exact_hhh<source_hierarchy> truth(window);
    double abs_err = 0.0;
    std::size_t checks = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      harness.ingest(trace[i]);
      truth.update(trace[i]);
      if (i > 2 * window && i % 211 == 0) {
        const auto key = source_hierarchy::key_at(trace[i], 3);
        abs_err += std::abs(harness.estimate(key) - static_cast<double>(truth.query(key)));
        ++checks;
      }
    }
    return abs_err / static_cast<double>(checks);
  };

  const double batch_err = run_method(netwide::comm_method::batch);
  const double agg_err = run_method(netwide::comm_method::aggregation);
  EXPECT_LT(batch_err, agg_err)
      << "batch=" << batch_err << " aggregation=" << agg_err;
}

// Mini Fig. 10: Batch detects flooding subnets no later than Aggregation,
// and both eventually block all attackers.
TEST(Integration, BatchDetectsFloodFasterThanAggregationMiniFig10) {
  auto base = make_trace(trace_kind::backbone, 60000, /*seed=*/14);
  flood_config fc;
  fc.num_subnets = 8;
  fc.flood_probability = 0.7;
  fc.start_range = 10000;
  const auto flood = inject_flood(base, fc);

  auto run_method = [&](netwide::comm_method method) {
    lb::cluster_config cfg;
    cfg.method = method;
    cfg.window = 40000;
    cfg.counters = 1024;
    cfg.theta = 0.02;
    cfg.detect_stride = 250;
    lb::cluster cluster(cfg);
    std::uint64_t missed = 0;
    for (const auto& lp : flood.packets) {
      const auto v = cluster.handle(lb::request_from_packet(lp.pkt));
      missed += lp.is_attack && v == lb::verdict::forwarded;
    }
    return missed;
  };

  const auto batch_missed = run_method(netwide::comm_method::batch);
  const auto agg_missed = run_method(netwide::comm_method::aggregation);
  EXPECT_LT(batch_missed, agg_missed)
      << "batch=" << batch_missed << " aggregation=" << agg_missed;
}

// The WCSS == Memento(tau=1) identity, verified behaviorally end to end.
TEST(Integration, WcssIdentityOnRealTrace) {
  auto trace = make_trace(trace_kind::datacenter, 50000, /*seed=*/19);
  memento_sketch<std::uint64_t> a(10000, 256, 1.0, /*seed=*/1);
  auto b = make_wcss<std::uint64_t>(10000, 256);
  for (const auto& p : trace) {
    a.update(flow_id(p));
    b.update(flow_id(p));
  }
  for (std::size_t i = 0; i < trace.size(); i += 503) {
    const auto key = flow_id(trace[i]);
    ASSERT_DOUBLE_EQ(a.query(key), b.query(key));
  }
}

// H-Memento against the windowed Baseline: same trace, similar HHH sets at
// tau = 1 (both are WCSS-grade window algorithms; Fig. 8's accuracy claim).
TEST(Integration, HMementoMatchesBaselineSetsAtTauOne) {
  constexpr std::uint64_t window = 20000;
  auto trace = make_trace(trace_kind::datacenter, 80000, /*seed=*/23);
  h_memento<source_hierarchy> hm(window, 1000 * 5, 1.0, 1e-3);
  baseline_window_mst<source_hierarchy> baseline(window, 1000 * 5);
  exact_hhh<source_hierarchy> exact(window);
  for (const auto& p : trace) {
    hm.update(p);
    baseline.update(p);
    exact.update(p);
  }
  std::unordered_set<std::uint64_t> hm_set;
  for (const auto& e : hm.output(0.05)) hm_set.insert(e.key);
  std::unordered_set<std::uint64_t> baseline_set;
  for (const auto& e : baseline.output(0.05)) baseline_set.insert(e.key);
  // Both must cover the exact HHH set.
  for (const auto& truth : exact.output(0.05)) {
    EXPECT_TRUE(hm_set.count(truth.key));
    EXPECT_TRUE(baseline_set.count(truth.key));
  }
}

}  // namespace
}  // namespace memento
