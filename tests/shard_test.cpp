// Sharded-frontend suite.
//
// The load-bearing property is *differential*: sharded_memento with N shards
// must answer exactly like N standalone memento_sketch references, each
// configured with shard_config_for(cfg, s) and fed the subsequence of keys
// the partitioner assigns to shard s. That licenses every merge shortcut
// (concatenate + global-threshold filter, no cross-shard summation) and
// makes the threaded pool testable: after drain() it must be bit-identical
// to the deterministic frontend fed the same stream.
//
// The statistical properties - phase drift across per-shard window clocks,
// and recall/precision on skewed (Zipf 0.6-1.2) traffic staying within the
// configured epsilon of a single big instance - are pinned with fixed seeds
// so the assertions are deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/memento.hpp"
#include "hierarchy/prefix1d.hpp"
#include "hierarchy/prefix2d.hpp"
#include "shard/partitioner.hpp"
#include "shard/shard_pool.hpp"
#include "shard/sharded_h_memento.hpp"
#include "shard/sharded_memento.hpp"
#include "shard/spsc_queue.hpp"
#include "sketch/exact_window.hpp"
#include "trace/trace_generator.hpp"

namespace memento {
namespace {

using sketch = memento_sketch<std::uint64_t>;
using sharded = sharded_memento<std::uint64_t>;

std::vector<std::uint64_t> skewed_ids(std::size_t n, double alpha, std::uint64_t seed,
                                      std::size_t universe = 1u << 12) {
  trace_generator gen(trace_config{universe, alpha, seed, 0});
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(flow_id(gen.next()));
  return ids;
}

/// Full observable-state equality between two memento instances (the same
/// yardstick batch_test.cpp uses, factored for per-shard comparison).
void expect_identical(const sketch& a, const sketch& b) {
  ASSERT_EQ(a.stream_length(), b.stream_length());
  ASSERT_EQ(a.forced_drains(), b.forced_drains());
  ASSERT_EQ(a.overflow_entries(), b.overflow_entries());
  ASSERT_EQ(a.window_phase(), b.window_phase());
  const auto keys_a = a.monitored_keys();
  ASSERT_EQ(keys_a, b.monitored_keys());
  for (const auto& k : keys_a) {
    ASSERT_DOUBLE_EQ(a.query(k), b.query(k)) << "key " << k;
    ASSERT_DOUBLE_EQ(a.query_lower(k), b.query_lower(k)) << "key " << k;
  }
}

// --- partitioner -----------------------------------------------------------

TEST(ShardPartitioner, DeterministicInRangeAndRoughlyUniform) {
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    shard_partitioner<std::uint64_t> part(n);
    std::vector<std::size_t> hist(n, 0);
    for (std::uint64_t x = 0; x < 64000; ++x) {
      const std::size_t s = part(x);
      ASSERT_LT(s, n);
      ASSERT_EQ(s, part(x));  // pure function
      ++hist[s];
    }
    // Uniformity: each shard within 10% of the ideal share (64000/n draws of
    // a mixed hash; binomial sd is far below this for every n tested).
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_NEAR(static_cast<double>(hist[s]), 64000.0 / static_cast<double>(n),
                  0.1 * 64000.0 / static_cast<double>(n))
          << "shard " << s << "/" << n;
    }
  }
  EXPECT_THROW(shard_partitioner<std::uint64_t>(0), std::invalid_argument);
}

TEST(ShardPartitioner, UniformTableModeAgreesWithHashMode) {
  // The two-level router's uniform table must reproduce HASH-mode routing
  // bit-for-bit (nested-floor identity; the full differential lives in
  // tests/rebalance_test.cpp).
  shard_partitioner<std::uint64_t> hash_mode(4);
  shard_partitioner<std::uint64_t> table_mode(4, shard_table::uniform(4));
  for (std::uint64_t x = 0; x < 64000; ++x) {
    ASSERT_EQ(hash_mode(x), table_mode(x)) << "key " << x;
    ASSERT_LT(table_mode.bucket_of(x), table_mode.buckets());
  }
}

TEST(ShardPartitioner, DecorrelatedFromFlatHashBuckets) {
  // Keys colliding into one shard must not collide inside flat_hash too:
  // among keys owned by shard 0 of 4, the low avalanche bits (which
  // flat_hash masks into buckets) should still be ~uniform.
  shard_partitioner<std::uint64_t> part(4);
  std::vector<std::size_t> low3(8, 0);
  std::size_t owned = 0;
  for (std::uint64_t x = 0; x < 100000; ++x) {
    if (part(x) != 0) continue;
    ++owned;
    ++low3[mix64(std::hash<std::uint64_t>{}(x)) & 7];
  }
  ASSERT_GT(owned, 20000u);
  for (std::size_t b = 0; b < 8; ++b) {
    EXPECT_NEAR(static_cast<double>(low3[b]), static_cast<double>(owned) / 8.0,
                0.1 * static_cast<double>(owned) / 8.0);
  }
}

// --- SPSC ring -------------------------------------------------------------

TEST(SpscRing, SingleThreadWrapAround) {
  spsc_ring<std::uint64_t> ring(8);  // rounds to 8 slots
  ASSERT_EQ(ring.capacity(), 8u);
  std::uint64_t next_val = 0, expect = 0;
  for (int round = 0; round < 100; ++round) {
    // Push 5, pop 5 in uneven chunks: 5 is coprime to the 8-slot ring, so
    // the cursors hit every alignment and wrap repeatedly.
    std::uint64_t vals[5];
    for (auto& v : vals) v = next_val++;
    std::size_t pushed = 0;
    while (pushed < 5) pushed += ring.try_push(vals + pushed, 5 - pushed);
    for (std::size_t popped = 0; popped < 5;) {
      const auto [data, n] = ring.front_span();
      ASSERT_GT(n, 0u);
      const std::size_t take = std::min({n, std::size_t{3}, 5 - popped});
      for (std::size_t i = 0; i < take; ++i) ASSERT_EQ(data[i], expect++);
      ring.pop(take);
      popped += take;
    }
    ASSERT_TRUE(ring.drained());
  }
  ASSERT_EQ(expect, next_val);
}

TEST(SpscRing, FullRingRejectsAndBackpressureWorks) {
  spsc_ring<std::uint64_t> ring(4);
  std::uint64_t vals[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  ASSERT_EQ(ring.try_push(vals, 8), 4u);  // partial accept at capacity
  ASSERT_EQ(ring.try_push(vals + 4, 4), 0u);
  const auto [data, n] = ring.front_span();
  ASSERT_EQ(n, 4u);
  ASSERT_EQ(data[0], 0u);
  ring.pop(2);
  ASSERT_EQ(ring.try_push(vals + 4, 4), 2u);
}

TEST(SpscRing, TwoThreadStressPreservesOrder) {
  // 1M sequential values through a small ring; the consumer asserts it sees
  // exactly 0,1,2,... - any lost/duplicated/reordered slot fails. Run under
  // TSan in CI, this is also the memory-ordering proof for the pool.
  constexpr std::uint64_t kTotal = 1'000'000;
  spsc_ring<std::uint64_t> ring(1024);
  std::atomic<bool> ok{true};
  std::thread consumer([&] {
    std::uint64_t expect = 0;
    while (expect < kTotal) {
      const auto [data, n] = ring.front_span();
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (data[i] != expect++) {
          ok.store(false);
          return;
        }
      }
      ring.pop(n);
    }
  });
  std::uint64_t buf[256];
  std::uint64_t next_val = 0;
  while (next_val < kTotal) {
    const std::size_t m = static_cast<std::size_t>(std::min<std::uint64_t>(256, kTotal - next_val));
    for (std::size_t i = 0; i < m; ++i) buf[i] = next_val + i;
    std::size_t pushed = 0;
    while (pushed < m && ok.load(std::memory_order_relaxed)) {
      const std::size_t p = ring.try_push(buf + pushed, m - pushed);
      if (p == 0) std::this_thread::yield();
      pushed += p;
    }
    next_val += m;
  }
  consumer.join();
  ASSERT_TRUE(ok.load());
}

// --- differential: sharded == per-shard references -------------------------

class ShardedDifferential : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShardedDifferential, MatchesPerShardReferencesAndMergesExactly) {
  const auto [num_shards, inv_tau] = GetParam();
  shard_config cfg;
  cfg.window_size = 3000;
  cfg.counters = 24;
  cfg.tau = 1.0 / inv_tau;
  cfg.seed = 11;
  cfg.shards = static_cast<std::size_t>(num_shards);

  const auto ids = skewed_ids(20000, 1.2, 99 + static_cast<std::uint64_t>(num_shards));

  sharded front(cfg);
  ASSERT_EQ(front.num_shards(), cfg.shards);
  for (std::size_t i = 0; i < ids.size(); i += 257) {
    front.update_batch(ids.data() + i, std::min<std::size_t>(257, ids.size() - i));
  }

  // References: standalone instances fed the partitioned subsequences via
  // scalar update() - crossing the batch/scalar equivalence with the
  // partition, exactly the contract the header documents.
  shard_partitioner<std::uint64_t> part(cfg.shards);
  std::vector<sketch> refs;
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    refs.emplace_back(sharded::shard_config_for(cfg, s));
  }
  for (const auto id : ids) refs[part(id)].update(id);

  ASSERT_EQ(front.stream_length(), ids.size());
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    ASSERT_EQ(front.shard_of(ids[s]), part(ids[s]));
    expect_identical(front.shard(s), refs[s]);
  }

  // Point queries route: equal to the owning reference for hits and misses.
  for (const auto id : {ids[0], ids[7], std::uint64_t{0xdead'beef'0000'1234}}) {
    ASSERT_DOUBLE_EQ(front.query(id), refs[part(id)].query(id));
    ASSERT_DOUBLE_EQ(front.query_lower(id), refs[part(id)].query_lower(id));
  }

  // Set queries merge by concatenation + global filter: rebuild the merge by
  // hand from the references and demand bit-equality (same gather order,
  // same comparator => same output, ties included).
  for (double theta : {0.01, 0.05}) {
    const double bar = theta * static_cast<double>(front.window_size());
    std::vector<sharded::heavy_hitter> manual;
    for (auto& ref : refs) {
      ref.for_each_candidate([&](const std::uint64_t& key, double est) {
        if (est >= bar) manual.push_back({key, est});
      });
    }
    std::sort(manual.begin(), manual.end(),
              [](const auto& a, const auto& b) { return a.estimate > b.estimate; });
    const auto merged = front.heavy_hitters(theta);
    ASSERT_EQ(merged.size(), manual.size()) << "theta " << theta;
    for (std::size_t i = 0; i < merged.size(); ++i) {
      ASSERT_EQ(merged[i].key, manual[i].key) << "rank " << i;
      ASSERT_DOUBLE_EQ(merged[i].estimate, manual[i].estimate);
    }
  }

  // top(k): contained in the union of candidates and internally sorted.
  const auto t = front.top(10);
  ASSERT_LE(t.size(), 10u);
  for (std::size_t i = 1; i < t.size(); ++i) ASSERT_GE(t[i - 1].estimate, t[i].estimate);
  for (const auto& hh : t) ASSERT_DOUBLE_EQ(hh.estimate, refs[part(hh.key)].query(hh.key));
}

INSTANTIATE_TEST_SUITE_P(Geometries, ShardedDifferential,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(1, 16)));

TEST(ShardedMemento, ScalarAndBatchIngestAreIdentical) {
  // Routing one packet at a time and partitioning bursts must leave every
  // shard with the same owned subsequence, hence identical state.
  shard_config cfg;
  cfg.window_size = 2000;
  cfg.counters = 16;
  cfg.tau = 1.0 / 4;
  cfg.seed = 5;
  cfg.shards = 3;
  const auto ids = skewed_ids(15000, 1.0, 21);

  sharded one_by_one(cfg);
  sharded batched(cfg);
  for (const auto id : ids) one_by_one.update(id);
  for (std::size_t i = 0; i < ids.size(); i += 501) {
    batched.update_batch(ids.data() + i, std::min<std::size_t>(501, ids.size() - i));
  }
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    expect_identical(one_by_one.shard(s), batched.shard(s));
  }
}

TEST(ShardedMemento, GlobalBudgetSplitKeepsErrorWidth) {
  // W and k divide by N, so the overflow threshold - and with it the
  // absolute estimate width - matches the single-instance geometry.
  shard_config cfg;
  cfg.window_size = 1 << 16;
  cfg.counters = 256;
  cfg.shards = 4;
  sharded front(cfg);
  sketch single(cfg.window_size, cfg.counters, cfg.tau, cfg.seed);
  ASSERT_DOUBLE_EQ(front.estimate_width(), single.estimate_width());
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    ASSERT_EQ(front.shard(s).overflow_threshold(), single.overflow_threshold());
    ASSERT_EQ(front.shard(s).counters(), cfg.counters / cfg.shards);
  }
  ASSERT_GE(front.window_size(), cfg.window_size);
}

TEST(ShardedMemento, RejectsDegenerateGlobalBudgets) {
  // shard_share floors per-shard slices at 1, so the frontend must reject
  // zero GLOBAL budgets itself, exactly like the single-instance ctor.
  shard_config cfg;
  cfg.shards = 0;
  EXPECT_THROW(sharded{cfg}, std::invalid_argument);
  cfg.shards = 2;
  cfg.window_size = 0;
  EXPECT_THROW(sharded{cfg}, std::invalid_argument);
  cfg.window_size = 100;
  cfg.counters = 0;
  EXPECT_THROW(sharded{cfg}, std::invalid_argument);
  EXPECT_THROW((sharded_h_memento<source_hierarchy>(h_memento_config{0, 10, 1.0, 1e-3, 1}, 2)),
               std::invalid_argument);
}

// --- threaded pool ---------------------------------------------------------

TEST(ShardedPool, DrainedPoolMatchesDeterministicFrontend) {
  shard_config cfg;
  cfg.window_size = 30000;
  cfg.counters = 64;
  cfg.tau = 1.0 / 8;
  cfg.seed = 17;
  cfg.shards = 3;
  const auto ids = skewed_ids(200000, 1.2, 33, 1u << 14);

  sharded reference(cfg);
  sharded_memento_pool<std::uint64_t> pool(cfg, /*ring_capacity=*/1u << 12);
  for (std::size_t i = 0; i < ids.size(); i += 700) {
    const std::size_t n = std::min<std::size_t>(700, ids.size() - i);
    reference.update_batch(ids.data() + i, n);
    pool.ingest(ids.data() + i, n);
  }
  pool.drain();

  ASSERT_EQ(pool.frontend().stream_length(), reference.stream_length());
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    expect_identical(pool.frontend().shard(s), reference.shard(s));
  }
  const auto hh_pool = pool.heavy_hitters(0.01);
  const auto hh_ref = reference.heavy_hitters(0.01);
  ASSERT_EQ(hh_pool.size(), hh_ref.size());
  for (std::size_t i = 0; i < hh_pool.size(); ++i) {
    ASSERT_EQ(hh_pool[i].key, hh_ref[i].key);
    ASSERT_DOUBLE_EQ(hh_pool[i].estimate, hh_ref[i].estimate);
  }
}

TEST(ShardedPool, InterleavedIngestAndQueryRounds) {
  // drain()-then-query must be safe mid-stream, repeatedly (the monitoring
  // pattern: query every epoch while ingest continues afterwards).
  shard_config cfg;
  cfg.window_size = 8000;
  cfg.counters = 32;
  cfg.shards = 2;
  const auto ids = skewed_ids(60000, 1.2, 55);

  sharded reference(cfg);
  sharded_memento_pool<std::uint64_t> pool(cfg, 1u << 10);
  for (int round = 0; round < 6; ++round) {
    const std::size_t begin = static_cast<std::size_t>(round) * 10000;
    for (std::size_t i = begin; i < begin + 10000; i += 333) {
      const std::size_t n = std::min<std::size_t>(333, begin + 10000 - i);
      reference.update_batch(ids.data() + i, n);
      pool.ingest(ids.data() + i, n);
    }
    ASSERT_EQ(pool.stream_length(), reference.stream_length());  // drains internally
    const auto top_pool = pool.top(5);
    const auto top_ref = reference.top(5);
    ASSERT_EQ(top_pool.size(), top_ref.size()) << "round " << round;
    for (std::size_t i = 0; i < top_pool.size(); ++i) {
      ASSERT_EQ(top_pool[i].key, top_ref[i].key) << "round " << round << " rank " << i;
    }
  }
}

TEST(ShardedPool, BlockPolicyIsLosslessAndAccountsOccupancy) {
  shard_config cfg;
  cfg.window_size = 8000;
  cfg.counters = 32;
  cfg.shards = 2;
  const auto ids = skewed_ids(40000, 1.0, 71);

  sharded_memento_pool<std::uint64_t> pool(cfg, /*ring_capacity=*/256,
                                           backpressure_policy::block);
  for (std::size_t i = 0; i < ids.size(); i += 2048) {
    const std::size_t n = std::min<std::size_t>(2048, ids.size() - i);
    pool.ingest(ids.data() + i, n);  // bursts far exceed the rings: must wait
  }
  pool.drain();
  ASSERT_EQ(pool.policy(), backpressure_policy::block);
  EXPECT_EQ(pool.total_drops(), 0u);
  std::uint64_t enqueued = 0;
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    const auto& st = pool.ingest_stats(s);
    EXPECT_EQ(st.drops, 0u);
    EXPECT_LE(st.occupancy_hwm, 256u);
    EXPECT_GT(st.occupancy_hwm, 0u);
    enqueued += st.enqueued;
  }
  EXPECT_EQ(enqueued, ids.size());
  EXPECT_EQ(pool.stream_length(), ids.size());
}

TEST(ShardedPool, DropPolicyCountsEveryKeyExactlyOnce) {
  shard_config cfg;
  cfg.window_size = 8000;
  cfg.counters = 32;
  cfg.shards = 2;
  const auto ids = skewed_ids(200000, 1.0, 73);

  sharded_memento_pool<std::uint64_t> pool(cfg, /*ring_capacity=*/64,
                                           backpressure_policy::drop);
  // One huge burst per shard guarantees overflow regardless of scheduling:
  // a 64-slot ring cannot absorb ~100k keys in one offer.
  pool.ingest(ids.data(), ids.size());
  pool.drain();
  std::uint64_t enqueued = 0, drops = 0;
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    enqueued += pool.ingest_stats(s).enqueued;
    drops += pool.ingest_stats(s).drops;
  }
  EXPECT_EQ(enqueued + drops, ids.size());  // exactly once: enqueued xor dropped
  EXPECT_GT(drops, 0u);
  EXPECT_EQ(pool.total_drops(), drops);
  // The sketch saw precisely the accepted prefix - drops never half-applied.
  EXPECT_EQ(pool.stream_length(), enqueued);
}

TEST(SpscRing, ApproxSizeIsExactFromTheProducerThread) {
  spsc_ring<std::uint64_t> ring(8);
  EXPECT_EQ(ring.approx_size(), 0u);
  const std::uint64_t xs[5] = {1, 2, 3, 4, 5};
  ASSERT_EQ(ring.try_push(xs, 5), 5u);
  EXPECT_EQ(ring.approx_size(), 5u);
  const auto [data, n] = ring.front_span();
  (void)data;
  ring.pop(n);
  EXPECT_EQ(ring.approx_size(), 0u);
}

// --- phase drift -----------------------------------------------------------

TEST(ShardedMemento, PhaseDriftConcentratesAroundIdealShare) {
  // With hashed partitioning each shard's packet count is Binomial(n, 1/N);
  // the realized skew must sit within a few standard deviations of 0 and
  // the per-shard window clocks must stay valid. Fixed seed => exact rerun.
  shard_config cfg;
  cfg.window_size = 1 << 16;
  cfg.counters = 64;
  cfg.shards = 8;
  cfg.seed = 7;
  sharded front(cfg);
  const auto ids = skewed_ids(400000, 0.8, 77, 1u << 20);
  front.update_batch(ids.data(), ids.size());

  const double n = static_cast<double>(ids.size());
  const double per_shard = n / static_cast<double>(cfg.shards);
  // Heavy flows make shard loads super-binomial (one flow's packets all
  // stack on one shard); alpha = 0.8 over 2^20 flows keeps the top flow
  // ~1.5% of the stream, so 6 "binomial sigmas" plus that mass is generous
  // yet tight enough to catch a broken partitioner (which skews by O(n)).
  const double slack = 6.0 * std::sqrt(per_shard) + 0.02 * n;
  EXPECT_LT(front.stream_skew(), slack);
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    const auto& shard = front.shard(s);
    EXPECT_GT(static_cast<double>(shard.stream_length()), per_shard - slack);
    EXPECT_LT(shard.window_phase(), shard.window_size());
    total += shard.stream_length();
  }
  ASSERT_EQ(total, ids.size());  // partition, not sampling: every packet lands once
}

// --- skew: recall/precision vs a single instance ---------------------------

/// (alpha, theta, counters): theta scales with the skew so every trace
/// actually has heavy hitters at the bar (a flat Zipf 0.6 mix tops out well
/// below 2%), and the counter budget scales the other way so the bar stays
/// above the sketch's resolution (bar > 2T, or the report is pure
/// Space-Saving churn noise for sharded and single instance alike).
class ShardedSkew : public ::testing::TestWithParam<std::tuple<double, double, std::size_t>> {};

TEST_P(ShardedSkew, RecallAndPrecisionStayWithinConfiguredEpsilon) {
  const auto [alpha, theta, kCounters] = GetParam();
  constexpr std::uint64_t kWindow = 100000;

  shard_config cfg;
  cfg.window_size = kWindow;
  cfg.counters = kCounters;
  cfg.shards = 4;
  cfg.seed = 13;
  sharded front(cfg);
  sketch single(kWindow, kCounters, 1.0, 13);
  exact_window<std::uint64_t> oracle(kWindow);
  // Per-shard oracles over the partitioned subsequences, sized to each
  // shard's (rounded) window: the reference for the strict one-sidedness
  // guarantee, which holds per shard with NO drift fuzz.
  std::vector<exact_window<std::uint64_t>> shard_oracles;
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    shard_oracles.emplace_back(front.shard(s).window_size());
  }

  const auto ids = skewed_ids(300000, alpha, 101, 1u << 14);
  for (const auto id : ids) {
    front.update(id);
    single.update(id);
    oracle.add(id);
    shard_oracles[front.shard_of(id)].add(id);
  }

  const double bar = theta * static_cast<double>(kWindow);
  std::vector<std::uint64_t> truth;
  oracle.for_each([&](const std::uint64_t& key, std::uint64_t count) {
    if (static_cast<double>(count) >= bar) truth.push_back(key);
  });
  ASSERT_FALSE(truth.empty()) << "alpha " << alpha << ": trace produced no heavy hitters";

  // Strict one-sidedness per shard: every true heavy hitter's routed
  // estimate dominates its count in the owning shard's window. No fuzz -
  // this is the hard guarantee sharding preserves exactly.
  for (const auto& key : truth) {
    const std::size_t s = front.shard_of(key);
    EXPECT_GE(front.query(key), static_cast<double>(shard_oracles[s].query(key)))
        << "one-sidedness broken for " << key << " on shard " << s;
  }

  // Coverage-corrected global estimates: shard s's window spans
  // ~window_coverage(s) global packets, so under stationarity the routed
  // estimate matches the global count after rescaling by W/C_s, within the
  // (coverage-scaled) epsilon width plus a generous stationarity fuzz.
  std::sort(truth.begin(), truth.end(), [&](const auto& a, const auto& b) {
    return oracle.query(a) > oracle.query(b);
  });
  for (std::size_t i = 0; i < std::min<std::size_t>(10, truth.size()); ++i) {
    const std::uint64_t key = truth[i];
    const double exact = static_cast<double>(oracle.query(key));
    const double coverage = front.window_coverage(front.shard_of(key));
    const double scaled = front.query(key) * static_cast<double>(kWindow) / coverage;
    EXPECT_NEAR(scaled, exact, front.estimate_width() + 0.35 * exact)
        << "rank " << i << " alpha " << alpha << " coverage " << coverage;
  }

  // Recall/precision vs the single instance at the same theta: sharding may
  // only shift *borderline* flows (within the coverage drift of the bar).
  const auto found = front.heavy_hitters(theta);
  const auto found_single = single.heavy_hitters(theta);
  auto in = [](const auto& set, const std::uint64_t& key) {
    return std::any_of(set.begin(), set.end(), [&](const auto& hh) { return hh.key == key; });
  };
  std::size_t hit = 0, hit_single = 0;
  for (const auto& key : truth) {
    if (in(found, key)) ++hit;
    if (in(found_single, key)) ++hit_single;
    if (!in(found, key)) {
      // Anything missed must be borderline: inside the worst coverage
      // shrink (bounded by the shard's realized load share) of the bar.
      double worst_coverage = 1.0;
      for (std::size_t s = 0; s < cfg.shards; ++s) {
        worst_coverage = std::min(
            worst_coverage, front.window_coverage(s) / static_cast<double>(kWindow));
      }
      EXPECT_LT(static_cast<double>(oracle.query(key)) * worst_coverage, 1.1 * bar)
          << "missed a flow clearly above the bar even after coverage shrink: " << key;
    }
  }
  const double recall = static_cast<double>(hit) / static_cast<double>(truth.size());
  const double recall_single =
      static_cast<double>(hit_single) / static_cast<double>(truth.size());
  EXPECT_GE(recall, recall_single - 0.1) << "alpha " << alpha;
  EXPECT_GE(recall, 0.8) << "alpha " << alpha;

  // Precision proxy: sharding must not materially widen the report. Both
  // instances over-report by design (one-sided estimates); the sharded
  // report may exceed the single one only by the borderline band.
  EXPECT_LE(found.size(), found_single.size() + truth.size() + 16) << "alpha " << alpha;
  ASSERT_DOUBLE_EQ(front.estimate_width(), single.estimate_width());
}

INSTANTIATE_TEST_SUITE_P(ZipfAlphas, ShardedSkew,
                         ::testing::Values(std::make_tuple(0.6, 0.004, std::size_t{1024}),
                                           std::make_tuple(0.9, 0.01, std::size_t{512}),
                                           std::make_tuple(1.2, 0.02, std::size_t{256})));

// --- hierarchical smoke path -----------------------------------------------

TEST(ShardedHMemento, RoutingKeepsNonRootPrefixesTogether) {
  sharded_h_memento<source_hierarchy> front(h_memento_config{4000, 40, 1.0, 1e-3, 3}, 4);
  trace_generator gen(trace_kind::datacenter, 9);
  for (int i = 0; i < 1000; ++i) {
    const packet p = gen.next();
    const std::size_t owner = front.shard_of(p);
    for (std::size_t level = 0; level < source_hierarchy::hierarchy_size - 1; ++level) {
      ASSERT_EQ(front.shard_of_key(source_hierarchy::key_at(p, level)), owner)
          << "level " << level << " escaped its packet's shard";
    }
  }
}

TEST(ShardedHMemento, ScalarAndBatchIngestAgreeAndRootSums) {
  const auto packets = make_trace(trace_kind::datacenter, 30000, 27);
  const h_memento_config cfg{10000, 160, 1.0 / 4, 1e-3, 8};

  sharded_h_memento<source_hierarchy> one_by_one(cfg, 3);
  sharded_h_memento<source_hierarchy> batched(cfg, 3);
  for (const auto& p : packets) one_by_one.update(p);
  for (std::size_t i = 0; i < packets.size(); i += 777) {
    batched.update_batch(packets.data() + i, std::min<std::size_t>(777, packets.size() - i));
  }
  ASSERT_EQ(one_by_one.stream_length(), batched.stream_length());
  ASSERT_EQ(one_by_one.stream_length(), packets.size());

  const auto out_a = one_by_one.output(0.05);
  const auto out_b = batched.output(0.05);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    ASSERT_EQ(out_a[i].key, out_b[i].key);
    ASSERT_DOUBLE_EQ(out_a[i].conditioned_frequency, out_b[i].conditioned_frequency);
  }

  // The root's upper bound sums per-shard one-sided bounds, so it must
  // dominate the sum of the shards' windows (= everything in the window).
  const std::uint64_t root = prefix1d::make_key(0, source_hierarchy::num_levels - 1);
  EXPECT_GE(one_by_one.query(root), 0.0);
  double manual = 0.0;
  for (std::size_t s = 0; s < one_by_one.num_shards(); ++s) {
    manual += one_by_one.shard(s).query(root);
    // The phase passthrough stays inside the shard's frame clock.
    EXPECT_LT(one_by_one.shard(s).window_phase(), one_by_one.shard(s).window_size());
  }
  ASSERT_DOUBLE_EQ(one_by_one.query(root), manual);
}

TEST(ShardedHMemento, UniformTableRoutesIdenticallyToHashMode) {
  // TABLE-mode construction with the uniform layout must be observationally
  // identical to HASH mode: same routing decision for every packet and the
  // same HHH output after the same stream - the no-op guarantee the
  // rebalancer's stickiness band relies on.
  const h_memento_config cfg{8000, 120, 0.5, 1e-3, 31};
  sharded_h_memento<source_hierarchy> hash_mode(cfg, 3);
  sharded_h_memento<source_hierarchy> table_mode(cfg, 3, shard_table::uniform(3));

  const auto packets = make_trace(trace_kind::backbone, 30000, 33);
  for (const auto& p : packets) {
    ASSERT_EQ(hash_mode.shard_of(p), table_mode.shard_of(p));
  }
  hash_mode.update_batch(packets.data(), packets.size());
  table_mode.update_batch(packets.data(), packets.size());
  const auto oa = hash_mode.output(0.03);
  const auto ob = table_mode.output(0.03);
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) {
    ASSERT_EQ(oa[i].key, ob[i].key);
    ASSERT_DOUBLE_EQ(oa[i].conditioned_frequency, ob[i].conditioned_frequency);
  }

  // A weighted table actually redirects: move one bucket and some packet
  // must follow it, with shard_of_key tracking shard_of throughout.
  shard_table skewed = shard_table::uniform(3);
  skewed.to_shard[0] = 2;
  sharded_h_memento<source_hierarchy> weighted(cfg, 3, skewed);
  bool moved = false;
  for (const auto& p : packets) {
    const std::size_t owner = weighted.shard_of(p);
    moved = moved || owner != hash_mode.shard_of(p);
    ASSERT_EQ(weighted.shard_of_key(source_hierarchy::key_at(p, 0)), owner);
  }
  EXPECT_TRUE(moved) << "a redirected bucket never received a packet";
}

// --- 2-D hierarchical sharding ----------------------------------------------

TEST(ShardedHMemento2D, RoutablePatternsStayWithTheirPacket) {
  using front_t = sharded_h_memento<two_dim_hierarchy>;
  front_t front(h_memento_config{4000, 100, 1.0, 1e-3, 3}, 4);
  trace_generator gen(trace_kind::datacenter, 9);
  for (int i = 0; i < 1000; ++i) {
    const packet p = gen.next();
    const std::size_t owner = front.shard_of(p);
    for (std::size_t i2 = 0; i2 < two_dim_hierarchy::hierarchy_size; ++i2) {
      const prefix2d k = two_dim_hierarchy::key_at(p, i2);
      // Routable iff BOTH dimensions are at least as specific as the /8
      // routing pair; those prefixes must land on their packet's shard.
      const bool expect_routable = k.src_depth <= 3 && k.dst_depth <= 3;
      ASSERT_EQ(front_t::routable(k), expect_routable);
      if (expect_routable) {
        ASSERT_EQ(front.shard_of_key(k), owner) << "pattern " << i2;
        ASSERT_EQ(front.bucket_of(k),
                  front.bucket_of(prefix2::make(p.src, 3, p.dst, 3)));
      } else {
        ASSERT_EQ(front.bucket_of(k), front_t::npos);
      }
    }
  }
}

TEST(ShardedHMemento2D, ScalarAndBatchIngestAgreeAndWildcardsSum) {
  const auto packets = make_trace(trace_kind::datacenter, 30000, 27);
  const h_memento_config cfg{10000, 400, 1.0 / 4, 1e-3, 8};

  sharded_h_memento<two_dim_hierarchy> one_by_one(cfg, 3);
  sharded_h_memento<two_dim_hierarchy> batched(cfg, 3);
  for (const auto& p : packets) one_by_one.update(p);
  for (std::size_t i = 0; i < packets.size(); i += 777) {
    batched.update_batch(packets.data() + i, std::min<std::size_t>(777, packets.size() - i));
  }
  ASSERT_EQ(one_by_one.stream_length(), batched.stream_length());

  const auto out_a = one_by_one.output(0.05);
  const auto out_b = batched.output(0.05);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    ASSERT_EQ(out_a[i].key, out_b[i].key);
    ASSERT_DOUBLE_EQ(out_a[i].conditioned_frequency, out_b[i].conditioned_frequency);
  }

  // Every wildcard-dimension pattern is answered by summation over shards;
  // spot-check a (src /16, dst *) query and the root against the manual sum.
  const packet probe = packets[0];
  for (const prefix2d k : {prefix2::make(probe.src, 2, probe.dst, 4),
                           prefix2::make(0, 4, 0, 4)}) {
    double manual = 0.0;
    for (std::size_t s = 0; s < one_by_one.num_shards(); ++s) {
      manual += one_by_one.shard(s).query(k);
    }
    ASSERT_DOUBLE_EQ(one_by_one.query(k), manual);
  }
}

// --- coverage-scaled detection bars ------------------------------------------

TEST(CoverageScaledDetection, OverloadedShardStopsFlickeringFlatFrontend) {
  // Construct the drift scenario of docs/ACCURACY.md: shard 0 carries ~44%
  // of the traffic (ideal share: 25%), so its window spans ~16/7 fewer
  // global packets than the nominal W and a TRUE heavy hitter routed there
  // sits visibly below the global bar - the flicker. The coverage-scaled
  // variant must recover it without inventing hitters elsewhere.
  const std::size_t kShards = 4;
  constexpr std::uint64_t kWindow = 16000;
  sharded front(shard_config{kWindow, 1024, 1.0, 5, kShards});

  std::vector<std::uint64_t> hot_mice, cold_mice;
  std::uint64_t id = 1;
  while (hot_mice.size() < 2000) {
    if (front.shard_of(id) == 0) hot_mice.push_back(id);
    ++id;
  }
  while (cold_mice.size() < 3000) {
    if (front.shard_of(id) != 0) cold_mice.push_back(id);
    ++id;
  }
  std::uint64_t borderline = id;
  while (front.shard_of(borderline) != 0) ++borderline;

  // 16-packet rounds: 6 hot mice + 9 cold mice + 1 borderline; shard 0's
  // realized share is 7/16. The borderline flow is 1/16 of global traffic.
  exact_window<std::uint64_t> oracle(kWindow);
  std::size_t hot_i = 0, cold_i = 0;
  for (int round = 0; round < 4000; ++round) {
    for (int j = 0; j < 6; ++j) {
      const auto k = hot_mice[hot_i++ % hot_mice.size()];
      front.update(k);
      oracle.add(k);
    }
    for (int j = 0; j < 9; ++j) {
      const auto k = cold_mice[cold_i++ % cold_mice.size()];
      front.update(k);
      oracle.add(k);
    }
    front.update(borderline);
    oracle.add(borderline);
  }

  const double theta = 0.05;
  const double bar = theta * static_cast<double>(kWindow);
  ASSERT_GE(static_cast<double>(oracle.query(borderline)), bar)
      << "construction broke: the borderline flow must be a true hitter";
  ASSERT_GT(detection::coverage_scale(static_cast<double>(kWindow), front.window_coverage(0)),
            1.3)
      << "construction broke: shard 0 must be clearly overloaded";

  auto contains = [](const auto& set, std::uint64_t key) {
    return std::any_of(set.begin(), set.end(), [&](const auto& hh) { return hh.key == key; });
  };
  const auto plain = front.heavy_hitters(theta);
  const auto scaled = front.heavy_hitters_coverage_scaled(theta);
  EXPECT_FALSE(contains(plain, borderline)) << "flicker scenario no longer reproduces";
  EXPECT_TRUE(contains(scaled, borderline));

  // No invented hitters: everything the scaled variant reports must carry
  // real window mass near the bar (the clamp bounds how far a bar can sink).
  for (const auto& hh : scaled) {
    EXPECT_GE(static_cast<double>(oracle.query(hh.key)),
              bar / (2.0 * detection::kCoverageScaleClamp))
        << "key " << hh.key;
  }
}

TEST(CoverageScaledDetection, OverloadedShardStopsFlickeringHHHFrontend) {
  // The hierarchical version of the same drift scenario: a borderline /32
  // whose /8 routes to the overloaded shard is missed by output() but
  // recovered by output_coverage_scaled(). Geometry is sized so that
  // theta * W clearly dominates the 2Z*sqrt(V*W) sampling compensation.
  using front_t = sharded_h_memento<source_hierarchy>;
  constexpr std::uint64_t kWindow = 200000;  // 50000 per shard
  const h_memento_config cfg{kWindow, 2048, 1.0, 1e-3, 11};
  front_t front(cfg, 4);

  // A hot /8 block and the borderline address inside it: same route key,
  // same shard. Mice vary the low 24 bits, so only the shared /8 ancestor
  // aggregates them.
  const std::uint32_t hot_octet = [&] {
    for (std::uint32_t o = 1;; ++o) {
      const packet probe{o << 24, 0};
      if (front.shard_of(probe) == 0) return o;
    }
  }();
  const std::uint32_t borderline_src = (hot_octet << 24) | 0x00010203u;
  xoshiro256 rng(77);

  // 10-packet rounds: 1 borderline + 4 hot mice (same /8) + 5 cold mice
  // (other shards): shard 0's share is 1/2, the borderline flow 1/10.
  exact_window<std::uint64_t> oracle(kWindow);
  std::vector<packet> cold;
  {
    trace_generator gen(trace_kind::backbone, 13);
    while (cold.size() < 50000) {
      const packet p = gen.next();
      if (front.shard_of(p) != 0) cold.push_back(p);
    }
  }
  std::size_t cold_i = 0;
  auto feed = [&](const packet& p) {
    front.update(p);
    oracle.add(source_hierarchy::full_key(p));
  };
  for (int round = 0; round < 80000; ++round) {
    feed(packet{borderline_src, 0});
    for (int j = 0; j < 4; ++j) {
      feed(packet{(hot_octet << 24) | static_cast<std::uint32_t>(rng.bounded(1 << 24)), 0});
    }
    for (int j = 0; j < 5; ++j) feed(cold[cold_i++ % cold.size()]);
  }

  const double theta = 0.08;
  const double bar = theta * static_cast<double>(kWindow);
  const auto key = prefix1d::make_key(borderline_src, 0);
  ASSERT_GE(static_cast<double>(oracle.query(key)), 1.2 * bar)
      << "construction broke: the borderline /32 must be a clear true hitter";
  ASSERT_GT(detection::coverage_scale(static_cast<double>(kWindow), front.window_coverage(0)),
            1.5);

  auto contains = [&](const auto& out) {
    return std::any_of(out.begin(), out.end(), [&](const auto& e) { return e.key == key; });
  };
  EXPECT_FALSE(contains(front.output(theta))) << "flicker scenario no longer reproduces";
  EXPECT_TRUE(contains(front.output_coverage_scaled(theta)));
}

TEST(ShardedHMemento, FindsTheHeavyPrefixesASingleInstanceFinds) {
  // Inject a dominant /32 (12% of traffic): both the single instance and the
  // sharded smoke path must report it (or an ancestor covering it) at
  // theta = 0.05, and the sharded routed estimate must be one-sided for it.
  trace_generator gen(trace_kind::datacenter, 41);
  std::vector<packet> packets;
  exact_window<std::uint64_t> oracle(20000);
  const packet heavy{0xC0A80101u, 0x0A000001u};
  for (int i = 0; i < 60000; ++i) {
    const packet p = (i % 8 == 0) ? heavy : gen.next();
    packets.push_back(p);
    oracle.add(source_hierarchy::full_key(p));
  }

  const h_memento_config cfg{20000, 200, 1.0, 1e-3, 19};
  h_memento<source_hierarchy> single(cfg);
  sharded_h_memento<source_hierarchy> front(cfg, 4);
  for (const auto& p : packets) {
    single.update(p);
    front.update(p);
  }

  const auto key = source_hierarchy::full_key(heavy);
  const double exact = static_cast<double>(oracle.query(key));
  ASSERT_GT(exact, 0.05 * 20000.0);
  // The routed estimate is one-sided w.r.t. the owning shard's window. That
  // shard is overloaded (it owns a 12.5%-of-traffic flow), so its window
  // covers ~(1/4)/(1/4 + 0.125*3/4) = 73% of the global one - the estimate
  // may legitimately sit below the global exact count by that factor (the
  // documented systematic phase drift; see sharded_memento.hpp).
  EXPECT_GE(front.query(key), 0.65 * exact);
  EXPECT_GE(single.query(key), exact);

  auto covers = [&](const auto& out) {
    return std::any_of(out.begin(), out.end(), [&](const auto& e) {
      return source_hierarchy::generalizes(e.key, key);
    });
  };
  EXPECT_TRUE(covers(single.output(0.05)));
  EXPECT_TRUE(covers(front.output(0.05)));
}

}  // namespace
}  // namespace memento
