// Autonomic control-plane suite: the controller brain's decision semantics
// against a scripted host + fake clock (exact event sequences pinned), the
// host bindings against real frontends, and the kill/restore fault-injection
// soak against the threaded pool (run under TSan in CI via -L controller).
//
// Load-bearing pins:
//   * square-wave load oscillating inside the hysteresis band produces ZERO
//     alarm transitions and zero rebalances (the flap-free guarantee);
//   * one sustained excursion triggers exactly one rebalance, re-armed only
//     after the alarm clears; the cooldown defers (rebalance_suppressed)
//     and retries, and a self-resolving excursion drops the deferred
//     trigger;
//   * watermark scaling doubles/halves the shard count with clamps, and an
//     N -> M -> N round trip driven by the controller keeps queries stable
//     and the global stream length EXACT (the reshard remainder fix);
//   * checkpoint cadence is honored on the injected clock;
//   * a shard killed mid-stream is restored from the latest background
//     checkpoint with exact packet accounting and elephant recall intact.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "control/checkpoint.hpp"
#include "control/clock.hpp"
#include "control/controller.hpp"
#include "control/events.hpp"
#include "control/hosts.hpp"
#include "control/service.hpp"
#include "hierarchy/prefix1d.hpp"
#include "shard/rebalance.hpp"
#include "shard/shard_pool.hpp"
#include "shard/sharded_h_memento.hpp"
#include "shard/sharded_memento.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"

namespace memento {
namespace {

using sharded = sharded_memento<std::uint64_t>;
using partitioner = shard_partitioner<std::uint64_t>;
using ev = control_event;

std::vector<std::uint64_t> skewed_ids(std::size_t n, double alpha, std::uint64_t seed,
                                      std::size_t universe = 1u << 12) {
  trace_generator gen(trace_config{universe, alpha, seed, 0});
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(flow_id(gen.next()));
  return ids;
}

/// First `n` keys >= `start` routed to `shard`, each in a distinct bucket -
/// the same deterministic elephants the rebalance suite uses.
std::vector<std::uint64_t> elephants_on_shard(const partitioner& part, std::size_t shard,
                                              std::size_t n, std::uint64_t start = 1u << 20) {
  std::vector<std::uint64_t> keys;
  std::vector<std::size_t> buckets;
  for (std::uint64_t x = start; keys.size() < n; ++x) {
    if (part(x) != shard) continue;
    const std::size_t b = part.bucket_of(x);
    if (std::find(buckets.begin(), buckets.end(), b) != buckets.end()) continue;
    keys.push_back(x);
    buckets.push_back(b);
  }
  return keys;
}

std::vector<std::uint64_t> elephant_mix(std::size_t n, double alpha, std::uint64_t seed,
                                        const std::vector<std::uint64_t>& elephants,
                                        std::size_t every) {
  trace_generator gen(trace_config{1u << 14, alpha, seed, 0});
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!elephants.empty() && i % every == 0) {
      ids.push_back(elephants[(i / every) % elephants.size()]);
    } else {
      ids.push_back(flow_id(gen.next()));
    }
  }
  return ids;
}

// --- scripted host: the brain's test double ---------------------------------

/// Programmable deployment: the test writes the cumulative counters the
/// brain will sample and records every action the brain takes.
struct script_host {
  std::vector<std::uint64_t> offered;
  std::vector<std::uint64_t> window;
  bool rebalance_result = true;
  bool rescale_result = true;
  std::size_t checkpoint_bytes = 4096;
  int rebalances = 0;
  int checkpoints = 0;
  std::vector<std::size_t> rescale_targets;

  explicit script_host(std::size_t shards, std::uint64_t w = 100000)
      : offered(shards, 0), window(shards, w) {}

  [[nodiscard]] control_sample sample() const { return {offered, window}; }
  bool rebalance() {
    ++rebalances;
    return rebalance_result;
  }
  bool rescale(std::size_t target) {
    rescale_targets.push_back(target);
    if (!rescale_result) return false;
    const std::uint64_t w = window.empty() ? 100000 : window[0];
    offered.assign(target, 0);  // lanes rebuilt: counters restart, like the pool
    window.assign(target, w);
    return true;
  }
  std::size_t checkpoint() {
    ++checkpoints;
    return checkpoint_bytes;
  }

  /// One segment of load at max/min ratio `ratio`: shard 0 carries the
  /// excess, everyone else `base` packets.
  void feed(double ratio, std::uint64_t base = 10000) {
    offered[0] += static_cast<std::uint64_t>(ratio * static_cast<double>(base));
    for (std::size_t i = 1; i < offered.size(); ++i) offered[i] += base;
  }
};

controller_config quiet_config() {
  controller_config cfg;
  cfg.sample_interval_ns = 100'000'000;  // 100 ms
  cfg.min_segment_packets = 4096;
  cfg.load_ratio_high = 1.5;
  cfg.load_ratio_clear = 1.1;
  cfg.sustain_ticks = 2;
  cfg.rebalance_cooldown_ns = 0;
  return cfg;
}

void step(fake_clock& clk, controller& ctl, script_host& host, double ratio,
          std::uint64_t base = 10000) {
  clk.advance_ms(100);
  host.feed(ratio, base);
  ctl.tick(host);
}

// --- hysteresis -------------------------------------------------------------

TEST(Controller, SquareWaveInsideBandNeverFlaps) {
  // Load oscillating between 1.12 and 1.45 - above the clear edge, below
  // the high edge - for 40 ticks: not one decision. THE flap-free pin.
  fake_clock clk;
  controller ctl(quiet_config(), clk);
  script_host host(4);
  clk.advance_ms(100);
  ctl.tick(host);  // baseline tick (never judges)
  for (int i = 0; i < 40; ++i) step(clk, ctl, host, i % 2 == 0 ? 1.45 : 1.12);
  EXPECT_FALSE(ctl.alarm());
  EXPECT_EQ(host.rebalances, 0);
  EXPECT_TRUE(ctl.log().decisions().empty())
      << "decision " << control_event_name(ctl.log().decisions().front());
  // Every judged tick still produced an observable sample record.
  EXPECT_EQ(ctl.log().count(ev::sample), 40u);
}

TEST(Controller, SustainedExcursionTriggersExactlyOnce) {
  // Raise needs `sustain_ticks` consecutive breaches; once the migration
  // lands and the ratio falls to the clear line, the alarm drops and must
  // not re-trigger - a successful migration gets exactly one shot per
  // excursion, a second excursion exactly one more. (A migration that does
  // NOT clear the alarm retries instead - pinned separately below.)
  fake_clock clk;
  controller ctl(quiet_config(), clk);
  script_host host(4);
  clk.advance_ms(100);
  ctl.tick(host);

  step(clk, ctl, host, 1.0);
  step(clk, ctl, host, 2.0);  // breach 1: not sustained yet
  EXPECT_FALSE(ctl.alarm());
  step(clk, ctl, host, 2.0);  // breach 2: raise + rebalance, same tick
  EXPECT_TRUE(ctl.alarm());
  step(clk, ctl, host, 1.05);  // the migration balanced the load: cleared
  EXPECT_FALSE(ctl.alarm());
  // Calm traffic afterward: no further action from the resolved excursion.
  for (int i = 0; i < 4; ++i) step(clk, ctl, host, 1.0);
  EXPECT_EQ(host.rebalances, 1) << "a sustained excursion must fire exactly once";
  step(clk, ctl, host, 2.0);
  step(clk, ctl, host, 2.0);  // second excursion: fires once more
  step(clk, ctl, host, 1.0);

  const std::vector<ev> expected = {ev::alarm_raised,  ev::rebalance_applied, ev::alarm_cleared,
                                    ev::alarm_raised,  ev::rebalance_applied, ev::alarm_cleared};
  EXPECT_EQ(ctl.log().decisions(), expected);
  EXPECT_EQ(host.rebalances, 2);
}

TEST(Controller, OneBreachBelowSustainNeverRaises) {
  fake_clock clk;
  controller ctl(quiet_config(), clk);
  script_host host(4);
  clk.advance_ms(100);
  ctl.tick(host);
  // Single-tick spikes separated by calm: breach counter resets each time.
  for (int i = 0; i < 10; ++i) {
    step(clk, ctl, host, 3.0);
    step(clk, ctl, host, 1.0);
  }
  EXPECT_TRUE(ctl.log().decisions().empty());
  EXPECT_EQ(host.rebalances, 0);
}

TEST(Controller, CooldownDefersThenRetriesAndDropsSelfResolvedTriggers) {
  controller_config cfg = quiet_config();
  cfg.rebalance_cooldown_ns = 1'000'000'000;  // 1 s, ticks every 100 ms
  fake_clock clk;
  controller ctl(cfg, clk);
  script_host host(4);
  clk.advance_ms(100);
  ctl.tick(host);

  // Excursion 1 fires immediately (no cooldown pending yet).
  step(clk, ctl, host, 2.0);
  step(clk, ctl, host, 2.0);  // raise + applied; cooldown until +1s
  step(clk, ctl, host, 1.0);  // cleared
  // Excursion 2 raises inside the cooldown: deferred, logged once, then
  // executed on the first tick past expiry because the skew persists.
  step(clk, ctl, host, 2.0);
  step(clk, ctl, host, 2.0);  // raise + suppressed
  // Cooldown armed at t=300ms runs until t=1300ms; the persistent skew rides
  // it out and the deferred trigger fires exactly on the expiry tick.
  for (int i = 0; i < 7; ++i) step(clk, ctl, host, 2.0);
  EXPECT_EQ(host.rebalances, 2) << "deferred trigger must fire after the cooldown";
  step(clk, ctl, host, 1.0);  // cleared; cooldown now until +1s again
  // Excursion 3 raises inside the new cooldown but resolves itself before
  // expiry: the deferred trigger must be DROPPED, not fired into a
  // balanced deployment.
  step(clk, ctl, host, 2.0);
  step(clk, ctl, host, 2.0);  // raise + suppressed
  step(clk, ctl, host, 1.0);  // cleared: pending dropped
  for (int i = 0; i < 15; ++i) step(clk, ctl, host, 1.0);  // well past the cooldown

  const std::vector<ev> expected = {
      ev::alarm_raised, ev::rebalance_applied,    ev::alarm_cleared,
      ev::alarm_raised, ev::rebalance_suppressed, ev::rebalance_applied, ev::alarm_cleared,
      ev::alarm_raised, ev::rebalance_suppressed, ev::alarm_cleared};
  EXPECT_EQ(ctl.log().decisions(), expected);
  EXPECT_EQ(host.rebalances, 2);
}

TEST(Controller, UnresolvedExcursionRearmsAfterEachSustainPeriod) {
  // A migration that does NOT clear the alarm must not wedge the brain in
  // the raised state: while the ratio stays above the clear line - at the
  // raise line OR inside the band - the trigger re-arms after every further
  // sustain period (one alarm, several applications). The adversarial-skew
  // recovery in rebalance_test and the appliance soak lean on exactly this
  // retry to converge when the first plan was built from a distorted
  // signal and the second lands inside the band but above clear.
  fake_clock clk;
  controller ctl(quiet_config(), clk);  // sustain 2, no cooldown
  script_host host(4);
  clk.advance_ms(100);
  ctl.tick(host);
  step(clk, ctl, host, 2.0);
  step(clk, ctl, host, 2.0);  // raise + applied #1
  // Still at the raise line: re-arm after another sustain period.
  step(clk, ctl, host, 2.0);
  step(clk, ctl, host, 2.0);  // applied #2
  // The second plan got inside the band but not under the clear line: the
  // latched alarm keeps retrying at the same cadence.
  step(clk, ctl, host, 1.3);
  step(clk, ctl, host, 1.3);  // applied #3
  step(clk, ctl, host, 1.0);  // cleared
  for (int i = 0; i < 10; ++i) step(clk, ctl, host, 1.0);

  const std::vector<ev> expected = {ev::alarm_raised, ev::rebalance_applied,
                                    ev::rebalance_applied, ev::rebalance_applied,
                                    ev::alarm_cleared};
  EXPECT_EQ(ctl.log().decisions(), expected);
  EXPECT_EQ(host.rebalances, 3);
  EXPECT_EQ(ctl.log().count(ev::alarm_raised), 1u);
}

TEST(Controller, PolicyNoopIsLoggedAndStartsNoCooldown) {
  controller_config cfg = quiet_config();
  cfg.rebalance_cooldown_ns = 60'000'000'000;  // would block everything if started
  fake_clock clk;
  controller ctl(cfg, clk);
  script_host host(4);
  host.rebalance_result = false;  // the policy finds no better table
  clk.advance_ms(100);
  ctl.tick(host);
  step(clk, ctl, host, 2.0);
  step(clk, ctl, host, 2.0);  // raise + noop
  step(clk, ctl, host, 1.0);  // cleared
  host.rebalance_result = true;
  step(clk, ctl, host, 2.0);
  step(clk, ctl, host, 2.0);  // raise + applied: the noop started no cooldown

  const std::vector<ev> expected = {ev::alarm_raised, ev::rebalance_noop, ev::alarm_cleared,
                                    ev::alarm_raised, ev::rebalance_applied};
  EXPECT_EQ(ctl.log().decisions(), expected);
}

TEST(Controller, SmallSegmentsAreAccumulatedNotJudged) {
  fake_clock clk;
  controller ctl(quiet_config(), clk);  // min_segment_packets = 4096
  script_host host(4);
  clk.advance_ms(100);
  ctl.tick(host);
  // Wildly skewed dribbles (1060 packets each) below the segment floor:
  // not judged tick by tick - a handful of packets witnesses only noise.
  for (int i = 0; i < 3; ++i) step(clk, ctl, host, 50.0, /*base=*/20);
  EXPECT_EQ(ctl.log().count(ev::sample), 0u);
  EXPECT_TRUE(ctl.log().decisions().empty());
  // But they ACCUMULATE against the old baseline: once the running segment
  // crosses the floor it is judged whole, the skew is seen, and sustained
  // accumulation eventually raises the alarm like any other excursion.
  for (int i = 0; i < 8; ++i) step(clk, ctl, host, 50.0, /*base=*/20);
  EXPECT_GE(ctl.log().count(ev::sample), 2u);
  EXPECT_TRUE(ctl.alarm());
  EXPECT_EQ(ctl.log().count(ev::alarm_raised), 1u);
}

// --- watermark scaling ------------------------------------------------------

TEST(Controller, WatermarkScalingDoublesAndHalvesWithClamps) {
  controller_config cfg;
  cfg.sample_interval_ns = 100'000'000;
  cfg.min_segment_packets = 1;
  cfg.load_ratio_high = 1e18;  // isolate scaling from the alarm machinery
  cfg.scale_up_pps = 100'000;  // per shard
  cfg.scale_down_pps = 1'000;
  cfg.scale_sustain_ticks = 2;
  cfg.min_shards = 1;
  cfg.max_shards = 8;
  cfg.scale_cooldown_ns = 0;
  fake_clock clk;
  controller ctl(cfg, clk);
  script_host host(2);
  clk.advance_ms(100);
  ctl.tick(host);

  // 50k packets / 100 ms / 2 shards = 250k pps per shard: over the high
  // watermark. Each rescale resets the lanes, costing one re-baseline tick.
  auto heavy = [&] { step(clk, ctl, host, 1.0, 50000 / host.offered.size()); };
  auto light = [&] { step(clk, ctl, host, 1.0, 40 / host.offered.size() + 1); };
  for (int i = 0; i < 3; ++i) heavy();  // sustain x2 -> 2 -> 4
  EXPECT_EQ(host.offered.size(), 4u);
  for (int i = 0; i < 3; ++i) heavy();  // -> 8
  EXPECT_EQ(host.offered.size(), 8u);
  for (int i = 0; i < 6; ++i) heavy();  // at max_shards: clamped, no calls
  EXPECT_EQ(host.offered.size(), 8u);
  ASSERT_EQ(host.rescale_targets, (std::vector<std::size_t>{4, 8}));

  for (int i = 0; i < 3; ++i) light();  // sustain x2 -> 8 -> 4
  EXPECT_EQ(host.offered.size(), 4u);
  for (int i = 0; i < 3; ++i) light();  // -> 2
  for (int i = 0; i < 3; ++i) light();  // -> 1
  EXPECT_EQ(host.offered.size(), 1u);
  for (int i = 0; i < 6; ++i) light();  // at min_shards: clamped
  EXPECT_EQ(host.offered.size(), 1u);
  ASSERT_EQ(host.rescale_targets, (std::vector<std::size_t>{4, 8, 4, 2, 1}));
  EXPECT_EQ(ctl.log().count(ev::scale_up), 2u);
  EXPECT_EQ(ctl.log().count(ev::scale_down), 3u);
  // scale_* records carry the target shard count in `detail`.
  std::vector<std::uint64_t> details;
  for (const auto& r : ctl.log().records()) {
    if (r.kind == ev::scale_up || r.kind == ev::scale_down) details.push_back(r.detail);
  }
  EXPECT_EQ(details, (std::vector<std::uint64_t>{4, 8, 4, 2, 1}));
}

TEST(Controller, RejectedRescaleIsLoggedAndRetriesAfterCooldown) {
  controller_config cfg;
  cfg.sample_interval_ns = 100'000'000;
  cfg.min_segment_packets = 1;
  cfg.load_ratio_high = 1e18;
  cfg.scale_up_pps = 100'000;
  cfg.scale_sustain_ticks = 2;
  cfg.max_shards = 8;
  cfg.scale_cooldown_ns = 0;
  fake_clock clk;
  controller ctl(cfg, clk);
  script_host host(2);
  host.rescale_result = false;  // e.g. a pipeline_host: cores are fixed
  clk.advance_ms(100);
  ctl.tick(host);
  for (int i = 0; i < 6; ++i) step(clk, ctl, host, 1.0, 25000);
  EXPECT_GE(ctl.log().count(ev::scale_rejected), 1u);
  EXPECT_EQ(ctl.log().count(ev::scale_up), 0u);
  EXPECT_EQ(host.offered.size(), 2u) << "a rejected rescale must change nothing";
}

// --- checkpoint cadence -----------------------------------------------------

TEST(Controller, CheckpointCadenceHonoredOnInjectedClock) {
  controller_config cfg = quiet_config();
  cfg.checkpoint_interval_ns = 500'000'000;  // 500 ms, ticks every 100 ms
  fake_clock clk;
  controller ctl(cfg, clk);
  script_host host(4);
  // 26 ticks at t = 100..2600 ms; the first tick arms the cadence at 600,
  // then checkpoints land at 600, 1100, 1600, 2100, 2600: exactly five.
  for (int i = 0; i < 26; ++i) step(clk, ctl, host, 1.0);
  EXPECT_EQ(host.checkpoints, 5);
  EXPECT_EQ(ctl.log().count(ev::checkpoint_taken), 5u);
  for (const auto& r : ctl.log().records()) {
    if (r.kind == ev::checkpoint_taken) {
      EXPECT_EQ(r.detail, host.checkpoint_bytes);
    }
  }
  // A failing sink is a logged failure, never silent.
  host.checkpoint_bytes = 0;
  for (int i = 0; i < 5; ++i) step(clk, ctl, host, 1.0);
  EXPECT_EQ(ctl.log().count(ev::checkpoint_failed), 1u);
}

TEST(Controller, CounterRegressionRebaselinesInsteadOfWrapping) {
  // A restore/adopt at the same shard count resets the producer counters;
  // judging the wrapped difference would fabricate a mega-segment and a
  // false alarm. The brain must silently re-baseline instead.
  fake_clock clk;
  controller ctl(quiet_config(), clk);
  script_host host(4);
  clk.advance_ms(100);
  ctl.tick(host);
  step(clk, ctl, host, 1.0);
  host.offered.assign(4, 0);  // lanes rebuilt under us
  clk.advance_ms(100);
  ctl.tick(host);  // must re-baseline, not judge
  step(clk, ctl, host, 1.0);
  EXPECT_TRUE(ctl.log().decisions().empty());
  EXPECT_FALSE(ctl.alarm());
}

// --- real hosts: scale round trip, checkpoint/restore -----------------------

TEST(Controller, ScaleRoundTripNtoMtoNIsQueryStableWithExactStreamLength) {
  // The controller itself drives 2 -> 4 -> 8 -> 4 -> 2 on a REAL frontend
  // via front_host + watermarks. Global stream length must survive all four
  // reshards exactly (the remainder-distribution fix), and a persistent
  // elephant's estimate must stay within the transport's movement bound.
  shard_config scfg;
  scfg.window_size = 2u << 20;  // large window: nothing expires mid-test
  scfg.counters = 512;
  scfg.tau = 1.0;
  scfg.seed = 7;
  scfg.shards = 2;
  sharded front(scfg);
  checkpoint_store store;
  front_host<sharded> host(front, store);

  controller_config cfg;
  cfg.sample_interval_ns = 100'000'000;
  cfg.min_segment_packets = 1;
  cfg.load_ratio_high = 1e18;  // scaling only
  cfg.scale_up_pps = 100'000;
  cfg.scale_down_pps = 2'000;  // 500 pkts/100 ms stays under this at N >= 4
  cfg.scale_sustain_ticks = 2;
  cfg.min_shards = 2;
  cfg.max_shards = 8;
  cfg.scale_cooldown_ns = 0;
  fake_clock clk;
  controller ctl(cfg, clk);

  const std::uint64_t kElephant = 0xE1E1E1E1ull;
  std::uint64_t pushed = 0, elephant_count = 0;
  auto ingest = [&](std::size_t n, std::uint64_t seed) {
    auto ids = skewed_ids(n, 0.8, seed, 1u << 12);
    for (std::size_t i = 0; i < ids.size(); i += 10) {
      ids[i] = kElephant;  // ~10% elephant, every arm of the round trip
      ++elephant_count;
    }
    front.update_batch(ids.data(), ids.size());
    pushed += ids.size();
  };

  clk.advance_ms(100);
  ctl.tick(host);  // baseline
  std::uint64_t seed = 1000;
  // Heavy phase: 100k packets per 100 ms tick -> 500k pps/shard at N=2.
  while (front.num_shards() < 8) {
    ingest(100000, seed++);
    clk.advance_ms(100);
    ctl.tick(host);
    ASSERT_LT(seed, 1100u) << "scale-up never reached 8 shards";
  }
  // Light phase: 500 packets per tick -> 625 pps/shard at N=8.
  while (front.num_shards() > 2) {
    ingest(500, seed++);
    clk.advance_ms(100);
    ctl.tick(host);
    ASSERT_LT(seed, 1200u) << "scale-down never returned to 2 shards";
  }
  EXPECT_EQ(ctl.log().count(ev::scale_up), 2u);
  EXPECT_EQ(ctl.log().count(ev::scale_down), 2u);

  // Exact accounting through four reshard transports.
  EXPECT_EQ(front.stream_length(), pushed);
  // Query stability: the elephant moved shards up to four times; each hop
  // moves an estimate by <= one threshold unit, on top of the sketch's own
  // one-sided 2-unit width.
  const double unit =
      static_cast<double>(front.shard(0).overflow_threshold()) / front.shard(0).tau();
  ASSERT_LE(pushed, scfg.window_size) << "test premise broken: window rolled";
  const double est = front.query(kElephant);
  EXPECT_NEAR(est, static_cast<double>(elephant_count), 6.0 * unit + 1e-9);
  const auto hh = front.heavy_hitters(0.015);
  EXPECT_TRUE(std::any_of(hh.begin(), hh.end(),
                          [&](const auto& h) { return h.key == kElephant; }))
      << "elephant lost across the scale round trip";
}

TEST(Controller, FrontHostCheckpointRestoreRoundTrips) {
  shard_config scfg{40000, 128, 1.0, 3, 2};
  sharded front(scfg);
  checkpoint_store store;
  front_host<sharded> host(front, store);

  const auto ids = skewed_ids(120000, 1.0, 11);
  front.update_batch(ids.data(), ids.size());
  const sharded at_checkpoint = front;
  ASSERT_GT(host.checkpoint(), 0u);
  EXPECT_EQ(store.generation(), 1u);
  EXPECT_LE(store.peak_buffered(), 2 * wire::sink::kDefaultChunk)
      << "checkpoint capture must stream, not materialize";

  const auto more = skewed_ids(60000, 1.0, 13);
  front.update_batch(more.data(), more.size());
  ASSERT_NE(front.stream_length(), at_checkpoint.stream_length());

  const std::uint64_t restored = host.restore();
  EXPECT_EQ(restored, at_checkpoint.stream_length());
  EXPECT_EQ(front.stream_length(), at_checkpoint.stream_length());
  for (const auto& hh : at_checkpoint.heavy_hitters(0.01)) {
    EXPECT_DOUBLE_EQ(front.query(hh.key), hh.estimate) << "key " << hh.key;
  }
}

TEST(Controller, HierarchicalFrontHostRebalancesButCannotRescale) {
  // The HHH frontend gets the same lifecycle except elastic scaling
  // (reshard.hpp: HHH N -> M is future work): rescale reports unsupported
  // and the brain logs scale_rejected instead of wedging. 1-D hierarchy:
  // the streamed checkpoint path needs wire::codec<Key>::to_u64, which
  // prefix2d keys do not have.
  using front_t = sharded_h_memento<source_hierarchy>;
  const h_memento_config cfg{40000, 512, 1.0, 0.05, 21};
  front_t front(cfg, 2);
  checkpoint_store store;
  front_host<front_t> host(front, store);

  xoshiro256 rng(17);
  std::vector<packet> pkts;
  for (int i = 0; i < 30000; ++i) {
    pkts.push_back(packet{static_cast<std::uint32_t>(rng()), static_cast<std::uint32_t>(rng())});
  }
  front.update_batch(pkts.data(), pkts.size());

  EXPECT_FALSE(host.rescale(4));
  EXPECT_EQ(front.num_shards(), 2u);
  ASSERT_GT(host.checkpoint(), 0u);
  const auto more = pkts;
  front.update_batch(more.data(), more.size());
  const std::uint64_t restored = host.restore();
  EXPECT_EQ(restored, static_cast<std::uint64_t>(pkts.size()));
  EXPECT_EQ(front.stream_length(), pkts.size());
}

// --- the fault-injection soak (runs under TSan in CI) ------------------------

TEST(ControllerSoak, KillAndRestoreMidStreamKeepsAccountingExactAndRecallIntact) {
  // Live threaded pool + monitor thread on a fake clock: the controller
  // checkpoints in the background and auto-rebalances the elephant skew;
  // the harness kills a shard mid-stream, restores from the latest
  // checkpoint, keeps streaming, and pins
  //     final stream_length == restored stream + packets ingested after
  // exactly, plus elephant recall over the post-restore window.
  shard_config cfg;
  cfg.window_size = 40000;
  cfg.counters = 256;
  cfg.tau = 1.0;
  cfg.seed = 33;
  cfg.shards = 4;
  sharded_memento_pool<std::uint64_t> pool(cfg, /*ring_capacity=*/1u << 12);
  checkpoint_store store;
  pool_host<std::uint64_t> host(pool, store);

  controller_config ccfg;
  ccfg.sample_interval_ns = 100'000'000;
  ccfg.min_segment_packets = 2048;
  ccfg.load_ratio_high = 1.5;
  ccfg.load_ratio_clear = 1.1;
  ccfg.sustain_ticks = 2;
  ccfg.rebalance_cooldown_ns = 300'000'000;
  ccfg.checkpoint_interval_ns = 300'000'000;
  fake_clock clk;
  controller_service<pool_host<std::uint64_t>> service(host, ccfg, clk);
  service.start();

  const auto elephants =
      elephants_on_shard(pool.frontend().partitioner(), /*shard=*/0, 6);
  std::uint64_t seed = 500;
  std::uint64_t ingested_pre = 0;
  auto burst = [&](std::size_t n) {
    const auto ids = elephant_mix(n, 1.0, seed++, elephants, /*every=*/3);
    service.apply([&] { pool.ingest(ids.data(), ids.size()); });
    return ids.size();
  };

  // Phase A: stream with skew while the monitor ticks; wait until at least
  // one background checkpoint has been taken (bounded).
  for (int round = 0; round < 40; ++round) {
    ingested_pre += burst(4096);
    clk.advance_ms(50);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int spin = 0; service.count(ev::checkpoint_taken) == 0; ++spin) {
    ASSERT_LT(spin, 20000) << "no background checkpoint ever landed";
    clk.advance_ms(50);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(service.count(ev::rebalance_applied), 1u)
      << "elephant skew should have tripped an automatic rebalance";

  // Kill shard 1 mid-stream, then restore from the latest checkpoint. The
  // clock is frozen here, so the monitor cannot slip a checkpoint of the
  // wounded state in between.
  service.apply([&] { host.kill_shard(1); });
  const std::uint64_t restored = service.restore();
  ASSERT_GT(restored, 0u);
  ASSERT_LE(restored, ingested_pre);
  EXPECT_EQ(service.count(ev::restored), 1u);

  // Phase B: keep streaming well past a full window so every queryable
  // packet is post-restore state.
  std::uint64_t ingested_post = 0;
  for (int round = 0; round < 40; ++round) {
    ingested_post += burst(4096);
    clk.advance_ms(50);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.stop();

  // Exact packet accounting across kill + restore + any number of
  // rebalances: nothing lost, nothing double-counted.
  pool.drain();
  EXPECT_EQ(pool.frontend().stream_length(), restored + ingested_post);
  EXPECT_EQ(pool.total_drops(), 0u) << "block policy must stay lossless";

  // Elephant recall over the final window: each elephant carries ~5.5% of
  // traffic against a 2% bar - all must be found despite kill/restore and
  // the migrations in between.
  const auto hh = pool.heavy_hitters(0.02);
  for (const auto e : elephants) {
    EXPECT_TRUE(std::any_of(hh.begin(), hh.end(), [&](const auto& h) { return h.key == e; }))
        << "elephant " << e << " lost across kill/restore";
  }
  // And the decision log tells the whole story in order: at least one
  // checkpoint before the restore, the restore itself, and samples after.
  const auto events = service.events();
  const auto is_restore = [](const control_record& r) { return r.kind == ev::restored; };
  const auto rit = std::find_if(events.begin(), events.end(), is_restore);
  ASSERT_NE(rit, events.end());
  EXPECT_TRUE(std::any_of(events.begin(), rit,
                          [](const control_record& r) { return r.kind == ev::checkpoint_taken; }));
  EXPECT_EQ(rit->detail, restored);
}

}  // namespace
}  // namespace memento
