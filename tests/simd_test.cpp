// util/simd.hpp + util/sliding_window_agg.hpp: runtime dispatch semantics
// and kernel differentials.
//
// Every vectorized kernel has a scalar twin that is the behavioral oracle;
// these tests drive the SAME binary through every tier the host supports
// (simd::scoped_tier) and require identical results - values, visit order,
// and tie-breaks. The two-stacks window aggregate is additionally checked
// against a naive recompute-the-window-max oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <deque>
#include <vector>

#include "hierarchy/prefix1d.hpp"
#include "hierarchy/prefix2d.hpp"
#include "trace/packet.hpp"
#include "util/random.hpp"
#include "util/simd.hpp"
#include "util/sliding_window_agg.hpp"

namespace memento {
namespace {

/// Every tier this host can actually run (ascending, scalar first).
std::vector<simd::tier> host_tiers() {
  std::vector<simd::tier> out{simd::tier::scalar};
  if (simd::detect() >= simd::tier::sse2) out.push_back(simd::tier::sse2);
  if (simd::detect() >= simd::tier::avx2) out.push_back(simd::tier::avx2);
  return out;
}

TEST(SimdDispatch, DetectIsStableAndAtLeastScalar) {
  const simd::tier a = simd::detect();
  EXPECT_GE(a, simd::tier::scalar);
  EXPECT_EQ(simd::detect(), a) << "detect() must be idempotent";
#if MEMENTO_SIMD_X86
  // SSE2 is part of the x86-64 baseline; detection can only report less
  // when the MEMENTO_ISA environment clamp asked for it.
  if (std::getenv("MEMENTO_ISA") == nullptr) {
    EXPECT_GE(a, simd::tier::sse2);
  }
#endif
}

TEST(SimdDispatch, ForceClampsToHostAndClears) {
  simd::force(simd::tier::scalar);
  EXPECT_EQ(simd::active(), simd::tier::scalar);
  // Forcing above the host's capability clamps down, never up.
  simd::force(simd::tier::avx2);
  EXPECT_LE(simd::active(), simd::detect());
  simd::clear_force();
  EXPECT_EQ(simd::active(), simd::detect());
}

TEST(SimdDispatch, ScopedTierRestoresThePreviousOverride) {
  simd::force(simd::tier::scalar);
  {
    simd::scoped_tier inner(simd::detect());
    EXPECT_EQ(simd::active(), simd::detect());
  }
  EXPECT_EQ(simd::active(), simd::tier::scalar) << "outer override lost";
  simd::clear_force();
}

TEST(SimdDispatch, TierNamesAreStable) {
  EXPECT_STREQ(simd::tier_name(simd::tier::scalar), "scalar");
  EXPECT_STREQ(simd::tier_name(simd::tier::sse2), "sse2");
  EXPECT_STREQ(simd::tier_name(simd::tier::avx2), "avx2");
}

#if MEMENTO_SIMD_X86
TEST(SimdGroup, Group16MatchBitsFollowByteOrder) {
  std::uint8_t ctrl[16 + 16] = {};  // padded so loads stay in bounds
  for (std::size_t i = 0; i < 16; ++i) ctrl[i] = simd::kCtrlEmpty;
  ctrl[3] = 0x5A;
  ctrl[7] = 0x5A;
  ctrl[9] = 0x11;
  const auto g = simd::group16::load(ctrl);
  EXPECT_EQ(g.match(0x5A), (1u << 3) | (1u << 7));
  EXPECT_EQ(g.match(0x11), 1u << 9);
  EXPECT_EQ(g.match(0x22), 0u);
  EXPECT_EQ(g.match_empty(), 0xFFFFu & ~((1u << 3) | (1u << 7) | (1u << 9)));
}
#endif

// --- u64 scan kernels: every tier against the scalar oracle -----------------

TEST(SimdScan, ScanGeMatchesScalarOracleOnEveryTier) {
  xoshiro256 rng(11);
  for (const std::size_t n : {0ul, 1ul, 3ul, 4ul, 5ul, 17ul, 64ul, 513ul}) {
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = rng() % 64;  // small range -> many threshold hits
    for (const std::uint64_t bar : {0ull, 1ull, 13ull, 63ull, ~0ull}) {
      std::vector<std::size_t> expect;
      simd::detail::scan_ge_u64_scalar(v.data(), n, bar,
                                       [&](std::size_t i) { expect.push_back(i); });
      for (const simd::tier t : host_tiers()) {
        simd::scoped_tier guard(t);
        std::vector<std::size_t> got;
        simd::scan_ge_u64(v.data(), n, bar, [&](std::size_t i) { got.push_back(i); });
        EXPECT_EQ(got, expect) << "tier " << simd::tier_name(t) << " n=" << n << " bar=" << bar;
      }
    }
  }
}

TEST(SimdScan, MinScanMatchesScalarIncludingFirstIndexTieBreak) {
  xoshiro256 rng(22);
  for (const std::size_t n : {1ul, 2ul, 4ul, 7ul, 8ul, 9ul, 33ul, 512ul}) {
    for (int round = 0; round < 50; ++round) {
      std::vector<std::uint64_t> v(n);
      // Tiny value range forces duplicated minima, exercising the tie-break.
      for (auto& x : v) x = rng() % 5;
      const auto expect = simd::detail::min_scan_u64_scalar(v.data(), n);
      for (const simd::tier t : host_tiers()) {
        simd::scoped_tier guard(t);
        const auto got = simd::min_scan_u64(v.data(), n);
        EXPECT_EQ(got, expect) << "tier " << simd::tier_name(t) << " n=" << n;
      }
    }
  }
}

TEST(SimdScan, MinScanHandlesExtremeValues) {
  std::vector<std::uint64_t> v{~0ull, ~0ull - 1, ~0ull, 5, 5, ~0ull, 7, 9, 12, 5};
  const auto expect = simd::detail::min_scan_u64_scalar(v.data(), v.size());
  EXPECT_EQ(expect.first, 5u);
  EXPECT_EQ(expect.second, 3u);
  for (const simd::tier t : host_tiers()) {
    simd::scoped_tier guard(t);
    EXPECT_EQ(simd::min_scan_u64(v.data(), v.size()), expect) << simd::tier_name(t);
  }
}

TEST(SimdScan, SuffixMaxMatchesScalarOnEveryTier) {
  xoshiro256 rng(33);
  for (const std::size_t n : {0ul, 1ul, 2ul, 3ul, 4ul, 5ul, 8ul, 11ul, 64ul, 257ul}) {
    for (int round = 0; round < 20; ++round) {
      std::vector<std::uint64_t> src(n);
      for (auto& x : src) x = rng();
      std::vector<std::uint64_t> expect(n), got(n);
      simd::detail::suffix_max_u64_scalar(src.data(), expect.data(), n);
      for (const simd::tier t : host_tiers()) {
        simd::scoped_tier guard(t);
        std::fill(got.begin(), got.end(), 0);
        simd::suffix_max_u64(src.data(), got.data(), n);
        EXPECT_EQ(got, expect) << "tier " << simd::tier_name(t) << " n=" << n;
      }
    }
  }
}

// --- prefix masking kernels: the HHH batch hot path ---------------------------

TEST(SimdPrefix, DepthMaskMatchesPrefix1dIncludingFullGeneralization) {
  for (std::uint8_t d = 0; d <= 4; ++d) {
    EXPECT_EQ(simd::detail::depth_mask_scalar(d), prefix1d::mask_for_depth(d)) << "depth " << +d;
  }
  EXPECT_EQ(simd::detail::depth_mask_scalar(4), 0u) << "/0 must mask every bit";
}

TEST(SimdPrefix, MaskAddrByDepthMatchesScalarOracleOnEveryTier) {
  xoshiro256 rng(44);
  // Sizes straddle the AVX2 8-lane width (tails, exact multiples, n < 8
  // which the dispatcher routes straight to scalar).
  for (const std::size_t n : {0ul, 1ul, 5ul, 7ul, 8ul, 9ul, 31ul, 32ul, 100ul}) {
    std::vector<std::uint32_t> addrs(n);
    std::vector<std::uint8_t> depths(n);
    for (std::size_t i = 0; i < n; ++i) {
      addrs[i] = static_cast<std::uint32_t>(rng());
      depths[i] = static_cast<std::uint8_t>(rng() % 5);  // 0..4 incl. full mask-out
    }
    std::vector<std::uint32_t> expect(n), got(n);
    simd::detail::mask_addr_by_depth_scalar(addrs.data(), depths.data(), expect.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(expect[i], addrs[i] & prefix1d::mask_for_depth(depths[i]))
          << "scalar twin diverged from prefix1d at i=" << i;
    }
    for (const simd::tier t : host_tiers()) {
      simd::scoped_tier guard(t);
      std::fill(got.begin(), got.end(), 0xDEADBEEFu);
      simd::mask_addr_by_depth(addrs.data(), depths.data(), got.data(), n);
      EXPECT_EQ(got, expect) << "tier " << simd::tier_name(t) << " n=" << n;
    }
  }
}

TEST(SimdPrefix, MakePrefixKeysMatchesMakeKeyOnEveryTier) {
  xoshiro256 rng(55);
  for (const std::size_t n : {1ul, 3ul, 4ul, 6ul, 16ul, 33ul}) {
    std::vector<std::uint32_t> addrs(n);
    std::vector<std::uint8_t> depths(n);
    for (std::size_t i = 0; i < n; ++i) {
      addrs[i] = static_cast<std::uint32_t>(rng());
      depths[i] = static_cast<std::uint8_t>(rng() % 5);
    }
    std::vector<std::uint64_t> expect(n), got(n);
    for (std::size_t i = 0; i < n; ++i) expect[i] = prefix1d::make_key(addrs[i], depths[i]);
    for (const simd::tier t : host_tiers()) {
      simd::scoped_tier guard(t);
      std::fill(got.begin(), got.end(), ~0ull);
      simd::make_prefix_keys(addrs.data(), depths.data(), got.data(), n);
      EXPECT_EQ(got, expect) << "tier " << simd::tier_name(t) << " n=" << n;
    }
  }
}

TEST(SimdPrefix, MaterializeKeysMatchesKeyAtOracleForBothHierarchies) {
  xoshiro256 rng(66);
  constexpr std::size_t kN = 101;  // odd, spans several 32-key blocks
  std::vector<packet> packets(kN);
  std::vector<std::uint32_t> idx(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    packets[i] = {static_cast<std::uint32_t>(rng()), static_cast<std::uint32_t>(rng())};
    idx[i] = static_cast<std::uint32_t>(rng() % kN);  // gathers, repeats allowed
  }
  auto check = [&](auto tag) {
    using hierarchy = decltype(tag);
    std::vector<std::uint8_t> levels(kN);
    for (auto& l : levels) l = static_cast<std::uint8_t>(rng() % hierarchy::hierarchy_size);
    std::vector<typename hierarchy::key_type> out(kN);
    for (const simd::tier t : host_tiers()) {
      simd::scoped_tier guard(t);
      hierarchy::materialize_keys(packets.data(), idx.data(), levels.data(), out.data(), kN);
      for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(out[i], hierarchy::key_at(packets[idx[i]], levels[i]))
            << "tier " << simd::tier_name(t) << " i=" << i;
      }
    }
  };
  check(source_hierarchy{});
  check(two_dim_hierarchy{});
}

// --- two-stacks sliding-window aggregate -------------------------------------

/// Naive oracle: keep the raw window, recompute the max on every query.
class naive_max_window {
 public:
  explicit naive_max_window(std::size_t window) : window_(window) {}
  void push(std::uint64_t v) {
    if (vals_.size() == window_) vals_.pop_front();
    vals_.push_back(v);
  }
  [[nodiscard]] std::uint64_t query() const {
    std::uint64_t m = 0;
    for (const auto v : vals_) m = std::max(m, v);
    return m;
  }
  [[nodiscard]] std::size_t size() const { return vals_.size(); }

 private:
  std::size_t window_;
  std::deque<std::uint64_t> vals_;
};

TEST(TwoStacksWindow, EmptyQueriesIdentity) {
  max_window_u64 w(8);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.query(), 0u);
  EXPECT_EQ(w.window(), 8u);
}

TEST(TwoStacksWindow, MatchesNaiveOracleOnEveryTier) {
  for (const simd::tier t : host_tiers()) {
    simd::scoped_tier guard(t);
    for (const std::size_t window : {1ul, 2ul, 3ul, 7ul, 16ul, 100ul}) {
      xoshiro256 rng(1234);
      max_window_u64 fast(window);
      naive_max_window naive(window);
      for (int i = 0; i < 5000; ++i) {
        // Mixed magnitudes: long quiet stretches with rare spikes, so evicting
        // the current max (the hard case) actually happens.
        const std::uint64_t v = (rng() % 100 == 0) ? rng() : rng() % 8;
        fast.push(v);
        naive.push(v);
        ASSERT_EQ(fast.size(), naive.size());
        ASSERT_EQ(fast.query(), naive.query())
            << "tier " << simd::tier_name(t) << " window=" << window << " step=" << i;
      }
    }
  }
}

TEST(TwoStacksWindow, ClearEmptiesButKeepsWindowLength) {
  max_window_u64 w(4);
  for (std::uint64_t v : {5ull, 9ull, 2ull}) w.push(v);
  EXPECT_EQ(w.query(), 9u);
  w.clear();
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.query(), 0u);
  EXPECT_EQ(w.window(), 4u);
  w.push(3);
  EXPECT_EQ(w.query(), 3u);
}

TEST(TwoStacksWindow, WindowOfOneTracksTheLastValue) {
  max_window_u64 w(1);
  for (std::uint64_t v : {7ull, 100ull, 1ull, 42ull}) {
    w.push(v);
    EXPECT_EQ(w.query(), v);
    EXPECT_EQ(w.size(), 1u);
  }
}

}  // namespace
}  // namespace memento
