// Tests for the load-balancer tier: ACL semantics, request processing, and
// the cluster's controller-driven mitigation loop.
#include <gtest/gtest.h>

#include <cstdint>

#include "lb/acl.hpp"
#include "lb/cluster.hpp"
#include "lb/http.hpp"
#include "lb/load_balancer.hpp"
#include "trace/flood_injector.hpp"
#include "trace/trace_generator.hpp"

namespace memento::lb {
namespace {

constexpr std::uint32_t ip(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d) {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

// --- ACL ------------------------------------------------------------------------

TEST(Acl, DefaultIsAllow) {
  acl table;
  EXPECT_EQ(table.lookup(ip(1, 2, 3, 4)), acl_action::allow);
}

TEST(Acl, SubnetRuleCoversAllHosts) {
  acl table;
  table.set_rule(ip(10, 0, 0, 0), 3, acl_action::deny);  // 10.0.0.0/8
  EXPECT_EQ(table.lookup(ip(10, 1, 2, 3)), acl_action::deny);
  EXPECT_EQ(table.lookup(ip(10, 255, 255, 255)), acl_action::deny);
  EXPECT_EQ(table.lookup(ip(11, 1, 2, 3)), acl_action::allow);
}

TEST(Acl, MostSpecificRuleWins) {
  acl table;
  table.set_rule(ip(10, 0, 0, 0), 3, acl_action::deny);     // /8 deny
  table.set_rule(ip(10, 1, 0, 0), 2, acl_action::allow);    // /16 carve-out
  table.set_rule(ip(10, 1, 2, 3), 0, acl_action::tarpit);   // /32 override
  EXPECT_EQ(table.lookup(ip(10, 9, 9, 9)), acl_action::deny);
  EXPECT_EQ(table.lookup(ip(10, 1, 9, 9)), acl_action::allow);
  EXPECT_EQ(table.lookup(ip(10, 1, 2, 3)), acl_action::tarpit);
}

TEST(Acl, ClearRuleRestoresDefault) {
  acl table;
  table.set_rule(ip(10, 0, 0, 0), 3, acl_action::deny);
  table.clear_rule(ip(10, 0, 0, 0), 3);
  EXPECT_EQ(table.lookup(ip(10, 1, 2, 3)), acl_action::allow);
  table.set_rule(ip(10, 0, 0, 0), 3, acl_action::deny);
  table.clear();
  EXPECT_EQ(table.lookup(ip(10, 1, 2, 3)), acl_action::allow);
  EXPECT_EQ(table.size(), 0u);
}

TEST(Acl, PrefixKeyedRuleInstallation) {
  acl table;
  table.set_rule(prefix1d::make_key(ip(20, 0, 0, 0), 3), acl_action::tarpit);
  EXPECT_EQ(table.lookup(ip(20, 5, 5, 5)), acl_action::tarpit);
}

// --- load balancer -----------------------------------------------------------------

TEST(LoadBalancer, RejectsZeroBackends) {
  EXPECT_THROW(load_balancer(0, 0), std::invalid_argument);
}

TEST(LoadBalancer, RoundRobinSpreadsLoad) {
  load_balancer balancer(0, 4);
  for (int i = 0; i < 400; ++i) {
    (void)balancer.process(request_from_packet({static_cast<std::uint32_t>(i), 0}));
  }
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(balancer.backend_load(b), 100u);
  EXPECT_EQ(balancer.stats().forwarded, 400u);
}

TEST(LoadBalancer, AclVerdictsEnforced) {
  load_balancer balancer(0, 2);
  balancer.access_list().set_rule(ip(10, 0, 0, 0), 3, acl_action::deny);
  balancer.access_list().set_rule(ip(20, 0, 0, 0), 3, acl_action::tarpit);
  EXPECT_EQ(balancer.process(request_from_packet({ip(10, 1, 1, 1), 0})), verdict::denied);
  EXPECT_EQ(balancer.process(request_from_packet({ip(20, 1, 1, 1), 0})), verdict::tarpitted);
  EXPECT_EQ(balancer.process(request_from_packet({ip(30, 1, 1, 1), 0})), verdict::forwarded);
  EXPECT_EQ(balancer.stats().denied, 1u);
  EXPECT_EQ(balancer.stats().tarpitted, 1u);
  EXPECT_EQ(balancer.stats().forwarded, 1u);
  EXPECT_EQ(balancer.stats().received, 3u);
}

TEST(LoadBalancer, MeasurementHookSeesBlockedIngress) {
  // Mitigation must not blind the measurement (file comment in
  // load_balancer.hpp): the hook fires for denied requests too.
  load_balancer balancer(0, 1);
  balancer.access_list().set_rule(ip(10, 0, 0, 0), 3, acl_action::deny);
  int seen = 0;
  balancer.set_measurement_hook([&](const http_request&) { ++seen; });
  (void)balancer.process(request_from_packet({ip(10, 1, 1, 1), 0}));
  (void)balancer.process(request_from_packet({ip(30, 1, 1, 1), 0}));
  EXPECT_EQ(seen, 2);
}

// --- cluster -----------------------------------------------------------------------

TEST(Cluster, TotalsAggregateAcrossBalancers) {
  cluster_config cfg;
  cfg.num_balancers = 4;
  cfg.window = 5000;
  cfg.counters = 256;
  cfg.detect_stride = 1u << 30;  // never detect: pure routing test
  cluster c(cfg);
  auto trace = make_trace(trace_kind::edge, 2000);
  for (const auto& p : trace) (void)c.handle(request_from_packet(p));
  const auto totals = c.total_stats();
  EXPECT_EQ(totals.received, 2000u);
  EXPECT_EQ(totals.forwarded, 2000u);
  EXPECT_EQ(c.requests(), 2000u);
}

TEST(Cluster, SameClientAlwaysSameBalancer) {
  cluster_config cfg;
  cfg.num_balancers = 8;
  cfg.window = 5000;
  cfg.counters = 256;
  cfg.detect_stride = 1u << 30;
  cluster c(cfg);
  // One client, many requests: exactly one balancer must have received them.
  for (int i = 0; i < 100; ++i) {
    (void)c.handle(request_from_packet({ip(9, 9, 9, 9), static_cast<std::uint32_t>(i)}));
  }
  int nonzero = 0;
  for (std::size_t i = 0; i < c.size(); ++i) nonzero += c.balancer(i).stats().received > 0;
  EXPECT_EQ(nonzero, 1);
}

TEST(Cluster, FloodSubnetsGetBlocked) {
  cluster_config cfg;
  cfg.num_balancers = 10;
  cfg.window = 50000;
  cfg.counters = 1024;
  cfg.theta = 0.03;
  cfg.detect_stride = 500;
  cluster c(cfg);

  auto base = make_trace(trace_kind::backbone, 60000, /*seed=*/3);
  flood_config fc;
  fc.num_subnets = 5;
  fc.flood_probability = 0.7;
  fc.start_range = 10000;
  const auto flood = inject_flood(base, fc);

  for (const auto& lp : flood.packets) (void)c.handle(request_from_packet(lp.pkt));

  // Every true attacking /8 must be blocked by the end (5 subnets at ~14%
  // of traffic each, far above theta = 3%).
  for (const auto subnet : flood.subnets) {
    EXPECT_TRUE(c.is_blocked(prefix1d::make_key(subnet, 3)))
        << "unblocked flood subnet " << format_ipv4(subnet);
  }
  const auto totals = c.total_stats();
  EXPECT_GT(totals.denied, 0u);
}

TEST(Cluster, MitigationReducesForwardedAttackTraffic) {
  auto base = make_trace(trace_kind::backbone, 40000, /*seed=*/5);
  flood_config fc;
  fc.num_subnets = 3;
  fc.start_range = 5000;
  const auto flood = inject_flood(base, fc);

  auto run = [&](std::size_t detect_stride) {
    cluster_config cfg;
    cfg.window = 30000;
    cfg.counters = 1024;
    cfg.theta = 0.05;
    cfg.detect_stride = detect_stride;
    cluster c(cfg);
    std::uint64_t attack_forwarded = 0;
    for (const auto& lp : flood.packets) {
      const auto v = c.handle(request_from_packet(lp.pkt));
      attack_forwarded += lp.is_attack && v == verdict::forwarded;
    }
    return attack_forwarded;
  };

  const auto with_detection = run(500);
  const auto without_detection = run(1u << 30);
  EXPECT_LT(with_detection, without_detection / 5)
      << "mitigation must stop the vast majority of attack requests";
}

}  // namespace
}  // namespace memento::lb
