// Tests for trace persistence: address parsing, line parsing, stream round
// trips, and tolerance of malformed input.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace_generator.hpp"
#include "trace/trace_io.hpp"

namespace memento {
namespace {

TEST(ParseIpv4, DottedQuad) {
  EXPECT_EQ(parse_ipv4("1.2.3.4"), 0x01020304u);
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xffffffffu);
  EXPECT_EQ(parse_ipv4("181.7.20.6"), (181u << 24) | (7u << 16) | (20u << 8) | 6u);
}

TEST(ParseIpv4, RawDecimal) {
  EXPECT_EQ(parse_ipv4("0"), 0u);
  EXPECT_EQ(parse_ipv4("4294967295"), 0xffffffffu);
  EXPECT_EQ(parse_ipv4("16909060"), 0x01020304u);
}

TEST(ParseIpv4, RejectsMalformed) {
  EXPECT_FALSE(parse_ipv4(""));
  EXPECT_FALSE(parse_ipv4("1.2.3"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4.5"));
  EXPECT_FALSE(parse_ipv4("256.1.1.1"));
  EXPECT_FALSE(parse_ipv4("1.2.3."));
  EXPECT_FALSE(parse_ipv4(".1.2.3"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4x"));
  EXPECT_FALSE(parse_ipv4("4294967296"));   // > 2^32 - 1
  EXPECT_FALSE(parse_ipv4("a.b.c.d"));
  EXPECT_FALSE(parse_ipv4("-1"));
}

TEST(ParseTraceLine, AcceptsBothForms) {
  const auto a = parse_trace_line("1.2.3.4,5.6.7.8");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->src, 0x01020304u);
  EXPECT_EQ(a->dst, 0x05060708u);

  const auto b = parse_trace_line("  16909060 , 84281096  ");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->src, 0x01020304u);
  EXPECT_EQ(b->dst, 0x05060708u);
}

TEST(ParseTraceLine, RejectsMalformed) {
  EXPECT_FALSE(parse_trace_line(""));
  EXPECT_FALSE(parse_trace_line("1.2.3.4"));
  EXPECT_FALSE(parse_trace_line("1.2.3.4,"));
  EXPECT_FALSE(parse_trace_line(",5.6.7.8"));
  EXPECT_FALSE(parse_trace_line("1.2.3.4;5.6.7.8"));
}

TEST(TraceIo, StreamRoundTripIsExact) {
  const auto original = make_trace(trace_kind::datacenter, 2000, /*seed=*/5);
  std::stringstream buffer;
  write_trace(buffer, original);
  const auto result = read_trace(buffer);
  EXPECT_EQ(result.malformed_lines, 0u);
  ASSERT_EQ(result.packets.size(), original.size());
  EXPECT_TRUE(std::equal(result.packets.begin(), result.packets.end(), original.begin()));
}

TEST(TraceIo, SkipsCommentsBlanksAndGarbage) {
  std::stringstream buffer;
  buffer << "# header comment\n"
         << "\n"
         << "1.2.3.4,5.6.7.8\n"
         << "not a packet\n"
         << "9.9.9.9,8.8.8.8\n"
         << "300.1.1.1,1.1.1.1\n";
  const auto result = read_trace(buffer);
  EXPECT_EQ(result.packets.size(), 2u);
  EXPECT_EQ(result.malformed_lines, 2u);
}

TEST(TraceIo, FileRoundTrip) {
  const auto original = make_trace(trace_kind::edge, 500, /*seed=*/9);
  const std::string path = ::testing::TempDir() + "/memento_trace_io_test.csv";
  ASSERT_TRUE(write_trace_file(path, original));
  const auto result = read_trace_file(path);
  EXPECT_EQ(result.malformed_lines, 0u);
  ASSERT_EQ(result.packets.size(), original.size());
  EXPECT_TRUE(std::equal(result.packets.begin(), result.packets.end(), original.begin()));
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileYieldsEmpty) {
  const auto result = read_trace_file("/nonexistent/path/to/trace.csv");
  EXPECT_TRUE(result.packets.empty());
  EXPECT_EQ(result.malformed_lines, 0u);
}

}  // namespace
}  // namespace memento
