// Tests for trace persistence: address parsing, line parsing, stream round
// trips, tolerance of malformed input, and the pcap reader's contract -
// magic/endianness sniffing, IPv4 extraction from Ethernet/VLAN/raw-IP
// frames, non-IPv4 records skipped, truncation always fatal with a clear
// error.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "trace/trace_generator.hpp"
#include "trace/trace_io.hpp"

namespace memento {
namespace {

TEST(ParseIpv4, DottedQuad) {
  EXPECT_EQ(parse_ipv4("1.2.3.4"), 0x01020304u);
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xffffffffu);
  EXPECT_EQ(parse_ipv4("181.7.20.6"), (181u << 24) | (7u << 16) | (20u << 8) | 6u);
}

TEST(ParseIpv4, RawDecimal) {
  EXPECT_EQ(parse_ipv4("0"), 0u);
  EXPECT_EQ(parse_ipv4("4294967295"), 0xffffffffu);
  EXPECT_EQ(parse_ipv4("16909060"), 0x01020304u);
}

TEST(ParseIpv4, RejectsMalformed) {
  EXPECT_FALSE(parse_ipv4(""));
  EXPECT_FALSE(parse_ipv4("1.2.3"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4.5"));
  EXPECT_FALSE(parse_ipv4("256.1.1.1"));
  EXPECT_FALSE(parse_ipv4("1.2.3."));
  EXPECT_FALSE(parse_ipv4(".1.2.3"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4x"));
  EXPECT_FALSE(parse_ipv4("4294967296"));   // > 2^32 - 1
  EXPECT_FALSE(parse_ipv4("a.b.c.d"));
  EXPECT_FALSE(parse_ipv4("-1"));
}

TEST(ParseTraceLine, AcceptsBothForms) {
  const auto a = parse_trace_line("1.2.3.4,5.6.7.8");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->src, 0x01020304u);
  EXPECT_EQ(a->dst, 0x05060708u);

  const auto b = parse_trace_line("  16909060 , 84281096  ");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->src, 0x01020304u);
  EXPECT_EQ(b->dst, 0x05060708u);
}

TEST(ParseTraceLine, RejectsMalformed) {
  EXPECT_FALSE(parse_trace_line(""));
  EXPECT_FALSE(parse_trace_line("1.2.3.4"));
  EXPECT_FALSE(parse_trace_line("1.2.3.4,"));
  EXPECT_FALSE(parse_trace_line(",5.6.7.8"));
  EXPECT_FALSE(parse_trace_line("1.2.3.4;5.6.7.8"));
}

TEST(TraceIo, StreamRoundTripIsExact) {
  const auto original = make_trace(trace_kind::datacenter, 2000, /*seed=*/5);
  std::stringstream buffer;
  write_trace(buffer, original);
  const auto result = read_trace(buffer);
  EXPECT_EQ(result.malformed_lines, 0u);
  ASSERT_EQ(result.packets.size(), original.size());
  EXPECT_TRUE(std::equal(result.packets.begin(), result.packets.end(), original.begin()));
}

TEST(TraceIo, SkipsCommentsBlanksAndGarbage) {
  std::stringstream buffer;
  buffer << "# header comment\n"
         << "\n"
         << "1.2.3.4,5.6.7.8\n"
         << "not a packet\n"
         << "9.9.9.9,8.8.8.8\n"
         << "300.1.1.1,1.1.1.1\n";
  const auto result = read_trace(buffer);
  EXPECT_EQ(result.packets.size(), 2u);
  EXPECT_EQ(result.malformed_lines, 2u);
}

TEST(TraceIo, FileRoundTrip) {
  const auto original = make_trace(trace_kind::edge, 500, /*seed=*/9);
  const std::string path = ::testing::TempDir() + "/memento_trace_io_test.csv";
  ASSERT_TRUE(write_trace_file(path, original));
  const auto result = read_trace_file(path);
  EXPECT_EQ(result.malformed_lines, 0u);
  ASSERT_EQ(result.packets.size(), original.size());
  EXPECT_TRUE(std::equal(result.packets.begin(), result.packets.end(), original.begin()));
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsAnError) {
  const auto result = read_trace_file("/nonexistent/path/to/trace.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
  EXPECT_TRUE(result.packets.empty());
}

// --- pcap -------------------------------------------------------------------

// Byte-level builders so the tests control endianness and truncation exactly.
void le16(std::string& s, std::uint16_t v) {
  s.push_back(static_cast<char>(v & 0xff));
  s.push_back(static_cast<char>(v >> 8));
}
void le32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void be16(std::string& s, std::uint16_t v) {
  s.push_back(static_cast<char>(v >> 8));
  s.push_back(static_cast<char>(v & 0xff));
}
void be32(std::string& s, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::string pcap_header_le(std::uint32_t linktype, std::uint32_t magic = kPcapMagicMicros) {
  std::string s;
  le32(s, magic);
  le16(s, 2);
  le16(s, 4);
  le32(s, 0);
  le32(s, 0);
  le32(s, 65535);
  le32(s, linktype);
  return s;
}

std::string ipv4_header(std::uint32_t src, std::uint32_t dst) {
  std::string s;
  s.push_back('\x45');  // version 4, IHL 5
  s.push_back('\0');
  be16(s, 20);
  le32(s, 0);  // id + flags
  s.push_back('\x40');  // TTL
  s.push_back('\0');
  be16(s, 0);  // checksum
  be32(s, src);
  be32(s, dst);
  return s;
}

std::string ether_frame(std::uint16_t ethertype, const std::string& payload) {
  std::string s(12, '\0');  // MACs
  be16(s, ethertype);
  return s + payload;
}

void append_record_le(std::string& s, const std::string& frame) {
  le32(s, 0);  // ts_sec
  le32(s, 0);  // ts_usec
  le32(s, static_cast<std::uint32_t>(frame.size()));
  le32(s, static_cast<std::uint32_t>(frame.size()));
  s += frame;
}

trace_read_result read_pcap_bytes(const std::string& bytes) {
  std::istringstream in(bytes);
  return read_pcap(in);
}

TEST(Pcap, WriterRoundTripsExactly) {
  const auto original = make_trace(trace_kind::backbone, 500, /*seed=*/3);
  std::stringstream buffer;
  write_pcap(buffer, original);
  const auto result = read_pcap(buffer);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.malformed_lines, 0u);
  ASSERT_EQ(result.packets.size(), original.size());
  EXPECT_TRUE(std::equal(result.packets.begin(), result.packets.end(), original.begin()));
}

TEST(Pcap, FileSniffingRoutesCapturesAndTextThroughOneEntryPoint) {
  const auto original = make_trace(trace_kind::edge, 200, /*seed=*/8);
  const std::string path = ::testing::TempDir() + "/memento_trace_io_test.pcap";
  ASSERT_TRUE(write_pcap_file(path, original));
  const auto result = read_trace_file(path);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.packets.size(), original.size());
  EXPECT_TRUE(std::equal(result.packets.begin(), result.packets.end(), original.begin()));
  std::remove(path.c_str());
}

TEST(Pcap, BigEndianNanosecondRawIpCapture) {
  // A capture written by a big-endian host with nanosecond timestamps and
  // raw-IP linktype: every file-order field byte-swapped, frames bare IPv4.
  std::string s;
  be32(s, kPcapMagicNanos);
  be16(s, 2);
  be16(s, 4);
  be32(s, 0);
  be32(s, 0);
  be32(s, 65535);
  be32(s, kPcapLinktypeRawIp);
  const std::string frame = ipv4_header(0x0A0B0C0Du, 0x01020304u);
  be32(s, 1);  // ts_sec
  be32(s, 2);  // ts_nsec
  be32(s, static_cast<std::uint32_t>(frame.size()));
  be32(s, static_cast<std::uint32_t>(frame.size()));
  s += frame;

  const auto result = read_pcap_bytes(s);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.packets.size(), 1u);
  EXPECT_EQ(result.packets[0].src, 0x0A0B0C0Du);
  EXPECT_EQ(result.packets[0].dst, 0x01020304u);
}

TEST(Pcap, VlanTaggedIpv4IsParsed) {
  std::string vlan_payload;
  be16(vlan_payload, 0x0123);  // tag control
  be16(vlan_payload, 0x0800);  // inner ethertype
  vlan_payload += ipv4_header(0x7F000001u, 0x7F000002u);
  std::string s = pcap_header_le(kPcapLinktypeEthernet);
  append_record_le(s, ether_frame(0x8100, vlan_payload));
  const auto result = read_pcap_bytes(s);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.packets.size(), 1u);
  EXPECT_EQ(result.packets[0].src, 0x7F000001u);
  EXPECT_EQ(result.packets[0].dst, 0x7F000002u);
}

TEST(Pcap, NonIpv4RecordsAreSkippedNotFatal) {
  std::string s = pcap_header_le(kPcapLinktypeEthernet);
  append_record_le(s, ether_frame(0x0806, std::string(28, '\0')));  // ARP
  append_record_le(s, ether_frame(0x0800, ipv4_header(1, 2)));
  append_record_le(s, std::string(6, '\0'));  // runt frame
  const auto result = read_pcap_bytes(s);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.packets.size(), 1u);
  EXPECT_EQ(result.malformed_lines, 2u);
}

TEST(Pcap, TruncationIsFatalAtEveryLevel) {
  // Global header cut short.
  auto r = read_pcap_bytes(pcap_header_le(kPcapLinktypeEthernet).substr(0, 10));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("global header"), std::string::npos);

  // Record header cut short (after one intact record, which is retained).
  std::string s = pcap_header_le(kPcapLinktypeEthernet);
  append_record_le(s, ether_frame(0x0800, ipv4_header(3, 4)));
  r = read_pcap_bytes(s + std::string(8, '\0'));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("record header"), std::string::npos);
  EXPECT_EQ(r.packets.size(), 1u);  // parsed-so-far packets survive

  // Record body shorter than its header claims.
  std::string t = pcap_header_le(kPcapLinktypeEthernet);
  append_record_le(t, ether_frame(0x0800, ipv4_header(5, 6)));
  r = read_pcap_bytes(t.substr(0, t.size() - 5));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("record body"), std::string::npos);
}

TEST(Pcap, BadMagicLinktypeAndLengthAreRejected) {
  std::string bad_magic = pcap_header_le(kPcapLinktypeEthernet, 0xDEADBEEFu);
  EXPECT_NE(read_pcap_bytes(bad_magic).error.find("bad magic"), std::string::npos);

  std::string bad_link = pcap_header_le(/*linktype=*/105);  // 802.11
  EXPECT_NE(read_pcap_bytes(bad_link).error.find("linktype"), std::string::npos);

  std::string bad_len = pcap_header_le(kPcapLinktypeEthernet);
  le32(bad_len, 0);
  le32(bad_len, 0);
  le32(bad_len, 0x40000000u);  // 1 GiB captured length: corrupt framing
  le32(bad_len, 0x40000000u);
  EXPECT_NE(read_pcap_bytes(bad_len).error.find("captured length"), std::string::npos);
}

}  // namespace
}  // namespace memento
