// Skew-aware rebalancing suite: the weighted (TABLE-mode) partitioner, the
// coverage_rebalancer placement policy, the weighted reshard transport, and
// the reshard edge cases the policy leans on.
//
// Load-bearing invariants:
//   * TABLE mode with the UNIFORM table routes - and therefore shards -
//     bit-identically to HASH mode (the nested-floor identity in
//     partitioner.hpp), so the weighted router changes nothing until a
//     policy actually skews the assignment;
//   * on an elephant-heavy Zipf mix, rebalance() measurably tightens the
//     max/min shard update-load ratio and the window_coverage() spread
//     versus static hashing, with heavy_hitters recall no worse (the ISSUE 5
//     acceptance bar);
//   * rebalance() is a deterministic function of observable state (two
//     replicas plan the same table), a no-op on balanced traffic, and the
//     migrated state stays within PR 4's one-threshold-unit movement bound;
//   * weighted frontends snapshot/restore with their routing intact;
//   * reshard survives the policy's edge cases: M=1 collapse, N -> M -> N
//     round trips (query-stable), and rebalancing under concurrent pool
//     ingest (run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "control/checkpoint.hpp"
#include "control/clock.hpp"
#include "control/controller.hpp"
#include "control/hosts.hpp"
#include "core/memento.hpp"
#include "hierarchy/prefix2d.hpp"
#include "shard/partitioner.hpp"
#include "shard/rebalance.hpp"
#include "shard/shard_pool.hpp"
#include "shard/sharded_h_memento.hpp"
#include "shard/sharded_memento.hpp"
#include "sketch/exact_window.hpp"
#include "snapshot/reshard.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/trace_generator.hpp"
#include "util/wire.hpp"

namespace memento {
namespace {

using sketch = memento_sketch<std::uint64_t>;
using sharded = sharded_memento<std::uint64_t>;
using partitioner = shard_partitioner<std::uint64_t>;

std::vector<std::uint64_t> skewed_ids(std::size_t n, double alpha, std::uint64_t seed,
                                      std::size_t universe = 1u << 12) {
  trace_generator gen(trace_config{universe, alpha, seed, 0});
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(flow_id(gen.next()));
  return ids;
}

/// First `n` keys >= `start` that the partitioner routes to `shard`, each in
/// a DISTINCT bucket - deterministic elephants for skew experiments (all of
/// them pile onto one shard under static hashing, and each is a separately
/// movable unit for the rebalancer).
std::vector<std::uint64_t> elephants_on_shard(const partitioner& part, std::size_t shard,
                                              std::size_t n, std::uint64_t start = 1u << 20) {
  std::vector<std::uint64_t> keys;
  std::vector<std::size_t> buckets;
  for (std::uint64_t x = start; keys.size() < n; ++x) {
    if (part(x) != shard) continue;
    const std::size_t b = part.bucket_of(x);
    if (std::find(buckets.begin(), buckets.end(), b) != buckets.end()) continue;
    keys.push_back(x);
    buckets.push_back(b);
  }
  return keys;
}

/// Zipf background with `elephants` injected round-robin on every
/// `every`-th packet: each elephant carries ~1/(every * |elephants|)^-1...
/// precisely n/(every) packets split across the elephants.
std::vector<std::uint64_t> elephant_mix(std::size_t n, double alpha, std::uint64_t seed,
                                        const std::vector<std::uint64_t>& elephants,
                                        std::size_t every) {
  trace_generator gen(trace_config{1u << 14, alpha, seed, 0});
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!elephants.empty() && i % every == 0) {
      ids.push_back(elephants[(i / every) % elephants.size()]);
    } else {
      ids.push_back(flow_id(gen.next()));
    }
  }
  return ids;
}

/// Full observable-state equality between two memento instances (the shard
/// and snapshot suites' yardstick).
void expect_identical(const sketch& a, const sketch& b) {
  ASSERT_EQ(a.stream_length(), b.stream_length());
  ASSERT_EQ(a.forced_drains(), b.forced_drains());
  ASSERT_EQ(a.overflow_entries(), b.overflow_entries());
  ASSERT_EQ(a.window_phase(), b.window_phase());
  const auto keys_a = a.monitored_keys();
  ASSERT_EQ(keys_a, b.monitored_keys());
  for (const auto& k : keys_a) {
    ASSERT_DOUBLE_EQ(a.query(k), b.query(k)) << "key " << k;
  }
}

// Load/coverage scoring comes from shard/rebalance.hpp (shard_load_ratio,
// coverage_spread): one implementation shared with the fig5 bench, so the
// CI-asserted artifact and this suite measure the same thing.

std::vector<std::uint64_t> shard_streams(const sharded& front) {
  std::vector<std::uint64_t> n;
  for (std::size_t s = 0; s < front.num_shards(); ++s) n.push_back(front.shard(s).stream_length());
  return n;
}

double recall_at(const sharded& front, double theta, const std::vector<std::uint64_t>& truth) {
  const auto found = front.heavy_hitters(theta);
  std::size_t hit = 0;
  for (const auto& key : truth) {
    if (std::any_of(found.begin(), found.end(), [&](const auto& hh) { return hh.key == key; })) {
      ++hit;
    }
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

// --- table-mode partitioner -------------------------------------------------

TEST(ShardTable, UniformTableRoutesBitIdenticallyToHashMode) {
  // floor(fastrange64(h, c*N) / c) == fastrange64(h, N): the TABLE/HASH
  // agreement every uniform-table differential below rests on.
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
                        std::size_t{8}}) {
    for (std::size_t per : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      partitioner hash_mode(n);
      partitioner table_mode(n, shard_table::uniform(n, per));
      ASSERT_TRUE(table_mode.weighted());
      ASSERT_EQ(table_mode.buckets(), n * per);
      for (std::uint64_t x = 0; x < 50000; ++x) {
        ASSERT_EQ(hash_mode(x), table_mode(x)) << "key " << x << " n " << n << " per " << per;
        // bucket -> shard composition agrees with direct routing.
        ASSERT_EQ(table_mode(x), table_mode.shard_of_bucket(table_mode.bucket_of(x)));
        ASSERT_EQ(hash_mode(x), hash_mode.shard_of_bucket(hash_mode.bucket_of(x)));
      }
    }
  }
  EXPECT_TRUE(shard_table::uniform(4).is_uniform(4));
  EXPECT_FALSE(shard_table::uniform(4).is_uniform(2));
}

TEST(ShardTable, RejectsMalformedTables) {
  shard_table bad;
  EXPECT_FALSE(bad.valid_for(2));  // empty
  bad.to_shard = {0, 1, 0};        // 3 buckets, 2 shards: not a multiple
  EXPECT_FALSE(bad.valid_for(2));
  bad.to_shard = {0, 2};           // entry out of range
  EXPECT_FALSE(bad.valid_for(2));
  bad.to_shard = {0, 1};
  EXPECT_TRUE(bad.valid_for(2));
  EXPECT_THROW(partitioner(2, shard_table{{0, 2}}), std::invalid_argument);
  EXPECT_THROW((sharded{shard_config{1000, 8, 1.0, 1, 2}, shard_table{{0, 1, 0}}}),
               std::invalid_argument);
}

TEST(ShardTable, UniformTableFrontendIsBitIdenticalToHashFrontend) {
  // The acceptance bar's differential half: a weighted frontend with the
  // uniform table must shard, sample and answer exactly like the PR 3
  // hash-mode frontend on the same stream.
  shard_config cfg;
  cfg.window_size = 20000;
  cfg.counters = 64;
  cfg.tau = 1.0 / 4;
  cfg.seed = 11;
  cfg.shards = 4;
  const auto ids = skewed_ids(120000, 1.0, 31);

  sharded hash_front(cfg);
  sharded table_front(cfg, shard_table::uniform(cfg.shards));
  for (std::size_t i = 0; i < ids.size(); i += 509) {
    const std::size_t n = std::min<std::size_t>(509, ids.size() - i);
    hash_front.update_batch(ids.data() + i, n);
    table_front.update_batch(ids.data() + i, n);
  }
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    ASSERT_NO_FATAL_FAILURE(expect_identical(hash_front.shard(s), table_front.shard(s)));
  }
  const auto ha = hash_front.heavy_hitters(0.01);
  const auto hb = table_front.heavy_hitters(0.01);
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    ASSERT_EQ(ha[i].key, hb[i].key);
    ASSERT_DOUBLE_EQ(ha[i].estimate, hb[i].estimate);
  }
}

// --- the acceptance pin: rebalance vs static hashing ------------------------

TEST(Rebalance, TightensLoadAndCoverageOnElephantMixWithRecallNoWorse) {
  // Zipf-1.0 background plus three elephants (~8.3% of traffic each) that
  // static hashing piles onto one shard: that shard carries ~25% elephant
  // mass + its ~19% background share, nearly twice the ideal 25%.
  constexpr std::uint64_t kWindow = 100000;
  constexpr double kTheta = 0.01;
  shard_config cfg;
  cfg.window_size = kWindow;
  cfg.counters = 512;
  cfg.tau = 1.0;
  cfg.seed = 13;
  cfg.shards = 4;

  sharded front(cfg);
  const auto elephants = elephants_on_shard(front.partitioner(), /*shard=*/2, 3);
  const auto phase_a = elephant_mix(300000, 1.0, 7, elephants, /*every=*/4);
  front.update_batch(phase_a.data(), phase_a.size());

  // Static imbalance is real before we claim to fix it.
  const double static_ratio_a = shard_load_ratio(front);
  ASSERT_GT(static_ratio_a, 1.5) << "mix failed to produce an imbalance worth rebalancing";

  sharded static_front = front;  // keeps hashing; the control arm
  const coverage_rebalancer policy;
  ASSERT_TRUE(front.rebalance(policy));
  ASSERT_TRUE(front.partitioner().weighted());
  ASSERT_FALSE(front.partitioner().table().is_uniform(cfg.shards));
  // Deliberate split: the policy must not leave all elephants together.
  std::vector<std::size_t> owners;
  for (const auto e : elephants) owners.push_back(front.shard_of(e));
  std::sort(owners.begin(), owners.end());
  EXPECT_GT(std::unique(owners.begin(), owners.end()) - owners.begin(), 1)
      << "rebalance left every elephant on one shard";

  // Movement bound (PR 4's contract, re-pinned through the weighted path):
  // every pre-rebalance heavy hitter's estimate moved <= one threshold unit.
  const double unit = static_cast<double>(static_front.shard(0).overflow_threshold()) /
                      static_front.shard(0).tau();
  for (const auto& hh : static_front.heavy_hitters(kTheta)) {
    EXPECT_LE(std::abs(front.query(hh.key) - hh.estimate), unit + 1e-9) << "key " << hh.key;
  }

  // Phase B: same mix keeps flowing into both arms; measure the realized
  // balance of the NEW traffic and the window coverage each arm ends with.
  const auto before_static = shard_streams(static_front);
  const auto before_rebalanced = shard_streams(front);
  const auto phase_b = elephant_mix(200000, 1.0, 8, elephants, /*every=*/4);
  exact_window<std::uint64_t> oracle(kWindow);
  for (const auto id : phase_b) oracle.add(id);
  static_front.update_batch(phase_b.data(), phase_b.size());
  front.update_batch(phase_b.data(), phase_b.size());

  const double static_ratio = shard_load_ratio(static_front, before_static);
  const double rebalanced_ratio = shard_load_ratio(front, before_rebalanced);
  const double static_spread = coverage_spread(static_front);
  const double rebalanced_spread = coverage_spread(front);
  // Measurably tighter, with deterministic margins (fixed seeds).
  EXPECT_GT(static_ratio, 1.6);
  EXPECT_LT(rebalanced_ratio, static_ratio - 0.4);
  EXPECT_LT(rebalanced_ratio, 1.35);
  EXPECT_LT(rebalanced_spread, static_spread - 0.2);
  EXPECT_LT(rebalanced_spread, 1.5);

  // Recall against the exact last-W window: no worse than static hashing,
  // and solid in absolute terms.
  const double bar = kTheta * static_cast<double>(kWindow);
  std::vector<std::uint64_t> truth;
  oracle.for_each([&](const std::uint64_t& key, std::uint64_t count) {
    if (static_cast<double>(count) >= bar) truth.push_back(key);
  });
  ASSERT_FALSE(truth.empty());
  const double recall_static = recall_at(static_front, kTheta, truth);
  const double recall_rebalanced = recall_at(front, kTheta, truth);
  EXPECT_GE(recall_rebalanced, recall_static);
  EXPECT_GE(recall_rebalanced, 0.8);
}

TEST(Rebalance, ControllerRecoversAdversarialSkewWithoutManualCall) {
  // Adversarial skew: EIGHT elephants, each ~10% of traffic, all hashed
  // onto shard 0 - that shard carries ~85% of the stream (80% elephant
  // mass + its quarter of the 20% Zipf background). Nobody calls
  // rebalance(); the frontend is handed to the autonomic controller on a
  // fake clock, which must notice, fire on its own, and recover the
  // per-segment balance to the ISSUE's bars: load ratio <= 1.1, coverage
  // spread <= 1.05, recall no worse than the static arm.
  constexpr std::uint64_t kWindow = 100000;
  constexpr double kTheta = 0.01;
  constexpr std::size_t kChunk = 30000;
  shard_config cfg;
  cfg.window_size = kWindow;
  // Generous counter budget: the planner's per-bucket model is built from
  // the live candidate sets, and the 1.05 bar needs those sets to actually
  // cover the background - starved counters leave the idle shards' buckets
  // churn-inflated and the first plan lands near 1.2 instead.
  cfg.counters = 2048;
  cfg.tau = 1.0;
  cfg.seed = 13;
  cfg.shards = 4;

  sharded front(cfg);
  sharded static_front = front;  // keeps hashing forever; the control arm
  const auto elephants = elephants_on_shard(front.partitioner(), /*shard=*/0, 8);
  // 4 of every 5 packets round-robin the elephants (each ~10% of the
  // stream); the remainder is near-flat Zipf-0.5 background over a small
  // universe - the planner measures elephants from the candidate sets and
  // spreads the mouse residue evenly, so the background must actually BE
  // even (and candidate-coverable) for its plan to realize the 1.05 bar.
  // Same seed both phases: the bucket loads the planner balanced on are
  // the loads phase B offers.
  const auto mix = [&](std::size_t n, std::uint64_t seed) {
    trace_generator gen(trace_config{1u << 10, 0.5, seed, 0});
    std::vector<std::uint64_t> ids;
    ids.reserve(n);
    std::size_t e = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 5 == 4) {
        ids.push_back(flow_id(gen.next()));
      } else {
        ids.push_back(elephants[e++ % elephants.size()]);
      }
    }
    return ids;
  };

  // The premise must be real: static hashing puts > 80% of phase A on
  // shard 0.
  const auto phase_a = mix(120000, 7);
  static_front.update_batch(phase_a.data(), phase_a.size());
  const double shard0_share =
      static_cast<double>(static_front.shard(0).stream_length()) /
      static_cast<double>(static_front.stream_length());
  ASSERT_GT(shard0_share, 0.8) << "mix failed to concentrate on one shard";

  // Hand the other arm to the controller: chunked ingest with a monitor
  // tick after every chunk, exactly how a cooperative embedding runs.
  checkpoint_store store;
  front_host<sharded> host(front, store);
  controller_config ccfg;
  ccfg.sample_interval_ns = 100'000'000;
  ccfg.min_segment_packets = 4096;
  ccfg.load_ratio_high = 1.5;
  ccfg.load_ratio_clear = 1.1;
  ccfg.sustain_ticks = 2;
  ccfg.rebalance_cooldown_ns = 0;
  fake_clock clk;
  controller ctl(ccfg, clk);
  clk.advance_ms(100);
  ctl.tick(host);  // baseline
  const auto drive = [&](const std::vector<std::uint64_t>& ids) {
    for (std::size_t i = 0; i < ids.size(); i += kChunk) {
      front.update_batch(ids.data() + i, std::min(kChunk, ids.size() - i));
      clk.advance_ms(100);
      ctl.tick(host);
    }
  };
  drive(phase_a);

  // The controller fired by itself - this test never calls rebalance().
  EXPECT_GE(ctl.log().count(control_event::alarm_raised), 1u);
  ASSERT_GE(ctl.log().count(control_event::rebalance_applied), 1u);
  ASSERT_TRUE(front.partitioner().weighted());

  // Phase B: the same mix keeps flowing into both arms.
  const auto before_static = shard_streams(static_front);
  const auto before_rebalanced = shard_streams(front);
  const auto phase_b = mix(300000, 7);
  exact_window<std::uint64_t> oracle(kWindow);
  for (const auto id : phase_b) oracle.add(id);
  static_front.update_batch(phase_b.data(), phase_b.size());
  drive(phase_b);

  // Recovery bars on the NEW traffic: whole-phase ratio and the
  // controller's own final judged segment (equal windows make its segment
  // coverage spread the same max/min rate measure).
  EXPECT_GT(shard_load_ratio(static_front, before_static), 5.0);
  EXPECT_LE(shard_load_ratio(front, before_rebalanced), 1.1);
  EXPECT_LE(ctl.last_load_ratio(), 1.1);
  EXPECT_LE(ctl.last_coverage_spread(), 1.05);
  EXPECT_FALSE(ctl.alarm());

  // Recall against the exact last-W window: no worse than static hashing.
  const double bar = kTheta * static_cast<double>(kWindow);
  std::vector<std::uint64_t> truth;
  oracle.for_each([&](const std::uint64_t& key, std::uint64_t count) {
    if (static_cast<double>(count) >= bar) truth.push_back(key);
  });
  ASSERT_FALSE(truth.empty());
  const double recall_static = recall_at(static_front, kTheta, truth);
  const double recall_rebalanced = recall_at(front, kTheta, truth);
  EXPECT_GE(recall_rebalanced, recall_static);
  EXPECT_GE(recall_rebalanced, 0.8);
}

TEST(Rebalance, NoOpOnBalancedTrafficAndDeterministicPlans) {
  shard_config cfg;
  cfg.window_size = 40000;
  cfg.counters = 128;
  cfg.tau = 1.0;
  cfg.seed = 3;
  cfg.shards = 4;
  sharded front(cfg);
  const auto ids = skewed_ids(200000, 0.4, 17, 1u << 16);  // flat mix: no elephants
  front.update_batch(ids.data(), ids.size());

  sharded untouched = front;
  const coverage_rebalancer policy;
  EXPECT_FALSE(policy.plan(front).has_value());
  EXPECT_FALSE(front.rebalance(policy));
  EXPECT_FALSE(front.partitioner().weighted());
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    ASSERT_NO_FATAL_FAILURE(expect_identical(front.shard(s), untouched.shard(s)));
  }

  // Determinism: two replicas of the same skewed state plan the same table.
  const auto elephants = elephants_on_shard(front.partitioner(), 0, 2);
  const auto skew = elephant_mix(150000, 1.0, 23, elephants, 4);
  front.update_batch(skew.data(), skew.size());
  sharded replica = front;
  const auto plan_a = policy.plan(front);
  const auto plan_b = policy.plan(replica);
  ASSERT_TRUE(plan_a.has_value());
  ASSERT_TRUE(plan_b.has_value());
  EXPECT_TRUE(*plan_a == *plan_b);
  // An N=1 frontend can never rebalance.
  sharded solo(shard_config{10000, 32, 1.0, 1, 1});
  const auto solo_ids = skewed_ids(50000, 1.2, 29);
  solo.update_batch(solo_ids.data(), solo_ids.size());
  EXPECT_FALSE(solo.rebalance(policy));
}

// --- weighted snapshots -----------------------------------------------------

TEST(Rebalance, WeightedFrontendSnapshotRoundTripsWithRoutingIntact) {
  shard_config cfg;
  cfg.window_size = 60000;
  cfg.counters = 256;
  cfg.tau = 0.5;
  cfg.seed = 19;
  cfg.shards = 4;
  sharded front(cfg);
  const auto elephants = elephants_on_shard(front.partitioner(), 1, 3);
  const auto ids = elephant_mix(250000, 1.0, 41, elephants, 4);
  front.update_batch(ids.data(), ids.size());
  ASSERT_TRUE(front.rebalance(coverage_rebalancer{}));
  ASSERT_TRUE(front.partitioner().weighted());

  const auto buf = snapshot::save(front);
  auto back = snapshot::restore<sharded>(buf);
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->partitioner().weighted());
  ASSERT_TRUE(back->partitioner().table() == front.partitioner().table());
  for (std::uint64_t k = 0; k < 3000; ++k) ASSERT_EQ(front.shard_of(k), back->shard_of(k));
  for (const auto e : elephants) ASSERT_EQ(front.shard_of(e), back->shard_of(e));

  // Continue both: the restored weighted frontend must keep routing and
  // sampling bit-identically.
  const auto more = elephant_mix(120000, 1.0, 43, elephants, 4);
  front.update_batch(more.data(), more.size());
  back->update_batch(more.data(), more.size());
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    ASSERT_NO_FATAL_FAILURE(expect_identical(front.shard(s), back->shard(s)));
  }
  // config_snapshot survives the trip (rebalance after restore reuses it).
  EXPECT_EQ(back->config_snapshot().seed, cfg.seed);
  EXPECT_EQ(back->config_snapshot().shards, cfg.shards);
}

TEST(Rebalance, WireRejectsMalformedBucketTables) {
  shard_config cfg{4000, 32, 1.0, 3, 2};
  sharded front(cfg);
  const auto ids = skewed_ids(12000, 1.0, 57);
  front.update_batch(ids.data(), ids.size());

  // Valid v2 envelope builder with a hand-chosen table section.
  auto build = [&](std::uint64_t buckets, const std::vector<std::uint64_t>& entries) {
    wire::writer w;
    w.u32(snapshot::kMagic);
    const auto tok = w.begin_section(sharded::kWireTag, sharded::kWireVersion);
    w.varint(2);
    w.u64(cfg.seed);
    w.varint(buckets);
    for (const auto e : entries) w.varint(e);
    front.shard(0).save(w);
    front.shard(1).save(w);
    w.end_section(tok);
    return w.take();
  };

  // Control: the envelope itself is sound (uniform 2-shard table decodes).
  EXPECT_TRUE(snapshot::restore<sharded>(build(4, {0, 0, 1, 1})).has_value());
  // Bucket count not a multiple of the shard count.
  EXPECT_FALSE(snapshot::restore<sharded>(build(3, {0, 0, 1})).has_value());
  // Table entry out of range.
  EXPECT_FALSE(snapshot::restore<sharded>(build(4, {0, 0, 1, 2})).has_value());
  // Lying bucket count far beyond the payload (must die before allocating).
  EXPECT_FALSE(snapshot::restore<sharded>(build(1u << 30, {})).has_value());
}

// --- reshard edge cases the policy leans on ---------------------------------

TEST(Reshard, CollapseToSingleShardKeepsEstimatesAndKeepsRunning) {
  // M=1: scale-in all the way. Every key lands on shard 0, estimates move
  // <= one unit, and the collapsed instance keeps ingesting.
  shard_config cfg{80000, 256, 1.0, 9, 4};
  sharded front(cfg);
  const auto ids = skewed_ids(240000, 1.0, 63, 1u << 14);
  front.update_batch(ids.data(), ids.size());

  shard_config solo = cfg;
  solo.shards = 1;
  auto collapsed = snapshot_builder::reshard(front, solo);
  ASSERT_TRUE(collapsed.has_value());
  ASSERT_EQ(collapsed->num_shards(), 1u);
  ASSERT_DOUBLE_EQ(collapsed->estimate_width(), front.estimate_width());

  const double unit =
      static_cast<double>(front.shard(0).overflow_threshold()) / front.shard(0).tau();
  std::size_t compared = 0;
  for (const auto& hh : front.heavy_hitters(0.01)) {
    EXPECT_LE(std::abs(collapsed->query(hh.key) - hh.estimate), unit + 1e-9);
    ++compared;
  }
  ASSERT_GT(compared, 0u);

  const auto more = skewed_ids(100000, 1.0, 67, 1u << 14);
  collapsed->update_batch(more.data(), more.size());
  EXPECT_EQ(collapsed->stream_length(),
            ids.size() + more.size());  // sum_stream / 1 carried exactly, then grew
  EXPECT_LT(collapsed->shard(0).window_phase(), collapsed->shard(0).window_size());
}

TEST(Reshard, RoundTripNtoMtoNIsQueryStable) {
  // N -> M -> N with M > N and few distinct flows (no capacity drops): keys
  // return to their original owners and every piece of carried state -
  // overflow counts, in-frame counts - re-buckets to exactly the original
  // per-key answers.
  shard_config cfg{64000, 512, 1.0, 5, 2};
  sharded front(cfg);
  const auto ids = skewed_ids(240000, 1.1, 71, 256);  // 256 distinct flows
  front.update_batch(ids.data(), ids.size());

  shard_config wide = cfg;
  wide.shards = 8;
  auto out = snapshot_builder::reshard(front, wide);
  ASSERT_TRUE(out.has_value());
  auto back = snapshot_builder::reshard(*out, cfg);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->num_shards(), front.num_shards());
  EXPECT_EQ(back->stream_length(), front.stream_length());

  for (std::size_t s = 0; s < front.num_shards(); ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    const auto& a = front.shard(s);
    const auto& b = back->shard(s);
    ASSERT_EQ(a.overflow_entries(), b.overflow_entries());
    auto keys_a = a.monitored_keys();
    auto keys_b = b.monitored_keys();
    std::sort(keys_a.begin(), keys_a.end());
    std::sort(keys_b.begin(), keys_b.end());
    ASSERT_EQ(keys_a, keys_b);
    for (const auto& k : keys_a) {
      ASSERT_DOUBLE_EQ(a.query(k), b.query(k)) << "key " << k;
    }
  }
  // And repeated round trips stay put (the state is a fixpoint now).
  auto out2 = snapshot_builder::reshard(*back, wide);
  ASSERT_TRUE(out2.has_value());
  auto back2 = snapshot_builder::reshard(*out2, cfg);
  ASSERT_TRUE(back2.has_value());
  for (std::size_t s = 0; s < front.num_shards(); ++s) {
    const auto& a = back->shard(s);
    const auto& b = back2->shard(s);
    auto keys = a.monitored_keys();
    for (const auto& k : keys) ASSERT_DOUBLE_EQ(a.query(k), b.query(k));
  }
}

// --- 2-D hierarchical frontend: the PR 9 acceptance pin ----------------------

TEST(RebalanceHHH, TwoDimElephantPrefixMixRebalancesWithRecallNoWorse) {
  // Six elephant (src, dst) pairs whose /8 route pairs all hash to one shard:
  // under static hashing that shard carries ~53% of the traffic (ideal: 25%),
  // its window covers under half the nominal W, and the elephants' routed
  // estimates sink below the detection bar. The coverage_rebalancer must
  // split the elephant buckets (load ratio <= 1.1 on post-rebalance traffic)
  // and recover the elephants that static hashing drops.
  using front_t = sharded_h_memento<two_dim_hierarchy>;
  constexpr std::uint64_t kWindow = 400000;  // 100000 per shard
  constexpr double kTheta = 0.085;
  const h_memento_config cfg{kWindow, 2048, 1.0, /*delta=*/0.05, 21};
  front_t front(cfg, 4);

  // Deterministic elephants: distinct route pairs, distinct buckets, all on
  // shard 0 - each a separately movable unit, exactly like the flat suite's
  // elephants_on_shard.
  std::vector<packet> elephants;
  {
    xoshiro256 rng(5);
    std::vector<std::size_t> buckets;
    while (elephants.size() < 6) {
      const std::uint32_t src = static_cast<std::uint32_t>(rng());
      const packet p{src, static_cast<std::uint32_t>(rng())};
      if (front.shard_of(p) != 0) continue;
      const std::size_t b = front.bucket_of(two_dim_hierarchy::full_key(p));
      if (std::find(buckets.begin(), buckets.end(), b) != buckets.end()) continue;
      elephants.push_back(p);
      buckets.push_back(b);
    }
  }

  // 10-packet rounds: one appearance per elephant (10% of traffic each,
  // exactly 40000 per window - above the 8.5% bar by construction) plus 4
  // uniform mice (fresh random pairs: hash-uniform across buckets, so the
  // planner's evenly-spread mouse residue is the exactly right model).
  xoshiro256 bg(99);
  auto mouse = [&] {
    const std::uint32_t src = static_cast<std::uint32_t>(bg());
    return packet{src, static_cast<std::uint32_t>(bg())};
  };
  for (std::size_t r = 0; r < 80000; ++r) {  // two full windows of skew
    for (const auto& e : elephants) front.update(e);
    for (int j = 0; j < 4; ++j) front.update(mouse());
  }
  ASSERT_GT(shard_load_ratio(front), 1.5) << "mix failed to overload shard 0";

  front_t static_front = front;  // the control arm keeps hashing
  const coverage_rebalancer policy;
  ASSERT_TRUE(front.rebalance(policy));
  ASSERT_TRUE(front.partitioner().weighted());
  std::vector<std::size_t> owners;
  for (const auto& e : elephants) owners.push_back(front.shard_of(e));
  std::sort(owners.begin(), owners.end());
  EXPECT_GT(std::unique(owners.begin(), owners.end()) - owners.begin(), 1)
      << "rebalance left every elephant on one shard";

  // Phase B: the same mix keeps flowing into both arms (identical packets -
  // recorded once so both arms see the very same mice).
  std::vector<packet> phase_b;
  phase_b.reserve(80000 * 10);
  for (std::size_t r = 0; r < 80000; ++r) {
    for (const auto& e : elephants) phase_b.push_back(e);
    for (int j = 0; j < 4; ++j) phase_b.push_back(mouse());
  }
  std::vector<std::uint64_t> before_static, before_rebalanced;
  for (std::size_t s = 0; s < 4; ++s) {
    before_static.push_back(static_front.shard(s).stream_length());
    before_rebalanced.push_back(front.shard(s).stream_length());
  }
  static_front.update_batch(phase_b.data(), phase_b.size());
  front.update_batch(phase_b.data(), phase_b.size());

  // The ISSUE acceptance bar: realized post-rebalance load ratio <= 1.1
  // while the static arm stays badly imbalanced.
  EXPECT_GT(shard_load_ratio(static_front, before_static), 1.8);
  EXPECT_LE(shard_load_ratio(front, before_rebalanced), 1.1);
  EXPECT_LT(coverage_spread(front), coverage_spread(static_front));

  // Recall over the elephants (true hitters by construction: 10% > theta):
  // no worse than the static arm, and complete in absolute terms.
  auto elephants_found = [&](const front_t& f) {
    const auto out = f.output(kTheta);
    std::size_t hit = 0;
    for (const auto& e : elephants) {
      const auto key = two_dim_hierarchy::full_key(e);
      if (std::any_of(out.begin(), out.end(), [&](const auto& h) { return h.key == key; })) ++hit;
    }
    return hit;
  };
  const std::size_t recall_static = elephants_found(static_front);
  const std::size_t recall_rebalanced = elephants_found(front);
  EXPECT_GE(recall_rebalanced, recall_static);
  EXPECT_EQ(recall_rebalanced, elephants.size());
  EXPECT_LT(recall_static, elephants.size())
      << "static arm no longer drops elephants; the scenario lost its teeth";
}

// --- pool: rebalance under concurrent ingest --------------------------------

TEST(Rebalance, PoolRebalanceUnderConcurrentIngestMatchesDeterministicFrontend) {
  // Ingest rounds with a mid-stream rebalance while the worker threads are
  // live: after each drain the pool must be bit-identical to the
  // deterministic frontend driven through the same bursts and the same
  // policy at the same point. Run under TSan in CI (tsan job), where the
  // drain barrier + table publish must be clean with no extra locks.
  shard_config cfg;
  cfg.window_size = 30000;
  cfg.counters = 96;
  cfg.tau = 1.0 / 4;
  cfg.seed = 17;
  cfg.shards = 3;

  sharded reference(cfg);
  sharded_memento_pool<std::uint64_t> pool(cfg, /*ring_capacity=*/1u << 12);
  const auto elephants = elephants_on_shard(reference.partitioner(), 0, 3);
  const coverage_rebalancer policy;

  std::size_t migrations = 0;
  for (int round = 0; round < 6; ++round) {
    const auto ids =
        elephant_mix(40000, 1.0, 100 + static_cast<std::uint64_t>(round), elephants, 4);
    for (std::size_t i = 0; i < ids.size(); i += 700) {
      const std::size_t n = std::min<std::size_t>(700, ids.size() - i);
      reference.update_batch(ids.data() + i, n);
      pool.ingest(ids.data() + i, n);
    }
    if (round == 2 || round == 4) {
      const bool moved_pool = pool.rebalance(policy);
      const bool moved_ref = reference.rebalance(policy);
      ASSERT_EQ(moved_pool, moved_ref) << "round " << round;
      if (moved_pool) ++migrations;
    }
    pool.drain();
    ASSERT_EQ(pool.frontend().stream_length(), reference.stream_length());
    for (std::size_t s = 0; s < cfg.shards; ++s) {
      SCOPED_TRACE("round " + std::to_string(round) + " shard " + std::to_string(s));
      ASSERT_NO_FATAL_FAILURE(expect_identical(pool.frontend().shard(s), reference.shard(s)));
    }
  }
  // The elephants make the first rebalance real; later rounds may or may
  // not re-trigger, but at least one migration must have happened for this
  // test to mean anything.
  ASSERT_GE(migrations, 1u);
  ASSERT_TRUE(pool.frontend().partitioner().weighted());

  const auto hh_pool = pool.heavy_hitters(0.02);
  const auto hh_ref = reference.heavy_hitters(0.02);
  ASSERT_EQ(hh_pool.size(), hh_ref.size());
  for (std::size_t i = 0; i < hh_pool.size(); ++i) {
    ASSERT_EQ(hh_pool[i].key, hh_ref[i].key);
    ASSERT_DOUBLE_EQ(hh_pool[i].estimate, hh_ref[i].estimate);
  }
}

}  // namespace
}  // namespace memento
