// Run-to-completion pipeline suite (src/pipeline/pipeline.hpp).
//
// The load-bearing property is again differential: the pipeline in
// deterministic mode must leave the frontend BIT-IDENTICAL (save() bytes)
// to a plain sharded_memento fed the same packets' flow keys - the stage
// refactor moved code, not semantics - and the threaded push mode must
// land in the same place after drain(). Detection in observe mode is
// read-only on the sketch, so turning it on must not perturb either
// identity; enforce mode is where mitigation becomes visible, and its
// effect (blocked subnets stop reaching the sketch) is pinned directly.
//
// Backpressure invariants ride along: every offered packet is accounted
// exactly once (enqueued xor dropped), block never drops, the occupancy
// high-water mark is monotone and capacity-bounded. The stress test at the
// bottom runs ingest + drain + rebalance concurrently and exists chiefly
// for the TSan CI job.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "shard/rebalance.hpp"
#include "shard/sharded_memento.hpp"
#include "trace/packet_ring.hpp"
#include "trace/trace_generator.hpp"
#include "util/wire.hpp"

namespace memento {
namespace {

std::vector<std::uint8_t> frontend_bytes(const sharded_memento<std::uint64_t>& f) {
  wire::writer w;
  f.save(w);
  return w.data();
}

std::vector<std::uint64_t> keys_of(const std::vector<packet>& pkts) {
  std::vector<std::uint64_t> keys;
  keys.reserve(pkts.size());
  for (const auto& p : pkts) keys.push_back(flow_id(p));
  return keys;
}

pipeline_config small_config(std::size_t cores, std::uint64_t detect_stride = 0) {
  pipeline_config cfg;
  cfg.sharding.window_size = 1u << 14;
  cfg.sharding.counters = 256;
  cfg.sharding.seed = 7;
  cfg.sharding.shards = cores;
  cfg.detect_stride = detect_stride;
  return cfg;
}

/// A trace where one /8 source subnet carries `flood_per_mille`/1000 of the
/// packets across a handful of flows - heavy enough that every shard's
/// candidate set sees the subnet far above the block threshold.
std::vector<packet> flood_trace(std::size_t n, std::uint32_t subnet_byte,
                                unsigned flood_per_mille) {
  std::vector<packet> pkts;
  pkts.reserve(n);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;  // xorshift: deterministic, seed-free variety
    packet p;
    if (x % 1000 < flood_per_mille) {
      p.src = (subnet_byte << 24) | static_cast<std::uint32_t>(x % 16);  // 16 flood flows
      p.dst = 0x0A000001u;
    } else {
      p.src = static_cast<std::uint32_t>(x >> 32) | 0x40000000u;  // spread background
      p.dst = static_cast<std::uint32_t>(x);
      if ((p.src >> 24) == subnet_byte) p.src ^= 0x01000000u;  // keep it out of the flood /8
    }
    pkts.push_back(p);
  }
  return pkts;
}

// --- deterministic mode: the refactor moved code, not semantics -------------

TEST(PipelineDeterministic, BitIdenticalToShardedFrontend) {
  for (const std::size_t cores : {std::size_t{1}, std::size_t{4}}) {
    // Detection ON (observe mode) on one of the two geometries: sweeps are
    // read-only on the sketch, so the identity must survive them.
    const auto cfg = small_config(cores, cores == 4 ? 1000 : 0);
    pipeline<> pipe(cfg);

    const auto trace = make_trace(trace_kind::backbone, 60'000, 11);
    // Deliver in coprime-sized bursts so burst boundaries land everywhere.
    for (std::size_t at = 0; at < trace.size(); at += 997) {
      const std::size_t n = std::min<std::size_t>(997, trace.size() - at);
      pipe.process(trace.data() + at, n);
    }

    sharded_memento<std::uint64_t> reference(cfg.sharding);
    const auto keys = keys_of(trace);
    reference.update_batch(keys.data(), keys.size());

    EXPECT_EQ(frontend_bytes(pipe.frontend()), frontend_bytes(reference))
        << "cores=" << cores;
    const auto total = pipe.report();
    EXPECT_EQ(total.ingested, trace.size());
    EXPECT_EQ(total.mitigated, 0u);  // observe mode never drops
    EXPECT_EQ(total.drops, 0u);      // no rings involved in deterministic mode
    if (cores == 4) {
      EXPECT_GT(pipe.report(0).detect_sweeps, 0u);
    }
  }
}

TEST(PipelineDeterministic, PerCoreAccountingSumsToOffered) {
  pipeline<> pipe(small_config(3));
  const auto trace = make_trace(trace_kind::datacenter, 30'000, 5);
  pipe.process(trace.data(), trace.size());
  std::uint64_t sum = 0;
  for (std::size_t c = 0; c < pipe.cores(); ++c) {
    const auto r = pipe.report(c);
    EXPECT_EQ(r.ingested, pipe.frontend().shard(c).stream_length());
    sum += r.ingested;
  }
  EXPECT_EQ(sum, trace.size());
}

// --- threaded push mode ------------------------------------------------------

TEST(PipelinePush, DrainedStateMatchesDeterministic) {
  const auto cfg = small_config(4, 1000);  // observe-mode detection on
  pipeline<> threaded(cfg);
  threaded.start();
  const auto trace = make_trace(trace_kind::backbone, 60'000, 11);
  for (std::size_t at = 0; at < trace.size(); at += 1009) {
    const std::size_t n = std::min<std::size_t>(1009, trace.size() - at);
    threaded.process(trace.data() + at, n);
  }
  threaded.drain();

  sharded_memento<std::uint64_t> reference(cfg.sharding);
  const auto keys = keys_of(trace);
  reference.update_batch(keys.data(), keys.size());
  EXPECT_EQ(frontend_bytes(threaded.frontend()), frontend_bytes(reference));

  // Block policy: lossless, and the consumer-side counters agree with the
  // producer-side ring accounting once drained.
  std::uint64_t ingested = 0;
  for (std::size_t c = 0; c < threaded.cores(); ++c) {
    const auto r = threaded.report(c);
    EXPECT_EQ(r.rx.drops, 0u);
    EXPECT_EQ(r.ingested, r.rx.enqueued);
    EXPECT_LE(r.rx.occupancy_hwm, cfg.ring_capacity);
    ingested += r.ingested;
  }
  EXPECT_EQ(ingested, trace.size());
  threaded.stop();
}

TEST(PipelinePush, StopDrainsAndRestartResumes) {
  pipeline<> pipe(small_config(2));
  const auto trace = make_trace(trace_kind::edge, 20'000, 3);
  pipe.start();
  pipe.process(trace.data(), trace.size());
  pipe.stop();  // stop() doubles as a drain: enqueued bursts always finish
  EXPECT_EQ(pipe.report().ingested, trace.size());
  pipe.start();
  pipe.process(trace.data(), trace.size());
  pipe.drain();
  EXPECT_EQ(pipe.report().ingested, 2 * trace.size());
  pipe.stop();
}

// --- backpressure accounting -------------------------------------------------

TEST(PipelineBackpressure, DropPolicyCountsEveryPacketExactlyOnce) {
  auto cfg = small_config(2);
  cfg.ring_capacity = 64;
  cfg.policy = backpressure_policy::drop;
  pipeline<> pipe(cfg);

  // No workers: each ring accepts at most its capacity, the rest MUST be
  // counted as drops - the exactly-once identity with a deterministic
  // shortfall.
  const auto trace = make_trace(trace_kind::backbone, 10'000, 19);
  std::vector<std::vector<packet>> steered =
      rss_steer(std::span<const packet>(trace), pipe.cores(),
                [&](const packet& p) { return pipe.core_of(p); });
  pipe.start();
  std::uint64_t offered = 0;
  for (std::size_t c = 0; c < pipe.cores(); ++c) {
    offered += steered[c].size();
    pipe.offer(c, std::span<const packet>(steered[c]));
  }
  pipe.drain();
  std::uint64_t enqueued = 0, drops = 0, ingested = 0;
  for (std::size_t c = 0; c < pipe.cores(); ++c) {
    const auto r = pipe.report(c);
    enqueued += r.rx.enqueued;
    drops += r.rx.drops;
    ingested += r.ingested;
  }
  EXPECT_EQ(enqueued + drops, offered);  // exactly once, no double counting
  EXPECT_EQ(ingested, enqueued);         // what was accepted was processed
  EXPECT_EQ(pipe.report().drops, drops);
  pipe.stop();
}

TEST(PipelineBackpressure, BlockPolicyNeverDropsEvenWithTinyRings) {
  auto cfg = small_config(2);
  cfg.ring_capacity = 64;  // far smaller than the bursts: forces waiting
  pipeline<> pipe(cfg);
  pipe.start();
  const auto trace = make_trace(trace_kind::backbone, 50'000, 23);
  for (std::size_t at = 0; at < trace.size(); at += 4096) {
    const std::size_t n = std::min<std::size_t>(4096, trace.size() - at);
    pipe.process(trace.data() + at, n);
  }
  pipe.drain();
  const auto total = pipe.report();
  EXPECT_EQ(total.drops, 0u);
  EXPECT_EQ(total.ingested, trace.size());
  EXPECT_LE(total.occupancy_hwm, 64u);
  EXPECT_GT(total.occupancy_hwm, 0u);
  pipe.stop();
}

TEST(PipelineBackpressure, OccupancyHighWaterMarkIsMonotone) {
  ring_stats stats;
  stats.note_occupancy(5);
  EXPECT_EQ(stats.occupancy_hwm, 5u);
  stats.note_occupancy(3);  // lower samples never regress the mark
  EXPECT_EQ(stats.occupancy_hwm, 5u);
  stats.note_occupancy(9);
  EXPECT_EQ(stats.occupancy_hwm, 9u);
}

// --- detect -> mitigate ------------------------------------------------------

TEST(PipelineDetect, EnforceBlocksAFloodingSubnetOnEveryCore) {
  auto cfg = small_config(2, /*detect_stride=*/2048);
  cfg.enforce = true;
  pipeline<> pipe(cfg);

  constexpr std::uint32_t kSubnet = 10;
  const auto trace = flood_trace(80'000, kSubnet, /*flood_per_mille=*/700);
  for (std::size_t at = 0; at < trace.size(); at += 1024) {
    const std::size_t n = std::min<std::size_t>(1024, trace.size() - at);
    pipe.process(trace.data() + at, n);
  }

  const auto total = pipe.report();
  EXPECT_GT(total.mitigated, 0u);
  EXPECT_GT(total.active_rules, 0u);
  for (std::size_t c = 0; c < pipe.cores(); ++c) {
    EXPECT_TRUE(pipe.blocks(c, kSubnet)) << "core " << c;
    EXPECT_GT(pipe.report(c).detect_sweeps, 0u);
  }
  // Enforcement is visible in the sketch: mitigated packets never reached
  // the update stage.
  EXPECT_EQ(pipe.frontend().stream_length() + total.mitigated, trace.size());
}

TEST(PipelineDetect, ObserveModeOnlyAccountsAndKeepsAllTraffic) {
  auto cfg = small_config(2, /*detect_stride=*/2048);
  cfg.enforce = false;
  pipeline<> pipe(cfg);
  const auto trace = flood_trace(40'000, 10, 700);
  pipe.process(trace.data(), trace.size());
  const auto total = pipe.report();
  EXPECT_EQ(total.mitigated, 0u);
  EXPECT_GT(total.active_rules, 0u);  // the policy still graded the flood
  EXPECT_EQ(pipe.frontend().stream_length(), trace.size());
}

// --- pull mode (the soak loop) -----------------------------------------------

TEST(PipelinePull, RunsToDeadlineAndTimesBursts) {
  pipeline<> pipe(small_config(2));
  const auto trace = make_trace(trace_kind::backbone, 20'000, 31);
  auto steered = rss_steer(std::span<const packet>(trace), pipe.cores(),
                           [&](const packet& p) { return pipe.core_of(p); });
  std::vector<packet_ring> sources;
  for (auto& s : steered) sources.emplace_back(std::move(s));

  const double elapsed = pipe.run_pull(std::span<packet_ring>(sources), 0.15, 128);
  EXPECT_GE(elapsed, 0.15);
  const auto total = pipe.report();
  EXPECT_GT(total.ingested, 0u);
  EXPECT_EQ(total.latency.count(), total.bursts);  // every burst was timed
  EXPECT_GT(total.latency.p99(), 0u);
  std::uint64_t offered = 0;
  for (const auto& s : sources) offered += s.offered();
  EXPECT_EQ(total.ingested, offered);  // pull mode consumes what it takes
  EXPECT_EQ(pipe.frontend().stream_length(), total.ingested);
}

TEST(PipelinePull, RejectsMismatchedSourcesAndRunningWorkers) {
  pipeline<> pipe(small_config(2));
  std::vector<packet_ring> one;
  one.emplace_back(std::vector<packet>{});
  EXPECT_THROW((void)pipe.run_pull(std::span<packet_ring>(one), 0.01),
               std::invalid_argument);
  pipe.start();
  std::vector<packet_ring> two;
  two.emplace_back(std::vector<packet>{});
  two.emplace_back(std::vector<packet>{});
  EXPECT_THROW((void)pipe.run_pull(std::span<packet_ring>(two), 0.01), std::logic_error);
  pipe.stop();
}

// --- concurrency stress (the TSan target) ------------------------------------

TEST(PipelineStress, ConcurrentIngestDrainAndRebalance) {
  auto cfg = small_config(4, /*detect_stride=*/4096);
  cfg.ring_capacity = 1u << 10;
  pipeline<> pipe(cfg);
  pipe.start();

  // Skewed traffic so the rebalancer has something to move; interleave
  // deliveries with drain barriers and live rebalances from the producer
  // thread - the full front-door lifecycle under one TSan run.
  trace_generator gen(trace_config::preset(trace_kind::backbone, 97));
  const coverage_rebalancer policy{};
  std::vector<packet> burst(2048);
  std::uint64_t offered = 0;
  for (int round = 0; round < 60; ++round) {
    for (auto& p : burst) p = gen.next();
    pipe.process(burst.data(), burst.size());
    offered += burst.size();
    if (round % 7 == 3) pipe.drain();
    if (round % 20 == 9) pipe.rebalance(policy);
  }
  pipe.drain();
  const auto total = pipe.report();
  EXPECT_EQ(total.ingested, offered);
  EXPECT_EQ(total.drops, 0u);
  EXPECT_EQ(pipe.frontend().stream_length(), offered);
  pipe.stop();
}

}  // namespace
}  // namespace memento
