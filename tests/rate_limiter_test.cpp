// Tests for the subnet token-bucket rate limiter (the "rate-limit traffic
// from entire sub-networks" capability of the paper's HAProxy extension).
#include <gtest/gtest.h>

#include <cstdint>

#include "lb/rate_limiter.hpp"

namespace memento::lb {
namespace {

constexpr std::uint32_t ip(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d) {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

TEST(RateLimiter, UnlimitedClientsAlwaysPass) {
  rate_limiter limiter;
  for (int i = 0; i < 1000; ++i) {
    limiter.tick();
    EXPECT_TRUE(limiter.admit(ip(1, 2, 3, 4)));
  }
}

TEST(RateLimiter, BurstThenBlock) {
  rate_limiter limiter;
  // /8 limited to 10 requests per 1000 observed, burst 5.
  limiter.set_limit(ip(10, 0, 0, 0), 3, /*tokens_per_kilorequest=*/10.0, /*burst=*/5.0);
  int admitted = 0;
  for (int i = 0; i < 20; ++i) {
    limiter.tick();
    admitted += limiter.admit(ip(10, 1, 2, 3));
  }
  // Burst of 5 plus ~0.2 refilled during the loop.
  EXPECT_GE(admitted, 5);
  EXPECT_LE(admitted, 6);
}

TEST(RateLimiter, RefillsAtConfiguredRate) {
  rate_limiter limiter;
  limiter.set_limit(ip(10, 0, 0, 0), 3, /*tokens_per_kilorequest=*/100.0, /*burst=*/100.0);
  // Drain the burst.
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(limiter.admit(ip(10, 5, 5, 5)));
  ASSERT_FALSE(limiter.admit(ip(10, 5, 5, 5)));
  // 1000 observed requests refill 100 tokens.
  for (int i = 0; i < 1000; ++i) limiter.tick();
  int admitted = 0;
  for (int i = 0; i < 150; ++i) admitted += limiter.admit(ip(10, 5, 5, 5));
  EXPECT_GE(admitted, 99);
  EXPECT_LE(admitted, 101);
}

TEST(RateLimiter, BurstCapsAccumulation) {
  rate_limiter limiter;
  limiter.set_limit(ip(20, 0, 0, 0), 3, /*tokens_per_kilorequest=*/1000.0, /*burst=*/3.0);
  // A long quiet period must not bank more than the burst.
  for (int i = 0; i < 100000; ++i) limiter.tick();
  int admitted = 0;
  for (int i = 0; i < 10; ++i) admitted += limiter.admit(ip(20, 1, 1, 1));
  EXPECT_EQ(admitted, 3);
}

TEST(RateLimiter, MostSpecificLimitWins) {
  rate_limiter limiter;
  limiter.set_limit(ip(10, 0, 0, 0), 3, 1000.0, 1000.0);  // generous /8
  limiter.set_limit(ip(10, 1, 0, 0), 2, 10.0, 1.0);       // tight /16 inside it
  // Client in the tight /16: limited by it, not the /8.
  ASSERT_TRUE(limiter.admit(ip(10, 1, 9, 9)));
  EXPECT_FALSE(limiter.admit(ip(10, 1, 9, 9)));
  // Sibling outside the /16 rides the generous /8 bucket.
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(limiter.admit(ip(10, 2, 9, 9)));
}

TEST(RateLimiter, SubnetsHaveIndependentBuckets) {
  rate_limiter limiter;
  limiter.set_limit(ip(10, 0, 0, 0), 3, 10.0, 2.0);
  limiter.set_limit(ip(20, 0, 0, 0), 3, 10.0, 2.0);
  // Draining one subnet must not affect the other.
  EXPECT_TRUE(limiter.admit(ip(10, 1, 1, 1)));
  EXPECT_TRUE(limiter.admit(ip(10, 1, 1, 1)));
  EXPECT_FALSE(limiter.admit(ip(10, 1, 1, 1)));
  EXPECT_TRUE(limiter.admit(ip(20, 1, 1, 1)));
  EXPECT_TRUE(limiter.admit(ip(20, 1, 1, 1)));
}

TEST(RateLimiter, ClearRestoresUnlimited) {
  rate_limiter limiter;
  limiter.set_limit(ip(10, 0, 0, 0), 3, 1.0, 1.0);
  ASSERT_TRUE(limiter.admit(ip(10, 1, 1, 1)));
  ASSERT_FALSE(limiter.admit(ip(10, 1, 1, 1)));
  limiter.clear_limit(ip(10, 0, 0, 0), 3);
  EXPECT_TRUE(limiter.admit(ip(10, 1, 1, 1)));
  limiter.set_limit(ip(10, 0, 0, 0), 3, 1.0, 1.0);
  limiter.clear();
  EXPECT_EQ(limiter.size(), 0u);
  EXPECT_TRUE(limiter.admit(ip(10, 1, 1, 1)));
}

TEST(RateLimiter, TokensDiagnostic) {
  rate_limiter limiter;
  EXPECT_EQ(limiter.tokens(ip(10, 0, 0, 0), 3), -1.0);
  limiter.set_limit(ip(10, 0, 0, 0), 3, 10.0, 5.0);
  EXPECT_DOUBLE_EQ(limiter.tokens(ip(10, 0, 0, 0), 3), 5.0);
  ASSERT_TRUE(limiter.admit(ip(10, 1, 1, 1)));
  EXPECT_DOUBLE_EQ(limiter.tokens(ip(10, 0, 0, 0), 3), 4.0);
}

TEST(RateLimiter, ApproximatesConfiguredRateLongRun) {
  rate_limiter limiter;
  limiter.set_limit(ip(10, 0, 0, 0), 3, /*tokens_per_kilorequest=*/50.0, /*burst=*/10.0);
  int admitted = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    limiter.tick();
    admitted += limiter.admit(ip(10, 1, 1, 1));
  }
  // 50 per 1000 ticks -> ~5000 admissions (+burst).
  EXPECT_NEAR(admitted, n * 50 / 1000, 50);
}

}  // namespace
}  // namespace memento::lb
