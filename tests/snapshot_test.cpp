// Snapshot-layer suite: wire primitives, restore-then-continue determinism
// for every serializable type, mergeable summaries, elastic reshard, and
// malformed-input hardening.
//
// The load-bearing invariants (ISSUE acceptance criteria):
//   * restore(save(s)) is QUERY-identical and - fed the same suffix -
//     CONTINUATION-bit-identical for space_saving, memento_sketch,
//     h_memento and sharded_memento;
//   * merging a sharded frontend's per-shard summaries reproduces the
//     frontend's heavy_hitters/top/candidate answers exactly (disjoint
//     keyspaces);
//   * an N -> M reshard preserves the Zipf recall/precision behavior the
//     shard suite pins for the live frontend;
//   * every decoder rejects truncated input with nullopt and survives
//     arbitrary corruption without crashing (run under ASan in CI via the
//     `snapshot` ctest label).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/h_memento.hpp"
#include "core/memento.hpp"
#include "hierarchy/prefix1d.hpp"
#include "shard/sharded_memento.hpp"
#include "sketch/exact_window.hpp"
#include "sketch/space_saving.hpp"
#include "snapshot/reshard.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/summary.hpp"
#include "trace/trace_generator.hpp"
#include "util/wire.hpp"

namespace memento {
namespace {

using sketch = memento_sketch<std::uint64_t>;
using sharded = sharded_memento<std::uint64_t>;
using summary = window_summary<std::uint64_t>;
using bytes_t = std::vector<std::uint8_t>;

std::vector<std::uint64_t> skewed_ids(std::size_t n, double alpha, std::uint64_t seed,
                                      std::size_t universe = 1u << 12) {
  trace_generator gen(trace_config{universe, alpha, seed, 0});
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(flow_id(gen.next()));
  return ids;
}

std::vector<packet> trace_packets(std::size_t n, std::uint64_t seed) {
  trace_generator gen(trace_kind::backbone, seed);
  std::vector<packet> ps;
  ps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ps.push_back(gen.next());
  return ps;
}

/// Full observable-state equality between two memento instances.
void expect_identical(const sketch& a, const sketch& b) {
  ASSERT_EQ(a.stream_length(), b.stream_length());
  ASSERT_EQ(a.forced_drains(), b.forced_drains());
  ASSERT_EQ(a.overflow_entries(), b.overflow_entries());
  ASSERT_EQ(a.window_phase(), b.window_phase());
  const auto keys_a = a.monitored_keys();
  ASSERT_EQ(keys_a, b.monitored_keys());
  for (const auto& k : keys_a) {
    ASSERT_DOUBLE_EQ(a.query(k), b.query(k)) << "key " << k;
    ASSERT_DOUBLE_EQ(a.query_lower(k), b.query_lower(k)) << "key " << k;
  }
  const auto ha = a.heavy_hitters(0.005);
  const auto hb = b.heavy_hitters(0.005);
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].key, hb[i].key);
    EXPECT_DOUBLE_EQ(ha[i].estimate, hb[i].estimate);
  }
}

// --- wire primitives --------------------------------------------------------

TEST(Wire, FixedWidthRoundTripsLittleEndian) {
  wire::writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(-1234.5e-3);
  // Little-endian layout is the contract, byte for byte.
  ASSERT_EQ(w.size(), 1u + 2 + 4 + 8 + 8);
  EXPECT_EQ(w.data()[0], 0xAB);
  EXPECT_EQ(w.data()[1], 0x34);
  EXPECT_EQ(w.data()[2], 0x12);
  EXPECT_EQ(w.data()[3], 0xEF);
  EXPECT_EQ(w.data()[6], 0xDE);

  wire::reader r(w.data());
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t d = 0;
  double e = 0;
  ASSERT_TRUE(r.u8(a) && r.u16(b) && r.u32(c) && r.u64(d) && r.f64(e));
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0x1234);
  EXPECT_EQ(c, 0xDEADBEEFu);
  EXPECT_EQ(d, 0x0123456789ABCDEFULL);
  EXPECT_EQ(e, -1234.5e-3);
  EXPECT_TRUE(r.done());
}

TEST(Wire, VarintRoundTripsBoundaryValues) {
  const std::uint64_t cases[] = {0,       1,        127,        128,
                                 16383,   16384,    (1u << 21) - 1,
                                 1u << 21, 1ull << 35, 1ull << 56,
                                 ~0ull - 1, ~0ull};
  for (const std::uint64_t v : cases) {
    wire::writer w;
    w.varint(v);
    wire::reader r(w.data());
    std::uint64_t back = 0;
    ASSERT_TRUE(r.varint(back)) << v;
    EXPECT_EQ(back, v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Wire, VarintRejectsOverflowAndRunaway) {
  // 11 continuation bytes: runs past the 10-byte cap.
  const bytes_t runaway(11, 0x80);
  wire::reader r1{std::span<const std::uint8_t>(runaway)};
  std::uint64_t v = 0;
  EXPECT_FALSE(r1.varint(v));
  // 10 bytes whose last group overflows 64 bits.
  bytes_t overflow(10, 0x80);
  overflow[9] = 0x02;
  wire::reader r2{std::span<const std::uint8_t>(overflow)};
  EXPECT_FALSE(r2.varint(v));
  // Truncated mid-varint.
  const bytes_t cut = {0x80};
  wire::reader r3{std::span<const std::uint8_t>(cut)};
  EXPECT_FALSE(r3.varint(v));
}

TEST(Wire, SectionsFrameAndRejectMismatches) {
  wire::writer w;
  const auto tok = w.begin_section(0xABCD, 3);
  w.u32(42);
  w.end_section(tok);
  w.u8(0x77);  // trailing data after the section

  wire::reader r(w.data());
  std::uint16_t version = 0;
  wire::reader body;
  ASSERT_TRUE(r.open_section(0xABCD, version, body));
  EXPECT_EQ(version, 3);
  std::uint32_t v = 0;
  ASSERT_TRUE(body.u32(v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(body.done());
  std::uint8_t tail = 0;
  ASSERT_TRUE(r.u8(tail));
  EXPECT_EQ(tail, 0x77);

  wire::reader wrong(w.data());
  EXPECT_FALSE(wrong.open_section(0x1111, version, body));  // tag mismatch

  // A section length running past the buffer is a decode failure.
  bytes_t lying(w.data().begin(), w.data().end());
  lying[4] = 0xFF;  // length field low byte
  wire::reader r2(lying);
  EXPECT_FALSE(r2.open_section(0xABCD, version, body));
}

// --- space_saving round trip ------------------------------------------------

TEST(SnapshotSpaceSaving, RestoreContinuesBitIdentically) {
  space_saving<std::uint64_t> a(64);
  const auto ids = skewed_ids(30000, 1.0, 17);
  for (std::size_t i = 0; i < 20000; ++i) a.add(ids[i]);

  const auto buf = snapshot::save(a);
  auto b = snapshot::restore<space_saving<std::uint64_t>>(buf);
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(b->size(), a.size());
  ASSERT_EQ(b->stream_length(), a.stream_length());
  ASSERT_EQ(b->min_count(), a.min_count());

  // Continuation is the hard part: evictions depend on bucket-chain order,
  // so byte-level structure preservation is what this asserts.
  for (std::size_t i = 20000; i < ids.size(); ++i) {
    ASSERT_EQ(a.add(ids[i]), b->add(ids[i])) << "diverged at " << i;
  }
  const auto ea = a.entries();
  const auto eb = b->entries();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].key, eb[i].key);
    EXPECT_EQ(ea[i].count, eb[i].count);
    EXPECT_EQ(ea[i].overestimate, eb[i].overestimate);
  }
}

// --- memento round trip -----------------------------------------------------

class SnapshotMemento : public ::testing::TestWithParam<double> {};

TEST_P(SnapshotMemento, RestoreThenContinueIsBitIdentical) {
  const double tau = GetParam();
  sketch a(50000, 128, tau, 9);
  const auto ids = skewed_ids(150000, 0.9, 23);
  // Mixed scalar/batch prefix so the snapshot lands mid-frame, mid-block.
  for (std::size_t i = 0; i < 5000; ++i) a.update(ids[i]);
  a.update_batch(ids.data() + 5000, 85000);

  const auto buf = snapshot::save(a);
  auto b = snapshot::restore<sketch>(buf);
  ASSERT_TRUE(b.has_value());
  ASSERT_NO_FATAL_FAILURE(expect_identical(a, *b));

  // Same suffix, mixed ingest modes on both: every sampled decision, block
  // rotation and retirement must replay identically.
  for (std::size_t i = 90000; i < 100000; ++i) {
    a.update(ids[i]);
    b->update(ids[i]);
  }
  a.update_batch(ids.data() + 100000, 50000);
  b->update_batch(ids.data() + 100000, 50000);
  ASSERT_NO_FATAL_FAILURE(expect_identical(a, *b));

  const auto ta = a.top(10);
  const auto tb = b->top(10);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].key, tb[i].key);
    EXPECT_DOUBLE_EQ(ta[i].estimate, tb[i].estimate);
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, SnapshotMemento, ::testing::Values(1.0, 0.25, 1.0 / 64),
                         [](const auto& info) {
                           return info.param == 1.0    ? "tau1"
                                  : info.param == 0.25 ? "tau4th"
                                                       : "tau64th";
                         });

// --- h_memento round trip ---------------------------------------------------

TEST(SnapshotHMemento, RestoreThenContinueIsBitIdentical) {
  h_memento<source_hierarchy> a(40000, 512, 0.5, 1e-3, 5);
  const auto ps = trace_packets(120000, 7);
  a.update_batch(ps.data(), 70000);

  const auto buf = snapshot::save(a);
  auto b = snapshot::restore<h_memento<source_hierarchy>>(buf);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->window_size(), a.window_size());
  EXPECT_EQ(b->stream_length(), a.stream_length());

  // Continuation exercises both the Bernoulli sampler AND the
  // generalization-choice PRNG - the restored instance must pick the same
  // prefixes for the same packets.
  for (std::size_t i = 70000; i < 80000; ++i) {
    a.update(ps[i]);
    b->update(ps[i]);
  }
  a.update_batch(ps.data() + 80000, 40000);
  b->update_batch(ps.data() + 80000, 40000);
  ASSERT_EQ(a.stream_length(), b->stream_length());
  const auto oa = a.output(0.01);
  const auto ob = b->output(0.01);
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) {
    EXPECT_EQ(oa[i].key, ob[i].key);
    EXPECT_DOUBLE_EQ(oa[i].upper_estimate, ob[i].upper_estimate);
    EXPECT_DOUBLE_EQ(oa[i].conditioned_frequency, ob[i].conditioned_frequency);
  }
  for (const auto& p : ps) {
    const auto key = source_hierarchy::key_at(p, 1);
    ASSERT_DOUBLE_EQ(a.query(key), b->query(key));
  }
}

// --- sharded round trip -----------------------------------------------------

TEST(SnapshotSharded, RestoreThenContinueIsBitIdentical) {
  shard_config cfg{100000, 256, 0.5, 13, 4};
  sharded a(cfg);
  const auto ids = skewed_ids(250000, 1.0, 21, 1u << 14);
  a.update_batch(ids.data(), 180000);

  const auto buf = snapshot::save(a);
  auto b = snapshot::restore<sharded>(buf);
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(b->num_shards(), a.num_shards());

  // Routing is derived state: every key must land on the same shard.
  for (std::uint64_t k = 0; k < 2000; ++k) ASSERT_EQ(a.shard_of(k), b->shard_of(k));

  a.update_batch(ids.data() + 180000, 70000);
  b->update_batch(ids.data() + 180000, 70000);
  for (std::size_t s = 0; s < a.num_shards(); ++s) {
    ASSERT_NO_FATAL_FAILURE(expect_identical(a.shard(s), b->shard(s)));
  }
  const auto ha = a.heavy_hitters(0.005);
  const auto hb = b->heavy_hitters(0.005);
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].key, hb[i].key);
    EXPECT_DOUBLE_EQ(ha[i].estimate, hb[i].estimate);
  }
}

// --- sharded HHH round trip --------------------------------------------------

TEST(SnapshotShardedHMemento, RestoreThenContinueIsBitIdentical) {
  // Weighted (TABLE-mode) routing: migrate two buckets so the snapshot must
  // carry a non-uniform table, then round-trip through both the buffered v1
  // and the streamed v2 framing. Continuation after restore must be
  // byte-identical to the original continuing through the same stream -
  // routing, per-shard sampler/PRNG timelines and window state included.
  const h_memento_config cfg{20000, 240, 0.5, 1e-3, 23};
  shard_table table = shard_table::uniform(3);
  table.to_shard[0] = 2;
  table.to_shard[77] = 0;
  sharded_h_memento<source_hierarchy> a(cfg, 3, table);
  const auto ps = trace_packets(60000, 11);
  a.update_batch(ps.data(), 40000);

  for (const bool streamed : {false, true}) {
    SCOPED_TRACE(streamed ? "streamed v2" : "buffered v1");
    const auto buf = streamed ? snapshot::save_streamed(a) : snapshot::save(a);
    ASSERT_FALSE(buf.empty());
    auto b = snapshot::restore<sharded_h_memento<source_hierarchy>>(buf);
    ASSERT_TRUE(b.has_value());
    ASSERT_EQ(b->num_shards(), a.num_shards());

    // Routing is carried state here (the table is not uniform): every
    // packet must land on the same shard after the round trip.
    trace_generator probe(trace_kind::backbone, 99);
    for (int i = 0; i < 2000; ++i) {
      const packet p = probe.next();
      ASSERT_EQ(a.shard_of(p), b->shard_of(p));
    }

    sharded_h_memento<source_hierarchy> cont = a;
    cont.update_batch(ps.data() + 40000, 20000);
    b->update_batch(ps.data() + 40000, 20000);
    EXPECT_EQ(snapshot::save(cont), snapshot::save(*b));
    const auto oa = cont.output(0.02);
    const auto ob = b->output(0.02);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(oa[i].key, ob[i].key);
      EXPECT_DOUBLE_EQ(oa[i].conditioned_frequency, ob[i].conditioned_frequency);
    }
  }
}

TEST(SnapshotShardedHMemento, TwoDimFrontendRoundTrips) {
  // The 2-D lattice exercises the prefix2d key codec through every layer of
  // the section stack (counters, overflow table, block ring). Buffered
  // framing only: prefix2d exceeds the streamed formats' 64-bit key column
  // (see wire::codec<prefix2d>), so 2-D deployments checkpoint buffered.
  sharded_h_memento<two_dim_hierarchy> a(h_memento_config{8000, 300, 0.5, 1e-3, 29}, 3);
  const auto ps = trace_packets(30000, 17);
  a.update_batch(ps.data(), 20000);

  const auto buf = snapshot::save(a);
  auto b = snapshot::restore<sharded_h_memento<two_dim_hierarchy>>(buf);
  ASSERT_TRUE(b.has_value());
  sharded_h_memento<two_dim_hierarchy> cont = a;
  cont.update_batch(ps.data() + 20000, 10000);
  b->update_batch(ps.data() + 20000, 10000);
  EXPECT_EQ(snapshot::save(cont), snapshot::save(*b));
}

// --- mergeable summaries ----------------------------------------------------

TEST(SnapshotSummary, MergedShardSummariesEqualShardedFrontendAnswers) {
  shard_config cfg{100000, 256, 1.0, 31, 4};
  sharded front(cfg);
  const auto ids = skewed_ids(300000, 1.0, 37, 1u << 14);
  front.update_batch(ids.data(), ids.size());

  // Merge the per-shard summaries in shard order, as a controller gathering
  // M disjoint-keyspace snapshots would.
  summary merged;
  for (std::size_t s = 0; s < front.num_shards(); ++s) {
    merged.merge(summary::from(front.shard(s)));
  }
  ASSERT_EQ(merged.window_size(), front.window_size());
  ASSERT_EQ(merged.stream_length(), front.stream_length());
  ASSERT_EQ(merged.size(), front.candidate_count());

  // The one-shot factory is the same merge.
  const summary direct = summary::from(front);
  ASSERT_EQ(direct.size(), merged.size());

  // heavy_hitters / top reproduce the frontend bit-for-bit (same candidate
  // sequence, same comparator, same bar).
  for (const double theta : {0.002, 0.01, 0.05}) {
    const auto hf = front.heavy_hitters(theta);
    const auto hm = merged.heavy_hitters(theta);
    ASSERT_EQ(hf.size(), hm.size()) << theta;
    for (std::size_t i = 0; i < hf.size(); ++i) {
      EXPECT_EQ(hf[i].key, hm[i].key);
      EXPECT_DOUBLE_EQ(hf[i].estimate, hm[i].estimate);
    }
  }
  const auto tf = front.top(25);
  const auto tm = merged.top(25);
  ASSERT_EQ(tf.size(), tm.size());
  for (std::size_t i = 0; i < tf.size(); ++i) {
    EXPECT_EQ(tf[i].key, tm[i].key);
    EXPECT_DOUBLE_EQ(tf[i].estimate, tm[i].estimate);
  }

  // Candidate point queries route-free equal the frontend's routed answers.
  merged.for_each([&](const std::uint64_t& key, double est) {
    ASSERT_DOUBLE_EQ(est, front.query(key));
  });
  // Absent keys answer the summed miss bound - one-sided, and documented to
  // grow with the number of merged sources.
  const std::uint64_t absent = ~0ull - 7;
  ASSERT_FALSE(merged.contains(absent));
  EXPECT_GE(merged.query(absent), front.query(absent));
}

TEST(SnapshotSummary, MergeIsOneSidedAgainstExactWindow) {
  shard_config cfg{60000, 256, 1.0, 41, 3};
  sharded front(cfg);
  exact_window<std::uint64_t> oracle(cfg.window_size);
  const auto ids = skewed_ids(200000, 1.1, 43, 1u << 13);
  for (const auto id : ids) {
    front.update(id);
    oracle.add(id);
  }
  const summary merged = summary::from(front);
  // Every key - candidate or not - must answer at least its owning shard's
  // view; candidates must dominate the exact per-shard window count.
  std::size_t checked = 0;
  merged.for_each([&](const std::uint64_t& key, double est) {
    EXPECT_GE(est + 1e-9, front.query(key));
    ++checked;
  });
  ASSERT_GT(checked, 0u);
  // Overlapping-keys merge: folding a summary into itself doubles estimates
  // (documented one-sided error growth), never loses keys.
  summary doubled = merged;
  doubled.merge(merged);
  ASSERT_EQ(doubled.size(), merged.size());
  merged.for_each([&](const std::uint64_t& key, double est) {
    ASSERT_DOUBLE_EQ(doubled.query(key), 2.0 * est);
  });
}

TEST(SnapshotSummary, WireRoundTripPreservesEverything) {
  sketch a(30000, 128, 0.5, 3);
  const auto ids = skewed_ids(90000, 1.0, 47);
  a.update_batch(ids.data(), ids.size());
  const summary s = summary::from(a);
  const auto buf = snapshot::save(s);
  auto back = snapshot::restore<summary>(buf);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), s.size());
  ASSERT_EQ(back->window_size(), s.window_size());
  ASSERT_DOUBLE_EQ(back->estimate_width(), s.estimate_width());
  ASSERT_DOUBLE_EQ(back->miss_bound(), s.miss_bound());
  s.for_each([&](const std::uint64_t& key, double est) {
    ASSERT_DOUBLE_EQ(back->query(key), est);
  });
  const auto ha = s.heavy_hitters(0.01);
  const auto hb = back->heavy_hitters(0.01);
  ASSERT_EQ(ha.size(), hb.size());
}

// --- elastic reshard --------------------------------------------------------

/// (old_shards, new_shards): out AND in, including the N == M identity-ish
/// case that still rebuilds every structure.
class Reshard : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(Reshard, PreservesRecallAndOneSidednessOnZipfTraffic) {
  const auto [n_old, n_new] = GetParam();
  constexpr std::uint64_t kWindow = 100000;
  constexpr std::size_t kCounters = 512;
  constexpr double kTheta = 0.01;

  shard_config cfg{kWindow, kCounters, 1.0, 13, n_old};
  sharded front(cfg);
  exact_window<std::uint64_t> oracle(kWindow);
  const auto ids = skewed_ids(300000, 0.9, 101, 1u << 14);
  for (const auto id : ids) {
    front.update(id);
    oracle.add(id);
  }

  shard_config nc = cfg;
  nc.shards = n_new;
  const auto buf = snapshot::save(front);
  auto resharded = snapshot_builder::reshard<std::uint64_t>(
      std::span<const std::uint8_t>(buf), nc);
  ASSERT_TRUE(resharded.has_value());
  ASSERT_EQ(resharded->num_shards(), n_new);
  ASSERT_DOUBLE_EQ(resharded->estimate_width(), front.estimate_width());

  // Candidate estimates move by at most one threshold unit per key (the
  // in-frame residue a dropped Space-Saving entry can lose), plus nothing:
  // overflow counts carry exactly.
  const double unit = static_cast<double>(front.shard(0).overflow_threshold()) /
                      front.shard(0).tau();
  std::size_t compared = 0;
  for (const auto& hh : front.heavy_hitters(kTheta)) {
    const double after = resharded->query(hh.key);
    EXPECT_LE(std::abs(after - hh.estimate), unit + 1e-9) << "key " << hh.key;
    ++compared;
  }
  ASSERT_GT(compared, 0u);

  // The shard suite's detection bars, post-reshard: recall >= 0.8 against
  // the exact window, misses only borderline.
  const double bar = kTheta * static_cast<double>(kWindow);
  std::vector<std::uint64_t> truth;
  oracle.for_each([&](const std::uint64_t& key, std::uint64_t count) {
    if (static_cast<double>(count) >= bar) truth.push_back(key);
  });
  ASSERT_FALSE(truth.empty());
  const auto found = resharded->heavy_hitters(kTheta);
  auto in = [&](const std::uint64_t& key) {
    return std::any_of(found.begin(), found.end(),
                       [&](const auto& hh) { return hh.key == key; });
  };
  std::size_t hit = 0;
  for (const auto& key : truth) {
    if (in(key)) {
      ++hit;
    } else {
      EXPECT_LT(static_cast<double>(oracle.query(key)), 1.2 * bar)
          << "reshard dropped a clear heavy hitter: " << key;
    }
  }
  EXPECT_GE(static_cast<double>(hit) / static_cast<double>(truth.size()), 0.8);
  // Precision proxy: the report may widen only by the borderline band.
  EXPECT_LE(found.size(), front.heavy_hitters(kTheta).size() + truth.size() + 16);

  // A resharded frontend is itself checkpointable: its canonically rebuilt
  // structures must pass restore's full topology validation.
  const auto rebuf = snapshot::save(*resharded);
  auto recycled = snapshot::restore<sharded>(rebuf);
  ASSERT_TRUE(recycled.has_value()) << "resharded state failed its own round trip";

  // The resharded frontend keeps running: feed another window's worth and
  // re-check one-sidedness against a fresh oracle on the suffix.
  const auto more = skewed_ids(150000, 0.9, 202, 1u << 14);
  resharded->update_batch(more.data(), more.size());
  recycled->update_batch(more.data(), more.size());
  for (std::size_t s = 0; s < resharded->num_shards(); ++s) {
    EXPECT_LT(resharded->shard(s).window_phase(), resharded->shard(s).window_size());
    ASSERT_NO_FATAL_FAILURE(expect_identical(resharded->shard(s), recycled->shard(s)));
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, Reshard,
                         ::testing::Values(std::make_pair(std::size_t{4}, std::size_t{2}),
                                           std::make_pair(std::size_t{2}, std::size_t{8}),
                                           std::make_pair(std::size_t{4}, std::size_t{4}),
                                           std::make_pair(std::size_t{1}, std::size_t{8})),
                         [](const auto& info) {
                           return "N" + std::to_string(info.param.first) + "toM" +
                                  std::to_string(info.param.second);
                         });

TEST(Reshard, RejectsDuplicatedShardSections) {
  // A crafted snapshot repeating one (individually valid) shard section
  // passes restore() but is not a disjoint partition: every key would merge
  // twice. reshard must reject it, never double-count.
  shard_config cfg{50000, 128, 1.0, 5, 2};
  sharded front(cfg);
  const auto ids = skewed_ids(60000, 1.0, 71);
  front.update_batch(ids.data(), ids.size());
  ASSERT_GT(front.shard(0).overflow_entries() + front.shard(0).counters(), 0u);

  wire::writer w;
  w.u32(snapshot::kMagic);
  const auto tok = w.begin_section(sharded::kWireTag, sharded::kWireVersion);
  w.varint(2);       // shard count
  w.u64(cfg.seed);   // base seed (v2)
  w.varint(0);       // no bucket table (v2): HASH-mode routing
  front.shard(0).save(w);
  front.shard(0).save(w);  // same shard twice: same keys twice
  w.end_section(tok);

  shard_config nc = cfg;
  EXPECT_FALSE(snapshot_builder::reshard<std::uint64_t>(
                   std::span<const std::uint8_t>(w.data()), nc)
                   .has_value());
}

TEST(Reshard, RejectsIncompatibleGeometries) {
  shard_config cfg{100000, 512, 1.0, 7, 4};
  sharded front(cfg);
  const auto ids = skewed_ids(50000, 1.0, 11);
  front.update_batch(ids.data(), ids.size());

  shard_config bad = cfg;
  bad.shards = 2;
  bad.tau = 0.5;  // different tau => different threshold semantics
  EXPECT_FALSE(snapshot_builder::reshard(front, bad).has_value());

  bad = cfg;
  bad.shards = 2;
  bad.window_size = cfg.window_size / 2;  // different per-shard threshold
  EXPECT_FALSE(snapshot_builder::reshard(front, bad).has_value());

  bad = cfg;
  bad.shards = 0;
  EXPECT_FALSE(snapshot_builder::reshard(front, bad).has_value());
}

// --- malformed-input hardening ---------------------------------------------

/// Every prefix of a valid snapshot must decode to nullopt; every bit-flip
/// must either decode to nullopt or to a structurally sane object - never
/// crash, never a partial object. Run under ASan/UBSan in CI (ctest label
/// `snapshot`), which turns any out-of-bounds touch into a hard failure.
template <typename T>
void fuzz_snapshot(const bytes_t& valid) {
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    EXPECT_FALSE(
        snapshot::restore<T>(std::span<const std::uint8_t>(valid.data(), cut)).has_value())
        << "accepted truncation at " << cut << "/" << valid.size();
  }
  bytes_t mutated = valid;
  for (std::size_t i = 0; i < valid.size(); ++i) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80}, std::uint8_t{0xFF}}) {
      mutated[i] = valid[i] ^ flip;
      (void)snapshot::restore<T>(mutated);  // must not crash; value optional
    }
    mutated[i] = valid[i];
  }
  // Trailing garbage is rejected even though the payload is intact.
  mutated.push_back(0x5A);
  EXPECT_FALSE(snapshot::restore<T>(mutated).has_value());
}

TEST(SnapshotFuzz, SpaceSavingSurvivesTruncationAndCorruption) {
  space_saving<std::uint64_t> s(48);
  const auto ids = skewed_ids(20000, 1.0, 51);
  for (const auto id : ids) s.add(id);
  fuzz_snapshot<space_saving<std::uint64_t>>(snapshot::save(s));
}

TEST(SnapshotFuzz, MementoSurvivesTruncationAndCorruption) {
  sketch s(5000, 32, 0.5, 2);
  const auto ids = skewed_ids(20000, 1.0, 53);
  s.update_batch(ids.data(), ids.size());
  fuzz_snapshot<sketch>(snapshot::save(s));
}

TEST(SnapshotFuzz, HMementoSurvivesTruncationAndCorruption) {
  h_memento<source_hierarchy> s(5000, 80, 0.5, 1e-3, 3);
  const auto ps = trace_packets(15000, 5);
  s.update_batch(ps.data(), ps.size());
  fuzz_snapshot<h_memento<source_hierarchy>>(snapshot::save(s));
}

TEST(SnapshotFuzz, ShardedSurvivesTruncationAndCorruption) {
  sharded s(shard_config{4000, 32, 1.0, 3, 3});
  const auto ids = skewed_ids(12000, 1.0, 57);
  s.update_batch(ids.data(), ids.size());
  fuzz_snapshot<sharded>(snapshot::save(s));
}

TEST(SnapshotFuzz, ShardedHMementoSurvivesTruncationAndCorruption) {
  // Weighted table so the fuzz walks the bucket-table entries too; small
  // geometry keeps the byte image (and the per-prefix truncation sweep)
  // tractable under ASan.
  shard_table table = shard_table::uniform(3);
  table.to_shard[5] = 1;
  sharded_h_memento<source_hierarchy> s(h_memento_config{2000, 48, 0.5, 1e-3, 7}, 3, table);
  const auto ps = trace_packets(8000, 63);
  s.update_batch(ps.data(), ps.size());
  fuzz_snapshot<sharded_h_memento<source_hierarchy>>(snapshot::save(s));
  fuzz_snapshot<sharded_h_memento<source_hierarchy>>(snapshot::save_streamed(s));
}

TEST(SnapshotFuzz, TwoDimShardedHMementoSurvivesTruncationAndCorruption) {
  sharded_h_memento<two_dim_hierarchy> s(h_memento_config{1500, 60, 0.5, 1e-3, 9}, 2);
  const auto ps = trace_packets(6000, 65);
  s.update_batch(ps.data(), ps.size());
  fuzz_snapshot<sharded_h_memento<two_dim_hierarchy>>(snapshot::save(s));
}

TEST(SnapshotFuzz, SummarySurvivesTruncationAndCorruption) {
  sketch s(5000, 32, 1.0, 2);
  const auto ids = skewed_ids(20000, 1.0, 59);
  s.update_batch(ids.data(), ids.size());
  fuzz_snapshot<summary>(snapshot::save(summary::from(s)));
}

TEST(SnapshotFuzz, RestoredCorruptionSurvivorsStayUsable) {
  // When a bit flip happens to decode (e.g. it only touched a key byte),
  // the object must still be SAFE to drive - feed every survivor a stream.
  sketch s(2000, 16, 1.0, 2);
  const auto ids = skewed_ids(6000, 1.0, 61);
  s.update_batch(ids.data(), ids.size());
  const auto valid = snapshot::save(s);
  bytes_t mutated = valid;
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < valid.size(); ++i) {
    mutated[i] = valid[i] ^ 0x01;
    if (auto r = snapshot::restore<sketch>(mutated)) {
      ++survivors;
      r->update_batch(ids.data(), 2000);
      (void)r->heavy_hitters(0.01);
      (void)r->top(5);
      EXPECT_LT(r->window_phase(), r->window_size());
    }
    mutated[i] = valid[i];
  }
  // The identity flip set always contains survivors (key bytes); this just
  // documents that the loop above exercised real objects.
  EXPECT_GT(survivors, 0u);
}

TEST(SnapshotFuzz, RejectsLyingEntryCountWithoutAllocating) {
  // A 9-byte varint can claim 2^60 entries in a tiny payload; the guard
  // must reject it by division (a multiply would wrap and reach a throwing
  // resize, violating the nullopt-never-crash contract).
  wire::writer w;
  w.u32(snapshot::kMagic);
  const auto tok = w.begin_section(summary::kWireTag, summary::kWireVersion);
  w.varint(100);               // window
  w.varint(100);               // stream
  w.f64(1.0);                  // width
  w.f64(1.0);                  // miss bound
  w.varint(1ull << 60);        // entry count: absurd
  w.end_section(tok);
  EXPECT_FALSE(snapshot::restore<summary>(w.data()).has_value());
}

TEST(SnapshotFuzz, RejectsUndersizedCounterIndex) {
  // An empty-but-valid-looking space_saving image whose index lost the
  // constructor's reserve headroom: accepting it would let a later add()
  // probe an empty (or unresizable) table. Hand-built because no honest
  // save can produce it.
  wire::writer w;
  w.u32(snapshot::kMagic);
  const auto tok =
      w.begin_section(space_saving<std::uint64_t>::kWireTag,
                      space_saving<std::uint64_t>::kWireVersion);
  w.varint(8);                 // capacity: 8 counters
  w.varint(0);                 // used
  w.u64(0);                    // adds
  w.u32(~0u);                  // min_bucket = npos
  w.u32(~0u);                  // bucket_free = npos
  w.varint(0);                 // no bucket nodes
  w.varint(0);                 // index capacity 0 (honest: >= 32 slots)
  w.varint(0);                 // index size 0
  w.end_section(tok);
  EXPECT_FALSE(snapshot::restore<space_saving<std::uint64_t>>(w.data()).has_value());
}

TEST(Snapshot, RejectsWrongMagicAndForeignTags) {
  sketch s(1000, 8, 1.0, 1);
  auto buf = snapshot::save(s);
  // Wrong magic.
  bytes_t wrong = buf;
  wrong[0] ^= 0xFF;
  EXPECT_FALSE(snapshot::restore<sketch>(wrong).has_value());
  // Right magic, wrong type: a memento snapshot is not an h_memento.
  EXPECT_FALSE(snapshot::restore<h_memento<source_hierarchy>>(buf).has_value());
  EXPECT_FALSE(snapshot::restore<sharded>(buf).has_value());
  EXPECT_FALSE(snapshot::restore<summary>(buf).has_value());
  // Empty and tiny buffers.
  EXPECT_FALSE(snapshot::restore<sketch>(bytes_t{}).has_value());
  EXPECT_FALSE(snapshot::restore<sketch>(bytes_t{0x4d, 0x45}).has_value());
}

}  // namespace
}  // namespace memento
