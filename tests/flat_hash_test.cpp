// flat_hash: the open-addressing map under the whole sketch stack.
//
// Directed tests pin the structural invariants (power-of-two growth, load
// bound, backward-shift erase leaving no unreachable keys, prehashed entry
// points, move callbacks); a randomized mixed workload checks every
// observable against a std::unordered_map oracle, including across rehashes
// and clear(). The tier-differential suites then force each SIMD dispatch
// tier in turn (simd::scoped_tier) and require bit-identical behavior down
// to the save() bytes - the group probes must choose exactly the slots the
// scalar oracle chooses.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/flat_hash.hpp"
#include "util/random.hpp"
#include "util/simd.hpp"
#include "util/wire.hpp"

namespace memento {
namespace {

/// Every dispatch tier this host can run (ascending, scalar first).
std::vector<simd::tier> host_tiers() {
  std::vector<simd::tier> out{simd::tier::scalar};
  if (simd::detect() >= simd::tier::sse2) out.push_back(simd::tier::sse2);
  if (simd::detect() >= simd::tier::avx2) out.push_back(simd::tier::avx2);
  return out;
}

std::vector<std::uint8_t> save_bytes(const flat_hash<std::uint64_t>& h) {
  wire::writer w;
  h.save(w);
  return w.data();
}

TEST(FlatHash, StartsEmptyAndUnallocated) {
  flat_hash<std::uint64_t> h;
  EXPECT_EQ(h.size(), 0u);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.capacity(), 0u);
  EXPECT_EQ(h.find(42), nullptr);
  EXPECT_FALSE(h.erase(42));
}

TEST(FlatHash, InsertFindEraseRoundTrip) {
  flat_hash<std::uint64_t> h;
  h.emplace(7, 70);
  h.emplace(8, 80);
  ASSERT_NE(h.find(7), nullptr);
  EXPECT_EQ(*h.find(7), 70u);
  ASSERT_NE(h.find(8), nullptr);
  EXPECT_EQ(*h.find(8), 80u);
  EXPECT_EQ(h.find(9), nullptr);
  EXPECT_TRUE(h.erase(7));
  EXPECT_EQ(h.find(7), nullptr);
  EXPECT_FALSE(h.erase(7));
  EXPECT_EQ(h.size(), 1u);
}

TEST(FlatHash, FindOrEmplaceIsTheCounterIdiom) {
  flat_hash<std::uint64_t> h;
  ++h.find_or_emplace(5, 0);
  ++h.find_or_emplace(5, 0);
  ++h.find_or_emplace(6, 10);
  ASSERT_NE(h.find(5), nullptr);
  EXPECT_EQ(*h.find(5), 2u);
  EXPECT_EQ(*h.find(6), 11u);
}

TEST(FlatHash, CapacityIsPowerOfTwoAndLoadStaysBounded) {
  flat_hash<std::uint64_t> h;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    h.emplace(i, static_cast<std::uint32_t>(i));
    const std::size_t cap = h.capacity();
    EXPECT_EQ(cap & (cap - 1), 0u) << "capacity not a power of two";
    EXPECT_LE(h.size(), cap - cap / 4) << "load factor above 3/4";
  }
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_NE(h.find(i), nullptr) << i;
    EXPECT_EQ(*h.find(i), i);
  }
}

TEST(FlatHash, ReserveIsEnoughForThatManyInserts) {
  flat_hash<std::uint64_t> h(600);
  const std::size_t cap = h.capacity();
  EXPECT_GE(cap - cap / 4, 600u);
  for (std::uint64_t i = 0; i < 600; ++i) h.emplace(i, 1);
  EXPECT_EQ(h.capacity(), cap) << "reserve() did not prevent growth";
}

TEST(FlatHash, ClearKeepsCapacity) {
  flat_hash<std::uint64_t> h;
  for (std::uint64_t i = 0; i < 100; ++i) h.emplace(i, 1);
  const std::size_t cap = h.capacity();
  h.clear();
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.capacity(), cap);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(h.find(i), nullptr);
  h.emplace(3, 33);
  EXPECT_EQ(*h.find(3), 33u);
}

// The backward-shift invariant: after any erase, every remaining key is
// still reachable by probing from its home bucket (no tombstone needed, no
// orphan left behind a hole). Colliding keys are forced by inserting more
// keys than buckets-with-distinct-homes, then erasing from chain heads.
TEST(FlatHash, BackwardShiftKeepsAllChainsReachable) {
  xoshiro256 rng(2024);
  for (int round = 0; round < 50; ++round) {
    flat_hash<std::uint64_t> h;
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 60; ++i) {
      const std::uint64_t k = rng() % 128;  // small universe -> heavy collisions
      if (!h.contains(k)) {
        h.emplace(k, static_cast<std::uint32_t>(k + 1));
        keys.push_back(k);
      }
    }
    // Erase half in random order; after each erase, every survivor must
    // still be found and carry its value.
    for (std::size_t e = 0; e < keys.size() / 2; ++e) {
      const std::size_t victim = rng() % keys.size();
      const std::uint64_t k = keys[victim];
      keys.erase(keys.begin() + static_cast<std::ptrdiff_t>(victim));
      ASSERT_TRUE(h.erase(k));
      for (const auto survivor : keys) {
        ASSERT_NE(h.find(survivor), nullptr)
            << "key " << survivor << " unreachable after erasing " << k;
        EXPECT_EQ(*h.find(survivor), survivor + 1);
      }
    }
  }
}

TEST(FlatHash, PrehashedEntryPointsMatchPlainOnes) {
  flat_hash<std::uint64_t> h(64);
  for (std::uint64_t i = 0; i < 40; ++i) {
    h.emplace_prehashed(h.bucket(i), i, static_cast<std::uint32_t>(i));
  }
  for (std::uint64_t i = 0; i < 40; ++i) {
    ASSERT_NE(h.find_prehashed(h.bucket(i), i), nullptr);
    EXPECT_EQ(*h.find_prehashed(h.bucket(i), i), i);
    EXPECT_EQ(h.find_prehashed(h.bucket(i), i), h.find(i));
  }
  EXPECT_EQ(h.find_prehashed(h.bucket(999), 999), nullptr);
}

TEST(FlatHash, EraseAtReportsEveryRelocation) {
  // Maintain an external slot map through erase_at's move callback, exactly
  // as space_saving keeps counter->slot back-references, and verify the
  // tracked positions keep dereferencing to the right keys.
  flat_hash<std::uint64_t> h(128);
  std::unordered_map<std::uint32_t, std::size_t> slot_of_value;
  std::unordered_map<std::uint64_t, std::uint32_t> value_of_key;
  xoshiro256 rng(7);
  std::vector<std::uint64_t> keys;
  for (std::uint32_t v = 0; v < 80; ++v) {
    const std::uint64_t k = rng() % 200;
    if (value_of_key.count(k)) continue;
    slot_of_value[v] = h.emplace_prehashed(h.bucket(k), k, v);
    value_of_key[k] = v;
    keys.push_back(k);
  }
  while (!keys.empty()) {
    const std::uint64_t k = keys.back();
    keys.pop_back();
    const std::uint32_t v = value_of_key[k];
    h.erase_at(slot_of_value[v], [&](std::uint32_t moved, std::size_t pos) {
      slot_of_value[moved] = pos;
    });
    slot_of_value.erase(v);
    value_of_key.erase(k);
    // Every tracked slot still holds the claimed entry.
    for (const auto& [value, pos] : slot_of_value) {
      (void)pos;
      std::uint64_t key_of_value = 0;
      for (const auto& [kk, vv] : value_of_key) {
        if (vv == value) key_of_value = kk;
      }
      ASSERT_NE(h.find(key_of_value), nullptr);
      EXPECT_EQ(*h.find(key_of_value), value);
    }
  }
  EXPECT_TRUE(h.empty());
}

TEST(FlatHash, ForEachVisitsExactlyTheLiveEntries) {
  flat_hash<std::uint64_t> h;
  std::unordered_map<std::uint64_t, std::uint32_t> expect;
  for (std::uint64_t i = 0; i < 200; ++i) {
    h.emplace(i * 3, static_cast<std::uint32_t>(i));
    expect[i * 3] = static_cast<std::uint32_t>(i);
  }
  for (std::uint64_t i = 0; i < 200; i += 2) {
    h.erase(i * 3);
    expect.erase(i * 3);
  }
  std::unordered_map<std::uint64_t, std::uint32_t> seen;
  h.for_each([&](std::uint64_t k, std::uint32_t v) { seen[k] = v; });
  EXPECT_EQ(seen, expect);
}

// Randomized differential test: a long mixed op stream, checked against
// std::unordered_map after every operation batch and exhaustively at the
// end. Small key universe maximizes collision/backshift traffic.
TEST(FlatHash, RandomOpsMatchUnorderedMapOracle) {
  for (std::uint64_t seed : {1ull, 99ull, 123456789ull}) {
    xoshiro256 rng(seed);
    flat_hash<std::uint64_t> h;
    std::unordered_map<std::uint64_t, std::uint32_t> oracle;
    for (int op = 0; op < 20000; ++op) {
      const std::uint64_t key = rng() % 512;
      switch (rng() % 4) {
        case 0: {  // insert-if-absent
          if (!oracle.count(key)) {
            const auto v = static_cast<std::uint32_t>(rng());
            h.emplace(key, v);
            oracle.emplace(key, v);
          }
          break;
        }
        case 1: {  // counter bump
          ++h.find_or_emplace(key, 0);
          ++oracle[key];
          break;
        }
        case 2: {  // erase
          EXPECT_EQ(h.erase(key), oracle.erase(key) > 0);
          break;
        }
        default: {  // lookup
          const auto it = oracle.find(key);
          const std::uint32_t* p = h.find(key);
          if (it == oracle.end()) {
            EXPECT_EQ(p, nullptr);
          } else {
            ASSERT_NE(p, nullptr);
            EXPECT_EQ(*p, it->second);
          }
          break;
        }
      }
      EXPECT_EQ(h.size(), oracle.size());
      if (op % 4096 == 0) {
        h.clear();
        oracle.clear();
      }
    }
    for (const auto& [k, v] : oracle) {
      ASSERT_NE(h.find(k), nullptr) << k;
      EXPECT_EQ(*h.find(k), v);
    }
    std::size_t visited = 0;
    h.for_each([&](std::uint64_t k, std::uint32_t v) {
      ++visited;
      auto it = oracle.find(k);
      ASSERT_NE(it, oracle.end());
      EXPECT_EQ(it->second, v);
    });
    EXPECT_EQ(visited, oracle.size());
  }
}

// --- probe introspection -----------------------------------------------------

TEST(FlatHash, StatsOnEmptyAndPopulatedTables) {
  flat_hash<std::uint64_t> h;
  flat_hash_stats st = h.stats();
  EXPECT_EQ(st.size, 0u);
  EXPECT_EQ(st.capacity, 0u);
  EXPECT_EQ(st.load_factor, 0.0);

  for (std::uint64_t i = 0; i < 300; ++i) h.emplace(i, 1);
  st = h.stats();
  EXPECT_EQ(st.size, 300u);
  EXPECT_EQ(st.capacity, h.capacity());
  EXPECT_NEAR(st.load_factor, 300.0 / static_cast<double>(h.capacity()), 1e-12);
  EXPECT_LE(st.mean_probe, static_cast<double>(st.max_probe));
  // The load bound caps the table at 3/4 full; probe chains stay short.
  EXPECT_LT(st.max_probe, st.capacity);
}

TEST(FlatHash, StatsSeeProbeChainsGrowWithLoad) {
  flat_hash<std::uint64_t> h(1024);
  double last_mean = 0.0;
  for (std::uint64_t i = 0; i < 700; ++i) h.emplace(i, 1);
  const flat_hash_stats st = h.stats();
  last_mean = st.mean_probe;
  EXPECT_GE(last_mean, 0.0);
  // At ~68% load some probe displacement is statistically certain.
  EXPECT_GT(st.max_probe, 0u);
}

// --- SIMD dispatch differentials ---------------------------------------------
// The acceptance bar of the SIMD rework: the group-probed tiers must be
// bit-identical to the scalar oracle - same lookup results, same insert
// slots, same backward-shift relocations, and therefore the same save()
// bytes after any operation history.

/// One deterministic mixed op stream (insert / bump / erase / lookup /
/// save+restore), run entirely under the given tier. Writes the final
/// serialized state to `out`; records every lookup outcome in `probe_log`.
/// (void-returning so gtest ASSERTs are usable inside.)
void run_op_stream(simd::tier t, std::uint64_t seed, std::vector<std::uint64_t>* probe_log,
                   std::vector<std::uint8_t>* out) {
  simd::scoped_tier guard(t);
  xoshiro256 rng(seed);
  flat_hash<std::uint64_t> h;
  for (int op = 0; op < 12000; ++op) {
    const std::uint64_t key = rng() % 384;
    switch (rng() % 5) {
      case 0:
        if (!h.contains(key)) h.emplace(key, static_cast<std::uint32_t>(rng()));
        break;
      case 1:
        ++h.find_or_emplace(key, 0);
        break;
      case 2:
        probe_log->push_back(h.erase(key) ? 1 : 0);
        break;
      case 3: {
        const std::uint32_t* p = h.find(key);
        probe_log->push_back(p ? *p : ~0ull);
        break;
      }
      default: {  // save/restore interleaving mid-stream
        if (op % 977 == 0) {
          wire::writer w;
          h.save(w);
          wire::reader r(w.data());
          flat_hash<std::uint64_t> back;
          ASSERT_TRUE(back.restore(r)) << "mid-stream restore failed";
          probe_log->push_back(back.size());
          h = std::move(back);
        }
        break;
      }
    }
  }
  *out = save_bytes(h);
}

TEST(FlatHashSimd, EveryTierProducesIdenticalBytesAndLookups) {
  for (const std::uint64_t seed : {3ull, 777ull, 424242ull}) {
    std::vector<std::uint64_t> scalar_log;
    std::vector<std::uint8_t> scalar_bytes;
    run_op_stream(simd::tier::scalar, seed, &scalar_log, &scalar_bytes);
    for (const simd::tier t : host_tiers()) {
      if (t == simd::tier::scalar) continue;
      std::vector<std::uint64_t> log;
      std::vector<std::uint8_t> bytes;
      run_op_stream(t, seed, &log, &bytes);
      EXPECT_EQ(log, scalar_log) << "lookup divergence under " << simd::tier_name(t);
      EXPECT_EQ(bytes, scalar_bytes) << "save() divergence under " << simd::tier_name(t);
    }
  }
}

TEST(FlatHashSimd, SaveRestoreCrossesDispatchTiers) {
  // Build under the widest tier, restore and continue under scalar (and the
  // reverse): the wire format carries no tier-dependent state, so the
  // continuations must stay byte-identical.
  const auto tiers = host_tiers();
  const simd::tier widest = tiers.back();
  for (const auto& [build_tier, continue_tier] :
       {std::pair{widest, simd::tier::scalar}, std::pair{simd::tier::scalar, widest}}) {
    std::vector<std::uint8_t> image;
    {
      simd::scoped_tier guard(build_tier);
      flat_hash<std::uint64_t> h(256);
      xoshiro256 rng(99);
      for (int i = 0; i < 500; ++i) {
        const std::uint64_t k = rng() % 300;
        if (!h.contains(k)) h.emplace(k, static_cast<std::uint32_t>(k * 3));
        if (i % 7 == 0) h.erase(rng() % 300);
      }
      image = save_bytes(h);
    }
    // Continue identically under both the continue tier and scalar; states
    // must match each other (and the restored images must equal the saved).
    std::vector<std::uint8_t> final_a, final_b;
    for (int which = 0; which < 2; ++which) {
      simd::scoped_tier guard(which == 0 ? continue_tier : simd::tier::scalar);
      wire::reader r(image);
      flat_hash<std::uint64_t> h;
      ASSERT_TRUE(h.restore(r));
      EXPECT_EQ(save_bytes(h), image) << "restore-save not a fixed point";
      xoshiro256 rng(1717);
      for (int i = 0; i < 400; ++i) {
        const std::uint64_t k = rng() % 300;
        ++h.find_or_emplace(k, 0);
        if (i % 5 == 0) h.erase(rng() % 300);
      }
      (which == 0 ? final_a : final_b) = save_bytes(h);
    }
    EXPECT_EQ(final_a, final_b) << "cross-tier continuation diverged";
  }
}

TEST(FlatHashSimd, PrehashedPathsMatchAcrossTiers) {
  // The prehashed entry points (token-based) under each tier against plain
  // find/emplace under scalar - same table, same bytes.
  std::vector<std::uint8_t> reference;
  {
    simd::scoped_tier guard(simd::tier::scalar);
    flat_hash<std::uint64_t> h(128);
    for (std::uint64_t i = 0; i < 90; ++i) h.emplace(i * 17, static_cast<std::uint32_t>(i));
    reference = save_bytes(h);
  }
  for (const simd::tier t : host_tiers()) {
    simd::scoped_tier guard(t);
    flat_hash<std::uint64_t> h(128);
    for (std::uint64_t i = 0; i < 90; ++i) {
      h.emplace_prehashed(h.bucket(i * 17), i * 17, static_cast<std::uint32_t>(i));
    }
    EXPECT_EQ(save_bytes(h), reference) << simd::tier_name(t);
    for (std::uint64_t i = 0; i < 90; ++i) {
      ASSERT_NE(h.find_prehashed(h.bucket(i * 17), i * 17), nullptr);
      EXPECT_EQ(*h.find_prehashed(h.bucket(i * 17), i * 17), i);
    }
    EXPECT_EQ(h.find_prehashed(h.bucket(5555), 5555), nullptr);
  }
}

}  // namespace
}  // namespace memento
