// Differential tests for the batched update path: update_batch (and the
// composite-sampler kernel behind h_memento::update_batch) must leave a
// sketch in state *identical* to the same packets fed through scalar
// update() - same sampled sequence, same queries, same heavy-hitter output,
// same forced-drain count - for every tau regime and for batch sizes that
// straddle block and frame boundaries. This is what licenses every
// batch-path shortcut (pre-drawn decisions, prehashed adds, hoisted
// boundary checks, the multiply-based overflow test).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/h_memento.hpp"
#include "core/memento.hpp"
#include "hierarchy/prefix1d.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"
#include "util/simd.hpp"
#include "util/wire.hpp"

namespace memento {
namespace {

using sketch = memento_sketch<std::uint64_t>;

std::vector<std::uint64_t> skewed_ids(std::size_t n, std::uint64_t seed) {
  // Zipf-like mix over a small universe: plenty of repeats (overflows) and
  // plenty of distinct tail keys (evictions).
  trace_generator gen(trace_config{1u << 12, 1.2, seed, 0});
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(flow_id(gen.next()));
  return ids;
}

/// Asserts every observable of the two sketches is identical. Exact vector
/// comparison (keys AND estimates, in order) on purpose: the batch path must
/// replay the scalar mutation order bit-for-bit, so even iteration order and
/// tie-breaks agree.
void expect_identical(const sketch& a, const sketch& b) {
  ASSERT_EQ(a.stream_length(), b.stream_length());
  ASSERT_EQ(a.forced_drains(), b.forced_drains());
  ASSERT_EQ(a.overflow_entries(), b.overflow_entries());

  const auto keys_a = a.monitored_keys();
  const auto keys_b = b.monitored_keys();
  ASSERT_EQ(keys_a, keys_b);
  for (const auto& k : keys_a) {
    ASSERT_DOUBLE_EQ(a.query(k), b.query(k)) << "key " << k;
    ASSERT_DOUBLE_EQ(a.query_lower(k), b.query_lower(k)) << "key " << k;
  }
  // An unmonitored key exercises the no-overflow query branch.
  ASSERT_DOUBLE_EQ(a.query(0xFFFF'FFFF'FFFF'0001ull), b.query(0xFFFF'FFFF'FFFF'0001ull));

  for (double theta : {0.001, 0.01, 0.1}) {
    const auto hh_a = a.heavy_hitters(theta);
    const auto hh_b = b.heavy_hitters(theta);
    ASSERT_EQ(hh_a.size(), hh_b.size()) << "theta " << theta;
    for (std::size_t i = 0; i < hh_a.size(); ++i) {
      ASSERT_EQ(hh_a[i].key, hh_b[i].key) << "theta " << theta << " rank " << i;
      ASSERT_DOUBLE_EQ(hh_a[i].estimate, hh_b[i].estimate);
    }
  }
  const auto top_a = a.top(16);
  const auto top_b = b.top(16);
  ASSERT_EQ(top_a.size(), top_b.size());
  for (std::size_t i = 0; i < top_a.size(); ++i) {
    ASSERT_EQ(top_a[i].key, top_b[i].key) << "rank " << i;
    ASSERT_DOUBLE_EQ(top_a[i].estimate, top_b[i].estimate);
  }
}

class BatchEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BatchEquivalence, BatchEqualsScalarAcrossTauAndBatchSizes) {
  // W = 1000, k = 8 -> block 125, frame 1000: 5000 packets cross 5 frame and
  // 40 block boundaries, so every batch size below lands on and straddles
  // boundaries many times. Batch sizes exercise: single packet, unaligned
  // small, exactly one block, one block + 1, prime, exactly one frame,
  // bigger than a frame, and everything at once.
  const int inv_tau = GetParam();  // 1, 16, 256
  const double tau = 1.0 / inv_tau;
  const auto ids = skewed_ids(5000, 42 + static_cast<std::uint64_t>(inv_tau));

  for (std::size_t batch :
       {std::size_t{1}, std::size_t{7}, std::size_t{125}, std::size_t{126},
        std::size_t{997}, std::size_t{1000}, std::size_t{1024}, ids.size()}) {
    sketch scalar(1000, 8, tau, /*seed=*/5);
    sketch batched(1000, 8, tau, /*seed=*/5);
    for (const auto id : ids) scalar.update(id);
    for (std::size_t i = 0; i < ids.size(); i += batch) {
      batched.update_batch(ids.data() + i, std::min(batch, ids.size() - i));
    }
    SCOPED_TRACE("tau=1/" + std::to_string(inv_tau) + " batch=" + std::to_string(batch));
    expect_identical(scalar, batched);
  }
}

INSTANTIATE_TEST_SUITE_P(TauRegimes, BatchEquivalence, ::testing::Values(1, 16, 256));

TEST(BatchEquivalence, SpanOverloadAndMixedScalarBatchInterleaving) {
  // Switching between scalar and batch ingestion mid-stream must be seamless
  // (same sampler sequence): scalar x2000, one batch of 1111, scalar again.
  const auto ids = skewed_ids(5000, 7);
  sketch scalar(1000, 8, 1.0 / 16, /*seed=*/9);
  sketch mixed(1000, 8, 1.0 / 16, /*seed=*/9);
  for (const auto id : ids) scalar.update(id);

  std::size_t i = 0;
  for (; i < 2000; ++i) mixed.update(ids[i]);
  mixed.update_batch(std::span<const std::uint64_t>(ids.data() + i, 1111));
  i += 1111;
  for (; i < ids.size(); ++i) mixed.update(ids[i]);
  expect_identical(scalar, mixed);
}

TEST(BatchEquivalence, TinyWindowDegenerateGeometry) {
  // W rounds up to k*block; k = 1 gives a 2-slot ring and threshold 1 (every
  // sampled add overflows) - the degenerate geometry where off-by-one
  // boundary bugs in the run segmentation would surface.
  const auto ids = skewed_ids(600, 3);
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    sketch scalar(5, k, 1.0, /*seed=*/2);
    sketch batched(5, k, 1.0, /*seed=*/2);
    for (const auto id : ids) scalar.update(id);
    for (std::size_t i = 0; i < ids.size(); i += 17) {
      batched.update_batch(ids.data() + i, std::min<std::size_t>(17, ids.size() - i));
    }
    SCOPED_TRACE("k=" + std::to_string(k));
    expect_identical(scalar, batched);
  }
}

TEST(BatchEquivalence, HMementoBatchMatchesScalar) {
  // The composite-sampler kernel: h_memento draws its own decisions and
  // random generalizations; batch and scalar must consume sampler and rng
  // identically and produce the same HHH output.
  trace_generator gen(trace_kind::datacenter, 11);
  std::vector<packet> packets;
  for (int i = 0; i < 4000; ++i) packets.push_back(gen.next());

  for (int inv_tau : {1, 16}) {
    h_memento<source_hierarchy> scalar(1000, 8 * source_hierarchy::hierarchy_size,
                                       1.0 / inv_tau, 1e-3, /*seed=*/4);
    h_memento<source_hierarchy> batched(1000, 8 * source_hierarchy::hierarchy_size,
                                        1.0 / inv_tau, 1e-3, /*seed=*/4);
    for (const auto& p : packets) scalar.update(p);
    for (std::size_t i = 0; i < packets.size(); i += 300) {
      batched.update_batch(packets.data() + i, std::min<std::size_t>(300, packets.size() - i));
    }
    SCOPED_TRACE("tau=1/" + std::to_string(inv_tau));
    ASSERT_EQ(scalar.stream_length(), batched.stream_length());
    const auto out_a = scalar.output(0.05);
    const auto out_b = batched.output(0.05);
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t i = 0; i < out_a.size(); ++i) {
      ASSERT_EQ(out_a[i].key, out_b[i].key);
      ASSERT_DOUBLE_EQ(out_a[i].conditioned_frequency, out_b[i].conditioned_frequency);
      ASSERT_DOUBLE_EQ(out_a[i].upper_estimate, out_b[i].upper_estimate);
    }
  }
}

TEST(BatchEquivalence, EmptyAndSingleElementBatches) {
  sketch scalar(100, 4, 0.5, /*seed=*/1);
  sketch batched(100, 4, 0.5, /*seed=*/1);
  const auto ids = skewed_ids(300, 1);
  for (const auto id : ids) scalar.update(id);
  batched.update_batch(ids.data(), 0);  // no-op
  for (const auto id : ids) batched.update_batch(&id, 1);
  expect_identical(scalar, batched);
}

// --- SIMD dispatch differentials ---------------------------------------------
// The whole-sketch version of the flat_hash tier differentials: the same
// trace through sketches running under different dispatch tiers must
// produce identical observables AND identical save() bytes - the SIMD
// probes/scans may only change speed, never state.

std::vector<std::uint8_t> sketch_bytes(const sketch& s) {
  wire::writer w;
  s.save(w);
  return w.data();
}

std::vector<simd::tier> host_tiers() {
  std::vector<simd::tier> out{simd::tier::scalar};
  if (simd::detect() >= simd::tier::sse2) out.push_back(simd::tier::sse2);
  if (simd::detect() >= simd::tier::avx2) out.push_back(simd::tier::avx2);
  return out;
}

TEST(BatchSimd, EveryTierProducesIdenticalSketchState) {
  const auto ids = skewed_ids(6000, 21);
  for (const double tau : {1.0, 1.0 / 16}) {
    std::vector<std::uint8_t> scalar_bytes;
    {
      simd::scoped_tier guard(simd::tier::scalar);
      sketch s(1000, 8, tau, /*seed=*/13);
      s.update_batch(ids.data(), ids.size());
      scalar_bytes = sketch_bytes(s);
    }
    for (const simd::tier t : host_tiers()) {
      if (t == simd::tier::scalar) continue;
      simd::scoped_tier guard(t);
      sketch s(1000, 8, tau, /*seed=*/13);
      s.update_batch(ids.data(), ids.size());
      EXPECT_EQ(sketch_bytes(s), scalar_bytes)
          << "tau=" << tau << " tier=" << simd::tier_name(t);
    }
  }
}

TEST(BatchSimd, SimdBuiltSketchContinuesIdenticallyUnderScalar) {
  // Build half the stream under the widest tier, snapshot, restore under
  // scalar and finish; a sketch that never left scalar must match byte for
  // byte. This is the cross-tier migration story: snapshots carry no
  // tier-dependent state.
  const auto ids = skewed_ids(6000, 77);
  const std::size_t half = ids.size() / 2;

  std::vector<std::uint8_t> reference;
  {
    simd::scoped_tier guard(simd::tier::scalar);
    sketch s(1000, 8, 1.0, /*seed=*/31);
    s.update_batch(ids.data(), ids.size());
    reference = sketch_bytes(s);
  }

  std::vector<std::uint8_t> image;
  {
    simd::scoped_tier guard(simd::detect());
    sketch s(1000, 8, 1.0, /*seed=*/31);
    s.update_batch(ids.data(), half);
    image = sketch_bytes(s);
  }
  {
    simd::scoped_tier guard(simd::tier::scalar);
    wire::reader r(image);
    auto restored = sketch::restore(r);
    ASSERT_TRUE(restored.has_value());
    restored->update_batch(ids.data() + half, ids.size() - half);
    EXPECT_EQ(sketch_bytes(*restored), reference);
  }
}

TEST(BatchSimd, OverflowPeakWindowTracksBursts) {
  // tau=1, threshold = W/k: the overflow-peak introspection must see at
  // least one append per completed block on a skewed trace, and the peak is
  // bounded by the heaviest block's append count.
  sketch s(1000, 8, 1.0, /*seed=*/3);
  const auto ids = skewed_ids(5000, 55);
  s.update_batch(ids.data(), ids.size());
  EXPECT_GT(s.block_overflow_peak(), 0u);
  // The scalar and batch paths account appends identically.
  sketch scalar(1000, 8, 1.0, /*seed=*/3);
  for (const auto id : ids) scalar.update(id);
  EXPECT_EQ(scalar.block_overflow_peak(), s.block_overflow_peak());
  EXPECT_EQ(scalar.block_overflow_appends(), s.block_overflow_appends());
}

TEST(BatchSimd, ProbeStatsAreExposedThroughTheSketch) {
  sketch s(1000, 8, 1.0, /*seed=*/3);
  const auto ids = skewed_ids(3000, 91);
  s.update_batch(ids.data(), ids.size());
  const flat_hash_stats idx = s.counter_index_stats();
  EXPECT_GT(idx.capacity, 0u);
  EXPECT_LE(idx.size, s.counters()) << "index holds at most k monitored keys";
  EXPECT_LE(idx.mean_probe, static_cast<double>(idx.max_probe));
  const flat_hash_stats ovf = s.overflow_table_stats();
  EXPECT_EQ(ovf.size, s.overflow_entries());
  EXPECT_LE(ovf.load_factor, 0.75 + 1e-9);
}

}  // namespace
}  // namespace memento
