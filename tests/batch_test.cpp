// Differential tests for the batched update path: update_batch (and the
// composite-sampler kernel behind h_memento::update_batch) must leave a
// sketch in state *identical* to the same packets fed through scalar
// update() - same sampled sequence, same queries, same heavy-hitter output,
// same forced-drain count - for every tau regime and for batch sizes that
// straddle block and frame boundaries. This is what licenses every
// batch-path shortcut (pre-drawn decisions, prehashed adds, hoisted
// boundary checks, the multiply-based overflow test).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/h_memento.hpp"
#include "core/memento.hpp"
#include "hierarchy/hhh_solver.hpp"
#include "hierarchy/prefix1d.hpp"
#include "hierarchy/prefix2d.hpp"
#include "trace/trace_generator.hpp"
#include "util/random.hpp"
#include "util/simd.hpp"
#include "util/wire.hpp"

namespace memento {
namespace {

using sketch = memento_sketch<std::uint64_t>;

std::vector<std::uint64_t> skewed_ids(std::size_t n, std::uint64_t seed) {
  // Zipf-like mix over a small universe: plenty of repeats (overflows) and
  // plenty of distinct tail keys (evictions).
  trace_generator gen(trace_config{1u << 12, 1.2, seed, 0});
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(flow_id(gen.next()));
  return ids;
}

/// Asserts every observable of the two sketches is identical. Exact vector
/// comparison (keys AND estimates, in order) on purpose: the batch path must
/// replay the scalar mutation order bit-for-bit, so even iteration order and
/// tie-breaks agree.
void expect_identical(const sketch& a, const sketch& b) {
  ASSERT_EQ(a.stream_length(), b.stream_length());
  ASSERT_EQ(a.forced_drains(), b.forced_drains());
  ASSERT_EQ(a.overflow_entries(), b.overflow_entries());

  const auto keys_a = a.monitored_keys();
  const auto keys_b = b.monitored_keys();
  ASSERT_EQ(keys_a, keys_b);
  for (const auto& k : keys_a) {
    ASSERT_DOUBLE_EQ(a.query(k), b.query(k)) << "key " << k;
    ASSERT_DOUBLE_EQ(a.query_lower(k), b.query_lower(k)) << "key " << k;
  }
  // An unmonitored key exercises the no-overflow query branch.
  ASSERT_DOUBLE_EQ(a.query(0xFFFF'FFFF'FFFF'0001ull), b.query(0xFFFF'FFFF'FFFF'0001ull));

  for (double theta : {0.001, 0.01, 0.1}) {
    const auto hh_a = a.heavy_hitters(theta);
    const auto hh_b = b.heavy_hitters(theta);
    ASSERT_EQ(hh_a.size(), hh_b.size()) << "theta " << theta;
    for (std::size_t i = 0; i < hh_a.size(); ++i) {
      ASSERT_EQ(hh_a[i].key, hh_b[i].key) << "theta " << theta << " rank " << i;
      ASSERT_DOUBLE_EQ(hh_a[i].estimate, hh_b[i].estimate);
    }
  }
  const auto top_a = a.top(16);
  const auto top_b = b.top(16);
  ASSERT_EQ(top_a.size(), top_b.size());
  for (std::size_t i = 0; i < top_a.size(); ++i) {
    ASSERT_EQ(top_a[i].key, top_b[i].key) << "rank " << i;
    ASSERT_DOUBLE_EQ(top_a[i].estimate, top_b[i].estimate);
  }
}

class BatchEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BatchEquivalence, BatchEqualsScalarAcrossTauAndBatchSizes) {
  // W = 1000, k = 8 -> block 125, frame 1000: 5000 packets cross 5 frame and
  // 40 block boundaries, so every batch size below lands on and straddles
  // boundaries many times. Batch sizes exercise: single packet, unaligned
  // small, exactly one block, one block + 1, prime, exactly one frame,
  // bigger than a frame, and everything at once.
  const int inv_tau = GetParam();  // 1, 16, 256
  const double tau = 1.0 / inv_tau;
  const auto ids = skewed_ids(5000, 42 + static_cast<std::uint64_t>(inv_tau));

  for (std::size_t batch :
       {std::size_t{1}, std::size_t{7}, std::size_t{125}, std::size_t{126},
        std::size_t{997}, std::size_t{1000}, std::size_t{1024}, ids.size()}) {
    sketch scalar(1000, 8, tau, /*seed=*/5);
    sketch batched(1000, 8, tau, /*seed=*/5);
    for (const auto id : ids) scalar.update(id);
    for (std::size_t i = 0; i < ids.size(); i += batch) {
      batched.update_batch(ids.data() + i, std::min(batch, ids.size() - i));
    }
    SCOPED_TRACE("tau=1/" + std::to_string(inv_tau) + " batch=" + std::to_string(batch));
    expect_identical(scalar, batched);
  }
}

INSTANTIATE_TEST_SUITE_P(TauRegimes, BatchEquivalence, ::testing::Values(1, 16, 256));

TEST(BatchEquivalence, SpanOverloadAndMixedScalarBatchInterleaving) {
  // Switching between scalar and batch ingestion mid-stream must be seamless
  // (same sampler sequence): scalar x2000, one batch of 1111, scalar again.
  const auto ids = skewed_ids(5000, 7);
  sketch scalar(1000, 8, 1.0 / 16, /*seed=*/9);
  sketch mixed(1000, 8, 1.0 / 16, /*seed=*/9);
  for (const auto id : ids) scalar.update(id);

  std::size_t i = 0;
  for (; i < 2000; ++i) mixed.update(ids[i]);
  mixed.update_batch(std::span<const std::uint64_t>(ids.data() + i, 1111));
  i += 1111;
  for (; i < ids.size(); ++i) mixed.update(ids[i]);
  expect_identical(scalar, mixed);
}

TEST(BatchEquivalence, TinyWindowDegenerateGeometry) {
  // W rounds up to k*block; k = 1 gives a 2-slot ring and threshold 1 (every
  // sampled add overflows) - the degenerate geometry where off-by-one
  // boundary bugs in the run segmentation would surface.
  const auto ids = skewed_ids(600, 3);
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    sketch scalar(5, k, 1.0, /*seed=*/2);
    sketch batched(5, k, 1.0, /*seed=*/2);
    for (const auto id : ids) scalar.update(id);
    for (std::size_t i = 0; i < ids.size(); i += 17) {
      batched.update_batch(ids.data() + i, std::min<std::size_t>(17, ids.size() - i));
    }
    SCOPED_TRACE("k=" + std::to_string(k));
    expect_identical(scalar, batched);
  }
}

TEST(BatchEquivalence, HMementoBatchMatchesScalar) {
  // The composite-sampler kernel: h_memento draws its own decisions and
  // random generalizations; batch and scalar must consume sampler and rng
  // identically and produce the same HHH output.
  trace_generator gen(trace_kind::datacenter, 11);
  std::vector<packet> packets;
  for (int i = 0; i < 4000; ++i) packets.push_back(gen.next());

  for (int inv_tau : {1, 16}) {
    h_memento<source_hierarchy> scalar(1000, 8 * source_hierarchy::hierarchy_size,
                                       1.0 / inv_tau, 1e-3, /*seed=*/4);
    h_memento<source_hierarchy> batched(1000, 8 * source_hierarchy::hierarchy_size,
                                        1.0 / inv_tau, 1e-3, /*seed=*/4);
    for (const auto& p : packets) scalar.update(p);
    for (std::size_t i = 0; i < packets.size(); i += 300) {
      batched.update_batch(packets.data() + i, std::min<std::size_t>(300, packets.size() - i));
    }
    SCOPED_TRACE("tau=1/" + std::to_string(inv_tau));
    ASSERT_EQ(scalar.stream_length(), batched.stream_length());
    const auto out_a = scalar.output(0.05);
    const auto out_b = batched.output(0.05);
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t i = 0; i < out_a.size(); ++i) {
      ASSERT_EQ(out_a[i].key, out_b[i].key);
      ASSERT_DOUBLE_EQ(out_a[i].conditioned_frequency, out_b[i].conditioned_frequency);
      ASSERT_DOUBLE_EQ(out_a[i].upper_estimate, out_b[i].upper_estimate);
    }
  }
}

TEST(BatchEquivalence, TwoDimHMementoBatchMatchesScalar) {
  // The 2-D lattice through the same composite-sampler kernel: level choices
  // split into (src_depth, dst_depth) = (i/5, i%5) and both address columns
  // mask through the vectorized kernel, but the sampler and rng consumption
  // order must still replay the scalar path exactly.
  trace_generator gen(trace_kind::datacenter, 19);
  std::vector<packet> packets;
  for (int i = 0; i < 4000; ++i) packets.push_back(gen.next());

  for (int inv_tau : {1, 16}) {
    h_memento<two_dim_hierarchy> scalar(1000, 8 * two_dim_hierarchy::hierarchy_size,
                                        1.0 / inv_tau, 1e-3, /*seed=*/6);
    h_memento<two_dim_hierarchy> batched(1000, 8 * two_dim_hierarchy::hierarchy_size,
                                         1.0 / inv_tau, 1e-3, /*seed=*/6);
    for (const auto& p : packets) scalar.update(p);
    for (std::size_t i = 0; i < packets.size(); i += 300) {
      batched.update_batch(packets.data() + i, std::min<std::size_t>(300, packets.size() - i));
    }
    SCOPED_TRACE("tau=1/" + std::to_string(inv_tau));
    ASSERT_EQ(scalar.stream_length(), batched.stream_length());
    const auto out_a = scalar.output(0.05);
    const auto out_b = batched.output(0.05);
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t i = 0; i < out_a.size(); ++i) {
      ASSERT_EQ(out_a[i].key, out_b[i].key);
      ASSERT_DOUBLE_EQ(out_a[i].conditioned_frequency, out_b[i].conditioned_frequency);
      ASSERT_DOUBLE_EQ(out_a[i].upper_estimate, out_b[i].upper_estimate);
    }
  }
}

/// Naive Algorithm 2/4 reference: one flat pass over the candidates in
/// (combined depth, lexicographic) order, recomputing G(q|P) and the 2-D
/// inclusion-exclusion from first principles each time. Deliberately written
/// independently of hhh_solver.hpp (no level grouping, no dedup tricks) so
/// optimizations there keep an oracle to answer to.
template <typename H>
std::vector<hhh_entry<typename H::key_type>> naive_hhh(
    std::vector<typename H::key_type> candidates,
    const std::function<freq_bounds(const typename H::key_type&)>& bounds, double threshold,
    double compensation) {
  using key_type = typename H::key_type;
  std::sort(candidates.begin(), candidates.end(), [](const key_type& a, const key_type& b) {
    return H::depth(a) != H::depth(b) ? H::depth(a) < H::depth(b) : a < b;
  });
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  std::vector<key_type> selected;
  std::vector<hhh_entry<key_type>> out;
  for (const auto& q : candidates) {
    std::vector<key_type> inside;
    for (const auto& h : selected) {
      if (H::strictly_generalizes(q, h)) inside.push_back(h);
    }
    std::vector<key_type> g;
    for (const auto& h : inside) {
      bool dominated = false;
      for (const auto& m : inside) {
        if (!(m == h) && H::strictly_generalizes(m, h)) dominated = true;
      }
      if (!dominated) g.push_back(h);
    }
    double conditioned = bounds(q).upper + compensation;
    for (const auto& h : g) conditioned -= bounds(h).lower;
    if constexpr (H::two_dimensional) {
      for (std::size_t i = 0; i < g.size(); ++i) {
        for (std::size_t j = i + 1; j < g.size(); ++j) {
          const auto common = prefix2::glb(g[i], g[j]);
          if (!common) continue;
          bool covered = false;
          for (const auto& h3 : g) {
            if (!(h3 == g[i]) && !(h3 == g[j]) && prefix2::generalizes(*common, h3)) {
              covered = true;
            }
          }
          if (!covered) conditioned += bounds(*common).upper;
        }
      }
    }
    if (conditioned >= threshold) {
      selected.push_back(q);
      out.push_back({q, conditioned, bounds(q).upper});
    }
  }
  return out;
}

TEST(BatchEquivalence, TwoDimLatticeOutputMatchesNaivePerLevelReference) {
  // One heavy (src, dst) pair at 25% of traffic over uniform 2-D mice. The
  // production solver must agree entry-for-entry with the naive reference on
  // the live sketch's own bounds, and the lattice semantics must hold by
  // hand: the heavy pair and the root are HHHs, while every strict ancestor
  // in between holds only the pair's (already conditioned-away) mass.
  constexpr std::uint64_t kWindow = 50000;
  const packet heavy{0x0a141e28u, 0xc0a80101u};
  h_memento<two_dim_hierarchy> h(kWindow, 1024, 1.0, 1e-3, /*seed=*/5);
  xoshiro256 rng(71);
  for (std::uint64_t i = 0; i < 2 * kWindow; ++i) {
    if (i % 4 == 0) {
      h.update(heavy);
    } else {
      const std::uint32_t src = static_cast<std::uint32_t>(rng());
      h.update(packet{src, static_cast<std::uint32_t>(rng())});
    }
  }

  const double theta = 0.15;
  const std::function<freq_bounds(const prefix2d&)> bounds = [&](const prefix2d& k) {
    return freq_bounds{h.query(k), h.query_lower(k)};
  };
  for (const double comp : {0.0, h.sampling_compensation()}) {
    SCOPED_TRACE("compensation=" + std::to_string(comp));
    const auto fast = h.output(theta, comp);
    const auto naive = naive_hhh<two_dim_hierarchy>(
        h.inner().monitored_keys(), bounds, theta * static_cast<double>(kWindow), comp);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_EQ(fast[i].key, naive[i].key);
      ASSERT_DOUBLE_EQ(fast[i].conditioned_frequency, naive[i].conditioned_frequency);
      ASSERT_DOUBLE_EQ(fast[i].upper_estimate, naive[i].upper_estimate);
    }
  }

  // Hand-pinned lattice shape at comp = 0: exactly {heavy pair, root}.
  const auto out = h.output(theta, 0.0);
  const auto key = two_dim_hierarchy::full_key(heavy);
  const auto root = prefix2::make(0, 4, 0, 4);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(std::any_of(out.begin(), out.end(), [&](const auto& e) { return e.key == key; }));
  EXPECT_TRUE(std::any_of(out.begin(), out.end(), [&](const auto& e) { return e.key == root; }));
}

TEST(BatchEquivalence, EmptyAndSingleElementBatches) {
  sketch scalar(100, 4, 0.5, /*seed=*/1);
  sketch batched(100, 4, 0.5, /*seed=*/1);
  const auto ids = skewed_ids(300, 1);
  for (const auto id : ids) scalar.update(id);
  batched.update_batch(ids.data(), 0);  // no-op
  for (const auto id : ids) batched.update_batch(&id, 1);
  expect_identical(scalar, batched);
}

// --- SIMD dispatch differentials ---------------------------------------------
// The whole-sketch version of the flat_hash tier differentials: the same
// trace through sketches running under different dispatch tiers must
// produce identical observables AND identical save() bytes - the SIMD
// probes/scans may only change speed, never state.

std::vector<std::uint8_t> sketch_bytes(const sketch& s) {
  wire::writer w;
  s.save(w);
  return w.data();
}

std::vector<simd::tier> host_tiers() {
  std::vector<simd::tier> out{simd::tier::scalar};
  if (simd::detect() >= simd::tier::sse2) out.push_back(simd::tier::sse2);
  if (simd::detect() >= simd::tier::avx2) out.push_back(simd::tier::avx2);
  return out;
}

TEST(BatchSimd, EveryTierProducesIdenticalSketchState) {
  const auto ids = skewed_ids(6000, 21);
  for (const double tau : {1.0, 1.0 / 16}) {
    std::vector<std::uint8_t> scalar_bytes;
    {
      simd::scoped_tier guard(simd::tier::scalar);
      sketch s(1000, 8, tau, /*seed=*/13);
      s.update_batch(ids.data(), ids.size());
      scalar_bytes = sketch_bytes(s);
    }
    for (const simd::tier t : host_tiers()) {
      if (t == simd::tier::scalar) continue;
      simd::scoped_tier guard(t);
      sketch s(1000, 8, tau, /*seed=*/13);
      s.update_batch(ids.data(), ids.size());
      EXPECT_EQ(sketch_bytes(s), scalar_bytes)
          << "tau=" << tau << " tier=" << simd::tier_name(t);
    }
  }
}

TEST(BatchSimd, SimdBuiltSketchContinuesIdenticallyUnderScalar) {
  // Build half the stream under the widest tier, snapshot, restore under
  // scalar and finish; a sketch that never left scalar must match byte for
  // byte. This is the cross-tier migration story: snapshots carry no
  // tier-dependent state.
  const auto ids = skewed_ids(6000, 77);
  const std::size_t half = ids.size() / 2;

  std::vector<std::uint8_t> reference;
  {
    simd::scoped_tier guard(simd::tier::scalar);
    sketch s(1000, 8, 1.0, /*seed=*/31);
    s.update_batch(ids.data(), ids.size());
    reference = sketch_bytes(s);
  }

  std::vector<std::uint8_t> image;
  {
    simd::scoped_tier guard(simd::detect());
    sketch s(1000, 8, 1.0, /*seed=*/31);
    s.update_batch(ids.data(), half);
    image = sketch_bytes(s);
  }
  {
    simd::scoped_tier guard(simd::tier::scalar);
    wire::reader r(image);
    auto restored = sketch::restore(r);
    ASSERT_TRUE(restored.has_value());
    restored->update_batch(ids.data() + half, ids.size() - half);
    EXPECT_EQ(sketch_bytes(*restored), reference);
  }
}

TEST(BatchSimd, HMementoEveryTierIsByteIdenticalOnBothHierarchies) {
  // The hierarchical batch kernel's tier differential: the vectorized prefix
  // masking (mask_addr_by_depth / make_prefix_keys) behind materialize_keys
  // may only change speed, never the sampled keys - pinned as save()-byte
  // equality against the scalar tier for the 1-D hierarchy AND the 2-D
  // lattice, across the full and sampled tau regimes.
  trace_generator gen(trace_kind::backbone, 43);
  std::vector<packet> packets;
  for (int i = 0; i < 20000; ++i) packets.push_back(gen.next());

  auto bytes_of = [](const auto& h) {
    wire::writer w;
    h.save(w);
    return w.data();
  };
  auto run = [&](auto tag, simd::tier t, double tau) {
    using hierarchy = decltype(tag);
    simd::scoped_tier guard(t);
    h_memento<hierarchy> h(4000, 16 * hierarchy::hierarchy_size, tau, 1e-3, /*seed=*/9);
    for (std::size_t i = 0; i < packets.size(); i += 997) {
      h.update_batch(packets.data() + i, std::min<std::size_t>(997, packets.size() - i));
    }
    return bytes_of(h);
  };

  for (const double tau : {1.0, 1.0 / 8}) {
    const auto scalar_1d = run(source_hierarchy{}, simd::tier::scalar, tau);
    const auto scalar_2d = run(two_dim_hierarchy{}, simd::tier::scalar, tau);
    for (const simd::tier t : host_tiers()) {
      if (t == simd::tier::scalar) continue;
      EXPECT_EQ(run(source_hierarchy{}, t, tau), scalar_1d)
          << "1-D tau=" << tau << " tier=" << simd::tier_name(t);
      EXPECT_EQ(run(two_dim_hierarchy{}, t, tau), scalar_2d)
          << "2-D tau=" << tau << " tier=" << simd::tier_name(t);
    }
  }
}

TEST(BatchSimd, OverflowPeakWindowTracksBursts) {
  // tau=1, threshold = W/k: the overflow-peak introspection must see at
  // least one append per completed block on a skewed trace, and the peak is
  // bounded by the heaviest block's append count.
  sketch s(1000, 8, 1.0, /*seed=*/3);
  const auto ids = skewed_ids(5000, 55);
  s.update_batch(ids.data(), ids.size());
  EXPECT_GT(s.block_overflow_peak(), 0u);
  // The scalar and batch paths account appends identically.
  sketch scalar(1000, 8, 1.0, /*seed=*/3);
  for (const auto id : ids) scalar.update(id);
  EXPECT_EQ(scalar.block_overflow_peak(), s.block_overflow_peak());
  EXPECT_EQ(scalar.block_overflow_appends(), s.block_overflow_appends());
}

TEST(BatchSimd, ProbeStatsAreExposedThroughTheSketch) {
  sketch s(1000, 8, 1.0, /*seed=*/3);
  const auto ids = skewed_ids(3000, 91);
  s.update_batch(ids.data(), ids.size());
  const flat_hash_stats idx = s.counter_index_stats();
  EXPECT_GT(idx.capacity, 0u);
  EXPECT_LE(idx.size, s.counters()) << "index holds at most k monitored keys";
  EXPECT_LE(idx.mean_probe, static_cast<double>(idx.max_probe));
  const flat_hash_stats ovf = s.overflow_table_stats();
  EXPECT_EQ(ovf.size, s.overflow_entries());
  EXPECT_LE(ovf.load_factor, 0.75 + 1e-9);
}

}  // namespace
}  // namespace memento
