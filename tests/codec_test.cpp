// Tests for the control-channel wire codecs: round trips, exact sizes, and
// malformed-input rejection (a controller must survive any byte garbage).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "netwide/codec.hpp"
#include "netwide/controller.hpp"
#include "trace/trace_generator.hpp"

namespace memento::netwide {
namespace {

sample_report make_report(std::size_t samples, std::uint32_t origin = 3,
                          std::uint64_t covered = 1000) {
  sample_report r;
  r.origin = origin;
  r.covered_packets = covered;
  trace_generator gen(trace_kind::backbone, 7);
  for (std::size_t i = 0; i < samples; ++i) r.samples.push_back(gen.next());
  return r;
}

class CodecRoundTrip : public ::testing::TestWithParam<sample_encoding> {};

TEST_P(CodecRoundTrip, PreservesEveryField) {
  const auto encoding = GetParam();
  const auto original = make_report(37, /*origin=*/9, /*covered=*/123456789ull);
  const auto bytes = encode_report(original, encoding);
  const auto decoded = decode_report(bytes, encoding);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->origin, original.origin);
  EXPECT_EQ(decoded->covered_packets, original.covered_packets);
  ASSERT_EQ(decoded->samples.size(), original.samples.size());
  for (std::size_t i = 0; i < original.samples.size(); ++i) {
    EXPECT_EQ(decoded->samples[i].src, original.samples[i].src);
    if (encoding == sample_encoding::src_and_dst) {
      EXPECT_EQ(decoded->samples[i].dst, original.samples[i].dst);
    } else {
      EXPECT_EQ(decoded->samples[i].dst, 0u) << "src-only decoding must zero dst";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothEncodings, CodecRoundTrip,
                         ::testing::Values(sample_encoding::src_only,
                                           sample_encoding::src_and_dst),
                         [](const auto& info) {
                           return info.param == sample_encoding::src_only ? "src" : "srcdst";
                         });

TEST(Codec, EncodedSizeMatchesCostModel) {
  for (std::size_t b : {0u, 1u, 44u, 100u}) {
    const auto report = make_report(b, 1, b + 10);
    EXPECT_EQ(encode_report(report, sample_encoding::src_only).size(),
              encoded_size(b, sample_encoding::src_only));
    EXPECT_EQ(encode_report(report, sample_encoding::src_and_dst).size(),
              encoded_size(b, sample_encoding::src_and_dst));
    EXPECT_EQ(encoded_size(b, sample_encoding::src_only), 16 + 4 * b);
    EXPECT_EQ(encoded_size(b, sample_encoding::src_and_dst), 16 + 8 * b);
  }
}

TEST(Codec, EmptyReportRoundTrips) {
  sample_report empty;
  empty.origin = 5;
  empty.covered_packets = 42;
  const auto bytes = encode_report(empty, sample_encoding::src_only);
  const auto decoded = decode_report(bytes, sample_encoding::src_only);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->samples.empty());
  EXPECT_EQ(decoded->covered_packets, 42u);
}

TEST(Codec, RejectsTruncation) {
  const auto bytes = encode_report(make_report(10), sample_encoding::src_only);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto truncated = std::span<const std::uint8_t>(bytes.data(), cut);
    EXPECT_FALSE(decode_report(truncated, sample_encoding::src_only).has_value())
        << "accepted truncation at " << cut;
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  auto bytes = encode_report(make_report(4), sample_encoding::src_only);
  bytes.push_back(0xAB);
  EXPECT_FALSE(decode_report(bytes, sample_encoding::src_only).has_value());
}

TEST(Codec, RejectsEncodingMismatch) {
  // A src-and-dst report parsed as src-only has a count/size mismatch.
  const auto bytes = encode_report(make_report(6), sample_encoding::src_and_dst);
  EXPECT_FALSE(decode_report(bytes, sample_encoding::src_only).has_value());
}

TEST(Codec, RejectsCoveredLessThanSamples) {
  // covered_packets must be >= samples (every sample is a covered packet).
  auto report = make_report(8, 1, /*covered=*/3);
  const auto bytes = encode_report(report, sample_encoding::src_only);
  EXPECT_FALSE(decode_report(bytes, sample_encoding::src_only).has_value());
}

TEST(Codec, RejectsLyingCountField) {
  auto bytes = encode_report(make_report(4), sample_encoding::src_only);
  bytes[12] = 200;  // count field claims 200 entries, buffer holds 4
  EXPECT_FALSE(decode_report(bytes, sample_encoding::src_only).has_value());
}

TEST(Codec, GoldenBytesPinTheWireLayout) {
  // The sample_report layout predates the shared wire layer
  // (util/wire.hpp); refactoring the codec onto it must keep the payload
  // byte-identical. These bytes are the contract - if this test fails, the
  // change broke every deployed vantage/controller pairing.
  sample_report r;
  r.origin = 0x01020304;
  r.covered_packets = 0x1122334455667788ull;
  r.samples.push_back(packet{0xAABBCCDD, 0x10203040});
  r.samples.push_back(packet{0x00000001, 0xFFFFFFFF});

  const std::vector<std::uint8_t> golden_src = {
      0x04, 0x03, 0x02, 0x01,                          // origin, LE
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // covered, LE
      0x02, 0x00, 0x00, 0x00,                          // count
      0xDD, 0xCC, 0xBB, 0xAA,                          // sample 0 src
      0x01, 0x00, 0x00, 0x00,                          // sample 1 src
  };
  EXPECT_EQ(encode_report(r, sample_encoding::src_only), golden_src);

  const std::vector<std::uint8_t> golden_srcdst = {
      0x04, 0x03, 0x02, 0x01,                          // origin
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // covered
      0x02, 0x00, 0x00, 0x00,                          // count
      0xDD, 0xCC, 0xBB, 0xAA, 0x40, 0x30, 0x20, 0x10,  // sample 0 (src, dst)
      0x01, 0x00, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF,  // sample 1 (src, dst)
  };
  EXPECT_EQ(encode_report(r, sample_encoding::src_and_dst), golden_srcdst);
}

class CodecFuzz : public ::testing::TestWithParam<sample_encoding> {};

TEST_P(CodecFuzz, EveryTruncationRejectedEveryBitFlipSurvived) {
  // Decode hardening: feed every prefix of a valid payload (must be
  // nullopt: the count/size cross-check makes any truncation detectable)
  // and every single-bit-flipped variant (must never crash or yield a
  // structurally broken report; a flip confined to sample/origin bytes MAY
  // decode - to a different but well-formed report). Runs under ASan/UBSan
  // in CI, which promotes any out-of-bounds read into a test failure.
  const auto encoding = GetParam();
  const auto valid = encode_report(make_report(13, 4, 500), encoding);

  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    EXPECT_FALSE(
        decode_report(std::span<const std::uint8_t>(valid.data(), cut), encoding).has_value())
        << "accepted truncation at " << cut;
  }

  auto mutated = valid;
  for (std::size_t i = 0; i < valid.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      mutated[i] = valid[i] ^ static_cast<std::uint8_t>(1u << bit);
      const auto decoded = decode_report(mutated, encoding);
      if (decoded.has_value()) {
        // Whatever decoded must satisfy every structural invariant.
        EXPECT_EQ(decoded->samples.size() * static_cast<std::size_t>(encoding) + 16,
                  valid.size());
        EXPECT_GE(decoded->covered_packets, decoded->samples.size());
      }
    }
    mutated[i] = valid[i];
  }
}

INSTANTIATE_TEST_SUITE_P(BothEncodings, CodecFuzz,
                         ::testing::Values(sample_encoding::src_only,
                                           sample_encoding::src_and_dst),
                         [](const auto& info) {
                           return info.param == sample_encoding::src_only ? "src" : "srcdst";
                         });

TEST(Codec, DecodedReportDrivesController) {
  // End-to-end: encode at the vantage, decode at the controller, feed it.
  d_memento_controller controller(10000, 128, 0.5);
  measurement_point mp(0, 0.5, 8, /*seed=*/3);
  trace_generator gen(trace_kind::datacenter, 9);
  std::uint64_t covered_total = 0;
  for (int i = 0; i < 20000; ++i) {
    if (auto r = mp.observe(gen.next())) {
      const auto bytes = encode_report(*r, sample_encoding::src_and_dst);
      const auto decoded = decode_report(bytes, sample_encoding::src_and_dst);
      ASSERT_TRUE(decoded.has_value());
      controller.on_report(*decoded);
      covered_total += decoded->covered_packets;
    }
  }
  EXPECT_GT(controller.reports_received(), 0u);
  // The controller's window clock advanced exactly once per covered packet.
  EXPECT_EQ(controller.sketch().stream_length(), covered_total);
}

}  // namespace
}  // namespace memento::netwide
