// Tests for the console-table formatter used by every figure harness.
#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

namespace memento {
namespace {

TEST(ConsoleTable, HeaderAndRule) {
  console_table table({"a", "bb"}, 6);
  std::ostringstream out;
  table.print_header(out);
  EXPECT_EQ(out.str(), "     a    bb\n------------\n");
}

TEST(ConsoleTable, RightAlignedCells) {
  console_table table({"x"}, 8);
  std::ostringstream out;
  table.cell(42).end_row(out);
  EXPECT_EQ(out.str(), "      42\n");
}

TEST(ConsoleTable, FloatingPointPrecision) {
  console_table table({"v"}, 10);
  std::ostringstream out;
  table.cell(3.14159, 2).end_row(out);
  EXPECT_EQ(out.str(), "      3.14\n");
}

TEST(ConsoleTable, DefaultDoublePrecisionIsFour) {
  console_table table({"v"}, 10);
  std::ostringstream out;
  table.cell(1.5).end_row(out);
  EXPECT_EQ(out.str(), "    1.5000\n");
}

TEST(ConsoleTable, StringsPassThrough) {
  console_table table({"s"}, 8);
  std::ostringstream out;
  table.cell(std::string("hi")).end_row(out);
  EXPECT_EQ(out.str(), "      hi\n");
}

TEST(ConsoleTable, RowClearsAfterFlush) {
  console_table table({"a", "b"}, 4);
  std::ostringstream out;
  table.cell(1).cell(2).end_row(out);
  table.cell(3).cell(4).end_row(out);
  EXPECT_EQ(out.str(), "   1   2\n   3   4\n");
}

TEST(ConsoleTable, ChainedCellsBuildOneRow) {
  console_table table({"a", "b", "c"}, 5);
  std::ostringstream out;
  table.cell("x").cell(7).cell(0.5, 1).end_row(out);
  EXPECT_EQ(out.str(), "    x    7  0.5\n");
}

}  // namespace
}  // namespace memento
