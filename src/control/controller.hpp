// The autonomic controller: the decision brain that closes the ROADMAP's
// "sketch that runs itself" loop.
//
// PR 5 built the mechanism (coverage_rebalancer + weighted reshard), PR 8
// the transport (streamed snapshots); what remained manual was the POLICY
// LOOP: someone had to watch window_coverage()/load share and call
// rebalance() at the right moment. This class is that someone. It is
// deliberately split from the thread that runs it (control/service.hpp) and
// from the deployment it controls (control/hosts.hpp):
//
//   controller (here)     pure decision state machine. tick(host) reads one
//                         load sample, advances hysteresis/watermark/cadence
//                         state, and invokes at most a handful of host
//                         actions. All time comes from an injected
//                         clock_face, every decision lands in the control
//                         log - so tests drive ticks by hand with a
//                         fake_clock and pin exact event sequences.
//
//   host (hosts.hpp)      the deployment being controlled: sample() exposes
//                         producer-side per-shard load counters (safe to
//                         read under the control lock without draining),
//                         rebalance()/rescale()/checkpoint() execute the
//                         mechanisms behind the drain barrier.
//
//   service (service.hpp) the monitor thread + control lock that pace
//                         tick() in a live deployment.
//
// Decision semantics (each pinned by tests/controller_test.cpp):
//
//   * Rebalance alarm with HYSTERESIS: the per-tick segment load ratio
//     (max/min packets per shard since the last judged tick) must stay at or
//     above `load_ratio_high` for `sustain_ticks` consecutive ticks to raise
//     the alarm; the alarm clears only when the ratio falls to
//     `load_ratio_clear` or below. Load oscillating anywhere inside the
//     (clear, high) band therefore causes ZERO transitions - the flap-free
//     guarantee - and a sustained excursion whose migration brings the ratio
//     down to the clear line triggers exactly once. While the alarm stays
//     latched ABOVE the clear line after a migration (the plan was built
//     from a distorted signal), the trigger re-arms every further sustain
//     period rather than wedging raised: each retry plans from
//     post-migration traffic, so successive migrations converge until the
//     alarm actually clears.
//   * COOLDOWN: a trigger landing within `rebalance_cooldown_ns` of the last
//     migration is deferred (logged as rebalance_suppressed), then executed
//     on the first tick after the cooldown expires - unless the excursion
//     cleared itself meanwhile. Oscillating load can therefore never drive
//     back-to-back migrations.
//   * ELASTIC SCALING: when the sustained per-shard update rate crosses the
//     high watermark the controller doubles the shard count (halves it below
//     the low watermark), clamped to [min_shards, max_shards], through the
//     host's reshard path - window state carried, no stream replay. Scaling
//     re-baselines every observation (the world changed shape).
//   * CHECKPOINT CADENCE: every `checkpoint_interval_ns` the host streams a
//     checkpoint through the PR 8 chunked sink into the checkpoint store;
//     a crashed shard is restored from the latest image (the fault-injection
//     soak kills and restores mid-stream under TSan).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "control/clock.hpp"
#include "control/events.hpp"

namespace memento {

/// One monitor observation: cumulative per-shard offered-packet counters
/// (producer-side, monotonic between geometry changes) plus each shard's
/// configured window size (for the derived coverage spread).
struct control_sample {
  std::vector<std::uint64_t> offered;
  std::vector<std::uint64_t> window;
};

struct controller_config {
  // --- monitor pacing -------------------------------------------------------
  std::uint64_t sample_interval_ns = 100'000'000;  ///< 100 ms between judged ticks
  /// Segments smaller than this are accumulated, not judged: a handful of
  /// packets cannot witness imbalance, only noise.
  std::uint64_t min_segment_packets = 4096;

  // --- rebalance alarm (hysteresis band + cooldown) -------------------------
  double load_ratio_high = 1.50;   ///< raise at or above (sustained)
  double load_ratio_clear = 1.10;  ///< clear at or below
  std::uint32_t sustain_ticks = 2; ///< consecutive breaches required to raise
  std::uint64_t rebalance_cooldown_ns = 2'000'000'000;  ///< 2 s between migrations

  // --- elastic scaling watermarks (per-shard packets/second; 0 = off) -------
  double scale_up_pps = 0.0;
  double scale_down_pps = 0.0;
  std::uint32_t scale_sustain_ticks = 3;
  std::size_t min_shards = 1;
  std::size_t max_shards = 64;
  std::uint64_t scale_cooldown_ns = 5'000'000'000;

  // --- background checkpoints (0 = off) -------------------------------------
  std::uint64_t checkpoint_interval_ns = 0;
};

class controller {
 public:
  controller(const controller_config& config, const clock_face& clock)
      : cfg_(config), clk_(&clock) {}

  /// One monitor step against the live deployment. Call under the control
  /// lock (or single-threaded); see the file comment for the semantics.
  template <typename Host>
  void tick(Host& host) {
    const std::uint64_t now = clk_->now_ns();
    next_sample_ = now + cfg_.sample_interval_ns;

    const control_sample s = host.sample();
    const std::size_t shards = s.offered.size();
    if (shards == 0) return;

    bool reset = baseline_.size() != shards;
    for (std::size_t i = 0; !reset && i < shards; ++i) {
      // A counter running BACKWARD means the lane was rebuilt under us (a
      // restore or an external adopt at the same shard count) - judging the
      // wrapped difference would read as a phantom mega-segment.
      reset = s.offered[i] < baseline_[i];
    }
    if (reset) {
      // First tick, or the geometry changed under us (scale/restore):
      // re-baseline and judge from the next segment.
      rebaseline(s, now);
      maybe_checkpoint(host, now);
      return;
    }

    std::uint64_t seg_total = 0, seg_min = std::numeric_limits<std::uint64_t>::max(),
                  seg_max = 0;
    double cov_min = std::numeric_limits<double>::infinity(), cov_max = 0.0;
    for (std::size_t i = 0; i < shards; ++i) {
      const std::uint64_t d = s.offered[i] - baseline_[i];
      seg_total += d;
      seg_min = std::min(seg_min, d);
      seg_max = std::max(seg_max, d);
      // Coverage over the segment: global packets shard i's window spans,
      // ~ W_i / rho_i with rho_i its realized load share (docs/ACCURACY.md).
      const double cov = d > 0 ? static_cast<double>(s.window[i]) / static_cast<double>(d)
                               : std::numeric_limits<double>::infinity();
      cov_min = std::min(cov_min, cov);
      cov_max = std::max(cov_max, cov);
    }
    if (seg_total < cfg_.min_segment_packets) {
      // Too little traffic to judge; keep accumulating against the old
      // baseline, but the checkpoint cadence is wall-clock, not load.
      maybe_checkpoint(host, now);
      return;
    }
    const double inf = std::numeric_limits<double>::infinity();
    const double ratio = seg_min > 0
                             ? static_cast<double>(seg_max) / static_cast<double>(seg_min)
                             : inf;
    const double spread = cov_min > 0.0 && cov_max < inf ? cov_max / cov_min : inf;
    load_ratio_ = ratio;
    coverage_spread_ = spread;
    emit(control_event::sample, now, 0);

    const bool scaled = maybe_scale(host, now, seg_total, shards);
    if (!scaled) {
      maybe_rebalance(host, now);
      rebaseline(s, now);
    }
    maybe_checkpoint(host, now);
  }

  /// When the next tick is due: the earlier of the sample interval and the
  /// checkpoint cadence. 0 before the first tick (run immediately).
  [[nodiscard]] std::uint64_t next_due_ns() const noexcept {
    if (next_checkpoint_ != 0 && next_checkpoint_ < next_sample_) return next_checkpoint_;
    return next_sample_;
  }

  /// Appends an externally initiated decision (e.g. the service's restore
  /// path) so the log stays the one authoritative trace.
  void note(control_event kind, std::uint64_t detail = 0) {
    emit(kind, clk_->now_ns(), detail, /*shards=*/baseline_.size());
  }

  // --- introspection --------------------------------------------------------
  [[nodiscard]] const control_log& log() const noexcept { return log_; }
  [[nodiscard]] bool alarm() const noexcept { return alarm_; }
  [[nodiscard]] double last_load_ratio() const noexcept { return load_ratio_; }
  [[nodiscard]] double last_coverage_spread() const noexcept { return coverage_spread_; }
  [[nodiscard]] const controller_config& config() const noexcept { return cfg_; }

 private:
  void rebaseline(const control_sample& s, std::uint64_t now) {
    baseline_ = s.offered;
    baseline_time_ = now;
  }

  /// Watermark scaling; true when the geometry changed (the caller skips the
  /// rebalance judgement - the new layout deserves a fresh look).
  template <typename Host>
  bool maybe_scale(Host& host, std::uint64_t now, std::uint64_t seg_total,
                   std::size_t shards) {
    if (cfg_.scale_up_pps <= 0.0 && cfg_.scale_down_pps <= 0.0) return false;
    const std::uint64_t dt = now - baseline_time_;
    if (dt == 0) return false;
    const double per_shard_pps = static_cast<double>(seg_total) * 1e9 /
                                 static_cast<double>(dt) / static_cast<double>(shards);
    up_ticks_ = cfg_.scale_up_pps > 0.0 && per_shard_pps >= cfg_.scale_up_pps ? up_ticks_ + 1 : 0;
    down_ticks_ =
        cfg_.scale_down_pps > 0.0 && per_shard_pps <= cfg_.scale_down_pps ? down_ticks_ + 1 : 0;
    if (now < scale_cooldown_until_) return false;

    std::size_t target = shards;
    control_event kind = control_event::scale_up;
    if (up_ticks_ >= cfg_.scale_sustain_ticks && shards < cfg_.max_shards) {
      target = std::min(cfg_.max_shards, shards * 2);
    } else if (down_ticks_ >= cfg_.scale_sustain_ticks && shards > cfg_.min_shards) {
      target = std::max(cfg_.min_shards, shards / 2);
      kind = control_event::scale_down;
    }
    if (target == shards) return false;

    const bool ok = host.rescale(target);
    emit(ok ? kind : control_event::scale_rejected, now, target);
    up_ticks_ = down_ticks_ = 0;
    scale_cooldown_until_ = now + cfg_.scale_cooldown_ns;
    if (!ok) return false;
    // The world changed shape: drop every observation and alarm state.
    baseline_.clear();
    alarm_ = false;
    breach_ticks_ = 0;
    pending_rebalance_ = suppressed_logged_ = false;
    return true;
  }

  /// Hysteresis state machine + cooldown-gated trigger.
  template <typename Host>
  void maybe_rebalance(Host& host, std::uint64_t now) {
    if (!alarm_) {
      breach_ticks_ = load_ratio_ >= cfg_.load_ratio_high ? breach_ticks_ + 1 : 0;
      if (breach_ticks_ >= cfg_.sustain_ticks) {
        alarm_ = true;
        pending_rebalance_ = true;
        suppressed_logged_ = false;
        breach_ticks_ = 0;
        emit(control_event::alarm_raised, now, 0);
      }
    } else if (load_ratio_ <= cfg_.load_ratio_clear) {
      alarm_ = false;
      breach_ticks_ = 0;
      // The excursion resolved itself (or a migration landed): a deferred
      // trigger must not fire into a balanced deployment.
      pending_rebalance_ = false;
      emit(control_event::alarm_cleared, now, 0);
    } else if (!pending_rebalance_) {
      // A migration landed but the ratio is still above the clear line: the
      // alarm stays latched, so keep working it - re-arm after another
      // sustain period instead of wedging raised. Thermostat hysteresis:
      // only a >= high excursion RAISES the alarm, but once raised the
      // controller retries until the ratio actually clears. Each retry sees
      // post-migration traffic, so successive plans converge; a plan the
      // rebalancer judges already balanced is a logged noop and arms no
      // cooldown.
      if (++breach_ticks_ >= cfg_.sustain_ticks) {
        pending_rebalance_ = true;
        suppressed_logged_ = false;
        breach_ticks_ = 0;
      }
    }
    if (!pending_rebalance_) return;
    if (now < rebalance_cooldown_until_) {
      if (!suppressed_logged_) {
        emit(control_event::rebalance_suppressed, now, 0);
        suppressed_logged_ = true;
      }
      return;
    }
    const bool did = host.rebalance();
    emit(did ? control_event::rebalance_applied : control_event::rebalance_noop, now, 0);
    pending_rebalance_ = false;
    if (did) rebalance_cooldown_until_ = now + cfg_.rebalance_cooldown_ns;
  }

  template <typename Host>
  void maybe_checkpoint(Host& host, std::uint64_t now) {
    if (cfg_.checkpoint_interval_ns == 0) return;
    if (next_checkpoint_ == 0) {  // first tick arms the cadence
      next_checkpoint_ = now + cfg_.checkpoint_interval_ns;
      return;
    }
    if (now < next_checkpoint_) return;
    const std::size_t bytes = host.checkpoint();
    emit(bytes > 0 ? control_event::checkpoint_taken : control_event::checkpoint_failed, now,
         bytes);
    next_checkpoint_ = now + cfg_.checkpoint_interval_ns;
  }

  void emit(control_event kind, std::uint64_t now, std::uint64_t detail,
            std::size_t shards = 0) {
    control_record r;
    r.kind = kind;
    r.at_ns = now;
    r.load_ratio = load_ratio_;
    r.coverage_spread = coverage_spread_;
    r.shards = shards != 0 ? shards : baseline_.size();
    r.detail = detail;
    log_.append(r);
  }

  controller_config cfg_;
  const clock_face* clk_;
  control_log log_;

  std::vector<std::uint64_t> baseline_;  ///< offered counters at the last judged tick
  std::uint64_t baseline_time_ = 0;
  std::uint64_t next_sample_ = 0;
  std::uint64_t next_checkpoint_ = 0;

  double load_ratio_ = 1.0;
  double coverage_spread_ = 1.0;
  bool alarm_ = false;
  std::uint32_t breach_ticks_ = 0;
  bool pending_rebalance_ = false;
  bool suppressed_logged_ = false;
  std::uint64_t rebalance_cooldown_until_ = 0;

  std::uint32_t up_ticks_ = 0;
  std::uint32_t down_ticks_ = 0;
  std::uint64_t scale_cooldown_until_ = 0;
};

}  // namespace memento
