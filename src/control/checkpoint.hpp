// Latest-wins checkpoint store for the controller's background checkpoints.
//
// The controller checkpoints through the PR 8 streamed wire (wire::sink with
// chunked flushes, FoR/varint column codecs, per-section CRC): capture()
// drives snapshot::stream_save chunk by chunk, so the serialization itself
// never holds more than about one chunk of frame state - the property the
// snapshot bench pins. The DESTINATION here is an in-memory byte image
// (the store is the recovery source for kill/restore fault injection and
// for tests; a deployment that wants durability hands the same sink a file
// or socket callback instead - the capture path is identical).
//
// Only the newest successful image is kept: a checkpoint is a recovery
// point, not an archive, and a failed capture must never shadow a good one -
// capture() builds into a side buffer and swaps only on success.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "snapshot/snapshot.hpp"
#include "util/wire.hpp"

namespace memento {

class checkpoint_store {
 public:
  explicit checkpoint_store(std::size_t chunk_bytes = wire::sink::kDefaultChunk)
      : chunk_(chunk_bytes) {}

  /// Streams `object` through a chunked wire::sink into a fresh image and,
  /// on success, publishes it as the latest checkpoint. Returns the image
  /// size in bytes, 0 on failure (the previous image stays authoritative).
  template <typename T>
  std::size_t capture(const T& object) {
    std::vector<std::uint8_t> image;
    wire::sink s(image, chunk_);
    if (!snapshot::stream_save(object, s)) return 0;
    peak_buffered_ = s.peak_buffered();
    latest_ = std::move(image);
    ++generation_;
    return latest_.size();
  }

  /// Rebuilds a T from the latest image (nullopt when empty or corrupt).
  template <typename T>
  [[nodiscard]] std::optional<T> restore_latest() const {
    if (latest_.empty()) return std::nullopt;
    wire::source src{std::span<const std::uint8_t>(latest_)};
    return snapshot::stream_restore<T>(src);
  }

  [[nodiscard]] bool empty() const noexcept { return latest_.empty(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return latest_.size(); }
  /// Successful captures so far; the latest image's id.
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }
  /// Max bytes the sink held during the last successful capture - the
  /// bounded-memory evidence (<= chunk + largest single put).
  [[nodiscard]] std::size_t peak_buffered() const noexcept { return peak_buffered_; }
  [[nodiscard]] std::span<const std::uint8_t> image() const noexcept { return latest_; }

 private:
  std::size_t chunk_;
  std::vector<std::uint8_t> latest_;
  std::uint64_t generation_ = 0;
  std::size_t peak_buffered_ = 0;
};

}  // namespace memento
