// Host adapters: the deployments the controller brain can run against.
//
// controller::tick() is written against a four-method Host shape -
//
//   control_sample sample();        cumulative per-shard offered packets +
//                                   each shard's (static) window size
//   bool rebalance();               migrate onto a better bucket table
//   bool rescale(std::size_t m);    elastic N -> M (false when unsupported)
//   std::size_t checkpoint();       stream a checkpoint; bytes, 0 = failed
//
// - and this file provides the three real bindings. The sampling rule is
// the same everywhere: read PRODUCER-SIDE cumulative counters (ring stats
// for the threaded hosts, per-shard stream lengths for the deterministic
// one), never the workers' shard state, so a monitor tick needs no drain
// barrier and perturbs nothing. Only the ACTIONS quiesce: rebalance /
// rescale / checkpoint ride each deployment's existing drain discipline,
// which is also why every host must be driven from the producer thread (the
// controller_service's control lock enforces exactly that).
//
//   front_host     a bare sharded_memento / sharded_h_memento on the calling
//                  thread - the deterministic harness tests script, and the
//                  single-threaded embedding. rescale() uses the snapshot
//                  reshard for the flat frontend and reports unsupported for
//                  the hierarchical one (HHH N -> M is future work;
//                  the brain logs scale_rejected and carries on).
//   pool_host      sharded_memento_pool - full lifecycle: rebalance and
//                  elastic rescale behind the pool's drain barrier, plus the
//                  kill/restore pair the fault-injection soak drives.
//   pipeline_host  pipeline<Traits> - the appliance binding
//                  (memento_appliance --controller): rebalance + checkpoint;
//                  rescale is rejected (core count is the box's, not ours).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "control/checkpoint.hpp"
#include "control/controller.hpp"
#include "pipeline/pipeline.hpp"
#include "shard/rebalance.hpp"
#include "shard/shard_pool.hpp"
#include "shard/sharded_h_memento.hpp"
#include "shard/sharded_memento.hpp"
#include "snapshot/reshard.hpp"

namespace memento {

/// Deterministic single-threaded host: the frontend lives on the calling
/// thread, so sampling reads per-shard stream lengths directly.
template <typename Front>
class front_host {
 public:
  front_host(Front& front, checkpoint_store& store, rebalance_config rcfg = {})
      : front_(&front), store_(&store), balancer_(rcfg) {}

  [[nodiscard]] control_sample sample() const {
    control_sample s;
    const std::size_t n = front_->num_shards();
    s.offered.reserve(n);
    s.window.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.offered.push_back(front_->shard(i).stream_length());
      s.window.push_back(front_->shard(i).window_size());
    }
    return s;
  }

  bool rebalance() { return front_->rebalance(balancer_); }
  bool rescale(std::size_t target) { return rescale_impl(*front_, target); }
  std::size_t checkpoint() { return store_->capture(*front_); }

  /// Replaces the frontend from the latest checkpoint; the restored global
  /// stream length (0 = no image / corrupt - nothing replaced).
  std::uint64_t restore() {
    auto image = store_->template restore_latest<Front>();
    if (!image) return 0;
    const std::uint64_t len = image->stream_length();
    *front_ = std::move(*image);
    return len;
  }

  [[nodiscard]] checkpoint_store& store() noexcept { return *store_; }

 private:
  template <typename Key>
  static bool rescale_impl(sharded_memento<Key>& front, std::size_t target) {
    if (target == 0 || target == front.num_shards()) return false;
    shard_config cfg = front.config_snapshot();
    cfg.shards = target;
    auto next = snapshot_builder::reshard(front, cfg);
    if (!next) return false;
    front = std::move(*next);
    return true;
  }
  template <typename H>
  static bool rescale_impl(sharded_h_memento<H>&, std::size_t) {
    return false;  // HHH elastic scaling is future work (reshard.hpp)
  }

  Front* front_;
  checkpoint_store* store_;
  coverage_rebalancer balancer_;
};

/// Threaded-pool host: the binding the fault-injection soak runs under TSan.
/// Samples the pool's producer-side ring stats (enqueued + drops = offered);
/// all actions go through the pool's drain-barrier lifecycle hooks.
template <typename Key = std::uint64_t>
class pool_host {
 public:
  using pool_type = sharded_memento_pool<Key>;
  using frontend_type = typename pool_type::frontend_type;

  pool_host(pool_type& pool, checkpoint_store& store, rebalance_config rcfg = {})
      : pool_(&pool), store_(&store), balancer_(rcfg) {}

  [[nodiscard]] control_sample sample() const {
    control_sample s;
    const std::size_t n = pool_->num_shards();
    s.offered.reserve(n);
    s.window.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const ring_stats& st = pool_->ingest_stats(i);
      s.offered.push_back(st.enqueued + st.drops);
      // Window sizes are fixed at shard construction - the one piece of
      // shard state a monitor may read without draining.
      s.window.push_back(pool_->frontend().shard(i).window_size());
    }
    return s;
  }

  bool rebalance() { return pool_->rebalance(balancer_); }
  bool rescale(std::size_t target) { return pool_->rescale(target); }

  std::size_t checkpoint() {
    pool_->drain();
    return store_->capture(pool_->frontend());
  }

  /// Crash recovery: adopts the latest checkpoint image as the pool's
  /// frontend (lanes rebuilt, accounting retired). Returns the restored
  /// global stream length, 0 when there is no usable image.
  std::uint64_t restore() {
    auto image = store_->template restore_latest<frontend_type>();
    if (!image) return 0;
    const std::uint64_t len = image->stream_length();
    pool_->adopt(std::move(*image));
    return len;
  }

  /// Fault injection: wipe shard s as if its process died blank.
  void kill_shard(std::size_t s) { pool_->kill_shard(s); }

  [[nodiscard]] checkpoint_store& store() noexcept { return *store_; }

 private:
  pool_type* pool_;
  checkpoint_store* store_;
  coverage_rebalancer balancer_;
};

/// Appliance host: the run-to-completion pipeline in threaded push mode.
/// Rescale is rejected (one core per shard is the box's geometry); the
/// controller still rebalances the keyspace across the fixed cores and
/// checkpoints the frontend behind the pipeline's drain barrier.
template <typename Traits = flow_key_traits>
class pipeline_host {
 public:
  using pipe_type = pipeline<Traits>;
  using frontend_type = typename pipe_type::frontend_type;

  pipeline_host(pipe_type& pipe, checkpoint_store& store, rebalance_config rcfg = {})
      : pipe_(&pipe), store_(&store), balancer_(rcfg) {}

  [[nodiscard]] control_sample sample() const {
    control_sample s;
    const std::size_t n = pipe_->cores();
    s.offered.reserve(n);
    s.window.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
      const ring_stats& st = pipe_->ingest_stats(c);
      s.offered.push_back(st.enqueued + st.drops);
      s.window.push_back(pipe_->frontend().shard(c).window_size());
    }
    return s;
  }

  bool rebalance() { return pipe_->rebalance(balancer_); }
  bool rescale(std::size_t) { return false; }

  std::size_t checkpoint() {
    pipe_->drain();
    return store_->capture(pipe_->frontend());
  }

  [[nodiscard]] checkpoint_store& store() noexcept { return *store_; }

 private:
  pipe_type* pipe_;
  checkpoint_store* store_;
  coverage_rebalancer balancer_;
};

}  // namespace memento
