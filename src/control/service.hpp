// controller_service: the thread + lock that turn the controller brain into
// a running autonomic loop.
//
// Concurrency model - ONE rule: the host behaves as if it had a single
// producer thread, and the control lock decides who that producer is at any
// instant. The deployments' hot paths (SPSC rings, worker-per-shard) stay
// lock-free and untouched; the lock only serializes the PRODUCER-SIDE
// surface - ingest bursts, monitor ticks, operator actions - against each
// other:
//
//   application thread        apply([&]{ pool.ingest(burst); })
//   monitor thread            lock; brain.tick(host); unlock
//   operator / fault harness  apply(...), restore()
//
// Actions that quiesce (rebalance / rescale / checkpoint / restore) run the
// host's drain barrier while holding the lock; the blocked application
// thread simply resumes ingesting afterward, exactly as if it had called
// rebalance() itself - which is what keeps the whole arrangement TSan-clean
// without adding a single atomic to the packet path. A contended tick costs
// the producer one drain, bounded by ring capacity.
//
// Pacing: the monitor thread polls the injected clock_face against the
// brain's next_due_ns() and rides util/backoff.hpp's idle-progressive
// ladder between deadlines - with a fake_clock the thread parks at the
// ladder's cap (~128us sleeps) until a test advances time, so the
// deterministic soak does not busy-burn a core. Cooperative embeddings can
// skip start() entirely and call tick() from their own loop (the appliance
// does this between bursts: same brain, same lock, no extra thread).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "control/clock.hpp"
#include "control/controller.hpp"
#include "control/events.hpp"
#include "util/backoff.hpp"

namespace memento {

template <typename Host>
class controller_service {
 public:
  controller_service(Host& host, const controller_config& config, const clock_face& clock)
      : host_(&host), clk_(&clock), brain_(config, clock) {}

  ~controller_service() { stop(); }
  controller_service(const controller_service&) = delete;
  controller_service& operator=(const controller_service&) = delete;

  /// Spawns the monitor thread. Idempotent.
  void start() {
    if (running_) return;
    stop_.store(false, std::memory_order_release);
    monitor_ = std::thread([this] { monitor_loop(); });
    running_ = true;
  }

  /// Stops and joins the monitor thread. Safe when not started.
  void stop() {
    if (!running_) return;
    stop_.store(true, std::memory_order_release);
    monitor_.join();
    running_ = false;
  }

  [[nodiscard]] bool running() const noexcept { return running_; }

  /// The producer gate: runs `fn` under the control lock. Route EVERY
  /// producer-side touch of the host's deployment through here while the
  /// service runs - ingest bursts, queries after drain, fault injection.
  template <typename Fn>
  decltype(auto) apply(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    return std::forward<Fn>(fn)();
  }

  /// One cooperative monitor tick on the calling thread (no-thread
  /// embeddings and deterministic tests). Same lock as the monitor thread,
  /// so mixing modes is safe, just pointless.
  void tick() {
    std::lock_guard<std::mutex> lock(mu_);
    brain_.tick(*host_);
  }

  /// True when the brain's next deadline has passed on the injected clock -
  /// cooperative embeddings poll this between bursts and call tick() when it
  /// fires, mirroring the monitor thread's own pacing.
  [[nodiscard]] bool due() const {
    std::lock_guard<std::mutex> lock(mu_);
    return clk_->now_ns() >= brain_.next_due_ns();
  }

  /// Crash recovery: replaces the deployment from the latest checkpoint
  /// (host restore under the lock) and logs it. Returns the restored global
  /// stream length, 0 when no image was usable. Only instantiable against
  /// hosts that support restore (front_host / pool_host).
  std::uint64_t restore() {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t len = host_->restore();
    if (len > 0) brain_.note(control_event::restored, len);
    return len;
  }

  // --- observability (each snapshots under the lock) ------------------------

  [[nodiscard]] std::vector<control_record> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return brain_.log().records();
  }
  [[nodiscard]] std::vector<control_event> decisions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return brain_.log().decisions();
  }
  [[nodiscard]] std::size_t count(control_event kind) const {
    std::lock_guard<std::mutex> lock(mu_);
    return brain_.log().count(kind);
  }
  [[nodiscard]] bool alarm() const {
    std::lock_guard<std::mutex> lock(mu_);
    return brain_.alarm();
  }
  [[nodiscard]] double last_load_ratio() const {
    std::lock_guard<std::mutex> lock(mu_);
    return brain_.last_load_ratio();
  }
  [[nodiscard]] double last_coverage_spread() const {
    std::lock_guard<std::mutex> lock(mu_);
    return brain_.last_coverage_spread();
  }

 private:
  void monitor_loop() {
    idle_backoff backoff;
    while (!stop_.load(std::memory_order_acquire)) {
      std::uint64_t due;
      {
        std::lock_guard<std::mutex> lock(mu_);
        due = brain_.next_due_ns();
      }
      if (clk_->now_ns() >= due) {
        std::lock_guard<std::mutex> lock(mu_);
        brain_.tick(*host_);
        backoff.reset();
      } else {
        backoff.idle();
      }
    }
  }

  Host* host_;
  const clock_face* clk_;
  controller brain_;
  mutable std::mutex mu_;
  std::atomic<bool> stop_{false};
  std::thread monitor_;
  bool running_ = false;
};

}  // namespace memento
