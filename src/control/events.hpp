// Structured decision log for the autonomic controller.
//
// "The sketch runs itself" is only a testable property if every decision the
// controller takes - and every decision it deliberately does NOT take - is
// observable as data. The controller therefore never acts silently: each
// monitor tick appends one `sample` record, and every alarm transition,
// rebalance, scale move, checkpoint and restore lands here with the clock
// reading and the load picture that justified it. Tests pin EXACT kind
// sequences (tests/controller_test.cpp), the fault-injection soak asserts
// checkpoint/restore ordering, and the appliance folds the timestamps into
// BENCH_fig5.json's controller section (time-to-recover after a skew shift).
//
// The log is a plain vector owned by the controller; in a threaded
// deployment controller_service snapshots it under the control lock, so
// readers never see a half-written record.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace memento {

/// What happened on a monitor tick. One enumerator per distinct decision so
/// a pinned sequence reads as the controller's state-machine trace.
enum class control_event : std::uint8_t {
  sample,                ///< one monitor observation (always emitted on a judged tick)
  alarm_raised,          ///< load ratio sustained above the high band edge
  alarm_cleared,         ///< load ratio back below the clear band edge
  rebalance_applied,     ///< coverage rebalancer migrated the keyspace
  rebalance_noop,        ///< alarm fired but the policy found no better table
  rebalance_suppressed,  ///< alarm fired inside the cooldown; deferred, not dropped
  scale_up,              ///< shard count grew (sustained high watermark)
  scale_down,            ///< shard count shrank (sustained low watermark)
  scale_rejected,        ///< the host cannot rescale (or the reshard failed)
  checkpoint_taken,      ///< background checkpoint streamed to the store
  checkpoint_failed,     ///< the sink or the save refused
  restored,              ///< frontend replaced from the latest checkpoint
};

[[nodiscard]] constexpr const char* control_event_name(control_event e) noexcept {
  switch (e) {
    case control_event::sample: return "sample";
    case control_event::alarm_raised: return "alarm_raised";
    case control_event::alarm_cleared: return "alarm_cleared";
    case control_event::rebalance_applied: return "rebalance_applied";
    case control_event::rebalance_noop: return "rebalance_noop";
    case control_event::rebalance_suppressed: return "rebalance_suppressed";
    case control_event::scale_up: return "scale_up";
    case control_event::scale_down: return "scale_down";
    case control_event::scale_rejected: return "scale_rejected";
    case control_event::checkpoint_taken: return "checkpoint_taken";
    case control_event::checkpoint_failed: return "checkpoint_failed";
    case control_event::restored: return "restored";
  }
  return "?";
}

/// One log record: the decision plus the observation that drove it.
/// `detail` is per-kind: checkpoint bytes for checkpoint_taken, the target
/// shard count for scale_*, the restored stream length for restored,
/// otherwise 0.
struct control_record {
  control_event kind = control_event::sample;
  std::uint64_t at_ns = 0;        ///< clock_face reading at decision time
  std::uint64_t seq = 0;          ///< monotonic record number
  double load_ratio = 0.0;        ///< max/min per-shard segment load (inf when starved)
  double coverage_spread = 0.0;   ///< max/min derived window coverage over the segment
  std::size_t shards = 0;         ///< shard count when the record was written
  std::uint64_t detail = 0;       ///< per-kind payload (see struct comment)
};

/// Append-only decision log. Not thread-safe by itself: the controller owns
/// it and controller_service serializes access with the control lock.
class control_log {
 public:
  void append(control_record r) {
    r.seq = records_.size();
    records_.push_back(r);
  }

  [[nodiscard]] const std::vector<control_record>& records() const noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// The kind sequence with `sample` records elided - the shape tests pin
  /// (every tick samples, so keeping them would bury the decisions).
  [[nodiscard]] std::vector<control_event> decisions() const {
    std::vector<control_event> out;
    for (const auto& r : records_) {
      if (r.kind != control_event::sample) out.push_back(r.kind);
    }
    return out;
  }

  [[nodiscard]] std::size_t count(control_event kind) const noexcept {
    std::size_t n = 0;
    for (const auto& r : records_) n += r.kind == kind ? 1 : 0;
    return n;
  }

 private:
  std::vector<control_record> records_;
};

}  // namespace memento
