// Injected time for the control plane.
//
// Every decision the autonomic controller makes - hysteresis sustain counts,
// rebalance cooldowns, scale watermark windows, checkpoint cadence - is a
// function of "now". Reading std::chrono directly would make each of those
// decisions untestable except by sleeping, so the controller takes its time
// through this one-method interface: production wires in steady_clock_face
// (monotonic, immune to wall-clock steps), tests wire in fake_clock and
// advance it by hand, replaying hours of control history in microseconds.
// The same injection point is what makes the event log deterministic enough
// to pin exact trigger/suppress sequences in tests/controller_test.cpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace memento {

/// Monotonic nanosecond clock interface. Implementations must be safe to
/// read from any thread (the monitor thread polls while tests advance).
class clock_face {
 public:
  virtual ~clock_face() = default;
  [[nodiscard]] virtual std::uint64_t now_ns() const noexcept = 0;
};

/// Production clock: std::chrono::steady_clock, as nanoseconds since an
/// arbitrary (process-local) epoch.
class steady_clock_face final : public clock_face {
 public:
  [[nodiscard]] std::uint64_t now_ns() const noexcept override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Deterministic test clock: starts at 0 and moves only when told to. The
/// counter is atomic so a running controller_service thread may poll now_ns()
/// while the test thread advances it - the only cross-thread traffic a fake
/// timeline needs.
class fake_clock final : public clock_face {
 public:
  [[nodiscard]] std::uint64_t now_ns() const noexcept override {
    return t_.load(std::memory_order_acquire);
  }

  void advance_ns(std::uint64_t ns) noexcept { t_.fetch_add(ns, std::memory_order_acq_rel); }
  void advance_ms(std::uint64_t ms) noexcept { advance_ns(ms * 1'000'000ull); }
  void set_ns(std::uint64_t ns) noexcept { t_.store(ns, std::memory_order_release); }

 private:
  std::atomic<std::uint64_t> t_{0};
};

}  // namespace memento
