// HTTP-flood trace transformation (Section 6.4).
//
// The paper builds its attack workload as follows: "(1) We select 50 subnets
// by randomly choosing 8-bits for each, and (2) a random trace line in the
// range (0, 10^6). Until that line the trace is unmodified. (3) From that
// line on, at each line, with probability 0.7 we add a flood line from a
// uniformly picked flooding sub-network, and with probability 0.3 we skip to
// the next line of the original trace."
//
// `flood_injector` reproduces that construction exactly over any base trace.
// Each emitted packet is labelled so detection experiments can compute missed
// attack packets and per-subnet detection delay without re-deriving ground
// truth.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "trace/packet.hpp"
#include "util/random.hpp"

namespace memento {

/// One packet of the composed trace plus attack ground truth.
struct labelled_packet {
  packet pkt;
  bool is_attack = false;
  std::uint8_t attack_subnet = 0;  ///< index into `flood_trace::subnets` when is_attack
};

/// The composed trace and its ground-truth metadata.
struct flood_trace {
  std::vector<labelled_packet> packets;
  std::vector<std::uint32_t> subnets;  ///< the 50 flooding /8 prefixes (as first-octet << 24)
  std::size_t flood_start = 0;         ///< index of the first line where flooding may appear
};

struct flood_config {
  std::size_t num_subnets = 50;       ///< attacking 8-bit subnets
  double flood_probability = 0.7;     ///< per-line probability of an attack insertion
  std::size_t start_range = 1'000'000;///< flood start drawn uniformly from [0, start_range)
  std::uint64_t seed = 7;
};

/// Composes the attack trace per Section 6.4.
[[nodiscard]] inline flood_trace inject_flood(std::span<const packet> base,
                                              const flood_config& config = {}) {
  xoshiro256 rng(config.seed);
  flood_trace out;

  // (1) 50 distinct random 8-bit subnets (/8 prefixes).
  std::unordered_set<std::uint32_t> chosen;
  while (chosen.size() < config.num_subnets && chosen.size() < 256) {
    chosen.insert(static_cast<std::uint32_t>(rng.bounded(256)) << 24);
  }
  out.subnets.assign(chosen.begin(), chosen.end());

  // (2) flood start line.
  const std::size_t limit = config.start_range > 0
                                ? std::min(config.start_range, base.size())
                                : base.size();
  out.flood_start = limit > 0 ? static_cast<std::size_t>(rng.bounded(limit)) : 0;

  out.packets.reserve(base.size() * 2);
  std::size_t next_line = 0;
  // Unmodified prefix of the trace.
  for (; next_line < out.flood_start && next_line < base.size(); ++next_line) {
    out.packets.push_back({base[next_line], false, 0});
  }
  // (3) Interleave: p=0.7 insert a flood line, p=0.3 consume an original line.
  while (next_line < base.size()) {
    if (rng.uniform01() < config.flood_probability) {
      const auto subnet_idx = static_cast<std::uint8_t>(rng.bounded(out.subnets.size()));
      const std::uint32_t host = static_cast<std::uint32_t>(rng.bounded(1u << 24));
      const packet attack{out.subnets[subnet_idx] | host,
                          static_cast<std::uint32_t>(rng())};
      out.packets.push_back({attack, true, subnet_idx});
    } else {
      out.packets.push_back({base[next_line], false, 0});
      ++next_line;
    }
  }
  return out;
}

}  // namespace memento
