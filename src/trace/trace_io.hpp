// Trace persistence: a minimal text format so users can run the algorithms
// on their own captures (e.g. exported from tcpdump/tshark) and so
// experiments can be archived and replayed bit-exactly.
//
// Format: one packet per line, "src,dst", each address either dotted-quad
// ("181.7.20.6") or a raw unsigned 32-bit decimal. '#'-prefixed lines and
// blank lines are ignored. Writing always emits dotted-quad.
#pragma once

#include <cctype>
#include <cstdint>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/packet.hpp"

namespace memento {

/// Parses one address: dotted-quad or raw decimal. nullopt on malformed input.
[[nodiscard]] inline std::optional<std::uint32_t> parse_ipv4(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t octets[4] = {0, 0, 0, 0};
  int octet_count = 0;
  std::uint64_t current = 0;
  bool any_digit = false;
  for (const char c : text) {
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<std::uint64_t>(c - '0');
      if (current > 0xffffffffULL) return std::nullopt;
      any_digit = true;
    } else if (c == '.') {
      if (!any_digit || octet_count >= 3) return std::nullopt;
      octets[octet_count++] = current;
      current = 0;
      any_digit = false;
    } else {
      return std::nullopt;
    }
  }
  if (!any_digit) return std::nullopt;

  if (octet_count == 0) {  // raw decimal
    return static_cast<std::uint32_t>(current);
  }
  if (octet_count != 3) return std::nullopt;
  octets[3] = current;
  for (const auto o : octets) {
    if (o > 255) return std::nullopt;
  }
  return static_cast<std::uint32_t>((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) |
                                    octets[3]);
}

/// Parses one "src,dst" line (surrounding whitespace tolerated).
[[nodiscard]] inline std::optional<packet> parse_trace_line(std::string_view line) {
  const auto trim = [](std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
      s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
      s.remove_suffix(1);
    }
    return s;
  };
  const auto comma = line.find(',');
  if (comma == std::string_view::npos) return std::nullopt;
  const auto src = parse_ipv4(trim(line.substr(0, comma)));
  const auto dst = parse_ipv4(trim(line.substr(comma + 1)));
  if (!src || !dst) return std::nullopt;
  return packet{*src, *dst};
}

struct trace_read_result {
  std::vector<packet> packets;
  std::size_t malformed_lines = 0;  ///< skipped, never fatal
};

/// Reads a whole trace from a stream.
[[nodiscard]] inline trace_read_result read_trace(std::istream& in) {
  trace_read_result result;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view view = line;
    if (view.empty() || view.front() == '#') continue;
    if (const auto p = parse_trace_line(view)) {
      result.packets.push_back(*p);
    } else {
      ++result.malformed_lines;
    }
  }
  return result;
}

[[nodiscard]] inline trace_read_result read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  return read_trace(in);
}

/// Writes packets in the canonical dotted-quad format.
inline void write_trace(std::ostream& out, std::span<const packet> packets) {
  out << "# memento trace v1: src,dst per line\n";
  for (const auto& p : packets) {
    out << format_ipv4(p.src) << ',' << format_ipv4(p.dst) << '\n';
  }
}

inline bool write_trace_file(const std::string& path, std::span<const packet> packets) {
  std::ofstream out(path);
  if (!out) return false;
  write_trace(out, packets);
  return static_cast<bool>(out);
}

}  // namespace memento
