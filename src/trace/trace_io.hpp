// Trace persistence: a minimal text format plus a pcap reader, so users can
// run the algorithms on their own captures and so experiments can be
// archived and replayed bit-exactly.
//
// Text format: one packet per line, "src,dst", each address either
// dotted-quad ("181.7.20.6") or a raw unsigned 32-bit decimal. '#'-prefixed
// lines and blank lines are ignored. Writing always emits dotted-quad.
//
// Pcap format: classic libpcap capture files (the tcpdump/tshark default)
// are detected by magic number - both endiannesses and both the microsecond
// (0xa1b2c3d4) and nanosecond (0xa1b23c4d) variants - and reduced to the
// repository's packet model by extracting the IPv4 source/destination
// addresses from each captured frame (Ethernet, optionally one 802.1Q VLAN
// tag, or raw-IP linktype). Non-IPv4 records are skipped and counted like
// malformed text lines; a *truncated* file (cut global header, record
// header, or record body) is rejected with a clear error instead, because a
// cut capture silently ends the stream early and every windowed result
// downstream would be wrong. read_trace_file() sniffs the magic, so
// captures and text traces run through the frontend and the appliance
// through one entry point, unmodified.
#pragma once

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <istream>
#include <iterator>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/packet.hpp"

namespace memento {

/// Parses one address: dotted-quad or raw decimal. nullopt on malformed input.
[[nodiscard]] inline std::optional<std::uint32_t> parse_ipv4(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t octets[4] = {0, 0, 0, 0};
  int octet_count = 0;
  std::uint64_t current = 0;
  bool any_digit = false;
  for (const char c : text) {
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<std::uint64_t>(c - '0');
      if (current > 0xffffffffULL) return std::nullopt;
      any_digit = true;
    } else if (c == '.') {
      if (!any_digit || octet_count >= 3) return std::nullopt;
      octets[octet_count++] = current;
      current = 0;
      any_digit = false;
    } else {
      return std::nullopt;
    }
  }
  if (!any_digit) return std::nullopt;

  if (octet_count == 0) {  // raw decimal
    return static_cast<std::uint32_t>(current);
  }
  if (octet_count != 3) return std::nullopt;
  octets[3] = current;
  for (const auto o : octets) {
    if (o > 255) return std::nullopt;
  }
  return static_cast<std::uint32_t>((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) |
                                    octets[3]);
}

/// Parses one "src,dst" line (surrounding whitespace tolerated).
[[nodiscard]] inline std::optional<packet> parse_trace_line(std::string_view line) {
  const auto trim = [](std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
      s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
      s.remove_suffix(1);
    }
    return s;
  };
  const auto comma = line.find(',');
  if (comma == std::string_view::npos) return std::nullopt;
  const auto src = parse_ipv4(trim(line.substr(0, comma)));
  const auto dst = parse_ipv4(trim(line.substr(comma + 1)));
  if (!src || !dst) return std::nullopt;
  return packet{*src, *dst};
}

struct trace_read_result {
  std::vector<packet> packets;
  std::size_t malformed_lines = 0;  ///< skipped lines / non-IPv4 records, never fatal
  std::string error;                ///< non-empty => the read was rejected (fatal)

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Reads a whole trace from a stream.
[[nodiscard]] inline trace_read_result read_trace(std::istream& in) {
  trace_read_result result;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view view = line;
    if (view.empty() || view.front() == '#') continue;
    if (const auto p = parse_trace_line(view)) {
      result.packets.push_back(*p);
    } else {
      ++result.malformed_lines;
    }
  }
  return result;
}

// --- pcap ------------------------------------------------------------------

inline constexpr std::uint32_t kPcapMagicMicros = 0xa1b2c3d4u;
inline constexpr std::uint32_t kPcapMagicNanos = 0xa1b23c4du;
inline constexpr std::uint32_t kPcapLinktypeEthernet = 1;
inline constexpr std::uint32_t kPcapLinktypeRawIp = 101;

[[nodiscard]] constexpr std::uint32_t pcap_bswap32(std::uint32_t v) noexcept {
  return (v >> 24) | ((v >> 8) & 0x0000ff00u) | ((v << 8) & 0x00ff0000u) | (v << 24);
}

/// True when `magic` (read as a host-order u32 from the file's first four
/// bytes) is any of the four pcap magics: micro/nanosecond timestamps in
/// either byte order.
[[nodiscard]] constexpr bool is_pcap_magic(std::uint32_t magic) noexcept {
  return magic == kPcapMagicMicros || magic == kPcapMagicNanos ||
         magic == pcap_bswap32(kPcapMagicMicros) || magic == pcap_bswap32(kPcapMagicNanos);
}

namespace detail {

/// Little-endian u32 at `at` (bounds already checked by the caller),
/// byte-swapped when the capture's endianness differs from ours.
[[nodiscard]] inline std::uint32_t pcap_u32(const unsigned char* p, bool swap) noexcept {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16) |
                          (static_cast<std::uint32_t>(p[3]) << 24);
  return swap ? pcap_bswap32(v) : v;
}

/// Network-order (big-endian) u16/u32 inside a captured frame - frame
/// contents are wire-order regardless of the capture file's endianness.
[[nodiscard]] inline std::uint16_t net_u16(const unsigned char* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
[[nodiscard]] inline std::uint32_t net_u32(const unsigned char* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

}  // namespace detail

/// Reads a classic pcap capture: magic/endianness detection, per-record
/// headers, IPv4 source/destination extraction. Non-IPv4 or too-short
/// *captured* records are skipped (counted in malformed_lines); a truncated
/// FILE - global header, record header, or record body cut short - sets
/// `error` and returns the packets parsed so far, because a silently
/// shortened stream would skew every windowed result computed from it.
[[nodiscard]] inline trace_read_result read_pcap(std::istream& in) {
  trace_read_result result;
  std::vector<unsigned char> bytes(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>{});
  const unsigned char* data = bytes.data();
  const std::size_t size = bytes.size();

  if (size < 24) {
    result.error = "pcap: truncated global header (" + std::to_string(size) + " of 24 bytes)";
    return result;
  }
  const std::uint32_t raw_magic = detail::pcap_u32(data, false);
  if (!is_pcap_magic(raw_magic)) {
    result.error = "pcap: bad magic";
    return result;
  }
  const bool swap = raw_magic != kPcapMagicMicros && raw_magic != kPcapMagicNanos;
  const std::uint32_t linktype = detail::pcap_u32(data + 20, swap);
  if (linktype != kPcapLinktypeEthernet && linktype != kPcapLinktypeRawIp) {
    result.error = "pcap: unsupported linktype " + std::to_string(linktype) +
                   " (need Ethernet=1 or raw IP=101)";
    return result;
  }

  // Sanity cap on captured lengths: longer than any jumbo frame means the
  // length field is corrupt, and trusting it would mis-frame every record
  // after it.
  constexpr std::uint32_t kMaxCapturedLen = 256 * 1024;

  std::size_t at = 24;
  while (at < size) {
    if (size - at < 16) {
      result.error = "pcap: truncated record header at offset " + std::to_string(at);
      return result;
    }
    const std::uint32_t incl_len = detail::pcap_u32(data + at + 8, swap);
    if (incl_len > kMaxCapturedLen) {
      result.error = "pcap: corrupt captured length " + std::to_string(incl_len) +
                     " at offset " + std::to_string(at);
      return result;
    }
    if (size - at - 16 < incl_len) {
      result.error = "pcap: truncated record body at offset " + std::to_string(at) +
                     " (need " + std::to_string(incl_len) + " bytes, have " +
                     std::to_string(size - at - 16) + ")";
      return result;
    }
    const unsigned char* frame = data + at + 16;
    at += 16 + incl_len;

    // Locate the IPv4 header inside the captured frame.
    std::size_t ip_off = 0;
    if (linktype == kPcapLinktypeEthernet) {
      if (incl_len < 14) {
        ++result.malformed_lines;  // runt frame
        continue;
      }
      std::uint16_t ethertype = detail::net_u16(frame + 12);
      ip_off = 14;
      if (ethertype == 0x8100 && incl_len >= 18) {  // one 802.1Q VLAN tag
        ethertype = detail::net_u16(frame + 16);
        ip_off = 18;
      }
      if (ethertype != 0x0800) {
        ++result.malformed_lines;  // not IPv4 (ARP, IPv6, ...)
        continue;
      }
    }
    if (incl_len < ip_off + 20 || (frame[ip_off] >> 4) != 4) {
      ++result.malformed_lines;  // IPv4 header not fully captured, or not v4
      continue;
    }
    result.packets.push_back(packet{detail::net_u32(frame + ip_off + 12),
                                    detail::net_u32(frame + ip_off + 16)});
  }
  return result;
}

/// Writes packets as a minimal microsecond little-endian Ethernet pcap
/// (34-byte frames: zeroed MACs + a 20-byte IPv4 header carrying src/dst).
/// Round-trips through read_pcap; also handy for feeding the appliance from
/// synthetic traces via the capture path.
inline void write_pcap(std::ostream& out, std::span<const packet> packets) {
  const auto u16le = [&](std::uint16_t v) {
    const char b[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
    out.write(b, 2);
  };
  const auto u32le = [&](std::uint32_t v) {
    const char b[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
                       static_cast<char>((v >> 16) & 0xff), static_cast<char>(v >> 24)};
    out.write(b, 4);
  };
  const auto u32net = [&](std::uint32_t v) { u32le(pcap_bswap32(v)); };
  const auto u16net = [&](std::uint16_t v) {
    out.put(static_cast<char>(v >> 8));
    out.put(static_cast<char>(v & 0xff));
  };

  u32le(kPcapMagicMicros);
  u16le(2);      // version major
  u16le(4);      // version minor
  u32le(0);      // thiszone
  u32le(0);      // sigfigs
  u32le(65535);  // snaplen
  u32le(kPcapLinktypeEthernet);

  std::uint32_t ts = 0;
  for (const auto& p : packets) {
    u32le(ts);  // one packet per second keeps timestamps monotone
    u32le(0);
    u32le(34);  // incl_len: 14 Ethernet + 20 IPv4
    u32le(34);  // orig_len
    for (int i = 0; i < 12; ++i) out.put('\0');  // dst/src MAC
    u16net(0x0800);                              // ethertype: IPv4
    out.put('\x45');                             // version 4, IHL 5
    out.put('\0');                               // TOS
    u16net(20);                                  // total length
    u32le(0);                                    // id + flags/fragment
    out.put('\x40');                             // TTL 64
    out.put('\0');                               // protocol
    u16net(0);                                   // checksum (unchecked on read)
    u32net(p.src);
    u32net(p.dst);
    ++ts;
  }
}

inline bool write_pcap_file(const std::string& path, std::span<const packet> packets) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_pcap(out, packets);
  return static_cast<bool>(out);
}

/// Reads a trace file of either supported format: the first four bytes are
/// sniffed for a pcap magic, everything else parses as the text format.
[[nodiscard]] inline trace_read_result read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    trace_read_result result;
    result.error = "cannot open " + path;
    return result;
  }
  char head[4] = {0, 0, 0, 0};
  in.read(head, 4);
  const auto got = in.gcount();
  in.clear();
  in.seekg(0);
  if (got == 4) {
    const std::uint32_t magic = static_cast<std::uint32_t>(static_cast<unsigned char>(head[0])) |
                                (static_cast<std::uint32_t>(static_cast<unsigned char>(head[1]))
                                 << 8) |
                                (static_cast<std::uint32_t>(static_cast<unsigned char>(head[2]))
                                 << 16) |
                                (static_cast<std::uint32_t>(static_cast<unsigned char>(head[3]))
                                 << 24);
    if (is_pcap_magic(magic)) return read_pcap(in);
  }
  return read_trace(in);
}

/// Writes packets in the canonical dotted-quad format.
inline void write_trace(std::ostream& out, std::span<const packet> packets) {
  out << "# memento trace v1: src,dst per line\n";
  for (const auto& p : packets) {
    out << format_ipv4(p.src) << ',' << format_ipv4(p.dst) << '\n';
  }
}

inline bool write_trace_file(const std::string& path, std::span<const packet> packets) {
  std::ofstream out(path);
  if (!out) return false;
  write_trace(out, packets);
  return static_cast<bool>(out);
}

}  // namespace memento
