// Packet model shared by every algorithm in the repository.
//
// The paper's algorithms only consume flow identifiers: a source IPv4 address
// for one-dimensional hierarchies (H = 5 byte-granularity levels) and a
// (source, destination) pair for two-dimensional hierarchies (H = 25).
// We therefore model a packet as exactly those two 32-bit ids - compact
// (Per.16) and trivially copyable so traces can be pre-materialized into
// contiguous vectors and replayed with predictable memory access (Per.19).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace memento {

/// A single packet as seen by the measurement algorithms.
struct packet {
  std::uint32_t src = 0;  ///< source IPv4 address, host byte order
  std::uint32_t dst = 0;  ///< destination IPv4 address, host byte order

  friend bool operator==(const packet&, const packet&) = default;
};

/// Flow identifier for plain (non-hierarchical) heavy hitters: the 64-bit
/// (src, dst) pair. One-dimensional users typically key on `src` alone.
[[nodiscard]] constexpr std::uint64_t flow_id(const packet& p) noexcept {
  return (static_cast<std::uint64_t>(p.src) << 32) | p.dst;
}

/// Renders an address as dotted-quad for logs and example output.
[[nodiscard]] inline std::string format_ipv4(std::uint32_t addr) {
  return std::to_string((addr >> 24) & 0xff) + '.' + std::to_string((addr >> 16) & 0xff) +
         '.' + std::to_string((addr >> 8) & 0xff) + '.' + std::to_string(addr & 0xff);
}

}  // namespace memento

template <>
struct std::hash<memento::packet> {
  std::size_t operator()(const memento::packet& p) const noexcept {
    // splitmix64-style finalizer over the packed pair.
    std::uint64_t z = memento::flow_id(p) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
