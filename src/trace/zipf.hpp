// Zipf(alpha) rank sampler.
//
// All three packet traces in the paper's evaluation (Edge, Datacenter,
// Backbone) are proprietary captures whose defining property, as far as the
// algorithms can observe, is the skew of the flow-size distribution. The
// surrogate traces draw flow *ranks* from Zipf(alpha) and map ranks to
// pseudo-random IPv4 addresses (see trace_generator.hpp), so different alpha
// values reproduce the different counter-churn regimes of the real traces.
//
// Sampling uses a precomputed inverse-CDF table with binary search:
// O(log n) per draw, fully deterministic given the seed, and fast enough to
// pre-materialize the 16M-packet traces used by the Fig. 5 speed benches in
// a few seconds.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace memento {

class zipf_sampler {
 public:
  /// @param num_ranks population size n (ranks 0..n-1); must be >= 1.
  /// @param alpha     skew; alpha = 0 is uniform, larger is more skewed.
  zipf_sampler(std::size_t num_ranks, double alpha)
      : cdf_(num_ranks > 0 ? num_ranks : 1), alpha_(alpha) {
    double total = 0.0;
    for (std::size_t r = 0; r < cdf_.size(); ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), alpha_);
      cdf_[r] = total;
    }
    const double inv = 1.0 / total;
    for (auto& c : cdf_) c *= inv;
    cdf_.back() = 1.0;  // guard against accumulated rounding
  }

  /// Draws a rank in [0, num_ranks): rank 0 is the most frequent.
  [[nodiscard]] std::size_t sample(xoshiro256& rng) const noexcept {
    const double u = rng.uniform01();
    // Branchless-ish binary search over the CDF table.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Exact probability mass of a rank (for test assertions).
  [[nodiscard]] double pmf(std::size_t rank) const noexcept {
    if (rank >= cdf_.size()) return 0.0;
    const double lower = rank == 0 ? 0.0 : cdf_[rank - 1];
    return cdf_[rank] - lower;
  }

  [[nodiscard]] std::size_t num_ranks() const noexcept { return cdf_.size(); }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  std::vector<double> cdf_;
  double alpha_;
};

}  // namespace memento
