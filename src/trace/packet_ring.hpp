// Zero-copy batched packet-ring reader: the appliance's stand-in for a NIC
// RX queue.
//
// A materialized trace (generated, text, or pcap - all land in a contiguous
// std::vector<packet>) is treated as a ring: next_burst() hands out spans
// *into the buffer* - no packet is ever copied on the hot path, mirroring
// how a real fast path parses frames in place in DMA buffers - and wraps to
// the start when the trace is exhausted, so a fixed-size trace can feed a
// soak of any duration. Bursts never straddle the wrap (the tail burst is
// simply shorter), keeping every span contiguous for the batch kernel.
//
// rss_steer() is the receive-side-scaling emulation: it partitions a trace
// by flow key into per-core vectors ONCE, up front - the moral equivalent of
// the NIC steering flows to RX queues by hashing the 5-tuple in hardware -
// so the per-core run-to-completion loops (src/pipeline/) pay no per-packet
// routing on the measured path, exactly like an appliance behind RSS. The
// hash is the shard_partitioner, so core c's ring contains precisely the
// packets whose keys sharded_memento would route to shard c: pre-steered
// replay is differentially bit-identical to frontend ingest of the same
// trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "trace/packet.hpp"

namespace memento {

class packet_ring {
 public:
  explicit packet_ring(std::vector<packet> packets) : packets_(std::move(packets)) {}

  /// The next burst of up to `max_n` packets as a zero-copy span into the
  /// ring. Wraps at the end (the wrapping burst is truncated, never split).
  /// Empty rings yield empty spans.
  [[nodiscard]] std::span<const packet> next_burst(std::size_t max_n) noexcept {
    const std::size_t size = packets_.size();
    if (size == 0 || max_n == 0) return {};
    const std::size_t run = size - at_;
    const std::size_t take = max_n < run ? max_n : run;
    const std::span<const packet> burst(packets_.data() + at_, take);
    at_ += take;
    if (at_ == size) {
      at_ = 0;
      ++laps_;
    }
    offered_ += take;
    return burst;
  }

  void rewind() noexcept {
    at_ = 0;
    offered_ = 0;
    laps_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return packets_.size(); }
  [[nodiscard]] std::uint64_t offered() const noexcept { return offered_; }
  /// Completed passes over the trace - a soak report's "how synthetic was
  /// this" honesty number (laps >> 1 means the window saw the trace loop).
  [[nodiscard]] std::uint64_t laps() const noexcept { return laps_; }
  [[nodiscard]] std::span<const packet> packets() const noexcept { return packets_; }

 private:
  std::vector<packet> packets_;
  std::size_t at_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t laps_ = 0;
};

/// RSS emulation: split a trace into per-core packet vectors by flow key,
/// preserving arrival order within each core. `shard_of` maps a packet's
/// key to its owning core (pass the pipeline's partitioner composed with its
/// key extractor); `cores` sizes the result.
template <typename ShardOf>
[[nodiscard]] std::vector<std::vector<packet>> rss_steer(std::span<const packet> trace,
                                                         std::size_t cores,
                                                         const ShardOf& shard_of) {
  std::vector<std::vector<packet>> per_core(cores);
  // Two passes: count then fill, so each core's vector is allocated exactly
  // once even for multi-hundred-megabyte traces.
  std::vector<std::size_t> counts(cores, 0);
  for (const auto& p : trace) ++counts[shard_of(p)];
  for (std::size_t c = 0; c < cores; ++c) per_core[c].reserve(counts[c]);
  for (const auto& p : trace) per_core[shard_of(p)].push_back(p);
  return per_core;
}

}  // namespace memento
