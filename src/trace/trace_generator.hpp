// Synthetic surrogates for the paper's three packet traces.
//
// The evaluation (Section 6) replays an edge-router trace [2], a datacenter
// trace [13] and a CAIDA backbone trace [26]. None are redistributable, so we
// substitute Zipf-skewed synthetic traces whose parameters are chosen to
// reproduce the regimes the paper discusses (see DESIGN.md, "Substitutions"):
//
//   * backbone:   alpha ~ 1.0 over 2^22 flows - classic heavy-tailed mix;
//                 the paper calls it "heavy tailed" and notes it tolerates
//                 the smallest sampling probabilities.
//   * datacenter: alpha ~ 1.4 over 2^16 flows - the "skewed" trace where
//                 Fig. 5 shows the earliest accuracy degradation.
//   * edge:       alpha ~ 0.8 over 2^20 flows - flatter, many medium flows.
//
// Rank -> address mapping is a bijective pseudo-random permutation (splitmix64
// of the rank), so numerically-adjacent ranks do NOT share prefixes: subnet
// aggregates emerge only from genuine repetition, as in real traces. Each
// generator is deterministic given (kind, seed).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/packet.hpp"
#include "trace/zipf.hpp"
#include "util/random.hpp"

namespace memento {

enum class trace_kind { backbone, datacenter, edge };

[[nodiscard]] constexpr const char* trace_name(trace_kind kind) noexcept {
  switch (kind) {
    case trace_kind::backbone: return "backbone";
    case trace_kind::datacenter: return "datacenter";
    case trace_kind::edge: return "edge";
  }
  return "unknown";
}

/// Configuration of a synthetic trace; the three named presets below
/// reproduce the paper's workloads.
struct trace_config {
  std::size_t num_flows = 1u << 20;  ///< distinct (src,dst) pairs
  double alpha = 1.0;                ///< Zipf skew of flow sizes
  std::uint64_t seed = 42;           ///< determinism handle
  /// Flow-population churn: every `churn_stride` packets one of 256 rank
  /// cohorts is re-identified (its flows get fresh addresses), modelling the
  /// arrival/departure dynamics of real captures. 0 disables churn (a fully
  /// stationary trace). Staleness-sensitive experiments (Fig. 9) enable it;
  /// stationary experiments keep it off so results stay comparable.
  std::size_t churn_stride = 0;

  [[nodiscard]] static trace_config preset(trace_kind kind, std::uint64_t seed = 42) {
    switch (kind) {
      case trace_kind::backbone: return {std::size_t{1} << 22, 1.0, seed, 0};
      case trace_kind::datacenter: return {std::size_t{1} << 16, 1.4, seed, 0};
      case trace_kind::edge: return {std::size_t{1} << 20, 0.8, seed, 0};
    }
    return {};
  }
};

/// Streaming trace generator: draws one packet at a time so callers can
/// either materialize a vector (speed benches) or stream (simulations).
class trace_generator {
 public:
  explicit trace_generator(const trace_config& config)
      : config_(config), zipf_(config.num_flows, config.alpha), rng_(config.seed) {}

  trace_generator(trace_kind kind, std::uint64_t seed = 42)
      : trace_generator(trace_config::preset(kind, seed)) {}

  /// Next packet. The source address keys the 1D hierarchy experiments and
  /// the (src, dst) pair keys the 2D ones, mirroring the paper's yardsticks.
  [[nodiscard]] packet next() {
    if (config_.churn_stride > 0 && ++since_churn_ >= config_.churn_stride) {
      since_churn_ = 0;
      ++generations_[rng_.bounded(kCohorts)];
    }
    const std::size_t rank = zipf_.sample(rng_);
    // Bijective scrambles of (rank, cohort generation); src and dst use
    // independent streams so 2D glb structure is non-trivial. A cohort's
    // generation bump re-identifies all its flows at once (churn).
    const std::uint64_t gen =
        static_cast<std::uint64_t>(generations_[rank & (kCohorts - 1)]) << 44;
    std::uint64_t s = gen + static_cast<std::uint64_t>(rank) * 2 + 1;
    std::uint64_t d = gen + static_cast<std::uint64_t>(rank) * 2 + 2;
    const std::uint32_t src = static_cast<std::uint32_t>(splitmix64_next(s));
    const std::uint32_t dst = static_cast<std::uint32_t>(splitmix64_next(d));
    return {src, dst};
  }

  /// Materializes `count` packets into a contiguous vector (Per.19: replaying
  /// from a vector keeps the measured loop free of generator branches).
  [[nodiscard]] std::vector<packet> generate(std::size_t count) {
    std::vector<packet> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(next());
    return out;
  }

  [[nodiscard]] const trace_config& config() const noexcept { return config_; }

 private:
  static constexpr std::size_t kCohorts = 256;

  trace_config config_;
  zipf_sampler zipf_;
  xoshiro256 rng_;
  std::array<std::uint32_t, kCohorts> generations_{};
  std::size_t since_churn_ = 0;
};

/// Convenience one-shot builders used throughout benches and tests.
[[nodiscard]] inline std::vector<packet> make_trace(trace_kind kind, std::size_t count,
                                                    std::uint64_t seed = 42) {
  trace_generator gen(kind, seed);
  return gen.generate(count);
}

}  // namespace memento
