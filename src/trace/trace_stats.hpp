// Descriptive statistics over a trace: used by tests to assert that the
// surrogate traces land in the intended skew regime, and by examples to show
// users what the generators produce.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "trace/packet.hpp"

namespace memento {

struct trace_summary {
  std::size_t packets = 0;
  std::size_t distinct_flows = 0;
  std::size_t distinct_sources = 0;
  std::uint64_t top_flow_count = 0;       ///< packets of the single largest flow
  double top_hundred_share = 0.0;         ///< fraction of traffic in the 100 largest flows
};

[[nodiscard]] inline trace_summary summarize(std::span<const packet> trace) {
  trace_summary s;
  s.packets = trace.size();

  std::unordered_map<std::uint64_t, std::uint64_t> flows;
  std::unordered_map<std::uint32_t, std::uint64_t> sources;
  flows.reserve(trace.size() / 4 + 1);
  for (const auto& p : trace) {
    ++flows[flow_id(p)];
    ++sources[p.src];
  }
  s.distinct_flows = flows.size();
  s.distinct_sources = sources.size();

  std::vector<std::uint64_t> counts;
  counts.reserve(flows.size());
  for (const auto& [id, c] : flows) counts.push_back(c);
  std::sort(counts.begin(), counts.end(), std::greater<>());

  if (!counts.empty()) s.top_flow_count = counts.front();
  std::uint64_t top_hundred = 0;
  for (std::size_t i = 0; i < counts.size() && i < 100; ++i) top_hundred += counts[i];
  if (s.packets > 0) {
    s.top_hundred_share = static_cast<double>(top_hundred) / static_cast<double>(s.packets);
  }
  return s;
}

}  // namespace memento
