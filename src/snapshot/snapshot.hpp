// Snapshot envelope: the byte-level entry point of the snapshot layer.
//
// Every serializable object in this repository (space_saving,
// memento_sketch, h_memento, sharded_memento, window_summary) knows how to
// write itself as one versioned wire section (util/wire.hpp) and how to
// rebuild itself from one, rejecting malformed input with nullopt. This
// header adds the outermost framing a snapshot needs to live OUTSIDE a
// process - on disk, in an object store, or on a control channel: a magic
// number (so a reader can cheaply reject files that are not snapshots at
// all) and a no-trailing-garbage rule (so a concatenation bug cannot
// silently truncate state).
//
//   auto bytes  = snapshot::save(sketch);                    // std::vector<uint8_t>
//   auto copy   = snapshot::restore<memento_sketch<>>(bytes) // std::optional
//
// A restored object answers every query bit-identically to the original
// and, fed the same subsequent stream, continues bit-identically - the
// round-trip contract pinned by tests/snapshot_test.cpp. Typical uses:
// failover checkpoints, shard migration (snapshot on the old owner,
// restore on the new one), and the reshard path in snapshot/reshard.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/wire.hpp"

namespace memento::snapshot {

/// First four bytes of every snapshot ("MEMO", little-endian).
inline constexpr std::uint32_t kMagic = 0x4f4d454d;

/// Serializes `object` into a self-contained snapshot buffer. Returns an
/// EMPTY buffer when the state cannot be framed (a section body past the
/// 4 GiB length field - orders of magnitude beyond any real deployment);
/// an empty buffer never restores, so the failure cannot be mistaken for a
/// usable checkpoint.
template <typename T>
[[nodiscard]] std::vector<std::uint8_t> save(const T& object) {
  wire::writer w;
  w.u32(kMagic);
  object.save(w);
  if (!w.ok()) return {};
  return w.take();
}

/// Rebuilds a T from a snapshot buffer. nullopt - never a crash or a
/// partial object - on a wrong magic, a type/version mismatch, any
/// structural corruption, or trailing garbage.
template <typename T>
[[nodiscard]] std::optional<T> restore(std::span<const std::uint8_t> bytes) {
  wire::reader r(bytes);
  std::uint32_t magic = 0;
  if (!r.u32(magic) || magic != kMagic) return std::nullopt;
  auto out = T::restore(r);
  if (!out || !r.done()) return std::nullopt;
  return out;
}

// --- streamed envelope -------------------------------------------------------
// Same magic, same no-trailing-garbage rule, but the state flows through a
// wire::sink / wire::source in chunks: peak buffering is the sink's chunk
// size (64 KB by default) no matter how big the deployment - this is the
// entry point a controller thread uses to checkpoint a live 1M-counter
// sharded frontend without an O(state) temporary. The sections it frames
// are the v2 (compressed, CRC-protected) formats.

/// Streams `object` into `s` as a self-contained snapshot and finishes the
/// sink (flushing the tail chunk). Returns false if the sink failed - a
/// refused write callback, or an unbalanced section (a bug, not an input).
template <typename T>
[[nodiscard]] bool stream_save(const T& object, wire::sink& s, bool packed = true) {
  s.u32(kMagic);
  object.save(s, packed);
  return s.finish();
}

/// Rebuilds a T from a streamed snapshot. nullopt on a wrong magic, a
/// type/version mismatch, a CRC mismatch, any structural corruption, or
/// trailing bytes after the object.
template <typename T>
[[nodiscard]] std::optional<T> stream_restore(wire::source& s) {
  std::uint32_t magic = 0;
  if (!s.u32(magic) || magic != kMagic) return std::nullopt;
  auto out = T::restore(s);
  if (!out || !s.done()) return std::nullopt;
  return out;
}

/// Buffer-returning convenience over stream_save: the streamed (v2) image
/// in one vector. Byte-identical to what a chunked sink produces, so tests
/// and small tools can use it interchangeably with the callback form.
template <typename T>
[[nodiscard]] std::vector<std::uint8_t> save_streamed(const T& object, bool packed = true) {
  std::vector<std::uint8_t> out;
  wire::sink s(out);
  if (!stream_save(object, s, packed)) return {};
  return out;
}

}  // namespace memento::snapshot
