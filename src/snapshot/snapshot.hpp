// Snapshot envelope: the byte-level entry point of the snapshot layer.
//
// Every serializable object in this repository (space_saving,
// memento_sketch, h_memento, sharded_memento, window_summary) knows how to
// write itself as one versioned wire section (util/wire.hpp) and how to
// rebuild itself from one, rejecting malformed input with nullopt. This
// header adds the outermost framing a snapshot needs to live OUTSIDE a
// process - on disk, in an object store, or on a control channel: a magic
// number (so a reader can cheaply reject files that are not snapshots at
// all) and a no-trailing-garbage rule (so a concatenation bug cannot
// silently truncate state).
//
//   auto bytes  = snapshot::save(sketch);                    // std::vector<uint8_t>
//   auto copy   = snapshot::restore<memento_sketch<>>(bytes) // std::optional
//
// A restored object answers every query bit-identically to the original
// and, fed the same subsequent stream, continues bit-identically - the
// round-trip contract pinned by tests/snapshot_test.cpp. Typical uses:
// failover checkpoints, shard migration (snapshot on the old owner,
// restore on the new one), and the reshard path in snapshot/reshard.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/wire.hpp"

namespace memento::snapshot {

/// First four bytes of every snapshot ("MEMO", little-endian).
inline constexpr std::uint32_t kMagic = 0x4f4d454d;

/// Serializes `object` into a self-contained snapshot buffer. Returns an
/// EMPTY buffer when the state cannot be framed (a section body past the
/// 4 GiB length field - orders of magnitude beyond any real deployment);
/// an empty buffer never restores, so the failure cannot be mistaken for a
/// usable checkpoint.
template <typename T>
[[nodiscard]] std::vector<std::uint8_t> save(const T& object) {
  wire::writer w;
  w.u32(kMagic);
  object.save(w);
  if (!w.ok()) return {};
  return w.take();
}

/// Rebuilds a T from a snapshot buffer. nullopt - never a crash or a
/// partial object - on a wrong magic, a type/version mismatch, any
/// structural corruption, or trailing garbage.
template <typename T>
[[nodiscard]] std::optional<T> restore(std::span<const std::uint8_t> bytes) {
  wire::reader r(bytes);
  std::uint32_t magic = 0;
  if (!r.u32(magic) || magic != kMagic) return std::nullopt;
  auto out = T::restore(r);
  if (!out || !r.done()) return std::nullopt;
  return out;
}

}  // namespace memento::snapshot
