// Elastic reshard: re-route a sharded Memento deployment from N shards to M
// through its snapshot state, without replaying the stream.
//
// This is the ROADMAP's "octet -> shard rebalancing" enabler: scale a
// frontend out (N < M) when a box saturates, or in (N > M) when traffic
// drops, keeping the window's heavy-hitter state alive across the change.
// The partition function is pure (key hash mod shard count), so resharding
// is a deterministic re-bucketing of per-key state:
//
//   * overflow-table entries (the candidate set and its block counts) carry
//     over EXACTLY - a flow's B[x] is the same number in its new shard;
//   * block-queue occurrences carry over with their ring AGE rescaled from
//     the old ring (k_old + 1 slots) to the new (k_new + 1), so each
//     overflow still expires roughly when its originating block leaves the
//     window;
//   * in-frame Space-Saving entries re-bucket by their new owner; when a
//     new shard inherits more entries than its k_new counters (possible
//     when M < N), the smallest-count entries are dropped - each loses at
//     most one in-frame residue (< T sampled packets, i.e. < T/tau original
//     packets, within the +-2T slack the query already carries);
//   * the new shards start at the old deployment's average window phase and
//     a fresh sampler sequence (continuation is deterministic but not
//     bit-identical to any pre-reshard timeline - there is no such timeline
//     to match).
//
// Accuracy contract (pinned by tests/snapshot_test.cpp): estimates move by
// at most one threshold unit per key plus the usual per-shard coverage
// drift, so the Zipf recall/precision bars of tests/shard_test.cpp hold
// across an N -> M reshard. Queue retirement pacing restarts, so a burst of
// carried overflows can momentarily exceed the one-retirement-per-packet
// dent; the defensive drain in rotate_blocks() (counted, never unsafe)
// absorbs the difference.
//
// Requirements checked at runtime (nullopt otherwise): same tau and same
// per-shard overflow threshold between the old and new geometry - i.e. the
// same GLOBAL window/counter/tau budget, with only the shard count
// changing. Heterogeneous or incompatible inputs are rejected, never
// mis-merged.
//
// The weighted overload takes a bucket -> shard table (partitioner TABLE
// mode) for the replacement frontend: same transport, different routing
// function. That is the rebalancer's migration primitive - shard/
// rebalance.hpp plans the table from the live load picture, this file moves
// the state onto it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/memento.hpp"
#include "shard/partitioner.hpp"
#include "shard/sharded_h_memento.hpp"
#include "shard/sharded_memento.hpp"
#include "sketch/space_saving.hpp"
#include "snapshot/snapshot.hpp"

namespace memento {

/// Privileged assembler of sketch state for the snapshot layer: the one
/// friend of space_saving / memento_sketch / sharded_memento that may build
/// instances from parts instead of from a stream.
class snapshot_builder {
 public:
  /// Re-partitions a live N-shard frontend into config.shards shards.
  /// nullopt when the geometries are incompatible (different tau or
  /// per-shard overflow threshold, heterogeneous source shards).
  template <typename Key>
  [[nodiscard]] static std::optional<sharded_memento<Key>> reshard(
      const sharded_memento<Key>& old, const shard_config& config) {
    return reshard_impl(old, config, /*table=*/nullptr);
  }

  /// Weighted overload: the replacement frontend routes through `table`
  /// (partitioner TABLE mode) instead of plain hashing - this is the
  /// rebalancer's migration primitive (shard/rebalance.hpp plans the table,
  /// this call moves the window state onto it). Same geometry contract as
  /// the plain overload, plus the table must fit config.shards.
  template <typename Key>
  [[nodiscard]] static std::optional<sharded_memento<Key>> reshard(
      const sharded_memento<Key>& old, const shard_config& config, const shard_table& table) {
    return reshard_impl(old, config, &table);
  }

  /// Snapshot-bytes overload: restore the old frontend, then reshard it.
  template <typename Key>
  [[nodiscard]] static std::optional<sharded_memento<Key>> reshard(
      std::span<const std::uint8_t> snapshot_bytes, const shard_config& config) {
    auto old = snapshot::restore<sharded_memento<Key>>(snapshot_bytes);
    if (!old) return std::nullopt;
    return reshard_impl(*old, config, /*table=*/nullptr);
  }

  /// Streamed-snapshot overload: the old frontend arrives through a
  /// wire::source (a controller pulling a checkpoint off the network or
  /// disk in chunks) instead of a materialized buffer - the only O(state)
  /// memory is the restored frontend itself, never a byte image of it.
  template <typename Key>
  [[nodiscard]] static std::optional<sharded_memento<Key>> reshard(wire::source& snapshot_stream,
                                                                  const shard_config& config) {
    auto old = snapshot::stream_restore<sharded_memento<Key>>(snapshot_stream);
    if (!old) return std::nullopt;
    return reshard_impl(*old, config, /*table=*/nullptr);
  }

  /// Hierarchical overload: migrate a sharded_h_memento onto a planned
  /// bucket table - the HHH rebalancer's primitive. The shard COUNT must be
  /// unchanged (config.shards == old.num_shards()): HHH routing sends
  /// non-routable (wildcard-dimension) prefixes back to their original
  /// shard index, which is only meaningful while the shard set is stable;
  /// elastic N -> M scaling of the hierarchical frontend is future work.
  /// Same transport bounds as the flat path; the per-shard sampler/PRNG
  /// timelines restart (deterministic continuation, as always for reshard).
  template <typename H>
  [[nodiscard]] static std::optional<sharded_h_memento<H>> reshard(
      const sharded_h_memento<H>& old, const hhh_shard_config& config,
      const shard_table& table) {
    if (config.shards == 0 || config.shards != old.num_shards()) return std::nullopt;
    if (config.base.window_size == 0 || config.base.counters == 0) return std::nullopt;
    if (!table.valid_for(config.shards)) return std::nullopt;
    if (!compatible_hhh(old, config)) return std::nullopt;
    auto fresh = sharded_h_memento<H>(config.base, config.shards, table);
    if (!transport_hhh(old, fresh)) return std::nullopt;
    return fresh;
  }

 private:
  /// The single guard + construct + transport path every public overload
  /// lands on; `table` selects TABLE-mode routing when non-null.
  template <typename Key>
  [[nodiscard]] static std::optional<sharded_memento<Key>> reshard_impl(
      const sharded_memento<Key>& old, const shard_config& config, const shard_table* table) {
    if (config.shards == 0 || config.window_size == 0 || config.counters == 0) {
      return std::nullopt;
    }
    if (table != nullptr && !table->valid_for(config.shards)) return std::nullopt;
    if (!compatible(old, config)) return std::nullopt;
    auto fresh = table != nullptr ? sharded_memento<Key>(config, *table)
                                  : sharded_memento<Key>(config);
    if (!transport(old, fresh)) return std::nullopt;
    return fresh;
  }
  /// Source shards must be one geometry (restore() accepts any sequence of
  /// individually valid shards; reshard does not), and the target must keep
  /// tau and the per-shard overflow threshold - i.e. the same GLOBAL
  /// window/counter/tau budget with only the routing changing.
  template <typename Key>
  [[nodiscard]] static bool compatible(const sharded_memento<Key>& old,
                                       const shard_config& config) {
    const auto& ref = old.shard(0);
    for (std::size_t o = 1; o < old.num_shards(); ++o) {
      const auto& s = old.shard(o);
      if (s.counters() != ref.counters() || s.window_size() != ref.window_size() ||
          s.tau() != ref.tau()) {
        return false;
      }
    }
    const memento_config probe =
        sharded_memento<Key>::shard_config_for(config, /*shard=*/0);
    const memento_sketch<Key> target(probe);
    return target.tau() == ref.tau() &&
           target.overflow_threshold() == ref.overflow_threshold();
  }

  /// Source homogeneity + target geometry guard for the hierarchical
  /// reshard: the same contract as compatible(), phrased against the
  /// shards' INNER sketches (the wrapper adds no window geometry of its
  /// own - sampler/PRNG state restarts on migration by design).
  template <typename H>
  [[nodiscard]] static bool compatible_hhh(const sharded_h_memento<H>& old,
                                           const hhh_shard_config& config) {
    const auto& ref = old.shard(0).inner();
    for (std::size_t o = 1; o < old.num_shards(); ++o) {
      const auto& s = old.shard(o).inner();
      if (s.counters() != ref.counters() || s.window_size() != ref.window_size() ||
          s.tau() != ref.tau()) {
        return false;
      }
    }
    const h_memento_config probe_cfg =
        sharded_h_memento<H>::shard_config_for(config.base, config.shards, /*shard=*/0);
    const memento_sketch<typename H::key_type> probe(
        memento_config{probe_cfg.window_size, probe_cfg.counters, probe_cfg.tau,
                       probe_cfg.seed});
    return probe.tau() == ref.tau() &&
           probe.overflow_threshold() == ref.overflow_threshold();
  }

  /// The state move, flat frontend: every key's new owner is fresh's
  /// partition function - which is what lets the same code serve plain
  /// N -> M reshard (hash routing) and weighted rebalance (table routing).
  template <typename Key>
  [[nodiscard]] static bool transport(const sharded_memento<Key>& old,
                                      sharded_memento<Key>& fresh) {
    const shard_partitioner<Key>& owner = fresh.partitioner();
    return transport_state<Key>(
        old.num_shards(), fresh.num_shards(),
        [&](std::size_t o) -> const memento_sketch<Key>& { return old.shard(o); },
        [&](std::size_t s) -> memento_sketch<Key>& { return fresh.shards_[s]; },
        [&](const Key& key, std::size_t) { return owner(key); });
  }

  /// The state move, hierarchical frontend: routable prefixes follow
  /// fresh's prefix routing; wildcard-pattern keys keep their old shard
  /// index (M == N, enforced by the public overload), so the disjointness
  /// invariant - no key contributed twice to one new shard - is preserved.
  template <typename H>
  [[nodiscard]] static bool transport_hhh(const sharded_h_memento<H>& old,
                                          sharded_h_memento<H>& fresh) {
    using Key = typename H::key_type;
    return transport_state<Key>(
        old.num_shards(), fresh.num_shards(),
        [&](std::size_t o) -> const memento_sketch<Key>& { return old.shard(o).inner(); },
        [&](std::size_t s) -> memento_sketch<Key>& { return fresh.shards_[s].inner_; },
        [&](const Key& key, std::size_t o) {
          return sharded_h_memento<H>::routable(key) ? fresh.shard_of_key(key) : o;
        });
  }

  /// The shared re-bucketing engine behind both transports: walks the old
  /// sketches' counters / overflow tables / block rings, assigns each piece
  /// of state through `owner_of(key, old_shard)`, and loads the new
  /// sketches in canonical form. False when the source is not a valid
  /// disjoint partition.
  template <typename Key, typename OldSketchAt, typename NewSketchAt, typename OwnerFn>
  [[nodiscard]] static bool transport_state(std::size_t n_old, std::size_t m,
                                            OldSketchAt&& old_at, NewSketchAt&& new_at,
                                            OwnerFn&& owner_of) {
    const std::size_t k_old = old_at(0).counters();
    const std::size_t k_new = new_at(0).counters();

    struct carried {
      Key key{};
      std::uint64_t count = 0;
      std::uint64_t overestimate = 0;
    };
    std::vector<std::vector<carried>> counters(m);
    std::vector<std::vector<std::pair<Key, std::uint32_t>>> overflow(m);
    std::vector<std::vector<std::pair<std::uint32_t, Key>>> queued(m);  // (new age, key)

    std::uint64_t sum_clock = 0, sum_frame = 0, sum_stream = 0;
    for (std::size_t o = 0; o < n_old; ++o) {
      const auto& src = old_at(o);
      sum_clock += src.window_phase();
      sum_frame += src.window_size();
      sum_stream += src.stream_length();
      src.y_.for_each([&](const Key& key, std::uint64_t count, std::uint64_t over) {
        counters[owner_of(key, o)].push_back({key, count, over});
      });
      src.overflows_.for_each([&](const Key& key, std::uint32_t b) {
        overflow[owner_of(key, o)].push_back({key, b});
      });
      // Walk the ring newest-first so ages are deterministic: age 0 is the
      // current block, age k_old the one about to expire.
      const std::size_t ring = src.blocks_.size();
      for (std::size_t age = 0; age < ring; ++age) {
        const std::size_t slot = (src.head_ + ring - age) % ring;
        const auto& q = src.blocks_[slot];
        const auto new_age = scale_age(age, k_old, k_new);
        for (std::size_t i = q.next; i < q.items.size(); ++i) {
          queued[owner_of(q.items[i], o)].push_back({new_age, q.items[i]});
        }
      }
    }

    // All new shards restart at the old deployment's average window phase.
    const std::uint64_t frame = new_at(0).window_size();
    std::uint64_t clock = sum_frame == 0 ? 0
                                         : static_cast<std::uint64_t>(
                                               static_cast<double>(sum_clock) /
                                               static_cast<double>(sum_frame) *
                                               static_cast<double>(frame));
    if (clock >= frame) clock = frame - 1;

    for (std::size_t s = 0; s < m; ++s) {
      auto& dst = new_at(s);
      if (!load_space_saving(dst.y_, counters[s], k_new)) return false;
      for (const auto& [key, b] : overflow[s]) {
        // Disjoint old shards can never contribute the same key twice; a
        // duplicate means the snapshot is not a valid partition (e.g. a
        // crafted buffer repeating one shard section). Reject, never
        // double-merge.
        if (dst.overflows_.contains(key)) return false;
        dst.overflows_.find_or_emplace(key, 0) += b;
      }
      const std::size_t ring = dst.blocks_.size();  // k_new + 1
      for (const auto& [age, key] : queued[s]) {
        dst.blocks_[(ring - age) % ring].items.push_back(key);
      }
      dst.head_ = 0;  // age a lives at slot (ring - a) % ring
      dst.clock_ = clock;
      dst.until_block_end_ = dst.block_len_ - clock % dst.block_len_;
      // Spread the remainder so the global stream length survives the move
      // exactly: sum over shards of stream_length() is an accounting
      // identity the controller's kill/restore soak pins packet-for-packet.
      dst.stream_length_ = sum_stream / m + (s < sum_stream % m ? 1 : 0);
    }
    return true;
  }

  /// Maps an old-ring age onto the new ring, rounding to nearest so carried
  /// overflows expire as close as possible to their original schedule.
  [[nodiscard]] static std::uint32_t scale_age(std::size_t age, std::size_t k_old,
                                               std::size_t k_new) noexcept {
    const std::size_t scaled = (age * k_new + k_old / 2) / k_old;
    return static_cast<std::uint32_t>(std::min(scaled, k_new));
  }

  /// Rebuilds a (flushed) Space-Saving instance from carried entries in
  /// canonical form: counters ascending by count, one bucket per distinct
  /// count, chains in insertion order. Inherits at most `capacity` entries,
  /// keeping the heaviest. Returns false - the snapshot is not a valid
  /// disjoint partition - when a key appears twice.
  template <typename Key, typename Carried>
  [[nodiscard]] static bool load_space_saving(space_saving<Key>& ss,
                                              std::vector<Carried>& entries,
                                              std::size_t capacity) {
    using ss_t = space_saving<Key>;
    ss.flush();
    std::sort(entries.begin(), entries.end(), [](const Carried& a, const Carried& b) {
      return a.count != b.count ? a.count < b.count : a.key < b.key;
    });
    const std::size_t skip = entries.size() > capacity ? entries.size() - capacity : 0;
    std::uint32_t last_bucket = ss_t::npos;
    std::uint64_t adds = 0;
    for (std::size_t n = skip; n < entries.size(); ++n) {
      const Carried& e = entries[n];
      const std::size_t home = ss.index_.bucket(e.key);
      if (ss.index_.find_prehashed(home, e.key) != nullptr) return false;  // duplicate key
      const auto idx = static_cast<std::uint32_t>(ss.used_++);
      ss.nodes_[idx].key = e.key;
      ss.counts_[idx] = e.count;
      ss.nodes_[idx].overest = e.overestimate;
      ss.nodes_[idx].islot =
          static_cast<std::uint32_t>(ss.index_.emplace_prehashed(home, e.key, idx));
      if (last_bucket == ss_t::npos || ss.buckets_[last_bucket].count != e.count) {
        const std::uint32_t bkt = ss.new_bucket(e.count);
        ss.buckets_[bkt].prev = last_bucket;
        if (last_bucket != ss_t::npos) {
          ss.buckets_[last_bucket].next = bkt;
        } else {
          ss.min_bucket_ = bkt;
        }
        last_bucket = bkt;
      }
      ss.push_counter(idx, last_bucket);
      adds += e.count;
    }
    ss.adds_ = adds;
    return true;
  }
};

}  // namespace memento
