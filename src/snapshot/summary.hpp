// Mergeable sliding-window summaries: the query-only, transportable form of
// a Memento instance's window state.
//
// A full snapshot (snapshot.hpp) is what you restore and CONTINUE; a
// summary is what you SHIP when the consumer only needs answers - the
// candidate set with its one-sided estimates, plus the few scalars needed
// to keep the error accounting honest. Mergeable sliding-window summaries
// are exactly the object studied by Braverman et al. (PAPERS.md): this is
// the practical counterpart, built from Memento's overflow table.
//
// Merge semantics and error growth (documented, one-sided):
//   * per-key estimates stay ONE-SIDED (never undercount) under merge for
//     DISJOINT keyspaces - hash-partitioned shards, client-hash-routed
//     vantages - which is every producer in this repository. A key present
//     in exactly one source answers with that source's estimate unchanged,
//     so a summary merged from a sharded_memento's shards reproduces the
//     frontend's heavy_hitters/top/candidate answers exactly (pinned by
//     tests/snapshot_test.cpp).
//   * a key present in SEVERAL sources (overlapping keyspaces) answers with
//     the SUM of its entries' estimates: still one-sided, but the
//     overcounts add - merging M overlapping summaries grows the per-key
//     slack from 4T/tau to at most M * 4T/tau.
//   * a key absent everywhere answers with the summed miss bound
//     (sum of each source's (3T-1)/tau): one-sided for any keyspace split,
//     and the price of merging - the miss bound grows linearly in the
//     number of merged sources, unlike the point queries of a live sharded
//     frontend which route to one shard. Heavy-hitter SETS are immune (a
//     reportable flow is a candidate somewhere); only absent-key point
//     queries pay it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/h_memento.hpp"
#include "core/memento.hpp"
#include "shard/sharded_memento.hpp"
#include "util/compress.hpp"
#include "util/flat_hash.hpp"
#include "util/wire.hpp"

namespace memento {

template <typename Key = std::uint64_t>
class window_summary {
 public:
  /// A summarized candidate with its one-sided window-frequency estimate
  /// (same shape as memento_sketch::heavy_hitter so merge paths interop).
  struct heavy_hitter {
    Key key{};
    double estimate = 0.0;
  };

  window_summary() = default;

  /// Summarizes a plain Memento instance: every overflow-table candidate
  /// with its upper estimate, in the sketch's candidate order.
  [[nodiscard]] static window_summary from(const memento_sketch<Key>& sketch) {
    window_summary s;
    s.window_ = sketch.window_size();
    s.stream_ = sketch.stream_length();
    s.width_ = sketch.estimate_width();
    // Non-candidate upper bound: tau^-1 * (2T + residue), residue <= T - 1.
    s.miss_upper_ = (3.0 * static_cast<double>(sketch.overflow_threshold()) - 1.0) /
                    sketch.tau();
    s.entries_.reserve(sketch.candidate_count());
    sketch.for_each_candidate(
        [&](const Key& key, double est) { s.entries_.push_back({key, est}); });
    s.rebuild_index();
    return s;
  }

  /// Summarizes a sharded frontend: the in-order merge of its shards'
  /// summaries (disjoint keyspaces, so candidate answers are the frontend's
  /// answers exactly).
  [[nodiscard]] static window_summary from(const sharded_memento<Key>& front) {
    window_summary s;
    for (std::size_t i = 0; i < front.num_shards(); ++i) s.merge(from(front.shard(i)));
    return s;
  }

  /// Summarizes an H-Memento: the inner candidates are prefixes and their
  /// estimates carry the H rescaling (each prefix is sampled at tau / H).
  template <typename H>
  [[nodiscard]] static window_summary from_hhh(const h_memento<H>& algo) {
    static_assert(std::is_same_v<typename H::key_type, Key>,
                  "window_summary key type must match the hierarchy key type");
    const double h = static_cast<double>(H::hierarchy_size);
    window_summary s;
    s.window_ = algo.window_size();
    s.stream_ = algo.stream_length();
    const auto& inner = algo.inner();
    s.width_ = h * inner.estimate_width();
    s.miss_upper_ =
        h * (3.0 * static_cast<double>(inner.overflow_threshold()) - 1.0) / inner.tau();
    s.entries_.reserve(inner.candidate_count());
    inner.for_each_candidate(
        [&](const Key& key, double est) { s.entries_.push_back({key, h * est}); });
    s.rebuild_index();
    return s;
  }

  /// Folds `other` into this summary (see the file comment for the exact
  /// one-sided error growth). Entries append in order; colliding keys sum.
  void merge(const window_summary& other) {
    window_ += other.window_;
    stream_ += other.stream_;
    width_ = std::max(width_, other.width_);
    miss_upper_ += other.miss_upper_;
    for (const heavy_hitter& e : other.entries_) {
      if (std::uint32_t* at = index_.find(e.key)) {
        entries_[*at].estimate += e.estimate;
      } else {
        index_.find_or_emplace(e.key, 0) = static_cast<std::uint32_t>(entries_.size());
        entries_.push_back(e);
      }
    }
  }

  /// One-sided (never undercounting, for disjoint merges) window-frequency
  /// estimate: the entry if summarized, otherwise the summed miss bound.
  [[nodiscard]] double query(const Key& x) const {
    if (const std::uint32_t* at = index_.find(x)) return entries_[*at].estimate;
    return miss_upper_;
  }

  /// The entry's estimate alone, 0 when x was not a candidate anywhere -
  /// the near-unbiased input for cross-source aggregation (the netwide
  /// summary channel sums this across vantages).
  [[nodiscard]] double query_entry(const Key& x) const {
    const std::uint32_t* at = index_.find(x);
    return at ? entries_[*at].estimate : 0.0;
  }

  [[nodiscard]] bool contains(const Key& x) const { return index_.contains(x); }

  /// Heavy hitters at threshold theta (fraction of the summarized window):
  /// same filter + sort as the live sketches, so a summary built from a
  /// frontend reproduces its report bit-for-bit.
  [[nodiscard]] std::vector<heavy_hitter> heavy_hitters(double theta) const {
    std::vector<heavy_hitter> out;
    out.reserve(entries_.size());
    const double bar = theta * static_cast<double>(window_);
    for (const heavy_hitter& e : entries_) {
      if (e.estimate >= bar) out.push_back(e);
    }
    std::sort(out.begin(), out.end(),
              [](const heavy_hitter& a, const heavy_hitter& b) { return a.estimate > b.estimate; });
    return out;
  }

  /// The k summarized flows with the largest estimates.
  [[nodiscard]] std::vector<heavy_hitter> top(std::size_t k) const {
    std::vector<heavy_hitter> all = entries_;
    const std::size_t keep = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(keep), all.end(),
                      [](const heavy_hitter& a, const heavy_hitter& b) {
                        return a.estimate > b.estimate;
                      });
    all.resize(keep);
    return all;
  }

  /// Invokes fn(key, estimate) for every summarized candidate, in order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const heavy_hitter& e : entries_) fn(e.key, e.estimate);
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  /// Summarized window, in packets (sums under merge).
  [[nodiscard]] std::uint64_t window_size() const noexcept { return window_; }
  [[nodiscard]] std::uint64_t stream_length() const noexcept { return stream_; }
  /// Worst-case per-source estimate width (max under merge).
  [[nodiscard]] double estimate_width() const noexcept { return width_; }
  /// Upper bound answered for keys with no entry (sums under merge).
  [[nodiscard]] double miss_bound() const noexcept { return miss_upper_; }

  // --- wire format -----------------------------------------------------------

  static constexpr std::uint16_t kWireTag = 0x5753;  ///< "WS"
  static constexpr std::uint16_t kWireVersion = 1;
  /// Streamed framing (wire::sink/source): FoR-packed key column + section
  /// CRC. Keys ship in entry (merge) order, so a streamed round trip
  /// preserves the exact entry sequence like the buffered one does.
  static constexpr std::uint16_t kWireVersionStream = 2;

  /// Serializes the summary as one versioned section.
  void save(wire::writer& w) const {
    const std::size_t tok = w.begin_section(kWireTag, kWireVersion);
    w.varint(window_);
    w.varint(stream_);
    w.f64(width_);
    w.f64(miss_upper_);
    w.varint(entries_.size());
    for (const heavy_hitter& e : entries_) {
      wire::codec<Key>::put(w, e.key);
      w.f64(e.estimate);
    }
    w.end_section(tok);
  }

  /// Rebuilds a summary from save() output; nullopt on malformed input
  /// (truncation, duplicate keys, lying counts) - never a crash.
  [[nodiscard]] static std::optional<window_summary> restore(wire::reader& r) {
    std::uint16_t ptag = 0, pver = 0;
    if (r.peek_section(ptag, pver) && ptag == kWireTag && pver == kWireVersionStream) {
      wire::source src(r.rest());
      auto out = restore(src);
      if (!out) return std::nullopt;
      r.skip(src.consumed());
      return out;
    }
    std::uint16_t version = 0;
    wire::reader body;
    if (!r.open_section(kWireTag, version, body) || version != kWireVersion) return std::nullopt;
    window_summary s;
    std::uint64_t count = 0;
    if (!body.varint(s.window_) || !body.varint(s.stream_) || !body.f64(s.width_) ||
        !body.f64(s.miss_upper_) || !body.varint(count)) {
      return std::nullopt;
    }
    // 8B key + 8B estimate per entry; divide, don't multiply - a huge count
    // from a 9-byte varint must not wrap the guard into a throwing resize.
    if (count > body.remaining() / 16) return std::nullopt;
    s.entries_.resize(static_cast<std::size_t>(count));
    for (heavy_hitter& e : s.entries_) {
      if (!wire::codec<Key>::get(body, e.key) || !body.f64(e.estimate)) return std::nullopt;
    }
    if (!body.done()) return std::nullopt;
    s.rebuild_index();
    if (s.index_.size() != s.entries_.size()) return std::nullopt;  // duplicate keys
    return s;
  }

  /// Streamed counterpart of save(): scalars, one FoR key column (entry
  /// order), one f64 estimate column.
  void save(wire::sink& s, bool packed = true) const {
    s.begin_section(kWireTag, kWireVersionStream);
    s.u8(packed ? wire::kCodecPacked : 0);
    s.varint(window_);
    s.varint(stream_);
    s.f64(width_);
    s.f64(miss_upper_);
    s.varint(entries_.size());
    std::size_t i = 0;
    wire::put_u64_array(s, entries_.size(), packed,
                        [&] { return wire::codec<Key>::to_u64(entries_[i++].key); });
    for (const heavy_hitter& e : entries_) s.f64(e.estimate);
    s.end_section();
  }

  /// Rebuilds a summary from streamed save() output.
  [[nodiscard]] static std::optional<window_summary> restore(wire::source& s) {
    std::uint16_t version = 0;
    if (!s.open_section(kWireTag, version) || version != kWireVersionStream) return std::nullopt;
    std::uint8_t flags = 0;
    if (!s.u8(flags) || (flags & ~wire::kCodecKnownMask) != 0) return std::nullopt;
    const bool packed = (flags & wire::kCodecPacked) != 0;
    window_summary out;
    std::uint64_t count = 0;
    if (!s.varint(out.window_) || !s.varint(out.stream_) || !s.f64(out.width_) ||
        !s.f64(out.miss_upper_) || !s.varint(count)) {
      return std::nullopt;
    }
    // A stream has no byte budget to check a lying count against; 2^21
    // entries (64 MB) is far beyond any real summary (candidate sets are
    // bounded by the global counter budget) while bounding the allocation.
    if (count > (std::uint64_t{1} << 21)) return std::nullopt;
    out.entries_.resize(static_cast<std::size_t>(count));
    std::size_t i = 0;
    if (!wire::get_u64_array(s, static_cast<std::size_t>(count), packed, [&](std::uint64_t raw) {
          return wire::codec<Key>::from_u64(raw, out.entries_[i++].key);
        })) {
      return std::nullopt;
    }
    for (heavy_hitter& e : out.entries_) {
      if (!s.f64(e.estimate)) return std::nullopt;
    }
    if (!s.close_section()) return std::nullopt;
    out.rebuild_index();
    if (out.index_.size() != out.entries_.size()) return std::nullopt;  // duplicate keys
    return out;
  }

  // --- delta-channel mutators ------------------------------------------------
  // The delta summary channel (netwide/summary_channel.hpp) patches a
  // controller-side baseline in place instead of replacing it: changed
  // candidates are upserted, dropped candidates erased, and the scalar
  // header (window/stream/width/miss bound) refreshed each report.

  /// Inserts or overwrites one candidate's estimate.
  void upsert(const Key& key, double estimate) {
    if (const std::uint32_t* at = index_.find(key)) {
      entries_[*at].estimate = estimate;
      return;
    }
    index_.find_or_emplace(key, 0) = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back({key, estimate});
  }

  /// Removes a candidate if present (swap-with-last, index patched).
  void erase(const Key& key) {
    const std::uint32_t* at = index_.find(key);
    if (!at) return;
    const std::uint32_t pos = *at;
    const std::uint32_t last = static_cast<std::uint32_t>(entries_.size() - 1);
    if (pos != last) {
      entries_[pos] = entries_[last];
      index_.find_or_emplace(entries_[pos].key, pos) = pos;
    }
    entries_.pop_back();
    index_.erase(key);
  }

  /// Refreshes the scalar header shipped with every report.
  void set_scalars(std::uint64_t window, std::uint64_t stream, double width,
                   double miss_upper) noexcept {
    window_ = window;
    stream_ = stream;
    width_ = width;
    miss_upper_ = miss_upper;
  }

 private:
  void rebuild_index() {
    index_.reserve(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      index_.find_or_emplace(entries_[i].key, static_cast<std::uint32_t>(i)) =
          static_cast<std::uint32_t>(i);
    }
  }

  std::vector<heavy_hitter> entries_;       ///< candidates, in merge order
  flat_hash<Key, std::uint32_t> index_;     ///< key -> entries_ position (rebuilt, not shipped)
  std::uint64_t window_ = 0;
  std::uint64_t stream_ = 0;
  double width_ = 0.0;
  double miss_upper_ = 0.0;
};

}  // namespace memento
