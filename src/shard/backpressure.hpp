// Explicit backpressure for the batched ingest rings: what happens when a
// producer meets a full ring, stated as policy instead of buried in a loop.
//
//   * block - lossless: the producer waits (idle-progressive backoff) until
//     the consumer frees slots. This is the default everywhere, because the
//     sketch's guarantees are about the stream it SAW; silently losing
//     packets would skew every window estimate. Throughput degrades to the
//     slowest consumer, latency is bounded by ring capacity.
//   * drop - lossy tail-drop, the NIC discipline: what fits now is enqueued,
//     the remainder of the burst is counted and discarded. Throughput stays
//     at line rate, accuracy degrades measurably (the drop counter is the
//     estimate-error budget). For deployments that prefer stale-but-timely
//     answers over backpressure rippling upstream.
//
// Every producer keeps per-ring `ring_stats` - packets enqueued, packets
// dropped (each offered packet is counted exactly once, as enqueued or as
// dropped), and the occupancy high-water mark (monotone; sampled after each
// push from the producer side, where tail_ is exact). The counters are plain
// u64s owned by the producer thread; consumers never touch them, so reading
// them is only defined from the producing side (or after a drain barrier) -
// the same ownership discipline the rings themselves rely on.
#pragma once

#include <cstddef>
#include <cstdint>

#include "shard/spsc_queue.hpp"
#include "util/backoff.hpp"

namespace memento {

enum class backpressure_policy : std::uint8_t {
  block,  ///< lossless: wait for ring space (default)
  drop,   ///< lossy: tail-drop what does not fit now
};

[[nodiscard]] constexpr const char* backpressure_policy_name(backpressure_policy p) noexcept {
  return p == backpressure_policy::block ? "block" : "drop";
}

/// Producer-side accounting for one ring. Invariants (pinned by tests):
/// enqueued + drops == total packets offered; drops == 0 under block;
/// occupancy_hwm is monotone non-decreasing and never exceeds capacity.
struct ring_stats {
  std::uint64_t enqueued = 0;       ///< accepted into the ring
  std::uint64_t drops = 0;          ///< discarded by the drop policy
  std::uint64_t occupancy_hwm = 0;  ///< max ring occupancy observed at push

  void note_occupancy(std::size_t occupancy) noexcept {
    if (occupancy > occupancy_hwm) occupancy_hwm = occupancy;
  }
};

/// Offers a burst to a ring under `policy`. Returns how many items were
/// enqueued: always n under block (may wait), <= n under drop (never
/// waits; the shortfall is counted in stats.drops).
template <typename T>
std::size_t offer_burst(spsc_ring<T>& ring, const T* xs, std::size_t n,
                        backpressure_policy policy, ring_stats& stats, idle_backoff& backoff) {
  std::size_t accepted = 0;
  for (;;) {
    const std::size_t pushed = ring.try_push(xs + accepted, n - accepted);
    accepted += pushed;
    stats.note_occupancy(ring.approx_size());
    if (accepted == n || policy == backpressure_policy::drop) break;
    if (pushed > 0) {
      backoff.reset();  // the consumer is draining: stay hot
    } else {
      backoff.idle();
    }
  }
  backoff.reset();
  stats.enqueued += accepted;
  stats.drops += n - accepted;
  return accepted;
}

}  // namespace memento
