// Sharded H-Memento smoke path for FLAT ONE-DIMENSIONAL hierarchies.
//
// Why general HHH sharding is harder than plain HH sharding - and therefore
// deferred: sharded_memento partitions by the fully-specified flow key, which
// works because a flow's packets are the only contributors to its counter. A
// hierarchical prefix, by contrast, aggregates MANY flows; hashing flows
// across shards would scatter every prefix's mass over all N shards, turning
// each query into an N-way sum of one-sided estimates (error bars add, so
// accuracy degrades linearly with N) and entangling the per-shard windows.
// The 2D lattice makes it worse: src- and dst-rooted generalizations impose
// incompatible partitions, so no single keyspace hash keeps both aligned.
//
// For a flat 1-D hierarchy there is a clean special case, implemented here:
// route by the COARSEST NON-ROOT generalization (the /8 prefix for the
// 5-level source hierarchy). All of a packet's non-root prefixes share its
// /8 octet by construction, so every non-root prefix keeps its full mass on
// exactly one shard and point queries still route - same mergeability as the
// flat frontend, same per-shard one-sided bounds. Only the root (/0)
// aggregates across shards; its bounds are answered by summation (a sum of
// per-shard one-sided bounds is a one-sided bound for the union), which is
// benign since the root covers the whole window and is trivially a heavy
// hitter at any theta < 1.
//
// Caveats vs a single H-Memento (this is a smoke path, not the tuned
// production route): the keyspace partition is over 256 /8 octets - coarse,
// so a trace concentrated in few /8s shards unevenly (real backbone traces
// spread widely; the synthetic traces scramble ranks uniformly); and the
// HHH output walk runs over the union candidate set with per-shard
// compensation, so admission error at the root level sums across shards.
// A production design would rebalance octet->shard assignment by observed
// load; that is future work tracked in ROADMAP.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/h_memento.hpp"
#include "hierarchy/prefix1d.hpp"
#include "shard/partitioner.hpp"

namespace memento {

template <typename H = source_hierarchy>
class sharded_h_memento {
  static_assert(!H::two_dimensional,
                "sharded_h_memento: only flat 1-D hierarchies shard cleanly (see header)");
  static_assert(std::is_same_v<typename H::key_type, std::uint64_t>,
                "sharded_h_memento: routing uses the prefix1d uint64 key encoding");

 public:
  using key_type = typename H::key_type;
  using hhh_result = typename h_memento<H>::hhh_result;

  /// Depth of the routing level: the coarsest non-root generalization.
  static constexpr std::size_t kRouteDepth = H::num_levels - 2;
  /// Depth of the root (full wildcard), answered by summation.
  static constexpr std::size_t kRootDepth = H::num_levels - 1;

  /// @param config global budgets, divided evenly (as in sharded_memento):
  /// each shard runs an h_memento with W/N window and k/N counters.
  sharded_h_memento(const h_memento_config& config, std::size_t shards) : part_(shards) {
    if (shards == 0) throw std::invalid_argument("sharded_h_memento: shards must be >= 1");
    if (config.window_size == 0 || config.counters == 0) {
      throw std::invalid_argument("sharded_h_memento: W and counters must be >= 1");
    }
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      shards_.emplace_back(shard_config_for(config, shards, s));
    }
    scratch_.resize(shards);
  }

  /// The h_memento_config shard s runs with: the same budget split and seed
  /// derivation as sharded_memento::shard_config_for (shared helpers in
  /// partitioner.hpp), exposed for standalone per-shard references.
  [[nodiscard]] static h_memento_config shard_config_for(const h_memento_config& config,
                                                         std::size_t shards, std::size_t shard) {
    h_memento_config c = config;
    c.window_size = shard_share(config.window_size, shards);
    c.counters = static_cast<std::size_t>(shard_share(config.counters, shards));
    c.seed = shard_seed(config.seed, shard);
    return c;
  }

  /// Owning shard of a packet: hash of its routing-level prefix.
  [[nodiscard]] std::size_t shard_of(const packet& p) const noexcept {
    return part_(H::key_at(p, kRouteDepth));
  }

  /// Owning shard of a non-root prefix key (the root has no single owner).
  [[nodiscard]] std::size_t shard_of_key(key_type k) const noexcept {
    return part_(prefix1d::make_key(prefix1d::key_addr(k), kRouteDepth));
  }

  void update(const packet& p) { shards_[shard_of(p)].update(p); }

  /// Burst ingest: partition by routing prefix, feed each shard's
  /// h_memento::update_batch (which drives the inner batch kernel).
  void update_batch(const packet* ps, std::size_t n) {
    if (shards_.size() == 1) {
      shards_[0].update_batch(ps, n);
      return;
    }
    partition_into(scratch_, [this](const packet& p) { return shard_of(p); }, ps, n);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!scratch_[s].empty()) shards_[s].update_batch(scratch_[s].data(), scratch_[s].size());
    }
  }

  void update_batch(std::span<const packet> ps) { update_batch(ps.data(), ps.size()); }

  /// One-sided window-frequency upper bound for a prefix: routed for
  /// non-root prefixes, summed across shards for the root.
  [[nodiscard]] double query(key_type prefix) const {
    if (H::depth(prefix) == kRootDepth) {
      double sum = 0.0;
      for (const auto& shard : shards_) sum += shard.query(prefix);
      return sum;
    }
    return shards_[shard_of_key(prefix)].query(prefix);
  }

  /// Matching lower bound (routed; summed for the root).
  [[nodiscard]] double query_lower(key_type prefix) const {
    if (H::depth(prefix) == kRootDepth) {
      double sum = 0.0;
      for (const auto& shard : shards_) sum += shard.query_lower(prefix);
      return sum;
    }
    return shards_[shard_of_key(prefix)].query_lower(prefix);
  }

  /// Approximate window HHH set at threshold theta: the shared lattice walk
  /// (solve_hhh) over the UNION of per-shard candidate sets, with the routed
  /// bound oracle above. Thresholding is against the global window; the
  /// sampling compensation is per-shard (all shards share one geometry).
  [[nodiscard]] hhh_result output(double theta) const {
    std::vector<key_type> candidates;
    for (const auto& shard : shards_) {
      auto keys = shard.inner().monitored_keys();
      candidates.insert(candidates.end(), keys.begin(), keys.end());
    }
    const double threshold = theta * static_cast<double>(window_size());
    return solve_hhh<H>(
        std::move(candidates),
        [this](const key_type& k) {
          return freq_bounds{query(k), query_lower(k)};
        },
        threshold, shards_[0].sampling_compensation());
  }

  /// Effective global window (sum of the shards' rounded windows).
  [[nodiscard]] std::uint64_t window_size() const noexcept {
    std::uint64_t w = 0;
    for (const auto& shard : shards_) w += shard.window_size();
    return w;
  }

  [[nodiscard]] std::uint64_t stream_length() const noexcept {
    std::uint64_t n = 0;
    for (const auto& shard : shards_) n += shard.stream_length();
    return n;
  }

  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }
  [[nodiscard]] const h_memento<H>& shard(std::size_t s) const noexcept { return shards_[s]; }

 private:
  shard_partitioner<key_type> part_;
  std::vector<h_memento<H>> shards_;
  std::vector<std::vector<packet>> scratch_;
};

}  // namespace memento
