// Sharded H-Memento frontend: prefix-aware keyspace partitioning for 1-D
// AND 2-D hierarchies, with weighted (TABLE-mode) routing and rebalance.
//
// Why HHH sharding is harder than plain HH sharding: sharded_memento
// partitions by the fully-specified flow key, which works because a flow's
// packets are the only contributors to its counter. A hierarchical prefix,
// by contrast, aggregates MANY flows; hashing flows across shards would
// scatter every prefix's mass over all N shards, turning each query into an
// N-way sum of one-sided estimates (error bars add, so accuracy degrades
// linearly with N) and entangling the per-shard windows.
//
// The clean route is to partition by the COARSEST ROUTABLE GENERALIZATION:
//
//   * 1-D (H = 5 byte levels): route by the /8 prefix (depth num_levels - 2).
//     All of a packet's non-root prefixes share its /8 octet by
//     construction, so every non-root prefix keeps its full mass on exactly
//     one shard and point queries still route - same mergeability as the
//     flat frontend, same per-shard one-sided bounds. Only the root (/0)
//     aggregates across shards; it is answered by summation (a sum of
//     per-shard one-sided bounds is a one-sided bound for the union), which
//     is benign since the root is trivially a heavy hitter at any theta < 1.
//   * 2-D (H = 25 (src, dst) patterns): route by the (/8, /8) DEPTH PAIR.
//     Any prefix with BOTH dimensions at depth <= 3 contains only packets
//     sharing its (src /8, dst /8) octet pair, so all 16 such patterns keep
//     full mass on one shard. The 9 wildcard patterns (src_depth == 4 or
//     dst_depth == 4, root included) span route pairs and are answered by
//     summation - the same rule as the 1-D root, one lattice rank earlier.
//     This is what the old /8-only smoke path could not express: the 2-D
//     lattice has no single *flat* keyspace hash aligning both dimensions,
//     but the (/8,/8) pair IS the coarsest generalization that still nails
//     every routable pattern to one owner.
//
// Routing composes with shard_partitioner exactly like the flat frontend:
// route key -> bucket (mix64 + fastrange64 over B = 64*N buckets) -> shard
// via the assignment table (TABLE mode) or plain fastrange (HASH mode). A
// uniform table routes bit-identically to HASH mode, so the rebalancer's
// no-op guarantees carry over: nothing moves until prefix-population skew
// is real. coverage_rebalancer plans tables from the live per-bucket load
// picture (candidate prefixes map to buckets through bucket_of(), which
// routes by the prefix's route generalization), and
// snapshot_builder::reshard transports the window state onto the new table
// with no stream replay - see shard/rebalance.hpp and snapshot/reshard.hpp.
//
// Detection under skew: a shard owning an elephant prefix is overloaded,
// so its window spans fewer global packets (window_coverage(s) < W) and
// routed estimates sit low relative to the global window - borderline HHHs
// flicker. output_coverage_scaled() applies the ACCURACY.md drift model:
// each routed bound is scaled by W / coverage(owner) (clamped, see
// detection::coverage_scale), which re-centers the detection bar at
// theta * coverage(s) per shard. The flat frontend exposes the same model
// through heavy_hitters_coverage_scaled().
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/detection_model.hpp"
#include "core/h_memento.hpp"
#include "hierarchy/prefix1d.hpp"
#include "hierarchy/prefix2d.hpp"
#include "shard/partitioner.hpp"
#include "util/wire.hpp"

namespace memento {

/// Construction budget of a sharded HHH deployment: the global h_memento
/// budget plus the shard count. What config_snapshot() recovers and
/// snapshot_builder::reshard rebuilds replacement frontends from.
struct hhh_shard_config {
  h_memento_config base;   ///< GLOBAL window/counter/tau/delta budget
  std::size_t shards = 1;  ///< N: number of partitions
};

template <typename H = source_hierarchy>
class sharded_h_memento {
  static_assert(H::two_dimensional ? std::is_same_v<typename H::key_type, prefix2d>
                                   : std::is_same_v<typename H::key_type, std::uint64_t>,
                "sharded_h_memento: routing understands the prefix1d uint64 encoding "
                "and the prefix2d pair encoding");

 public:
  using key_type = typename H::key_type;
  using hhh_result = typename h_memento<H>::hhh_result;

  /// 1-D: depth of the routing level (the coarsest non-root generalization).
  /// 2-D: the per-dimension routing depth (the /8 of each dimension).
  static constexpr std::size_t kRouteDepth = H::two_dimensional ? 3 : H::num_levels - 2;
  /// 1-D only: depth of the root (full wildcard), answered by summation.
  static constexpr std::size_t kRootDepth = H::num_levels - 1;
  /// bucket_of() result for prefixes with no single owner (summed keys).
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  /// @param config global budgets, divided evenly (as in sharded_memento):
  /// each shard runs an h_memento with W/N window and k/N counters.
  sharded_h_memento(const h_memento_config& config, std::size_t shards)
      : sharded_h_memento(config, shards, shard_partitioner<key_type>(shards)) {}

  /// Weighted (TABLE-mode) frontend: routes prefix buckets through `table`.
  /// A uniform table is bit-identical to the plain ctor; a skewed one is
  /// what the rebalancer installs. Throws on a table that does not fit.
  sharded_h_memento(const h_memento_config& config, std::size_t shards, shard_table table)
      : sharded_h_memento(config, shards,
                          shard_partitioner<key_type>(shards, std::move(table))) {}

  /// The h_memento_config shard s runs with: the same budget split and seed
  /// derivation as sharded_memento::shard_config_for (shared helpers in
  /// partitioner.hpp), exposed for standalone per-shard references.
  [[nodiscard]] static h_memento_config shard_config_for(const h_memento_config& config,
                                                         std::size_t shards, std::size_t shard) {
    h_memento_config c = config;
    c.window_size = shard_share(config.window_size, shards);
    c.counters = static_cast<std::size_t>(shard_share(config.counters, shards));
    c.seed = shard_seed(config.seed, shard);
    return c;
  }

  // --- routing ---------------------------------------------------------------

  /// The routing generalization of a packet: its /8 (1-D) or (/8, /8) pair.
  [[nodiscard]] static constexpr key_type route_key_of(const packet& p) noexcept {
    if constexpr (H::two_dimensional) {
      return prefix2::make(p.src, kRouteDepth, p.dst, kRouteDepth);
    } else {
      return H::key_at(p, kRouteDepth);
    }
  }

  /// True when the prefix keeps its full mass on one shard (see file
  /// comment); false for the keys answered by summation.
  [[nodiscard]] static constexpr bool routable(const key_type& k) noexcept {
    if constexpr (H::two_dimensional) {
      return k.src_depth <= kRouteDepth && k.dst_depth <= kRouteDepth;
    } else {
      return prefix1d::key_depth(k) <= kRouteDepth;
    }
  }

  /// The routing generalization of a ROUTABLE prefix key: every packet
  /// contributing to the prefix shares it, so it identifies the owner.
  [[nodiscard]] static constexpr key_type route_key_of_key(const key_type& k) noexcept {
    if constexpr (H::two_dimensional) {
      return prefix2::make(k.src, kRouteDepth, k.dst, kRouteDepth);
    } else {
      return prefix1d::make_key(prefix1d::key_addr(k), kRouteDepth);
    }
  }

  /// Owning shard of a packet: routed through the partitioner (TABLE or
  /// HASH mode) on its routing generalization.
  [[nodiscard]] std::size_t shard_of(const packet& p) const noexcept {
    return part_(route_key_of(p));
  }

  /// Owning shard of a routable prefix key (summed keys have no single
  /// owner; callers check routable() first, as query() does).
  [[nodiscard]] std::size_t shard_of_key(const key_type& k) const noexcept {
    return part_(route_key_of_key(k));
  }

  /// The prefix's routing bucket - the rebalancer's migration unit - or
  /// npos for summed keys (their mass follows no single bucket).
  [[nodiscard]] std::size_t bucket_of(const key_type& k) const noexcept {
    return routable(k) ? part_.bucket_of(route_key_of_key(k)) : npos;
  }

  /// Attribution walk for the rebalancer's per-bucket load model
  /// (shard/rebalance.hpp): visits shard s's candidates at the ROUTE
  /// pattern only - the /8 level in 1-D, the (/8, /8) pair in 2-D - with
  /// the same prefix-unit scaling for_each_candidate applies. Route-pattern
  /// keys partition the packet stream (every packet has exactly one
  /// route-level generalization), so each packet's mass is credited to its
  /// bucket exactly once; walking the whole lattice instead would count a
  /// flow once per routable pattern (16x in 2-D), push the planner's
  /// explained share past 1 and starve the mouse residue that places the
  /// below-candidate buckets.
  template <typename Fn>
  void for_each_attributable(std::size_t s, Fn&& fn) const {
    shards_[s].inner().for_each_candidate([&](const key_type& key, double est) {
      if constexpr (H::two_dimensional) {
        if (key.src_depth != kRouteDepth || key.dst_depth != kRouteDepth) return;
      } else {
        if (prefix1d::key_depth(key) != kRouteDepth) return;
      }
      fn(key, static_cast<double>(H::hierarchy_size) * est);
    });
  }

  // --- ingest ----------------------------------------------------------------

  void update(const packet& p) { shards_[shard_of(p)].update(p); }

  /// Burst ingest: partition by routing prefix, feed each shard's
  /// h_memento::update_batch (which drives the batched hierarchical kernel).
  void update_batch(const packet* ps, std::size_t n) {
    if (shards_.size() == 1) {
      shards_[0].update_batch(ps, n);
      return;
    }
    partition_into(scratch_, [this](const packet& p) { return shard_of(p); }, ps, n);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!scratch_[s].empty()) shards_[s].update_batch(scratch_[s].data(), scratch_[s].size());
    }
  }

  void update_batch(std::span<const packet> ps) { update_batch(ps.data(), ps.size()); }

  // --- queries ---------------------------------------------------------------

  /// One-sided window-frequency upper bound for a prefix: routed for
  /// routable prefixes, summed across shards for the wildcard patterns.
  [[nodiscard]] double query(const key_type& prefix) const {
    if (!routable(prefix)) {
      double sum = 0.0;
      for (const auto& shard : shards_) sum += shard.query(prefix);
      return sum;
    }
    return shards_[shard_of_key(prefix)].query(prefix);
  }

  /// Matching lower bound (routed; summed for the wildcard patterns).
  [[nodiscard]] double query_lower(const key_type& prefix) const {
    if (!routable(prefix)) {
      double sum = 0.0;
      for (const auto& shard : shards_) sum += shard.query_lower(prefix);
      return sum;
    }
    return shards_[shard_of_key(prefix)].query_lower(prefix);
  }

  /// Approximate window HHH set at threshold theta: the shared lattice walk
  /// (solve_hhh) over the UNION of per-shard candidate sets, with the routed
  /// bound oracle above. Thresholding is against the global window; the
  /// sampling compensation is per-shard (all shards share one geometry).
  [[nodiscard]] hhh_result output(double theta) const {
    return output_impl(theta, /*coverage_scaled=*/false);
  }

  /// OUTPUT with the coverage-scaled detection bars of the ACCURACY.md
  /// drift model: each routed bound is multiplied by W / coverage(owner)
  /// (clamped; detection::coverage_scale), so a borderline prefix on an
  /// overloaded shard - whose window spans fewer global packets than the
  /// nominal W - is judged against theta * coverage(s) instead of a bar it
  /// systematically undershoots. Summed keys scale per contributing shard.
  [[nodiscard]] hhh_result output_coverage_scaled(double theta) const {
    return output_impl(theta, /*coverage_scaled=*/true);
  }

  // --- introspection ---------------------------------------------------------

  /// Effective global window (sum of the shards' rounded windows).
  [[nodiscard]] std::uint64_t window_size() const noexcept {
    std::uint64_t w = 0;
    for (const auto& shard : shards_) w += shard.window_size();
    return w;
  }

  [[nodiscard]] std::uint64_t stream_length() const noexcept {
    std::uint64_t n = 0;
    for (const auto& shard : shards_) n += shard.stream_length();
    return n;
  }

  /// Estimated GLOBAL packets spanned by shard s's window: W_s * n / n_s
  /// under stationarity (W_s for an empty stream) - the same phase-drift
  /// monitor the flat frontend exposes; see sharded_memento::window_coverage.
  [[nodiscard]] double window_coverage(std::size_t s) const noexcept {
    const auto& shard = shards_[s];
    if (shard.stream_length() == 0) return static_cast<double>(shard.window_size());
    return static_cast<double>(shard.window_size()) * static_cast<double>(stream_length()) /
           static_cast<double>(shard.stream_length());
  }

  /// Largest absolute deviation of any shard's packet count from the ideal
  /// n/N share - realized prefix-population skew. 0 for N == 1.
  [[nodiscard]] double stream_skew() const noexcept {
    const double ideal =
        static_cast<double>(stream_length()) / static_cast<double>(shards_.size());
    double worst = 0.0;
    for (const auto& shard : shards_) {
      worst = std::max(worst, std::abs(static_cast<double>(shard.stream_length()) - ideal));
    }
    return worst;
  }

  /// The global construction budget recovered from the live shards (every
  /// shard runs the shard_share slice, so per-shard * N is the rounded
  /// global budget). Reshard and the rebalancer rebuild replacements from it.
  [[nodiscard]] hhh_shard_config config_snapshot() const noexcept {
    hhh_shard_config c;
    c.base = shards_[0].config_snapshot();
    c.base.window_size *= shards_.size();
    c.base.counters *= shards_.size();
    c.base.seed = base_seed_;
    c.shards = shards_.size();
    return c;
  }

  /// Skew-aware rebalance (same contract as sharded_memento::rebalance):
  /// `policy` plans a bucket -> shard table from the live load picture and
  /// migrates the window state onto it through the snapshot reshard path.
  template <typename Policy>
  bool rebalance(const Policy& policy) {
    return policy.rebalance(*this);
  }

  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }
  [[nodiscard]] const h_memento<H>& shard(std::size_t s) const noexcept { return shards_[s]; }
  [[nodiscard]] const shard_partitioner<key_type>& partitioner() const noexcept { return part_; }

  // --- snapshot support ------------------------------------------------------
  // A frontend snapshot is the routing state (base seed + bucket table, if
  // weighted) followed by the ordered sequence of its shards' h_memento
  // sections. Restored frontends route, sample and answer bit-identically -
  // including through a rebalanced (weighted) table.

  static constexpr std::uint16_t kWireTag = 0x4848;  ///< "HH"
  static constexpr std::uint16_t kWireVersion = 1;
  /// Streamed framing (wire::sink/source): FoR-packed bucket table, per-shard
  /// streamed sections, section CRC.
  static constexpr std::uint16_t kWireVersionStream = 2;

  /// Serializes the frontend as one versioned section.
  void save(wire::writer& w) const {
    const std::size_t tok = w.begin_section(kWireTag, kWireVersion);
    w.varint(shards_.size());
    w.u64(base_seed_);
    const shard_table& t = part_.table();
    w.varint(t.buckets());  // 0 == HASH mode
    for (const std::uint32_t s : t.to_shard) w.varint(s);
    for (const auto& shard : shards_) shard.save(w);
    w.end_section(tok);
  }

  /// Rebuilds a frontend from save() output; nullopt on any malformed input
  /// (see h_memento::restore for the per-shard validation contract; the
  /// bucket table additionally must be non-degenerate for the shard count).
  [[nodiscard]] static std::optional<sharded_h_memento> restore(wire::reader& r) {
    std::uint16_t ptag = 0, pver = 0;
    if (r.peek_section(ptag, pver) && ptag == kWireTag && pver == kWireVersionStream) {
      wire::source src(r.rest());
      auto out = restore(src);
      if (!out) return std::nullopt;
      r.skip(src.consumed());
      return out;
    }
    std::uint16_t version = 0;
    wire::reader body;
    if (!r.open_section(kWireTag, version, body) || version != kWireVersion) return std::nullopt;
    std::uint64_t n = 0, seed = 0, buckets = 0;
    if (!body.varint(n) || n == 0 || n > kMaxRestoreShards) return std::nullopt;
    if (!body.u64(seed) || !body.varint(buckets)) return std::nullopt;
    // Each table entry costs at least one byte, so a lying bucket count is
    // rejected before the reserve below can allocate against it.
    if (buckets > kMaxRestoreBuckets || buckets > body.remaining()) return std::nullopt;
    shard_table table;
    table.to_shard.reserve(static_cast<std::size_t>(buckets));
    for (std::uint64_t b = 0; b < buckets; ++b) {
      std::uint64_t s = 0;
      if (!body.varint(s) || s >= n) return std::nullopt;
      table.to_shard.push_back(static_cast<std::uint32_t>(s));
    }
    if (buckets != 0 && !table.valid_for(static_cast<std::size_t>(n))) return std::nullopt;
    std::vector<h_memento<H>> shards;
    shards.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t s = 0; s < n; ++s) {
      auto shard = h_memento<H>::restore(body);
      if (!shard) return std::nullopt;
      shards.push_back(std::move(*shard));
    }
    if (!body.done()) return std::nullopt;
    auto part = buckets == 0
                    ? shard_partitioner<key_type>(static_cast<std::size_t>(n))
                    : shard_partitioner<key_type>(static_cast<std::size_t>(n), std::move(table));
    return sharded_h_memento(std::move(shards), std::move(part), seed);
  }

  /// Streamed counterpart of save(): routing scalars, the bucket table as
  /// one FoR column, then each shard's streamed section in order. 1-D
  /// hierarchies only - prefix2d exceeds the streamed formats' 64-bit key
  /// column (wire::codec<prefix2d>), so instantiating this for a 2-D
  /// frontend is a compile error; 2-D deployments checkpoint buffered.
  void save(wire::sink& s, bool packed = true) const {
    s.begin_section(kWireTag, kWireVersionStream);
    s.u8(packed ? wire::kCodecPacked : 0);
    s.varint(shards_.size());
    s.u64(base_seed_);
    const shard_table& t = part_.table();
    s.varint(t.buckets());  // 0 == HASH mode
    std::size_t i = 0;
    wire::put_u64_array(s, t.to_shard.size(), packed, [&] { return t.to_shard[i++]; });
    for (const auto& shard : shards_) shard.save(s, packed);
    s.end_section();
  }

  /// Rebuilds a frontend from streamed save() output; same validation
  /// contract as the buffered restore plus the section CRC.
  [[nodiscard]] static std::optional<sharded_h_memento> restore(wire::source& s) {
    std::uint16_t version = 0;
    if (!s.open_section(kWireTag, version) || version != kWireVersionStream) return std::nullopt;
    std::uint8_t flags = 0;
    if (!s.u8(flags) || (flags & ~wire::kCodecKnownMask) != 0) return std::nullopt;
    const bool packed = (flags & wire::kCodecPacked) != 0;
    std::uint64_t n = 0, seed = 0, buckets = 0;
    if (!s.varint(n) || n == 0 || n > kMaxRestoreShards) return std::nullopt;
    if (!s.u64(seed) || !s.varint(buckets)) return std::nullopt;
    if (buckets > kMaxRestoreBuckets) return std::nullopt;
    shard_table table;
    table.to_shard.reserve(static_cast<std::size_t>(buckets));
    if (!wire::get_u64_array(s, static_cast<std::size_t>(buckets), packed, [&](std::uint64_t v) {
          if (v >= n) return false;
          table.to_shard.push_back(static_cast<std::uint32_t>(v));
          return true;
        })) {
      return std::nullopt;
    }
    if (buckets != 0 && !table.valid_for(static_cast<std::size_t>(n))) return std::nullopt;
    std::vector<h_memento<H>> shards;
    shards.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      auto shard = h_memento<H>::restore(s);
      if (!shard) return std::nullopt;
      shards.push_back(std::move(*shard));
    }
    if (!s.close_section()) return std::nullopt;
    auto part = buckets == 0
                    ? shard_partitioner<key_type>(static_cast<std::size_t>(n))
                    : shard_partitioner<key_type>(static_cast<std::size_t>(n), std::move(table));
    return sharded_h_memento(std::move(shards), std::move(part), seed);
  }

 private:
  /// Restore-side guards, matching sharded_memento's.
  static constexpr std::uint64_t kMaxRestoreShards = 4096;
  static constexpr std::uint64_t kMaxRestoreBuckets = 1u << 20;

  friend class snapshot_builder;  ///< reshard constructs frontends from parts

  /// The shared construction path: both public ctors land here with the
  /// partitioner (HASH or TABLE mode) already built and validated.
  sharded_h_memento(const h_memento_config& config, std::size_t shards,
                    shard_partitioner<key_type>&& part)
      : part_(std::move(part)), base_seed_(config.seed) {
    if (shards == 0) throw std::invalid_argument("sharded_h_memento: shards must be >= 1");
    if (config.window_size == 0 || config.counters == 0) {
      throw std::invalid_argument("sharded_h_memento: W and counters must be >= 1");
    }
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      shards_.emplace_back(shard_config_for(config, shards, s));
    }
    scratch_.resize(shards);
  }

  /// Assembles a frontend directly from restored/resharded shard instances
  /// with an explicit router and seed. Snapshot-layer only.
  sharded_h_memento(std::vector<h_memento<H>>&& shards, shard_partitioner<key_type>&& part,
                    std::uint64_t base_seed)
      : part_(std::move(part)), shards_(std::move(shards)), base_seed_(base_seed) {
    scratch_.resize(shards_.size());
  }

  /// The shared lattice walk behind output()/output_coverage_scaled(): one
  /// candidate union, one bound oracle; the scaled variant multiplies each
  /// shard's contribution by its drift-model coverage correction.
  [[nodiscard]] hhh_result output_impl(double theta, bool coverage_scaled) const {
    std::vector<key_type> candidates;
    for (const auto& shard : shards_) {
      auto keys = shard.inner().monitored_keys();
      candidates.insert(candidates.end(), keys.begin(), keys.end());
    }
    const double w = static_cast<double>(window_size());
    std::vector<double> scale(shards_.size(), 1.0);
    if (coverage_scaled) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        scale[s] = detection::coverage_scale(w, window_coverage(s));
      }
    }
    const double threshold = theta * w;
    return solve_hhh<H>(
        std::move(candidates),
        [this, &scale](const key_type& k) {
          if (!routable(k)) {
            double hi = 0.0, lo = 0.0;
            for (std::size_t s = 0; s < shards_.size(); ++s) {
              hi += scale[s] * shards_[s].query(k);
              lo += scale[s] * shards_[s].query_lower(k);
            }
            return freq_bounds{hi, lo};
          }
          const std::size_t s = shard_of_key(k);
          return freq_bounds{scale[s] * shards_[s].query(k),
                             scale[s] * shards_[s].query_lower(k)};
        },
        threshold, shards_[0].sampling_compensation());
  }

  shard_partitioner<key_type> part_;
  std::vector<h_memento<H>> shards_;
  std::vector<std::vector<packet>> scratch_;
  std::uint64_t base_seed_ = 1;  ///< config.seed; reshard/rebalance reuse it
};

}  // namespace memento
