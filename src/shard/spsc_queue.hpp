// Bounded single-producer / single-consumer ring for the sharded ingest
// path: the frontend (producer) partitions each burst and appends every
// shard's keys to that shard's ring; the shard's worker thread (consumer)
// drains *contiguous* spans straight into memento_sketch::update_batch.
//
// Design points:
//   * monotonic 64-bit head/tail counters (never wrapped; the slot index is
//     `count & mask`), so full/empty tests are plain subtraction and the
//     ABA problem cannot arise;
//   * the producer caches the consumer's head and the consumer caches the
//     producer's tail, so the hot path touches one foreign cache line only
//     when its cached view says the ring is full/empty (classic Rigtorp
//     refresh-on-miss);
//   * the consumer reads in place: front_span() exposes the longest
//     contiguous readable run, which update_batch consumes with zero copy -
//     under backpressure the spans grow toward the ring capacity, so the
//     busier the system, the bigger the batches (the same self-batching
//     effect the batch kernel was built for);
//   * head and tail live on separate cache lines (alignas) to keep the two
//     threads from false-sharing the indices.
//
// Memory ordering: the producer's tail.store(release) publishes the slots it
// wrote; the consumer's matching load(acquire) licenses reading them. The
// consumer's head.store(release) both recycles slots *and* publishes every
// sketch mutation it made while processing - which is what makes
// "ring empty (acquire)" a sufficient quiescence test for the pool's drain().
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace memento {

template <typename T>
class spsc_ring {
 public:
  /// @param capacity slot count; rounded up to a power of two, >= 2.
  explicit spsc_ring(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  // --- producer side -------------------------------------------------------

  /// Appends up to n items; returns how many were accepted (0 when full).
  /// Split writes across the physical wrap are handled internally.
  std::size_t try_push(const T* xs, std::size_t n) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity() - static_cast<std::size_t>(tail - head_cache_);
    if (free < n) {  // cached view full enough to matter: refresh from the consumer
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity() - static_cast<std::size_t>(tail - head_cache_);
    }
    const std::size_t take = n < free ? n : free;
    if (take == 0) return 0;
    const std::size_t at = static_cast<std::size_t>(tail) & mask_;
    const std::size_t first = std::min(take, capacity() - at);
    for (std::size_t i = 0; i < first; ++i) buf_[at + i] = xs[i];
    for (std::size_t i = first; i < take; ++i) buf_[i - first] = xs[i];
    tail_.store(tail + take, std::memory_order_release);
    return take;
  }

  // --- consumer side -------------------------------------------------------

  /// Longest contiguous readable run: {pointer, length}. Length 0 == empty.
  /// The span stays valid until the matching pop(); items past the physical
  /// wrap surface on the next call.
  [[nodiscard]] std::pair<const T*, std::size_t> front_span() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {  // cached view empty: refresh from the producer
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return {nullptr, 0};
    }
    const std::size_t at = static_cast<std::size_t>(head) & mask_;
    const std::size_t avail = static_cast<std::size_t>(tail_cache_ - head);
    return {buf_.data() + at, std::min(avail, capacity() - at)};
  }

  /// Releases n consumed items (n <= the last front_span().second). The
  /// release store also publishes everything the consumer wrote while
  /// holding them (see file comment).
  void pop(std::size_t n) {
    assert(n <= static_cast<std::size_t>(tail_cache_ - head_.load(std::memory_order_relaxed)));
    head_.store(head_.load(std::memory_order_relaxed) + n, std::memory_order_release);
  }

  // --- shared --------------------------------------------------------------

  /// True when every pushed item has been popped. Callable from the producer
  /// (or any third thread) as a quiescence test; pairs with the consumer's
  /// release pop (see file comment).
  [[nodiscard]] bool drained() const noexcept {
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
  }

  /// Instantaneous occupancy estimate (relaxed loads; exact from the
  /// producer thread, which owns tail_ - the occupancy/high-water counters
  /// the backpressure layer keeps are producer-side for that reason).
  [[nodiscard]] std::size_t approx_size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_relaxed) -
                                    head_.load(std::memory_order_relaxed));
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
  std::uint64_t tail_cache_ = 0;                    ///< consumer's view of tail_
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer cursor
  std::uint64_t head_cache_ = 0;                    ///< producer's view of head_
};

}  // namespace memento
