// Threaded ingest pool over a sharded_memento: one worker thread per shard,
// one SPSC ring per shard, zero locks on the packet path.
//
// Dataflow:
//
//   caller thread                      worker s (one per shard)
//   ─────────────                      ────────────────────────
//   ingest(burst)                      loop:
//     partition burst by key   ──►       span = ring[s].front_span()
//     push each shard's keys              shard_mut(s).update_batch(span)
//     into ring[s] (SPSC)                 ring[s].pop(|span|)
//
// The caller is the single producer of every ring and worker s is the single
// consumer of ring s AND the only thread that ever mutates shard s - the
// ownership discipline that makes the pool data-race-free with nothing but
// the rings' acquire/release pairs (verified under TSan in CI). Workers
// consume the longest contiguous run available, so bursts self-batch toward
// ring capacity under load - the busier the pipeline, the better the batch
// kernel amortizes.
//
// Queries: call drain() first. It blocks until every ring reports drained()
// (the consumer's release-pop on an empty ring happens-after its last sketch
// mutation, so observing empty with acquire semantics proves the shard state
// is visible to the caller); after that the underlying deterministic
// frontend can be read from the calling thread until the next ingest().
// State after drain() is bit-identical to the deterministic frontend fed the
// same stream - partitioning happens on the caller thread in arrival order,
// so each shard consumes its owned subsequence in order; only the burst
// boundaries differ, which the batch kernel guarantees is unobservable.
//
// Backpressure: full rings follow an explicit policy (shard/backpressure.hpp).
// The default is BLOCK - lossless, the producer waits with idle-progressive
// backoff, which is what the window guarantees require. DROP tail-drops the
// part of a burst that does not fit and counts it, the NIC discipline for
// deployments that prefer timeliness to completeness. Either way the pool
// keeps per-shard ring_stats (enqueued / drops / occupancy high-water mark),
// readable from the producer thread via ingest_stats().
//
// Backoff: all busy-poll loops (idle workers, the blocked producer, drain())
// share util/backoff.hpp's idle-progressive ladder - spin, then PAUSE, then
// yield, then exponential sleeps capped at 128us - so idle shards cost ~0
// CPU over a minutes-long soak and the pool degrades gracefully when threads
// exceed cores.
//
// Rebalancing: rebalance(policy) quiesces the rings (drain barrier) and
// swaps the frontend onto a new bucket -> shard table - the workers pick up
// the replacement shards through the same release-push/acquire-pop pairs
// that carry ordinary bursts, so the publish needs no extra synchronization
// (see the method comment, and shard/rebalance.hpp for the policy).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "shard/backpressure.hpp"
#include "shard/sharded_memento.hpp"
#include "shard/spsc_queue.hpp"
#include "snapshot/reshard.hpp"
#include "util/backoff.hpp"

namespace memento {

template <typename Key = std::uint64_t>
class sharded_memento_pool {
 public:
  using frontend_type = sharded_memento<Key>;
  using heavy_hitter = typename frontend_type::heavy_hitter;

  /// Spawns config.shards workers. @param ring_capacity per-shard ring slots
  /// (rounded up to a power of two); 2^15 keys = 256 KiB per shard default.
  /// @param policy what a full ring does to the producer (see file comment).
  explicit sharded_memento_pool(const shard_config& config, std::size_t ring_capacity = 1u << 15,
                                backpressure_policy policy = backpressure_policy::block)
      : core_(config), scratch_(config.shards), stats_(config.shards), policy_(policy),
        ring_capacity_(ring_capacity) {
    rings_.reserve(config.shards);
    for (std::size_t s = 0; s < config.shards; ++s) {
      rings_.push_back(std::make_unique<spsc_ring<Key>>(ring_capacity));
    }
    spawn_workers(config.shards);
  }

  /// Drains outstanding work, then stops and joins every worker.
  ~sharded_memento_pool() {
    stop_.store(true, std::memory_order_release);
    for (auto& w : workers_) w.join();
  }

  sharded_memento_pool(const sharded_memento_pool&) = delete;
  sharded_memento_pool& operator=(const sharded_memento_pool&) = delete;

  /// Partitions a burst and enqueues each shard's keys in arrival order.
  /// Under the (default) BLOCK policy full rings are revisited round-robin
  /// rather than head-of-line - a slow shard must not keep the other shards'
  /// already-partitioned keys undelivered - and the producer escalates the
  /// idle-backoff ladder only when NO ring accepts anything. Under DROP each
  /// shard gets one offer and the shortfall is counted in its ring_stats.
  void ingest(const Key* xs, std::size_t n) {
    partition_into(scratch_, core_.partitioner(), xs, n);
    if (policy_ == backpressure_policy::drop) {
      for (std::size_t s = 0; s < rings_.size(); ++s) {
        if (!scratch_[s].empty()) {
          offer_burst(*rings_[s], scratch_[s].data(), scratch_[s].size(),
                      backpressure_policy::drop, stats_[s], ingest_backoff_);
        }
      }
      return;
    }
    offsets_.assign(rings_.size(), 0);
    std::size_t remaining = 0;
    for (const auto& buf : scratch_) remaining += buf.size();
    while (remaining > 0) {
      bool progress = false;
      for (std::size_t s = 0; s < rings_.size(); ++s) {
        const std::size_t left = scratch_[s].size() - offsets_[s];
        if (left == 0) continue;
        const std::size_t pushed =
            rings_[s]->try_push(scratch_[s].data() + offsets_[s], left);
        offsets_[s] += pushed;
        remaining -= pushed;
        stats_[s].enqueued += pushed;
        stats_[s].note_occupancy(rings_[s]->approx_size());
        if (pushed > 0) progress = true;
      }
      if (progress) {
        ingest_backoff_.reset();
      } else {
        ingest_backoff_.idle();
      }
    }
    ingest_backoff_.reset();
  }

  void ingest(std::span<const Key> xs) { ingest(xs.data(), xs.size()); }

  /// Blocks until every enqueued packet has been applied to its shard. After
  /// drain() returns (and until the next ingest) the calling thread may read
  /// the frontend - including through the passthroughs below.
  void drain() const {
    idle_backoff backoff;
    for (const auto& ring : rings_) {
      while (!ring->drained()) backoff.idle();
      backoff.reset();
    }
  }

  /// The underlying deterministic frontend. Only valid to read between
  /// drain() and the next ingest() (enforced by discipline, not locks).
  [[nodiscard]] const frontend_type& frontend() const noexcept { return core_; }

  /// Skew-aware rebalance behind the drain barrier: quiesce every ring,
  /// then let `policy` (e.g. coverage_rebalancer) migrate the frontend onto
  /// a better bucket -> shard table and publish it by swapping core_.
  ///
  /// Why this is TSan-clean with no locks added: after drain() observes
  /// every ring empty (acquire), the workers' last sketch mutations
  /// happen-before this thread (their release-pop published them), and an
  /// empty-ring worker touches nothing but its ring's atomics and stop_ -
  /// worker_loop re-resolves its shard reference only AFTER front_span()
  /// returns data, i.e. after the acquire that pairs with the producer's
  /// release-push, which in turn happens after this swap. So the table
  /// publish rides the exact acquire/release pairs the ingest path already
  /// owns. Caller discipline is the same as for queries: call from the
  /// (single) producer thread, not concurrently with ingest().
  ///
  /// Returns true when a migration happened (see
  /// sharded_memento::rebalance for the no-op cases).
  template <typename Policy>
  bool rebalance(const Policy& policy) {
    drain();
    return core_.rebalance(policy);
  }

  // --- control-plane lifecycle hooks (producer thread only, like queries) ---

  /// Elastic N -> M scale: quiesce, reshard the frontend onto `target`
  /// shards through the snapshot transport (window state carried, no stream
  /// replay), then rebuild the lanes - rings, stats, workers - to match.
  /// The worker set is torn down first and respawned after, so no thread
  /// ever observes a half-built geometry; completed ring totals are retired
  /// into the aggregate counters so accounting stays exact across the swap.
  /// False (and no change) when target equals the current count or the
  /// reshard transport refuses the geometry.
  bool rescale(std::size_t target) {
    if (target == 0 || target == core_.num_shards()) return false;
    drain();
    shard_config cfg = core_.config_snapshot();
    cfg.shards = target;
    auto next = snapshot_builder::reshard(core_, cfg);
    if (!next) return false;
    halt_workers();
    core_ = std::move(*next);
    rebuild_lanes(target);
    spawn_workers(target);
    return true;
  }

  /// Replaces the whole frontend (e.g. restoring a checkpoint after a
  /// crash). Same quiesce/teardown/respawn discipline as rescale; the lane
  /// set follows the replacement's shard count.
  void adopt(frontend_type&& replacement) {
    drain();
    halt_workers();
    const std::size_t shards = replacement.num_shards();
    core_ = std::move(replacement);
    rebuild_lanes(shards);
    spawn_workers(shards);
  }

  /// Fault injection: wipes shard s back to an empty sketch (its window,
  /// candidates and stream accounting are lost), as if the shard's process
  /// died and came back blank. Producer thread only, behind the drain
  /// barrier - the worker re-resolves its shard reference per burst, so the
  /// in-place replacement publishes through the next ring push like any
  /// rebalance swap.
  void kill_shard(std::size_t s) {
    drain();
    core_.shard_mut(s) =
        typename frontend_type::sketch_type(frontend_type::shard_config_for(core_.config_snapshot(), s));
  }

  // --- post-drain query passthroughs (each drains first for safety) --------

  [[nodiscard]] double query(const Key& x) const {
    drain();
    return core_.query(x);
  }
  [[nodiscard]] double query_lower(const Key& x) const {
    drain();
    return core_.query_lower(x);
  }
  [[nodiscard]] std::vector<heavy_hitter> heavy_hitters(double theta) const {
    drain();
    return core_.heavy_hitters(theta);
  }
  [[nodiscard]] std::vector<heavy_hitter> top(std::size_t k) const {
    drain();
    return core_.top(k);
  }
  [[nodiscard]] std::uint64_t stream_length() const {
    drain();
    return core_.stream_length();
  }

  [[nodiscard]] std::size_t num_shards() const noexcept { return core_.num_shards(); }

  // --- backpressure accounting ---------------------------------------------

  [[nodiscard]] backpressure_policy policy() const noexcept { return policy_; }

  /// Shard s's producer-side ring accounting (enqueued / drops / occupancy
  /// high-water mark). Owned by the producer thread: read it from there (or
  /// after a drain barrier), like every other producer-side structure here.
  [[nodiscard]] const ring_stats& ingest_stats(std::size_t s) const noexcept {
    return stats_[s];
  }

  /// Total packets tail-dropped across shards (0 under the block policy),
  /// including rings retired by rescale()/adopt().
  [[nodiscard]] std::uint64_t total_drops() const noexcept {
    std::uint64_t d = retired_drops_;
    for (const auto& st : stats_) d += st.drops;
    return d;
  }

  /// Total packets accepted across shards over the pool's whole life,
  /// including rings retired by rescale()/adopt(). With the block policy
  /// this equals packets offered - the exact-accounting anchor the
  /// controller soak pins against stream_length().
  [[nodiscard]] std::uint64_t total_enqueued() const noexcept {
    std::uint64_t e = retired_enqueued_;
    for (const auto& st : stats_) e += st.enqueued;
    return e;
  }

 private:
  /// Stops and joins every worker, leaving the pool ready to respawn.
  void halt_workers() {
    stop_.store(true, std::memory_order_release);
    for (auto& w : workers_) w.join();
    workers_.clear();
    stop_.store(false, std::memory_order_release);
  }

  /// Rebuilds rings/scratch/stats for a new shard count. Only call with the
  /// workers halted and the rings drained; finished per-ring totals retire
  /// into the aggregate counters first.
  void rebuild_lanes(std::size_t shards) {
    for (const auto& st : stats_) {
      retired_enqueued_ += st.enqueued;
      retired_drops_ += st.drops;
    }
    rings_.clear();
    rings_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      rings_.push_back(std::make_unique<spsc_ring<Key>>(ring_capacity_));
    }
    scratch_.assign(shards, {});
    offsets_.clear();
    stats_.assign(shards, ring_stats{});
  }

  void spawn_workers(std::size_t shards) {
    workers_.reserve(shards);
    try {
      for (std::size_t s = 0; s < shards; ++s) {
        workers_.emplace_back([this, s] { worker_loop(s); });
      }
    } catch (...) {
      // Thread spawn failed partway: stop and join what exists, or the
      // vector of joinable threads would std::terminate during unwinding.
      stop_.store(true, std::memory_order_release);
      for (auto& w : workers_) w.join();
      throw;
    }
  }

  void worker_loop(std::size_t s) {
    spsc_ring<Key>& ring = *rings_[s];
    idle_backoff backoff;
    for (;;) {
      const auto [data, n] = ring.front_span();
      if (n == 0) {
        // Check stop only when empty: enqueued work is always finished, so
        // the destructor doubles as a drain.
        if (stop_.load(std::memory_order_acquire)) return;
        backoff.idle();
        continue;
      }
      backoff.reset();
      // Resolve the shard reference AFTER observing data (acquire): the
      // producer may have swapped core_ during a rebalance() while this
      // ring was drained, and the release-push of the next burst is what
      // publishes the replacement shards. Caching the reference across
      // idle periods (as this loop once did) would dangle after the swap.
      core_.shard_mut(s).update_batch(data, n);
      ring.pop(n);
    }
  }

  frontend_type core_;
  std::vector<std::unique_ptr<spsc_ring<Key>>> rings_;
  std::vector<std::vector<Key>> scratch_;  ///< producer-side burst partitions
  std::vector<std::size_t> offsets_;       ///< per-shard delivered prefix of scratch_
  std::vector<ring_stats> stats_;          ///< per-shard producer-side accounting
  backpressure_policy policy_ = backpressure_policy::block;
  std::size_t ring_capacity_;              ///< per-shard ring slots (for lane rebuilds)
  std::uint64_t retired_enqueued_ = 0;     ///< totals from rings replaced by rescale/adopt
  std::uint64_t retired_drops_ = 0;
  idle_backoff ingest_backoff_;            ///< producer's full-ring wait ladder
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace memento
