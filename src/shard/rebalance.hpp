// Skew-aware elastic rebalancing: the placement policy that closes the loop
// PR 3 opened and PR 4 enabled.
//
// PR 3's sharded frontend documents a systematic phase-drift penalty when the
// keyspace is skewed: a shard that owns an elephant flow is overloaded, its
// window covers fewer global packets (window_coverage(s) sinks below the
// ideal W), and borderline heavy hitters near a detection bar can slip.
// PR 4's snapshot_builder::reshard built the state-transport mechanism -
// re-bucket every piece of window state onto a new routing function without
// replaying the stream, moving estimates by at most one threshold unit per
// key. What was missing is the POLICY: something that looks at the live load
// picture and decides where the keyspace should go. This file is that
// policy.
//
// The mechanism stack, bottom to top:
//
//   shard_partitioner TABLE mode   key -> bucket (mix64 + fastrange64 over
//   (partitioner.hpp)              B = 64*N buckets) -> shard via a compact
//                                  assignment table; the uniform table routes
//                                  bit-identically to plain hashing.
//
//   snapshot_builder::reshard      moves a frontend's window state onto a
//   (snapshot/reshard.hpp)         new table: overflow counts carry exactly,
//                                  queue ages re-ring, in-frame counters
//                                  re-bucket (<= one threshold unit of
//                                  estimate movement per key - PR 4's bound).
//
//   coverage_rebalancer (here)     reads per-shard load/coverage and
//                                  per-bucket mass sampled from the live
//                                  candidate sets, plans a better table,
//                                  and drives the reshard.
//
// Load model. The policy needs per-BUCKET load, but the sketches only track
// per-FLOW state - and only for flows heavy enough to be candidates. That is
// exactly enough: per-bucket load splits into
//
//   * elephant mass: for each candidate flow x of shard s, the attributable
//     window mass max(0, query(x) - miss_baseline()) - the one-sided
//     estimate minus the 2T/tau slack every estimate carries - scaled by the
//     shard's realized update load n_s / W_s and credited to bucket_of(x).
//     Flows big enough to distort placement are by construction candidates
//     (anything above one block's worth of packets overflows), so nothing
//     that matters escapes this term.
//   * mouse residue: whatever share of n_s the candidates do not explain is
//     spread evenly over the buckets shard s currently owns - hashed mouse
//     traffic IS uniform per bucket, that is the partitioner's job.
//
// Placement. Buckets are ordered heaviest-first and greedily assigned to the
// least-loaded shard (the classic LPT makespan heuristic), with a
// STICKINESS band: a bucket stays with its current owner unless that owner
// is more than `headroom * ideal` above the currently lightest shard. The
// band is what bounds migration: on balanced traffic every bucket stays
// home, the planned table equals the current one, and rebalance() is a
// no-op - which is also why the uniform-table differential guarantees
// survive (nothing moves until skew is real). The whole plan is
// deterministic (stable ordering, index tie-breaks), so two replicas of the
// same state plan the same table - the property the pool differential tests
// lean on.
//
// Trigger. plan() returns nullopt (and rebalance() false) unless some
// shard's update load exceeds (1 + min_imbalance) of the ideal 1/N share -
// equivalently, unless some shard's window_coverage(s) has sunk below
// W / (1 + min_imbalance). Rebalancing a balanced deployment would churn
// sampler timelines for nothing.
//
// What a migration costs: the reshard transport rebuilds shard state in
// canonical form - per-key estimates move by at most one threshold unit
// (PR 4's bound, re-pinned for the weighted path by
// tests/rebalance_test.cpp), per-shard window clocks restart at the old
// deployment's average phase, and sampler sequences restart (continuation is
// deterministic but not bit-identical to any unrebalanced timeline - there
// is no such timeline). heavy_hitters recall across the move is pinned by
// the same tests; docs/ACCURACY.md derives the coverage-recovery claim.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <numeric>
#include <optional>
#include <span>
#include <vector>

#include "shard/partitioner.hpp"
#include "shard/sharded_memento.hpp"
#include "snapshot/reshard.hpp"

namespace memento {

/// max/min ratio of the per-shard packet counts accumulated since `since`
/// (per-shard stream lengths recorded earlier; empty = since construction):
/// the realized update-load balance over an ingest segment. 1.0 is perfect;
/// +infinity when a shard received nothing - a starved shard is the WORST
/// imbalance, never balance. Shared by the rebalance tests, the fig5
/// rebalance bench, and any operator dashboard.
template <typename Front>
[[nodiscard]] double shard_load_ratio(const Front& front,
                                      std::span<const std::uint64_t> since = {}) {
  double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
  for (std::size_t s = 0; s < front.num_shards(); ++s) {
    const std::uint64_t base = since.empty() ? 0 : since[s];
    const double d = static_cast<double>(front.shard(s).stream_length() - base);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return lo > 0.0 ? hi / lo : std::numeric_limits<double>::infinity();
}

/// max/min spread of window_coverage() across shards: 1.0 when every
/// shard's window spans the same amount of global time, growing with the
/// systematic phase drift the rebalancer exists to remove.
template <typename Front>
[[nodiscard]] double coverage_spread(const Front& front) {
  double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
  for (std::size_t s = 0; s < front.num_shards(); ++s) {
    const double c = front.window_coverage(s);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  return hi / lo;
}

/// Tuning knobs for coverage_rebalancer. The defaults are deliberately
/// conservative: act only on a clear imbalance, keep buckets home inside a
/// small band so balanced deployments never churn.
struct rebalance_config {
  /// Plan only when the worst shard's load exceeds (1 + min_imbalance) of
  /// the ideal 1/N share - i.e. its window coverage sank below
  /// W / (1 + min_imbalance).
  double min_imbalance = 0.10;
  /// Stickiness: a bucket stays with its current owner while that owner is
  /// within headroom * ideal of the lightest shard.
  double headroom = 0.05;
};

/// The skew-aware placement policy: plan() reads the live frontend and
/// proposes a bucket -> shard table; rebalance() plans and migrates through
/// the snapshot reshard path. Stateless apart from its config; all methods
/// are deterministic functions of the frontend's observable state.
class coverage_rebalancer {
 public:
  explicit coverage_rebalancer(rebalance_config config = {}) : config_(config) {}

  /// Per-bucket update-load estimate in packets (elephant mass from the live
  /// candidate sets + evenly spread mouse residue; see file comment).
  /// Normalized so each shard's modeled total equals its REALIZED load
  /// n_s = stream_length(s): one-sided estimates over-attribute under
  /// Space-Saving churn (low-skew mixes make every candidate look heavy),
  /// and without the normalization that churn would read as phantom
  /// imbalance. With it, the per-shard totals are exact and only the
  /// within-shard bucket breakdown leans on the (noisy, elephant-dominated)
  /// candidate signal - which is the part that matters for placement.
  /// Exposed for introspection, tests and the fig5 rebalance bench.
  template <typename Front>
  [[nodiscard]] static std::vector<double> bucket_loads(const Front& front) {
    const auto& part = front.partitioner();
    const std::size_t buckets = part.buckets();
    std::vector<double> load(buckets, 0.0);
    std::vector<std::size_t> owned(front.num_shards(), 0);
    for (std::size_t b = 0; b < buckets; ++b) ++owned[part.shard_of_bucket(b)];

    std::vector<double> residual(front.num_shards(), 0.0);
    std::vector<std::pair<std::size_t, double>> attributed;  // (bucket, window share)
    for (std::size_t s = 0; s < front.num_shards(); ++s) {
      const auto& shard = front.shard(s);
      const auto n_s = static_cast<double>(shard.stream_length());
      if (n_s <= 0.0) continue;
      // Estimates span the previous full frame PLUS the current partial one
      // (memento.hpp: the overflow ring retires entries k block rotations
      // after insertion), so the window share each estimate explains is
      // est / (W + M), not est / W. Dividing by W alone inflates every
      // share by up to 2x and can push `explained` past 1 on a hot shard -
      // which zeroes the mouse residue and leaves its light buckets
      // weightless (they would never migrate).
      const auto w_s = static_cast<double>(shard.window_size() + shard.window_phase());
      attributed.clear();
      double explained = 0.0;
      // The frontend picks the attribution units: flat fronts visit candidate
      // flows, hierarchical fronts visit ROUTE-pattern prefixes (which
      // partition the stream - each packet has exactly one), so a flow is
      // never credited once per lattice pattern. Bucket lookup goes through
      // the frontend too; keys with no single owning bucket fall through to
      // the mouse residue. Raw estimates, deliberately: for the flows heavy
      // enough to steer placement the +2T slack cancels the in-frame
      // truncation almost exactly, while subtracting the miss floor would
      // shift real elephant mass into the evenly-spread residue and
      // over-weight the hot shard's mouse buckets. Churn-inflated light
      // candidates can over-explain; the 1/explained normalization below
      // caps the damage, and balanced deployments never reach plan() at all.
      front.for_each_attributable(s, [&](const auto& key, double est) {
        const std::size_t b = front.bucket_of(key);
        if (b >= buckets) return;
        const double share = est / w_s;
        attributed.emplace_back(b, share);
        explained += share;
      });
      const double scale = explained > 1.0 ? 1.0 / explained : 1.0;
      for (const auto& [b, share] : attributed) load[b] += share * scale * n_s;
      residual[s] = n_s * std::max(0.0, 1.0 - explained);
    }
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::size_t s = part.shard_of_bucket(b);
      if (owned[s] > 0) load[b] += residual[s] / static_cast<double>(owned[s]);
    }
    return load;
  }

  /// Plans a replacement table, or nullopt when the deployment is already
  /// balanced (trigger not met, or the sticky plan equals the current
  /// assignment). Pure: does not touch the frontend.
  template <typename Front>
  [[nodiscard]] std::optional<shard_table> plan(const Front& front) const {
    const auto& part = front.partitioner();
    const std::size_t shards = front.num_shards();
    const std::size_t buckets = part.buckets();
    if (shards < 2) return std::nullopt;

    const std::vector<double> load = bucket_loads(front);
    std::vector<double> current(shards, 0.0);
    for (std::size_t b = 0; b < buckets; ++b) current[part.shard_of_bucket(b)] += load[b];
    const double total = std::accumulate(current.begin(), current.end(), 0.0);
    if (total <= 0.0) return std::nullopt;
    const double ideal = total / static_cast<double>(shards);
    const double worst = *std::max_element(current.begin(), current.end());
    if (worst <= (1.0 + config_.min_imbalance) * ideal) return std::nullopt;

    // Heaviest-first, index tie-break: deterministic for identical state.
    std::vector<std::size_t> order(buckets);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return load[a] != load[b] ? load[a] > load[b] : a < b;
    });

    shard_table next;
    next.to_shard.resize(buckets);
    std::vector<double> assigned(shards, 0.0);
    const double band = config_.headroom * ideal;
    for (const std::size_t b : order) {
      const std::size_t home = part.shard_of_bucket(b);
      std::size_t lightest = 0;
      for (std::size_t s = 1; s < shards; ++s) {
        if (assigned[s] < assigned[lightest]) lightest = s;
      }
      const std::size_t pick = assigned[home] <= assigned[lightest] + band ? home : lightest;
      next.to_shard[b] = static_cast<std::uint32_t>(pick);
      assigned[pick] += load[b];
    }

    // A plan identical to the live routing (hash mode == the uniform table)
    // is a no-op; migrating onto it would churn timelines for nothing.
    const shard_table& live = part.table();
    if (live.to_shard.empty()) {
      if (next.is_uniform(shards)) return std::nullopt;
    } else if (next == live) {
      return std::nullopt;
    }
    return next;
  }

  /// Plan + migrate + swap: replaces `front` with a frontend routing through
  /// the planned table, its window state carried over by
  /// snapshot_builder::reshard (no stream replay, <= one threshold unit of
  /// estimate movement per key). True when a migration happened.
  template <typename Front>
  bool rebalance(Front& front) const {
    const auto table = plan(front);
    if (!table) return false;
    auto next = snapshot_builder::reshard(front, front.config_snapshot(), *table);
    if (!next) return false;
    front = std::move(*next);
    return true;
  }

  [[nodiscard]] const rebalance_config& config() const noexcept { return config_; }

 private:
  rebalance_config config_;
};

}  // namespace memento
