// Keyspace partitioner for the sharded Memento frontend.
//
// Sharding Memento across cores is a *keyspace* partition, not a packet
// spray: every packet of a flow must land on the same shard, or no shard
// sees the flow's full window frequency and the merged answers stop being
// one-sided. The partitioner is therefore a pure function of the flow key -
// deterministic across calls, processes, and machines for a given shard
// count - and the whole frontend inherits replayability from it.
//
// Hashing reuses the mix64 avalanche that flat_hash builds its buckets from
// (util/random.hpp), with two decorrelation twists:
//   * a fixed salt is XORed into the raw std::hash value *before* the
//     avalanche, so the partitioner's bit-mixing trajectory differs from
//     flat_hash::bucket_of even though both finish with mix64;
//   * the shard index is taken from the *high* bits via fastrange64
//     (multiply-shift), while flat_hash masks the low bits - so even with
//     an identical avalanche the two selections would stay independent.
// Without this, keys colliding into one shard could systematically collide
// inside that shard's counter index too, concentrating probe chains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "util/random.hpp"

namespace memento {

/// Per-shard seed derivation shared by every sharded frontend: the base
/// seed XOR-folded with a per-shard odd multiple of phi64, then avalanched,
/// so shards never sample in lockstep. One definition on purpose -
/// differential tests reconstruct standalone per-shard references from it.
[[nodiscard]] constexpr std::uint64_t shard_seed(std::uint64_t base, std::size_t shard) noexcept {
  return mix64(base ^ (0x9e3779b97f4a7c15ULL * (shard + 1)));
}

/// Even split of a global budget (window packets, counters) across shards:
/// ceil(total / shards), floored at 1 so degenerate budgets stay legal.
[[nodiscard]] constexpr std::uint64_t shard_share(std::uint64_t total,
                                                 std::size_t shards) noexcept {
  const std::uint64_t n = shards > 0 ? shards : 1;
  const std::uint64_t share = (total + n - 1) / n;
  return share > 0 ? share : 1;
}

/// The burst partition pass shared by every sharded frontend: reset the
/// per-shard scratch buffers (capacity retained) and append each item to its
/// owner's buffer, preserving arrival order within each shard. shard_of is
/// any item -> shard index function (a shard_partitioner, or a routing-key
/// composition as in the hierarchical frontend).
template <typename Item, typename ShardOf>
void partition_into(std::vector<std::vector<Item>>& scratch, const ShardOf& shard_of,
                    const Item* items, std::size_t n) {
  for (auto& buf : scratch) buf.clear();
  for (std::size_t i = 0; i < n; ++i) scratch[shard_of(items[i])].push_back(items[i]);
}

template <typename Key, typename Hash = std::hash<Key>>
class shard_partitioner {
 public:
  /// @param shards number of shards (>= 1).
  explicit shard_partitioner(std::size_t shards) : shards_(shards) {
    if (shards == 0) throw std::invalid_argument("shard_partitioner: shards must be >= 1");
  }

  /// Owning shard of x, in [0, shards()). Pure and O(1).
  [[nodiscard]] std::size_t operator()(const Key& x) const noexcept {
    return static_cast<std::size_t>(
        fastrange64(mix64(static_cast<std::uint64_t>(Hash{}(x)) ^ kSalt), shards_));
  }

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

 private:
  /// Arbitrary odd constant (phi64 with halves swapped); decorrelates the
  /// partition hash from flat_hash's bucket hash of the same key.
  static constexpr std::uint64_t kSalt = 0x7f4a7c159e3779b9ULL;

  std::uint64_t shards_;
};

}  // namespace memento
