// Keyspace partitioner for the sharded Memento frontend.
//
// Sharding Memento across cores is a *keyspace* partition, not a packet
// spray: every packet of a flow must land on the same shard, or no shard
// sees the flow's full window frequency and the merged answers stop being
// one-sided. The partitioner is therefore a pure function of the flow key -
// deterministic across calls, processes, and machines for a given shard
// count - and the whole frontend inherits replayability from it.
//
// Hashing reuses the mix64 avalanche that flat_hash builds its buckets from
// (util/random.hpp), with two decorrelation twists:
//   * a fixed salt is XORed into the raw std::hash value *before* the
//     avalanche, so the partitioner's bit-mixing trajectory differs from
//     flat_hash::bucket_of even though both finish with mix64;
//   * the shard index is taken from the *high* bits via fastrange64
//     (multiply-shift), while flat_hash masks the low bits - so even with
//     an identical avalanche the two selections would stay independent.
// Without this, keys colliding into one shard could systematically collide
// inside that shard's counter index too, concentrating probe chains.
//
// Two routing modes share that hash:
//
//   * HASH mode (the default): shard = fastrange64(mix64(h ^ salt), N).
//     Pure, stateless, uniform in expectation - but blind to keyspace skew:
//     a flow carrying 20% of traffic overloads whichever shard its hash
//     picked, forever.
//   * TABLE mode (skew-aware): the key is first reduced to one of B = c*N
//     BUCKETS (fastrange64 over the same avalanche), and a compact
//     bucket -> shard assignment table picks the shard. The table is the
//     rebalancer's knob (shard/rebalance.hpp): hot buckets migrate to cold
//     shards while every key's bucket stays fixed, so migrating a bucket
//     moves a deterministic, enumerable slice of the keyspace.
//
// The two modes agree bit-for-bit on the UNIFORM table (bucket b -> shard
// b/c): fastrange64 is floor(h*n / 2^64), and with B = c*N,
//
//     floor(fastrange64(h, c*N) / c) == fastrange64(h, N)
//
// by the nested-floor identity floor(floor(x)/c) = floor(x/c). That is why
// shard_table::uniform exists and why a table-mode frontend with a uniform
// table is differentially bit-identical to a hash-mode one (pinned by
// tests/rebalance_test.cpp) - the weighted router costs one extra L1-resident
// table read and otherwise changes nothing until a policy actually skews the
// assignment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/random.hpp"

namespace memento {

/// Per-shard seed derivation shared by every sharded frontend: the base
/// seed XOR-folded with a per-shard odd multiple of phi64, then avalanched,
/// so shards never sample in lockstep. One definition on purpose -
/// differential tests reconstruct standalone per-shard references from it.
[[nodiscard]] constexpr std::uint64_t shard_seed(std::uint64_t base, std::size_t shard) noexcept {
  return mix64(base ^ (0x9e3779b97f4a7c15ULL * (shard + 1)));
}

/// Even split of a global budget (window packets, counters) across shards:
/// ceil(total / shards), floored at 1 so degenerate budgets stay legal.
[[nodiscard]] constexpr std::uint64_t shard_share(std::uint64_t total,
                                                 std::size_t shards) noexcept {
  const std::uint64_t n = shards > 0 ? shards : 1;
  const std::uint64_t share = (total + n - 1) / n;
  return share > 0 ? share : 1;
}

/// The burst partition pass shared by every sharded frontend: reset the
/// per-shard scratch buffers (capacity retained) and append each item to its
/// owner's buffer, preserving arrival order within each shard. shard_of is
/// any item -> shard index function (a shard_partitioner, or a routing-key
/// composition as in the hierarchical frontend).
template <typename Item, typename ShardOf>
void partition_into(std::vector<std::vector<Item>>& scratch, const ShardOf& shard_of,
                    const Item* items, std::size_t n) {
  for (auto& buf : scratch) buf.clear();
  for (std::size_t i = 0; i < n; ++i) scratch[shard_of(items[i])].push_back(items[i]);
}

/// Buckets per shard in the two-level router: the rebalancer's placement
/// granularity. 64 buckets/shard keeps the heaviest single migration unit at
/// ~1.6% of a balanced shard's cold load (one flow can still dominate its
/// bucket - an unsplittable elephant is the placement floor either way) while
/// the whole table for an 8-shard box is 512 entries, L1-resident.
inline constexpr std::size_t kBucketsPerShard = 64;

/// Compact bucket -> shard assignment table for the partitioner's TABLE
/// mode. Invariants (enforced by valid_for / the consumers): non-empty, a
/// multiple of the shard count (so the uniform layout exists), every entry
/// in [0, shards).
struct shard_table {
  std::vector<std::uint32_t> to_shard;  ///< bucket b is owned by shard to_shard[b]

  [[nodiscard]] std::size_t buckets() const noexcept { return to_shard.size(); }

  /// The identity layout: bucket b -> shard b / (B/N), which routes
  /// bit-identically to HASH mode (see file comment).
  [[nodiscard]] static shard_table uniform(std::size_t shards,
                                           std::size_t buckets_per_shard = kBucketsPerShard) {
    shard_table t;
    t.to_shard.resize(shards * buckets_per_shard);
    for (std::size_t b = 0; b < t.to_shard.size(); ++b) {
      t.to_shard[b] = static_cast<std::uint32_t>(b / buckets_per_shard);
    }
    return t;
  }

  /// Structural validity for a given shard count: the conditions every
  /// consumer (ctor, wire restore) checks before routing through the table.
  [[nodiscard]] bool valid_for(std::size_t shards) const noexcept {
    if (to_shard.empty() || shards == 0 || to_shard.size() % shards != 0) return false;
    for (const std::uint32_t s : to_shard) {
      if (s >= shards) return false;
    }
    return true;
  }

  /// True when the table is exactly the uniform layout for `shards` - i.e.
  /// routing through it is bit-identical to HASH mode.
  [[nodiscard]] bool is_uniform(std::size_t shards) const noexcept {
    if (!valid_for(shards)) return false;
    const std::size_t per = to_shard.size() / shards;
    for (std::size_t b = 0; b < to_shard.size(); ++b) {
      if (to_shard[b] != b / per) return false;
    }
    return true;
  }

  [[nodiscard]] bool operator==(const shard_table&) const = default;
};

template <typename Key, typename Hash = std::hash<Key>>
class shard_partitioner {
 public:
  /// HASH mode. @param shards number of shards (>= 1).
  explicit shard_partitioner(std::size_t shards) : shards_(shards) {
    if (shards == 0) throw std::invalid_argument("shard_partitioner: shards must be >= 1");
    buckets_ = shards_ * kBucketsPerShard;
  }

  /// TABLE mode: routes key -> bucket -> table[bucket]. The table must be
  /// valid_for(shards); a uniform table routes bit-identically to HASH mode.
  shard_partitioner(std::size_t shards, shard_table table)
      : shards_(shards), table_(std::move(table)) {
    if (shards == 0) throw std::invalid_argument("shard_partitioner: shards must be >= 1");
    if (!table_.valid_for(shards)) {
      throw std::invalid_argument("shard_partitioner: table does not fit the shard count");
    }
    buckets_ = table_.buckets();
  }

  /// Owning shard of x, in [0, shards()). Pure and O(1) in both modes.
  [[nodiscard]] std::size_t operator()(const Key& x) const noexcept {
    const std::uint64_t h = mix64(static_cast<std::uint64_t>(Hash{}(x)) ^ kSalt);
    if (table_.to_shard.empty()) {
      return static_cast<std::size_t>(fastrange64(h, shards_));
    }
    return table_.to_shard[static_cast<std::size_t>(fastrange64(h, buckets_))];
  }

  /// The key's bucket in [0, buckets()): the migration unit the rebalancer
  /// plans over. Defined in both modes (HASH mode uses the default bucket
  /// count), so a policy can plan a first table from a hash-mode frontend.
  [[nodiscard]] std::size_t bucket_of(const Key& x) const noexcept {
    const std::uint64_t h = mix64(static_cast<std::uint64_t>(Hash{}(x)) ^ kSalt);
    return static_cast<std::size_t>(fastrange64(h, buckets_));
  }

  /// Owning shard of a bucket (bucket_of/shard composition without a key).
  [[nodiscard]] std::size_t shard_of_bucket(std::size_t bucket) const noexcept {
    if (table_.to_shard.empty()) return bucket / (buckets_ / shards_);
    return table_.to_shard[bucket];
  }

  [[nodiscard]] std::size_t shards() const noexcept { return static_cast<std::size_t>(shards_); }
  [[nodiscard]] std::size_t buckets() const noexcept { return static_cast<std::size_t>(buckets_); }
  /// Empty in HASH mode; the live assignment in TABLE mode.
  [[nodiscard]] const shard_table& table() const noexcept { return table_; }
  [[nodiscard]] bool weighted() const noexcept { return !table_.to_shard.empty(); }

 private:
  /// Arbitrary odd constant (phi64 with halves swapped); decorrelates the
  /// partition hash from flat_hash's bucket hash of the same key.
  static constexpr std::uint64_t kSalt = 0x7f4a7c159e3779b9ULL;

  std::uint64_t shards_;
  std::uint64_t buckets_;
  shard_table table_;  ///< empty => HASH mode
};

}  // namespace memento
