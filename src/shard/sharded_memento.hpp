// Sharded Memento frontend: per-core keyspace partitioning with mergeable
// window queries.
//
// A single Memento instance tops out at one core's update rate (~30 Mpps
// batched). The next multiplier is horizontal: hash-partition the *flow
// keyspace* across N independent memento_sketch instances and run one per
// core. Because the partition is by key (shard_partitioner), every packet of
// a flow lands on the same shard, so
//
//     f_global(x) == f_shard_of(x)(x)
//
// and a point query routes to one shard with no combination step. Set
// queries (heavy_hitters, top) merge by *concatenation*: the per-shard
// candidate sets are disjoint, so the merge is gather + global-threshold
// filter + sort - no cross-shard summation, no double counting. This is the
// classic mergeable-summary route to multicore sketching (cf. the sliding-
// window heavy-hitters literature in PAPERS.md).
//
// Window semantics and phase skew: each shard keeps its own packet clock and
// a window of ceil(W/N) of *its own* packets (per-shard counters, the second
// option of the design space; lock-step clocks driven by a shared counter
// would serialize every update on one atomic and forfeit the scaling this
// subsystem exists for). Shard s's window therefore spans roughly
// (W/N) / rho_s global packets, where rho_s is its share of the stream -
// this "window coverage" (window_coverage(s)) is the phase-drift bound, and
// it has two components:
//
//   * statistical: hashed partitioning makes n_s ~ Binomial(n, 1/N), so
//     rho_s = 1/N * (1 + O(sqrt(N/n))) - a ~2% coverage wobble at
//     W = 2^20, N = 8, vanishing as the stream grows;
//   * systematic: keyspace skew. A shard that owns a dominant flow is
//     overloaded (rho_s up to 1/N + s_max, with s_max the heaviest flow's
//     traffic share), so its window spans *fewer* global packets - e.g. a
//     flow carrying 20% of traffic on a 4-shard deployment compresses its
//     shard's coverage to (1/4)/(0.25 + 0.20 * 3/4) = ~0.62 W. Underloaded
//     shards symmetrically cover more (older packets linger).
//
// Point queries are strictly one-sided with respect to the OWNING SHARD'S
// window (that is the guarantee Memento gives on the stream it saw); with
// respect to the global last-W window they carry the coverage factor as a
// multiplicative fuzz, so borderline flows near a detection bar can shift
// by ~(1 - coverage) * frequency in either direction. Deployments where
// s_max is small (backbone-like mixes) get coverage ~1 everywhere and can
// ignore this; deployments with elephants should monitor stream_skew() /
// window_coverage() and call rebalance() with a placement policy
// (shard/rebalance.hpp): the partitioner's TABLE mode re-routes hot hash
// buckets onto cold shards through the snapshot reshard path, recovering
// coverage without replaying the stream (docs/ACCURACY.md derives the
// model; tests/rebalance_test.cpp pins the recovery). Both drift components
// and their recall/precision impact are pinned by tests/shard_test.cpp
// (PhaseDrift*, ShardedSkew*).
//
// Error accounting: the shard geometry divides both W and k by N, so the
// per-shard overflow threshold T = W/N * tau / (k/N) equals the single-
// instance threshold and the absolute estimate width 4*T/tau (= epsilon_a * W
// for k = 4/epsilon_a) is *unchanged* - a sharded deployment answers with
// the same packet-unit error bars as one big instance, it just sustains N
// times the update rate.
//
// This class is the single-threaded deterministic frontend: update routes to
// the owning shard inline; update_batch partitions the burst into per-shard
// scratch buffers and feeds each shard one span via update_batch (the PR 2
// batch kernel is exactly the per-shard loop body). Shard s's state is
// bit-identical to a standalone memento_sketch configured with
// shard_config_for(config, s) and fed the subsequence of keys it owns - the
// differential tests assert this, and it is what makes the threaded pool
// (shard_pool.hpp) testable: same partition, same spans, same state.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/detection_model.hpp"
#include "core/memento.hpp"
#include "shard/partitioner.hpp"
#include "util/compress.hpp"
#include "util/wire.hpp"

namespace memento {

/// Construction parameters for `sharded_memento`. Window and counters are
/// GLOBAL budgets, divided evenly across shards (each rounded up, so the
/// effective global window is >= the request, as with memento_config).
struct shard_config {
  std::uint64_t window_size = 1 << 20;  ///< W across all shards, in packets
  std::size_t counters = 512;           ///< total Space-Saving counters across shards
  double tau = 1.0;                     ///< Full-update probability (per shard)
  std::uint64_t seed = 1;               ///< base seed; shards derive distinct streams
  std::size_t shards = 1;               ///< N: number of partitions (one per core)
};

template <typename Key = std::uint64_t>
class sharded_memento {
 public:
  using sketch_type = memento_sketch<Key>;
  using heavy_hitter = typename sketch_type::heavy_hitter;

  explicit sharded_memento(const shard_config& config)
      : sharded_memento(config, shard_partitioner<Key>(config.shards)) {}

  /// Weighted (TABLE-mode) frontend: routes through `table` (see
  /// partitioner.hpp). A uniform table is bit-identical to the plain ctor;
  /// a skewed one is what the rebalancer installs. Throws on a table that
  /// does not fit config.shards.
  sharded_memento(const shard_config& config, shard_table table)
      : sharded_memento(config, shard_partitioner<Key>(config.shards, std::move(table))) {}

  /// The memento_config shard s runs with: W and k divided by N (rounded up,
  /// never below 1) and a per-shard seed decorrelated via mix64, so shards
  /// do not sample in lockstep. Exposed so differential tests (and any
  /// distributed deployment that pins shards to processes) can construct
  /// bit-identical standalone references.
  [[nodiscard]] static memento_config shard_config_for(const shard_config& config,
                                                       std::size_t shard) {
    memento_config c;
    c.window_size = shard_share(config.window_size, config.shards);
    c.counters = static_cast<std::size_t>(shard_share(config.counters, config.shards));
    c.tau = config.tau;
    c.seed = shard_seed(config.seed, shard);
    return c;
  }

  /// Owning shard of x (pure; stable for the lifetime of the frontend).
  [[nodiscard]] std::size_t shard_of(const Key& x) const noexcept { return part_(x); }

  /// The key's routing bucket - the rebalancer's migration unit. Flat
  /// frontends route by the key itself, so every key has an owning bucket.
  [[nodiscard]] std::size_t bucket_of(const Key& x) const noexcept {
    return part_.bucket_of(x);
  }

  /// Attribution walk for the rebalancer's per-bucket load model
  /// (shard/rebalance.hpp): for a flat frontend every candidate flow is its
  /// own routable unit, so this is exactly shard s's candidate set.
  template <typename Fn>
  void for_each_attributable(std::size_t s, Fn&& fn) const {
    shards_[s].for_each_candidate(std::forward<Fn>(fn));
  }

  /// Routes one packet to its owning shard. O(1).
  void update(const Key& x) { shards_[part_(x)].update(x); }

  /// Burst ingest: partitions the span into per-shard scratch buffers (one
  /// hash + append per key, order-preserving within each shard), then feeds
  /// each shard its keys through the batch kernel. Equivalent to n routed
  /// update() calls except that shard sampling streams interleave
  /// differently; equal to feeding each shard its owned subsequence.
  void update_batch(const Key* xs, std::size_t n) {
    if (shards_.size() == 1) {  // no partition pass needed
      shards_[0].update_batch(xs, n);
      return;
    }
    partition_into(scratch_, part_, xs, n);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!scratch_[s].empty()) shards_[s].update_batch(scratch_[s].data(), scratch_[s].size());
    }
  }

  void update_batch(std::span<const Key> xs) { update_batch(xs.data(), xs.size()); }

  // --- queries (route to the owning shard; see file comment) ---------------

  [[nodiscard]] double query(const Key& x) const { return shards_[part_(x)].query(x); }
  [[nodiscard]] double query_lower(const Key& x) const {
    return shards_[part_(x)].query_lower(x);
  }
  [[nodiscard]] double query_midpoint(const Key& x) const {
    return shards_[part_(x)].query_midpoint(x);
  }

  /// Worst-case width of the [lower, upper] interval - identical for every
  /// shard by construction (same T, same tau), so the global width is the
  /// per-shard width.
  [[nodiscard]] double estimate_width() const noexcept { return shards_[0].estimate_width(); }

  /// All window heavy hitters at threshold theta (fraction of the GLOBAL
  /// window): gather each shard's candidates through the no-copy hook,
  /// filter at theta * window_size(), sort by estimate. Because the
  /// keyspace is partitioned, this equals the concatenation of per-shard
  /// heavy_hitters at the same absolute bar.
  [[nodiscard]] std::vector<heavy_hitter> heavy_hitters(double theta) const {
    std::vector<heavy_hitter> out;
    out.reserve(candidate_count());
    const double bar = theta * static_cast<double>(window_size());
    for (const auto& shard : shards_) {
      shard.for_each_candidate([&](const Key& key, double est) {
        if (est >= bar) out.push_back({key, est});
      });
    }
    std::sort(out.begin(), out.end(),
              [](const heavy_hitter& a, const heavy_hitter& b) { return a.estimate > b.estimate; });
    return out;
  }

  /// heavy_hitters() with the coverage-scaled per-shard bars of the
  /// ACCURACY.md drift model: shard s's candidates are admitted at
  /// theta * coverage(s) (saturated; detection::coverage_scaled_bar) instead
  /// of theta * W, so borderline hitters on an overloaded shard - whose
  /// window spans fewer global packets than nominal - stop flickering out.
  /// Reported estimates are re-centered onto the global window by the same
  /// factor, keeping the theta-cut and the printed numbers consistent.
  [[nodiscard]] std::vector<heavy_hitter> heavy_hitters_coverage_scaled(double theta) const {
    std::vector<heavy_hitter> out;
    out.reserve(candidate_count());
    const double w = static_cast<double>(window_size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const double scale = detection::coverage_scale(w, window_coverage(s));
      const double bar = theta * w / scale;
      shards_[s].for_each_candidate([&](const Key& key, double est) {
        if (est >= bar) out.push_back({key, est * scale});
      });
    }
    std::sort(out.begin(), out.end(),
              [](const heavy_hitter& a, const heavy_hitter& b) { return a.estimate > b.estimate; });
    return out;
  }

  /// The k flows with the largest window estimates across all shards. The
  /// global top-k is contained in the union of per-shard candidate sets
  /// (disjoint by partition), so one gather + partial sort is exact with
  /// respect to the per-shard answers.
  [[nodiscard]] std::vector<heavy_hitter> top(std::size_t k) const {
    std::vector<heavy_hitter> all;
    all.reserve(candidate_count());
    for (const auto& shard : shards_) {
      shard.for_each_candidate([&](const Key& key, double est) { all.push_back({key, est}); });
    }
    const std::size_t keep = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(keep), all.end(),
                      [](const heavy_hitter& a, const heavy_hitter& b) {
                        return a.estimate > b.estimate;
                      });
    all.resize(keep);
    return all;
  }

  /// Union of the shards' live keys (disjoint across shards).
  [[nodiscard]] std::vector<Key> monitored_keys() const {
    std::vector<Key> keys;
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard.candidate_count() + shard.counters();
    keys.reserve(total);
    for (const auto& shard : shards_) {
      auto k = shard.monitored_keys();
      keys.insert(keys.end(), k.begin(), k.end());
    }
    return keys;
  }

  // --- introspection -------------------------------------------------------

  /// Effective global window: the sum of the shards' (rounded) windows.
  [[nodiscard]] std::uint64_t window_size() const noexcept {
    std::uint64_t w = 0;
    for (const auto& shard : shards_) w += shard.window_size();
    return w;
  }

  [[nodiscard]] std::uint64_t stream_length() const noexcept {
    std::uint64_t n = 0;
    for (const auto& shard : shards_) n += shard.stream_length();
    return n;
  }

  /// Total live candidates across shards (disjoint sets, so a plain sum).
  [[nodiscard]] std::size_t candidate_count() const noexcept {
    std::size_t c = 0;
    for (const auto& shard : shards_) c += shard.candidate_count();
    return c;
  }

  /// Largest absolute deviation of any shard's packet count from the ideal
  /// n/N share - the realized keyspace skew driving the phase-drift bound
  /// in the file comment. 0 for N == 1.
  [[nodiscard]] double stream_skew() const noexcept {
    const double ideal =
        static_cast<double>(stream_length()) / static_cast<double>(shards_.size());
    double worst = 0.0;
    for (const auto& shard : shards_) {
      worst = std::max(worst, std::abs(static_cast<double>(shard.stream_length()) - ideal));
    }
    return worst;
  }

  /// Estimated GLOBAL packets spanned by shard s's window: W_s * n / n_s
  /// under stationarity (W_s for an empty stream). Coverage below the ideal
  /// W/N share of window_size() means the shard is overloaded and its
  /// queries see less global time than the nominal window - the systematic
  /// phase-drift component of the file comment. Monitoring input for
  /// rebalancing / bar-scaling decisions.
  [[nodiscard]] double window_coverage(std::size_t s) const noexcept {
    const auto& shard = shards_[s];
    if (shard.stream_length() == 0) return static_cast<double>(shard.window_size());
    return static_cast<double>(shard.window_size()) * static_cast<double>(stream_length()) /
           static_cast<double>(shard.stream_length());
  }

  // --- rebalancing -----------------------------------------------------------

  /// The global construction budget this frontend was built from, recovered
  /// from the live shards (every shard runs the shard_share slice, so
  /// per-shard * N is the rounded global budget; feeding it back through the
  /// ctor reproduces the exact per-shard geometry). This is what reshard and
  /// the rebalancer rebuild replacement frontends from.
  [[nodiscard]] shard_config config_snapshot() const noexcept {
    shard_config c;
    c.window_size = shards_[0].window_size() * shards_.size();
    c.counters = shards_[0].counters() * shards_.size();
    c.tau = shards_[0].tau();
    c.seed = base_seed_;
    c.shards = shards_.size();
    return c;
  }

  /// Skew-aware rebalance: asks `policy` (e.g. coverage_rebalancer in
  /// shard/rebalance.hpp) to read the live load picture - per-shard
  /// stream_length()/window_coverage(), per-bucket mass sampled from the
  /// candidate sets - plan a new bucket -> shard table, and migrate the
  /// window state onto it through the snapshot reshard path (no stream
  /// replay; estimates move <= one threshold unit per key). Returns true
  /// when a migration happened, false for the deliberate no-ops (already
  /// balanced, or the plan equals the current table). Synchronous: *this is
  /// atomically replaced before the call returns; callers in a threaded
  /// deployment go through sharded_memento_pool::rebalance, which wraps
  /// this in the drain barrier.
  template <typename Policy>
  bool rebalance(const Policy& policy) {
    return policy.rebalance(*this);
  }

  // --- snapshot support ------------------------------------------------------
  // A frontend snapshot is the routing state (base seed + bucket table, if
  // weighted) followed by the ordered sequence of its shards' snapshots.
  // Restored frontends route, sample and answer bit-identically - including
  // through a rebalanced (weighted) table. Individual shard sections are
  // also the unit the reshard path (snapshot/reshard.hpp) consumes.

  static constexpr std::uint16_t kWireTag = 0x5348;  ///< "SH"
  static constexpr std::uint16_t kWireVersion = 2;   ///< v2: + base seed, + bucket table
  /// Streamed framing (wire::sink/source): FoR-packed bucket table, per-shard
  /// streamed sections, section CRC. This is the format that lets a
  /// controller checkpoint a 1M-counter deployment shard by shard with no
  /// O(state) buffer.
  static constexpr std::uint16_t kWireVersionStream = 3;

  /// Serializes the frontend as one versioned section.
  void save(wire::writer& w) const {
    const std::size_t tok = w.begin_section(kWireTag, kWireVersion);
    w.varint(shards_.size());
    w.u64(base_seed_);
    const shard_table& t = part_.table();
    w.varint(t.buckets());  // 0 == HASH mode
    for (const std::uint32_t s : t.to_shard) w.varint(s);
    for (const auto& shard : shards_) shard.save(w);
    w.end_section(tok);
  }

  /// Rebuilds a frontend from save() output; nullopt on any malformed input
  /// (see memento_sketch::restore for the per-shard validation contract;
  /// the bucket table additionally must be non-degenerate for the shard
  /// count - every entry in range, bucket count a multiple of N).
  [[nodiscard]] static std::optional<sharded_memento> restore(wire::reader& r) {
    std::uint16_t ptag = 0, pver = 0;
    if (r.peek_section(ptag, pver) && ptag == kWireTag && pver == kWireVersionStream) {
      wire::source src(r.rest());
      auto out = restore(src);
      if (!out) return std::nullopt;
      r.skip(src.consumed());
      return out;
    }
    std::uint16_t version = 0;
    wire::reader body;
    if (!r.open_section(kWireTag, version, body) || version != kWireVersion) return std::nullopt;
    std::uint64_t n = 0, seed = 0, buckets = 0;
    if (!body.varint(n) || n == 0 || n > kMaxRestoreShards) return std::nullopt;
    if (!body.u64(seed) || !body.varint(buckets)) return std::nullopt;
    // Each table entry costs at least one byte, so a lying bucket count is
    // rejected before the reserve below can allocate against it.
    if (buckets > kMaxRestoreBuckets || buckets > body.remaining()) return std::nullopt;
    shard_table table;
    table.to_shard.reserve(static_cast<std::size_t>(buckets));
    for (std::uint64_t b = 0; b < buckets; ++b) {
      std::uint64_t s = 0;
      if (!body.varint(s) || s >= n) return std::nullopt;
      table.to_shard.push_back(static_cast<std::uint32_t>(s));
    }
    if (buckets != 0 && !table.valid_for(static_cast<std::size_t>(n))) return std::nullopt;
    std::vector<sketch_type> shards;
    shards.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t s = 0; s < n; ++s) {
      auto shard = sketch_type::restore(body);
      if (!shard) return std::nullopt;
      shards.push_back(std::move(*shard));
    }
    if (!body.done()) return std::nullopt;
    auto part = buckets == 0
                    ? shard_partitioner<Key>(static_cast<std::size_t>(n))
                    : shard_partitioner<Key>(static_cast<std::size_t>(n), std::move(table));
    return sharded_memento(std::move(shards), std::move(part), seed);
  }

  /// Streamed counterpart of save(): routing scalars, the bucket table as
  /// one FoR column, then each shard's streamed section in order. The sink
  /// flushes chunk by chunk, so peak buffering stays at the chunk size no
  /// matter how many counters the deployment holds.
  void save(wire::sink& s, bool packed = true) const {
    s.begin_section(kWireTag, kWireVersionStream);
    s.u8(packed ? wire::kCodecPacked : 0);
    s.varint(shards_.size());
    s.u64(base_seed_);
    const shard_table& t = part_.table();
    s.varint(t.buckets());  // 0 == HASH mode
    std::size_t i = 0;
    wire::put_u64_array(s, t.to_shard.size(), packed, [&] { return t.to_shard[i++]; });
    for (const auto& shard : shards_) shard.save(s, packed);
    s.end_section();
  }

  /// Rebuilds a frontend from streamed save() output; same validation
  /// contract as the buffered restore plus the section CRC.
  [[nodiscard]] static std::optional<sharded_memento> restore(wire::source& s) {
    std::uint16_t version = 0;
    if (!s.open_section(kWireTag, version) || version != kWireVersionStream) return std::nullopt;
    std::uint8_t flags = 0;
    if (!s.u8(flags) || (flags & ~wire::kCodecKnownMask) != 0) return std::nullopt;
    const bool packed = (flags & wire::kCodecPacked) != 0;
    std::uint64_t n = 0, seed = 0, buckets = 0;
    if (!s.varint(n) || n == 0 || n > kMaxRestoreShards) return std::nullopt;
    if (!s.u64(seed) || !s.varint(buckets)) return std::nullopt;
    if (buckets > kMaxRestoreBuckets) return std::nullopt;
    shard_table table;
    table.to_shard.reserve(static_cast<std::size_t>(buckets));
    if (!wire::get_u64_array(s, static_cast<std::size_t>(buckets), packed, [&](std::uint64_t v) {
          if (v >= n) return false;
          table.to_shard.push_back(static_cast<std::uint32_t>(v));
          return true;
        })) {
      return std::nullopt;
    }
    if (buckets != 0 && !table.valid_for(static_cast<std::size_t>(n))) return std::nullopt;
    std::vector<sketch_type> shards;
    shards.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      auto shard = sketch_type::restore(s);
      if (!shard) return std::nullopt;
      shards.push_back(std::move(*shard));
    }
    if (!s.close_section()) return std::nullopt;
    auto part = buckets == 0
                    ? shard_partitioner<Key>(static_cast<std::size_t>(n))
                    : shard_partitioner<Key>(static_cast<std::size_t>(n), std::move(table));
    return sharded_memento(std::move(shards), std::move(part), seed);
  }

  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }
  [[nodiscard]] const sketch_type& shard(std::size_t s) const noexcept { return shards_[s]; }
  /// Mutable shard access for the threaded pool's per-core workers; each
  /// worker owns exactly one shard index, which is what keeps the pool
  /// data-race-free without any locking.
  [[nodiscard]] sketch_type& shard_mut(std::size_t s) noexcept { return shards_[s]; }
  [[nodiscard]] const shard_partitioner<Key>& partitioner() const noexcept { return part_; }

 private:
  /// Restore-side guards: nobody runs thousands of shards on one box, and a
  /// table bigger than 2^20 buckets is a corrupt length, not a deployment.
  static constexpr std::uint64_t kMaxRestoreShards = 4096;
  static constexpr std::uint64_t kMaxRestoreBuckets = 1u << 20;

  friend class snapshot_builder;  ///< reshard constructs frontends from parts

  /// The shared construction path: both public ctors land here with the
  /// partitioner (HASH or TABLE mode) already built and validated.
  sharded_memento(const shard_config& config, shard_partitioner<Key>&& part)
      : part_(std::move(part)), base_seed_(config.seed) {
    if (config.shards == 0) throw std::invalid_argument("sharded_memento: shards must be >= 1");
    // Validate the GLOBAL budgets here: shard_share floors each shard's
    // slice at 1, which would otherwise mask a zero budget the equivalent
    // single-instance ctor rejects.
    if (config.window_size == 0) throw std::invalid_argument("sharded_memento: W must be >= 1");
    if (config.counters == 0) {
      throw std::invalid_argument("sharded_memento: counters must be >= 1");
    }
    shards_.reserve(config.shards);
    for (std::size_t s = 0; s < config.shards; ++s) {
      shards_.emplace_back(shard_config_for(config, s));
    }
    scratch_.resize(config.shards);
  }

  /// Assembles a frontend directly from restored/resharded shard instances
  /// with an explicit router and seed. Snapshot-layer only: the public ctors
  /// are the ones that enforce the global-budget split.
  sharded_memento(std::vector<sketch_type>&& shards, shard_partitioner<Key>&& part,
                  std::uint64_t base_seed)
      : part_(std::move(part)), shards_(std::move(shards)), base_seed_(base_seed) {
    scratch_.resize(shards_.size());
  }

  shard_partitioner<Key> part_;
  std::vector<sketch_type> shards_;
  std::vector<std::vector<Key>> scratch_;  ///< per-shard burst partitions (reused)
  std::uint64_t base_seed_ = 1;            ///< config.seed; reshard/rebalance reuse it
};

}  // namespace memento
