// One-dimensional source-IP hierarchy at byte granularity (Section 4.2).
//
// The paper's 1D yardstick tracks the 5 byte-granularity generalizations of a
// source address: /32 (fully specified), /24, /16, /8 and /0, so H = 5 and
// the level structure is depth 0 (fully specified) .. depth 4 (the root *).
//
// A prefix is encoded as a single uint64_t key - (depth << 32) | masked
// address - so the hot path (H-Memento feeding prefixes into one Memento
// instance) hashes and compares plain integers (Per.16: compact data).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "trace/packet.hpp"
#include "util/simd.hpp"

namespace memento {

namespace prefix1d {

/// Number of byte-granularity generalizations of an IPv4 address, incl. /0.
inline constexpr std::size_t kHierarchySize = 5;
/// Number of lattice levels (depths 0..4).
inline constexpr std::size_t kNumLevels = 5;

/// Netmask for a given depth: depth 0 -> /32, depth 4 -> /0.
[[nodiscard]] constexpr std::uint32_t mask_for_depth(std::size_t depth) noexcept {
  return depth >= 4 ? 0u : ~0u << (8 * depth);
}

/// Prefix length in bits for a depth (32, 24, 16, 8, 0).
[[nodiscard]] constexpr unsigned prefix_bits(std::size_t depth) noexcept {
  return depth >= 4 ? 0u : 32u - 8u * static_cast<unsigned>(depth);
}

/// Encodes (address, depth) into the canonical key. The address is masked so
/// equal prefixes always encode identically.
[[nodiscard]] constexpr std::uint64_t make_key(std::uint32_t addr, std::size_t depth) noexcept {
  return (static_cast<std::uint64_t>(depth) << 32) |
         (addr & mask_for_depth(depth));
}

[[nodiscard]] constexpr std::uint32_t key_addr(std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key);
}

[[nodiscard]] constexpr std::size_t key_depth(std::uint64_t key) noexcept {
  return static_cast<std::size_t>(key >> 32);
}

/// True when `a` generalizes `b` (a is an ancestor of, or equal to, b):
/// a's depth is >= b's and b's address falls inside a's subnet.
[[nodiscard]] constexpr bool generalizes(std::uint64_t a, std::uint64_t b) noexcept {
  const std::size_t da = key_depth(a);
  const std::size_t db = key_depth(b);
  if (da < db) return false;
  return key_addr(a) == (key_addr(b) & mask_for_depth(da));
}

/// Strict generalization: a generalizes b and a != b.
[[nodiscard]] constexpr bool strictly_generalizes(std::uint64_t a, std::uint64_t b) noexcept {
  return a != b && generalizes(a, b);
}

/// The parent (one level more general); the root /0 is its own fixpoint and
/// must not be asked for a parent.
[[nodiscard]] constexpr std::uint64_t parent(std::uint64_t key) noexcept {
  const std::size_t d = key_depth(key);
  return make_key(key_addr(key), d + 1);
}

}  // namespace prefix1d

/// Hierarchy traits consumed by H-Memento, MST, RHHH and the HHH solver.
/// Static-only: prefix arithmetic is pure and stateless.
struct source_hierarchy {
  using key_type = std::uint64_t;

  static constexpr std::size_t hierarchy_size = prefix1d::kHierarchySize;  ///< H
  static constexpr std::size_t num_levels = prefix1d::kNumLevels;          ///< L + 1
  static constexpr bool two_dimensional = false;

  /// The i'th generalization of the packet, i in [0, H): i == depth.
  [[nodiscard]] static constexpr key_type key_at(const packet& p, std::size_t i) noexcept {
    return prefix1d::make_key(p.src, i);
  }

  /// The fully-specified key of a packet (depth 0).
  [[nodiscard]] static constexpr key_type full_key(const packet& p) noexcept {
    return prefix1d::make_key(p.src, 0);
  }

  [[nodiscard]] static constexpr std::size_t depth(key_type k) noexcept {
    return prefix1d::key_depth(k);
  }

  /// Inverse of key_at: which of the H patterns produced this key.
  /// In one dimension the pattern index is exactly the depth.
  [[nodiscard]] static constexpr std::size_t pattern_index(key_type k) noexcept {
    return prefix1d::key_depth(k);
  }

  [[nodiscard]] static constexpr bool generalizes(key_type a, key_type b) noexcept {
    return prefix1d::generalizes(a, b);
  }

  [[nodiscard]] static constexpr bool strictly_generalizes(key_type a, key_type b) noexcept {
    return prefix1d::strictly_generalizes(a, b);
  }

  /// Human-readable rendering, e.g. "181.7.0.0/16".
  [[nodiscard]] static std::string to_string(key_type k) {
    return format_ipv4(prefix1d::key_addr(k)) + "/" +
           std::to_string(prefix1d::prefix_bits(prefix1d::key_depth(k)));
  }

  /// Batch key materialization for H-Memento's hierarchical kernel:
  /// out[t] = key_at(ps[idx[t]], levels[t]), equal to the scalar loop but
  /// pipelined in 32-key blocks - gather the sampled source addresses, then
  /// mask + pack them through the vectorized prefix kernel
  /// (simd::make_prefix_keys; the sllv mask table trick lives there).
  static void materialize_keys(const packet* ps, const std::uint32_t* idx,
                               const std::uint8_t* levels, key_type* out, std::size_t n) {
    constexpr std::size_t kBlock = 32;
    std::uint32_t addrs[kBlock];
    for (std::size_t i = 0; i < n; i += kBlock) {
      const std::size_t m = std::min(kBlock, n - i);
      for (std::size_t j = 0; j < m; ++j) addrs[j] = ps[idx[i + j]].src;
      simd::make_prefix_keys(addrs, levels + i, out + i, m);
    }
  }
};

}  // namespace memento
