// Two-dimensional (source, destination) hierarchy at byte granularity.
//
// Section 4.2: "prefixes" are now pairs; a pair is generalized dimension-wise,
// every non-root pair has up to two parents, and the lattice supports a
// greatest lower bound (Definition 4.3) used by the inclusion-exclusion
// conditioned-frequency computation (Algorithm 4). With byte granularity in
// both dimensions there are H = 5 x 5 = 25 prefix patterns and L + 1 = 9
// levels (combined depth 0..8), matching the paper's "in 2D byte-hierarchies
// H = 25 and L = 9".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "hierarchy/prefix1d.hpp"
#include "trace/packet.hpp"

namespace memento {

/// A (src, dst) prefix pair. Addresses are stored masked; depths are byte
/// steps (0 = /32 fully specified ... 4 = /0).
struct prefix2d {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint8_t src_depth = 0;
  std::uint8_t dst_depth = 0;

  friend bool operator==(const prefix2d&, const prefix2d&) = default;
};

namespace prefix2 {

inline constexpr std::size_t kHierarchySize = 25;  ///< H = 5 * 5 patterns
inline constexpr std::size_t kNumLevels = 9;       ///< combined depths 0..8

[[nodiscard]] constexpr prefix2d make(std::uint32_t src, std::size_t sd,
                                      std::uint32_t dst, std::size_t dd) noexcept {
  return {src & prefix1d::mask_for_depth(sd), dst & prefix1d::mask_for_depth(dd),
          static_cast<std::uint8_t>(sd), static_cast<std::uint8_t>(dd)};
}

/// Combined lattice depth: number of byte-generalization steps from fully
/// specified. Level 0 is (/32,/32); level 8 is (*,*).
[[nodiscard]] constexpr std::size_t depth(const prefix2d& p) noexcept {
  return static_cast<std::size_t>(p.src_depth) + p.dst_depth;
}

/// `a` generalizes `b` when it does so in both dimensions (Definition 4.1).
[[nodiscard]] constexpr bool generalizes(const prefix2d& a, const prefix2d& b) noexcept {
  if (a.src_depth < b.src_depth || a.dst_depth < b.dst_depth) return false;
  return a.src == (b.src & prefix1d::mask_for_depth(a.src_depth)) &&
         a.dst == (b.dst & prefix1d::mask_for_depth(a.dst_depth));
}

[[nodiscard]] constexpr bool strictly_generalizes(const prefix2d& a,
                                                  const prefix2d& b) noexcept {
  return !(a == b) && generalizes(a, b);
}

/// Greatest lower bound (Definition 4.3): the most general common descendant.
/// For byte-granularity pairs it exists iff, in each dimension, one operand
/// generalizes the other; the glb then takes the more specific prefix per
/// dimension. Returns nullopt when the operands have no common descendant
/// (the paper's "glb(h, h') = 0").
[[nodiscard]] constexpr std::optional<prefix2d> glb(const prefix2d& a,
                                                    const prefix2d& b) noexcept {
  // Per-dimension: pick the deeper (more specific) side, but only if the
  // shallower side actually contains it.
  const bool src_a_deeper = a.src_depth <= b.src_depth;  // depth 0 = most specific
  const std::uint32_t src = src_a_deeper ? a.src : b.src;
  const std::uint8_t src_depth = src_a_deeper ? a.src_depth : b.src_depth;
  const std::uint8_t src_shallow = src_a_deeper ? b.src_depth : a.src_depth;
  const std::uint32_t src_other = src_a_deeper ? b.src : a.src;
  if ((src & prefix1d::mask_for_depth(src_shallow)) != src_other) return std::nullopt;

  const bool dst_a_deeper = a.dst_depth <= b.dst_depth;
  const std::uint32_t dst = dst_a_deeper ? a.dst : b.dst;
  const std::uint8_t dst_depth = dst_a_deeper ? a.dst_depth : b.dst_depth;
  const std::uint8_t dst_shallow = dst_a_deeper ? b.dst_depth : a.dst_depth;
  const std::uint32_t dst_other = dst_a_deeper ? b.dst : a.dst;
  if ((dst & prefix1d::mask_for_depth(dst_shallow)) != dst_other) return std::nullopt;

  return prefix2d{src, dst, src_depth, dst_depth};
}

}  // namespace prefix2

/// Hierarchy traits for the 2D experiments (H = 25).
struct two_dim_hierarchy {
  using key_type = prefix2d;

  static constexpr std::size_t hierarchy_size = prefix2::kHierarchySize;
  static constexpr std::size_t num_levels = prefix2::kNumLevels;
  static constexpr bool two_dimensional = true;

  /// The i'th of the 25 generalizations: i enumerates (src_depth, dst_depth)
  /// row-major, i = src_depth * 5 + dst_depth.
  [[nodiscard]] static constexpr key_type key_at(const packet& p, std::size_t i) noexcept {
    return prefix2::make(p.src, i / 5, p.dst, i % 5);
  }

  [[nodiscard]] static constexpr key_type full_key(const packet& p) noexcept {
    return prefix2::make(p.src, 0, p.dst, 0);
  }

  [[nodiscard]] static constexpr std::size_t depth(const key_type& k) noexcept {
    return prefix2::depth(k);
  }

  /// Inverse of key_at: which of the 25 patterns produced this key.
  [[nodiscard]] static constexpr std::size_t pattern_index(const key_type& k) noexcept {
    return static_cast<std::size_t>(k.src_depth) * 5 + k.dst_depth;
  }

  [[nodiscard]] static constexpr bool generalizes(const key_type& a,
                                                  const key_type& b) noexcept {
    return prefix2::generalizes(a, b);
  }

  [[nodiscard]] static constexpr bool strictly_generalizes(const key_type& a,
                                                           const key_type& b) noexcept {
    return prefix2::strictly_generalizes(a, b);
  }

  [[nodiscard]] static std::string to_string(const key_type& k) {
    return "(" + format_ipv4(k.src) + "/" +
           std::to_string(prefix1d::prefix_bits(k.src_depth)) + ", " + format_ipv4(k.dst) +
           "/" + std::to_string(prefix1d::prefix_bits(k.dst_depth)) + ")";
  }
};

}  // namespace memento

template <>
struct std::hash<memento::prefix2d> {
  std::size_t operator()(const memento::prefix2d& p) const noexcept {
    std::uint64_t z = (static_cast<std::uint64_t>(p.src) << 32) | p.dst;
    z ^= (static_cast<std::uint64_t>(p.src_depth) << 3 | p.dst_depth) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
