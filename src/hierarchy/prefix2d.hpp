// Two-dimensional (source, destination) hierarchy at byte granularity.
//
// Section 4.2: "prefixes" are now pairs; a pair is generalized dimension-wise,
// every non-root pair has up to two parents, and the lattice supports a
// greatest lower bound (Definition 4.3) used by the inclusion-exclusion
// conditioned-frequency computation (Algorithm 4). With byte granularity in
// both dimensions there are H = 5 x 5 = 25 prefix patterns and L + 1 = 9
// levels (combined depth 0..8), matching the paper's "in 2D byte-hierarchies
// H = 25 and L = 9".
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "hierarchy/prefix1d.hpp"
#include "trace/packet.hpp"
#include "util/simd.hpp"
#include "util/wire.hpp"

namespace memento {

/// A (src, dst) prefix pair. Addresses are stored masked; depths are byte
/// steps (0 = /32 fully specified ... 4 = /0).
struct prefix2d {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint8_t src_depth = 0;
  std::uint8_t dst_depth = 0;

  // Equality plus a (src, dst, src_depth, dst_depth) lexicographic order -
  // no lattice meaning, but the snapshot/reshard layer needs a total order
  // for canonical (deterministic) state rebuilds.
  friend auto operator<=>(const prefix2d&, const prefix2d&) = default;
};

namespace prefix2 {

inline constexpr std::size_t kHierarchySize = 25;  ///< H = 5 * 5 patterns
inline constexpr std::size_t kNumLevels = 9;       ///< combined depths 0..8

[[nodiscard]] constexpr prefix2d make(std::uint32_t src, std::size_t sd,
                                      std::uint32_t dst, std::size_t dd) noexcept {
  return {src & prefix1d::mask_for_depth(sd), dst & prefix1d::mask_for_depth(dd),
          static_cast<std::uint8_t>(sd), static_cast<std::uint8_t>(dd)};
}

/// Combined lattice depth: number of byte-generalization steps from fully
/// specified. Level 0 is (/32,/32); level 8 is (*,*).
[[nodiscard]] constexpr std::size_t depth(const prefix2d& p) noexcept {
  return static_cast<std::size_t>(p.src_depth) + p.dst_depth;
}

/// `a` generalizes `b` when it does so in both dimensions (Definition 4.1).
[[nodiscard]] constexpr bool generalizes(const prefix2d& a, const prefix2d& b) noexcept {
  if (a.src_depth < b.src_depth || a.dst_depth < b.dst_depth) return false;
  return a.src == (b.src & prefix1d::mask_for_depth(a.src_depth)) &&
         a.dst == (b.dst & prefix1d::mask_for_depth(a.dst_depth));
}

[[nodiscard]] constexpr bool strictly_generalizes(const prefix2d& a,
                                                  const prefix2d& b) noexcept {
  return !(a == b) && generalizes(a, b);
}

/// Greatest lower bound (Definition 4.3): the most general common descendant.
/// For byte-granularity pairs it exists iff, in each dimension, one operand
/// generalizes the other; the glb then takes the more specific prefix per
/// dimension. Returns nullopt when the operands have no common descendant
/// (the paper's "glb(h, h') = 0").
[[nodiscard]] constexpr std::optional<prefix2d> glb(const prefix2d& a,
                                                    const prefix2d& b) noexcept {
  // Per-dimension: pick the deeper (more specific) side, but only if the
  // shallower side actually contains it.
  const bool src_a_deeper = a.src_depth <= b.src_depth;  // depth 0 = most specific
  const std::uint32_t src = src_a_deeper ? a.src : b.src;
  const std::uint8_t src_depth = src_a_deeper ? a.src_depth : b.src_depth;
  const std::uint8_t src_shallow = src_a_deeper ? b.src_depth : a.src_depth;
  const std::uint32_t src_other = src_a_deeper ? b.src : a.src;
  if ((src & prefix1d::mask_for_depth(src_shallow)) != src_other) return std::nullopt;

  const bool dst_a_deeper = a.dst_depth <= b.dst_depth;
  const std::uint32_t dst = dst_a_deeper ? a.dst : b.dst;
  const std::uint8_t dst_depth = dst_a_deeper ? a.dst_depth : b.dst_depth;
  const std::uint8_t dst_shallow = dst_a_deeper ? b.dst_depth : a.dst_depth;
  const std::uint32_t dst_other = dst_a_deeper ? b.dst : a.dst;
  if ((dst & prefix1d::mask_for_depth(dst_shallow)) != dst_other) return std::nullopt;

  return prefix2d{src, dst, src_depth, dst_depth};
}

}  // namespace prefix2

/// Hierarchy traits for the 2D experiments (H = 25).
struct two_dim_hierarchy {
  using key_type = prefix2d;

  static constexpr std::size_t hierarchy_size = prefix2::kHierarchySize;
  static constexpr std::size_t num_levels = prefix2::kNumLevels;
  static constexpr bool two_dimensional = true;

  /// The i'th of the 25 generalizations: i enumerates (src_depth, dst_depth)
  /// row-major, i = src_depth * 5 + dst_depth.
  [[nodiscard]] static constexpr key_type key_at(const packet& p, std::size_t i) noexcept {
    return prefix2::make(p.src, i / 5, p.dst, i % 5);
  }

  [[nodiscard]] static constexpr key_type full_key(const packet& p) noexcept {
    return prefix2::make(p.src, 0, p.dst, 0);
  }

  [[nodiscard]] static constexpr std::size_t depth(const key_type& k) noexcept {
    return prefix2::depth(k);
  }

  /// Inverse of key_at: which of the 25 patterns produced this key.
  [[nodiscard]] static constexpr std::size_t pattern_index(const key_type& k) noexcept {
    return static_cast<std::size_t>(k.src_depth) * 5 + k.dst_depth;
  }

  [[nodiscard]] static constexpr bool generalizes(const key_type& a,
                                                  const key_type& b) noexcept {
    return prefix2::generalizes(a, b);
  }

  [[nodiscard]] static constexpr bool strictly_generalizes(const key_type& a,
                                                           const key_type& b) noexcept {
    return prefix2::strictly_generalizes(a, b);
  }

  [[nodiscard]] static std::string to_string(const key_type& k) {
    return "(" + format_ipv4(k.src) + "/" +
           std::to_string(prefix1d::prefix_bits(k.src_depth)) + ", " + format_ipv4(k.dst) +
           "/" + std::to_string(prefix1d::prefix_bits(k.dst_depth)) + ")";
  }

  /// Batch key materialization, 2-D: out[t] = key_at(ps[idx[t]], levels[t]).
  /// The lattice pattern i splits into per-dimension depths (i/5, i%5); the
  /// src and dst columns are then masked independently through the same
  /// vectorized kernel the 1-D path uses, and the prefix2d structs assembled
  /// from the masked columns - per 32-key block, so everything stays in L1.
  static void materialize_keys(const packet* ps, const std::uint32_t* idx,
                               const std::uint8_t* levels, key_type* out, std::size_t n) {
    constexpr std::size_t kBlock = 32;
    std::uint32_t src[kBlock], dst[kBlock], msrc[kBlock], mdst[kBlock];
    std::uint8_t sd[kBlock], dd[kBlock];
    for (std::size_t i = 0; i < n; i += kBlock) {
      const std::size_t m = std::min(kBlock, n - i);
      for (std::size_t j = 0; j < m; ++j) {
        const packet& p = ps[idx[i + j]];
        src[j] = p.src;
        dst[j] = p.dst;
        sd[j] = static_cast<std::uint8_t>(levels[i + j] / 5);
        dd[j] = static_cast<std::uint8_t>(levels[i + j] % 5);
      }
      simd::mask_addr_by_depth(src, sd, msrc, m);
      simd::mask_addr_by_depth(dst, dd, mdst, m);
      for (std::size_t j = 0; j < m; ++j) {
        out[i + j] = prefix2d{msrc[j], mdst[j], sd[j], dd[j]};
      }
    }
  }
};

namespace wire {

/// Key codec for 2-D prefix pairs: the buffered sketch formats carry each
/// key as a fixed 10-byte record (src, dst, both depths), validated on read
/// against the lattice invariants - depths inside the 5-level hierarchy and
/// addresses stored MASKED, so corrupt records cannot materialize keys no
/// update path could have produced.
///
/// The streamed (v2) formats move keys through single-u64 columns; a
/// prefix2d needs 70 bits (two 32-bit addresses + two depths), so 2-D
/// sketches serialize through the BUFFERED format only. There is
/// deliberately no to_u64 - a streamed save of a 2-D sketch is a compile
/// error, never silent key truncation - and from_u64 (which the buffered
/// restore path instantiates through its streamed-version sniffing)
/// rejects unconditionally: no legitimate streamed 2-D image exists, so
/// any buffer claiming to be one is malformed.
template <>
struct codec<memento::prefix2d> {
  static void put(writer& w, const memento::prefix2d& v) {
    w.u32(v.src);
    w.u32(v.dst);
    w.u8(v.src_depth);
    w.u8(v.dst_depth);
  }

  [[nodiscard]] static bool get(reader& r, memento::prefix2d& v) noexcept {
    if (!r.u32(v.src) || !r.u32(v.dst) || !r.u8(v.src_depth) || !r.u8(v.dst_depth)) {
      return false;
    }
    if (v.src_depth >= memento::prefix1d::kNumLevels ||
        v.dst_depth >= memento::prefix1d::kNumLevels) {
      return false;
    }
    return v.src == (v.src & memento::prefix1d::mask_for_depth(v.src_depth)) &&
           v.dst == (v.dst & memento::prefix1d::mask_for_depth(v.dst_depth));
  }

  [[nodiscard]] static bool from_u64(std::uint64_t, memento::prefix2d&) noexcept {
    return false;  // see struct comment: no streamed 2-D images exist
  }
};

}  // namespace wire
}  // namespace memento

template <>
struct std::hash<memento::prefix2d> {
  std::size_t operator()(const memento::prefix2d& p) const noexcept {
    std::uint64_t z = (static_cast<std::uint64_t>(p.src) << 32) | p.dst;
    z ^= (static_cast<std::uint64_t>(p.src_depth) << 3 | p.dst_depth) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
