// Bit-granularity source hierarchy: H = 33 (prefix lengths /32 down to /0).
//
// The paper's evaluation uses byte granularity (H = 5), but its algorithms
// and analysis are generic in H - bit-granularity hierarchies appear across
// the HHH literature it builds on ([17], [19], [54]). Providing this traits
// class demonstrates that genericity concretely: it plugs unchanged into
// h_memento, mst, rhhh, the HHH solver and the exact oracle, with the error
// and sampling bounds scaling by the larger H exactly as Theorems 5.3 / 5.5
// predict.
//
// Keys reuse the (depth << 32 | masked address) encoding of prefix1d, with
// depth now counting BITS generalized (0..32).
#pragma once

#include <cstdint>
#include <string>

#include "trace/packet.hpp"

namespace memento {

namespace prefixbit {

inline constexpr std::size_t kHierarchySize = 33;
inline constexpr std::size_t kNumLevels = 33;

/// Netmask with `depth` host bits wildcarded (depth 0 -> /32, 32 -> /0).
[[nodiscard]] constexpr std::uint32_t mask_for_depth(std::size_t depth) noexcept {
  return depth >= 32 ? 0u : ~0u << depth;
}

[[nodiscard]] constexpr std::uint64_t make_key(std::uint32_t addr, std::size_t depth) noexcept {
  return (static_cast<std::uint64_t>(depth) << 32) | (addr & mask_for_depth(depth));
}

[[nodiscard]] constexpr std::uint32_t key_addr(std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key);
}

[[nodiscard]] constexpr std::size_t key_depth(std::uint64_t key) noexcept {
  return static_cast<std::size_t>(key >> 32);
}

[[nodiscard]] constexpr bool generalizes(std::uint64_t a, std::uint64_t b) noexcept {
  const std::size_t da = key_depth(a);
  if (da < key_depth(b)) return false;
  return key_addr(a) == (key_addr(b) & mask_for_depth(da));
}

}  // namespace prefixbit

/// Hierarchy traits: drop-in alternative to source_hierarchy with H = 33.
struct bit_source_hierarchy {
  using key_type = std::uint64_t;

  static constexpr std::size_t hierarchy_size = prefixbit::kHierarchySize;
  static constexpr std::size_t num_levels = prefixbit::kNumLevels;
  static constexpr bool two_dimensional = false;

  [[nodiscard]] static constexpr key_type key_at(const packet& p, std::size_t i) noexcept {
    return prefixbit::make_key(p.src, i);
  }

  [[nodiscard]] static constexpr key_type full_key(const packet& p) noexcept {
    return prefixbit::make_key(p.src, 0);
  }

  [[nodiscard]] static constexpr std::size_t depth(key_type k) noexcept {
    return prefixbit::key_depth(k);
  }

  [[nodiscard]] static constexpr std::size_t pattern_index(key_type k) noexcept {
    return prefixbit::key_depth(k);
  }

  [[nodiscard]] static constexpr bool generalizes(key_type a, key_type b) noexcept {
    return prefixbit::generalizes(a, b);
  }

  [[nodiscard]] static constexpr bool strictly_generalizes(key_type a, key_type b) noexcept {
    return a != b && prefixbit::generalizes(a, b);
  }

  [[nodiscard]] static std::string to_string(key_type k) {
    return format_ipv4(prefixbit::key_addr(k)) + "/" +
           std::to_string(32 - prefixbit::key_depth(k));
  }
};

}  // namespace memento
