// Generic HHH-set computation: the lattice logic of Algorithms 2, 3 and 4.
//
// Every HHH algorithm in the paper - H-Memento, MST, RHHH, and the exact
// ground truth - shares the same output procedure: walk the prefix lattice
// bottom-up (fully specified first), compute each candidate's *conditioned*
// frequency with respect to the already-selected set, and admit it when that
// exceeds the threshold. The algorithms differ only in
//   (a) where candidate prefixes and their frequency bounds come from, and
//   (b) the additive sampling-compensation term (Alg. 2 line 8: 2 Z sqrt(VW)
//       for H-Memento, the analogous term for RHHH, zero for MST/exact).
// Centralizing the walk here means the subtle parts - G(q|P) maximality and
// the 2D inclusion-exclusion with glb guards - are implemented and tested
// once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "hierarchy/prefix1d.hpp"
#include "hierarchy/prefix2d.hpp"

namespace memento {

/// Upper/lower bounds on a prefix's (window or interval) frequency.
struct freq_bounds {
  double upper = 0.0;  ///< f-hat-plus: never undercounts
  double lower = 0.0;  ///< f-hat-minus: never overcounts
};

/// One admitted HHH prefix with the estimate that admitted it.
template <typename Key>
struct hhh_entry {
  Key key{};
  double conditioned_frequency = 0.0;  ///< C_{q|P} at admission time
  double upper_estimate = 0.0;         ///< f-hat-plus of the prefix itself
};

/// Computes G(q|P) per Section 4.2: the subset of P strictly generalized by
/// q, keeping only maximal elements (no other member of P strictly between).
template <typename H>
[[nodiscard]] std::vector<typename H::key_type> closest_descendants(
    const typename H::key_type& q, const std::vector<typename H::key_type>& selected) {
  using key_type = typename H::key_type;
  std::vector<key_type> inside;
  for (const auto& h : selected) {
    if (H::strictly_generalizes(q, h)) inside.push_back(h);
  }
  std::vector<key_type> maximal;
  for (const auto& h : inside) {
    const bool dominated = std::any_of(inside.begin(), inside.end(), [&](const key_type& m) {
      return !(m == h) && H::strictly_generalizes(m, h);
    });
    if (!dominated) maximal.push_back(h);
  }
  return maximal;
}

/// calcPred for one dimension (Algorithm 3): subtract the lower-bound
/// frequency of every closest selected descendant.
template <typename H>
[[nodiscard]] double calc_pred_1d(const std::vector<typename H::key_type>& g,
                                  const std::function<freq_bounds(const typename H::key_type&)>& bounds) {
  double r = 0.0;
  for (const auto& h : g) r -= bounds(h).lower;
  return r;
}

/// calcPred for two dimensions (Algorithm 4): subtract descendants, then add
/// back each pairwise glb (inclusion-exclusion) unless the glb generalizes a
/// third member of G(q|P) - in which case that mass is already accounted for.
template <typename H>
[[nodiscard]] double calc_pred_2d(const std::vector<typename H::key_type>& g,
                                  const std::function<freq_bounds(const typename H::key_type&)>& bounds) {
  double r = 0.0;
  for (const auto& h : g) r -= bounds(h).lower;
  for (std::size_t i = 0; i < g.size(); ++i) {
    for (std::size_t j = i + 1; j < g.size(); ++j) {
      const auto common = prefix2::glb(g[i], g[j]);
      if (!common) continue;
      const bool covered_by_third =
          std::any_of(g.begin(), g.end(), [&](const prefix2d& h3) {
            return !(h3 == g[i]) && !(h3 == g[j]) && prefix2::generalizes(*common, h3);
          });
      if (!covered_by_third) r += bounds(*common).upper;
    }
  }
  return r;
}

/// Full HHH output walk (Algorithm 2 lines 3-10).
///
/// @param candidates    all monitored prefixes (any order, duplicates allowed).
/// @param bounds        frequency-bound oracle; also queried for glb prefixes
///                      that may not be monitored (return {0, 0} slack there).
/// @param threshold     admission threshold in packets (theta * W or theta * N).
/// @param compensation  additive slack on the conditioned frequency
///                      (Alg. 2 line 8); zero for deterministic algorithms.
template <typename H>
[[nodiscard]] std::vector<hhh_entry<typename H::key_type>> solve_hhh(
    std::vector<typename H::key_type> candidates,
    const std::function<freq_bounds(const typename H::key_type&)>& bounds,
    double threshold, double compensation) {
  using key_type = typename H::key_type;

  // Group by level; drop duplicates so a prefix is considered once.
  std::vector<std::vector<key_type>> by_level(H::num_levels);
  for (const auto& k : candidates) by_level[H::depth(k)].push_back(k);

  std::vector<key_type> selected;
  std::vector<hhh_entry<key_type>> result;

  for (auto& level : by_level) {
    std::sort(level.begin(), level.end(), [](const key_type& a, const key_type& b) {
      if constexpr (std::is_same_v<key_type, prefix2d>) {
        return std::tie(a.src, a.dst, a.src_depth, a.dst_depth) <
               std::tie(b.src, b.dst, b.src_depth, b.dst_depth);
      } else {
        return a < b;
      }
    });
    level.erase(std::unique(level.begin(), level.end()), level.end());

    // Admissions within a level are relative to lower levels only: P is the
    // set selected at strictly lower levels plus earlier same-level picks,
    // exactly as the sequential loop of Algorithm 2 produces it.
    for (const auto& q : level) {
      const auto g = closest_descendants<H>(q, selected);
      double conditioned = bounds(q).upper;
      if constexpr (H::two_dimensional) {
        conditioned += calc_pred_2d<H>(g, bounds);
      } else {
        conditioned += calc_pred_1d<H>(g, bounds);
      }
      conditioned += compensation;
      if (conditioned >= threshold) {
        selected.push_back(q);
        result.push_back({q, conditioned, bounds(q).upper});
      }
    }
  }
  return result;
}

}  // namespace memento
