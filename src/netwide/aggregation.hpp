// The idealized Aggregation communication method (Section 4.3).
//
// "Aggregation is used in this study only as a baseline. Thus, instead of
// implementing a specific algorithm, we simulate an idealized aggregation
// technique with an unlimited space at the controller and no accuracy losses
// upon merging." Beating this idealization (as Fig. 9/10 show Sample and
// Batch do) proves superiority over ANY real merge-based scheme.
//
// Model (DESIGN.md, "Design decisions" item 5):
//   * each vantage keeps an EXACT sliding window over its local share of the
//     global window (ceil(W / m) packets - its expected slice of the last W
//     network-wide packets);
//   * a snapshot ships "all the entries of its HH algorithm" (Section 4.3):
//     up to `max_entries` (the algorithm's counter budget) PREFIX entries at
//     (E + 4) bytes each plus the O-byte header. The entries are the heaviest
//     prefixes of the vantage's exact window across all H lattice levels -
//     i.e. at least as informative as what a real MST / H-Memento instance
//     of that size would hold (flow-granular top-k would be strictly weaker:
//     a flood of one-packet flows carries no per-flow signal at all, but its
//     subnet aggregate is huge);
//   * snapshots are sent as fast as the B bytes/packet budget allows, which
//     for these large messages is infrequent - the staleness that Sample and
//     Batch exploit;
//   * the controller merges snapshots losslessly (exact per-prefix sums).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hierarchy/hhh_solver.hpp"
#include "netwide/budget.hpp"
#include "sketch/exact_window.hpp"
#include "trace/packet.hpp"

namespace memento::netwide {

/// One idealized snapshot: exact per-prefix counts of the vantage's window.
template <typename H>
struct aggregation_report {
  std::uint32_t origin = 0;
  std::unordered_map<typename H::key_type, std::uint64_t> prefix_counts;
  double bytes = 0.0;  ///< what this message cost against the budget
};

/// Vantage side: exact local window + budget-gated snapshot emission.
template <typename H>
class aggregating_point {
 public:
  using key_type = typename H::key_type;

  /// @param local_window the vantage's share of the global window (W / m).
  /// @param max_entries  the HH algorithm's counter budget: the most flow
  ///                     entries one message may carry.
  aggregating_point(std::uint32_t id, std::size_t local_window, const budget_model& budget,
                    std::size_t max_entries = 4096)
      : window_(local_window > 0 ? local_window : 1),
        budget_(budget),
        max_entries_(max_entries > 0 ? max_entries : 1),
        id_(id) {}

  /// Observes one packet; emits a snapshot when enough budget has accrued to
  /// pay for the (entries-dependent) message size.
  [[nodiscard]] std::optional<aggregation_report<H>> observe(const packet& p) {
    window_.add(p);
    accrued_ += budget_.bytes_per_packet;
    // Entry cost: E bytes of key + 4 bytes of count per shipped prefix.
    const std::size_t entries =
        std::min(window_.distinct() * H::hierarchy_size, max_entries_);
    const double message_bytes =
        budget_.overhead_bytes + (budget_.entry_bytes + 4.0) * static_cast<double>(entries);
    if (accrued_ < message_bytes) return std::nullopt;
    accrued_ -= message_bytes;
    ++reports_sent_;
    bytes_sent_ += message_bytes;
    return snapshot(message_bytes);
  }

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t reports_sent() const noexcept { return reports_sent_; }
  [[nodiscard]] double bytes_sent() const noexcept { return bytes_sent_; }

 private:
  /// Exact per-prefix counts of the local window across all lattice levels,
  /// truncated to the `max_entries_` heaviest prefixes (the message cap).
  [[nodiscard]] aggregation_report<H> snapshot(double message_bytes) const {
    std::unordered_map<key_type, std::uint64_t> prefix_counts;
    prefix_counts.reserve(window_.distinct() * H::hierarchy_size);
    window_.for_each([&](const packet& flow, std::uint64_t count) {
      for (std::size_t i = 0; i < H::hierarchy_size; ++i) {
        prefix_counts[H::key_at(flow, i)] += count;
      }
    });

    aggregation_report<H> report;
    report.origin = id_;
    report.bytes = message_bytes;
    if (prefix_counts.size() <= max_entries_) {
      report.prefix_counts = std::move(prefix_counts);
      return report;
    }
    std::vector<std::pair<key_type, std::uint64_t>> entries(prefix_counts.begin(),
                                                            prefix_counts.end());
    std::nth_element(entries.begin(), entries.begin() + static_cast<std::ptrdiff_t>(max_entries_),
                     entries.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    entries.resize(max_entries_);
    report.prefix_counts.reserve(entries.size());
    for (auto& [key, count] : entries) report.prefix_counts.emplace(key, count);
    return report;
  }

  exact_window<packet> window_;
  budget_model budget_;
  std::size_t max_entries_;
  std::uint32_t id_;
  double accrued_ = 0.0;
  std::uint64_t reports_sent_ = 0;
  double bytes_sent_ = 0.0;
};

/// Controller side: lossless merge of the latest snapshot from each vantage.
template <typename H>
class ideal_aggregation_controller {
 public:
  using key_type = typename H::key_type;

  void on_report(aggregation_report<H> report) {
    snapshots_[report.origin] = std::move(report.prefix_counts);
  }

  /// Sum of the latest snapshots - exact up to staleness.
  [[nodiscard]] double query(const key_type& prefix) const {
    std::uint64_t total = 0;
    for (const auto& [origin, counts] : snapshots_) {
      if (const auto it = counts.find(prefix); it != counts.end()) total += it->second;
    }
    return static_cast<double>(total);
  }

  /// HHH over the merged view at threshold theta (fraction of `window`).
  [[nodiscard]] std::vector<hhh_entry<key_type>> output(double theta,
                                                        std::uint64_t window) const {
    std::vector<key_type> candidates;
    for (const auto& [origin, counts] : snapshots_) {
      for (const auto& [key, count] : counts) {
        (void)count;
        candidates.push_back(key);
      }
    }
    return solve_hhh<H>(
        std::move(candidates),
        [this](const key_type& k) {
          const double f = query(k);
          return freq_bounds{f, f};
        },
        theta * static_cast<double>(window), /*compensation=*/0.0);
  }

  [[nodiscard]] std::size_t vantages_heard() const noexcept { return snapshots_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::unordered_map<key_type, std::uint64_t>> snapshots_;
};

}  // namespace memento::netwide
