// The Summary communication method: vantages periodically ship compressed
// sketch summaries (snapshot/summary.hpp) instead of per-packet samples.
//
// Where Sample/Batch move the ALGORITHM to the controller (vantages are
// dumb samplers, the controller runs one big H-Memento), the summary
// channel moves the algorithm to the VANTAGE: each measurement point runs a
// local H-Memento over its share of the traffic at full rate (tau = 1,
// on-box updates cost no control bytes) and periodically serializes its
// candidate set - a window_summary - onto the wire. The controller merges
// the latest summary from each vantage.
//
// Cost model (budget_model): a summary costs O transport bytes plus the
// encoded payload; the vantage accrues B bytes of allowance per observed
// packet and ships whenever the allowance covers the CURRENT summary size,
// so the channel self-paces - fatter candidate sets ship less often. Byte
// accounting charges the actual encoded size, so it is exact for what
// crosses the wire.
//
// Accuracy trade (measured by bench/netwide_bytes.cpp): summaries carry
// full per-vantage estimates (no sampling error) but are STALE between
// reports, and a prefix whose mass is spread thinly across vantages can sit
// below every local candidate bar. Sample/Batch pay per-packet sampling
// error but are always fresh. The controller's one-sided query() charges
// every vantage without an entry its miss bound, preserving the
// never-undercount contract; query_point() sums entries alone and is the
// near-unbiased input for RMSE comparisons.
//
// Decoding is bounds-checked end to end (util/wire.hpp): any truncated or
// corrupt summary report decodes to nullopt, never a crash.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/h_memento.hpp"
#include "hierarchy/hhh_solver.hpp"
#include "netwide/budget.hpp"
#include "snapshot/summary.hpp"
#include "trace/packet.hpp"
#include "util/wire.hpp"

namespace memento::netwide {

/// One summary report from a vantage: who, how much traffic it covers, and
/// the summarized candidate estimates.
template <typename Key>
struct summary_report {
  std::uint32_t origin = 0;
  std::uint64_t covered_packets = 0;  ///< packets observed since the last report
  window_summary<Key> summary;
};

/// Serializes a summary report payload (the O-byte transport header is
/// external): u32 origin | u64 covered | window_summary section.
template <typename Key>
[[nodiscard]] std::vector<std::uint8_t> encode_summary_report(const summary_report<Key>& report) {
  wire::writer w;
  w.u32(report.origin);
  w.u64(report.covered_packets);
  report.summary.save(w);
  return w.take();
}

/// Parses a summary report payload; nullopt on any truncation, corruption,
/// or trailing garbage.
template <typename Key>
[[nodiscard]] std::optional<summary_report<Key>> decode_summary_report(
    std::span<const std::uint8_t> bytes) {
  wire::reader r(bytes);
  summary_report<Key> report;
  if (!r.u32(report.origin) || !r.u64(report.covered_packets)) return std::nullopt;
  auto summary = window_summary<Key>::restore(r);
  if (!summary || !r.done()) return std::nullopt;
  report.summary = std::move(*summary);
  return report;
}

/// Vantage side: a full-rate local H-Memento plus budget-gated summary
/// emission. observe() returns the ENCODED payload when one ships - the
/// channel's unit really is bytes, and the harness decodes them back.
template <typename H>
class summary_point {
 public:
  using key_type = typename H::key_type;

  /// @param id           vantage identifier stamped on reports.
  /// @param local_window the vantage's share of the global window (W / m).
  /// @param counters     local H-Memento counter budget.
  summary_point(std::uint32_t id, std::uint64_t local_window, std::size_t counters,
                const budget_model& budget, std::uint64_t seed = 1)
      : algo_(h_memento_config{local_window, counters, /*tau=*/1.0, /*delta=*/1e-3,
                               seed ^ (0x726d75530ULL * (id + 1))}),
        budget_(budget),
        id_(id) {}

  /// Observes one ingress packet; returns an encoded summary report when
  /// enough byte allowance has accrued to pay for the current summary.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> observe(const packet& p) {
    algo_.update(p);
    ++covered_;
    ++observed_total_;
    accrued_ += budget_.bytes_per_packet;
    // An empty candidate set carries no information: keep accruing instead
    // of wasting a header on the wire.
    if (algo_.inner().candidate_count() == 0) return std::nullopt;
    // Gate on the model estimate first (cheap) so the encode below runs
    // once per report, not once per packet. The estimate must cover the
    // payload's fixed preamble (origin + covered + section header + the
    // summary's scalar fields) or the re-check against the actual size
    // would fail for the next preamble/B packets, re-encoding the full
    // summary on every one of them.
    const double estimated = kPayloadPreambleBytes +
                             budget_.summary_report_bytes(algo_.inner().candidate_count());
    if (accrued_ < estimated) return std::nullopt;

    summary_report<key_type> report{id_, covered_, window_summary<key_type>::from_hhh(algo_)};
    auto payload = encode_summary_report(report);
    const double actual =
        budget_.overhead_bytes + static_cast<double>(payload.size());
    if (accrued_ < actual) return std::nullopt;  // varint slack put it just over
    accrued_ -= actual;
    bytes_sent_ += actual;
    covered_ = 0;
    ++reports_sent_;
    return payload;
  }

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t observed_total() const noexcept { return observed_total_; }
  [[nodiscard]] std::uint64_t reports_sent() const noexcept { return reports_sent_; }
  /// Actual control bytes spent (O + encoded payload, per report).
  [[nodiscard]] double bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] const h_memento<H>& algorithm() const noexcept { return algo_; }

 private:
  /// Upper bound on the encoded payload's fixed (non-entry) bytes: u32
  /// origin + u64 covered + 8B section header + window/stream varints
  /// (<= 10B each) + two f64 scalars + the entry-count varint.
  static constexpr double kPayloadPreambleBytes = 66.0;

  h_memento<H> algo_;
  budget_model budget_;
  std::uint32_t id_;
  double accrued_ = 0.0;
  double bytes_sent_ = 0.0;
  std::uint64_t covered_ = 0;
  std::uint64_t observed_total_ = 0;
  std::uint64_t reports_sent_ = 0;
};

/// Controller side: keeps the latest summary per vantage and answers over
/// their merge-on-read union.
template <typename H>
class summary_controller {
 public:
  using key_type = typename H::key_type;

  void on_report(summary_report<key_type> report) {
    snapshots_[report.origin] = std::move(report.summary);
    ++reports_;
  }

  /// One-sided global estimate: per vantage, the entry when the prefix was
  /// summarized, otherwise that vantage's miss bound (client-hash routing
  /// spreads a prefix's mass across vantages, so a vantage without an entry
  /// may still hold up to its miss bound of it).
  [[nodiscard]] double query(const key_type& prefix) const {
    double total = 0.0;
    for (const auto& [origin, summary] : snapshots_) total += summary.query(prefix);
    return total;
  }

  /// Entry-sum estimate (near-unbiased; no miss-bound padding) - the right
  /// input for RMSE comparisons and threshold triggers.
  [[nodiscard]] double query_point(const key_type& prefix) const {
    double total = 0.0;
    for (const auto& [origin, summary] : snapshots_) total += summary.query_entry(prefix);
    return total;
  }

  /// HHH over the merged candidate union at threshold theta (fraction of
  /// `window`). Compensation-free, like the other methods' harness output.
  [[nodiscard]] std::vector<hhh_entry<key_type>> output(double theta,
                                                       std::uint64_t window) const {
    std::vector<key_type> candidates;
    for (const auto& [origin, summary] : snapshots_) {
      summary.for_each([&](const key_type& key, double) { candidates.push_back(key); });
    }
    return solve_hhh<H>(
        std::move(candidates),
        [this](const key_type& k) {
          const double point = query_point(k);
          return freq_bounds{point, point};
        },
        theta * static_cast<double>(window), /*compensation=*/0.0);
  }

  [[nodiscard]] std::size_t vantages_heard() const noexcept { return snapshots_.size(); }
  [[nodiscard]] std::uint64_t reports_received() const noexcept { return reports_; }

 private:
  std::unordered_map<std::uint32_t, window_summary<key_type>> snapshots_;
  std::uint64_t reports_ = 0;
};

}  // namespace memento::netwide
