// The Summary communication method: vantages periodically ship compressed
// sketch summaries (snapshot/summary.hpp) instead of per-packet samples.
//
// Where Sample/Batch move the ALGORITHM to the controller (vantages are
// dumb samplers, the controller runs one big H-Memento), the summary
// channel moves the algorithm to the VANTAGE: each measurement point runs a
// local H-Memento over its share of the traffic at full rate (tau = 1,
// on-box updates cost no control bytes) and periodically serializes its
// candidate set - a window_summary - onto the wire. The controller merges
// the latest summary from each vantage.
//
// Cost model (budget_model): a summary costs O transport bytes plus the
// encoded payload; the vantage accrues B bytes of allowance per observed
// packet and ships whenever the allowance covers the CURRENT summary size,
// so the channel self-paces - fatter candidate sets ship less often. Byte
// accounting charges the actual encoded size, so it is exact for what
// crosses the wire.
//
// Accuracy trade (measured by bench/netwide_bytes.cpp): summaries carry
// full per-vantage estimates (no sampling error) but are STALE between
// reports, and a prefix whose mass is spread thinly across vantages can sit
// below every local candidate bar. Sample/Batch pay per-packet sampling
// error but are always fresh. The controller's one-sided query() charges
// every vantage without an entry its miss bound, preserving the
// never-undercount contract; query_point() sums entries alone and is the
// near-unbiased input for RMSE comparisons.
//
// Decoding is bounds-checked end to end (util/wire.hpp): any truncated or
// corrupt summary report decodes to nullopt, never a crash.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/h_memento.hpp"
#include "util/compress.hpp"
#include "hierarchy/hhh_solver.hpp"
#include "netwide/budget.hpp"
#include "snapshot/summary.hpp"
#include "trace/packet.hpp"
#include "util/wire.hpp"

namespace memento::netwide {

/// One summary report from a vantage: who, how much traffic it covers, and
/// the summarized candidate estimates.
template <typename Key>
struct summary_report {
  std::uint32_t origin = 0;
  std::uint64_t covered_packets = 0;  ///< packets observed since the last report
  window_summary<Key> summary;
};

/// Serializes a summary report payload (the O-byte transport header is
/// external): u32 origin | u64 covered | window_summary section.
template <typename Key>
[[nodiscard]] std::vector<std::uint8_t> encode_summary_report(const summary_report<Key>& report) {
  wire::writer w;
  w.u32(report.origin);
  w.u64(report.covered_packets);
  report.summary.save(w);
  return w.take();
}

/// Parses a summary report payload; nullopt on any truncation, corruption,
/// or trailing garbage.
template <typename Key>
[[nodiscard]] std::optional<summary_report<Key>> decode_summary_report(
    std::span<const std::uint8_t> bytes) {
  wire::reader r(bytes);
  summary_report<Key> report;
  if (!r.u32(report.origin) || !r.u64(report.covered_packets)) return std::nullopt;
  auto summary = window_summary<Key>::restore(r);
  if (!summary || !r.done()) return std::nullopt;
  report.summary = std::move(*summary);
  return report;
}

/// Vantage side: a full-rate local H-Memento plus budget-gated summary
/// emission. observe() returns the ENCODED payload when one ships - the
/// channel's unit really is bytes, and the harness decodes them back.
template <typename H>
class summary_point {
 public:
  using key_type = typename H::key_type;

  /// @param id           vantage identifier stamped on reports.
  /// @param local_window the vantage's share of the global window (W / m).
  /// @param counters     local H-Memento counter budget.
  summary_point(std::uint32_t id, std::uint64_t local_window, std::size_t counters,
                const budget_model& budget, std::uint64_t seed = 1)
      : algo_(h_memento_config{local_window, counters, /*tau=*/1.0, /*delta=*/1e-3,
                               seed ^ (0x726d75530ULL * (id + 1))}),
        budget_(budget),
        id_(id) {}

  /// Observes one ingress packet; returns an encoded summary report when
  /// enough byte allowance has accrued to pay for the current summary.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> observe(const packet& p) {
    algo_.update(p);
    ++covered_;
    ++observed_total_;
    accrued_ += budget_.bytes_per_packet;
    // An empty candidate set carries no information: keep accruing instead
    // of wasting a header on the wire.
    if (algo_.inner().candidate_count() == 0) return std::nullopt;
    // Gate on the model estimate first (cheap) so the encode below runs
    // once per report, not once per packet. The estimate must cover the
    // payload's fixed preamble (origin + covered + section header + the
    // summary's scalar fields) or the re-check against the actual size
    // would fail for the next preamble/B packets, re-encoding the full
    // summary on every one of them.
    const double estimated = kPayloadPreambleBytes +
                             budget_.summary_report_bytes(algo_.inner().candidate_count());
    if (accrued_ < estimated) return std::nullopt;

    summary_report<key_type> report{id_, covered_, window_summary<key_type>::from_hhh(algo_)};
    auto payload = encode_summary_report(report);
    const double actual =
        budget_.overhead_bytes + static_cast<double>(payload.size());
    if (accrued_ < actual) return std::nullopt;  // varint slack put it just over
    accrued_ -= actual;
    bytes_sent_ += actual;
    covered_ = 0;
    ++reports_sent_;
    return payload;
  }

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t observed_total() const noexcept { return observed_total_; }
  [[nodiscard]] std::uint64_t reports_sent() const noexcept { return reports_sent_; }
  /// Actual control bytes spent (O + encoded payload, per report).
  [[nodiscard]] double bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] const h_memento<H>& algorithm() const noexcept { return algo_; }

 private:
  /// Upper bound on the encoded payload's fixed (non-entry) bytes: u32
  /// origin + u64 covered + 8B section header + window/stream varints
  /// (<= 10B each) + two f64 scalars + the entry-count varint.
  static constexpr double kPayloadPreambleBytes = 66.0;

  h_memento<H> algo_;
  budget_model budget_;
  std::uint32_t id_;
  double accrued_ = 0.0;
  double bytes_sent_ = 0.0;
  std::uint64_t covered_ = 0;
  std::uint64_t observed_total_ = 0;
  std::uint64_t reports_sent_ = 0;
};

/// Controller side: keeps the latest summary per vantage and answers over
/// their merge-on-read union.
template <typename H>
class summary_controller {
 public:
  using key_type = typename H::key_type;

  void on_report(summary_report<key_type> report) {
    snapshots_[report.origin] = std::move(report.summary);
    ++reports_;
  }

  /// One-sided global estimate: per vantage, the entry when the prefix was
  /// summarized, otherwise that vantage's miss bound (client-hash routing
  /// spreads a prefix's mass across vantages, so a vantage without an entry
  /// may still hold up to its miss bound of it).
  [[nodiscard]] double query(const key_type& prefix) const {
    double total = 0.0;
    for (const auto& [origin, summary] : snapshots_) total += summary.query(prefix);
    return total;
  }

  /// Entry-sum estimate (near-unbiased; no miss-bound padding) - the right
  /// input for RMSE comparisons and threshold triggers.
  [[nodiscard]] double query_point(const key_type& prefix) const {
    double total = 0.0;
    for (const auto& [origin, summary] : snapshots_) total += summary.query_entry(prefix);
    return total;
  }

  /// HHH over the merged candidate union at threshold theta (fraction of
  /// `window`). Compensation-free, like the other methods' harness output.
  [[nodiscard]] std::vector<hhh_entry<key_type>> output(double theta,
                                                       std::uint64_t window) const {
    std::vector<key_type> candidates;
    for (const auto& [origin, summary] : snapshots_) {
      summary.for_each([&](const key_type& key, double) { candidates.push_back(key); });
    }
    return solve_hhh<H>(
        std::move(candidates),
        [this](const key_type& k) {
          const double point = query_point(k);
          return freq_bounds{point, point};
        },
        theta * static_cast<double>(window), /*compensation=*/0.0);
  }

  [[nodiscard]] std::size_t vantages_heard() const noexcept { return snapshots_.size(); }
  [[nodiscard]] std::uint64_t reports_received() const noexcept { return reports_; }

 private:
  std::unordered_map<std::uint32_t, window_summary<key_type>> snapshots_;
  std::uint64_t reports_ = 0;
};

// --- delta summary channel ---------------------------------------------------
// The full-summary channel re-ships every candidate on every report, but in
// steady state most heavy hitters' estimates barely move between reports:
// the information per report is the CHANGES. The delta channel ships, per
// report, only the candidates whose estimate moved past a change bar since
// the last shipped summary, plus the keys that left the candidate set; the
// controller patches its per-origin baseline in place.
//
// Three things make this safe against loss and corruption:
//   * every report carries a per-origin EPOCH; a delta only applies to the
//     exact baseline it was computed against (epoch == last + 1), anything
//     else is rejected and the controller waits for the next full report;
//   * every resync_every-th report is a FULL baseline (epoch 1 always is),
//     bounding how long a desynced controller stays stale;
//   * the delta payload rides in its own CRC'd streamed section (tag "WD"),
//     so corruption rejects cleanly like every other wire section.
//
// The change bar is quantized in overflow units (T * H / tau packets, the
// granularity at which the underlying sketch actually learns): a naive
// "estimate changed" test would ship nearly every entry every report,
// because the in-frame residue term moves on almost every packet. Unshipped
// drift stays below one quantization step, which is already inside the
// estimate's +-2T slack - so recall at any detection bar the channel is
// honest for is unchanged, which is what makes the bytes comparison in
// bench/netwide_bytes.cpp an equal-recall one.

/// Wire tag of the delta payload section ("WD"); version 1.
inline constexpr std::uint16_t kDeltaWireTag = 0x5744;
inline constexpr std::uint16_t kDeltaWireVersion = 1;

/// What a delta report carries: the report kind discriminates the payload.
enum class summary_kind : std::uint8_t { full = 0, delta = 1 };

/// One report on the delta channel. `summary` is populated for full
/// reports; `changed`/`removed` plus the scalar header for delta reports.
template <typename Key>
struct delta_summary_report {
  std::uint32_t origin = 0;
  std::uint64_t covered_packets = 0;
  std::uint64_t epoch = 0;  ///< per-origin, starts at 1, +1 per sent report
  summary_kind kind = summary_kind::full;
  window_summary<Key> summary;  ///< full payload

  // delta payload
  std::uint64_t window = 0, stream = 0;
  double width = 0.0, miss_upper = 0.0;
  std::vector<std::pair<Key, double>> changed;
  std::vector<Key> removed;
};

/// Serializes a delta-channel report: u32 origin | u64 covered | u64 epoch |
/// u8 kind | payload (a WS v2 section for full, a CRC'd WD section for
/// delta, both FoR-packed).
template <typename Key>
[[nodiscard]] std::vector<std::uint8_t> encode_delta_summary_report(
    const delta_summary_report<Key>& report) {
  std::vector<std::uint8_t> out;
  wire::sink s(out);
  s.u32(report.origin);
  s.u64(report.covered_packets);
  s.u64(report.epoch);
  s.u8(static_cast<std::uint8_t>(report.kind));
  if (report.kind == summary_kind::full) {
    report.summary.save(s);
  } else {
    s.begin_section(kDeltaWireTag, kDeltaWireVersion);
    s.u8(wire::kCodecPacked);
    s.varint(report.window);
    s.varint(report.stream);
    s.f64(report.width);
    s.f64(report.miss_upper);
    s.varint(report.changed.size());
    std::size_t i = 0;
    wire::put_u64_array(s, report.changed.size(), /*packed=*/true,
                        [&] { return wire::codec<Key>::to_u64(report.changed[i++].first); });
    for (const auto& [key, est] : report.changed) s.f64(est);
    s.varint(report.removed.size());
    i = 0;
    wire::put_u64_array(s, report.removed.size(), /*packed=*/true,
                        [&] { return wire::codec<Key>::to_u64(report.removed[i++]); });
    s.end_section();
  }
  if (!s.finish()) return {};
  return out;
}

/// Parses a delta-channel report; nullopt on truncation, an unknown kind,
/// a CRC mismatch, or trailing garbage.
template <typename Key>
[[nodiscard]] std::optional<delta_summary_report<Key>> decode_delta_summary_report(
    std::span<const std::uint8_t> bytes) {
  wire::source s(bytes);
  delta_summary_report<Key> report;
  std::uint8_t kind = 0;
  if (!s.u32(report.origin) || !s.u64(report.covered_packets) || !s.u64(report.epoch) ||
      !s.u8(kind) || kind > static_cast<std::uint8_t>(summary_kind::delta)) {
    return std::nullopt;
  }
  report.kind = static_cast<summary_kind>(kind);
  if (report.kind == summary_kind::full) {
    auto summary = window_summary<Key>::restore(s);
    if (!summary || !s.done()) return std::nullopt;
    report.summary = std::move(*summary);
    return report;
  }
  std::uint16_t version = 0;
  if (!s.open_section(kDeltaWireTag, version) || version != kDeltaWireVersion) {
    return std::nullopt;
  }
  std::uint8_t flags = 0;
  if (!s.u8(flags) || (flags & ~wire::kCodecKnownMask) != 0) return std::nullopt;
  const bool packed = (flags & wire::kCodecPacked) != 0;
  std::uint64_t nchanged = 0, nremoved = 0;
  if (!s.varint(report.window) || !s.varint(report.stream) || !s.f64(report.width) ||
      !s.f64(report.miss_upper) || !s.varint(nchanged)) {
    return std::nullopt;
  }
  if (nchanged > (std::uint64_t{1} << 21)) return std::nullopt;  // matches WS entry cap
  report.changed.resize(static_cast<std::size_t>(nchanged));
  std::size_t i = 0;
  if (!wire::get_u64_array(s, report.changed.size(), packed, [&](std::uint64_t raw) {
        return wire::codec<Key>::from_u64(raw, report.changed[i++].first);
      })) {
    return std::nullopt;
  }
  for (auto& [key, est] : report.changed) {
    if (!s.f64(est)) return std::nullopt;
  }
  if (!s.varint(nremoved) || nremoved > (std::uint64_t{1} << 21)) return std::nullopt;
  report.removed.resize(static_cast<std::size_t>(nremoved));
  i = 0;
  if (!wire::get_u64_array(s, report.removed.size(), packed, [&](std::uint64_t raw) {
        return wire::codec<Key>::from_u64(raw, report.removed[i++]);
      })) {
    return std::nullopt;
  }
  if (!s.close_section() || !s.done()) return std::nullopt;
  return report;
}

/// Knobs of the delta channel's vantage side.
struct delta_summary_config {
  /// Every Nth report is a full baseline (the first always is). 1 = every
  /// report full: the cadence-matched baseline the benches compare against.
  std::uint64_t resync_every = 16;
  /// Change bar in overflow units (T * H / tau packets): an entry ships
  /// when its estimate moved at least this much since last shipped. 0
  /// ships every entry every report (naive; for measurement only).
  double change_bar_units = 1.0;
  /// Fixed report cadence in ingress packets; 0 = budget-gated pacing
  /// (accrue bytes_per_packet, ship when the allowance covers the report).
  std::uint64_t cadence_packets = 0;
};

/// Vantage side of the delta channel: a full-rate local H-Memento plus
/// epoch-tagged full/delta emission against the last SHIPPED estimates.
template <typename H>
class delta_summary_point {
 public:
  using key_type = typename H::key_type;

  delta_summary_point(std::uint32_t id, std::uint64_t local_window, std::size_t counters,
                      const budget_model& budget, const delta_summary_config& delta_config = {},
                      std::uint64_t seed = 1)
      : algo_(h_memento_config{local_window, counters, /*tau=*/1.0, /*delta=*/1e-3,
                               seed ^ (0x726d75530ULL * (id + 1))}),
        budget_(budget),
        config_(delta_config),
        id_(id) {
    if (config_.resync_every == 0) config_.resync_every = 1;
  }

  /// Observes one ingress packet; returns an encoded report when due.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> observe(const packet& p) {
    algo_.update(p);
    ++covered_;
    ++observed_total_;
    accrued_ += budget_.bytes_per_packet;
    if (algo_.inner().candidate_count() == 0) return std::nullopt;

    const bool full_due = epoch_ % config_.resync_every == 0;  // epoch_ counts SENT reports
    if (config_.cadence_packets != 0) {
      if (covered_ < config_.cadence_packets) return std::nullopt;
    } else {
      // Budget pacing: gate on a cheap estimate first (like summary_point),
      // assuming the worst case - all candidates changed - for a delta.
      const std::size_t entries = algo_.inner().candidate_count();
      const double estimated =
          kPayloadPreambleBytes + (full_due ? budget_.summary_report_bytes(entries)
                                            : budget_.summary_delta_report_bytes(entries, 0));
      if (accrued_ < estimated && !full_due) {
        // A delta can be far cheaper than the all-changed bound; only the
        // encode can tell, so fall through when even the lower removal-only
        // floor is covered.
        if (accrued_ < kPayloadPreambleBytes + budget_.summary_delta_report_bytes(0, 0)) {
          return std::nullopt;
        }
      } else if (accrued_ < estimated && full_due) {
        return std::nullopt;
      }
    }

    auto payload = full_due ? encode_full() : encode_delta();
    if (!payload) return std::nullopt;  // delta had nothing to say; keep accruing
    const double actual = budget_.overhead_bytes + static_cast<double>(payload->size());
    if (config_.cadence_packets == 0 && accrued_ < actual) return std::nullopt;
    accrued_ -= actual;
    if (accrued_ < 0.0) accrued_ = 0.0;
    bytes_sent_ += actual;
    covered_ = 0;
    ++epoch_;
    ++reports_sent_;
    full_due ? ++full_reports_ : ++delta_reports_;
    return payload;
  }

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t observed_total() const noexcept { return observed_total_; }
  [[nodiscard]] std::uint64_t reports_sent() const noexcept { return reports_sent_; }
  [[nodiscard]] std::uint64_t full_reports() const noexcept { return full_reports_; }
  [[nodiscard]] std::uint64_t delta_reports() const noexcept { return delta_reports_; }
  [[nodiscard]] double bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] const h_memento<H>& algorithm() const noexcept { return algo_; }

 private:
  static constexpr double kPayloadPreambleBytes = 83.0;  ///< summary preamble + epoch + kind

  /// The change bar in packets: estimates quantize at the sketch's overflow
  /// granularity T * H / tau, so anything below `units` of that is residue
  /// noise, not information.
  [[nodiscard]] double change_bar() const noexcept {
    return config_.change_bar_units * static_cast<double>(algo_.inner().overflow_threshold()) *
           static_cast<double>(H::hierarchy_size) / algo_.tau();
  }

  [[nodiscard]] std::optional<std::vector<std::uint8_t>> encode_full() {
    delta_summary_report<key_type> report;
    report.origin = id_;
    report.covered_packets = covered_;
    report.epoch = epoch_ + 1;
    report.kind = summary_kind::full;
    report.summary = window_summary<key_type>::from_hhh(algo_);
    shipped_.clear();
    report.summary.for_each([&](const key_type& key, double est) { shipped_[key] = est; });
    return encode_delta_summary_report(report);
  }

  [[nodiscard]] std::optional<std::vector<std::uint8_t>> encode_delta() {
    const auto current = window_summary<key_type>::from_hhh(algo_);
    delta_summary_report<key_type> report;
    report.origin = id_;
    report.covered_packets = covered_;
    report.epoch = epoch_ + 1;
    report.kind = summary_kind::delta;
    report.window = current.window_size();
    report.stream = current.stream_length();
    report.width = current.estimate_width();
    report.miss_upper = current.miss_bound();
    const double bar = change_bar();
    current.for_each([&](const key_type& key, double est) {
      const auto it = shipped_.find(key);
      if (it == shipped_.end() || std::abs(est - it->second) >= bar) {
        report.changed.push_back({key, est});
      }
    });
    for (const auto& [key, est] : shipped_) {
      if (!current.contains(key)) report.removed.push_back(key);
    }
    if (report.changed.empty() && report.removed.empty()) return std::nullopt;
    for (const auto& [key, est] : report.changed) shipped_[key] = est;
    for (const key_type& key : report.removed) shipped_.erase(key);
    return encode_delta_summary_report(report);
  }

  h_memento<H> algo_;
  budget_model budget_;
  delta_summary_config config_;
  std::uint32_t id_;
  std::unordered_map<key_type, double> shipped_;  ///< last shipped estimate per key
  double accrued_ = 0.0;
  double bytes_sent_ = 0.0;
  std::uint64_t covered_ = 0;
  std::uint64_t observed_total_ = 0;
  std::uint64_t epoch_ = 0;  ///< == reports actually sent
  std::uint64_t reports_sent_ = 0;
  std::uint64_t full_reports_ = 0;
  std::uint64_t delta_reports_ = 0;
};

/// Controller side of the delta channel: per-origin baseline patched by
/// deltas, with strict epoch sequencing - a delta applies only to the exact
/// baseline it was computed against; gaps or reordering desync the origin
/// until its next full report.
template <typename H>
class delta_summary_controller {
 public:
  using key_type = typename H::key_type;

  /// Applies one report; false when it was rejected (stale epoch, or a
  /// delta against a baseline this controller does not hold).
  bool on_report(delta_summary_report<key_type> report) {
    auto& st = origins_[report.origin];
    ++reports_;
    if (report.epoch <= st.epoch && st.epoch != 0) {
      ++rejected_;  // stale or replayed
      return false;
    }
    if (report.kind == summary_kind::full) {
      st.baseline = std::move(report.summary);
      st.epoch = report.epoch;
      st.synced = true;
      return true;
    }
    // A delta is only meaningful against the exact predecessor baseline.
    if (!st.synced || report.epoch != st.epoch + 1) {
      st.synced = false;  // await the next full resync
      ++rejected_;
      return false;
    }
    for (const auto& [key, est] : report.changed) st.baseline.upsert(key, est);
    for (const key_type& key : report.removed) st.baseline.erase(key);
    st.baseline.set_scalars(report.window, report.stream, report.width, report.miss_upper);
    st.epoch = report.epoch;
    return true;
  }

  /// One-sided global estimate (see summary_controller::query).
  [[nodiscard]] double query(const key_type& prefix) const {
    double total = 0.0;
    for (const auto& [origin, st] : origins_) total += st.baseline.query(prefix);
    return total;
  }

  /// Entry-sum estimate (near-unbiased; no miss-bound padding).
  [[nodiscard]] double query_point(const key_type& prefix) const {
    double total = 0.0;
    for (const auto& [origin, st] : origins_) total += st.baseline.query_entry(prefix);
    return total;
  }

  /// HHH over the merged candidate union (see summary_controller::output).
  [[nodiscard]] std::vector<hhh_entry<key_type>> output(double theta,
                                                       std::uint64_t window) const {
    std::vector<key_type> candidates;
    for (const auto& [origin, st] : origins_) {
      st.baseline.for_each([&](const key_type& key, double) { candidates.push_back(key); });
    }
    return solve_hhh<H>(
        std::move(candidates),
        [this](const key_type& k) {
          const double point = query_point(k);
          return freq_bounds{point, point};
        },
        theta * static_cast<double>(window), /*compensation=*/0.0);
  }

  [[nodiscard]] std::size_t vantages_heard() const noexcept { return origins_.size(); }
  [[nodiscard]] std::uint64_t reports_received() const noexcept { return reports_; }
  [[nodiscard]] std::uint64_t reports_rejected() const noexcept { return rejected_; }

 private:
  struct origin_state {
    window_summary<key_type> baseline;
    std::uint64_t epoch = 0;
    bool synced = false;
  };
  std::unordered_map<std::uint32_t, origin_state> origins_;
  std::uint64_t reports_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace memento::netwide
