// Controller-side network-wide algorithms: D-Memento (HH) and D-H-Memento
// (HHH), Section 4.3.
//
// The controller owns a single Memento / H-Memento instance whose window is
// defined over "the last W packets measured somewhere in the network". On a
// Sample/Batch report it performs one Full update per sampled packet and a
// Window update for every unsampled covered packet, so the controller's
// clock advances exactly once per ingress packet network-wide and the
// sampled fraction matches the vantage's tau - precisely the single-device
// algorithm fed by a distributed sampler.
#pragma once

#include <cstdint>

#include "core/h_memento.hpp"
#include "core/memento.hpp"
#include "netwide/measurement_point.hpp"
#include "trace/packet.hpp"

namespace memento::netwide {

/// D-Memento: network-wide plain heavy hitters over flow ids.
class d_memento_controller {
 public:
  /// @param window   W: global window, in network-wide packets.
  /// @param counters Memento counters.
  /// @param tau      the vantages' sampling probability (query scaling).
  d_memento_controller(std::uint64_t window, std::size_t counters, double tau)
      : sketch_(memento_config{window, counters, tau, /*seed=*/1}) {}

  void on_report(const sample_report& report) {
    for (const auto& p : report.samples) sketch_.full_update(flow_id(p));
    const std::uint64_t unsampled =
        report.covered_packets > report.samples.size()
            ? report.covered_packets - report.samples.size()
            : 0;
    for (std::uint64_t i = 0; i < unsampled; ++i) sketch_.window_update();
    ++reports_;
  }

  [[nodiscard]] double query(std::uint64_t flow) const { return sketch_.query(flow); }

  [[nodiscard]] auto heavy_hitters(double theta) const { return sketch_.heavy_hitters(theta); }

  [[nodiscard]] const memento_sketch<std::uint64_t>& sketch() const noexcept { return sketch_; }
  [[nodiscard]] std::uint64_t reports_received() const noexcept { return reports_; }

 private:
  memento_sketch<std::uint64_t> sketch_;
  std::uint64_t reports_ = 0;
};

/// D-H-Memento: network-wide hierarchical heavy hitters.
template <typename H>
class d_h_memento_controller {
 public:
  using key_type = typename H::key_type;

  d_h_memento_controller(std::uint64_t window, std::size_t counters, double tau,
                         double delta = 1e-3)
      : algo_(h_memento_config{window, counters, tau, delta, /*seed=*/1}) {}

  void on_report(const sample_report& report) {
    for (const auto& p : report.samples) algo_.full_update(p);
    const std::uint64_t unsampled =
        report.covered_packets > report.samples.size()
            ? report.covered_packets - report.samples.size()
            : 0;
    for (std::uint64_t i = 0; i < unsampled; ++i) algo_.window_update();
    ++reports_;
  }

  [[nodiscard]] double query(const key_type& prefix) const { return algo_.query(prefix); }

  /// Near-unbiased point estimate for threshold-based applications.
  [[nodiscard]] double query_midpoint(const key_type& prefix) const {
    return algo_.query_midpoint(prefix);
  }

  [[nodiscard]] auto output(double theta) const { return algo_.output(theta); }
  [[nodiscard]] auto output(double theta, double compensation) const {
    return algo_.output(theta, compensation);
  }

  [[nodiscard]] const h_memento<H>& algorithm() const noexcept { return algo_; }
  [[nodiscard]] std::uint64_t reports_received() const noexcept { return reports_; }

 private:
  h_memento<H> algo_;
  std::uint64_t reports_ = 0;
};

}  // namespace memento::netwide
