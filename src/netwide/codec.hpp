// Wire codecs for the measurement-point -> controller control channel.
//
// The analysis (Section 5.2) models report cost as O header bytes plus E
// bytes per sampled packet; this module makes those messages real: fixed
// little-endian layouts with no padding surprises, so the byte accounting in
// budget_model is exact for what actually crosses the wire, and a deployment
// can ship reports over UDP/TCP unchanged.
//
// sample_report layout (payload; the O-byte transport header is external):
//   u32 origin | u64 covered | u32 count | count x entry
// where entry = u32 src (E=4, 1D hierarchies) or u32 src + u32 dst (E=8).
//
// Decoding is bounds-checked and returns nullopt on any truncation or count
// mismatch - a malformed report must never crash a controller.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "netwide/measurement_point.hpp"
#include "trace/packet.hpp"

namespace memento::netwide {

/// Which per-sample encoding a channel uses (matches budget_model::entry_bytes).
enum class sample_encoding : std::uint8_t {
  src_only = 4,      ///< 4 bytes: source address (1D hierarchies)
  src_and_dst = 8,   ///< 8 bytes: (source, destination) pair (2D)
};

namespace detail {

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline bool get_u32(std::span<const std::uint8_t> in, std::size_t& pos, std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[pos++]) << (8 * i);
  return true;
}

inline bool get_u64(std::span<const std::uint8_t> in, std::size_t& pos, std::uint64_t& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[pos++]) << (8 * i);
  return true;
}

}  // namespace detail

/// Serializes a report payload. Size is exactly 16 + E * samples bytes.
[[nodiscard]] inline std::vector<std::uint8_t> encode_report(const sample_report& report,
                                                             sample_encoding encoding) {
  std::vector<std::uint8_t> out;
  const std::size_t entry = static_cast<std::size_t>(encoding);
  out.reserve(16 + entry * report.samples.size());
  detail::put_u32(out, report.origin);
  detail::put_u64(out, report.covered_packets);
  detail::put_u32(out, static_cast<std::uint32_t>(report.samples.size()));
  for (const auto& p : report.samples) {
    detail::put_u32(out, p.src);
    if (encoding == sample_encoding::src_and_dst) detail::put_u32(out, p.dst);
  }
  return out;
}

/// Parses a report payload; nullopt on truncation, trailing garbage, or an
/// entry count that does not match the buffer.
[[nodiscard]] inline std::optional<sample_report> decode_report(
    std::span<const std::uint8_t> bytes, sample_encoding encoding) {
  std::size_t pos = 0;
  sample_report report;
  std::uint32_t count = 0;
  if (!detail::get_u32(bytes, pos, report.origin)) return std::nullopt;
  if (!detail::get_u64(bytes, pos, report.covered_packets)) return std::nullopt;
  if (!detail::get_u32(bytes, pos, count)) return std::nullopt;

  const std::size_t entry = static_cast<std::size_t>(encoding);
  if (bytes.size() - pos != static_cast<std::size_t>(count) * entry) return std::nullopt;
  report.samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    packet p;
    if (!detail::get_u32(bytes, pos, p.src)) return std::nullopt;
    if (encoding == sample_encoding::src_and_dst && !detail::get_u32(bytes, pos, p.dst)) {
      return std::nullopt;
    }
    report.samples.push_back(p);
  }
  if (report.covered_packets < report.samples.size()) return std::nullopt;
  return report;
}

/// Payload size the codec will produce (the "E*b" part of the cost model,
/// plus the 16-byte report header that rides inside the O-byte transport).
[[nodiscard]] constexpr std::size_t encoded_size(std::size_t samples,
                                                 sample_encoding encoding) noexcept {
  return 16 + static_cast<std::size_t>(encoding) * samples;
}

}  // namespace memento::netwide
