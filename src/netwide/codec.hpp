// Wire codecs for the measurement-point -> controller control channel.
//
// The analysis (Section 5.2) models report cost as O header bytes plus E
// bytes per sampled packet; this module makes those messages real: fixed
// little-endian layouts with no padding surprises, so the byte accounting in
// budget_model is exact for what actually crosses the wire, and a deployment
// can ship reports over UDP/TCP unchanged.
//
// sample_report layout (payload; the O-byte transport header is external):
//   u32 origin | u64 covered | u32 count | count x entry
// where entry = u32 src (E=4, 1D hierarchies) or u32 src + u32 dst (E=8).
// The layout is pinned by a golden-bytes test (tests/codec_test.cpp): it
// predates the shared wire layer and must never drift, version by version.
//
// The little-endian primitives live in util/wire.hpp (shared with the
// snapshot layer and the summary channel); this header only owns the
// sample_report layout. Decoding is bounds-checked and returns nullopt on
// any truncation or count mismatch - a malformed report must never crash a
// controller (fuzzed across every truncation and bit flip by the codec
// tests, under ASan in CI).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netwide/measurement_point.hpp"
#include "trace/packet.hpp"
#include "util/wire.hpp"

namespace memento::netwide {

/// Which per-sample encoding a channel uses (matches budget_model::entry_bytes).
enum class sample_encoding : std::uint8_t {
  src_only = 4,      ///< 4 bytes: source address (1D hierarchies)
  src_and_dst = 8,   ///< 8 bytes: (source, destination) pair (2D)
};

/// Serializes a report payload. Size is exactly 16 + E * samples bytes.
[[nodiscard]] inline std::vector<std::uint8_t> encode_report(const sample_report& report,
                                                             sample_encoding encoding) {
  wire::writer w;
  const std::size_t entry = static_cast<std::size_t>(encoding);
  w.reserve(16 + entry * report.samples.size());
  w.u32(report.origin);
  w.u64(report.covered_packets);
  w.u32(static_cast<std::uint32_t>(report.samples.size()));
  for (const auto& p : report.samples) {
    w.u32(p.src);
    if (encoding == sample_encoding::src_and_dst) w.u32(p.dst);
  }
  return w.take();
}

/// Parses a report payload; nullopt on truncation, trailing garbage, or an
/// entry count that does not match the buffer.
[[nodiscard]] inline std::optional<sample_report> decode_report(
    std::span<const std::uint8_t> bytes, sample_encoding encoding) {
  wire::reader r(bytes);
  sample_report report;
  std::uint32_t count = 0;
  if (!r.u32(report.origin)) return std::nullopt;
  if (!r.u64(report.covered_packets)) return std::nullopt;
  if (!r.u32(count)) return std::nullopt;

  const std::size_t entry = static_cast<std::size_t>(encoding);
  if (r.remaining() != static_cast<std::size_t>(count) * entry) return std::nullopt;
  report.samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    packet p;
    if (!r.u32(p.src)) return std::nullopt;
    if (encoding == sample_encoding::src_and_dst && !r.u32(p.dst)) return std::nullopt;
    report.samples.push_back(p);
  }
  if (report.covered_packets < report.samples.size()) return std::nullopt;
  return report;
}

/// Payload size the codec will produce (the "E*b" part of the cost model,
/// plus the 16-byte report header that rides inside the O-byte transport).
[[nodiscard]] constexpr std::size_t encoded_size(std::size_t samples,
                                                 sample_encoding encoding) noexcept {
  return 16 + static_cast<std::size_t>(encoding) * samples;
}

}  // namespace memento::netwide
