// Theorem 5.5: the guaranteed network-wide error of the Batch method and the
// optimal batch size under a bandwidth budget.
//
// Two error sources add up (Section 5.2):
//   * delayed reporting - each of the m measurement points holds back up to
//     one batch, i.e. up to b/tau = (O + E b)/B packets (Theorem 5.4), giving
//     m (O + E b) / B;
//   * sampling - Theorems 5.2/5.3 bound it by sqrt(H W Z_{1-delta/2} / tau)
//     = sqrt(H W Z_{1-delta/2} (O + E b) / (B b)).
//
// E_b = m (O + E b)/B + sqrt(H W Z_{1-delta/2} (O + E b)/(B b)).
//
// The Sample method is the b = 1 special case. E_b is unimodal in b (the
// delay part grows linearly, the sampling part decays like 1/sqrt(b)), so the
// integer optimum is found by scanning until the function has risen past its
// best value for a safety margin. Fig. 4 and the Section 5.2 numeric examples
// come straight from these two functions.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "netwide/budget.hpp"
#include "util/normal.hpp"

namespace memento::netwide {

/// Inputs of Theorem 5.5.
struct error_model {
  budget_model budget{};
  std::size_t num_points = 10;   ///< m
  double hierarchy_size = 5.0;   ///< H (1 for plain HH / D-Memento)
  double window = 1e6;           ///< W
  double delta = 1e-4;           ///< confidence delta_s

  [[nodiscard]] double z() const { return z_value(1.0 - delta / 2.0); }
};

/// Decomposition of the Theorem 5.5 bound for one batch size.
struct error_breakdown {
  double delay = 0.0;     ///< m (O + E b) / B
  double sampling = 0.0;  ///< sqrt(H W Z (O + E b) / (B b))

  [[nodiscard]] double total() const noexcept { return delay + sampling; }
};

/// Evaluates the Theorem 5.5 bound at batch size b (in packets of error).
[[nodiscard]] inline error_breakdown error_bound(const error_model& model, std::size_t b) {
  if (b == 0) throw std::invalid_argument("error_bound: b must be >= 1");
  const double report = model.budget.report_bytes(b);
  const double per_point_delay = report / model.budget.bytes_per_packet;
  error_breakdown e;
  e.delay = static_cast<double>(model.num_points) * per_point_delay;
  e.sampling = std::sqrt(model.hierarchy_size * model.window * model.z() * per_point_delay /
                         static_cast<double>(b));
  return e;
}

/// The Sample method's bound: Batch with b = 1 (Section 5.2).
[[nodiscard]] inline error_breakdown sample_error_bound(const error_model& model) {
  return error_bound(model, 1);
}

struct batch_optimum {
  std::size_t batch_size = 1;
  error_breakdown error{};
};

/// Integer argmin of the Theorem 5.5 bound ("easily done with numerical
/// methods"). Scans b upward and stops once the bound has exceeded the best
/// seen by 2x or a hard cap is hit - safe because E_b is unimodal with an
/// eventually-linear tail.
[[nodiscard]] inline batch_optimum optimal_batch(const error_model& model,
                                                 std::size_t max_batch = 1'000'000) {
  batch_optimum best{1, error_bound(model, 1)};
  for (std::size_t b = 2; b <= max_batch; ++b) {
    const auto e = error_bound(model, b);
    if (e.total() < best.error.total()) {
      best = {b, e};
    } else if (e.total() > 2.0 * best.error.total()) {
      break;  // far past the minimum of a unimodal function
    }
  }
  return best;
}

}  // namespace memento::netwide
