// The Section 5.2 bandwidth-budget model, extended to both channel types.
//
// Measurement points talk to the controller over ordinary packets. The model
// covers the two kinds of message a vantage can send:
//
//   * SAMPLE/BATCH reports (the paper's channels): O header bytes (e.g. 64
//     for TCP) plus E bytes per sampled packet. A vantage gathering batches
//     of b samples at sampling rate tau sends one (O + E b)-byte report per
//     b/tau packets, and the budget constraint (O + E b) / (b / tau) <= B
//     pins the maximum usable sampling rate tau = B b / (O + E b).
//   * SUMMARY reports (the snapshot layer's channel): O header bytes plus
//     S bytes per summarized candidate entry (key + estimate; see
//     netwide/summary_channel.hpp). Summaries are not rate-limited by a
//     sampling probability but by cadence: a vantage may ship one
//     e-entry summary every (O + S e) / B ingress packets.
//
// The operator grants the same B bytes of control traffic per ingress
// packet to either channel, which is what makes the error-per-byte
// comparison (bench/netwide_bytes.cpp) apples-to-apples.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace memento::netwide {

/// Cost/budget parameters shared by the analysis and the simulations.
struct budget_model {
  double bytes_per_packet = 1.0;  ///< B: control bytes allowed per ingress packet
  double overhead_bytes = 64.0;   ///< O: per-report header cost (64 = TCP)
  double entry_bytes = 4.0;       ///< E: bytes to encode one sampled packet
  double summary_entry_bytes = 16.0;  ///< S: bytes per summary entry (8B key + 8B estimate)

  /// Size in bytes of a report carrying `samples` entries.
  [[nodiscard]] double report_bytes(std::size_t samples) const noexcept {
    return overhead_bytes + entry_bytes * static_cast<double>(samples);
  }

  /// The maximum sampling probability that keeps batches of b within budget:
  /// tau = B b / (O + E b), clamped to (0, 1]. "Sampling at a lower rate
  /// would not utilize the entire bandwidth" (Section 5.2).
  [[nodiscard]] double max_tau(std::size_t batch_size) const {
    if (batch_size == 0) throw std::invalid_argument("budget: batch size must be >= 1");
    const double b = static_cast<double>(batch_size);
    const double tau = bytes_per_packet * b / report_bytes(batch_size);
    return std::clamp(tau, 0.0, 1.0);
  }

  /// Expected ingress packets between two reports at the budget-saturating
  /// tau: b / tau = (O + E b) / B.
  [[nodiscard]] double packets_per_report(std::size_t batch_size) const {
    return report_bytes(batch_size) / bytes_per_packet;
  }

  /// Size in bytes of a summary report carrying `entries` candidates.
  [[nodiscard]] double summary_report_bytes(std::size_t entries) const noexcept {
    return overhead_bytes + summary_entry_bytes * static_cast<double>(entries);
  }

  /// Ingress packets a vantage must observe between two e-entry summaries
  /// to stay within budget: (O + S e) / B.
  [[nodiscard]] double packets_per_summary(std::size_t entries) const {
    return summary_report_bytes(entries) / bytes_per_packet;
  }

  // --- delta summary pricing -------------------------------------------------
  // A DELTA summary report (netwide/summary_channel.hpp) ships only the
  // candidates whose estimate moved past the change bar since the last
  // shipped summary, plus the keys that left the candidate set. Changed
  // entries cost the full S (key + estimate); removals cost only a key.

  double delta_entry_bytes = 16.0;  ///< bytes per changed entry (8B key + 8B estimate)
  double removal_entry_bytes = 8.0;  ///< bytes per dropped-candidate key

  /// Size in bytes of a delta report: O overhead + changed entries +
  /// removal keys (the epoch/kind preamble rides inside O's slack).
  [[nodiscard]] double summary_delta_report_bytes(std::size_t changed,
                                                  std::size_t removed) const noexcept {
    return overhead_bytes + delta_entry_bytes * static_cast<double>(changed) +
           removal_entry_bytes * static_cast<double>(removed);
  }

  /// Ingress packets between two delta reports of the given shape: the
  /// steady-state cadence bound mirroring packets_per_summary.
  [[nodiscard]] double packets_per_delta(std::size_t changed, std::size_t removed) const {
    return summary_delta_report_bytes(changed, removed) / bytes_per_packet;
  }
};

}  // namespace memento::netwide
