// The Section 5.2 bandwidth-budget model.
//
// Measurement points talk to the controller over ordinary packets: a report
// costs O header bytes (e.g. 64 for TCP) plus E bytes per sampled packet it
// carries (4 for a source IP, 8 for a (src, dst) pair). The operator grants
// B bytes of control traffic per ingress packet; a vantage gathering batches
// of b samples at sampling rate tau therefore sends one (O + E b)-byte report
// per b/tau packets, and the budget constraint (O + E b) / (b / tau) <= B
// pins the maximum usable sampling rate tau = B b / (O + E b).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace memento::netwide {

/// Cost/budget parameters shared by the analysis and the simulations.
struct budget_model {
  double bytes_per_packet = 1.0;  ///< B: control bytes allowed per ingress packet
  double overhead_bytes = 64.0;   ///< O: per-report header cost (64 = TCP)
  double entry_bytes = 4.0;       ///< E: bytes to encode one sampled packet

  /// Size in bytes of a report carrying `samples` entries.
  [[nodiscard]] double report_bytes(std::size_t samples) const noexcept {
    return overhead_bytes + entry_bytes * static_cast<double>(samples);
  }

  /// The maximum sampling probability that keeps batches of b within budget:
  /// tau = B b / (O + E b), clamped to (0, 1]. "Sampling at a lower rate
  /// would not utilize the entire bandwidth" (Section 5.2).
  [[nodiscard]] double max_tau(std::size_t batch_size) const {
    if (batch_size == 0) throw std::invalid_argument("budget: batch size must be >= 1");
    const double b = static_cast<double>(batch_size);
    const double tau = bytes_per_packet * b / report_bytes(batch_size);
    return std::clamp(tau, 0.0, 1.0);
  }

  /// Expected ingress packets between two reports at the budget-saturating
  /// tau: b / tau = (O + E b) / B.
  [[nodiscard]] double packets_per_report(std::size_t batch_size) const {
    return report_bytes(batch_size) / bytes_per_packet;
  }
};

}  // namespace memento::netwide
