// End-to-end network-wide measurement harness: m vantages, one controller,
// one of the three communication methods, byte-accurate budget accounting.
//
// This is the engine behind Fig. 9 (network-wide accuracy at a 1 byte/packet
// budget), Fig. 10 (HTTP-flood detection), the ddos_mitigation example and
// the netwide integration tests. Packets are routed to vantages by a hash of
// the client address - the same client always hits the same load-balancer,
// as in the paper's testbed - and "each packet is measured once" (Section
// 4.3).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "netwide/aggregation.hpp"
#include "netwide/batch_optimizer.hpp"
#include "netwide/controller.hpp"
#include "netwide/measurement_point.hpp"
#include "netwide/summary_channel.hpp"
#include "trace/packet.hpp"

namespace memento::netwide {

/// sample/batch/aggregation are the paper's Section 4.3 methods; summary is
/// the snapshot layer's channel (vantages ship compressed sketch summaries,
/// netwide/summary_channel.hpp); summary_delta ships epoch-tagged deltas
/// against the last shipped summary with periodic full resyncs.
enum class comm_method { sample, batch, aggregation, summary, summary_delta };

[[nodiscard]] constexpr const char* method_name(comm_method m) noexcept {
  switch (m) {
    case comm_method::sample: return "sample";
    case comm_method::batch: return "batch";
    case comm_method::aggregation: return "aggregation";
    case comm_method::summary: return "summary";
    case comm_method::summary_delta: return "summary_delta";
  }
  return "unknown";
}

struct harness_config {
  comm_method method = comm_method::batch;
  std::size_t num_points = 10;      ///< m
  std::uint64_t window = 1'000'000; ///< W (network-wide packets)
  budget_model budget{};            ///< B / O / E
  std::size_t batch_size = 0;       ///< b; 0 = optimal per Theorem 5.5 (sample forces 1)
  std::size_t counters = 4096;      ///< controller algorithm counters
  double delta = 1e-3;
  std::uint64_t seed = 1;
  delta_summary_config delta_summary{};  ///< summary_delta pacing/resync knobs
};

/// One network-wide HHH deployment under a byte budget.
template <typename H>
class netwide_harness {
 public:
  using key_type = typename H::key_type;

  explicit netwide_harness(const harness_config& config) : config_(config) {
    if (config.num_points == 0) throw std::invalid_argument("harness: need >= 1 vantage");

    if (config_.method == comm_method::sample) {
      config_.batch_size = 1;
    } else if (config_.method == comm_method::batch && config_.batch_size == 0) {
      error_model model;
      model.budget = config_.budget;
      model.num_points = config_.num_points;
      model.hierarchy_size = static_cast<double>(H::hierarchy_size);
      model.window = static_cast<double>(config_.window);
      model.delta = config_.delta;
      config_.batch_size = optimal_batch(model).batch_size;
    }

    if (config_.method == comm_method::aggregation) {
      const std::size_t local =
          static_cast<std::size_t>(config_.window / config_.num_points) + 1;
      for (std::size_t i = 0; i < config_.num_points; ++i) {
        agg_points_.emplace_back(static_cast<std::uint32_t>(i), local, config_.budget,
                                 config_.counters);
      }
      agg_controller_ = std::make_unique<ideal_aggregation_controller<H>>();
    } else if (config_.method == comm_method::summary) {
      const std::uint64_t local = config_.window / config_.num_points + 1;
      for (std::size_t i = 0; i < config_.num_points; ++i) {
        sum_points_.emplace_back(static_cast<std::uint32_t>(i), local, config_.counters,
                                 config_.budget, config_.seed + i);
      }
      sum_controller_ = std::make_unique<summary_controller<H>>();
    } else if (config_.method == comm_method::summary_delta) {
      const std::uint64_t local = config_.window / config_.num_points + 1;
      for (std::size_t i = 0; i < config_.num_points; ++i) {
        delta_points_.emplace_back(static_cast<std::uint32_t>(i), local, config_.counters,
                                   config_.budget, config_.delta_summary, config_.seed + i);
      }
      delta_controller_ = std::make_unique<delta_summary_controller<H>>();
    } else {
      const double tau = config_.budget.max_tau(config_.batch_size);
      for (std::size_t i = 0; i < config_.num_points; ++i) {
        points_.emplace_back(static_cast<std::uint32_t>(i), tau, config_.batch_size,
                             config_.seed + i);
      }
      controller_ = std::make_unique<d_h_memento_controller<H>>(
          config_.window, config_.counters, tau, config_.delta);
    }
  }

  /// Feeds one ingress packet through its vantage; reports flow to the
  /// controller as the communication method dictates.
  void ingest(const packet& p) {
    ++packets_;
    const std::size_t v = route(p);
    if (config_.method == comm_method::aggregation) {
      if (auto report = agg_points_[v].observe(p)) {
        agg_controller_->on_report(std::move(*report));
      }
    } else if (config_.method == comm_method::summary) {
      // The summary channel's unit is bytes: decode what the vantage
      // encoded, exactly as a controller process would off the wire.
      if (auto payload = sum_points_[v].observe(p)) {
        auto report = decode_summary_report<key_type>(*payload);
        if (report) sum_controller_->on_report(std::move(*report));
      }
    } else if (config_.method == comm_method::summary_delta) {
      if (auto payload = delta_points_[v].observe(p)) {
        auto report = decode_delta_summary_report<key_type>(*payload);
        if (report) delta_controller_->on_report(std::move(*report));
      }
    } else {
      if (auto report = points_[v].observe(p)) {
        controller_->on_report(*report);
      }
    }
  }

  /// The controller's current estimate of a prefix's global window frequency
  /// (one-sided: never undercounts).
  [[nodiscard]] double estimate(const key_type& prefix) const {
    if (config_.method == comm_method::aggregation) return agg_controller_->query(prefix);
    if (config_.method == comm_method::summary) return sum_controller_->query(prefix);
    if (config_.method == comm_method::summary_delta) return delta_controller_->query(prefix);
    return controller_->query(prefix);
  }

  /// Near-unbiased point estimate - the right input for threshold triggers
  /// (rate limiting, Fig. 10 detection), where the one-sided bound would
  /// systematically fire early. Exact methods return their exact view.
  [[nodiscard]] double estimate_midpoint(const key_type& prefix) const {
    if (config_.method == comm_method::aggregation) return agg_controller_->query(prefix);
    if (config_.method == comm_method::summary) return sum_controller_->query_point(prefix);
    if (config_.method == comm_method::summary_delta) {
      return delta_controller_->query_point(prefix);
    }
    return controller_->query_midpoint(prefix);
  }

  /// The controller's HHH set (compensation-free: symmetric across methods,
  /// matching the Section 6.3 threshold-based mitigation application).
  [[nodiscard]] std::vector<hhh_entry<key_type>> output(double theta) const {
    if (config_.method == comm_method::aggregation) {
      return agg_controller_->output(theta, config_.window);
    }
    if (config_.method == comm_method::summary) {
      return sum_controller_->output(theta, config_.window);
    }
    if (config_.method == comm_method::summary_delta) {
      return delta_controller_->output(theta, config_.window);
    }
    return controller_->output(theta, /*compensation=*/0.0);
  }

  /// Total control bytes spent by all vantages.
  [[nodiscard]] double bytes_sent() const {
    double total = 0.0;
    for (const auto& mp : points_) total += mp.bytes_sent(config_.budget);
    for (const auto& ap : agg_points_) total += ap.bytes_sent();
    for (const auto& sp : sum_points_) total += sp.bytes_sent();
    for (const auto& dp : delta_points_) total += dp.bytes_sent();
    return total;
  }

  /// Control bytes per ingress packet actually used (should be <= B).
  [[nodiscard]] double bytes_per_packet() const {
    return packets_ == 0 ? 0.0 : bytes_sent() / static_cast<double>(packets_);
  }

  [[nodiscard]] std::uint64_t reports_sent() const {
    std::uint64_t total = 0;
    for (const auto& mp : points_) total += mp.reports_sent();
    for (const auto& ap : agg_points_) total += ap.reports_sent();
    for (const auto& sp : sum_points_) total += sp.reports_sent();
    for (const auto& dp : delta_points_) total += dp.reports_sent();
    return total;
  }

  [[nodiscard]] std::uint64_t packets() const noexcept { return packets_; }
  [[nodiscard]] const harness_config& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t batch_size() const noexcept { return config_.batch_size; }

 private:
  /// Client -> vantage routing: stable hash of the source address.
  [[nodiscard]] std::size_t route(const packet& p) const noexcept {
    std::uint64_t z = p.src + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>((z ^ (z >> 31)) % config_.num_points);
  }

  harness_config config_;
  std::vector<measurement_point> points_;
  std::vector<aggregating_point<H>> agg_points_;
  std::vector<summary_point<H>> sum_points_;
  std::vector<delta_summary_point<H>> delta_points_;
  std::unique_ptr<d_h_memento_controller<H>> controller_;
  std::unique_ptr<ideal_aggregation_controller<H>> agg_controller_;
  std::unique_ptr<summary_controller<H>> sum_controller_;
  std::unique_ptr<delta_summary_controller<H>> delta_controller_;
  std::uint64_t packets_ = 0;
};

}  // namespace memento::netwide
