// Measurement-point side of the Sample and Batch communication methods
// (Section 4.3).
//
// A vantage observes every ingress packet, samples it with probability tau,
// and buffers sampled packets. Once b samples have accumulated it emits a
// report carrying the samples plus the number of packets observed since the
// previous report - the controller replays the samples as Full updates and
// the remainder as Window updates, so the controller's window tracks the
// union of all vantages' traffic. The Sample method is Batch with b = 1.
//
// Byte accounting is built in so simulations can assert the budget is
// honored: each report costs O + E * b bytes against B bytes/packet accrued.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "netwide/budget.hpp"
#include "trace/packet.hpp"
#include "util/random.hpp"

namespace memento::netwide {

/// One Sample/Batch report from a vantage to the controller.
struct sample_report {
  std::uint32_t origin = 0;           ///< measurement-point id
  std::vector<packet> samples;        ///< the sampled packets (size <= b)
  std::uint64_t covered_packets = 0;  ///< packets observed since the last report
};

class measurement_point {
 public:
  /// @param id         vantage identifier stamped on reports.
  /// @param tau        per-packet sampling probability.
  /// @param batch_size b: samples per report (1 == the Sample method).
  measurement_point(std::uint32_t id, double tau, std::size_t batch_size,
                    std::uint64_t seed = 1)
      : sampler_(tau, 1u << 16, seed ^ (0x51ed2701ULL * (id + 1))),
        id_(id),
        batch_size_(batch_size) {
    if (batch_size == 0) throw std::invalid_argument("measurement_point: b must be >= 1");
    if (tau <= 0.0 || tau > 1.0) {
      throw std::invalid_argument("measurement_point: tau must be in (0, 1]");
    }
    buffer_.reserve(batch_size);
  }

  /// Convenience: budget-saturating vantage for a given model and b.
  measurement_point(std::uint32_t id, const budget_model& budget, std::size_t batch_size,
                    std::uint64_t seed = 1)
      : measurement_point(id, budget.max_tau(batch_size), batch_size, seed) {}

  /// Observes one ingress packet; returns a full report when the batch fills.
  [[nodiscard]] std::optional<sample_report> observe(const packet& p) {
    ++covered_;
    ++observed_total_;
    if (sampler_.sample()) buffer_.push_back(p);
    if (buffer_.size() < batch_size_) return std::nullopt;

    sample_report report{id_, std::move(buffer_), covered_};
    buffer_ = {};
    buffer_.reserve(batch_size_);
    covered_ = 0;
    ++reports_sent_;
    return report;
  }

  /// Flushes a partial batch (end of simulation / graceful shutdown).
  [[nodiscard]] std::optional<sample_report> flush() {
    if (buffer_.empty() && covered_ == 0) return std::nullopt;
    sample_report report{id_, std::move(buffer_), covered_};
    buffer_ = {};
    covered_ = 0;
    ++reports_sent_;
    return report;
  }

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_size_; }
  [[nodiscard]] std::uint64_t observed_total() const noexcept { return observed_total_; }
  [[nodiscard]] std::uint64_t reports_sent() const noexcept { return reports_sent_; }

  /// Control bytes spent so far under a given cost model.
  [[nodiscard]] double bytes_sent(const budget_model& budget) const noexcept {
    return static_cast<double>(reports_sent_) * budget.report_bytes(batch_size_);
  }

 private:
  random_table_sampler sampler_;
  std::vector<packet> buffer_;
  std::uint32_t id_;
  std::size_t batch_size_;
  std::uint64_t covered_ = 0;
  std::uint64_t observed_total_ = 0;
  std::uint64_t reports_sent_ = 0;
};

}  // namespace memento::netwide
