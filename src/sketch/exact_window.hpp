// Exact sliding-window and interval counters.
//
// These are the ground-truth oracles: every accuracy figure (Fig. 5 b/d/f,
// Fig. 8, Fig. 9) measures algorithm estimates against `exact_window`, and
// the OPT detector of Fig. 10 is an exact window combined with the shared
// HHH solver. They are also the reference model for the property tests
// ("window semantics: items older than W never counted").
//
// exact_window keeps a ring buffer of the last W keys plus a count map:
// O(1) update, O(1) exact query, O(W) memory - affordable at the window
// sizes the experiments use, and deliberately simple enough to be obviously
// correct (the whole point of a test oracle).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace memento {

template <typename Key>
class exact_window {
 public:
  explicit exact_window(std::size_t window_size) : window_(window_size) {
    if (window_size == 0) throw std::invalid_argument("exact_window: W must be >= 1");
    ring_.reserve(window_size);
    counts_.reserve(window_size / 8 + 16);
  }

  void add(const Key& x) {
    if (ring_.size() < window_) {
      ring_.push_back(x);
    } else {
      const Key& old = ring_[head_];
      auto it = counts_.find(old);
      if (it != counts_.end() && --(it->second) == 0) counts_.erase(it);
      ring_[head_] = x;
      head_ = head_ + 1 == window_ ? 0 : head_ + 1;
    }
    ++counts_[x];
    ++total_;
  }

  /// Exact number of occurrences of x among the last min(N, W) items.
  [[nodiscard]] std::uint64_t query(const Key& x) const {
    const auto it = counts_.find(x);
    return it == counts_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::size_t window_size() const noexcept { return window_; }
  /// Items currently inside the window (min(N, W)).
  [[nodiscard]] std::size_t occupancy() const noexcept { return ring_.size(); }
  /// Total items ever added.
  [[nodiscard]] std::uint64_t stream_length() const noexcept { return total_; }
  /// Distinct keys currently in the window.
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }

  /// Invokes fn(key, count) for every key in the window.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, count] : counts_) fn(key, count);
  }

 private:
  std::size_t window_;
  std::vector<Key> ring_;
  std::size_t head_ = 0;
  std::unordered_map<Key, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact interval counter: counts since the last reset. Models the paper's
/// Interval method (Section 3) and grounds the MST/RHHH error measurements.
template <typename Key>
class exact_interval {
 public:
  void add(const Key& x) {
    ++counts_[x];
    ++total_;
  }

  [[nodiscard]] std::uint64_t query(const Key& x) const {
    const auto it = counts_.find(x);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Ends the measurement period (the paper's periodic reset, Section 2).
  void reset() {
    counts_.clear();
    total_ = 0;
  }

  [[nodiscard]] std::uint64_t stream_length() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, count] : counts_) fn(key, count);
  }

 private:
  std::unordered_map<Key, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace memento
