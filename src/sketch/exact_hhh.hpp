// Exact hierarchical ground truth: per-pattern exact sliding windows plus the
// shared HHH solver. Provides both exact per-prefix window frequencies (for
// the Fig. 8/9 error measurements) and the exact window HHH set (the OPT
// detector of Fig. 10 and the coverage/accuracy property tests).
#pragma once

#include <cstdint>
#include <vector>

#include "hierarchy/hhh_solver.hpp"
#include "sketch/exact_window.hpp"
#include "trace/packet.hpp"

namespace memento {

template <typename H>
class exact_hhh {
 public:
  using key_type = typename H::key_type;

  explicit exact_hhh(std::size_t window_size) {
    windows_.reserve(H::hierarchy_size);
    for (std::size_t i = 0; i < H::hierarchy_size; ++i) windows_.emplace_back(window_size);
  }

  /// Feeds one packet: every one of its H generalizations is counted exactly.
  void update(const packet& p) {
    for (std::size_t i = 0; i < H::hierarchy_size; ++i) {
      windows_[i].add(H::key_at(p, i));
    }
    ++stream_length_;
  }

  /// Exact window frequency of an arbitrary prefix.
  [[nodiscard]] std::uint64_t query(const key_type& prefix) const {
    return windows_[H::pattern_index(prefix)].query(prefix);
  }

  /// The exact window HHH set at threshold theta (fraction of W).
  [[nodiscard]] std::vector<hhh_entry<key_type>> output(double theta) const {
    std::vector<key_type> candidates;
    for (const auto& w : windows_) {
      w.for_each([&](const key_type& k, std::uint64_t) { candidates.push_back(k); });
    }
    const double threshold = theta * static_cast<double>(windows_.front().window_size());
    return solve_hhh<H>(
        std::move(candidates),
        [this](const key_type& k) {
          const auto f = static_cast<double>(query(k));
          return freq_bounds{f, f};
        },
        threshold, /*compensation=*/0.0);
  }

  [[nodiscard]] std::uint64_t stream_length() const noexcept { return stream_length_; }
  [[nodiscard]] std::size_t window_size() const noexcept {
    return windows_.front().window_size();
  }

 private:
  std::vector<exact_window<key_type>> windows_;
  std::uint64_t stream_length_ = 0;
};

}  // namespace memento
