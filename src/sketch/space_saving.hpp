// Space Saving [Metwally et al., ICDT 2005] with the classic stream-summary
// structure: worst-case O(1) increments and evictions.
//
// This is the substrate of the entire repository (Section 2 of the paper):
// Memento uses one instance to count in-frame frequencies approximately; MST
// keeps H instances (one per prefix pattern); RHHH keeps H instances updated
// by sampling. The guarantees relied upon everywhere:
//
//   * no undercount:  query(x) >= f(x) for every x (monitored or not);
//   * bounded overcount:  query(x) - f(x) <= min_count() <= N / capacity,
//     where N is the number of add() calls since the last flush().
//
// Layout: counter VALUES live in their own flat array (counts_), so the
// count scans that back threshold queries (for_each_at_least) and the min
// cross-check (min_scan) are contiguous 64-bit SIMD loads (util/simd.hpp);
// everything else a mutation touches (key, overestimate, chain links, index
// back-reference) is packed into one 32-byte node beside it - see cnode for
// why splitting further costs more than it buys. Equal-count counters are
// chained into a bucket; buckets form
// an ascending doubly-linked list whose head is the minimum. All links are
// 32-bit indices into flat vectors - compact and cache-predictable (Per.16 /
// Per.19), no per-update allocation (Per.14): bucket nodes are recycled
// through a free list. The dominant tau=1 operation - incrementing a counter
// that is alone in its bucket - renames the bucket in place instead of
// paying the detach/allocate/attach dance (see increment()).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "util/compress.hpp"
#include "util/flat_hash.hpp"
#include "util/simd.hpp"
#include "util/wire.hpp"

namespace memento {

template <typename Key>
class space_saving {
 public:
  /// A monitored (key, estimate) pair; `overestimate` is the classic
  /// Space-Saving error bound recorded when the counter was last reallocated,
  /// so `count - overestimate` never exceeds the true frequency.
  struct entry {
    Key key{};
    std::uint64_t count = 0;
    std::uint64_t overestimate = 0;
  };

  /// @param capacity number of counters (the paper's k); must be >= 1.
  explicit space_saving(std::size_t capacity)
      : nodes_(capacity), counts_(capacity, 0) {
    if (capacity == 0) throw std::invalid_argument("space_saving: capacity must be >= 1");
    if (capacity >= npos) throw std::invalid_argument("space_saving: capacity too large");
    index_.reserve(capacity * 2);
    buckets_.reserve(capacity + 1);
  }

  /// Processes one arrival of `x` (Section 2's three cases: increment an
  /// existing counter, claim a free one, or evict the minimum) and returns
  /// x's post-increment counter value, sparing callers a second lookup. O(1).
  std::uint64_t add(const Key& x) { return add_prehashed(index_.bucket(x), x); }

  /// add(x) with x's home bucket precomputed via index_bucket(). Batched
  /// callers hash a chunk of keys in one vectorizable pass and replay the
  /// (serial) structural updates here; the index never grows after
  /// construction, so precomputed buckets stay valid across adds.
  std::uint64_t add_prehashed(std::size_t bucket, const Key& x) {
    ++adds_;
    if (const std::uint32_t* idx = index_.find_prehashed(bucket, x)) {
      return increment(*idx);
    }
    if (used_ < capacity()) {
      const auto idx = static_cast<std::uint32_t>(used_++);
      nodes_[idx].key = x;
      counts_[idx] = 1;
      nodes_[idx].overest = 0;
      nodes_[idx].islot = static_cast<std::uint32_t>(index_.emplace_prehashed(bucket, x, idx));
      attach_to_count_one(idx);
      return 1;
    }
    // Evict the minimum: reuse its slot for x, inheriting count (+1) and
    // recording the inherited value as the overestimate. The old key's index
    // entry is removed by stored slot position - no probe; the backward
    // shift's relocations flow back into the affected counters' islot.
    const std::uint32_t idx = buckets_[min_bucket_].head;
    index_.erase_at(nodes_[idx].islot, [this](std::uint32_t moved, std::size_t pos) {
      nodes_[moved].islot = static_cast<std::uint32_t>(pos);
    });
    nodes_[idx].overest = counts_[idx];
    nodes_[idx].key = x;
    nodes_[idx].islot = static_cast<std::uint32_t>(index_.emplace_prehashed(bucket, x, idx));
    return increment(idx);
  }

  /// Bulk add: mirrors the batched update loop the sketches run (and
  /// HammerSlide's insert(T*, start, end) shape) - hash a chunk of keys in
  /// one pure pass, prefetch their index lines, then replay the structural
  /// updates with everything resident.
  void add_batch(const Key* xs, std::size_t n) {
    std::size_t i = 0;
    while (i < n) {
      const std::size_t m = std::min(kAddChunk, n - i);
      std::size_t buckets[kAddChunk];
      for (std::size_t j = 0; j < m; ++j) buckets[j] = index_.bucket(xs[i + j]);
      for (std::size_t j = 0; j < m; ++j) index_.prefetch_bucket(buckets[j]);
      for (std::size_t j = 0; j < m; ++j) add_prehashed(buckets[j], xs[i + j]);
      i += m;
    }
  }

  /// Home bucket of x in the counter index (see flat_hash::bucket); feed to
  /// add_prehashed / prefetch_bucket.
  [[nodiscard]] std::size_t index_bucket(const Key& x) const noexcept {
    return index_.bucket(x);
  }

  /// Upper-bound estimate: the counter if monitored, otherwise the minimum
  /// counter once the structure is full (an unmonitored flow can have been
  /// evicted with at most that many arrivals), otherwise 0.
  [[nodiscard]] std::uint64_t query(const Key& x) const {
    if (const std::uint32_t* idx = index_.find(x)) {
      return counts_[*idx];
    }
    return used_ == capacity() ? min_count() : 0;
  }

  /// Lower-bound estimate: count minus the recorded overestimate (0 when the
  /// flow is not monitored). Never exceeds the true frequency.
  [[nodiscard]] std::uint64_t query_lower(const Key& x) const {
    if (const std::uint32_t* idx = index_.find(x)) {
      return counts_[*idx] - nodes_[*idx].overest;
    }
    return 0;
  }

  [[nodiscard]] bool contains(const Key& x) const { return index_.contains(x); }

  /// Pulls x's index slot toward the cache ahead of an add(); issued by the
  /// batched update path for keys a few packets downstream.
  void prefetch(const Key& x) const noexcept { index_.prefetch(x); }

  /// prefetch() by precomputed home bucket (see index_bucket()).
  void prefetch_bucket(std::size_t bucket) const noexcept { index_.prefetch_bucket(bucket); }

  /// Value of the minimum counter (0 when empty). O(1) via the bucket list.
  [[nodiscard]] std::uint64_t min_count() const {
    return min_bucket_ == npos ? 0 : buckets_[min_bucket_].count;
  }

  /// The minimum counter value recomputed by a SIMD scan over the flat count
  /// array - an O(k) cross-check of the O(1) bucket-list answer, exposed so
  /// tests and monitoring can validate the structure instead of trusting it.
  [[nodiscard]] std::uint64_t min_scan() const {
    if (used_ == 0) return 0;
    return simd::min_scan_u64(counts_.data(), used_).first;
  }

  /// Resets all counters (Memento calls this at every frame boundary,
  /// Algorithm 1 line 4). Capacity is retained; bucket nodes are recycled.
  void flush() {
    index_.clear();
    buckets_.clear();
    bucket_free_ = npos;
    min_bucket_ = npos;
    used_ = 0;
    adds_ = 0;
  }

  /// Number of add() calls since construction or the last flush().
  [[nodiscard]] std::uint64_t stream_length() const noexcept { return adds_; }

  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return nodes_.size(); }

  /// Snapshot of all monitored entries (used by HH output, MST/RHHH lattice
  /// candidates, and the Aggregation communication method).
  [[nodiscard]] std::vector<entry> entries() const {
    std::vector<entry> out;
    out.reserve(used_);
    for (std::size_t i = 0; i < used_; ++i) {
      out.push_back({nodes_[i].key, counts_[i], nodes_[i].overest});
    }
    return out;
  }

  /// Invokes fn(key, count, overestimate) for every monitored entry.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < used_; ++i) {
      fn(nodes_[i].key, counts_[i], nodes_[i].overest);
    }
  }

  /// Invokes fn(key, count, overestimate) for every entry with
  /// count >= bar - the heavy-hitter selection loop. The count array is
  /// contiguous, so the filter is a SIMD compare+movemask sweep that touches
  /// nodes only for survivors (few, when bar is a real threshold).
  template <typename Fn>
  void for_each_at_least(std::uint64_t bar, Fn&& fn) const {
    simd::scan_ge_u64(counts_.data(), used_, bar, [&](std::size_t i) {
      fn(nodes_[i].key, counts_[i], nodes_[i].overest);
    });
  }

  /// Probe-behavior stats of the backing key index (see flat_hash::stats).
  [[nodiscard]] flat_hash_stats index_stats() const { return index_.stats(); }

  // --- snapshot support ------------------------------------------------------
  // The structure is serialized EXACTLY - counter slots, bucket chains, the
  // bucket free list, and the index's slot layout - because behavior depends
  // on all of it: eviction takes the head of the minimum bucket's chain,
  // and chain order is operation-history. A restored instance therefore
  // continues the stream bit-identically. The wire format predates the
  // structure-of-arrays split (each counter's fields are interleaved on the
  // wire), so snapshots cross library versions and dispatch tiers freely.

  static constexpr std::uint16_t kWireTag = 0x5353;  ///< "SS"
  static constexpr std::uint16_t kWireVersion = 1;
  /// Streamed framing (wire::sink/source): structure-of-arrays columns with
  /// per-column compression (util/compress.hpp) and a section CRC.
  static constexpr std::uint16_t kWireVersionStream = 2;

  /// Serializes the full structure as one versioned section.
  void save(wire::writer& w) const {
    const std::size_t tok = w.begin_section(kWireTag, kWireVersion);
    w.varint(capacity());
    w.varint(used_);
    w.u64(adds_);
    w.u32(min_bucket_);
    w.u32(bucket_free_);
    w.varint(buckets_.size());
    for (const bucket_node& b : buckets_) {
      w.varint(b.count);
      w.u32(b.head);
      w.u32(b.prev);
      w.u32(b.next);
    }
    for (std::size_t i = 0; i < used_; ++i) {
      wire::codec<Key>::put(w, nodes_[i].key);
      w.varint(counts_[i]);
      w.varint(nodes_[i].overest);
      w.u32(nodes_[i].prev);
      w.u32(nodes_[i].next);
      w.u32(nodes_[i].bucket);
      w.u32(nodes_[i].islot);
    }
    index_.save(w);
    w.end_section(tok);
  }

  /// Rebuilds an instance from save() output; nullopt on ANY malformed
  /// input - unknown version, out-of-range link, index/counter mismatch,
  /// broken chain topology - never a crash or a structurally unsound
  /// instance. Every 32-bit link is range-checked, the index is
  /// cross-checked entry-by-entry against the counters' islot
  /// back-references, and the bucket lists are walked end to end (ascending
  /// counts, doubly linked, chains owning their counters, free list
  /// disjoint), so later operations are correct by construction.
  [[nodiscard]] static std::optional<space_saving> restore(wire::reader& r) {
    std::uint16_t ptag = 0, pver = 0;
    if (r.peek_section(ptag, pver) && ptag == kWireTag && pver == kWireVersionStream) {
      wire::source src(r.rest());
      auto out = restore(src);
      if (!out) return std::nullopt;
      r.skip(src.consumed());
      return out;
    }
    std::uint16_t version = 0;
    wire::reader body;
    if (!r.open_section(kWireTag, version, body) || version != kWireVersion) return std::nullopt;

    std::uint64_t cap = 0, used = 0, nbuckets = 0;
    std::uint64_t adds = 0;
    std::uint32_t min_bucket = 0, bucket_free = 0;
    if (!body.varint(cap) || !body.varint(used) || !body.u64(adds)) return std::nullopt;
    if (!body.u32(min_bucket) || !body.u32(bucket_free) || !body.varint(nbuckets)) {
      return std::nullopt;
    }
    if (cap == 0 || cap >= npos || cap > kMaxRestoreCounters) return std::nullopt;
    if (used > cap || nbuckets > 2 * cap + 2) return std::nullopt;
    // Each bucket costs >= 13 bytes, each counter >= 26: reject lying counts
    // before touching memory.
    if (nbuckets * 13 > body.remaining()) return std::nullopt;

    space_saving out(static_cast<std::size_t>(cap));
    out.used_ = static_cast<std::size_t>(used);
    out.adds_ = adds;
    out.min_bucket_ = min_bucket;
    out.bucket_free_ = bucket_free;
    out.buckets_.resize(static_cast<std::size_t>(nbuckets));
    for (auto& b : out.buckets_) {
      if (!body.varint(b.count) || !body.u32(b.head) || !body.u32(b.prev) || !body.u32(b.next)) {
        return std::nullopt;
      }
    }
    if (used * 26 > body.remaining()) return std::nullopt;
    for (std::size_t i = 0; i < out.used_; ++i) {
      cnode& m = out.nodes_[i];
      if (!wire::codec<Key>::get(body, m.key) || !body.varint(out.counts_[i]) ||
          !body.varint(m.overest)) {
        return std::nullopt;
      }
      if (!body.u32(m.prev) || !body.u32(m.next) || !body.u32(m.bucket) || !body.u32(m.islot)) {
        return std::nullopt;
      }
    }
    if (!out.restored_topology_valid()) return std::nullopt;
    if (!out.index_.restore(body) || !body.done()) return std::nullopt;
    if (!out.restored_index_valid()) return std::nullopt;
    return out;
  }

  /// Streamed, compressed counterpart of save(): the same state shipped as
  /// structure-of-arrays columns (matching the in-memory split), each
  /// through the codec that fits it - zig-zag deltas for the count arrays,
  /// FoR blocks for keys and link indices. npos links are mapped to 0 on
  /// the wire (real links shift up by one) so the 2^32-1 sentinel does not
  /// blow every frame of reference.
  void save(wire::sink& s, bool packed = true) const {
    s.begin_section(kWireTag, kWireVersionStream);
    s.u8(packed ? wire::kCodecPacked : 0);
    s.varint(capacity());
    s.varint(used_);
    s.u64(adds_);
    s.u32(min_bucket_);
    s.u32(bucket_free_);
    s.varint(buckets_.size());
    std::size_t i = 0;
    wire::put_zigzag_u64(s, buckets_.size(), [&] { return buckets_[i++].count; });
    i = 0;
    wire::put_u64_array(s, buckets_.size(), packed, [&] { return wire_link(buckets_[i++].head); });
    i = 0;
    wire::put_u64_array(s, buckets_.size(), packed, [&] { return wire_link(buckets_[i++].prev); });
    i = 0;
    wire::put_u64_array(s, buckets_.size(), packed, [&] { return wire_link(buckets_[i++].next); });
    i = 0;
    wire::put_u64_array(s, used_, packed,
                        [&] { return wire::codec<Key>::to_u64(nodes_[i++].key); });
    i = 0;
    wire::put_zigzag_u64(s, used_, [&] { return counts_[i++]; });
    i = 0;
    wire::put_zigzag_u64(s, used_, [&] { return nodes_[i++].overest; });
    i = 0;
    wire::put_u64_array(s, used_, packed, [&] { return wire_link(nodes_[i++].prev); });
    i = 0;
    wire::put_u64_array(s, used_, packed, [&] { return wire_link(nodes_[i++].next); });
    i = 0;
    wire::put_u64_array(s, used_, packed, [&] { return wire_link(nodes_[i++].bucket); });
    i = 0;
    wire::put_u64_array(s, used_, packed,
                        [&] { return static_cast<std::uint64_t>(nodes_[i++].islot); });
    // The key index is fully determined by the columns above: entry i lives
    // at slot islot[i] with key key[i] and value i. Shipping only its
    // capacity and rebuilding at restore saves a second copy of every key
    // (plus positions and values) - the largest single block of v1 wire.
    s.varint(index_.capacity());
    s.end_section();
  }

  /// Rebuilds an instance from streamed save() output, under the exact
  /// validation contract of the buffered restore() - the columns land in the
  /// same arrays and go through the same topology / index cross-checks, plus
  /// the section CRC (which is what catches bit flips that still decode to
  /// range-valid values inside packed blocks).
  [[nodiscard]] static std::optional<space_saving> restore(wire::source& s) {
    std::uint16_t version = 0;
    if (!s.open_section(kWireTag, version) || version != kWireVersionStream) return std::nullopt;
    std::uint8_t flags = 0;
    if (!s.u8(flags) || (flags & ~wire::kCodecKnownMask) != 0) return std::nullopt;
    const bool packed = (flags & wire::kCodecPacked) != 0;
    std::uint64_t cap = 0, used = 0, nbuckets = 0, adds = 0;
    std::uint32_t min_bucket = 0, bucket_free = 0;
    if (!s.varint(cap) || !s.varint(used) || !s.u64(adds) || !s.u32(min_bucket) ||
        !s.u32(bucket_free) || !s.varint(nbuckets)) {
      return std::nullopt;
    }
    if (cap == 0 || cap >= npos || cap > kMaxRestoreCounters) return std::nullopt;
    if (used > cap || nbuckets > 2 * cap + 2) return std::nullopt;

    space_saving out(static_cast<std::size_t>(cap));
    out.used_ = static_cast<std::size_t>(used);
    out.adds_ = adds;
    out.min_bucket_ = min_bucket;
    out.bucket_free_ = bucket_free;
    out.buckets_.resize(static_cast<std::size_t>(nbuckets));
    const auto read_links = [&](std::uint64_t n, auto&& set) {
      std::size_t j = 0;
      return wire::get_u64_array(s, static_cast<std::size_t>(n), packed, [&](std::uint64_t raw) {
        std::uint32_t link = 0;
        if (!unwire_link(raw, link)) return false;
        set(j++, link);
        return true;
      });
    };
    std::size_t i = 0;
    if (!wire::get_zigzag_u64(s, nbuckets, [&](std::uint64_t v) {
          out.buckets_[i++].count = v;
          return true;
        })) {
      return std::nullopt;
    }
    if (!read_links(nbuckets, [&](std::size_t j, std::uint32_t v) { out.buckets_[j].head = v; }) ||
        !read_links(nbuckets, [&](std::size_t j, std::uint32_t v) { out.buckets_[j].prev = v; }) ||
        !read_links(nbuckets, [&](std::size_t j, std::uint32_t v) { out.buckets_[j].next = v; })) {
      return std::nullopt;
    }
    i = 0;
    if (!wire::get_u64_array(s, used, packed, [&](std::uint64_t raw) {
          return wire::codec<Key>::from_u64(raw, out.nodes_[i++].key);
        })) {
      return std::nullopt;
    }
    i = 0;
    if (!wire::get_zigzag_u64(s, used, [&](std::uint64_t v) {
          out.counts_[i++] = v;
          return true;
        })) {
      return std::nullopt;
    }
    i = 0;
    if (!wire::get_zigzag_u64(s, used, [&](std::uint64_t v) {
          out.nodes_[i++].overest = v;
          return true;
        })) {
      return std::nullopt;
    }
    if (!read_links(used, [&](std::size_t j, std::uint32_t v) { out.nodes_[j].prev = v; }) ||
        !read_links(used, [&](std::size_t j, std::uint32_t v) { out.nodes_[j].next = v; }) ||
        !read_links(used, [&](std::size_t j, std::uint32_t v) { out.nodes_[j].bucket = v; })) {
      return std::nullopt;
    }
    i = 0;
    if (!wire::get_u64_array(s, used, packed, [&](std::uint64_t raw) {
          if (raw > npos) return false;
          out.nodes_[i++].islot = static_cast<std::uint32_t>(raw);
          return true;
        })) {
      return std::nullopt;
    }
    if (!out.restored_topology_valid()) return std::nullopt;
    // Rebuild the key index from the node columns at the exact saved
    // capacity and slot positions, so a v1 re-save of the restored object
    // is byte-identical to a v1 re-save of the original. rebuild_placed
    // rejects out-of-range or colliding islot values and unreachable probe
    // layouts; restored_index_valid still cross-checks the bijection.
    std::uint64_t icap = 0;
    if (!s.varint(icap)) return std::nullopt;
    std::size_t j = 0;
    if (!out.index_.rebuild_placed(
            icap, used, [&](std::uint64_t, std::uint64_t& pos, Key& key, std::uint64_t& value) {
              pos = out.nodes_[j].islot;
              key = out.nodes_[j].key;
              value = j;
              ++j;
            })) {
      return std::nullopt;
    }
    if (!out.restored_index_valid()) return std::nullopt;
    if (!s.close_section()) return std::nullopt;
    return out;
  }

 private:
  static constexpr std::uint32_t npos = std::numeric_limits<std::uint32_t>::max();
  /// Restore-side allocation guard: far above any real config (the paper's
  /// k is hundreds to thousands) while bounding what a crafted tiny
  /// snapshot can make restore() allocate before rejection to tens of MB.
  static constexpr std::uint64_t kMaxRestoreCounters = std::uint64_t{1} << 18;
  /// add_batch's hash-ahead distance; matches the sketches' batch chunking.
  static constexpr std::size_t kAddChunk = 32;

  friend class snapshot_builder;  ///< reshard's bulk state loader (snapshot/reshard.hpp)

  /// Everything a counter mutation touches besides its count, packed into
  /// ONE node (32 bytes for 8-byte keys) so an add dirties at most two data
  /// lines: this node and the counts_ entry. Only the counts stay split out
  /// as a separate flat array - they are what the SIMD threshold/min scans
  /// stream over; scattering key/overestimate/links into parallel arrays as
  /// well measurably hurt the batched update path (more resident lines per
  /// add, none of them prefetchable before the index lookup resolves).
  struct cnode {
    Key key{};
    std::uint64_t overest = 0;    ///< overestimate recorded at last reallocation
    std::uint32_t prev = npos;    ///< previous counter in the same bucket
    std::uint32_t next = npos;    ///< next counter in the same bucket
    std::uint32_t bucket = npos;  ///< owning bucket index
    std::uint32_t islot = npos;   ///< key's slot in index_ (probe-free eviction erase)
  };

  struct bucket_node {
    std::uint64_t count = 0;
    std::uint32_t head = npos;  ///< first counter in this bucket
    std::uint32_t prev = npos;  ///< bucket with the next-smaller count
    std::uint32_t next = npos;  ///< bucket with the next-larger count
  };

  /// Wire image of a link field: npos becomes 0, real links shift up by
  /// one. Keeps the 2^32-1 sentinel out of FoR frames of reference (one
  /// npos in a column of small indices would force 32-bit deltas).
  [[nodiscard]] static std::uint64_t wire_link(std::uint32_t link) noexcept {
    return link == npos ? 0 : static_cast<std::uint64_t>(link) + 1;
  }

  /// Inverse of wire_link; rejects values that would alias npos.
  [[nodiscard]] static bool unwire_link(std::uint64_t raw, std::uint32_t& link) noexcept {
    if (raw > npos) return false;  // raw - 1 would forge npos or overflow
    link = raw == 0 ? npos : static_cast<std::uint32_t>(raw - 1);
    return true;
  }

  /// Shared restore validation, phase 1: everything checkable without the
  /// key index. Range-checks every link and count, then walks the live
  /// bucket list (ascending, doubly linked, every chain owning its counters
  /// at the bucket's count) and the free list, requiring them to partition
  /// the bucket array exactly - range-valid links are not enough, a counter
  /// pointing at the wrong (but in-range) bucket would silently corrupt
  /// counts on the next add.
  [[nodiscard]] bool restored_topology_valid() const {
    const std::uint64_t nbuckets = buckets_.size();
    const auto link_ok = [](std::uint32_t link, std::uint64_t bound) {
      return link == npos || link < bound;
    };
    for (const auto& b : buckets_) {
      if (!link_ok(b.head, used_) || !link_ok(b.prev, nbuckets) || !link_ok(b.next, nbuckets)) {
        return false;
      }
    }
    for (std::size_t i = 0; i < used_; ++i) {
      const cnode& m = nodes_[i];
      if (counts_[i] == 0 || m.overest >= counts_[i]) return false;
      if (!link_ok(m.prev, used_) || !link_ok(m.next, used_)) return false;
      if (m.bucket >= nbuckets) return false;  // live counters own a bucket
    }
    if (!link_ok(min_bucket_, nbuckets) || !link_ok(bucket_free_, nbuckets)) return false;
    // The eviction path dereferences buckets_[min_bucket_].head whenever the
    // structure is non-empty; an empty structure must have no minimum.
    if ((used_ > 0) != (min_bucket_ != npos)) return false;
    std::vector<std::uint8_t> counter_seen(used_, 0);
    std::vector<std::uint8_t> bucket_seen(buckets_.size(), 0);
    std::uint64_t live_counters = 0;
    std::uint64_t prev_count = 0;
    std::uint32_t prev_bkt = npos;
    for (std::uint32_t bkt = min_bucket_; bkt != npos; bkt = buckets_[bkt].next) {
      if (bucket_seen[bkt]) return false;  // cycle
      bucket_seen[bkt] = 1;
      const bucket_node& b = buckets_[bkt];
      if (b.prev != prev_bkt) return false;
      if (prev_bkt != npos && b.count <= prev_count) return false;  // ascending
      if (b.head == npos) return false;  // emptied buckets are freed, never linked
      prev_count = b.count;
      prev_bkt = bkt;
      std::uint32_t prev_counter = npos;
      for (std::uint32_t c = b.head; c != npos; c = nodes_[c].next) {
        if (counter_seen[c]) return false;  // cycle or shared counter
        counter_seen[c] = 1;
        if (nodes_[c].bucket != bkt || counts_[c] != b.count || nodes_[c].prev != prev_counter) {
          return false;
        }
        prev_counter = c;
        ++live_counters;
      }
    }
    if (live_counters != used_) return false;
    for (std::uint32_t bkt = bucket_free_; bkt != npos; bkt = buckets_[bkt].next) {
      if (bucket_seen[bkt]) return false;  // cycle, or stealing a live node
      bucket_seen[bkt] = 1;
    }
    for (const std::uint8_t seen : bucket_seen) {
      if (!seen) return false;  // every node is live or free, nothing leaks
    }
    return true;
  }

  /// Shared restore validation, phase 2: the key index against the counter
  /// arrays, after index_ itself has been restored.
  [[nodiscard]] bool restored_index_valid() const {
    if (index_.size() != used_) return false;
    // The index must keep the constructor's headroom (reserve(2 * cap)):
    // add()'s prehashed probes assume the table never needs to grow, so an
    // undersized image would overflow or spin on a later add, and bucket()
    // values computed against it would be wrong. Honest saves always ship
    // the reserved capacity; anything smaller is malformed.
    if (index_.capacity() - index_.capacity() / 4 < 2 * capacity()) return false;
    // Cross-check: the index must be a bijection onto the live counters,
    // with each counter's islot naming its key's exact slot. Together with
    // the size check this rejects duplicated or dangling entries.
    bool consistent = true;
    index_.for_each_slot([&](std::size_t pos, const Key& key, std::uint32_t value) {
      if (value >= used_ || !(nodes_[value].key == key) || nodes_[value].islot != pos) {
        consistent = false;
      }
    });
    return consistent;
  }

  /// Allocates a bucket node, recycling from the free list when possible.
  std::uint32_t new_bucket(std::uint64_t count) {
    std::uint32_t idx;
    if (bucket_free_ != npos) {
      idx = bucket_free_;
      bucket_free_ = buckets_[idx].next;
    } else {
      idx = static_cast<std::uint32_t>(buckets_.size());
      buckets_.emplace_back();
    }
    buckets_[idx] = bucket_node{count, npos, npos, npos};
    return idx;
  }

  void free_bucket(std::uint32_t idx) {
    buckets_[idx].next = bucket_free_;
    bucket_free_ = idx;
  }

  /// Unlinks a counter from its bucket's chain; frees the bucket if emptied.
  void detach_counter(std::uint32_t idx) {
    cnode& m = nodes_[idx];
    const std::uint32_t bkt = m.bucket;
    if (m.prev != npos) nodes_[m.prev].next = m.next;
    if (m.next != npos) nodes_[m.next].prev = m.prev;
    if (buckets_[bkt].head == idx) buckets_[bkt].head = m.next;
    m.prev = m.next = npos;
    m.bucket = npos;
    if (buckets_[bkt].head == npos) unlink_bucket(bkt);
  }

  void unlink_bucket(std::uint32_t bkt) {
    bucket_node& b = buckets_[bkt];
    if (b.prev != npos) buckets_[b.prev].next = b.next;
    if (b.next != npos) buckets_[b.next].prev = b.prev;
    if (min_bucket_ == bkt) min_bucket_ = b.next;
    free_bucket(bkt);
  }

  /// Pushes a counter onto a bucket's chain (order within a bucket is
  /// irrelevant, so head insertion keeps it O(1)).
  void push_counter(std::uint32_t idx, std::uint32_t bkt) {
    cnode& m = nodes_[idx];
    m.bucket = bkt;
    m.prev = npos;
    m.next = buckets_[bkt].head;
    if (m.next != npos) nodes_[m.next].prev = idx;
    buckets_[bkt].head = idx;
  }

  /// Places a fresh count-1 counter: into the head bucket if its count is 1,
  /// otherwise into a new bucket prepended as the minimum.
  void attach_to_count_one(std::uint32_t idx) {
    if (min_bucket_ != npos && buckets_[min_bucket_].count == 1) {
      push_counter(idx, min_bucket_);
      return;
    }
    const std::uint32_t bkt = new_bucket(1);
    buckets_[bkt].next = min_bucket_;
    if (min_bucket_ != npos) buckets_[min_bucket_].prev = bkt;
    min_bucket_ = bkt;
    push_counter(idx, bkt);
  }

  /// count += 1 and migrate to the adjacent bucket, creating it if needed.
  /// Returns the new count.
  ///
  /// Fast path first: a counter alone in its bucket whose successor bucket
  /// is not at count+1 keeps its node and renames the bucket in place -
  /// ascending order is preserved (the successor, if any, is >= count+2)
  /// and no node is allocated or freed. At tau=1 on heavy-tailed traces
  /// this is the overwhelmingly common case (every elephant past the pack
  /// sits alone in its bucket), and it turns the per-packet structure cost
  /// into two array writes.
  std::uint64_t increment(std::uint32_t idx) {
    const cnode& m = nodes_[idx];
    const std::uint32_t bkt = m.bucket;
    const std::uint64_t target = counts_[idx] + 1;
    const std::uint32_t nxt = buckets_[bkt].next;

    if (m.prev == npos && m.next == npos &&
        (nxt == npos || buckets_[nxt].count != target)) {
      buckets_[bkt].count = target;
      counts_[idx] = target;
      return target;
    }

    if (nxt != npos && buckets_[nxt].count == target) {
      detach_counter(idx);  // may free bkt; `nxt` survives (it holds counters)
      push_counter(idx, nxt);
    } else {
      // Create the target bucket after bkt *before* detaching, so bkt's list
      // position anchors the insertion even if bkt becomes empty.
      const std::uint32_t fresh = new_bucket(target);
      bucket_node& b = buckets_[bkt];
      buckets_[fresh].prev = bkt;
      buckets_[fresh].next = b.next;
      if (b.next != npos) buckets_[b.next].prev = fresh;
      b.next = fresh;
      detach_counter(idx);
      push_counter(idx, fresh);
    }
    counts_[idx] = target;
    return target;
  }

  std::vector<cnode> nodes_;             ///< per-counter key + overestimate + links
  std::vector<std::uint64_t> counts_;    ///< counter values - contiguous for SIMD scans
  std::vector<bucket_node> buckets_;
  flat_hash<Key, std::uint32_t> index_;
  std::uint32_t bucket_free_ = npos;
  std::uint32_t min_bucket_ = npos;
  std::size_t used_ = 0;
  std::uint64_t adds_ = 0;
};

}  // namespace memento
