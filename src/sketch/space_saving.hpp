// Space Saving [Metwally et al., ICDT 2005] with the classic stream-summary
// structure: worst-case O(1) increments and evictions.
//
// This is the substrate of the entire repository (Section 2 of the paper):
// Memento uses one instance to count in-frame frequencies approximately; MST
// keeps H instances (one per prefix pattern); RHHH keeps H instances updated
// by sampling. The guarantees relied upon everywhere:
//
//   * no undercount:  query(x) >= f(x) for every x (monitored or not);
//   * bounded overcount:  query(x) - f(x) <= min_count() <= N / capacity,
//     where N is the number of add() calls since the last flush().
//
// Layout: counters live in a flat array; equal-count counters are chained
// into a bucket; buckets form an ascending doubly-linked list whose head is
// the minimum. All links are 32-bit indices into flat vectors - compact and
// cache-predictable (Per.16 / Per.19), no per-update allocation (Per.14):
// bucket nodes are recycled through a free list.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/flat_hash.hpp"

namespace memento {

template <typename Key>
class space_saving {
 public:
  /// A monitored (key, estimate) pair; `overestimate` is the classic
  /// Space-Saving error bound recorded when the counter was last reallocated,
  /// so `count - overestimate` never exceeds the true frequency.
  struct entry {
    Key key{};
    std::uint64_t count = 0;
    std::uint64_t overestimate = 0;
  };

  /// @param capacity number of counters (the paper's k); must be >= 1.
  explicit space_saving(std::size_t capacity) : counters_(capacity) {
    if (capacity == 0) throw std::invalid_argument("space_saving: capacity must be >= 1");
    if (capacity >= npos) throw std::invalid_argument("space_saving: capacity too large");
    index_.reserve(capacity * 2);
    buckets_.reserve(capacity + 1);
  }

  /// Processes one arrival of `x` (Section 2's three cases: increment an
  /// existing counter, claim a free one, or evict the minimum) and returns
  /// x's post-increment counter value, sparing callers a second lookup. O(1).
  std::uint64_t add(const Key& x) { return add_prehashed(index_.bucket(x), x); }

  /// add(x) with x's home bucket precomputed via index_bucket(). Batched
  /// callers hash a chunk of keys in one vectorizable pass and replay the
  /// (serial) structural updates here; the index never grows after
  /// construction, so precomputed buckets stay valid across adds.
  std::uint64_t add_prehashed(std::size_t bucket, const Key& x) {
    ++adds_;
    if (const std::uint32_t* idx = index_.find_prehashed(bucket, x)) {
      return increment(*idx);
    }
    if (used_ < counters_.size()) {
      const auto idx = static_cast<std::uint32_t>(used_++);
      counter_node& c = counters_[idx];
      c.key = x;
      c.count = 1;
      c.overestimate = 0;
      c.islot = static_cast<std::uint32_t>(index_.emplace_prehashed(bucket, x, idx));
      attach_to_count_one(idx);
      return 1;
    }
    // Evict the minimum: reuse its slot for x, inheriting count (+1) and
    // recording the inherited value as the overestimate. The old key's index
    // entry is removed by stored slot position - no probe; the backward
    // shift's relocations flow back into the affected counters' islot.
    const std::uint32_t idx = buckets_[min_bucket_].head;
    counter_node& c = counters_[idx];
    index_.erase_at(c.islot, [this](std::uint32_t moved, std::size_t pos) {
      counters_[moved].islot = static_cast<std::uint32_t>(pos);
    });
    c.overestimate = c.count;
    c.key = x;
    c.islot = static_cast<std::uint32_t>(index_.emplace_prehashed(bucket, x, idx));
    return increment(idx);
  }

  /// Home bucket of x in the counter index (see flat_hash::bucket); feed to
  /// add_prehashed / prefetch_bucket.
  [[nodiscard]] std::size_t index_bucket(const Key& x) const noexcept {
    return index_.bucket(x);
  }

  /// Upper-bound estimate: the counter if monitored, otherwise the minimum
  /// counter once the structure is full (an unmonitored flow can have been
  /// evicted with at most that many arrivals), otherwise 0.
  [[nodiscard]] std::uint64_t query(const Key& x) const {
    if (const std::uint32_t* idx = index_.find(x)) {
      return counters_[*idx].count;
    }
    return used_ == counters_.size() ? min_count() : 0;
  }

  /// Lower-bound estimate: count minus the recorded overestimate (0 when the
  /// flow is not monitored). Never exceeds the true frequency.
  [[nodiscard]] std::uint64_t query_lower(const Key& x) const {
    if (const std::uint32_t* idx = index_.find(x)) {
      const counter_node& c = counters_[*idx];
      return c.count - c.overestimate;
    }
    return 0;
  }

  [[nodiscard]] bool contains(const Key& x) const { return index_.contains(x); }

  /// Pulls x's index slot toward the cache ahead of an add(); issued by the
  /// batched update path for keys a few packets downstream.
  void prefetch(const Key& x) const noexcept { index_.prefetch(x); }

  /// prefetch() by precomputed home bucket (see index_bucket()).
  void prefetch_bucket(std::size_t bucket) const noexcept { index_.prefetch_bucket(bucket); }

  /// Value of the minimum counter (0 when empty).
  [[nodiscard]] std::uint64_t min_count() const {
    return min_bucket_ == npos ? 0 : buckets_[min_bucket_].count;
  }

  /// Resets all counters (Memento calls this at every frame boundary,
  /// Algorithm 1 line 4). Capacity is retained; bucket nodes are recycled.
  void flush() {
    index_.clear();
    buckets_.clear();
    bucket_free_ = npos;
    min_bucket_ = npos;
    used_ = 0;
    adds_ = 0;
  }

  /// Number of add() calls since construction or the last flush().
  [[nodiscard]] std::uint64_t stream_length() const noexcept { return adds_; }

  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return counters_.size(); }

  /// Snapshot of all monitored entries (used by HH output, MST/RHHH lattice
  /// candidates, and the Aggregation communication method).
  [[nodiscard]] std::vector<entry> entries() const {
    std::vector<entry> out;
    out.reserve(used_);
    for (std::size_t i = 0; i < used_; ++i) {
      out.push_back({counters_[i].key, counters_[i].count, counters_[i].overestimate});
    }
    return out;
  }

  /// Invokes fn(key, count, overestimate) for every monitored entry.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < used_; ++i) {
      fn(counters_[i].key, counters_[i].count, counters_[i].overestimate);
    }
  }

 private:
  static constexpr std::uint32_t npos = std::numeric_limits<std::uint32_t>::max();

  struct counter_node {
    Key key{};
    std::uint64_t count = 0;
    std::uint64_t overestimate = 0;
    std::uint32_t prev = npos;    ///< previous counter in the same bucket
    std::uint32_t next = npos;    ///< next counter in the same bucket
    std::uint32_t bucket = npos;  ///< owning bucket index
    std::uint32_t islot = npos;   ///< key's slot in index_ (probe-free eviction erase)
  };

  struct bucket_node {
    std::uint64_t count = 0;
    std::uint32_t head = npos;  ///< first counter in this bucket
    std::uint32_t prev = npos;  ///< bucket with the next-smaller count
    std::uint32_t next = npos;  ///< bucket with the next-larger count
  };

  /// Allocates a bucket node, recycling from the free list when possible.
  std::uint32_t new_bucket(std::uint64_t count) {
    std::uint32_t idx;
    if (bucket_free_ != npos) {
      idx = bucket_free_;
      bucket_free_ = buckets_[idx].next;
    } else {
      idx = static_cast<std::uint32_t>(buckets_.size());
      buckets_.emplace_back();
    }
    buckets_[idx] = bucket_node{count, npos, npos, npos};
    return idx;
  }

  void free_bucket(std::uint32_t idx) {
    buckets_[idx].next = bucket_free_;
    bucket_free_ = idx;
  }

  /// Unlinks a counter from its bucket's chain; frees the bucket if emptied.
  void detach_counter(std::uint32_t idx) {
    counter_node& c = counters_[idx];
    const std::uint32_t bkt = c.bucket;
    if (c.prev != npos) counters_[c.prev].next = c.next;
    if (c.next != npos) counters_[c.next].prev = c.prev;
    if (buckets_[bkt].head == idx) buckets_[bkt].head = c.next;
    c.prev = c.next = npos;
    c.bucket = npos;
    if (buckets_[bkt].head == npos) unlink_bucket(bkt);
  }

  void unlink_bucket(std::uint32_t bkt) {
    bucket_node& b = buckets_[bkt];
    if (b.prev != npos) buckets_[b.prev].next = b.next;
    if (b.next != npos) buckets_[b.next].prev = b.prev;
    if (min_bucket_ == bkt) min_bucket_ = b.next;
    free_bucket(bkt);
  }

  /// Pushes a counter onto a bucket's chain (order within a bucket is
  /// irrelevant, so head insertion keeps it O(1)).
  void push_counter(std::uint32_t idx, std::uint32_t bkt) {
    counter_node& c = counters_[idx];
    c.bucket = bkt;
    c.prev = npos;
    c.next = buckets_[bkt].head;
    if (c.next != npos) counters_[c.next].prev = idx;
    buckets_[bkt].head = idx;
  }

  /// Places a fresh count-1 counter: into the head bucket if its count is 1,
  /// otherwise into a new bucket prepended as the minimum.
  void attach_to_count_one(std::uint32_t idx) {
    if (min_bucket_ != npos && buckets_[min_bucket_].count == 1) {
      push_counter(idx, min_bucket_);
      return;
    }
    const std::uint32_t bkt = new_bucket(1);
    buckets_[bkt].next = min_bucket_;
    if (min_bucket_ != npos) buckets_[min_bucket_].prev = bkt;
    min_bucket_ = bkt;
    push_counter(idx, bkt);
  }

  /// count += 1 and migrate to the adjacent bucket, creating it if needed.
  /// Returns the new count.
  std::uint64_t increment(std::uint32_t idx) {
    counter_node& c = counters_[idx];
    const std::uint32_t bkt = c.bucket;
    const std::uint64_t target = c.count + 1;
    const std::uint32_t next = buckets_[bkt].next;

    if (next != npos && buckets_[next].count == target) {
      detach_counter(idx);  // may free bkt; `next` survives (it holds counters)
      push_counter(idx, next);
    } else {
      // Create the target bucket after bkt *before* detaching, so bkt's list
      // position anchors the insertion even if bkt becomes empty.
      const std::uint32_t fresh = new_bucket(target);
      bucket_node& b = buckets_[bkt];
      buckets_[fresh].prev = bkt;
      buckets_[fresh].next = b.next;
      if (b.next != npos) buckets_[b.next].prev = fresh;
      b.next = fresh;
      detach_counter(idx);
      push_counter(idx, fresh);
    }
    c.count = target;
    return target;
  }

  std::vector<counter_node> counters_;
  std::vector<bucket_node> buckets_;
  flat_hash<Key, std::uint32_t> index_;
  std::uint32_t bucket_free_ = npos;
  std::uint32_t min_bucket_ = npos;
  std::size_t used_ = 0;
  std::uint64_t adds_ = 0;
};

}  // namespace memento
